// Wait-free-readable building blocks for RCU-style "publish a snapshot"
// data structures (EcmpRouter's read path is the main customer).
//
// Both structures share one discipline: a single serialized writer appends
// or inserts, then *publishes* with one release store; readers synchronize
// on that store with an acquire load and never write shared memory at all.
// Nothing published is ever modified or freed while the structure lives, so
// readers need no locks, no reference counts, and no hazard pointers —
// a warm read is a couple of atomic loads.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

namespace flock {

// Append-only element store with stable addresses and wait-free reads.
//
// Elements live in fixed-size blocks; the block directory is preallocated,
// so neither appending nor growing ever moves a published element — a
// `const T&` taken from operator[] stays valid for the structure's lifetime
// (the property EcmpRouter documents for path()/path_set()).
//
// Writer protocol (caller serializes, e.g. under an intern mutex):
//   append(...); append(...); publish();
// Readers must only index below size(), whose acquire load synchronizes
// with publish()'s release store and therefore with every element written
// before it.
template <typename T>
class SnapshotStore {
 public:
  static constexpr std::size_t kBlockShift = 9;  // 512 elements per block
  static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockShift;
  static constexpr std::size_t kMaxBlocks = std::size_t{1} << 15;  // ~16.7M elements

  SnapshotStore() : blocks_(std::make_unique<std::atomic<T*>[]>(kMaxBlocks)) {
    for (std::size_t b = 0; b < kMaxBlocks; ++b) {
      blocks_[b].store(nullptr, std::memory_order_relaxed);
    }
  }

  ~SnapshotStore() {
    for (std::size_t b = 0; b < kMaxBlocks; ++b) {
      // Raw array storage is the point: a unique_ptr<T[]> cannot sit inside
      // the atomic slot readers probe. flock-lint: allow(raw-new-delete)
      delete[] blocks_[b].load(std::memory_order_relaxed);
    }
  }

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  // Writer only. The element is constructed but invisible to readers until
  // publish(); the returned reference is already permanent.
  T& append(T value) {
    const std::size_t i = unpublished_;
    const std::size_t b = i >> kBlockShift;
    if (b >= kMaxBlocks) throw std::length_error("SnapshotStore: capacity exceeded");
    T* block = blocks_[b].load(std::memory_order_relaxed);
    if (block == nullptr) {
      block = new T[kBlockSize];  // flock-lint: allow(raw-new-delete)
      blocks_[b].store(block, std::memory_order_release);
    }
    T& slot = block[i & (kBlockSize - 1)];
    slot = std::move(value);
    ++unpublished_;
    return slot;
  }

  // Writer only: make every append() so far visible to readers.
  void publish() { size_.store(unpublished_, std::memory_order_release); }

  // Writer only: element count including the unpublished tail.
  std::size_t writer_size() const { return unpublished_; }

  // Published element count; monotone non-decreasing.
  std::size_t size() const { return size_.load(std::memory_order_acquire); }

  // Requires i < a size() the caller observed.
  const T& operator[](std::size_t i) const {
    return blocks_[i >> kBlockShift].load(std::memory_order_acquire)[i & (kBlockSize - 1)];
  }

 private:
  std::unique_ptr<std::atomic<T*>[]> blocks_;
  std::size_t unpublished_ = 0;          // writer-side size (includes unpublished tail)
  std::atomic<std::size_t> size_{0};     // reader-visible size
};

// Open-addressing uint64 -> int32 hash map with wait-free reads and a
// single serialized writer. Growth republishes a rebuilt table via one
// release store; retired tables are kept until destruction, so a reader
// probing an old table still sees every entry that was published in it and
// simply misses entries inserted later (callers fall back to a locked
// re-check on miss — the classic RCU read-side pattern).
class PairIndex {
 public:
  explicit PairIndex(std::size_t initial_capacity = 1024) {
    tables_.push_back(std::make_unique<Table>(initial_capacity));
    table_.store(tables_.back().get(), std::memory_order_release);
  }

  PairIndex(const PairIndex&) = delete;
  PairIndex& operator=(const PairIndex&) = delete;

  // Wait-free. Returns -1 when the key is absent (possibly just not yet
  // visible — the caller decides whether to take the slow path).
  std::int32_t find(std::uint64_t key) const {
    const Table* t = table_.load(std::memory_order_acquire);
    std::size_t i = mix(key) & t->mask;
    for (;;) {
      const std::uint64_t k = t->slots[i].key.load(std::memory_order_acquire);
      if (k == key) return t->slots[i].value.load(std::memory_order_relaxed);
      if (k == kEmpty) return -1;
      i = (i + 1) & t->mask;
    }
  }

  // Writer only (caller serializes). `key` must not already be present.
  void insert(std::uint64_t key, std::int32_t value) {
    Table* t = tables_.back().get();
    if ((count_ + 1) * 2 > t->mask + 1) t = grow();
    std::size_t i = mix(key) & t->mask;
    while (t->slots[i].key.load(std::memory_order_relaxed) != kEmpty) i = (i + 1) & t->mask;
    // Value first, then the key with release: a reader that acquires the key
    // is guaranteed to read the matching value.
    t->slots[i].value.store(value, std::memory_order_relaxed);
    t->slots[i].key.store(key, std::memory_order_release);
    ++count_;
  }

 private:
  // Valid keys are two non-negative int32 halves, so all-ones never occurs.
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  struct Slot {
    std::atomic<std::uint64_t> key{kEmpty};
    std::atomic<std::int32_t> value{-1};
  };

  struct Table {
    explicit Table(std::size_t capacity)
        : mask(capacity - 1), slots(std::make_unique<Slot[]>(capacity)) {}
    std::size_t mask;  // capacity - 1; capacity is a power of two
    std::unique_ptr<Slot[]> slots;
  };

  static std::uint64_t mix(std::uint64_t x) {
    // splitmix64 finalizer: pair keys are two small ints, so spread them.
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  Table* grow() {
    Table* old = tables_.back().get();
    tables_.push_back(std::make_unique<Table>((old->mask + 1) * 2));
    Table* bigger = tables_.back().get();
    for (std::size_t i = 0; i <= old->mask; ++i) {
      const std::uint64_t k = old->slots[i].key.load(std::memory_order_relaxed);
      if (k == kEmpty) continue;
      std::size_t j = mix(k) & bigger->mask;
      while (bigger->slots[j].key.load(std::memory_order_relaxed) != kEmpty) {
        j = (j + 1) & bigger->mask;
      }
      bigger->slots[j].value.store(old->slots[i].value.load(std::memory_order_relaxed),
                                   std::memory_order_relaxed);
      bigger->slots[j].key.store(k, std::memory_order_relaxed);
    }
    // The rebuilt table becomes visible in one shot; the old one stays
    // readable (and owned by tables_) for threads still probing it.
    table_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<Table*> table_;                   // readers' entry point
  std::vector<std::unique_ptr<Table>> tables_;  // writer-owned, incl. retired
  std::size_t count_ = 0;                       // writer only
};

}  // namespace flock
