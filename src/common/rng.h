// Deterministic pseudo-random number generation for simulations and tests.
//
// We use xoshiro256** (public domain, Blackman & Vigna) rather than
// std::mt19937 because it is faster, has a tiny state, and — more
// importantly — its output is fully specified, so traces regenerate
// identically across standard libraries. All stochastic code in this repo
// takes an explicit Rng&; nothing reads global random state.
#pragma once

#include <cstdint>
#include <vector>

namespace flock {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Raw 64 random bits.
  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double next_double();

  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n);

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Bernoulli trial with success probability p.
  bool chance(double p);

  // Binomial(n, p) sample. Uses direct Bernoulli summation for small n*p and
  // a BTPE-free inversion/normal hybrid otherwise; exact enough for
  // simulation purposes and fully deterministic.
  std::uint64_t binomial(std::uint64_t n, double p);

  // Pareto (Lomax-style classic Pareto with scale x_m and shape alpha).
  // Mean is x_m * alpha / (alpha - 1) for alpha > 1.
  double pareto(double x_m, double alpha);

  // Exponential with rate lambda.
  double exponential(double lambda);

  // Standard normal via Marsaglia polar method.
  double normal();

  // Fisher–Yates shuffle of a vector of ints.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Sample k distinct values from [0, n) without replacement.
  std::vector<std::int64_t> sample_without_replacement(std::int64_t n, std::int64_t k);

  // Derive an independent stream (for parallel / per-trace determinism).
  Rng split();

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace flock
