#include "common/math_util.h"

#include <algorithm>
#include <stdexcept>

namespace flock {

double log_sum_exp(double a, double b) {
  if (a < b) std::swap(a, b);
  if (b == -INFINITY) return a;
  return a + std::log1p(std::exp(b - a));
}

double bad_path_log_evidence(std::uint64_t bad, std::uint64_t sent, double p_g, double p_b) {
  if (bad > sent) throw std::invalid_argument("bad_path_log_evidence: bad > sent");
  const double r = static_cast<double>(bad);
  const double good = static_cast<double>(sent - bad);
  return r * std::log(p_b / p_g) + good * (std::log1p(-p_b) - std::log1p(-p_g));
}

double flow_log_likelihood_delta(std::int64_t bad_paths, std::int64_t total_paths, double s) {
  if (bad_paths < 0 || bad_paths > total_paths || total_paths <= 0) {
    throw std::invalid_argument("flow_log_likelihood_delta: bad path counts");
  }
  if (bad_paths == 0) return 0.0;
  if (bad_paths == total_paths) return s;  // exact: log(w·e^s / w)
  const double b = static_cast<double>(bad_paths);
  const double w = static_cast<double>(total_paths);
  // log( (b*e^s + (w-b)) / w ). When s is large, factor e^s out for
  // stability; when s is very negative, e^s underflows harmlessly to 0
  // (the term then approaches log((w-b)/w), or -inf for b == w which is the
  // correct limit: all paths bad and the observation is impossible-ish).
  if (s > 0) {
    // b*e^s + (w-b) = e^s * (b + (w-b)e^{-s})
    return s + std::log(b + (w - b) * std::exp(-s)) - std::log(w);
  }
  const double mix = b * std::exp(s) + (w - b);
  if (mix <= 0) return -INFINITY;
  return std::log(mix) - std::log(w);
}

double evidence_break_even_rate(double p_g, double p_b) {
  const double num = std::log1p(-p_g) - std::log1p(-p_b);
  const double den = std::log(p_b / p_g) + num;
  return num / den;
}

double f_score(double precision, double recall) {
  if (precision <= 0 || recall <= 0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

double logit(double x) {
  if (x <= 0 || x >= 1) throw std::invalid_argument("logit domain");
  return std::log(x) - std::log1p(-x);
}

}  // namespace flock
