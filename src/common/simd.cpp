// Backends for simd.h. Compiled with -ffp-contract=off (see CMakeLists.txt):
// the scalar backend must execute the same multiply-then-add rounding
// sequence as the AVX2 intrinsics, so the compiler may not fuse its a*b+c
// patterns into FMAs.
#include "common/simd.h"

#include <atomic>
#include <bit>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define FLOCK_SIMD_X86 1
#else
#define FLOCK_SIMD_X86 0
#endif

namespace flock::simd {

namespace {

// fdlibm/e_log.c polynomial log, restricted to the kernel's domain x >= 1
// (finite). The argument is reduced to z in [sqrt(2)/2, sqrt(2)) with
// x = 2^k * z via pure bit manipulation, then log(z) is evaluated as a
// polynomial in s = f/(2+f), f = z-1 — no tables, no data-dependent
// branches, so the same sequence runs per-lane in both backends.
constexpr double kLn2Hi = 6.93147180369123816490e-01;
constexpr double kLn2Lo = 1.90821492927058770002e-10;
constexpr double kLg1 = 6.666666666666735130e-01;
constexpr double kLg2 = 3.999999999940941908e-01;
constexpr double kLg3 = 2.857142874366239149e-01;
constexpr double kLg4 = 2.222219843214978396e-01;
constexpr double kLg5 = 1.818357216161805012e-01;
constexpr double kLg6 = 1.531383769920937332e-01;
constexpr double kLg7 = 1.479819860511658591e-01;

// Mantissa rounding offset: adding it carries into the exponent exactly when
// the mantissa is >= sqrt(2), steering z into [sqrt(2)/2, sqrt(2)). This is
// fdlibm's (hx + 0x95f64) & 0x100000 on the high word, widened to 64 bits.
constexpr std::uint64_t kSqrt2Round = 0x0009'5f64'0000'0000ULL;
constexpr std::uint64_t kCarryBit = 0x0010'0000'0000'0000ULL;
constexpr std::uint64_t kMantissaMask = 0x000f'ffff'ffff'ffffULL;
constexpr std::uint64_t kOneBits = 0x3ff0'0000'0000'0000ULL;
// 2^52 as bits and as a double: the standard exact int64 -> double trick for
// the (always non-negative, tiny) exponent k.
constexpr std::uint64_t kShifterBits = 0x4330'0000'0000'0000ULL;
constexpr double kShifter = 4503599627370496.0;

inline double log_ge1(double x) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  std::uint64_t k_bits = (bits >> 52) - 1023;  // x >= 1 => unbiased exp >= 0
  const std::uint64_t man = bits & kMantissaMask;
  const std::uint64_t carry = (man + kSqrt2Round) & kCarryBit;
  k_bits += carry >> 52;
  const double dk = std::bit_cast<double>(k_bits | kShifterBits) - kShifter;
  const double z = std::bit_cast<double>(man | (carry ^ kOneBits));
  const double f = z - 1.0;
  const double s = f / (2.0 + f);
  const double z2 = s * s;
  const double w = z2 * z2;
  const double t1 = w * (kLg2 + w * (kLg4 + w * kLg6));
  const double t2 = z2 * (kLg1 + w * (kLg3 + w * (kLg5 + w * kLg7)));
  const double r = t2 + t1;
  const double hfsq = 0.5 * f * f;
  return dk * kLn2Hi - ((hfsq - (s * (hfsq + r) + dk * kLn2Lo)) - f);
}

// Four independent accumulator lanes, reduced in a fixed order: the scalar
// loop is the AVX2 loop with the vector ops spelled out per lane, so partial
// sums land in the same lanes and round identically. The tail (n % 4 rows)
// runs the identical scalar code in both backends.
double kernel_scalar(const double* es, const double* wt, std::size_t n, double a, double c) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc[0] += wt[i + 0] * log_ge1(a * es[i + 0] + c);
    acc[1] += wt[i + 1] * log_ge1(a * es[i + 1] + c);
    acc[2] += wt[i + 2] * log_ge1(a * es[i + 2] + c);
    acc[3] += wt[i + 3] * log_ge1(a * es[i + 3] + c);
  }
  for (; i < n; ++i) acc[i & 3] += wt[i] * log_ge1(a * es[i] + c);
  return (acc[0] + acc[2]) + (acc[1] + acc[3]);
}

#if FLOCK_SIMD_X86

__attribute__((target("avx2"))) inline __m256d vlog_ge1(__m256d x) {
  const __m256i bits = _mm256_castpd_si256(x);
  __m256i k = _mm256_sub_epi64(_mm256_srli_epi64(bits, 52), _mm256_set1_epi64x(1023));
  const __m256i man = _mm256_and_si256(bits, _mm256_set1_epi64x(kMantissaMask));
  const __m256i carry = _mm256_and_si256(
      _mm256_add_epi64(man, _mm256_set1_epi64x(static_cast<long long>(kSqrt2Round))),
      _mm256_set1_epi64x(static_cast<long long>(kCarryBit)));
  k = _mm256_add_epi64(k, _mm256_srli_epi64(carry, 52));
  const __m256d dk = _mm256_sub_pd(
      _mm256_castsi256_pd(
          _mm256_or_si256(k, _mm256_set1_epi64x(static_cast<long long>(kShifterBits)))),
      _mm256_set1_pd(kShifter));
  const __m256d z = _mm256_castsi256_pd(_mm256_or_si256(
      man, _mm256_xor_si256(carry, _mm256_set1_epi64x(static_cast<long long>(kOneBits)))));
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d f = _mm256_sub_pd(z, one);
  const __m256d s = _mm256_div_pd(f, _mm256_add_pd(_mm256_set1_pd(2.0), f));
  const __m256d z2 = _mm256_mul_pd(s, s);
  const __m256d w = _mm256_mul_pd(z2, z2);
  const __m256d t1 = _mm256_mul_pd(
      w, _mm256_add_pd(
             _mm256_set1_pd(kLg2),
             _mm256_mul_pd(w, _mm256_add_pd(_mm256_set1_pd(kLg4),
                                            _mm256_mul_pd(w, _mm256_set1_pd(kLg6))))));
  const __m256d t2 = _mm256_mul_pd(
      z2, _mm256_add_pd(
              _mm256_set1_pd(kLg1),
              _mm256_mul_pd(
                  w, _mm256_add_pd(
                         _mm256_set1_pd(kLg3),
                         _mm256_mul_pd(w, _mm256_add_pd(_mm256_set1_pd(kLg5),
                                                        _mm256_mul_pd(
                                                            w, _mm256_set1_pd(kLg7))))))));
  const __m256d r = _mm256_add_pd(t2, t1);
  const __m256d hfsq = _mm256_mul_pd(_mm256_set1_pd(0.5), _mm256_mul_pd(f, f));
  // dk*ln2_hi - ((hfsq - (s*(hfsq+r) + dk*ln2_lo)) - f)
  const __m256d inner = _mm256_add_pd(_mm256_mul_pd(s, _mm256_add_pd(hfsq, r)),
                                      _mm256_mul_pd(dk, _mm256_set1_pd(kLn2Lo)));
  return _mm256_sub_pd(_mm256_mul_pd(dk, _mm256_set1_pd(kLn2Hi)),
                       _mm256_sub_pd(_mm256_sub_pd(hfsq, inner), f));
}

__attribute__((target("avx2"))) double kernel_avx2(const double* es, const double* wt,
                                                   std::size_t n, double a, double c) {
  const __m256d va = _mm256_set1_pd(a);
  const __m256d vc = _mm256_set1_pd(c);
  __m256d vacc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_add_pd(_mm256_mul_pd(va, _mm256_loadu_pd(es + i)), vc);
    vacc = _mm256_add_pd(vacc, _mm256_mul_pd(_mm256_loadu_pd(wt + i), vlog_ge1(x)));
  }
  alignas(32) double acc[4];
  _mm256_store_pd(acc, vacc);
  for (; i < n; ++i) acc[i & 3] += wt[i] * log_ge1(a * es[i] + c);
  return (acc[0] + acc[2]) + (acc[1] + acc[3]);
}

#endif  // FLOCK_SIMD_X86

bool env_forces_scalar() {
  const char* v = std::getenv("FLOCK_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

Level detect_level() {
  if (env_forces_scalar()) return Level::kScalar;
  return max_supported_level();
}

std::atomic<Level>& level_slot() {
  static std::atomic<Level> level{detect_level()};
  return level;
}

}  // namespace

Level max_supported_level() {
#if FLOCK_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
  return Level::kScalar;
}

Level active_level() { return level_slot().load(std::memory_order_relaxed); }

const char* level_name(Level level) {
  switch (level) {
    case Level::kAvx2:
      return "avx2";
    case Level::kScalar:
      return "scalar";
  }
  return "unknown";
}

Level set_level(Level level) {
  if (level == Level::kAvx2 && max_supported_level() != Level::kAvx2) {
    level = Level::kScalar;
  }
  level_slot().store(level, std::memory_order_relaxed);
  return level;
}

double weighted_log_sum(const double* es, const double* wt, std::size_t n, double a,
                        double c) {
  if (n == 0) return 0.0;
#if FLOCK_SIMD_X86
  if (active_level() == Level::kAvx2) return kernel_avx2(es, wt, n, a, c);
#endif
  return kernel_scalar(es, wt, n, a, c);
}

}  // namespace flock::simd
