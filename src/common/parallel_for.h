// Deterministic data-parallel runtime for the inference hot path: a small
// persistent worker team with *fixed chunking independent of thread count*
// and an ordered pairwise tree reduction.
//
// The determinism discipline is the same one src/common/simd.h established
// for AVX2-vs-scalar: thread count is a pure performance lever, never a
// result change. Two rules make that hold:
//
//   * Chunk boundaries are a function of (n, grain) ONLY. A job over n
//     elements always splits into ceil(n / grain) chunks of `grain` elements
//     (last one ragged), whether 1 or 16 threads execute them. Threads claim
//     chunks dynamically, so *which thread* runs a chunk varies run to run —
//     but every chunk covers the same index range, so disjoint-output work
//     (each chunk writes its own slots) is bit-identical at any thread count.
//   * reduce() combines the per-chunk partials in a fixed pairwise tree
//     (adjacent pairs, level by level, in chunk order). The floating-point
//     rounding sequence depends only on the chunk count, never on execution
//     order or thread count — bit-identical doubles at 1, 2, or N threads.
//
// The engine-facing callers add a third rule on top: every *result-affecting*
// sum keeps the exact serial accumulation order (chunks are whole outputs —
// one memo slot, one candidate range — whose internal loops are unchanged),
// so `localize_threads=1` output is byte-identical to the historical serial
// path AND to every multi-threaded run. See docs/ARCHITECTURE.md.
//
// Thread budget: a runner with `num_threads = T` spawns T−1 persistent
// helpers; the calling thread is the T-th worker and always participates.
// thread_runner() caches one runner per calling thread and refuses to hand a
// runner to a thread that is itself a helper (no recursive team explosion);
// reentrant use of one runner throws instead of deadlocking.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace flock::parallel {

class ParallelRunner {
 public:
  // Chunk body: fn(chunk_index, begin, end) over [begin, end) ⊂ [0, n).
  using ChunkFn = std::function<void(std::int64_t, std::int64_t, std::int64_t)>;
  using ReduceFn = std::function<double(std::int64_t, std::int64_t, std::int64_t)>;

  // Spawns num_threads − 1 persistent helper threads (0 helpers when
  // num_threads <= 1: every job then runs serially on the caller).
  explicit ParallelRunner(std::int32_t num_threads);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  std::int32_t num_threads() const { return num_threads_; }

  // The fixed chunk grid: ceil(n / grain) chunks, independent of threads.
  static std::int64_t num_chunks(std::int64_t n, std::int64_t grain);

  // Run fn over every chunk of [0, n); the caller participates and returns
  // only when all chunks completed. The first exception thrown by any chunk
  // is rethrown here (remaining chunks still run — outputs are disjoint, so
  // a poisoned job never leaves a torn slot). Reentrant use of this runner
  // from inside a chunk body throws std::logic_error.
  void for_chunks(std::int64_t n, std::int64_t grain, const ChunkFn& fn) EXCLUDES(mutex_);

  // Σ over chunks of fn(chunk, begin, end), combined in a fixed pairwise
  // tree in chunk order: bit-identical at any thread count.
  double reduce(std::int64_t n, std::int64_t grain, const ReduceFn& fn) EXCLUDES(mutex_);

  // Monotonic counters (safe to read concurrently with jobs).
  std::uint64_t chunks_run() const { return chunks_run_.load(std::memory_order_relaxed); }
  // Chunks executed by helper threads rather than the submitting caller —
  // the intra-epoch analogue of the shard executor's "stolen batches".
  std::uint64_t helper_chunks() const {
    return helper_chunks_.load(std::memory_order_relaxed);
  }
  // Total ns spent inside chunk bodies, summed across all executing threads.
  std::uint64_t busy_ns() const { return busy_ns_.load(std::memory_order_relaxed); }

 private:
  void worker_loop() EXCLUDES(mutex_);
  void run_chunks(const ChunkFn& fn, std::int64_t chunks, std::int64_t n, std::int64_t grain,
                  bool helper) EXCLUDES(mutex_);

  const std::int32_t num_threads_;
  std::vector<std::thread> helpers_;

  Mutex mutex_;
  CondVar job_cv_;   // helpers wait for a new job generation
  CondVar done_cv_;  // caller waits for completion / stragglers
  // Non-null only while a job is live.
  const ChunkFn* body_ GUARDED_BY(mutex_) = nullptr;
  std::int64_t job_n_ GUARDED_BY(mutex_) = 0;
  std::int64_t job_grain_ GUARDED_BY(mutex_) = 0;
  std::int64_t job_chunks_ GUARDED_BY(mutex_) = 0;
  std::uint64_t generation_ GUARDED_BY(mutex_) = 0;
  std::int32_t active_helpers_ GUARDED_BY(mutex_) = 0;
  bool job_done_ GUARDED_BY(mutex_) = false;
  bool in_use_ GUARDED_BY(mutex_) = false;
  bool stop_ GUARDED_BY(mutex_) = false;
  std::exception_ptr error_ GUARDED_BY(mutex_);

  std::atomic<std::int64_t> next_chunk_{0};
  std::atomic<std::int64_t> done_chunks_{0};
  std::atomic<std::uint64_t> chunks_run_{0};
  std::atomic<std::uint64_t> helper_chunks_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
};

// FLOCK_LOCALIZE_THREADS, read once per process: 0 when unset, empty, "0",
// or unparsable; otherwise the value clamped to [1, 256]. The same
// convention as FLOCK_FORCE_SCALAR: an environment lever for CI legs and
// A/B runs that must never change results (the determinism contract above).
std::int32_t env_threads();

// The effective intra-epoch thread count for a configured value: an explicit
// request (> 0) wins; 0 defers to FLOCK_LOCALIZE_THREADS, defaulting to 1.
std::int32_t resolve_threads(std::int32_t requested);

// Per-thread cached runner. Returns nullptr — meaning "run serial" — when
// threads <= 1 or when the calling thread is itself a ParallelRunner helper
// (nested teams would oversubscribe the budget). The runner persists for the
// thread's lifetime and is rebuilt only when `threads` changes.
ParallelRunner* thread_runner(std::int32_t threads);

}  // namespace flock::parallel
