// Annotated locking primitives: thin, zero-overhead wrappers over
// std::mutex / std::unique_lock / std::condition_variable that carry the
// clang thread-safety annotations (common/thread_annotations.h).
//
// libstdc++'s std::mutex is not annotated, so locking it directly is
// invisible to -Wthread-safety: a GUARDED_BY field would flag *every*
// access, including correct ones. Routing all lock-protected state through
// these wrappers gives the analysis the acquire/release events it needs;
// everything inlines to exactly the std:: calls it replaces.
//
// Condition-variable discipline: CondVar::wait takes the MutexLock (whose
// capability the analysis knows is held across the call — the internal
// release/re-acquire is invisible to it, and irrelevant: the capability is
// held at every point the caller can observe). Predicate waits are written
// as explicit loops in the caller —
//
//     MutexLock lock(mutex_);
//     while (!closed_ && items_.empty()) cv_.wait(lock);
//
// — NOT as wait(lock, lambda): clang analyzes a lambda body as a separate
// function that holds nothing, so guarded fields read inside a predicate
// lambda would (correctly, by its rules) fail the build.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace flock {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

// RAII scope over a Mutex (std::unique_lock underneath). Supports manual
// unlock()/lock() inside the scope — the "notify outside the lock" and
// "run the callback unlocked" patterns — and the destructor releases only
// if currently held, exactly like std::unique_lock.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() RELEASE() { lock_.unlock(); }
  void lock() ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// std::condition_variable bound to MutexLock scopes. No annotations on the
// wait calls: the caller's capability is held before and after, which is
// all the static analysis can (or needs to) see.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Rep, typename Period>
  std::cv_status wait_for(MutexLock& lock, const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(MutexLock& lock,
                            const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace flock
