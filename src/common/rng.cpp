#include "common/rng.h"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace flock {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: used to expand the seed into the xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("next_below(0)");
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  std::uint64_t lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    std::uint64_t threshold = (0ULL - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return next_double() < p;
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  if (n == 0 || p <= 0) return 0;
  if (p >= 1) return n;
  const double mean = static_cast<double>(n) * p;
  if (n <= 64 || mean < 16.0) {
    // For tiny expected counts the geometric skip method is O(successes).
    if (mean < 4.0) {
      std::uint64_t count = 0;
      const double log_q = std::log1p(-p);
      double i = 0;
      while (true) {
        // Number of failures until next success ~ Geometric(p).
        double skip = std::floor(std::log(1.0 - next_double()) / log_q);
        i += skip + 1;
        if (i > static_cast<double>(n)) break;
        ++count;
      }
      return count;
    }
    std::uint64_t count = 0;
    for (std::uint64_t i = 0; i < n; ++i) count += chance(p) ? 1 : 0;
    return count;
  }
  // Normal approximation with continuity correction, clamped to [0, n].
  const double sd = std::sqrt(mean * (1.0 - p));
  double draw = std::round(mean + sd * normal());
  if (draw < 0) draw = 0;
  if (draw > static_cast<double>(n)) draw = static_cast<double>(n);
  return static_cast<std::uint64_t>(draw);
}

double Rng::pareto(double x_m, double alpha) {
  // Inverse-CDF sampling: x = x_m / U^{1/alpha}.
  double u = 1.0 - next_double();  // in (0, 1]
  return x_m / std::pow(u, 1.0 / alpha);
}

double Rng::exponential(double lambda) {
  return -std::log(1.0 - next_double()) / lambda;
}

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * mul;
  have_spare_normal_ = true;
  return u * mul;
}

std::vector<std::int64_t> Rng::sample_without_replacement(std::int64_t n, std::int64_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(k));
  if (k * 3 >= n) {
    std::vector<std::int64_t> all(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
    shuffle(all);
    out.assign(all.begin(), all.begin() + k);
    return out;
  }
  std::unordered_set<std::int64_t> seen;
  while (static_cast<std::int64_t>(out.size()) < k) {
    auto v = static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(n)));
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

Rng Rng::split() { return Rng(next_u64() ^ 0xa0761d6478bd642fULL); }

}  // namespace flock
