// Open-addressing hash map from a caller-packed 192-bit key to a
// non-negative int64 value, tuned for the FlowTable build hot path: one
// probe per lookup in the warm case, no per-node allocation, no erase
// support. The three uint64 key words are compared exactly — hashing only
// picks the probe start, so collisions never merge distinct keys.
#pragma once

#include <cstdint>
#include <vector>

namespace flock {

class FlatMap192 {
 public:
  // Values are caller indices; kAbsent marks both empty slots and misses.
  static constexpr std::int64_t kAbsent = -1;

  FlatMap192() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Empty the map but keep the slot array: the epoch-arena recycle path
  // clears per-epoch indexes whose next fill has the same shape, so the
  // buckets are worth retaining.
  void clear() {
    for (Slot& s : slots_) s.value = kAbsent;
    size_ = 0;
  }

  // Bytes held by the slot array (retained across clear()).
  std::size_t capacity_bytes() const { return slots_.size() * sizeof(Slot); }

  void reserve(std::size_t expected) {
    std::size_t cap = kMinCapacity;
    while (cap * kMaxLoadNum < expected * kMaxLoadDen) cap <<= 1;
    if (cap > slots_.size()) rehash(cap);
  }

  // Value of `key`, or kAbsent when missing.
  std::int64_t find(std::uint64_t k1, std::uint64_t k2, std::uint64_t k3) const {
    if (slots_.empty()) return kAbsent;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = mix(k1, k2, k3) & mask;; i = (i + 1) & mask) {
      const Slot& s = slots_[i];
      if (s.value == kAbsent) return kAbsent;
      if (s.k1 == k1 && s.k2 == k2 && s.k3 == k3) return s.value;
    }
  }

  // Reference to the value slot of `key`, inserting kAbsent first if the key
  // is new — the caller tests for kAbsent and assigns the real value. The
  // reference is invalidated by the next slot()/reserve() call.
  std::int64_t& slot(std::uint64_t k1, std::uint64_t k2, std::uint64_t k3) {
    if (slots_.empty() || (size_ + 1) * kMaxLoadDen > slots_.size() * kMaxLoadNum) {
      rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = mix(k1, k2, k3) & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.value == kAbsent) {
        s.k1 = k1;
        s.k2 = k2;
        s.k3 = k3;
        ++size_;
        return s.value;
      }
      if (s.k1 == k1 && s.k2 == k2 && s.k3 == k3) return s.value;
    }
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;
  // Grow past 7/8 load: probes stay short while wasting < 2x memory.
  static constexpr std::size_t kMaxLoadNum = 7;
  static constexpr std::size_t kMaxLoadDen = 8;

  struct Slot {
    std::uint64_t k1 = 0;
    std::uint64_t k2 = 0;
    std::uint64_t k3 = 0;
    std::int64_t value = kAbsent;
  };

  static std::uint64_t mix(std::uint64_t k1, std::uint64_t k2, std::uint64_t k3) {
    std::uint64_t h = k1 * 0x9E3779B97F4A7C15ull + (k2 ^ 0x94D049BB133111EBull);
    h += k3 * 0xBF58476D1CE4E5B9ull;
    h ^= h >> 30;
    h *= 0xBF58476D1CE4E5B9ull;
    h ^= h >> 27;
    h *= 0x94D049BB133111EBull;
    h ^= h >> 31;
    return h;
  }

  void rehash(std::size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    const std::size_t mask = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.value == kAbsent) continue;
      for (std::size_t i = mix(s.k1, s.k2, s.k3) & mask;; i = (i + 1) & mask) {
        if (slots_[i].value == kAbsent) {
          slots_[i] = s;
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace flock
