// Strong-ish id typedefs shared across the whole code base.
//
// Components are the unknowns of fault localization: links and devices
// (switches). They live in a single contiguous id space per topology so that
// inference can use flat arrays: links occupy [0, num_links) and devices
// occupy [num_links, num_links + num_devices).
#pragma once

#include <cstdint>
#include <limits>

namespace flock {

using NodeId = std::int32_t;       // any vertex: host or switch
using LinkId = std::int32_t;       // undirected link index
using ComponentId = std::int32_t;  // link or device in the unified space
using PathId = std::int32_t;       // interned path
using PathSetId = std::int32_t;    // interned set of ECMP paths
using FlowId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr ComponentId kInvalidComponent = -1;
inline constexpr PathId kInvalidPath = -1;
inline constexpr PathSetId kInvalidPathSet = -1;

}  // namespace flock
