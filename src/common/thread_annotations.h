// Clang thread-safety analysis annotations (-Wthread-safety), compiled to
// nothing on every other compiler.
//
// The streaming pipeline's central invariant — byte-identical results under
// any concurrency configuration — was, until this header, defended only by
// runtime tools (the TSan CI legs, the equivalence tests). These macros make
// the locking discipline itself machine-checked at COMPILE time: every
// lock-protected field is declared GUARDED_BY its mutex, every
// must-hold-the-lock helper is declared REQUIRES, and the clang CI legs
// build with -Werror=thread-safety, so an unguarded access or a double
// acquire is a build break, not a sanitizer flake three PRs later.
//
// Usage conventions in this tree:
//   * Lock with the annotated wrappers in common/mutex.h (flock::Mutex,
//     flock::MutexLock, flock::CondVar) — std::mutex itself carries no
//     annotations under libstdc++, so locking it directly is invisible to
//     the analysis.
//   * GUARDED_BY(mutex_) on every field the mutex protects.
//   * REQUIRES(mutex_) on private helpers documented "call with lock held".
//   * EXCLUDES(mutex_) on public methods that take the lock themselves, so
//     calling them re-entrantly from a REQUIRES context is a compile error.
//   * Deliberately lock-free designs (SnapshotStore/PairIndex publication,
//     relaxed counters) stay un-annotated: their safety argument is
//     release/acquire ordering, which this analysis cannot express. The lock
//     map in docs/ARCHITECTURE.md states the argument for each.
//   * NO_THREAD_SAFETY_ANALYSIS is the escape hatch of last resort; every
//     use must carry a comment saying why the analysis cannot follow.
//
// The negative-compile harness (tests/static_analysis_test.cmake) asserts
// that misuse of these annotations actually fails the clang build, so the
// whole scheme cannot silently rot into decoration.
#pragma once

#if defined(__clang__)
#define FLOCK_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define FLOCK_THREAD_ANNOTATION_(x)  // no-op: gcc/MSVC have no such analysis
#endif

// A type that models a lock ("capability" in clang's terminology).
#define CAPABILITY(x) FLOCK_THREAD_ANNOTATION_(capability(x))

// RAII type that acquires in its constructor and releases in its destructor.
#define SCOPED_CAPABILITY FLOCK_THREAD_ANNOTATION_(scoped_lockable)

// Field is only read/written while holding the given mutex.
#define GUARDED_BY(x) FLOCK_THREAD_ANNOTATION_(guarded_by(x))

// Pointer field: the *pointee* is protected by the given mutex.
#define PT_GUARDED_BY(x) FLOCK_THREAD_ANNOTATION_(pt_guarded_by(x))

// Function acquires / releases the capability (exclusive or shared).
#define ACQUIRE(...) FLOCK_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) FLOCK_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) FLOCK_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) FLOCK_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

// Function may only be called while already holding the capability.
#define REQUIRES(...) FLOCK_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) FLOCK_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// Function must NOT be called while holding the capability (it takes the
// lock itself; re-entry would self-deadlock).
#define EXCLUDES(...) FLOCK_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Function acquires the capability iff it returns `ret`.
#define TRY_ACQUIRE(ret, ...) FLOCK_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))

// Escape hatch: the function's locking is correct but inexpressible (e.g.
// lock handoff between functions). Always pair with a comment saying why.
#define NO_THREAD_SAFETY_ANALYSIS FLOCK_THREAD_ANNOTATION_(no_thread_safety_analysis)
