// Epoch arena: a small thread-safe pool that recycles per-epoch objects'
// allocations instead of destroying them. Epochs are a natural reset point —
// a shard's next epoch builds roughly the same group/row shape as its last —
// so the pipeline parks each epoch's FlowTable here once the sink is done
// with it and the shard's scratch collectors draw refill-ready tables back
// out, eliminating allocator churn (the last per-record cost the columnar
// refactor didn't remove).
//
// T must provide reset() (empty the object in place, retaining capacity) and
// retained_bytes() (how much storage reset() kept). Objects whose reset
// retains nothing (e.g. moved-from shells after a wholesale table move) are
// dropped instead of pooled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/mutex.h"

namespace flock {

template <typename T>
class EpochArena {
 public:
  // Pool size cap: one shard has at most a handful of epochs in flight
  // between its barrier and the sink, so anything beyond this is shape
  // drift, not steady-state demand.
  static constexpr std::size_t kMaxPooled = 64;

  // A recycled object (reset, capacity warm), or a default-constructed one
  // when the pool is empty.
  T acquire() EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (!pool_.empty()) {
        T out = std::move(pool_.back());
        pool_.pop_back();
        ++reuses_;
        return out;
      }
    }
    return T();
  }

  // Reset `obj` in place and park it for the next acquire(). Objects that
  // retain no storage are dropped — pooling them would hand out cold
  // allocations and inflate the reuse counters.
  void release(T&& obj) EXCLUDES(mutex_) {
    obj.reset();
    const std::size_t kept = obj.retained_bytes();
    if (kept == 0) return;
    MutexLock lock(mutex_);
    if (pool_.size() >= kMaxPooled) return;
    bytes_recycled_ += kept;
    pool_.push_back(std::move(obj));
  }

  // Times acquire() was served from the pool.
  std::uint64_t reuses() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return reuses_;
  }

  // Total retained bytes across every release() that was pooled: the
  // allocation volume the arena saved the next epochs from re-doing.
  std::uint64_t bytes_recycled() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return bytes_recycled_;
  }

  std::size_t pooled() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return pool_.size();
  }

 private:
  mutable Mutex mutex_;
  std::vector<T> pool_ GUARDED_BY(mutex_);
  std::uint64_t reuses_ GUARDED_BY(mutex_) = 0;
  std::uint64_t bytes_recycled_ GUARDED_BY(mutex_) = 0;
};

}  // namespace flock
