// Numeric kernels shared by the likelihood engine and the analysis code.
#pragma once

#include <cmath>
#include <cstdint>

namespace flock {

// log(exp(a) + exp(b)) computed stably.
double log_sum_exp(double a, double b);

// log of the binomial pmf ratio used throughout Flock's model:
//   s(r, t) = log[ p_b^r (1-p_b)^{t-r} / ( p_g^r (1-p_g)^{t-r} ) ]
//           = r * log(p_b/p_g) + (t - r) * log((1-p_b)/(1-p_g))
// This is the per-flow "evidence strength": positive when the observation
// looks more like a bad path than a good one.
double bad_path_log_evidence(std::uint64_t bad, std::uint64_t sent, double p_g, double p_b);

// Normalized flow log-likelihood term of Eq. 1 given that `bad_paths` of the
// flow's `total_paths` ECMP paths are failed under the hypothesis:
//   LL_F(H) - LL_F(H0) = log( (b * e^s + (w - b)) / w )
// where s = bad_path_log_evidence(...). Stable for large |s|.
double flow_log_likelihood_delta(std::int64_t bad_paths, std::int64_t total_paths, double s);

// The drop-rate threshold mu of the appendix analysis:
//   mu = log((1-p_g)/(1-p_b)) / log(p_b(1-p_g) / (p_g(1-p_b)))
// Paths with drop probability above mu add positive evidence, below mu
// negative. Used by tests that validate Lemma 1 (p_g < mu < 2mu < p_b).
double evidence_break_even_rate(double p_g, double p_b);

// Harmonic mean of precision and recall; 0 when either is 0.
double f_score(double precision, double recall);

// log(x / (1-x)); the per-component prior cost is log(rho/(1-rho)).
double logit(double x);

}  // namespace flock
