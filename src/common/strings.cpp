#include "common/strings.h"

#include <cmath>
#include <sstream>

namespace flock {

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : s) {
    if (ch == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  out.push_back(cur);
  return out;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string human_count(double v) {
  const char* suffix = "";
  if (v >= 1e9) {
    v /= 1e9;
    suffix = "G";
  } else if (v >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (v >= 1e3) {
    v /= 1e3;
    suffix = "K";
  }
  std::ostringstream os;
  if (*suffix) {
    os.precision(v < 10 ? 2 : 1);
    os << std::fixed << v << suffix;
  } else {
    os << static_cast<long long>(std::llround(v));
  }
  return os.str();
}

}  // namespace flock
