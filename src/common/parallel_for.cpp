#include "common/parallel_for.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>

namespace flock::parallel {

namespace {
// Set for the lifetime of every helper thread: thread_runner() refuses to
// build a nested team on a thread that is already somebody's helper.
thread_local bool t_is_helper = false;

std::uint64_t now_ns() {
  // Telemetry only (busy_ns counters); never feeds a result.
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now()  // flock-lint: allow(wall-clock)
              .time_since_epoch())
          .count());
}
}  // namespace

ParallelRunner::ParallelRunner(std::int32_t num_threads)
    : num_threads_(std::max<std::int32_t>(1, num_threads)) {
  helpers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (std::int32_t i = 1; i < num_threads_; ++i) {
    helpers_.emplace_back([this] { worker_loop(); });
  }
}

ParallelRunner::~ParallelRunner() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : helpers_) t.join();
}

std::int64_t ParallelRunner::num_chunks(std::int64_t n, std::int64_t grain) {
  if (n <= 0) return 0;
  if (grain <= 0) grain = 1;
  return (n + grain - 1) / grain;
}

void ParallelRunner::worker_loop() {
  t_is_helper = true;
  std::uint64_t seen = 0;
  MutexLock lock(mutex_);
  for (;;) {
    while (!stop_ && generation_ == seen) job_cv_.wait(lock);
    if (stop_) return;
    seen = generation_;
    if (body_ == nullptr) continue;  // the job finished before this wakeup
    const ChunkFn* body = body_;
    const std::int64_t chunks = job_chunks_;
    const std::int64_t n = job_n_;
    const std::int64_t grain = job_grain_;
    ++active_helpers_;
    lock.unlock();
    run_chunks(*body, chunks, n, grain, /*helper=*/true);
    lock.lock();
    if (--active_helpers_ == 0) done_cv_.notify_all();
  }
}

void ParallelRunner::run_chunks(const ChunkFn& fn, std::int64_t chunks, std::int64_t n,
                                std::int64_t grain, bool helper) {
  for (;;) {
    const std::int64_t chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= chunks) return;
    const std::int64_t begin = chunk * grain;
    const std::int64_t end = std::min(n, begin + grain);
    const std::uint64_t t0 = now_ns();
    try {
      fn(chunk, begin, end);
    } catch (...) {
      MutexLock lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    busy_ns_.fetch_add(now_ns() - t0, std::memory_order_relaxed);
    chunks_run_.fetch_add(1, std::memory_order_relaxed);
    if (helper) helper_chunks_.fetch_add(1, std::memory_order_relaxed);
    if (done_chunks_.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
      MutexLock lock(mutex_);
      job_done_ = true;
      done_cv_.notify_all();
    }
  }
}

void ParallelRunner::for_chunks(std::int64_t n, std::int64_t grain, const ChunkFn& fn) {
  if (grain <= 0) grain = 1;
  const std::int64_t chunks = num_chunks(n, grain);
  if (chunks == 0) return;
  {
    MutexLock lock(mutex_);
    if (in_use_) {
      throw std::logic_error("ParallelRunner: reentrant parallel region on one runner");
    }
    in_use_ = true;
    // A straggler from the previous job may still be inside run_chunks doing
    // one final (futile) claim; the claim counters must not be reset under
    // it. Jobs are far coarser than this wait, so it is effectively free.
    while (active_helpers_ != 0) done_cv_.wait(lock);
    error_ = nullptr;
    const bool fan_out = !helpers_.empty() && chunks > 1;
    if (fan_out) {
      body_ = &fn;
      job_n_ = n;
      job_grain_ = grain;
      job_chunks_ = chunks;
      next_chunk_.store(0, std::memory_order_relaxed);
      done_chunks_.store(0, std::memory_order_relaxed);
      job_done_ = false;
      ++generation_;
      lock.unlock();
      job_cv_.notify_all();
      run_chunks(fn, chunks, n, grain, /*helper=*/false);
      lock.lock();
      while (!job_done_) done_cv_.wait(lock);
      body_ = nullptr;
    } else {
      // Serial path (1-thread runner, or a single chunk): same chunk grid,
      // same counters, no handoff.
      lock.unlock();
      for (std::int64_t chunk = 0; chunk < chunks; ++chunk) {
        const std::int64_t begin = chunk * grain;
        const std::int64_t end = std::min(n, begin + grain);
        const std::uint64_t t0 = now_ns();
        try {
          fn(chunk, begin, end);
        } catch (...) {
          MutexLock inner(mutex_);
          if (!error_) error_ = std::current_exception();
        }
        busy_ns_.fetch_add(now_ns() - t0, std::memory_order_relaxed);
        chunks_run_.fetch_add(1, std::memory_order_relaxed);
      }
      lock.lock();
    }
    in_use_ = false;
    std::exception_ptr err = error_;
    error_ = nullptr;
    lock.unlock();
    if (err) std::rethrow_exception(err);
  }
}

double ParallelRunner::reduce(std::int64_t n, std::int64_t grain, const ReduceFn& fn) {
  const std::int64_t chunks = num_chunks(n, grain);
  if (chunks == 0) return 0.0;
  std::vector<double> partials(static_cast<std::size_t>(chunks), 0.0);
  for_chunks(n, grain, [&](std::int64_t chunk, std::int64_t begin, std::int64_t end) {
    partials[static_cast<std::size_t>(chunk)] = fn(chunk, begin, end);
  });
  // Ordered pairwise tree: adjacent pairs, level by level, in chunk order.
  // The rounding sequence is a function of the chunk count alone.
  std::size_t width = partials.size();
  while (width > 1) {
    std::size_t out = 0;
    for (std::size_t i = 0; i + 1 < width; i += 2) partials[out++] = partials[i] + partials[i + 1];
    if (width % 2 == 1) partials[out++] = partials[width - 1];
    width = out;
  }
  return partials[0];
}

std::int32_t env_threads() {
  static const std::int32_t cached = [] {
    const char* value = std::getenv("FLOCK_LOCALIZE_THREADS");
    if (value == nullptr || *value == '\0') return 0;
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || parsed <= 0) return 0;
    return static_cast<std::int32_t>(std::min<long>(parsed, 256));
  }();
  return cached;
}

std::int32_t resolve_threads(std::int32_t requested) {
  if (requested > 0) return std::min<std::int32_t>(requested, 256);
  const std::int32_t env = env_threads();
  return env > 0 ? env : 1;
}

ParallelRunner* thread_runner(std::int32_t threads) {
  if (threads <= 1 || t_is_helper) return nullptr;
  thread_local std::unique_ptr<ParallelRunner> cached;
  thread_local std::int32_t cached_threads = 0;
  if (!cached || cached_threads != threads) {
    cached = std::make_unique<ParallelRunner>(threads);
    cached_threads = threads;
  }
  return cached.get();
}

}  // namespace flock::parallel
