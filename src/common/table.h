// Minimal fixed-width table printer used by the benchmark harnesses so that
// every figure/table reproduction prints aligned, diff-able rows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace flock {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Append a row; values are already formatted strings.
  void add_row(std::vector<std::string> row);

  // Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 3);
  static std::string integer(long long v);

  // Render with column alignment and a header underline.
  void print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace flock
