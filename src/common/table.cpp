#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace flock {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: wrong arity");
  }
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::integer(long long v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) rule += std::string(widths[c], '-') + "  ";
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace flock
