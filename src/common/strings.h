// Small string helpers (no external deps).
#pragma once

#include <string>
#include <vector>

namespace flock {

std::vector<std::string> split(const std::string& s, char delim);
std::string join(const std::vector<std::string>& parts, const std::string& sep);

// "1.2K", "3.4M" style human-readable counts for bench output.
std::string human_count(double v);

}  // namespace flock
