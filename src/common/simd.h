// Runtime-dispatched SIMD kernel for the likelihood engine's weighted inner
// loop (the memoized Σ_F w·f(x) scans of §3.3 over the columnar FlowTable).
//
// The one hot shape after the columnar refactor is
//     Σ_i  wt[i] · log(a · es[i] + c)
// over contiguous double columns, where es[i] = e^{s_i} is the precomputed
// per-row evidence exponential, a = b (the hypothesis's bad-path count) and
// c = w − b. The engine guarantees a ≥ 1, c ≥ 1 and es[i] finite, so the log
// argument is ≥ 1: no zero/subnormal/negative/NaN handling is needed in the
// kernel and the fdlibm-style log below covers the full input domain.
//
// Dispatch contract: the AVX2 and scalar backends are THE SAME algorithm —
// identical operation sequence, identical accumulator shape (four
// interleaved lanes, fixed reduction order), log evaluated by the same
// branch-free polynomial — so results are bit-identical across levels. That
// is what lets the pipeline's byte-identical equivalence suites pin one
// expected output regardless of the machine CI lands on, and what makes
// FLOCK_FORCE_SCALAR=1 a pure performance A/B with no numeric drift.
// (src/common/simd.cpp is compiled with -ffp-contract=off so the scalar
// backend cannot be FMA-contracted into a different rounding sequence.)
#pragma once

#include <cstddef>
#include <cstdint>

namespace flock::simd {

enum class Level : std::uint8_t {
  kScalar = 0,  // portable 4-lane unrolled loop (also the forced fallback)
  kAvx2 = 1,    // 4 doubles per op via AVX2 intrinsics
};

// The level the process dispatches to: the best the CPU supports, downgraded
// to kScalar when the FLOCK_FORCE_SCALAR environment variable is set to
// anything but "0" or empty at first use.
Level active_level();

// Highest level this CPU supports, ignoring the environment override.
Level max_supported_level();

const char* level_name(Level level);

// Re-pin the dispatch level in-process; returns the level actually in
// effect (requests above max_supported_level() clamp down). Test/bench hook
// for same-process A/B runs — call it only while no other thread is inside
// the kernel.
Level set_level(Level level);

// Σ_i wt[i] · log(a · es[i] + c) over n contiguous rows. Requires
// a ≥ 1, c ≥ 0, es[i] ≥ 0 and a·es[i] + c ≥ 1 (see the domain note above).
// Bit-identical at every level.
double weighted_log_sum(const double* es, const double* wt, std::size_t n, double a, double c);

}  // namespace flock::simd
