// The likelihood engine: incremental evaluation of Flock's PGM (§3.2) with
// Joint Likelihood Exploration (§3.3, Algorithm 2), evaluated group-major
// over the columnar FlowTable.
//
// The engine maintains a current hypothesis H (a set of failed components)
// and, in JLE mode, the full Delta array
//     Delta[c] = LL(H ⊕ c) − LL(H)   for every component c,
// where LL is the log likelihood of all flow observations normalized by the
// no-failure hypothesis. Moving the hypothesis to H ⊕ c' updates only the
// contributions of flows that intersect c' (Theorem 1), which is what turns
// each greedy iteration from O(n·D·T) into O(D·T).
//
// Key modeling facts the implementation exploits, mirrored in the FlowTable
// layout:
//   * A flow's likelihood depends on the hypothesis only through the number
//     b of failed paths among its w ECMP candidates (Eq. 1):
//         LL_F(H) − LL_F(∅) = f(b) = log((b·e^s + (w−b))/w),
//     with the flow's evidence s = r·log(p_b/p_g) + (t−r)·log((1−p_b)/(1−p_g)).
//   * Millions of flows share interned per-ToR-pair path sets, so the per-
//     component path-membership counters (Algorithm 2's GetCounters) are
//     computed once per path set, not once per flow; the per-flow sums
//     Σ_F f(x) are memoized per distinct count x; and identical observations
//     enter each sum once, scaled by their dedup weight.
//   * Host access links lie on *every* candidate path of their flows and are
//     tracked separately: a failed endpoint makes all w paths bad. All flows
//     of one table group share both endpoints, so endpoint fail state is one
//     counter per group, not per flow.
//   * Rows of a group with the same taken path traverse the same component
//     sequence, so known-path bookkeeping (the per-path hypothesis-overlap
//     count k) lives on one entry per (group, taken_path), carrying the
//     weighted evidence sum of all its rows.
//
// Updates follow a subtract / mutate / add discipline: before a flip, the
// contributions of every affected group are subtracted from the Delta array;
// the hypothesis state (per-path fail counts, per-group endpoint counts,
// per-entry overlap counts) is then mutated; finally the contributions are
// re-added under the new state. This keeps every formula evaluated against a
// consistent snapshot.
//
// The engine also supports the non-JLE mode used by the Sherlock baseline
// and the ablations: compute_flip_delta_ll() evaluates a single neighbor
// from scratch in O(D·T) by scanning the groups that intersect the component.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "core/inference_input.h"
#include "core/params.h"

namespace flock::parallel {
class ParallelRunner;
}  // namespace flock::parallel

namespace flock {

class LikelihoodEngine {
 public:
  // `prior_logodds`, when non-null and non-empty, is a per-component vector
  // of non-negative evidence-carryover log-odds (the temporal tracker's
  // cross-epoch feedback): entry c shrinks component c's (negative) prior
  // cost, so a component blamed in recent epochs needs less fresh evidence
  // to enter the hypothesis. The cost never flips sign (the carryover is
  // clamped below the full prior), and a null/empty vector leaves every
  // prior computation byte-identical to the prior-less engine. The pointee
  // must outlive the engine.
  //
  // `runner`, when non-null, parallelizes the S(x) memo batch-fill (the
  // group-major universe scan of every Delta initialization and update)
  // across the runner's team. Each memo slot x keeps its serial group-order
  // accumulation sequence — slots are merely computed concurrently — so
  // results are byte-identical with or without a runner, at any thread
  // count (common/parallel_for.h). The pointee must outlive the engine.
  LikelihoodEngine(const InferenceInput& input, const FlockParams& params,
                   bool maintain_delta = true,
                   const std::vector<double>* prior_logodds = nullptr,
                   parallel::ParallelRunner* runner = nullptr);

  std::int32_t num_components() const { return n_comps_; }
  bool failed(ComponentId c) const { return failed_[static_cast<std::size_t>(c)] != 0; }
  std::vector<ComponentId> hypothesis() const;
  std::int32_t hypothesis_size() const { return hypothesis_size_; }

  // Log likelihood of the current hypothesis relative to the empty one.
  double log_likelihood() const { return ll_; }
  // Including the prior term (what inference maximizes, §3.2 "Priors").
  double log_posterior() const { return ll_ + prior_ll_; }

  // Per-component prior cost (negative): log(rho/(1-rho)), scaled 5x for
  // devices on the log scale.
  double prior_cost(ComponentId c) const;

  // Likelihood-only change of flipping c. O(1) in JLE mode, O(D·T) without.
  double flip_delta_ll(ComponentId c) const;
  // Posterior change of flipping c (likelihood delta + prior delta).
  double flip_score(ComponentId c) const;

  // Ground-truth recomputation of flip_delta_ll by scanning affected groups;
  // works in both modes and never touches engine state.
  double compute_flip_delta_ll(ComponentId c) const;

  // Flip component c in the hypothesis, updating LL and (in JLE mode) the
  // whole Delta array.
  void flip(ComponentId c);

  // Best component to *add*: argmax over c ∉ H of flip_score(c).
  // Requires JLE mode. Returns {kInvalidComponent, -inf} when empty.
  std::pair<ComponentId, double> best_addition() const;

  // Running count of hypothesis evaluations, for the §7.8 "hypotheses
  // scanned" statistics. Callers bump it via note_scan().
  std::int64_t hypotheses_scanned() const { return hypotheses_scanned_; }
  void note_scan(std::int64_t n) { hypotheses_scanned_ += n; }

  bool jle_enabled() const { return maintain_delta_; }

  // Reuse of the dense per-call S(x) memo across all JLE updates so far:
  // lookups served from an already-computed table entry vs entries that
  // actually ran a column scan. memo_hits() is what rides up into
  // PipelineStats::memo_hits.
  std::uint64_t memo_lookups() const { return memo_lookups_; }
  std::uint64_t memo_hits() const { return memo_lookups_ - memo_entries_; }
  // apply_* calls that reused the memo's allocation (sized once at
  // construction to the widest path set, invalidated by epoch stamp instead
  // of a per-apply clear): each is a saved allocation/O(w) clear vs the old
  // per-apply assign. Rides into PipelineStats alongside memo_hits.
  std::uint64_t memo_table_reuses() const { return memo_table_reuses_; }

 private:
  // Unknown-path flows of one table group: rows share (path_set, src_link,
  // dst_link), so the endpoint fail state is one counter and every per-group
  // sum runs a tight loop over the s/weight columns.
  struct UnknownGroup {
    PathSetId path_set = kInvalidPathSet;
    ComponentId src_link = kInvalidComponent;
    ComponentId dst_link = kInvalidComponent;
    std::int32_t row_begin = 0;  // into u_s_ / u_es_ / u_weight_
    // Rows are partitioned at construction: [row_begin, vec_end) have
    // moderate evidence (e^s finite and overflow-safe) and run through the
    // vectorized Σ w·log(b·e^s + (w−b)) kernel; the rare extreme-evidence
    // tail [vec_end, row_end) runs the stable per-row form instead.
    std::int32_t vec_end = 0;
    std::int32_t row_end = 0;
    std::int32_t endpoint_fail_count = 0;  // failed endpoints under H (0..2)
    double sum_ws = 0.0;                   // Σ_rows weight · s
    double safe_sum_w = 0.0;               // Σ weight over [row_begin, vec_end)
    double log_w = 0.0;                    // log(path-set width)
  };

  // Known-path flows of one (group, taken_path): rows share the full
  // component sequence, so the hypothesis-overlap count k and the weighted
  // evidence sum cover every row at once.
  struct KnownEntry {
    std::int32_t comp_begin = 0;  // into kcomp_data_
    std::int32_t comp_end = 0;
    std::int32_t fail_count = 0;  // |components ∩ H|
    double sum_ws = 0.0;          // Σ_rows weight · s
  };

  struct PathSetState {
    std::vector<std::int32_t> ugroups;  // UnknownGroup indices using this set
    std::vector<ComponentId> universe;  // distinct components across paths
    std::int32_t bad_paths = 0;         // paths with >= 1 failed component
    std::int64_t rows_total = 0;        // Σ rows across ugroups (parallel gate)
  };

  const PathSetState& ps_state(PathSetId ps) const {
    return ps_states_[static_cast<std::size_t>(ps_state_index_[static_cast<std::size_t>(ps)])];
  }
  PathSetState& ps_state_mut(PathSetId ps) {
    return ps_states_[static_cast<std::size_t>(ps_state_index_[static_cast<std::size_t>(ps)])];
  }

  // Σ over the group's rows of weight · f(x, w, s): the weighted bulk form
  // of Eq. 1, one contiguous scan of the s/weight columns.
  double ugroup_sum(const UnknownGroup& g, std::int64_t bad_paths,
                    std::int64_t total_paths) const;

  // Populate the epoch-stamped scratch counters for one path set under the
  // *current* state: for every component c on some path of the set,
  //   good(c) = number of fully-good paths containing c  (flip target when
  //             adding c is bad_paths + good(c))
  //   crit(c) = number of paths containing c whose only failed component is
  //             c (flip target when removing c is bad_paths - crit(c)).
  void compute_counters(PathSetId ps) const;
  std::int32_t counter_good(ComponentId c) const;
  std::int32_t counter_crit(ComponentId c) const;

  // Delta-array contribution of all groups under one path set (the memoized
  // bulk path of Algorithm 2); sign=-1 subtracts, +1 adds.
  void apply_pathset_contribs(PathSetId ps, double sign);
  // Contribution of a single unknown-path group (used when one of its
  // endpoint links flips and the path-set counters are unaffected).
  void apply_ugroup_contribs(std::int32_t gi, double sign);
  // Contribution of a single known-path entry.
  void apply_kentry_contribs(std::int32_t ei, double sign);

  // Batch-fill of the S(x) memo's needed slots (sum_needed_) over the given
  // groups: each slot x accumulates ugroup_sum(g, x, w) in group order —
  // exactly the serial sequence — with slots farmed to the runner when the
  // job is large enough. Start a new memo epoch with begin_sum_epoch first.
  void begin_sum_epoch(std::int64_t w);
  void fill_marked_sums(const std::int32_t* gis, std::size_t n_gis, std::int64_t w,
                        std::int64_t rows_total);

  const InferenceInput* input_;
  FlockParams params_;
  bool maintain_delta_;
  const std::vector<double>* extra_prior_ = nullptr;  // null = no carryover
  parallel::ParallelRunner* runner_ = nullptr;        // null = serial

  std::int32_t n_comps_ = 0;
  std::vector<char> failed_;
  std::int32_t hypothesis_size_ = 0;
  double ll_ = 0.0;
  double prior_ll_ = 0.0;
  std::int64_t hypotheses_scanned_ = 0;

  // Unknown-path side: group records + row columns (evidence, its
  // exponential — the vectorized kernel's operand, meaningful only for rows
  // below each group's vec_end — and the dedup weight).
  std::vector<UnknownGroup> ugroups_;
  std::vector<double> u_s_;
  std::vector<double> u_es_;
  std::vector<double> u_weight_;

  // Known-path side: entry records + flattened component lists.
  std::vector<KnownEntry> kentries_;
  std::vector<ComponentId> kcomp_data_;

  // Per-component inverted indexes.
  std::vector<std::vector<PathSetId>> ps_of_comp_;
  std::vector<std::vector<std::int32_t>> endpoint_ugroups_of_comp_;
  std::vector<std::vector<std::int32_t>> kentries_of_comp_;

  // Per-path-set grouping.
  std::vector<std::int32_t> ps_state_index_;  // PathSetId -> ps_states_ index or -1
  std::vector<PathSetId> used_path_sets_;
  std::vector<PathSetState> ps_states_;

  std::vector<std::int32_t> path_fail_count_;

  // The JLE Delta array (likelihood part only; priors applied in scores).
  std::vector<double> delta_;

  // Epoch-stamped scratch for compute_counters.
  mutable std::vector<std::int64_t> scratch_epoch_;
  mutable std::vector<std::int32_t> scratch_good_;
  mutable std::vector<std::int32_t> scratch_crit_;
  mutable std::int64_t epoch_ = 0;

  // Dense per-update memo of S(x) = weighted sum over the active groups'
  // rows of f(x, w, s), indexed by the flip target x ∈ [0, w]. The storage
  // is sized ONCE at construction to the widest used path set and reused by
  // every apply call: a slot is valid only when its stamp matches the
  // current sum_epoch_, so starting a new apply is one counter bump instead
  // of two O(w) clears (memo_table_reuses_ counts the saved reallocations).
  // Per apply, the universe scan marks the x values it needs (sum_mark_:
  // 2 = needed, 1 = filled; meaningful only under a current stamp) and
  // collects them in sum_needed_; the needed slots are then batch-filled
  // group-major — optionally in parallel, one slot per task, each keeping
  // the serial group-order accumulation — so each group's columns stream
  // through the kernel once per needed x while hot.
  mutable std::vector<double> sum_table_;
  mutable std::vector<std::uint8_t> sum_mark_;
  mutable std::vector<std::uint64_t> sum_stamp_;
  mutable std::uint64_t sum_epoch_ = 0;
  mutable std::vector<std::int64_t> sum_needed_;
  mutable std::uint64_t memo_lookups_ = 0;
  mutable std::uint64_t memo_entries_ = 0;
  mutable std::uint64_t memo_table_reuses_ = 0;
};

}  // namespace flock
