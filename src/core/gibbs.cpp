#include "core/gibbs.h"

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/likelihood_engine.h"

namespace flock {

LocalizationResult GibbsLocalizer::localize(const InferenceInput& input) const {
  Stopwatch watch;
  LikelihoodEngine engine(input, options_.params, options_.use_jle);
  Rng rng(options_.seed);
  const std::int32_t n = engine.num_components();
  std::vector<std::int64_t> failed_samples(static_cast<std::size_t>(n), 0);
  std::int64_t recorded_sweeps = 0;

  for (std::int32_t sweep = 0; sweep < options_.sweeps; ++sweep) {
    for (ComponentId c = 0; c < n; ++c) {
      // Full conditional of a binary node: P(failed | rest) = sigmoid(score
      // of the "failed" state relative to the "ok" state).
      const double score_to_failed = engine.failed(c) ? -engine.flip_score(c)
                                                      : engine.flip_score(c);
      engine.note_scan(1);
      const double p_failed = 1.0 / (1.0 + std::exp(-score_to_failed));
      const bool want_failed = rng.chance(p_failed);
      if (want_failed != engine.failed(c)) engine.flip(c);
    }
    if (sweep >= options_.burn_in) {
      ++recorded_sweeps;
      for (ComponentId c = 0; c < n; ++c) {
        if (engine.failed(c)) ++failed_samples[static_cast<std::size_t>(c)];
      }
    }
  }

  LocalizationResult result;
  for (ComponentId c = 0; c < n; ++c) {
    const double marginal = recorded_sweeps == 0
                                ? 0.0
                                : static_cast<double>(failed_samples[static_cast<std::size_t>(c)]) /
                                      static_cast<double>(recorded_sweeps);
    if (marginal > options_.marginal_threshold) result.predicted.push_back(c);
  }
  result.log_likelihood = engine.log_posterior();
  result.hypotheses_scanned = engine.hypotheses_scanned();
  result.seconds = watch.seconds();
  return result;
}

}  // namespace flock
