// Gibbs sampling over Flock's PGM, accelerated with JLE (§3.3 notes that JLE
// applies to any algorithm that explores all single-flip neighbors; the
// paper reports accelerating Gibbs by multiple orders of magnitude but
// ultimately prefers Greedy because Gibbs' convergence is hard to bound).
//
// Each sweep resamples every component's failed/ok status from its full
// conditional, which for a binary node is sigmoid of the posterior flip
// score. Components whose marginal failure frequency (after burn-in)
// exceeds `marginal_threshold` are reported failed.
#pragma once

#include <cstdint>

#include "core/inference_input.h"
#include "core/params.h"

namespace flock {

struct GibbsOptions {
  FlockParams params;
  std::int32_t sweeps = 60;
  std::int32_t burn_in = 20;
  double marginal_threshold = 0.5;
  std::uint64_t seed = 1;
  bool use_jle = true;
};

class GibbsLocalizer final : public Localizer {
 public:
  explicit GibbsLocalizer(GibbsOptions options) : options_(options) {}

  LocalizationResult localize(const InferenceInput& input) const override;
  const char* name() const override { return options_.use_jle ? "Gibbs" : "Gibbs(no-JLE)"; }

  const GibbsOptions& options() const { return options_; }
  GibbsOptions& options() { return options_; }

 private:
  GibbsOptions options_;
};

}  // namespace flock
