// Hyper-parameters of Flock's probabilistic graphical model (§3.2, §5.2).
#pragma once

namespace flock {

struct FlockParams {
  // Probability that a packet experiences a problem on a path with no failed
  // component ("good path"). Absorbs background congestion loss.
  double p_g = 3e-4;
  // Probability that a packet experiences a problem on a path with at least
  // one failed component ("bad path"). p_b >> p_g.
  double p_b = 2e-2;
  // A-priori failure probability of any single link. Each component added to
  // a hypothesis costs log(rho/(1-rho)) log-likelihood, which is what pushes
  // the MLE toward small hypotheses.
  double rho = 1e-3;
  // Device priors are this factor larger on log scale (§3.2: 5x worked well);
  // a device must gather proportionally stronger evidence than a link.
  double device_prior_scale = 5.0;
};

}  // namespace flock
