#include "core/flow_table.h"

#include <cassert>
#include <limits>

#include "core/inference_input.h"

namespace flock {

namespace {

std::uint64_t pack(std::int32_t hi, std::int32_t lo) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(hi)) << 32) |
         static_cast<std::uint32_t>(lo);
}

std::uint64_t pack(std::uint32_t hi, std::uint32_t lo) {
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

std::int64_t encode_row(std::int32_t group, std::int32_t row) {
  return (static_cast<std::int64_t>(group) << 32) | static_cast<std::uint32_t>(row);
}

}  // namespace

std::int32_t FlowTable::group_of(PathSetId path_set, ComponentId src_link,
                                 ComponentId dst_link) {
  std::int64_t& slot = group_index_.slot(pack(path_set, src_link),
                                         static_cast<std::uint32_t>(dst_link), 0);
  if (slot != FlatMap192::kAbsent) return static_cast<std::int32_t>(slot);
  const auto gi = static_cast<std::int32_t>(groups_.size());
  slot = gi;
  FlowGroup group;
  if (!spare_groups_.empty()) {
    // Recycled table: reuse a parked group's column capacity.
    group = std::move(spare_groups_.back());
    spare_groups_.pop_back();
  }
  group.path_set = path_set;
  group.src_link = src_link;
  group.dst_link = dst_link;
  groups_.push_back(std::move(group));
  return gi;
}

void FlowTable::add_row(PathSetId path_set, ComponentId src_link, ComponentId dst_link,
                        std::int32_t taken_path, std::uint32_t packets, std::uint32_t bad,
                        std::uint32_t weight) {
  if (dedup_) {
    std::int64_t& slot = row_index_.slot(pack(path_set, src_link), pack(dst_link, taken_path),
                                         pack(packets, bad));
    if (slot != FlatMap192::kAbsent) {
      // Warm path: the row exists; bump its dedup weight. The add saturates:
      // a wrap would silently shrink the row's contribution to the weighted
      // log-likelihood, while a clamp merely undercounts — and is counted.
      const auto gi = static_cast<std::size_t>(slot >> 32);
      const auto ri = static_cast<std::size_t>(slot & 0xffffffff);
      std::uint32_t& w = groups_[gi].weight[ri];
      constexpr std::uint32_t kMax = std::numeric_limits<std::uint32_t>::max();
      if (weight > kMax - w) {
        w = kMax;
        ++weight_saturations_;
      } else {
        w += weight;
      }
      return;
    }
    const std::int32_t gi = group_of(path_set, src_link, dst_link);
    FlowGroup& group = groups_[static_cast<std::size_t>(gi)];
    slot = encode_row(gi, static_cast<std::int32_t>(group.size()));
    group.taken_path.push_back(taken_path);
    group.packets.push_back(packets);
    group.bad.push_back(bad);
    group.weight.push_back(weight);
  } else {
    const std::int32_t gi = group_of(path_set, src_link, dst_link);
    FlowGroup& group = groups_[static_cast<std::size_t>(gi)];
    group.taken_path.push_back(taken_path);
    group.packets.push_back(packets);
    group.bad.push_back(bad);
    group.weight.push_back(weight);
  }
  ++rows_;
}

void FlowTable::add(const FlowObservation& obs) {
  add_row(obs.path_set, obs.src_link, obs.dst_link, obs.taken_path, obs.packets_sent,
          obs.bad_packets, 1);
  ++observations_;
}

void FlowTable::reserve(std::size_t expected_observations) {
  if (dedup_) row_index_.reserve(expected_observations);
}

void FlowTable::merge_from(FlowTable&& other) {
  if (groups_.empty() && dedup_ == other.dedup_) {
    *this = std::move(other);
    return;
  }
  for (FlowGroup& src : other.groups_) {
    for (std::size_t r = 0; r < src.size(); ++r) {
      add_row(src.path_set, src.src_link, src.dst_link, src.taken_path[r], src.packets[r],
              src.bad[r], src.weight[r]);
    }
  }
  observations_ += other.observations_;
  weight_saturations_ += other.weight_saturations_;
  // Leave other empty but with its capacity intact: the epoch barrier hands
  // merged-out batch tables back to the origin shard's arena.
  other.reset();
}

void FlowTable::reset() {
  for (FlowGroup& group : groups_) {
    group.taken_path.clear();
    group.packets.clear();
    group.bad.clear();
    group.weight.clear();
    spare_groups_.push_back(std::move(group));
  }
  groups_.clear();
  rows_ = 0;
  observations_ = 0;
  weight_saturations_ = 0;
  group_index_.clear();
  row_index_.clear();
}

std::size_t FlowTable::retained_bytes() const {
  std::size_t bytes = group_index_.capacity_bytes() + row_index_.capacity_bytes();
  bytes += (groups_.capacity() + spare_groups_.capacity()) * sizeof(FlowGroup);
  auto columns = [&](const FlowGroup& g) {
    return g.taken_path.capacity() * sizeof(std::int32_t) +
           g.packets.capacity() * sizeof(std::uint32_t) +
           g.bad.capacity() * sizeof(std::uint32_t) +
           g.weight.capacity() * sizeof(std::uint32_t);
  };
  for (const FlowGroup& g : groups_) bytes += columns(g);
  for (const FlowGroup& g : spare_groups_) bytes += columns(g);
  return bytes;
}

void FlowTable::set_dedup_enabled(bool dedup) {
  assert(groups_.empty() && "dedup mode can only change while the table is empty");
  dedup_ = dedup;
}

std::vector<FlowObservation> FlowTable::expanded() const {
  std::vector<FlowObservation> out;
  out.reserve(observations_);
  for (const FlowGroup& group : groups_) {
    FlowObservation obs;
    obs.path_set = group.path_set;
    obs.src_link = group.src_link;
    obs.dst_link = group.dst_link;
    for (std::size_t r = 0; r < group.size(); ++r) {
      obs.taken_path = group.taken_path[r];
      obs.packets_sent = group.packets[r];
      obs.bad_packets = group.bad[r];
      for (std::uint32_t w = 0; w < group.weight[r]; ++w) out.push_back(obs);
    }
  }
  return out;
}

}  // namespace flock
