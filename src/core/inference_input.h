// The input to every fault localization scheme: the topology/routing view
// plus the columnar FlowTable of observations for one epoch (§2.2).
//
// A flow observation carries the metric pair (bad_packets, packets_sent) and
// its routing information:
//   * taken_path >= 0  — the concrete path is known (active probes A1/A2 or
//     INT); taken_path indexes into the flow's path set.
//   * taken_path == -1 — only the ECMP candidate set is known (passive
//     telemetry P).
// Host access links are carried separately from the interned switch-level
// path sets so that millions of flows can share one PathSet per ToR pair.
//
// Observations are stored group-major and weight-deduplicated (see
// core/flow_table.h); FlowObservation is the ingestion/expansion unit, not
// the storage unit.
//
// Lifetime: an InferenceInput does not own the Topology or the EcmpRouter —
// epochs are cheap, routing state is not. What it *does* own, explicitly, is
// a shared InferenceContext binding: every input minted for an epoch holds a
// shared_ptr to the context naming the (topology, router) pair it was joined
// against, so the binding provably travels with the snapshot across the
// localizer-pool thread boundary. The referents must outlive every holder of
// the context; StreamingPipeline asserts at teardown that no context
// reference escaped it (see pipeline.h).
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "core/flow_table.h"
#include "topology/ecmp.h"
#include "topology/topology.h"

namespace flock {

struct FlowObservation {
  ComponentId src_link = kInvalidComponent;  // access link of the source host
  ComponentId dst_link = kInvalidComponent;  // access link of the dest host (invalid for
                                             // host->core probes)
  PathSetId path_set = kInvalidPathSet;      // switch-level ECMP candidates
  std::int32_t taken_path = -1;              // index into path set, -1 if unknown
  std::uint32_t packets_sent = 0;
  std::uint32_t bad_packets = 0;

  bool path_known() const { return taken_path >= 0; }
};

// The (topology, router) pair an epoch's observations were joined against.
// Shared by every InferenceInput of a pipeline run; the pointees are borrowed
// and must outlive all holders.
struct InferenceContext {
  const Topology* topo = nullptr;
  const EcmpRouter* router = nullptr;
};

class InferenceInput {
 public:
  // Standalone use (tests, examples, the synchronous eval path): mints a
  // private context over the caller's objects. dedup_rows=false keeps one
  // row per observation — the measured A/B lever of bench/micro_inference.
  InferenceInput(const Topology& topo, const EcmpRouter& router, bool dedup_rows = true)
      : ctx_(std::make_shared<const InferenceContext>(InferenceContext{&topo, &router})),
        table_(dedup_rows) {}

  // Pipeline use: every epoch snapshot shares one context so outstanding
  // references are countable at teardown.
  explicit InferenceInput(std::shared_ptr<const InferenceContext> ctx)
      : ctx_(std::move(ctx)) {}

  // Pipeline use with arena-recycled storage: adopt an (empty, reset) table
  // whose column/index capacity survived a previous epoch (common/arena.h).
  InferenceInput(std::shared_ptr<const InferenceContext> ctx, FlowTable table)
      : ctx_(std::move(ctx)), table_(std::move(table)) {}

  // Surrender the table for arena recycling; this input stays valid but
  // empty. Called once the sink has consumed the epoch.
  FlowTable release_table() { return std::move(table_); }

  const Topology& topology() const { return *ctx_->topo; }
  const EcmpRouter& router() const { return *ctx_->router; }
  const std::shared_ptr<const InferenceContext>& context() const { return ctx_; }

  void add(const FlowObservation& obs) { table_.add(obs); }
  void reserve(std::size_t n) { table_.reserve(n); }

  const FlowTable& table() const { return table_; }

  // Raw observation count (dedup weights included) and stored row count.
  std::size_t num_flows() const { return static_cast<std::size_t>(table_.num_observations()); }
  std::size_t num_rows() const { return table_.num_rows(); }
  // Dedup-weight clamps at the uint32 ceiling (see core/flow_table.h).
  std::uint64_t num_weight_saturations() const { return table_.num_weight_saturations(); }

  // Append another input joined against the same (topology, router) pair,
  // as if its observations had been add()ed here (the epoch-barrier merge).
  void merge_from(InferenceInput&& other) {
    assert(ctx_->topo == other.ctx_->topo && ctx_->router == other.ctx_->router);
    table_.merge_from(std::move(other.table_));
  }

  // The observation multiset as per-flow records, for tests and reference
  // computations; hot paths iterate table().groups().
  std::vector<FlowObservation> expanded_flows() const { return table_.expanded(); }

  // Materialized component sequence of a known-path flow: src access link,
  // every link/device of the taken switch path, dst access link.
  std::vector<ComponentId> known_path_components(const FlowObservation& obs) const;

  // Number of ECMP candidates of a flow (1 when the path is known).
  std::int32_t width(const FlowObservation& obs) const;

 private:
  std::shared_ptr<const InferenceContext> ctx_;
  FlowTable table_;
};

// Result of one localization run.
struct LocalizationResult {
  std::vector<ComponentId> predicted;
  double log_likelihood = 0.0;  // of the returned hypothesis (PGM schemes)
  std::int64_t hypotheses_scanned = 0;
  // Lookups the likelihood engine's dense S(x) memo served without a column
  // scan (see core/likelihood_engine.h); rides into PipelineStats::memo_hits.
  std::uint64_t memo_hits = 0;
  // Applies that reused the memo's one-time allocation instead of paying two
  // O(w) clears (stamp invalidation; see core/likelihood_engine.h).
  std::uint64_t memo_table_reuses = 0;
  // Intra-epoch parallelism counters for this localize call (zero when it
  // ran serial; see common/parallel_for.h): chunks executed, chunks taken by
  // helper threads rather than the calling thread, and total ns inside chunk
  // bodies summed across threads.
  std::uint64_t parallel_chunks = 0;
  std::uint64_t parallel_steals = 0;
  std::uint64_t parallel_ns = 0;
  double seconds = 0.0;
};

// Common interface for Flock and all baselines.
class Localizer {
 public:
  virtual ~Localizer() = default;
  virtual LocalizationResult localize(const InferenceInput& input) const = 0;
  virtual const char* name() const = 0;
};

}  // namespace flock
