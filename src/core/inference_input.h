// The input to every fault localization scheme: the topology/routing view
// plus one observation per monitored flow (§2.2).
//
// A flow observation carries the metric pair (bad_packets, packets_sent) and
// its routing information:
//   * taken_path >= 0  — the concrete path is known (active probes A1/A2 or
//     INT); taken_path indexes into the flow's path set.
//   * taken_path == -1 — only the ECMP candidate set is known (passive
//     telemetry P).
// Host access links are carried separately from the interned switch-level
// path sets so that millions of flows can share one PathSet per ToR pair.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "topology/ecmp.h"
#include "topology/topology.h"

namespace flock {

struct FlowObservation {
  ComponentId src_link = kInvalidComponent;  // access link of the source host
  ComponentId dst_link = kInvalidComponent;  // access link of the dest host (invalid for
                                             // host->core probes)
  PathSetId path_set = kInvalidPathSet;      // switch-level ECMP candidates
  std::int32_t taken_path = -1;              // index into path set, -1 if unknown
  std::uint32_t packets_sent = 0;
  std::uint32_t bad_packets = 0;

  bool path_known() const { return taken_path >= 0; }
};

class InferenceInput {
 public:
  InferenceInput(const Topology& topo, const EcmpRouter& router)
      : topo_(&topo), router_(&router) {}

  const Topology& topology() const { return *topo_; }
  const EcmpRouter& router() const { return *router_; }

  void add(FlowObservation obs) { flows_.push_back(obs); }
  void reserve(std::size_t n) { flows_.reserve(n); }
  const std::vector<FlowObservation>& flows() const { return flows_; }
  std::size_t num_flows() const { return flows_.size(); }

  // Materialized component sequence of a known-path flow: src access link,
  // every link/device of the taken switch path, dst access link.
  std::vector<ComponentId> known_path_components(const FlowObservation& obs) const;

  // Number of ECMP candidates of a flow (1 when the path is known).
  std::int32_t width(const FlowObservation& obs) const;

 private:
  const Topology* topo_;
  const EcmpRouter* router_;
  std::vector<FlowObservation> flows_;
};

// Result of one localization run.
struct LocalizationResult {
  std::vector<ComponentId> predicted;
  double log_likelihood = 0.0;  // of the returned hypothesis (PGM schemes)
  std::int64_t hypotheses_scanned = 0;
  double seconds = 0.0;
};

// Common interface for Flock and all baselines.
class Localizer {
 public:
  virtual ~Localizer() = default;
  virtual LocalizationResult localize(const InferenceInput& input) const = 0;
  virtual const char* name() const = 0;
};

}  // namespace flock
