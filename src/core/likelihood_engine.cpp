#include "core/likelihood_engine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/math_util.h"

namespace flock {

double LikelihoodEngine::flow_ll(std::int64_t bad_paths, std::int64_t total_paths, double s) {
  if (bad_paths <= 0) return 0.0;
  if (bad_paths >= total_paths) return s;  // exact: log(w·e^s / w)
  return flow_log_likelihood_delta(bad_paths, total_paths, s);
}

LikelihoodEngine::LikelihoodEngine(const InferenceInput& input, const FlockParams& params,
                                   bool maintain_delta)
    : input_(&input), params_(params), maintain_delta_(maintain_delta) {
  const Topology& topo = input.topology();
  const EcmpRouter& router = input.router();
  n_comps_ = topo.num_components();
  failed_.assign(static_cast<std::size_t>(n_comps_), 0);

  const auto& flows = input.flows();
  const std::size_t m = flows.size();
  s_flow_.resize(m);
  is_known_.resize(m);
  known_fail_count_.assign(m, 0);
  endpoint_fail_count_.assign(m, 0);
  known_comp_offset_.assign(m + 1, 0);
  known_flows_of_comp_.resize(static_cast<std::size_t>(n_comps_));
  ps_of_comp_.resize(static_cast<std::size_t>(n_comps_));
  endpoint_flows_of_comp_.resize(static_cast<std::size_t>(n_comps_));
  ps_state_index_.assign(static_cast<std::size_t>(router.num_path_sets()), -1);
  path_fail_count_.assign(static_cast<std::size_t>(router.num_paths()), 0);
  scratch_epoch_.assign(static_cast<std::size_t>(n_comps_), 0);
  scratch_good_.assign(static_cast<std::size_t>(n_comps_), 0);
  scratch_crit_.assign(static_cast<std::size_t>(n_comps_), 0);

  const double log_ratio_bad = std::log(params_.p_b / params_.p_g);
  const double log_ratio_good = std::log1p(-params_.p_b) - std::log1p(-params_.p_g);

  // Pass 1: per-flow evidence, path-set registration, known-path sizing.
  std::size_t known_total = 0;
  for (std::size_t f = 0; f < m; ++f) {
    const FlowObservation& obs = flows[f];
    if (obs.bad_packets > obs.packets_sent) {
      throw std::invalid_argument("LikelihoodEngine: bad_packets > packets_sent");
    }
    s_flow_[f] = static_cast<double>(obs.bad_packets) * log_ratio_bad +
                 static_cast<double>(obs.packets_sent - obs.bad_packets) * log_ratio_good;
    is_known_[f] = obs.path_known() ? 1 : 0;
    if (obs.path_known()) {
      const PathSet& set = router.path_set(obs.path_set);
      const Path& p = router.path(set.paths[static_cast<std::size_t>(obs.taken_path)]);
      known_total += p.comps.size() + (obs.src_link != kInvalidComponent ? 1u : 0u) +
                     (obs.dst_link != kInvalidComponent ? 1u : 0u);
    } else {
      auto& idx = ps_state_index_[static_cast<std::size_t>(obs.path_set)];
      if (idx < 0) {
        idx = static_cast<std::int32_t>(ps_states_.size());
        ps_states_.emplace_back();
        used_path_sets_.push_back(obs.path_set);
      }
      ps_states_[static_cast<std::size_t>(idx)].flows.push_back(static_cast<FlowId>(f));
      if (obs.src_link != kInvalidComponent) {
        endpoint_flows_of_comp_[static_cast<std::size_t>(obs.src_link)].push_back(
            static_cast<FlowId>(f));
      }
      if (obs.dst_link != kInvalidComponent) {
        endpoint_flows_of_comp_[static_cast<std::size_t>(obs.dst_link)].push_back(
            static_cast<FlowId>(f));
      }
    }
  }

  // Pass 2: flatten known-path component lists + inverted index.
  known_comp_data_.reserve(known_total);
  for (std::size_t f = 0; f < m; ++f) {
    known_comp_offset_[f] = static_cast<std::int32_t>(known_comp_data_.size());
    if (!is_known_[f]) continue;
    for (ComponentId c : input.known_path_components(flows[f])) {
      known_comp_data_.push_back(c);
      known_flows_of_comp_[static_cast<std::size_t>(c)].push_back(static_cast<FlowId>(f));
    }
  }
  known_comp_offset_[m] = static_cast<std::int32_t>(known_comp_data_.size());

  // Path-set universes + comp -> path-set index.
  for (PathSetId ps : used_path_sets_) {
    PathSetState& st = ps_states_[static_cast<std::size_t>(ps_state_index_[static_cast<std::size_t>(ps)])];
    ++epoch_;
    for (PathId pid : router.path_set(ps).paths) {
      for (ComponentId c : router.path(pid).comps) {
        auto& e = scratch_epoch_[static_cast<std::size_t>(c)];
        if (e != epoch_) {
          e = epoch_;
          st.universe.push_back(c);
        }
      }
    }
    std::sort(st.universe.begin(), st.universe.end());
    for (ComponentId c : st.universe) ps_of_comp_[static_cast<std::size_t>(c)].push_back(ps);
  }

  if (maintain_delta_) {
    delta_.assign(static_cast<std::size_t>(n_comps_), 0.0);
    for (PathSetId ps : used_path_sets_) apply_pathset_contribs(ps, +1.0);
    for (std::size_t f = 0; f < m; ++f) {
      if (is_known_[f]) apply_known_flow_contribs(static_cast<FlowId>(f), +1.0);
    }
  }
}

std::vector<ComponentId> LikelihoodEngine::hypothesis() const {
  std::vector<ComponentId> out;
  for (ComponentId c = 0; c < n_comps_; ++c) {
    if (failed_[static_cast<std::size_t>(c)]) out.push_back(c);
  }
  return out;
}

double LikelihoodEngine::prior_cost(ComponentId c) const {
  const double base = logit(params_.rho);
  return input_->topology().is_device_component(c) ? base * params_.device_prior_scale : base;
}

double LikelihoodEngine::flip_delta_ll(ComponentId c) const {
  if (maintain_delta_) return delta_[static_cast<std::size_t>(c)];
  return compute_flip_delta_ll(c);
}

double LikelihoodEngine::flip_score(ComponentId c) const {
  const double prior = failed(c) ? -prior_cost(c) : prior_cost(c);
  return flip_delta_ll(c) + prior;
}

void LikelihoodEngine::compute_counters(PathSetId ps) const {
  const EcmpRouter& router = input_->router();
  ++epoch_;
  auto touch = [&](ComponentId c) -> std::size_t {
    auto i = static_cast<std::size_t>(c);
    if (scratch_epoch_[i] != epoch_) {
      scratch_epoch_[i] = epoch_;
      scratch_good_[i] = 0;
      scratch_crit_[i] = 0;
    }
    return i;
  };
  for (PathId pid : router.path_set(ps).paths) {
    const std::int32_t fc = path_fail_count_[static_cast<std::size_t>(pid)];
    const auto& comps = router.path(pid).comps;
    if (fc == 0) {
      for (ComponentId c : comps) scratch_good_[touch(c)]++;
    } else if (fc == 1) {
      for (ComponentId c : comps) {
        if (failed_[static_cast<std::size_t>(c)]) {
          scratch_crit_[touch(c)]++;
          break;
        }
      }
    }
  }
}

std::int32_t LikelihoodEngine::counter_good(ComponentId c) const {
  auto i = static_cast<std::size_t>(c);
  return scratch_epoch_[i] == epoch_ ? scratch_good_[i] : 0;
}

std::int32_t LikelihoodEngine::counter_crit(ComponentId c) const {
  auto i = static_cast<std::size_t>(c);
  return scratch_epoch_[i] == epoch_ ? scratch_crit_[i] : 0;
}

std::int64_t LikelihoodEngine::flow_bad_paths(FlowId f) const {
  const FlowObservation& obs = input_->flows()[static_cast<std::size_t>(f)];
  const std::int64_t w = input_->width(obs);
  if (endpoint_fail_count_[static_cast<std::size_t>(f)] > 0) return w;
  return ps_state(obs.path_set).bad_paths;
}

void LikelihoodEngine::apply_pathset_contribs(PathSetId ps, double sign) {
  const EcmpRouter& router = input_->router();
  const PathSetState& st = ps_state(ps);
  if (st.flows.empty()) return;
  const auto w = static_cast<std::int64_t>(router.path_set(ps).paths.size());
  const std::int64_t b = st.bad_paths;
  compute_counters(ps);
  sum_memo_.clear();

  const auto& flows = input_->flows();
  double sum_at_b = 0.0;
  for (FlowId fid : st.flows) {
    const auto fi = static_cast<std::size_t>(fid);
    const FlowObservation& obs = flows[fi];
    const double s = s_flow_[fi];
    const std::int32_t efc = endpoint_fail_count_[fi];
    if (efc == 0) {
      const double fb = flow_ll(b, w, s);
      sum_at_b += fb;
      if (obs.src_link != kInvalidComponent) {
        delta_[static_cast<std::size_t>(obs.src_link)] += sign * (s - fb);
      }
      if (obs.dst_link != kInvalidComponent) {
        delta_[static_cast<std::size_t>(obs.dst_link)] += sign * (s - fb);
      }
    } else if (efc == 1) {
      // Exactly one failed endpoint e: removing e drops the flow back to the
      // path-set's bad count; all other flips are no-ops for this flow.
      const ComponentId e =
          (obs.src_link != kInvalidComponent && failed_[static_cast<std::size_t>(obs.src_link)])
              ? obs.src_link
              : obs.dst_link;
      delta_[static_cast<std::size_t>(e)] += sign * (flow_ll(b, w, s) - s);
    }
  }
  sum_memo_.emplace(b, sum_at_b);

  auto memoized_sum = [&](std::int64_t x) {
    auto it = sum_memo_.find(x);
    if (it != sum_memo_.end()) return it->second;
    double total = 0.0;
    for (FlowId fid : st.flows) {
      const auto fi = static_cast<std::size_t>(fid);
      if (endpoint_fail_count_[fi] == 0) total += flow_ll(x, w, s_flow_[fi]);
    }
    sum_memo_.emplace(x, total);
    return total;
  };

  for (ComponentId c : st.universe) {
    const std::int64_t x = failed_[static_cast<std::size_t>(c)] ? b - counter_crit(c)
                                                                : b + counter_good(c);
    if (x == b) continue;
    delta_[static_cast<std::size_t>(c)] += sign * (memoized_sum(x) - sum_at_b);
  }
}

void LikelihoodEngine::apply_unknown_flow_contribs(FlowId f, double sign) {
  const EcmpRouter& router = input_->router();
  const auto fi = static_cast<std::size_t>(f);
  const FlowObservation& obs = input_->flows()[fi];
  const auto w = static_cast<std::int64_t>(router.path_set(obs.path_set).paths.size());
  const double s = s_flow_[fi];
  const std::int32_t efc = endpoint_fail_count_[fi];
  const PathSetState& st = ps_state(obs.path_set);
  const std::int64_t b = st.bad_paths;
  if (efc == 0) {
    const double fb = flow_ll(b, w, s);
    compute_counters(obs.path_set);
    for (ComponentId c : st.universe) {
      const std::int64_t x = failed_[static_cast<std::size_t>(c)] ? b - counter_crit(c)
                                                                  : b + counter_good(c);
      if (x == b) continue;
      delta_[static_cast<std::size_t>(c)] += sign * (flow_ll(x, w, s) - fb);
    }
    if (obs.src_link != kInvalidComponent) {
      delta_[static_cast<std::size_t>(obs.src_link)] += sign * (s - fb);
    }
    if (obs.dst_link != kInvalidComponent) {
      delta_[static_cast<std::size_t>(obs.dst_link)] += sign * (s - fb);
    }
  } else if (efc == 1) {
    const ComponentId e =
        (obs.src_link != kInvalidComponent && failed_[static_cast<std::size_t>(obs.src_link)])
            ? obs.src_link
            : obs.dst_link;
    delta_[static_cast<std::size_t>(e)] += sign * (flow_ll(b, w, s) - s);
  }
  // efc == 2: every flip leaves all w paths bad; no contributions at all.
}

void LikelihoodEngine::apply_known_flow_contribs(FlowId f, double sign) {
  const auto fi = static_cast<std::size_t>(f);
  const double s = s_flow_[fi];
  const std::int32_t k = known_fail_count_[fi];
  const auto begin = static_cast<std::size_t>(known_comp_offset_[fi]);
  const auto end = static_cast<std::size_t>(known_comp_offset_[fi + 1]);
  if (k == 0) {
    // Adding any component of the path takes the flow from good to bad.
    for (std::size_t i = begin; i < end; ++i) {
      delta_[static_cast<std::size_t>(known_comp_data_[i])] += sign * s;
    }
  } else if (k == 1) {
    // Removing the unique failed component heals the flow; other flips no-op.
    for (std::size_t i = begin; i < end; ++i) {
      const ComponentId c = known_comp_data_[i];
      if (failed_[static_cast<std::size_t>(c)]) {
        delta_[static_cast<std::size_t>(c)] += sign * (-s);
        break;
      }
    }
  }
  // k >= 2: the path stays bad under any single flip.
}

double LikelihoodEngine::compute_flip_delta_ll(ComponentId c) const {
  const EcmpRouter& router = input_->router();
  const auto& flows = input_->flows();
  const bool c_failed = failed(c);
  double total = 0.0;

  for (PathSetId ps : ps_of_comp_[static_cast<std::size_t>(c)]) {
    const PathSetState& st = ps_state(ps);
    if (st.flows.empty()) continue;
    const auto w = static_cast<std::int64_t>(router.path_set(ps).paths.size());
    const std::int64_t b = st.bad_paths;
    std::int32_t cnt = 0;
    for (PathId pid : router.path_set(ps).paths) {
      const auto& comps = router.path(pid).comps;
      if (std::find(comps.begin(), comps.end(), c) == comps.end()) continue;
      const std::int32_t fc = path_fail_count_[static_cast<std::size_t>(pid)];
      if (!c_failed && fc == 0) ++cnt;        // path becomes bad when adding c
      else if (c_failed && fc == 1) ++cnt;    // c is the only failure: path heals
    }
    const std::int64_t x = c_failed ? b - cnt : b + cnt;
    if (x == b) continue;
    for (FlowId fid : st.flows) {
      const auto fi = static_cast<std::size_t>(fid);
      if (endpoint_fail_count_[fi] != 0) continue;
      total += flow_ll(x, w, s_flow_[fi]) - flow_ll(b, w, s_flow_[fi]);
    }
  }

  for (FlowId fid : endpoint_flows_of_comp_[static_cast<std::size_t>(c)]) {
    const auto fi = static_cast<std::size_t>(fid);
    const FlowObservation& obs = flows[fi];
    const auto w = static_cast<std::int64_t>(router.path_set(obs.path_set).paths.size());
    const std::int64_t b = ps_state(obs.path_set).bad_paths;
    const double s = s_flow_[fi];
    const std::int32_t efc = endpoint_fail_count_[fi];
    if (!c_failed) {
      if (efc == 0) total += s - flow_ll(b, w, s);
    } else {
      if (efc == 1) total += flow_ll(b, w, s) - s;
    }
  }

  for (FlowId fid : known_flows_of_comp_[static_cast<std::size_t>(c)]) {
    const auto fi = static_cast<std::size_t>(fid);
    const std::int32_t k = known_fail_count_[fi];
    const double s = s_flow_[fi];
    if (!c_failed) {
      if (k == 0) total += s;
    } else {
      if (k == 1) total -= s;
    }
  }
  return total;
}

void LikelihoodEngine::flip(ComponentId c) {
  const double dll = flip_delta_ll(c);
  const auto ci = static_cast<std::size_t>(c);

  if (maintain_delta_) {
    for (PathSetId ps : ps_of_comp_[ci]) apply_pathset_contribs(ps, -1.0);
    for (FlowId f : endpoint_flows_of_comp_[ci]) apply_unknown_flow_contribs(f, -1.0);
    for (FlowId f : known_flows_of_comp_[ci]) apply_known_flow_contribs(f, -1.0);
  }

  const EcmpRouter& router = input_->router();
  const std::int32_t d = failed_[ci] ? -1 : +1;
  for (PathSetId ps : ps_of_comp_[ci]) {
    PathSetState& st = ps_state_mut(ps);
    for (PathId pid : router.path_set(ps).paths) {
      const auto& comps = router.path(pid).comps;
      if (std::find(comps.begin(), comps.end(), c) == comps.end()) continue;
      std::int32_t& fc = path_fail_count_[static_cast<std::size_t>(pid)];
      fc += d;
      if (d > 0 && fc == 1) ++st.bad_paths;
      if (d < 0 && fc == 0) --st.bad_paths;
    }
  }
  for (FlowId f : endpoint_flows_of_comp_[ci]) endpoint_fail_count_[static_cast<std::size_t>(f)] += d;
  for (FlowId f : known_flows_of_comp_[ci]) known_fail_count_[static_cast<std::size_t>(f)] += d;
  const double prior = prior_cost(c);
  prior_ll_ += d > 0 ? prior : -prior;
  failed_[ci] ^= 1;
  hypothesis_size_ += d;
  ll_ += dll;

  if (maintain_delta_) {
    for (PathSetId ps : ps_of_comp_[ci]) apply_pathset_contribs(ps, +1.0);
    for (FlowId f : endpoint_flows_of_comp_[ci]) apply_unknown_flow_contribs(f, +1.0);
    for (FlowId f : known_flows_of_comp_[ci]) apply_known_flow_contribs(f, +1.0);
  }
}

std::pair<ComponentId, double> LikelihoodEngine::best_addition() const {
  if (!maintain_delta_) {
    throw std::logic_error("best_addition requires JLE mode");
  }
  ComponentId best = kInvalidComponent;
  double best_score = -INFINITY;
  for (ComponentId c = 0; c < n_comps_; ++c) {
    if (failed_[static_cast<std::size_t>(c)]) continue;
    const double score = delta_[static_cast<std::size_t>(c)] + prior_cost(c);
    if (score > best_score) {
      best_score = score;
      best = c;
    }
  }
  return {best, best_score};
}

}  // namespace flock
