#include "core/likelihood_engine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/math_util.h"
#include "common/parallel_for.h"
#include "common/simd.h"

namespace flock {

namespace {
// Rows with s above this go to a group's extreme tail: e^s would overflow or
// dwarf (w − b) so the vectorized log(b·e^s + (w−b)) form loses its footing,
// while the stable per-row flow_log_likelihood_delta handles any s. e^690 ≈
// 5e299 leaves four orders of magnitude of headroom for the b multiplier.
constexpr double kMaxVectorEvidence = 690.0;
// The S(x) batch-fill fans out to the runner only when needed_slots ×
// rows_scanned_per_slot clears this: below it, the job handoff (one mutex +
// cv wakeup round) costs more than the column scans it distributes.
constexpr std::int64_t kParallelFillRows = 32768;
}  // namespace

double LikelihoodEngine::ugroup_sum(const UnknownGroup& g, std::int64_t bad_paths,
                                    std::int64_t total_paths) const {
  if (bad_paths <= 0) return 0.0;
  if (bad_paths >= total_paths) return g.sum_ws;
  double total = 0.0;
  const auto n_vec = static_cast<std::size_t>(g.vec_end - g.row_begin);
  if (n_vec > 0) {
    // Σ w·f = Σ w·log(b·e^s + (w−b)) − log(w)·Σ w, with the first sum the
    // runtime-dispatched SIMD kernel (bit-identical at every level).
    total = simd::weighted_log_sum(u_es_.data() + g.row_begin,
                                   u_weight_.data() + g.row_begin, n_vec,
                                   static_cast<double>(bad_paths),
                                   static_cast<double>(total_paths - bad_paths)) -
            g.log_w * g.safe_sum_w;
  }
  for (std::int32_t i = g.vec_end; i < g.row_end; ++i) {
    total += u_weight_[static_cast<std::size_t>(i)] *
             flow_log_likelihood_delta(bad_paths, total_paths,
                                       u_s_[static_cast<std::size_t>(i)]);
  }
  return total;
}

LikelihoodEngine::LikelihoodEngine(const InferenceInput& input, const FlockParams& params,
                                   bool maintain_delta,
                                   const std::vector<double>* prior_logodds,
                                   parallel::ParallelRunner* runner)
    : input_(&input), params_(params), maintain_delta_(maintain_delta), runner_(runner) {
  const Topology& topo = input.topology();
  const EcmpRouter& router = input.router();
  n_comps_ = topo.num_components();
  if (prior_logodds != nullptr && !prior_logodds->empty()) {
    if (prior_logodds->size() < static_cast<std::size_t>(n_comps_)) {
      throw std::invalid_argument("LikelihoodEngine: prior_logodds shorter than components");
    }
    extra_prior_ = prior_logodds;
  }
  failed_.assign(static_cast<std::size_t>(n_comps_), 0);

  ps_of_comp_.resize(static_cast<std::size_t>(n_comps_));
  endpoint_ugroups_of_comp_.resize(static_cast<std::size_t>(n_comps_));
  kentries_of_comp_.resize(static_cast<std::size_t>(n_comps_));
  ps_state_index_.assign(static_cast<std::size_t>(router.num_path_sets()), -1);
  path_fail_count_.assign(static_cast<std::size_t>(router.num_paths()), 0);
  scratch_epoch_.assign(static_cast<std::size_t>(n_comps_), 0);
  scratch_good_.assign(static_cast<std::size_t>(n_comps_), 0);
  scratch_crit_.assign(static_cast<std::size_t>(n_comps_), 0);

  const double log_ratio_bad = std::log(params_.p_b / params_.p_g);
  const double log_ratio_good = std::log1p(-params_.p_b) - std::log1p(-params_.p_g);

  const FlowTable& table = input.table();
  u_s_.reserve(table.num_rows());
  u_es_.reserve(table.num_rows());
  u_weight_.reserve(table.num_rows());

  // Scratch for the known-path entries of one group: (taken_path, entry).
  std::vector<std::pair<std::int32_t, std::int32_t>> group_entries;
  // Scratch for one group's rare extreme-evidence rows (s, weight): they are
  // appended after the group's vectorizable prefix so [row_begin, vec_end)
  // is contiguous kernel input.
  std::vector<std::pair<double, double>> extreme_rows;

  for (const FlowGroup& group : table.groups()) {
    // Unknown-path rows: one UnknownGroup with contiguous evidence columns.
    const auto row_begin = static_cast<std::int32_t>(u_s_.size());
    double sum_ws = 0.0;
    double safe_sum_w = 0.0;
    group_entries.clear();
    extreme_rows.clear();
    for (std::size_t r = 0; r < group.size(); ++r) {
      const std::uint32_t packets = group.packets[r];
      const std::uint32_t bad = group.bad[r];
      if (bad > packets) {
        throw std::invalid_argument("LikelihoodEngine: bad_packets > packets_sent");
      }
      const double s = static_cast<double>(bad) * log_ratio_bad +
                       static_cast<double>(packets - bad) * log_ratio_good;
      const double weight = static_cast<double>(group.weight[r]);
      const std::int32_t tp = group.taken_path[r];
      if (tp < 0) {
        sum_ws += weight * s;
        if (s <= kMaxVectorEvidence) {
          u_s_.push_back(s);
          u_es_.push_back(std::exp(s));
          u_weight_.push_back(weight);
          safe_sum_w += weight;
        } else {
          extreme_rows.emplace_back(s, weight);
        }
        continue;
      }
      // Known-path row: find or create the (group, taken_path) entry. The
      // distinct taken paths per group are bounded by the ECMP width, so a
      // linear scan beats a map here.
      std::int32_t ei = -1;
      for (const auto& [entry_tp, entry_idx] : group_entries) {
        if (entry_tp == tp) {
          ei = entry_idx;
          break;
        }
      }
      if (ei < 0) {
        ei = static_cast<std::int32_t>(kentries_.size());
        group_entries.emplace_back(tp, ei);
        KnownEntry entry;
        entry.comp_begin = static_cast<std::int32_t>(kcomp_data_.size());
        if (group.src_link != kInvalidComponent) kcomp_data_.push_back(group.src_link);
        const PathSet& set = router.path_set(group.path_set);
        const Path& p = router.path(set.paths[static_cast<std::size_t>(tp)]);
        kcomp_data_.insert(kcomp_data_.end(), p.comps.begin(), p.comps.end());
        if (group.dst_link != kInvalidComponent) kcomp_data_.push_back(group.dst_link);
        entry.comp_end = static_cast<std::int32_t>(kcomp_data_.size());
        kentries_.push_back(entry);
        for (std::int32_t i = entry.comp_begin; i < entry.comp_end; ++i) {
          kentries_of_comp_[static_cast<std::size_t>(kcomp_data_[static_cast<std::size_t>(i)])]
              .push_back(ei);
        }
      }
      kentries_[static_cast<std::size_t>(ei)].sum_ws += weight * s;
    }
    const auto vec_end = static_cast<std::int32_t>(u_s_.size());
    for (const auto& [s, weight] : extreme_rows) {
      u_s_.push_back(s);
      u_es_.push_back(0.0);  // never read: the tail uses u_s_ directly
      u_weight_.push_back(weight);
    }
    const auto row_end = static_cast<std::int32_t>(u_s_.size());
    if (row_end == row_begin) continue;

    const auto gi = static_cast<std::int32_t>(ugroups_.size());
    UnknownGroup g;
    g.path_set = group.path_set;
    g.src_link = group.src_link;
    g.dst_link = group.dst_link;
    g.row_begin = row_begin;
    g.vec_end = vec_end;
    g.row_end = row_end;
    g.sum_ws = sum_ws;
    g.safe_sum_w = safe_sum_w;
    g.log_w = std::log(
        static_cast<double>(router.path_set(group.path_set).paths.size()));
    ugroups_.push_back(g);

    auto& idx = ps_state_index_[static_cast<std::size_t>(group.path_set)];
    if (idx < 0) {
      idx = static_cast<std::int32_t>(ps_states_.size());
      ps_states_.emplace_back();
      used_path_sets_.push_back(group.path_set);
    }
    ps_states_[static_cast<std::size_t>(idx)].ugroups.push_back(gi);
    if (group.src_link != kInvalidComponent) {
      endpoint_ugroups_of_comp_[static_cast<std::size_t>(group.src_link)].push_back(gi);
    }
    if (group.dst_link != kInvalidComponent) {
      endpoint_ugroups_of_comp_[static_cast<std::size_t>(group.dst_link)].push_back(gi);
    }
  }

  // Path-set universes + comp -> path-set index.
  for (PathSetId ps : used_path_sets_) {
    PathSetState& st = ps_state_mut(ps);
    ++epoch_;
    for (PathId pid : router.path_set(ps).paths) {
      for (ComponentId c : router.path(pid).comps) {
        auto& e = scratch_epoch_[static_cast<std::size_t>(c)];
        if (e != epoch_) {
          e = epoch_;
          st.universe.push_back(c);
        }
      }
    }
    std::sort(st.universe.begin(), st.universe.end());
    for (ComponentId c : st.universe) ps_of_comp_[static_cast<std::size_t>(c)].push_back(ps);
  }

  // Per-path-set row totals (the parallel batch-fill gate) and the one-time
  // S(x) memo sizing: one slot per flip target of the widest used set.
  std::size_t max_slots = 0;
  for (PathSetId ps : used_path_sets_) {
    PathSetState& st = ps_state_mut(ps);
    for (std::int32_t gi : st.ugroups) {
      const UnknownGroup& g = ugroups_[static_cast<std::size_t>(gi)];
      st.rows_total += g.row_end - g.row_begin;
    }
    max_slots = std::max(max_slots, router.path_set(ps).paths.size() + 1);
  }
  sum_table_.assign(max_slots, 0.0);
  sum_mark_.assign(max_slots, 0);
  sum_stamp_.assign(max_slots, 0);

  if (maintain_delta_) {
    delta_.assign(static_cast<std::size_t>(n_comps_), 0.0);
    for (PathSetId ps : used_path_sets_) apply_pathset_contribs(ps, +1.0);
    for (std::size_t ei = 0; ei < kentries_.size(); ++ei) {
      apply_kentry_contribs(static_cast<std::int32_t>(ei), +1.0);
    }
  }
}

std::vector<ComponentId> LikelihoodEngine::hypothesis() const {
  std::vector<ComponentId> out;
  for (ComponentId c = 0; c < n_comps_; ++c) {
    if (failed_[static_cast<std::size_t>(c)]) out.push_back(c);
  }
  return out;
}

double LikelihoodEngine::prior_cost(ComponentId c) const {
  const double base = logit(params_.rho);
  double cost =
      input_->topology().is_device_component(c) ? base * params_.device_prior_scale : base;
  if (extra_prior_ != nullptr) {
    // Evidence carryover: positive log-odds shrink the (negative) cost but
    // never flip its sign — a recently blamed component re-confirms on less
    // fresh evidence, never on none.
    const double boost = (*extra_prior_)[static_cast<std::size_t>(c)];
    if (boost > 0.0) cost += std::min(boost, -0.95 * cost);
  }
  return cost;
}

double LikelihoodEngine::flip_delta_ll(ComponentId c) const {
  if (maintain_delta_) return delta_[static_cast<std::size_t>(c)];
  return compute_flip_delta_ll(c);
}

double LikelihoodEngine::flip_score(ComponentId c) const {
  const double prior = failed(c) ? -prior_cost(c) : prior_cost(c);
  return flip_delta_ll(c) + prior;
}

void LikelihoodEngine::compute_counters(PathSetId ps) const {
  const EcmpRouter& router = input_->router();
  ++epoch_;
  auto touch = [&](ComponentId c) -> std::size_t {
    auto i = static_cast<std::size_t>(c);
    if (scratch_epoch_[i] != epoch_) {
      scratch_epoch_[i] = epoch_;
      scratch_good_[i] = 0;
      scratch_crit_[i] = 0;
    }
    return i;
  };
  for (PathId pid : router.path_set(ps).paths) {
    const std::int32_t fc = path_fail_count_[static_cast<std::size_t>(pid)];
    const auto& comps = router.path(pid).comps;
    if (fc == 0) {
      for (ComponentId c : comps) scratch_good_[touch(c)]++;
    } else if (fc == 1) {
      for (ComponentId c : comps) {
        if (failed_[static_cast<std::size_t>(c)]) {
          scratch_crit_[touch(c)]++;
          break;
        }
      }
    }
  }
}

std::int32_t LikelihoodEngine::counter_good(ComponentId c) const {
  auto i = static_cast<std::size_t>(c);
  return scratch_epoch_[i] == epoch_ ? scratch_good_[i] : 0;
}

std::int32_t LikelihoodEngine::counter_crit(ComponentId c) const {
  auto i = static_cast<std::size_t>(c);
  return scratch_epoch_[i] == epoch_ ? scratch_crit_[i] : 0;
}

void LikelihoodEngine::begin_sum_epoch(std::int64_t w) {
  // The memo tables are sized once (constructor, widest path set); growing
  // here only happens if a path set was empty at construction. A bumped
  // stamp invalidates every slot without touching the storage.
  const std::size_t need = static_cast<std::size_t>(w) + 1;
  if (sum_table_.size() < need) {
    sum_table_.resize(need, 0.0);
    sum_mark_.resize(need, 0);
    sum_stamp_.resize(need, 0);
  } else {
    ++memo_table_reuses_;
  }
  ++sum_epoch_;
  sum_needed_.clear();
}

void LikelihoodEngine::fill_marked_sums(const std::int32_t* gis, std::size_t n_gis,
                                        std::int64_t w, std::int64_t rows_total) {
  const auto n_needed = static_cast<std::int64_t>(sum_needed_.size());
  // Each slot x accumulates its groups in the same order the serial loop
  // visits them, so splitting slots across threads is bit-identical to the
  // single-threaded fill (the parallel_for.h determinism discipline).
  auto fill_slot = [&](std::int64_t i) {
    const std::int64_t x = sum_needed_[static_cast<std::size_t>(i)];
    for (std::size_t k = 0; k < n_gis; ++k) {
      const UnknownGroup& g = ugroups_[static_cast<std::size_t>(gis[k])];
      if (g.endpoint_fail_count != 0) continue;
      sum_table_[static_cast<std::size_t>(x)] += ugroup_sum(g, x, w);
    }
  };
  if (runner_ != nullptr && n_needed >= 2 && n_needed * rows_total >= kParallelFillRows) {
    runner_->for_chunks(n_needed, 1, [&](std::int64_t, std::int64_t begin, std::int64_t end) {
      for (std::int64_t i = begin; i < end; ++i) fill_slot(i);
    });
  } else {
    for (std::int64_t i = 0; i < n_needed; ++i) fill_slot(i);
  }
}

void LikelihoodEngine::apply_pathset_contribs(PathSetId ps, double sign) {
  const EcmpRouter& router = input_->router();
  const PathSetState& st = ps_state(ps);
  if (st.ugroups.empty()) return;
  const auto w = static_cast<std::int64_t>(router.path_set(ps).paths.size());
  const std::int64_t b = st.bad_paths;
  compute_counters(ps);

  double sum_at_b = 0.0;
  for (std::int32_t gi : st.ugroups) {
    const UnknownGroup& g = ugroups_[static_cast<std::size_t>(gi)];
    if (g.endpoint_fail_count == 0) {
      const double fb = ugroup_sum(g, b, w);
      sum_at_b += fb;
      if (g.src_link != kInvalidComponent) {
        delta_[static_cast<std::size_t>(g.src_link)] += sign * (g.sum_ws - fb);
      }
      if (g.dst_link != kInvalidComponent) {
        delta_[static_cast<std::size_t>(g.dst_link)] += sign * (g.sum_ws - fb);
      }
    } else if (g.endpoint_fail_count == 1) {
      // Exactly one failed endpoint e: removing e drops the group back to the
      // path-set's bad count; all other flips are no-ops for these flows.
      const ComponentId e =
          (g.src_link != kInvalidComponent && failed_[static_cast<std::size_t>(g.src_link)])
              ? g.src_link
              : g.dst_link;
      delta_[static_cast<std::size_t>(e)] += sign * (ugroup_sum(g, b, w) - g.sum_ws);
    }
  }

  // Dense S(x) memo for this update: mark the flip targets the universe
  // needs, batch-fill the marked slots group-major (each group's columns
  // stream through the kernel once per needed x while hot), then apply. The
  // table is stamp-invalidated, never cleared (see the header).
  begin_sum_epoch(w);
  sum_table_[static_cast<std::size_t>(b)] = sum_at_b;
  sum_mark_[static_cast<std::size_t>(b)] = 1;
  sum_stamp_[static_cast<std::size_t>(b)] = sum_epoch_;
  for (ComponentId c : st.universe) {
    const std::int64_t x = failed_[static_cast<std::size_t>(c)] ? b - counter_crit(c)
                                                                : b + counter_good(c);
    if (x == b) continue;
    ++memo_lookups_;
    const auto xi = static_cast<std::size_t>(x);
    if (sum_stamp_[xi] != sum_epoch_) {
      sum_stamp_[xi] = sum_epoch_;
      sum_mark_[xi] = 2;
      sum_table_[xi] = 0.0;
      sum_needed_.push_back(x);
    }
  }
  if (!sum_needed_.empty()) {
    fill_marked_sums(st.ugroups.data(), st.ugroups.size(), w, st.rows_total);
    for (std::int64_t x : sum_needed_) {
      sum_mark_[static_cast<std::size_t>(x)] = 1;
      ++memo_entries_;
    }
  }

  for (ComponentId c : st.universe) {
    const std::int64_t x = failed_[static_cast<std::size_t>(c)] ? b - counter_crit(c)
                                                                : b + counter_good(c);
    if (x == b) continue;
    delta_[static_cast<std::size_t>(c)] +=
        sign * (sum_table_[static_cast<std::size_t>(x)] - sum_at_b);
  }
}

void LikelihoodEngine::apply_ugroup_contribs(std::int32_t gi, double sign) {
  const EcmpRouter& router = input_->router();
  const UnknownGroup& g = ugroups_[static_cast<std::size_t>(gi)];
  const auto w = static_cast<std::int64_t>(router.path_set(g.path_set).paths.size());
  const PathSetState& st = ps_state(g.path_set);
  const std::int64_t b = st.bad_paths;
  if (g.endpoint_fail_count == 0) {
    const double fb = ugroup_sum(g, b, w);
    compute_counters(g.path_set);
    // Single-group form of the dense S(x) memo: mark, batch-fill, apply.
    begin_sum_epoch(w);
    sum_table_[static_cast<std::size_t>(b)] = fb;
    sum_mark_[static_cast<std::size_t>(b)] = 1;
    sum_stamp_[static_cast<std::size_t>(b)] = sum_epoch_;
    for (ComponentId c : st.universe) {
      const std::int64_t x = failed_[static_cast<std::size_t>(c)] ? b - counter_crit(c)
                                                                  : b + counter_good(c);
      if (x == b) continue;
      ++memo_lookups_;
      const auto xi = static_cast<std::size_t>(x);
      if (sum_stamp_[xi] != sum_epoch_) {
        sum_stamp_[xi] = sum_epoch_;
        sum_mark_[xi] = 2;
        sum_table_[xi] = 0.0;
        sum_needed_.push_back(x);
      }
    }
    if (!sum_needed_.empty()) {
      fill_marked_sums(&gi, 1, w, g.row_end - g.row_begin);
      for (std::int64_t x : sum_needed_) {
        sum_mark_[static_cast<std::size_t>(x)] = 1;
        ++memo_entries_;
      }
    }
    for (ComponentId c : st.universe) {
      const std::int64_t x = failed_[static_cast<std::size_t>(c)] ? b - counter_crit(c)
                                                                  : b + counter_good(c);
      if (x == b) continue;
      delta_[static_cast<std::size_t>(c)] +=
          sign * (sum_table_[static_cast<std::size_t>(x)] - fb);
    }
    if (g.src_link != kInvalidComponent) {
      delta_[static_cast<std::size_t>(g.src_link)] += sign * (g.sum_ws - fb);
    }
    if (g.dst_link != kInvalidComponent) {
      delta_[static_cast<std::size_t>(g.dst_link)] += sign * (g.sum_ws - fb);
    }
  } else if (g.endpoint_fail_count == 1) {
    const ComponentId e =
        (g.src_link != kInvalidComponent && failed_[static_cast<std::size_t>(g.src_link)])
            ? g.src_link
            : g.dst_link;
    delta_[static_cast<std::size_t>(e)] += sign * (ugroup_sum(g, b, w) - g.sum_ws);
  }
  // endpoint_fail_count == 2: every flip leaves all w paths bad; no
  // contributions at all.
}

void LikelihoodEngine::apply_kentry_contribs(std::int32_t ei, double sign) {
  const KnownEntry& e = kentries_[static_cast<std::size_t>(ei)];
  const auto begin = static_cast<std::size_t>(e.comp_begin);
  const auto end = static_cast<std::size_t>(e.comp_end);
  if (e.fail_count == 0) {
    // Adding any component of the path takes every row from good to bad.
    for (std::size_t i = begin; i < end; ++i) {
      delta_[static_cast<std::size_t>(kcomp_data_[i])] += sign * e.sum_ws;
    }
  } else if (e.fail_count == 1) {
    // Removing the unique failed component heals the path; other flips no-op.
    for (std::size_t i = begin; i < end; ++i) {
      const ComponentId c = kcomp_data_[i];
      if (failed_[static_cast<std::size_t>(c)]) {
        delta_[static_cast<std::size_t>(c)] += sign * (-e.sum_ws);
        break;
      }
    }
  }
  // fail_count >= 2: the path stays bad under any single flip.
}

double LikelihoodEngine::compute_flip_delta_ll(ComponentId c) const {
  const EcmpRouter& router = input_->router();
  const auto ci = static_cast<std::size_t>(c);
  const bool c_failed = failed(c);
  double total = 0.0;

  for (PathSetId ps : ps_of_comp_[ci]) {
    const PathSetState& st = ps_state(ps);
    if (st.ugroups.empty()) continue;
    const auto w = static_cast<std::int64_t>(router.path_set(ps).paths.size());
    const std::int64_t b = st.bad_paths;
    std::int32_t cnt = 0;
    for (PathId pid : router.path_set(ps).paths) {
      const auto& comps = router.path(pid).comps;
      if (std::find(comps.begin(), comps.end(), c) == comps.end()) continue;
      const std::int32_t fc = path_fail_count_[static_cast<std::size_t>(pid)];
      if (!c_failed && fc == 0) ++cnt;        // path becomes bad when adding c
      else if (c_failed && fc == 1) ++cnt;    // c is the only failure: path heals
    }
    const std::int64_t x = c_failed ? b - cnt : b + cnt;
    if (x == b) continue;
    for (std::int32_t gi : st.ugroups) {
      const UnknownGroup& g = ugroups_[static_cast<std::size_t>(gi)];
      if (g.endpoint_fail_count != 0) continue;
      total += ugroup_sum(g, x, w) - ugroup_sum(g, b, w);
    }
  }

  for (std::int32_t gi : endpoint_ugroups_of_comp_[ci]) {
    const UnknownGroup& g = ugroups_[static_cast<std::size_t>(gi)];
    const auto w = static_cast<std::int64_t>(router.path_set(g.path_set).paths.size());
    const std::int64_t b = ps_state(g.path_set).bad_paths;
    if (!c_failed) {
      if (g.endpoint_fail_count == 0) total += g.sum_ws - ugroup_sum(g, b, w);
    } else {
      if (g.endpoint_fail_count == 1) total += ugroup_sum(g, b, w) - g.sum_ws;
    }
  }

  for (std::int32_t ei : kentries_of_comp_[ci]) {
    const KnownEntry& e = kentries_[static_cast<std::size_t>(ei)];
    if (!c_failed) {
      if (e.fail_count == 0) total += e.sum_ws;
    } else {
      if (e.fail_count == 1) total -= e.sum_ws;
    }
  }
  return total;
}

void LikelihoodEngine::flip(ComponentId c) {
  const double dll = flip_delta_ll(c);
  const auto ci = static_cast<std::size_t>(c);

  if (maintain_delta_) {
    for (PathSetId ps : ps_of_comp_[ci]) apply_pathset_contribs(ps, -1.0);
    for (std::int32_t gi : endpoint_ugroups_of_comp_[ci]) apply_ugroup_contribs(gi, -1.0);
    for (std::int32_t ei : kentries_of_comp_[ci]) apply_kentry_contribs(ei, -1.0);
  }

  const EcmpRouter& router = input_->router();
  const std::int32_t d = failed_[ci] ? -1 : +1;
  for (PathSetId ps : ps_of_comp_[ci]) {
    PathSetState& st = ps_state_mut(ps);
    for (PathId pid : router.path_set(ps).paths) {
      const auto& comps = router.path(pid).comps;
      if (std::find(comps.begin(), comps.end(), c) == comps.end()) continue;
      std::int32_t& fc = path_fail_count_[static_cast<std::size_t>(pid)];
      fc += d;
      if (d > 0 && fc == 1) ++st.bad_paths;
      if (d < 0 && fc == 0) --st.bad_paths;
    }
  }
  for (std::int32_t gi : endpoint_ugroups_of_comp_[ci]) {
    ugroups_[static_cast<std::size_t>(gi)].endpoint_fail_count += d;
  }
  for (std::int32_t ei : kentries_of_comp_[ci]) {
    kentries_[static_cast<std::size_t>(ei)].fail_count += d;
  }
  const double prior = prior_cost(c);
  prior_ll_ += d > 0 ? prior : -prior;
  failed_[ci] ^= 1;
  hypothesis_size_ += d;
  ll_ += dll;

  if (maintain_delta_) {
    for (PathSetId ps : ps_of_comp_[ci]) apply_pathset_contribs(ps, +1.0);
    for (std::int32_t gi : endpoint_ugroups_of_comp_[ci]) apply_ugroup_contribs(gi, +1.0);
    for (std::int32_t ei : kentries_of_comp_[ci]) apply_kentry_contribs(ei, +1.0);
  }
}

std::pair<ComponentId, double> LikelihoodEngine::best_addition() const {
  if (!maintain_delta_) {
    throw std::logic_error("best_addition requires JLE mode");
  }
  ComponentId best = kInvalidComponent;
  double best_score = -INFINITY;
  for (ComponentId c = 0; c < n_comps_; ++c) {
    if (failed_[static_cast<std::size_t>(c)]) continue;
    const double score = delta_[static_cast<std::size_t>(c)] + prior_cost(c);
    if (score > best_score) {
      best_score = score;
      best = c;
    }
  }
  return {best, best_score};
}

}  // namespace flock
