// Flock's inference: greedy MLE search (§3.3) over the PGM, accelerated by
// Joint Likelihood Exploration. Both accelerations can be disabled
// independently to reproduce the ablation of Fig 4c:
//   use_jle=true   — each iteration reads the maintained Delta array (O(n)
//                    scan) and flipping updates it in O(D·T).
//   use_jle=false  — each iteration evaluates every candidate neighbor from
//                    scratch in O(D·T) each, i.e. O(n·D·T) per iteration
//                    ("greedy only" in the paper's ablation).
#pragma once

#include <vector>

#include "core/inference_input.h"
#include "core/params.h"

namespace flock {

struct FlockOptions {
  FlockParams params;
  bool use_jle = true;
  // Safety cap on hypothesis size; the greedy loop virtually always stops on
  // its own (no positive-score addition) well before this.
  std::int32_t max_hypothesis_size = 64;
  // When > 0, expand the final hypothesis with "equivalent alternatives":
  // for every chosen component, any component that could replace it with a
  // posterior within this (absolute log-likelihood) tolerance is reported
  // too. Under symmetric ECMP, passive-only telemetry cannot distinguish
  // the members of a link equivalence class — reporting the whole class is
  // what lets Fig 5c say "narrowed down to 2-3 possibilities".
  double equivalence_epsilon = 0.0;
  // Intra-epoch worker-team size for one localize call (common/parallel_for.h).
  // 0 defers to FLOCK_LOCALIZE_THREADS (default 1 = serial). Thread count is
  // a pure performance lever: predictions and log-likelihoods are
  // byte-identical at 1, 2, or N threads — every parallelized sum keeps its
  // serial accumulation order.
  std::int32_t localize_threads = 0;
};

class FlockLocalizer final : public Localizer {
 public:
  explicit FlockLocalizer(FlockOptions options) : options_(options) {}

  LocalizationResult localize(const InferenceInput& input) const override;

  // Localize with cross-epoch evidence carryover: `prior_logodds[c]` >= 0
  // shrinks component c's prior cost (see LikelihoodEngine). An empty vector
  // — and the temporal tracker's default prior weight of 0, which exports
  // all zeros — leaves the result byte-identical to localize(input).
  LocalizationResult localize(const InferenceInput& input,
                              const std::vector<double>& prior_logodds) const;

  const char* name() const override { return options_.use_jle ? "Flock" : "Flock(no-JLE)"; }

  const FlockOptions& options() const { return options_; }
  FlockOptions& options() { return options_; }

 private:
  LocalizationResult localize_impl(const InferenceInput& input,
                                   const std::vector<double>* prior_logodds) const;

  FlockOptions options_;
};

}  // namespace flock
