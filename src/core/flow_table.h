// Columnar storage for flow observations: the epoch unit that travels from
// the collector shards to the inference engine.
//
// The paper's key structural facts (§3.2-§3.3) are baked into the layout
// instead of rediscovered per flow:
//   * Millions of flows share one interned PathSet per ToR pair, and a
//     flow's likelihood depends on the hypothesis only through the shared
//     bad-path count b — so observations are stored *group-major*, grouped
//     by (path_set, src_link, dst_link), the full routing identity of a
//     flow. Every inference quantity that is constant across a group
//     (endpoint fail state, candidate width, path membership) is computed
//     once per group, never once per flow.
//   * Within a group, observations that are byte-identical after the
//     routing join — same (taken_path, packets_sent, bad_packets) — are
//     indistinguishable to every scheme, so they collapse into one weighted
//     row. Passive-heavy epochs (many small flows between few hot host
//     pairs, mostly with zero drops) shrink by an order of magnitude.
//
// Rows are stored as structure-of-arrays columns so the engines' inner
// loops scan contiguous memory. add() maintains the grouping and dedup
// incrementally (two flat-map probes per observation), which is what lets
// each collector shard build its epoch's table while records stream in and
// hand it to the localizer pool by move. Group order and row order are
// first-seen order: the table is a deterministic function of the
// observation sequence, and merge_from() of per-batch tables in dispatch
// order reproduces exactly the table a single sequential build would have
// produced (the pipeline's determinism and steal-transparency invariants
// rest on this).
#pragma once

#include <cstdint>
#include <vector>

#include "common/flat_map.h"
#include "common/ids.h"

namespace flock {

struct FlowObservation;  // core/inference_input.h

// One (path_set, src_link, dst_link) group and its row columns. weight[i]
// counts how many raw observations collapsed into row i.
struct FlowGroup {
  PathSetId path_set = kInvalidPathSet;
  ComponentId src_link = kInvalidComponent;
  ComponentId dst_link = kInvalidComponent;
  std::vector<std::int32_t> taken_path;
  std::vector<std::uint32_t> packets;
  std::vector<std::uint32_t> bad;
  std::vector<std::uint32_t> weight;

  std::size_t size() const { return taken_path.size(); }
};

class FlowTable {
 public:
  // dedup=false keeps one row per raw observation (still grouped); the
  // inference microbench uses it as the measured A/B lever for the weighted
  // dedup win.
  explicit FlowTable(bool dedup = true) : dedup_(dedup) {}

  void add(const FlowObservation& obs);

  // Capacity hint in raw observations.
  void reserve(std::size_t expected_observations);

  // Append another table built over the same topology/routing view, exactly
  // as if other's observations had been add()ed here in expansion order.
  // Consumes other's rows (cheap: group/row merge, never per-observation).
  void merge_from(FlowTable&& other);

  const std::vector<FlowGroup>& groups() const { return groups_; }
  std::size_t num_groups() const { return groups_.size(); }
  std::size_t num_rows() const { return rows_; }
  std::uint64_t num_observations() const { return observations_; }
  bool dedup_enabled() const { return dedup_; }

  // Times a row's dedup weight was clamped at the uint32 ceiling instead of
  // wrapping. A pathological epoch of > 2^32 identical rows used to wrap the
  // weight silently and corrupt the weighted log-likelihood; now the weight
  // saturates (the row merely undercounts) and the event is observable here
  // and in PipelineStats::weight_saturations.
  std::uint64_t num_weight_saturations() const { return weight_saturations_; }

  // The observation multiset, materialized row-per-observation (weight-w
  // rows repeat w times) in group-major first-seen order. Test/debug path:
  // hot consumers iterate groups() instead.
  std::vector<FlowObservation> expanded() const;

  // Empty the table while retaining every allocation it has made — group
  // records, their column vectors (parked in a spare pool that group_of()
  // draws from on refill), and both index bucket arrays. The epoch-arena
  // recycle path (common/arena.h): epochs are a natural reset point, and a
  // shard's next epoch has roughly the same group/row shape as its last, so
  // a reset table refills without touching the allocator. A reset table is
  // indistinguishable from a fresh one to every reader — refilling it with
  // the same observation sequence reproduces byte-identical contents.
  void reset();

  // Approximate bytes of storage retained across reset() (column capacities,
  // group records, index buckets) — the arena's bytes_recycled metric.
  std::size_t retained_bytes() const;

  // Flip the dedup mode of an empty table (arenas pool tables regardless of
  // the mode their previous epoch used).
  void set_dedup_enabled(bool dedup);

 private:
  std::int32_t group_of(PathSetId path_set, ComponentId src_link, ComponentId dst_link);
  void add_row(PathSetId path_set, ComponentId src_link, ComponentId dst_link,
               std::int32_t taken_path, std::uint32_t packets, std::uint32_t bad,
               std::uint32_t weight);

  bool dedup_;
  std::vector<FlowGroup> groups_;
  // Column vectors parked by reset(), handed back out by group_of() when a
  // recycled table starts a new group (capacity only; always size 0).
  std::vector<FlowGroup> spare_groups_;
  std::size_t rows_ = 0;
  std::uint64_t observations_ = 0;
  std::uint64_t weight_saturations_ = 0;
  FlatMap192 group_index_;  // (path_set | src_link, dst_link) -> group
  // Full observation identity -> (group, row): the warm add() path is one
  // probe + one weight bump; the group map is only consulted on row misses.
  FlatMap192 row_index_;    // (path_set | src_link, dst_link | taken_path, packets | bad)
};

}  // namespace flock
