#include "core/inference_input.h"

#include <stdexcept>

namespace flock {

std::vector<ComponentId> InferenceInput::known_path_components(const FlowObservation& obs) const {
  if (!obs.path_known()) throw std::invalid_argument("known_path_components: path unknown");
  const EcmpRouter& router = *ctx_->router;
  const PathSet& ps = router.path_set(obs.path_set);
  const Path& p = router.path(ps.paths[static_cast<std::size_t>(obs.taken_path)]);
  std::vector<ComponentId> comps;
  comps.reserve(p.comps.size() + 2);
  if (obs.src_link != kInvalidComponent) comps.push_back(obs.src_link);
  comps.insert(comps.end(), p.comps.begin(), p.comps.end());
  if (obs.dst_link != kInvalidComponent) comps.push_back(obs.dst_link);
  return comps;
}

std::int32_t InferenceInput::width(const FlowObservation& obs) const {
  if (obs.path_known()) return 1;
  return static_cast<std::int32_t>(ctx_->router->path_set(obs.path_set).paths.size());
}

}  // namespace flock
