#include "core/flock_localizer.h"

#include <algorithm>
#include <cmath>

#include "common/parallel_for.h"
#include "common/stopwatch.h"
#include "core/likelihood_engine.h"

namespace flock {

namespace {
// Below this many candidates the no-JLE scan's handoff overhead beats the
// win; the serial loop is kept verbatim for small inputs.
constexpr std::int32_t kParallelScanMin = 32;
constexpr std::int64_t kParallelScanGrain = 16;
}  // namespace

LocalizationResult FlockLocalizer::localize(const InferenceInput& input) const {
  return localize_impl(input, nullptr);
}

LocalizationResult FlockLocalizer::localize(const InferenceInput& input,
                                            const std::vector<double>& prior_logodds) const {
  return localize_impl(input, prior_logodds.empty() ? nullptr : &prior_logodds);
}

LocalizationResult FlockLocalizer::localize_impl(
    const InferenceInput& input, const std::vector<double>* prior_logodds) const {
  Stopwatch watch;
  const std::int32_t threads = parallel::resolve_threads(options_.localize_threads);
  parallel::ParallelRunner* runner = parallel::thread_runner(threads);
  const std::uint64_t chunks0 = runner != nullptr ? runner->chunks_run() : 0;
  const std::uint64_t steals0 = runner != nullptr ? runner->helper_chunks() : 0;
  const std::uint64_t busy0 = runner != nullptr ? runner->busy_ns() : 0;
  LikelihoodEngine engine(input, options_.params, options_.use_jle, prior_logodds, runner);
  const std::int32_t n = engine.num_components();

  // Scratch for the parallel no-JLE scan: per-chunk argmax slots, combined
  // in fixed chunk order below so the winner — including earliest-index
  // tie-breaks — is exactly what the serial loop picks.
  std::vector<double> chunk_best_score;
  std::vector<ComponentId> chunk_best;
  const bool parallel_scan = runner != nullptr && !options_.use_jle && n >= kParallelScanMin;
  if (parallel_scan) {
    const auto chunks =
        static_cast<std::size_t>(parallel::ParallelRunner::num_chunks(n, kParallelScanGrain));
    chunk_best_score.resize(chunks);
    chunk_best.resize(chunks);
  }

  while (engine.hypothesis_size() < options_.max_hypothesis_size) {
    ComponentId best = kInvalidComponent;
    double best_score = 0.0;  // only strictly-positive improvements count
    if (options_.use_jle) {
      auto [cand, score] = engine.best_addition();
      engine.note_scan(n - engine.hypothesis_size());
      if (cand != kInvalidComponent && score > 0.0) {
        best = cand;
        best_score = score;
      }
    } else if (parallel_scan) {
      // Candidates are independent reads of a const engine; each chunk runs
      // its slice in ascending order with the serial loop's strict-> rule.
      runner->for_chunks(n, kParallelScanGrain,
                         [&](std::int64_t chunk, std::int64_t begin, std::int64_t end) {
                           double local_score = 0.0;
                           ComponentId local_best = kInvalidComponent;
                           for (std::int64_t c = begin; c < end; ++c) {
                             const auto cand = static_cast<ComponentId>(c);
                             if (engine.failed(cand)) continue;
                             const double score = engine.flip_score(cand);
                             if (score > local_score) {
                               local_score = score;
                               local_best = cand;
                             }
                           }
                           chunk_best_score[static_cast<std::size_t>(chunk)] = local_score;
                           chunk_best[static_cast<std::size_t>(chunk)] = local_best;
                         });
      for (std::size_t i = 0; i < chunk_best.size(); ++i) {
        if (chunk_best[i] != kInvalidComponent && chunk_best_score[i] > best_score) {
          best_score = chunk_best_score[i];
          best = chunk_best[i];
        }
      }
      engine.note_scan(n - engine.hypothesis_size());
    } else {
      for (ComponentId c = 0; c < n; ++c) {
        if (engine.failed(c)) continue;
        const double score = engine.flip_score(c);
        engine.note_scan(1);
        if (score > best_score) {
          best_score = score;
          best = c;
        }
      }
    }
    if (best == kInvalidComponent) break;
    engine.flip(best);
  }

  LocalizationResult result;
  result.predicted = engine.hypothesis();

  if (options_.equivalence_epsilon > 0.0 && options_.use_jle) {
    // For each chosen component, report the components that could stand in
    // for it at (nearly) the same posterior: remove it, then look for other
    // additions whose score ties with re-adding it.
    std::vector<ComponentId> equivalents;
    for (ComponentId chosen : engine.hypothesis()) {
      engine.flip(chosen);  // temporarily remove
      const double readd_score = engine.flip_score(chosen);
      for (ComponentId c = 0; c < n; ++c) {
        if (c == chosen || engine.failed(c)) continue;
        if (std::abs(engine.flip_score(c) - readd_score) <= options_.equivalence_epsilon) {
          equivalents.push_back(c);
        }
      }
      engine.flip(chosen);  // restore
    }
    for (ComponentId c : equivalents) {
      if (std::find(result.predicted.begin(), result.predicted.end(), c) ==
          result.predicted.end()) {
        result.predicted.push_back(c);
      }
    }
    std::sort(result.predicted.begin(), result.predicted.end());
  }

  result.log_likelihood = engine.log_posterior();
  result.hypotheses_scanned = engine.hypotheses_scanned();
  result.memo_hits = engine.memo_hits();
  result.memo_table_reuses = engine.memo_table_reuses();
  if (runner != nullptr) {
    // The runner is thread-cached across localize calls; deltas attribute
    // exactly this call's chunks to this result.
    result.parallel_chunks = runner->chunks_run() - chunks0;
    result.parallel_steals = runner->helper_chunks() - steals0;
    result.parallel_ns = runner->busy_ns() - busy0;
  }
  result.seconds = watch.seconds();
  return result;
}

}  // namespace flock
