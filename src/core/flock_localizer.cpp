#include "core/flock_localizer.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"
#include "core/likelihood_engine.h"

namespace flock {

LocalizationResult FlockLocalizer::localize(const InferenceInput& input) const {
  return localize_impl(input, nullptr);
}

LocalizationResult FlockLocalizer::localize(const InferenceInput& input,
                                            const std::vector<double>& prior_logodds) const {
  return localize_impl(input, prior_logodds.empty() ? nullptr : &prior_logodds);
}

LocalizationResult FlockLocalizer::localize_impl(
    const InferenceInput& input, const std::vector<double>* prior_logodds) const {
  Stopwatch watch;
  LikelihoodEngine engine(input, options_.params, options_.use_jle, prior_logodds);
  const std::int32_t n = engine.num_components();

  while (engine.hypothesis_size() < options_.max_hypothesis_size) {
    ComponentId best = kInvalidComponent;
    double best_score = 0.0;  // only strictly-positive improvements count
    if (options_.use_jle) {
      auto [cand, score] = engine.best_addition();
      engine.note_scan(n - engine.hypothesis_size());
      if (cand != kInvalidComponent && score > 0.0) {
        best = cand;
        best_score = score;
      }
    } else {
      for (ComponentId c = 0; c < n; ++c) {
        if (engine.failed(c)) continue;
        const double score = engine.flip_score(c);
        engine.note_scan(1);
        if (score > best_score) {
          best_score = score;
          best = c;
        }
      }
    }
    if (best == kInvalidComponent) break;
    engine.flip(best);
  }

  LocalizationResult result;
  result.predicted = engine.hypothesis();

  if (options_.equivalence_epsilon > 0.0 && options_.use_jle) {
    // For each chosen component, report the components that could stand in
    // for it at (nearly) the same posterior: remove it, then look for other
    // additions whose score ties with re-adding it.
    std::vector<ComponentId> equivalents;
    for (ComponentId chosen : engine.hypothesis()) {
      engine.flip(chosen);  // temporarily remove
      const double readd_score = engine.flip_score(chosen);
      for (ComponentId c = 0; c < n; ++c) {
        if (c == chosen || engine.failed(c)) continue;
        if (std::abs(engine.flip_score(c) - readd_score) <= options_.equivalence_epsilon) {
          equivalents.push_back(c);
        }
      }
      engine.flip(chosen);  // restore
    }
    for (ComponentId c : equivalents) {
      if (std::find(result.predicted.begin(), result.predicted.end(), c) ==
          result.predicted.end()) {
        result.predicted.push_back(c);
      }
    }
    std::sort(result.predicted.begin(), result.predicted.end());
  }

  result.log_likelihood = engine.log_posterior();
  result.hypotheses_scanned = engine.hypotheses_scanned();
  result.memo_hits = engine.memo_hits();
  result.seconds = watch.seconds();
  return result;
}

}  // namespace flock
