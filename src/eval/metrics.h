// Accuracy metrics, exactly as defined in §6.4 and Appendix A.1:
//
//   precision = |H ∩ H*| / |H|       (1 if H is empty)
//   recall    = |H ∩ H*| / |H*|      (1 if there are no failures)
//
// with the device-credit refinements: a predicted link is counted correct
// for precision when its device is a truly-failed device; a truly-failed
// device contributes full recall credit when the device itself is predicted
// and x% credit when x% of its (actually failed) links are predicted.
#pragma once

#include <vector>

#include "common/math_util.h"
#include "flowsim/scenario.h"
#include "topology/topology.h"

namespace flock {

struct Accuracy {
  double precision = 1.0;
  double recall = 1.0;

  double fscore() const { return f_score(precision, recall); }
  // "Error" in the paper's error-reduction claims: 1 - fscore.
  double error() const { return 1.0 - fscore(); }
};

Accuracy evaluate_accuracy(const Topology& topo, const GroundTruth& truth,
                           const std::vector<ComponentId>& predicted);

// Mean of precision/recall across traces (how the paper aggregates).
Accuracy mean_accuracy(const std::vector<Accuracy>& per_trace);

}  // namespace flock
