// Binary serialization of simulated traces. The paper's open evaluation
// suite ships telemetry data for its fault scenarios; this module provides
// the same artifact capability: a trace (flows + ground truth) can be saved
// and re-analyzed without re-running the simulator, as long as the consumer
// rebuilds the identical topology/router (the file records the dimensions
// and validates them on load).
//
// Format (little-endian, versioned):
//   magic "FLKT", u32 version,
//   u32 num_links, u32 num_devices, u32 num_path_sets   (validation header)
//   ground truth: u32 n_failed, failed ids; u32 n_dev entries of
//     (device id, u32 n_links, link ids); u32 n_rates, doubles
//   flows: u64 count, packed records.
#pragma once

#include <iosfwd>
#include <string>

#include "flowsim/simulate.h"
#include "topology/ecmp.h"

namespace flock {

void write_trace(std::ostream& os, const Trace& trace, const Topology& topo,
                 const EcmpRouter& router);

// Throws std::runtime_error on malformed input or a topology mismatch.
Trace read_trace(std::istream& is, const Topology& topo, const EcmpRouter& router);

// File-path convenience wrappers.
void save_trace(const std::string& path, const Trace& trace, const Topology& topo,
                const EcmpRouter& router);
Trace load_trace(const std::string& path, const Topology& topo, const EcmpRouter& router);

}  // namespace flock
