#include "eval/runner.h"

#include <stdexcept>

#include "topology/degrade.h"

namespace flock {
namespace {

GroundTruth make_truth(const Topology& topo, const EnvConfig& cfg, std::int32_t trace_index,
                       Rng& rng) {
  switch (cfg.failure) {
    case FailureKind::kSilentLinkDrops: {
      const std::int32_t span = cfg.max_failures - cfg.min_failures + 1;
      const std::int32_t n = cfg.min_failures + (span > 0 ? trace_index % span : 0);
      return make_silent_link_drops(topo, n, cfg.rates, rng);
    }
    case FailureKind::kDeviceFailures: {
      const std::int32_t n = 1 + trace_index % 2;  // up to 2 device failures (§7.2)
      return make_device_failures(topo, n, cfg.device_link_fraction, cfg.rates, rng);
    }
    case FailureKind::kFixedRateDrops:
      return make_silent_link_drops_fixed(topo, cfg.min_failures, cfg.fixed_drop_rate,
                                          cfg.rates, rng);
  }
  throw std::logic_error("make_truth: unknown failure kind");
}

}  // namespace

std::unique_ptr<ExperimentEnv> make_env(const EnvConfig& config) {
  auto env = std::make_unique<ExperimentEnv>();
  env->topo = std::make_unique<Topology>(make_three_tier_clos(config.clos));
  env->router = std::make_unique<EcmpRouter>(*env->topo);
  Rng rng(config.seed);
  for (std::int32_t t = 0; t < config.num_traces; ++t) {
    Rng trace_rng = rng.split();
    GroundTruth truth = make_truth(*env->topo, config, t, trace_rng);
    TrafficConfig traffic = config.traffic;
    if (config.mix_skewed) traffic.skewed = (t % 2 == 1);
    env->traces.push_back(simulate(*env->topo, *env->router, std::move(truth), traffic,
                                   config.probes, trace_rng));
  }
  return env;
}

std::unique_ptr<ExperimentEnv> make_irregular_env(EnvConfig config, double omit_fraction) {
  auto env = std::make_unique<ExperimentEnv>();
  Rng rng(config.seed);
  Topology full = make_three_tier_clos(config.clos);
  env->topo = std::make_unique<Topology>(degrade_topology(full, omit_fraction, rng));
  env->router = std::make_unique<EcmpRouter>(*env->topo);
  for (std::int32_t t = 0; t < config.num_traces; ++t) {
    Rng trace_rng = rng.split();
    GroundTruth truth = make_truth(*env->topo, config, t, trace_rng);
    TrafficConfig traffic = config.traffic;
    if (config.mix_skewed) traffic.skewed = (t % 2 == 1);
    env->traces.push_back(simulate(*env->topo, *env->router, std::move(truth), traffic,
                                   config.probes, trace_rng));
  }
  return env;
}

std::unique_ptr<ExperimentEnv> make_testbed_env(const TestbedEnvConfig& config) {
  auto env = std::make_unique<ExperimentEnv>();
  env->topo = std::make_unique<Topology>(make_leaf_spine(config.leaf_spine));
  env->router = std::make_unique<EcmpRouter>(*env->topo);
  Rng rng(config.seed);
  const std::vector<LinkId> candidates = env->topo->switch_links();
  for (std::int32_t t = 0; t < config.num_traces; ++t) {
    Rng trace_rng = rng.split();
    const LinkId target = candidates[trace_rng.next_below(candidates.size())];
    QueueSimFailures failures;
    if (config.link_flap) {
      LinkFlap flap;
      flap.link = target;
      flap.start_ms = config.sim.duration_ms * 0.25;
      flap.duration_ms = config.sim.duration_ms * 0.25;
      failures.flaps.push_back(flap);
    } else {
      QueueMisconfig m;
      m.link = target;
      failures.misconfigs.push_back(m);
    }
    env->traces.push_back(
        run_queue_sim(*env->topo, *env->router, config.sim, failures, trace_rng));
  }
  return env;
}

std::vector<Accuracy> run_scheme(const Localizer& scheme, const ExperimentEnv& env,
                                 const ViewOptions& view) {
  std::vector<Accuracy> out;
  out.reserve(env.traces.size());
  for (const Trace& trace : env.traces) {
    const InferenceInput input = make_view(*env.topo, *env.router, trace, view);
    const LocalizationResult result = scheme.localize(input);
    out.push_back(evaluate_accuracy(*env.topo, trace.truth, result.predicted));
  }
  return out;
}

Accuracy run_scheme_mean(const Localizer& scheme, const ExperimentEnv& env,
                         const ViewOptions& view) {
  return mean_accuracy(run_scheme(scheme, env, view));
}

}  // namespace flock
