#include "eval/metrics.h"

#include <algorithm>
#include <unordered_set>

namespace flock {

Accuracy evaluate_accuracy(const Topology& topo, const GroundTruth& truth,
                           const std::vector<ComponentId>& predicted) {
  Accuracy acc;
  std::unordered_set<ComponentId> truth_set(truth.failed.begin(), truth.failed.end());
  std::unordered_set<ComponentId> predicted_set(predicted.begin(), predicted.end());

  // Devices that truly failed, by node id, so link predictions can be
  // credited against them.
  std::unordered_set<NodeId> failed_devices;
  for (ComponentId c : truth.failed) {
    if (topo.is_device_component(c)) failed_devices.insert(topo.device_node(c));
  }

  // --- precision -----------------------------------------------------------
  if (!predicted.empty()) {
    std::int64_t correct = 0;
    for (ComponentId c : predicted) {
      if (truth_set.count(c)) {
        ++correct;
        continue;
      }
      if (topo.is_link_component(c) && !failed_devices.empty()) {
        const Link& l = topo.link(topo.component_link(c));
        if ((topo.is_switch(l.a) && failed_devices.count(l.a)) ||
            (topo.is_switch(l.b) && failed_devices.count(l.b))) {
          ++correct;
        }
      }
    }
    acc.precision = static_cast<double>(correct) / static_cast<double>(predicted.size());
  } else {
    acc.precision = 1.0;  // empty hypothesis (App A.1)
  }

  // --- recall ---------------------------------------------------------------
  if (!truth.failed.empty()) {
    double credit = 0.0;
    for (ComponentId c : truth.failed) {
      if (predicted_set.count(c)) {
        credit += 1.0;
        continue;
      }
      if (topo.is_device_component(c)) {
        auto it = truth.device_failed_links.find(c);
        if (it != truth.device_failed_links.end() && !it->second.empty()) {
          std::int64_t hit = 0;
          for (ComponentId link : it->second) hit += predicted_set.count(link) ? 1 : 0;
          credit += static_cast<double>(hit) / static_cast<double>(it->second.size());
        }
      }
    }
    acc.recall = credit / static_cast<double>(truth.failed.size());
  } else {
    acc.recall = 1.0;
    // With zero failures, precision is 1 exactly when the algorithm stays
    // silent (already handled above: any prediction scores 0).
  }
  return acc;
}

Accuracy mean_accuracy(const std::vector<Accuracy>& per_trace) {
  Accuracy mean;
  if (per_trace.empty()) return mean;
  double p = 0.0;
  double r = 0.0;
  for (const Accuracy& a : per_trace) {
    p += a.precision;
    r += a.recall;
  }
  mean.precision = p / static_cast<double>(per_trace.size());
  mean.recall = r / static_cast<double>(per_trace.size());
  return mean;
}

}  // namespace flock
