#include "eval/trace_io.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace flock {
namespace {

constexpr char kMagic[4] = {'F', 'L', 'K', 'T'};
constexpr std::uint32_t kVersion = 1;

void put_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_f64(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t get_u32(std::istream& is) {
  std::uint32_t v;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("trace_io: truncated input");
  return v;
}
std::uint64_t get_u64(std::istream& is) {
  std::uint64_t v;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("trace_io: truncated input");
  return v;
}
double get_f64(std::istream& is) {
  double v;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("trace_io: truncated input");
  return v;
}

void put_flow(std::ostream& os, const SimFlow& f) {
  put_u32(os, static_cast<std::uint32_t>(f.kind));
  put_u32(os, static_cast<std::uint32_t>(f.src_host));
  put_u32(os, static_cast<std::uint32_t>(f.dst_host));
  put_u32(os, static_cast<std::uint32_t>(f.src_link));
  put_u32(os, static_cast<std::uint32_t>(f.dst_link));
  put_u32(os, static_cast<std::uint32_t>(f.path_set));
  put_u32(os, static_cast<std::uint32_t>(f.taken_path));
  put_u32(os, f.packets_sent);
  put_u32(os, f.dropped);
  put_f64(os, static_cast<double>(f.rtt_ms));
}

SimFlow get_flow(std::istream& is) {
  SimFlow f;
  f.kind = static_cast<SimFlowKind>(get_u32(is));
  f.src_host = static_cast<NodeId>(get_u32(is));
  f.dst_host = static_cast<NodeId>(get_u32(is));
  f.src_link = static_cast<ComponentId>(get_u32(is));
  f.dst_link = static_cast<ComponentId>(get_u32(is));
  f.path_set = static_cast<PathSetId>(get_u32(is));
  f.taken_path = static_cast<std::int32_t>(get_u32(is));
  f.packets_sent = get_u32(is);
  f.dropped = get_u32(is);
  f.rtt_ms = static_cast<float>(get_f64(is));
  return f;
}

}  // namespace

void write_trace(std::ostream& os, const Trace& trace, const Topology& topo,
                 const EcmpRouter& router) {
  os.write(kMagic, sizeof kMagic);
  put_u32(os, kVersion);
  put_u32(os, static_cast<std::uint32_t>(topo.num_links()));
  put_u32(os, static_cast<std::uint32_t>(topo.num_devices()));
  put_u32(os, static_cast<std::uint32_t>(router.num_path_sets()));

  put_u32(os, static_cast<std::uint32_t>(trace.truth.failed.size()));
  for (ComponentId c : trace.truth.failed) put_u32(os, static_cast<std::uint32_t>(c));
  put_u32(os, static_cast<std::uint32_t>(trace.truth.device_failed_links.size()));
  for (const auto& [dev, links] : trace.truth.device_failed_links) {
    put_u32(os, static_cast<std::uint32_t>(dev));
    put_u32(os, static_cast<std::uint32_t>(links.size()));
    for (ComponentId l : links) put_u32(os, static_cast<std::uint32_t>(l));
  }
  put_u32(os, static_cast<std::uint32_t>(trace.truth.link_drop_rate.size()));
  for (double r : trace.truth.link_drop_rate) put_f64(os, r);

  put_u64(os, trace.flows.size());
  for (const SimFlow& f : trace.flows) put_flow(os, f);
}

Trace read_trace(std::istream& is, const Topology& topo, const EcmpRouter& router) {
  char magic[4];
  is.read(magic, sizeof magic);
  if (!is || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("trace_io: bad magic");
  }
  if (get_u32(is) != kVersion) throw std::runtime_error("trace_io: unsupported version");
  if (get_u32(is) != static_cast<std::uint32_t>(topo.num_links()) ||
      get_u32(is) != static_cast<std::uint32_t>(topo.num_devices())) {
    throw std::runtime_error("trace_io: topology mismatch");
  }
  const std::uint32_t want_path_sets = get_u32(is);
  if (want_path_sets > static_cast<std::uint32_t>(router.num_path_sets())) {
    throw std::runtime_error(
        "trace_io: router has fewer path sets than the trace references; "
        "rebuild routes (e.g. build_all_tor_pairs) before loading");
  }

  Trace trace;
  const std::uint32_t n_failed = get_u32(is);
  for (std::uint32_t i = 0; i < n_failed; ++i) {
    trace.truth.failed.push_back(static_cast<ComponentId>(get_u32(is)));
  }
  const std::uint32_t n_dev = get_u32(is);
  for (std::uint32_t i = 0; i < n_dev; ++i) {
    const auto dev = static_cast<ComponentId>(get_u32(is));
    const std::uint32_t n_links = get_u32(is);
    auto& links = trace.truth.device_failed_links[dev];
    for (std::uint32_t j = 0; j < n_links; ++j) {
      links.push_back(static_cast<ComponentId>(get_u32(is)));
    }
  }
  const std::uint32_t n_rates = get_u32(is);
  if (n_rates != static_cast<std::uint32_t>(topo.num_links())) {
    throw std::runtime_error("trace_io: drop-rate vector mismatch");
  }
  trace.truth.link_drop_rate.resize(n_rates);
  for (auto& r : trace.truth.link_drop_rate) r = get_f64(is);

  const std::uint64_t n_flows = get_u64(is);
  trace.flows.reserve(n_flows);
  for (std::uint64_t i = 0; i < n_flows; ++i) {
    SimFlow f = get_flow(is);
    if (f.path_set < 0 || f.path_set >= router.num_path_sets()) {
      throw std::runtime_error("trace_io: flow references unknown path set");
    }
    const auto width = static_cast<std::int32_t>(
        router.path_set(f.path_set).paths.size());
    if (f.taken_path < 0 || f.taken_path >= width || f.dropped > f.packets_sent) {
      throw std::runtime_error("trace_io: malformed flow record");
    }
    trace.flows.push_back(f);
  }
  return trace;
}

void save_trace(const std::string& path, const Trace& trace, const Topology& topo,
                const EcmpRouter& router) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("trace_io: cannot open " + path + " for writing");
  write_trace(os, trace, topo, router);
}

Trace load_trace(const std::string& path, const Topology& topo, const EcmpRouter& router) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("trace_io: cannot open " + path);
  return read_trace(is, topo, router);
}

}  // namespace flock
