// Experiment environments and scheme runners shared by tests, benches and
// examples. An environment bundles a topology, its router, and a set of
// simulated traces drawn from one failure distribution (§6.3/§6.4).
#pragma once

#include <memory>
#include <vector>

#include "core/inference_input.h"
#include "eval/metrics.h"
#include "flowsim/simulate.h"
#include "flowsim/views.h"
#include "netsim/queue_sim.h"
#include "topology/ecmp.h"
#include "topology/topology.h"

namespace flock {

struct ExperimentEnv {
  std::unique_ptr<Topology> topo;
  std::unique_ptr<EcmpRouter> router;
  std::vector<Trace> traces;

  ExperimentEnv() = default;
  ExperimentEnv(const ExperimentEnv&) = delete;
  ExperimentEnv& operator=(const ExperimentEnv&) = delete;
};

enum class FailureKind {
  kSilentLinkDrops,   // §7.1
  kDeviceFailures,    // §7.2
  kFixedRateDrops,    // §7.3 SNR sweeps (single failure, fixed rate)
};

struct EnvConfig {
  ThreeTierClosConfig clos;
  std::int32_t num_traces = 8;
  FailureKind failure = FailureKind::kSilentLinkDrops;
  std::int32_t min_failures = 1;
  std::int32_t max_failures = 8;
  double fixed_drop_rate = 5e-3;    // kFixedRateDrops
  double device_link_fraction = 1.0;  // kDeviceFailures
  DropRateConfig rates;
  TrafficConfig traffic;
  ProbeConfig probes;
  // Half the traces uniform, half skewed, like §6.3 (overrides
  // traffic.skewed per trace).
  bool mix_skewed = true;
  std::uint64_t seed = 12345;
};

std::unique_ptr<ExperimentEnv> make_env(const EnvConfig& config);

// As make_env but on an irregular Clos with `omit_fraction` of switch links
// removed (§7.6).
std::unique_ptr<ExperimentEnv> make_irregular_env(EnvConfig config, double omit_fraction);

// Testbed-style environment backed by the queue simulator (§6.3 hardware
// cluster: 2 spines, 8 leaves, 6 hosts per leaf).
struct TestbedEnvConfig {
  LeafSpineConfig leaf_spine;
  std::int32_t num_traces = 6;
  bool link_flap = false;  // false: misconfigured WRED queue
  QueueSimConfig sim;
  std::uint64_t seed = 777;
};

std::unique_ptr<ExperimentEnv> make_testbed_env(const TestbedEnvConfig& config);

// Run a localizer over every trace under a telemetry view; returns per-trace
// accuracies (aggregate with mean_accuracy).
std::vector<Accuracy> run_scheme(const Localizer& scheme, const ExperimentEnv& env,
                                 const ViewOptions& view);

Accuracy run_scheme_mean(const Localizer& scheme, const ExperimentEnv& env,
                         const ViewOptions& view);

}  // namespace flock
