// Automated hyper-parameter calibration (§5.2).
//
// Every scheme's parameters are chosen the same way: evaluate a grid of
// equally-spaced settings on a labeled training set, keep the Pareto
// frontier of (precision, recall), and pick the operating point by the
// paper's rule — require precision >= 98% and maximize recall; if no
// setting qualifies (or the best recall is below 25%), relax the precision
// floor by 5% and retry.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "eval/metrics.h"

namespace flock {

struct ParamGrid {
  std::vector<std::string> names;
  std::vector<std::vector<double>> values;  // one axis per name
};

struct CalibrationPoint {
  std::vector<double> params;
  Accuracy accuracy;
};

struct CalibrationOutcome {
  CalibrationPoint chosen;
  std::vector<CalibrationPoint> frontier;  // Pareto-optimal in (precision, recall)
  std::vector<CalibrationPoint> evaluated;
};

using GridEvalFn = std::function<Accuracy(const std::vector<double>&)>;

// Exhaustive sweep of the cartesian product of the grid axes.
std::vector<CalibrationPoint> sweep_grid(const ParamGrid& grid, const GridEvalFn& eval);

// Pareto frontier: points not dominated in both precision and recall.
std::vector<CalibrationPoint> pareto_frontier(std::vector<CalibrationPoint> points);

// The §5.2 selection rule.
CalibrationPoint select_operating_point(const std::vector<CalibrationPoint>& points,
                                        double initial_precision = 0.98,
                                        double min_recall = 0.25,
                                        double precision_step = 0.05);

// Convenience: sweep + frontier + selection in one call.
CalibrationOutcome calibrate_grid(const ParamGrid& grid, const GridEvalFn& eval);

}  // namespace flock
