// Per-scheme calibration glue: default grids, parameter-vector decoding, and
// one-call calibration of Flock, NetBouncer and 007 on a training
// environment under a given telemetry view (§5.2, §6.1).
#pragma once

#include "baselines/netbouncer.h"
#include "baselines/zero07.h"
#include "calibration/grid.h"
#include "core/params.h"
#include "eval/runner.h"

namespace flock {

// --- parameter vector <-> options ------------------------------------------

// Flock: params = (p_g, p_b, rho).
FlockParams flock_params_from(const std::vector<double>& p);
// NetBouncer: params = (lambda, drop_threshold, device_link_fraction).
NetBouncerOptions netbouncer_options_from(const std::vector<double>& p);
// 007: params = (score_threshold).
Zero07Options zero07_options_from(const std::vector<double>& p);

// --- default grids (equally spaced in a reasonable range, §5.2) -------------

ParamGrid default_flock_grid();
ParamGrid default_netbouncer_grid();
ParamGrid default_zero07_grid();

// --- calibration -------------------------------------------------------------

CalibrationOutcome calibrate_flock(const ExperimentEnv& train, const ViewOptions& view,
                                   const ParamGrid& grid = default_flock_grid());
CalibrationOutcome calibrate_netbouncer(const ExperimentEnv& train, const ViewOptions& view,
                                        const ParamGrid& grid = default_netbouncer_grid());
CalibrationOutcome calibrate_zero07(const ExperimentEnv& train, const ViewOptions& view,
                                    const ParamGrid& grid = default_zero07_grid());

}  // namespace flock
