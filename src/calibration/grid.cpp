#include "calibration/grid.h"

#include <algorithm>
#include <stdexcept>

namespace flock {

std::vector<CalibrationPoint> sweep_grid(const ParamGrid& grid, const GridEvalFn& eval) {
  if (grid.values.empty() || grid.names.size() != grid.values.size()) {
    throw std::invalid_argument("sweep_grid: malformed grid");
  }
  for (const auto& axis : grid.values) {
    if (axis.empty()) throw std::invalid_argument("sweep_grid: empty axis");
  }
  std::vector<CalibrationPoint> out;
  std::vector<std::size_t> idx(grid.values.size(), 0);
  while (true) {
    CalibrationPoint point;
    point.params.reserve(idx.size());
    for (std::size_t a = 0; a < idx.size(); ++a) point.params.push_back(grid.values[a][idx[a]]);
    point.accuracy = eval(point.params);
    out.push_back(std::move(point));
    // Odometer increment.
    std::size_t a = 0;
    for (; a < idx.size(); ++a) {
      if (++idx[a] < grid.values[a].size()) break;
      idx[a] = 0;
    }
    if (a == idx.size()) break;
  }
  return out;
}

std::vector<CalibrationPoint> pareto_frontier(std::vector<CalibrationPoint> points) {
  std::vector<CalibrationPoint> frontier;
  for (const CalibrationPoint& p : points) {
    bool dominated = false;
    for (const CalibrationPoint& q : points) {
      if (q.accuracy.precision >= p.accuracy.precision &&
          q.accuracy.recall >= p.accuracy.recall &&
          (q.accuracy.precision > p.accuracy.precision ||
           q.accuracy.recall > p.accuracy.recall)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(p);
  }
  std::sort(frontier.begin(), frontier.end(), [](const auto& a, const auto& b) {
    return a.accuracy.precision < b.accuracy.precision;
  });
  return frontier;
}

CalibrationPoint select_operating_point(const std::vector<CalibrationPoint>& points,
                                        double initial_precision, double min_recall,
                                        double precision_step) {
  if (points.empty()) throw std::invalid_argument("select_operating_point: no points");
  for (double floor = initial_precision; floor > 0.0; floor -= precision_step) {
    const CalibrationPoint* best = nullptr;
    for (const CalibrationPoint& p : points) {
      if (p.accuracy.precision < floor) continue;
      if (best == nullptr || p.accuracy.recall > best->accuracy.recall) best = &p;
    }
    if (best != nullptr && best->accuracy.recall >= min_recall) return *best;
  }
  // Nothing clears the recall bar at any precision floor: fall back to the
  // highest-recall point overall.
  return *std::max_element(points.begin(), points.end(), [](const auto& a, const auto& b) {
    return a.accuracy.recall < b.accuracy.recall;
  });
}

CalibrationOutcome calibrate_grid(const ParamGrid& grid, const GridEvalFn& eval) {
  CalibrationOutcome outcome;
  outcome.evaluated = sweep_grid(grid, eval);
  outcome.frontier = pareto_frontier(outcome.evaluated);
  outcome.chosen = select_operating_point(outcome.evaluated);
  return outcome;
}

}  // namespace flock
