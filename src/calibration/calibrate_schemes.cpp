#include "calibration/calibrate_schemes.h"

#include <stdexcept>

#include "core/flock_localizer.h"

namespace flock {

FlockParams flock_params_from(const std::vector<double>& p) {
  if (p.size() != 3) throw std::invalid_argument("flock_params_from: want (p_g, p_b, rho)");
  FlockParams params;
  params.p_g = p[0];
  params.p_b = p[1];
  params.rho = p[2];
  return params;
}

NetBouncerOptions netbouncer_options_from(const std::vector<double>& p) {
  if (p.size() != 3) {
    throw std::invalid_argument("netbouncer_options_from: want (lambda, threshold, dev_frac)");
  }
  NetBouncerOptions opt;
  opt.lambda = p[0];
  opt.drop_threshold = p[1];
  opt.device_link_fraction = p[2];
  return opt;
}

Zero07Options zero07_options_from(const std::vector<double>& p) {
  if (p.size() != 1) throw std::invalid_argument("zero07_options_from: want (threshold)");
  Zero07Options opt;
  opt.score_threshold = p[0];
  return opt;
}

ParamGrid default_flock_grid() {
  ParamGrid grid;
  grid.names = {"p_g", "p_b", "rho"};
  grid.values = {
      {1e-4, 3e-4, 5e-4, 7e-4},          // the Fig 8a sweep values
      {2e-3, 6e-3, 2e-2, 6e-2, 2e-1},
      {1e-4, 1e-3, 1e-2},
  };
  return grid;
}

ParamGrid default_netbouncer_grid() {
  ParamGrid grid;
  grid.names = {"lambda", "drop_threshold", "device_link_fraction"};
  grid.values = {
      {1.0, 4.0, 16.0},
      {5e-4, 1e-3, 2e-3, 5e-3, 1e-2},
      {0.5, 0.75},
  };
  return grid;
}

ParamGrid default_zero07_grid() {
  ParamGrid grid;
  grid.names = {"score_threshold"};
  grid.values = {{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}};
  return grid;
}

CalibrationOutcome calibrate_flock(const ExperimentEnv& train, const ViewOptions& view,
                                   const ParamGrid& grid) {
  return calibrate_grid(grid, [&](const std::vector<double>& p) {
    FlockOptions opt;
    opt.params = flock_params_from(p);
    return run_scheme_mean(FlockLocalizer(opt), train, view);
  });
}

CalibrationOutcome calibrate_netbouncer(const ExperimentEnv& train, const ViewOptions& view,
                                        const ParamGrid& grid) {
  return calibrate_grid(grid, [&](const std::vector<double>& p) {
    return run_scheme_mean(NetBouncerLocalizer(netbouncer_options_from(p)), train, view);
  });
}

CalibrationOutcome calibrate_zero07(const ExperimentEnv& train, const ViewOptions& view,
                                    const ParamGrid& grid) {
  return calibrate_grid(grid, [&](const std::vector<double>& p) {
    return run_scheme_mean(Zero07Localizer(zero07_options_from(p)), train, view);
  });
}

}  // namespace flock
