#include "topology/ecmp.h"

#include <algorithm>
#include <deque>
#include <map>
#include <stdexcept>
#include <utility>

namespace flock {
namespace {

std::uint64_t pair_key(NodeId a, NodeId b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

}  // namespace

EcmpRouter::EcmpRouter(const Topology& topo, RouterReadMode mode) : topo_(&topo), mode_(mode) {}

std::vector<std::int32_t> EcmpRouter::bfs_from(NodeId dst_sw) const {
  std::vector<std::int32_t> dist(static_cast<std::size_t>(topo_->num_nodes()), -1);
  std::deque<NodeId> queue;
  dist[static_cast<std::size_t>(dst_sw)] = 0;
  queue.push_back(dst_sw);
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (const auto& [peer, link] : topo_->adjacency(u)) {
      (void)link;
      if (topo_->is_host(peer)) continue;  // hosts are never transit
      auto& d = dist[static_cast<std::size_t>(peer)];
      if (d < 0) {
        d = dist[static_cast<std::size_t>(u)] + 1;
        queue.push_back(peer);
      }
    }
  }
  return dist;
}

std::int32_t EcmpRouter::switch_distance(NodeId src_sw, NodeId dst_sw) {
  MutexLock lock(intern_mutex_);
  auto it = dist_cache_.find(dst_sw);
  if (it == dist_cache_.end()) it = dist_cache_.emplace(dst_sw, bfs_from(dst_sw)).first;
  std::int32_t d = it->second[static_cast<std::size_t>(src_sw)];
  if (d < 0) throw std::runtime_error("switch_distance: disconnected");
  return d;
}

const PathSet& EcmpRouter::path_set(PathSetId id) const {
  return locked_read([&]() -> const PathSet& { return path_sets_[static_cast<std::size_t>(id)]; });
}

const Path& EcmpRouter::path(PathId id) const {
  return locked_read([&]() -> const Path& { return paths_[static_cast<std::size_t>(id)]; });
}

std::int32_t EcmpRouter::num_path_sets() const {
  return locked_read([&] { return static_cast<std::int32_t>(path_sets_.size()); });
}

std::int32_t EcmpRouter::num_paths() const {
  return locked_read([&] { return static_cast<std::int32_t>(paths_.size()); });
}

PathSetId EcmpRouter::path_set_between(NodeId src_sw, NodeId dst_sw) {
  if (!topo_->is_switch(src_sw) || !topo_->is_switch(dst_sw)) {
    throw std::invalid_argument("path_set_between: endpoints must be switches");
  }
  const auto key = pair_key(src_sw, dst_sw);
  // Warm path: wait-free in snapshot mode, shared-locked in baseline mode.
  {
    const std::int32_t id = locked_read([&] { return cache_.find(key); });
    if (id >= 0) return id;
  }
  read_retries_.fetch_add(1, std::memory_order_relaxed);

  MutexLock lock(intern_mutex_);
  {
    const std::int32_t id = cache_.find(key);  // re-check: another interner may have won
    if (id >= 0) return id;
  }
  const PathSetId id = enumerate_paths(src_sw, dst_sw);
  {
    // Publish order matters: element stores become visible before the index
    // entry, so a reader that finds the key can dereference immediately. In
    // baseline mode the exclusive lock stands in for that ordering, exactly
    // like the old design.
    std::unique_lock<std::shared_mutex> publish_lock(rw_mutex_, std::defer_lock);
    if (mode_ == RouterReadMode::kSharedMutexBaseline) publish_lock.lock();
    paths_.publish();
    path_sets_.publish();
    cache_.insert(key, id);
  }
  index_publishes_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

PathSetId EcmpRouter::enumerate_paths(NodeId src_sw, NodeId dst_sw) {
  PathSet set;
  set.src_sw = src_sw;
  set.dst_sw = dst_sw;
  if (src_sw == dst_sw) {
    Path p;
    p.comps.push_back(topo_->device_component(src_sw));
    paths_.append(std::move(p));
    set.paths.push_back(static_cast<PathId>(paths_.writer_size() - 1));
  } else {
    auto dit = dist_cache_.find(dst_sw);
    if (dit == dist_cache_.end()) dit = dist_cache_.emplace(dst_sw, bfs_from(dst_sw)).first;
    const auto& dist = dit->second;
    if (dist[static_cast<std::size_t>(src_sw)] < 0) {
      throw std::runtime_error("enumerate_paths: disconnected switch pair");
    }
    // Iterative DFS over the shortest-path DAG (edges strictly decreasing
    // the distance-to-destination).
    std::vector<ComponentId> comps;  // current partial path
    struct Frame {
      NodeId node;
      std::size_t next_edge;
      std::size_t comps_mark;
    };
    std::vector<Frame> stack;
    comps.push_back(topo_->device_component(src_sw));
    stack.push_back({src_sw, 0, comps.size()});
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.node == dst_sw) {
        Path p;
        p.comps = comps;
        paths_.append(std::move(p));
        set.paths.push_back(static_cast<PathId>(paths_.writer_size() - 1));
        stack.pop_back();
        if (!stack.empty()) comps.resize(stack.back().comps_mark);
        continue;
      }
      const auto& adj = topo_->adjacency(f.node);
      bool descended = false;
      while (f.next_edge < adj.size()) {
        auto [peer, link] = adj[f.next_edge++];
        if (topo_->is_host(peer)) continue;
        if (dist[static_cast<std::size_t>(peer)] != dist[static_cast<std::size_t>(f.node)] - 1) {
          continue;
        }
        comps.push_back(topo_->link_component(link));
        comps.push_back(topo_->device_component(peer));
        stack.push_back({peer, 0, comps.size()});
        descended = true;
        break;
      }
      if (!descended && !stack.empty() && &f == &stack.back()) {
        stack.pop_back();
        if (!stack.empty()) comps.resize(stack.back().comps_mark);
      }
    }
    std::sort(set.paths.begin(), set.paths.end());
  }
  path_sets_.append(std::move(set));
  return static_cast<PathSetId>(path_sets_.writer_size() - 1);
}

PathSetId EcmpRouter::host_pair_path_set(NodeId src_host, NodeId dst_host) {
  return path_set_between(topo_->tor_of(src_host), topo_->tor_of(dst_host));
}

void EcmpRouter::build_all_tor_pairs() {
  std::vector<NodeId> tors;
  for (NodeId sw : topo_->switches()) {
    if (topo_->node(sw).kind == NodeKind::kTor) tors.push_back(sw);
  }
  for (NodeId a : tors) {
    for (NodeId b : tors) path_set_between(a, b);
  }
}

std::vector<std::vector<ComponentId>> ecmp_equivalence_classes(EcmpRouter& router) {
  const Topology& topo = router.topology();
  router.build_all_tor_pairs();
  // signature[c] = sorted list of ((src, dst) pair key, number of paths
  // containing c). Keying by the switch pair — not the path-set id — makes
  // the signature (and therefore the class partition and its order)
  // independent of the order in which pairs were interned.
  std::map<ComponentId, std::vector<std::pair<std::uint64_t, std::int32_t>>> signature;
  for (PathSetId ps = 0; ps < router.num_path_sets(); ++ps) {
    const PathSet& set = router.path_set(ps);
    const std::uint64_t key = pair_key(set.src_sw, set.dst_sw);
    std::map<ComponentId, std::int32_t> counts;
    for (PathId pid : set.paths) {
      for (ComponentId c : router.path(pid).comps) counts[c]++;
    }
    for (const auto& [c, cnt] : counts) signature[c].emplace_back(key, cnt);
  }
  for (auto& [c, sig] : signature) {
    (void)c;
    std::sort(sig.begin(), sig.end());
  }
  // Group by identical signature. Components not on any ToR-pair path (e.g.
  // host links) are excluded.
  std::map<std::vector<std::pair<std::uint64_t, std::int32_t>>, std::vector<ComponentId>> groups;
  for (auto& [c, sig] : signature) {
    if (topo.is_link_component(c) && topo.is_host_link(topo.component_link(c))) continue;
    groups[sig].push_back(c);
  }
  std::vector<std::vector<ComponentId>> classes;
  classes.reserve(groups.size());
  for (auto& [sig, members] : groups) {
    (void)sig;
    classes.push_back(std::move(members));
  }
  return classes;
}

double theoretical_max_precision(const std::vector<std::vector<ComponentId>>& classes,
                                 const std::vector<ComponentId>& truth) {
  if (truth.empty()) return 1.0;
  std::vector<const std::vector<ComponentId>*> hit;
  for (ComponentId t : truth) {
    for (const auto& cls : classes) {
      if (std::find(cls.begin(), cls.end(), t) != cls.end()) {
        if (std::find(hit.begin(), hit.end(), &cls) == hit.end()) hit.push_back(&cls);
        break;
      }
    }
  }
  double denom = 0;
  for (const auto* cls : hit) denom += static_cast<double>(cls->size());
  if (denom == 0) return 0.0;
  return static_cast<double>(truth.size()) / denom;
}

}  // namespace flock
