// Datacenter topology model.
//
// A Topology is an undirected multigraph of hosts and switches. Fault
// localization treats two kinds of components as potentially faulty:
//   * links  — component ids [0, num_links())
//   * devices (switches) — component ids [num_links(), num_components())
// Hosts are traffic endpoints, never blamed.
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"

namespace flock {

enum class NodeKind : std::uint8_t { kHost, kTor, kAgg, kCore, kSpine };

const char* to_string(NodeKind kind);

struct Node {
  NodeKind kind = NodeKind::kHost;
  std::int32_t pod = -1;    // pod index for Tor/Agg (and hosts), -1 otherwise
  std::int32_t index = -1;  // index within its tier (for naming)
};

struct Link {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
};

class Topology {
 public:
  // --- construction -------------------------------------------------------
  NodeId add_node(NodeKind kind, std::int32_t pod = -1, std::int32_t index = -1);
  LinkId add_link(NodeId a, NodeId b);

  // Remove a set of links (used to build "irregular" Clos networks, §7.6).
  // Returns a new topology with compacted link ids; node ids are preserved.
  Topology without_links(const std::vector<LinkId>& removed) const;

  // --- nodes ---------------------------------------------------------------
  std::int32_t num_nodes() const { return static_cast<std::int32_t>(nodes_.size()); }
  const Node& node(NodeId id) const { return nodes_[static_cast<std::size_t>(id)]; }
  bool is_host(NodeId id) const { return node(id).kind == NodeKind::kHost; }
  bool is_switch(NodeId id) const { return !is_host(id); }
  const std::vector<NodeId>& hosts() const { return hosts_; }
  const std::vector<NodeId>& switches() const { return switches_; }
  std::string node_name(NodeId id) const;

  // --- links ---------------------------------------------------------------
  std::int32_t num_links() const { return static_cast<std::int32_t>(links_.size()); }
  const Link& link(LinkId id) const { return links_[static_cast<std::size_t>(id)]; }
  // Neighbors as (peer node, connecting link) pairs.
  const std::vector<std::pair<NodeId, LinkId>>& adjacency(NodeId id) const {
    return adj_[static_cast<std::size_t>(id)];
  }
  // True if either endpoint of the link is a host.
  bool is_host_link(LinkId id) const;
  // All switch-to-switch links (the candidates for silent-drop injection).
  std::vector<LinkId> switch_links() const;
  // The unique access link of a host (throws if the host has != 1 link).
  LinkId host_access_link(NodeId host) const;
  // The switch on the other side of a host's access link.
  NodeId tor_of(NodeId host) const;

  // --- component space -----------------------------------------------------
  std::int32_t num_devices() const { return static_cast<std::int32_t>(switches_.size()); }
  std::int32_t num_components() const { return num_links() + num_devices(); }
  ComponentId link_component(LinkId id) const { return id; }
  ComponentId device_component(NodeId sw) const;
  bool is_device_component(ComponentId c) const { return c >= num_links(); }
  bool is_link_component(ComponentId c) const { return c >= 0 && c < num_links(); }
  // Inverse of device_component.
  NodeId device_node(ComponentId c) const;
  LinkId component_link(ComponentId c) const;
  // All links incident to a device (by node id).
  std::vector<LinkId> device_links(NodeId sw) const;
  std::string component_name(ComponentId c) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<std::pair<NodeId, LinkId>>> adj_;
  std::vector<NodeId> hosts_;
  std::vector<NodeId> switches_;
  std::vector<std::int32_t> device_index_;  // node id -> index among switches, -1 for hosts
};

// --- builders --------------------------------------------------------------

// Three-tier folded-Clos (fat-tree-like). Every ToR connects to every agg in
// its pod; agg j of each pod connects to cores [j*c, (j+1)*c) where
// c = cores / aggs_per_pod (requires cores % aggs_per_pod == 0).
// hosts_per_tor > uplinks models oversubscription (the paper uses 3x).
struct ThreeTierClosConfig {
  std::int32_t pods = 4;
  std::int32_t tors_per_pod = 2;
  std::int32_t aggs_per_pod = 2;
  std::int32_t cores = 4;
  std::int32_t hosts_per_tor = 3;
};
Topology make_three_tier_clos(const ThreeTierClosConfig& cfg);

// Canonical fat-tree of parameter k (pods=k, k/2 ToR + k/2 agg per pod,
// (k/2)^2 cores); hosts_per_tor defaults to k/2, oversubscription scales it.
Topology make_fat_tree(std::int32_t k, std::int32_t hosts_per_tor = -1);

// Two-tier leaf–spine (the hardware testbed: 2 spines, 8 leaves, 6 hosts).
struct LeafSpineConfig {
  std::int32_t spines = 2;
  std::int32_t leaves = 8;
  std::int32_t hosts_per_leaf = 6;
};
Topology make_leaf_spine(const LeafSpineConfig& cfg);

}  // namespace flock
