// ECMP shortest-path enumeration with interned paths and path sets.
//
// Flock's inference works on flows whose path is only known to lie in a set
// of ECMP candidates. In a Clos network the candidate set between two hosts
// is (src access link) + (any shortest switch path between their ToRs) +
// (dst access link). The switch-level part depends only on the ToR pair, so
// we intern one PathSet per switch pair and let millions of flows share it.
//
// A Path is the sequence of *components* (link and device ids interleaved,
// inclusive of both endpoint switch devices) along one switch-to-switch
// shortest path. Host access links are kept separate, on the flow record.
//
// Thread-safety: the router is shared by every collector shard of the
// streaming pipeline, so all interning and lookup methods may be called
// concurrently. Lookups of already-interned paths take a shared lock;
// interning a new path set takes an exclusive lock. Paths and path sets are
// stored in deques so references returned by path()/path_set() stay valid
// while other threads intern.
#pragma once

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "topology/topology.h"

namespace flock {

struct Path {
  // Links and devices crossed, in order, including the endpoint devices.
  std::vector<ComponentId> comps;
};

struct PathSet {
  NodeId src_sw = kInvalidNode;
  NodeId dst_sw = kInvalidNode;
  std::vector<PathId> paths;
};

class EcmpRouter {
 public:
  explicit EcmpRouter(const Topology& topo);

  const Topology& topology() const { return *topo_; }

  // Path set between two switches (lazily computed, cached, symmetric in the
  // sense that (a,b) and (b,a) are cached independently but have mirrored
  // paths). Throws if the switches are disconnected.
  PathSetId path_set_between(NodeId src_sw, NodeId dst_sw);

  // Path set between the ToRs of two hosts. For hosts on the same ToR the
  // set is the single path [device(tor)].
  PathSetId host_pair_path_set(NodeId src_host, NodeId dst_host);

  const PathSet& path_set(PathSetId id) const;
  const Path& path(PathId id) const;

  std::int32_t num_path_sets() const;
  std::int32_t num_paths() const;

  // Materialize the path sets of every ordered ToR pair (and, for Fig 5c,
  // the equivalence-class computation needs them all). Expensive on big
  // topologies; benches call it only at small scale.
  void build_all_tor_pairs();

  // Hop count (number of links) of the shortest switch path, mostly for
  // tests; throws if disconnected.
  std::int32_t switch_distance(NodeId src_sw, NodeId dst_sw);

 private:
  // BFS over the switch-only graph from dst, returning distances (-1 if
  // unreachable). Hosts never appear as intermediate nodes (degree 1).
  std::vector<std::int32_t> bfs_from(NodeId dst_sw) const;

  // Requires mutex_ held exclusively.
  PathSetId enumerate_paths(NodeId src_sw, NodeId dst_sw);

  const Topology* topo_;
  mutable std::shared_mutex mutex_;
  // Deques: stable element references under concurrent interning.
  std::deque<Path> paths_;
  std::deque<PathSet> path_sets_;
  std::unordered_map<std::uint64_t, PathSetId> cache_;
  // Per-destination BFS distance cache (dst -> distances); bounded reuse for
  // build_all_tor_pairs.
  std::unordered_map<NodeId, std::vector<std::int32_t>> dist_cache_;
};

// Components that are indistinguishable from passive ECMP telemetry: two
// components are in the same class iff they appear in the same ToR-pair path
// sets with the same per-set path-membership counts. Used for Fig 5c's
// "theoretical max precision" line. Host access links are excluded (each is
// trivially distinguishable by its endpoint flows).
std::vector<std::vector<ComponentId>> ecmp_equivalence_classes(EcmpRouter& router);

// Best achievable precision for a passive-only scheme that must reach 100%
// recall on ground truth `truth`: |truth| / sum of the sizes of the classes
// containing elements of truth.
double theoretical_max_precision(const std::vector<std::vector<ComponentId>>& classes,
                                 const std::vector<ComponentId>& truth);

}  // namespace flock
