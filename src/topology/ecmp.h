// ECMP shortest-path enumeration with interned paths and path sets.
//
// Flock's inference works on flows whose path is only known to lie in a set
// of ECMP candidates. In a Clos network the candidate set between two hosts
// is (src access link) + (any shortest switch path between their ToRs) +
// (dst access link). The switch-level part depends only on the ToR pair, so
// we intern one PathSet per switch pair and let millions of flows share it.
//
// A Path is the sequence of *components* (link and device ids interleaved,
// inclusive of both endpoint switch devices) along one switch-to-switch
// shortest path. Host access links are kept separate, on the flow record.
//
// Thread-safety / read path: the router is shared by every collector shard
// of the streaming pipeline, and after warm-up virtually every call is a
// lookup of something already interned. Those lookups are wait-free: paths
// and path sets live in append-only SnapshotStores (stable addresses, so
// references returned by path()/path_set() stay valid forever), and the
// pair -> path-set cache is a lock-free-readable PairIndex. Interning a new
// pair serializes writers on a small mutex, appends the new paths/sets, and
// *publishes* them with release stores (counted by index_publishes()); a
// reader that misses the wait-free index falls back to the locked slow path
// (counted by read_retries()).
//
// RouterReadMode::kSharedMutexBaseline retains the pre-snapshot design —
// every lookup under a std::shared_mutex — over the identical storage, as a
// measured baseline for bench/micro_router_reads.cpp and an A/B lever for
// the pipeline equivalence tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/mutex.h"
#include "common/snapshot_store.h"
#include "topology/topology.h"

namespace flock {

struct Path {
  // Links and devices crossed, in order, including the endpoint devices.
  std::vector<ComponentId> comps;
};

struct PathSet {
  NodeId src_sw = kInvalidNode;
  NodeId dst_sw = kInvalidNode;
  std::vector<PathId> paths;
};

enum class RouterReadMode {
  kSnapshot,            // wait-free warm lookups (default)
  kSharedMutexBaseline  // every lookup under a reader-writer lock
};

class EcmpRouter {
 public:
  explicit EcmpRouter(const Topology& topo, RouterReadMode mode = RouterReadMode::kSnapshot);

  const Topology& topology() const { return *topo_; }
  RouterReadMode read_mode() const { return mode_; }

  // Path set between two switches (lazily computed, cached, symmetric in the
  // sense that (a,b) and (b,a) are cached independently but have mirrored
  // paths). Throws if the switches are disconnected. Wait-free once the pair
  // is interned (snapshot mode).
  PathSetId path_set_between(NodeId src_sw, NodeId dst_sw) EXCLUDES(intern_mutex_);

  // Path set between the ToRs of two hosts. For hosts on the same ToR the
  // set is the single path [device(tor)].
  PathSetId host_pair_path_set(NodeId src_host, NodeId dst_host);

  // Wait-free (snapshot mode); the returned references stay valid for the
  // router's lifetime, across any amount of concurrent interning.
  const PathSet& path_set(PathSetId id) const;
  const Path& path(PathId id) const;

  // Published counts; monotone non-decreasing under concurrent interning.
  std::int32_t num_path_sets() const;
  std::int32_t num_paths() const;

  // Materialize the path sets of every ordered ToR pair (and, for Fig 5c,
  // the equivalence-class computation needs them all). Expensive on big
  // topologies; benches call it only at small scale.
  void build_all_tor_pairs();

  // Hop count (number of links) of the shortest switch path, mostly for
  // tests; throws if disconnected.
  std::int32_t switch_distance(NodeId src_sw, NodeId dst_sw) EXCLUDES(intern_mutex_);

  // Times the writer published a new snapshot (== path sets interned).
  std::uint64_t index_publishes() const {
    return index_publishes_.load(std::memory_order_relaxed);
  }
  // Lookups the wait-free index missed, forcing the locked slow path (cold
  // pairs plus the rare race with a concurrent interner).
  std::uint64_t read_retries() const { return read_retries_.load(std::memory_order_relaxed); }

 private:
  // Runs a read over the published snapshot state: bare in snapshot mode,
  // under the shared lock in baseline mode. Keeping one body per accessor
  // stops the two read modes from silently diverging.
  template <typename F>
  auto locked_read(F&& read) const -> decltype(read()) {
    if (mode_ == RouterReadMode::kSharedMutexBaseline) {
      std::shared_lock lock(rw_mutex_);
      return read();
    }
    return read();
  }

  // BFS over the switch-only graph from dst, returning distances (-1 if
  // unreachable). Hosts never appear as intermediate nodes (degree 1).
  std::vector<std::int32_t> bfs_from(NodeId dst_sw) const;

  // Appends without publishing; writer serialization is the caller's lock.
  PathSetId enumerate_paths(NodeId src_sw, NodeId dst_sw) REQUIRES(intern_mutex_);

  const Topology* topo_;
  const RouterReadMode mode_;
  // Writer serialization for interning and the BFS distance cache. In
  // baseline mode, rw_mutex_ additionally wraps reads (shared) and snapshot
  // publication (exclusive), reproducing the old read-path contention.
  mutable Mutex intern_mutex_;
  // Deliberately un-annotated: rw_mutex_ exists only for the
  // kSharedMutexBaseline A/B mode, where it reproduces the old read-path
  // contention; in snapshot mode it guards nothing. The state it covers in
  // baseline mode (paths_/path_sets_/cache_) is protected by release/acquire
  // publication, which the static analysis cannot express.
  mutable std::shared_mutex rw_mutex_;
  SnapshotStore<Path> paths_;
  SnapshotStore<PathSet> path_sets_;
  PairIndex cache_;
  // Per-destination BFS distance cache (dst -> distances); bounded reuse for
  // build_all_tor_pairs. Looked up by key only, never iterated.
  std::unordered_map<NodeId, std::vector<std::int32_t>> dist_cache_ GUARDED_BY(intern_mutex_);
  std::atomic<std::uint64_t> index_publishes_{0};
  std::atomic<std::uint64_t> read_retries_{0};
};

// Components that are indistinguishable from passive ECMP telemetry: two
// components are in the same class iff they appear in the same ToR-pair path
// sets with the same per-set path-membership counts. Used for Fig 5c's
// "theoretical max precision" line. Host access links are excluded (each is
// trivially distinguishable by its endpoint flows). The result is a pure
// function of the topology: signatures are keyed by (src, dst) switch pair,
// not by path-set id, so the partition and its ordering are byte-identical
// no matter in which order — or from how many threads — the path sets were
// interned.
std::vector<std::vector<ComponentId>> ecmp_equivalence_classes(EcmpRouter& router);

// Best achievable precision for a passive-only scheme that must reach 100%
// recall on ground truth `truth`: |truth| / sum of the sizes of the classes
// containing elements of truth.
double theoretical_max_precision(const std::vector<std::vector<ComponentId>>& classes,
                                 const std::vector<ComponentId>& truth);

}  // namespace flock
