#include "topology/topology.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace flock {

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kHost: return "host";
    case NodeKind::kTor: return "tor";
    case NodeKind::kAgg: return "agg";
    case NodeKind::kCore: return "core";
    case NodeKind::kSpine: return "spine";
  }
  return "?";
}

NodeId Topology::add_node(NodeKind kind, std::int32_t pod, std::int32_t index) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{kind, pod, index});
  adj_.emplace_back();
  if (kind == NodeKind::kHost) {
    hosts_.push_back(id);
    device_index_.push_back(-1);
  } else {
    device_index_.push_back(static_cast<std::int32_t>(switches_.size()));
    switches_.push_back(id);
  }
  return id;
}

LinkId Topology::add_link(NodeId a, NodeId b) {
  if (a == b) throw std::invalid_argument("add_link: self loop");
  LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{a, b});
  adj_[static_cast<std::size_t>(a)].emplace_back(b, id);
  adj_[static_cast<std::size_t>(b)].emplace_back(a, id);
  return id;
}

Topology Topology::without_links(const std::vector<LinkId>& removed) const {
  std::unordered_set<LinkId> gone(removed.begin(), removed.end());
  Topology out;
  for (const Node& n : nodes_) out.add_node(n.kind, n.pod, n.index);
  for (LinkId l = 0; l < num_links(); ++l) {
    if (!gone.count(l)) out.add_link(links_[static_cast<std::size_t>(l)].a,
                                     links_[static_cast<std::size_t>(l)].b);
  }
  return out;
}

std::string Topology::node_name(NodeId id) const {
  const Node& n = node(id);
  std::string name = to_string(n.kind);
  if (n.pod >= 0) name += "_p" + std::to_string(n.pod);
  name += "_" + std::to_string(n.index >= 0 ? n.index : id);
  return name;
}

bool Topology::is_host_link(LinkId id) const {
  const Link& l = link(id);
  return is_host(l.a) || is_host(l.b);
}

std::vector<LinkId> Topology::switch_links() const {
  std::vector<LinkId> out;
  for (LinkId l = 0; l < num_links(); ++l) {
    if (!is_host_link(l)) out.push_back(l);
  }
  return out;
}

LinkId Topology::host_access_link(NodeId host) const {
  const auto& adj = adjacency(host);
  if (!is_host(host) || adj.size() != 1) {
    throw std::logic_error("host_access_link: not a singly-attached host");
  }
  return adj.front().second;
}

NodeId Topology::tor_of(NodeId host) const {
  return adjacency(host).front().first;
}

ComponentId Topology::device_component(NodeId sw) const {
  std::int32_t idx = device_index_[static_cast<std::size_t>(sw)];
  if (idx < 0) throw std::invalid_argument("device_component: node is a host");
  return num_links() + idx;
}

NodeId Topology::device_node(ComponentId c) const {
  if (!is_device_component(c)) throw std::invalid_argument("device_node: not a device");
  return switches_[static_cast<std::size_t>(c - num_links())];
}

LinkId Topology::component_link(ComponentId c) const {
  if (!is_link_component(c)) throw std::invalid_argument("component_link: not a link");
  return c;
}

std::vector<LinkId> Topology::device_links(NodeId sw) const {
  std::vector<LinkId> out;
  for (const auto& [peer, link] : adjacency(sw)) {
    (void)peer;
    out.push_back(link);
  }
  return out;
}

std::string Topology::component_name(ComponentId c) const {
  if (is_link_component(c)) {
    const Link& l = link(component_link(c));
    return "link(" + node_name(l.a) + "-" + node_name(l.b) + ")";
  }
  return "device(" + node_name(device_node(c)) + ")";
}

Topology make_three_tier_clos(const ThreeTierClosConfig& cfg) {
  if (cfg.pods <= 0 || cfg.tors_per_pod <= 0 || cfg.aggs_per_pod <= 0 || cfg.cores <= 0 ||
      cfg.hosts_per_tor <= 0) {
    throw std::invalid_argument("make_three_tier_clos: non-positive dimension");
  }
  if (cfg.cores % cfg.aggs_per_pod != 0) {
    throw std::invalid_argument("make_three_tier_clos: cores % aggs_per_pod != 0");
  }
  Topology t;
  const std::int32_t cores_per_agg = cfg.cores / cfg.aggs_per_pod;
  std::vector<NodeId> cores(static_cast<std::size_t>(cfg.cores));
  for (std::int32_t c = 0; c < cfg.cores; ++c) {
    cores[static_cast<std::size_t>(c)] = t.add_node(NodeKind::kCore, -1, c);
  }
  for (std::int32_t p = 0; p < cfg.pods; ++p) {
    std::vector<NodeId> aggs(static_cast<std::size_t>(cfg.aggs_per_pod));
    for (std::int32_t a = 0; a < cfg.aggs_per_pod; ++a) {
      aggs[static_cast<std::size_t>(a)] = t.add_node(NodeKind::kAgg, p, a);
      for (std::int32_t c = 0; c < cores_per_agg; ++c) {
        t.add_link(aggs[static_cast<std::size_t>(a)],
                   cores[static_cast<std::size_t>(a * cores_per_agg + c)]);
      }
    }
    for (std::int32_t r = 0; r < cfg.tors_per_pod; ++r) {
      NodeId tor = t.add_node(NodeKind::kTor, p, r);
      for (std::int32_t a = 0; a < cfg.aggs_per_pod; ++a) {
        t.add_link(tor, aggs[static_cast<std::size_t>(a)]);
      }
      for (std::int32_t h = 0; h < cfg.hosts_per_tor; ++h) {
        NodeId host = t.add_node(NodeKind::kHost, p, r * cfg.hosts_per_tor + h);
        t.add_link(host, tor);
      }
    }
  }
  return t;
}

Topology make_fat_tree(std::int32_t k, std::int32_t hosts_per_tor) {
  if (k < 2 || k % 2 != 0) throw std::invalid_argument("make_fat_tree: k must be even >= 2");
  ThreeTierClosConfig cfg;
  cfg.pods = k;
  cfg.tors_per_pod = k / 2;
  cfg.aggs_per_pod = k / 2;
  cfg.cores = (k / 2) * (k / 2);
  cfg.hosts_per_tor = hosts_per_tor > 0 ? hosts_per_tor : k / 2;
  return make_three_tier_clos(cfg);
}

Topology make_leaf_spine(const LeafSpineConfig& cfg) {
  if (cfg.spines <= 0 || cfg.leaves <= 0 || cfg.hosts_per_leaf <= 0) {
    throw std::invalid_argument("make_leaf_spine: non-positive dimension");
  }
  Topology t;
  std::vector<NodeId> spines(static_cast<std::size_t>(cfg.spines));
  for (std::int32_t s = 0; s < cfg.spines; ++s) {
    spines[static_cast<std::size_t>(s)] = t.add_node(NodeKind::kSpine, -1, s);
  }
  for (std::int32_t l = 0; l < cfg.leaves; ++l) {
    NodeId leaf = t.add_node(NodeKind::kTor, l, l);
    for (std::int32_t s = 0; s < cfg.spines; ++s) {
      t.add_link(leaf, spines[static_cast<std::size_t>(s)]);
    }
    for (std::int32_t h = 0; h < cfg.hosts_per_leaf; ++h) {
      NodeId host = t.add_node(NodeKind::kHost, l, l * cfg.hosts_per_leaf + h);
      t.add_link(host, leaf);
    }
  }
  return t;
}

}  // namespace flock
