#include "topology/degrade.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_set>

namespace flock {
namespace {

// Connectivity of the switch-only graph with a set of links excluded.
bool switches_connected(const Topology& topo, const std::unordered_set<LinkId>& removed) {
  const auto& switches = topo.switches();
  if (switches.empty()) return true;
  std::vector<char> seen(static_cast<std::size_t>(topo.num_nodes()), 0);
  std::deque<NodeId> queue{switches.front()};
  seen[static_cast<std::size_t>(switches.front())] = 1;
  std::size_t visited = 1;
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (const auto& [peer, link] : topo.adjacency(u)) {
      if (topo.is_host(peer) || removed.count(link)) continue;
      auto& s = seen[static_cast<std::size_t>(peer)];
      if (!s) {
        s = 1;
        ++visited;
        queue.push_back(peer);
      }
    }
  }
  return visited == switches.size();
}

}  // namespace

std::vector<LinkId> removable_links(const Topology& topo, double fraction, Rng& rng) {
  std::vector<LinkId> candidates = topo.switch_links();
  const auto target = static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(candidates.size())));
  rng.shuffle(candidates);
  std::unordered_set<LinkId> removed;
  std::vector<LinkId> out;
  for (LinkId l : candidates) {
    if (out.size() >= target) break;
    removed.insert(l);
    if (switches_connected(topo, removed)) {
      out.push_back(l);
    } else {
      removed.erase(l);
    }
  }
  return out;
}

Topology degrade_topology(const Topology& topo, double fraction, Rng& rng) {
  return topo.without_links(removable_links(topo, fraction, rng));
}

}  // namespace flock
