// Construction of "irregular" Clos networks (§7.6): remove a fraction of the
// switch-to-switch links while preserving switch-level connectivity, to model
// real-world asymmetry from failures, policies and piecemeal upgrades.
#pragma once

#include <vector>

#include "common/rng.h"
#include "topology/topology.h"

namespace flock {

// Returns a copy of `topo` with roughly `fraction` of its switch links
// removed. Links are removed one by one in random order; a removal that would
// disconnect any pair of switches is skipped, so the result is always fully
// routable. The number of links actually removed can be smaller than
// requested when the topology runs out of redundant links.
Topology degrade_topology(const Topology& topo, double fraction, Rng& rng);

// The links chosen by the same procedure (useful when the caller wants the
// removed set, e.g. to report it).
std::vector<LinkId> removable_links(const Topology& topo, double fraction, Rng& rng);

}  // namespace flock
