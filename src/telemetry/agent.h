// End-host telemetry agent (§5.1): observes the flows of one host,
// aggregates per-flow statistics, optionally samples them down, and
// periodically exports IPFIX messages toward the collector.
//
// In the paper the agent sits on PF_RING packet captures; here it consumes
// the simulator's per-flow summaries, but the aggregation, sampling, record
// formatting, and export path are the real pipeline benchmarked in Fig 7.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "flowsim/simulate.h"
#include "telemetry/flow_record.h"
#include "telemetry/ipfix.h"
#include "topology/topology.h"

namespace flock {

struct AgentConfig {
  std::uint32_t observation_domain = 1;  // usually the host's node id
  double sample_rate = 1.0;              // random flow sampling (volume control)
  std::size_t max_message_bytes = 1400;
  std::uint64_t sample_seed = 99;
};

class Agent {
 public:
  Agent(const Topology& topo, AgentConfig config);

  // Account one simulated flow originating at this agent's host. Repeated
  // observations of the same 5-tuple accumulate into one record.
  void observe(const SimFlow& flow);

  std::size_t pending_records() const { return flows_.size(); }

  // Export all pending records as IPFIX messages and clear local state.
  std::vector<std::vector<std::uint8_t>> flush(std::uint32_t export_time);

 private:
  struct Key {
    std::uint32_t src, dst;
    std::uint16_t sport, dport;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t h = (static_cast<std::uint64_t>(k.src) << 32) | k.dst;
      h ^= (static_cast<std::uint64_t>(k.sport) << 16) | k.dport;
      h *= 0x9E3779B97F4A7C15ULL;
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };

  const Topology* topo_;
  AgentConfig config_;
  Rng sampler_;
  IpfixEncoder encoder_;
  std::unordered_map<Key, FlowRecord, KeyHash> flows_;
  std::uint16_t next_port_ = 40000;
};

}  // namespace flock
