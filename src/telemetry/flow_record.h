// The unit of telemetry exported by end-host agents (§3.1, §5.1): one
// compact record per monitored flow per reporting interval, carrying the
// metrics Flock's model consumes (packets, retransmissions, RTT) plus
// routing knowledge when the deployment has it (probe/INT paths).
#pragma once

#include <cstdint>

#include "common/ids.h"

namespace flock {

struct FlowRecord {
  std::uint32_t src_addr = 0;  // synthetic IPv4 (10.0.0.0/8 + node id)
  std::uint32_t dst_addr = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint64_t packets = 0;
  std::uint64_t retransmissions = 0;
  std::uint32_t mean_rtt_us = 0;
  // Routing knowledge (enterprise IPFIX fields): the interned path-set id
  // and the taken path index, or -1 when the agent does not know them (the
  // collector joins passive records with the SDN controller's routes).
  std::int32_t path_set = -1;
  std::int32_t taken_path = -1;

  bool operator==(const FlowRecord&) const = default;
};

// Synthetic addressing: every topology node gets 10.x.y.z with its node id
// in the low 24 bits.
inline std::uint32_t node_to_addr(NodeId id) {
  return 0x0A000000u | static_cast<std::uint32_t>(id & 0x00FFFFFF);
}
inline NodeId addr_to_node(std::uint32_t addr) {
  return static_cast<NodeId>(addr & 0x00FFFFFF);
}

}  // namespace flock
