#include "telemetry/agent.h"

#include <cmath>

namespace flock {

Agent::Agent(const Topology& topo, AgentConfig config)
    : topo_(&topo),
      config_(config),
      sampler_(config.sample_seed),
      encoder_(IpfixEncoderOptions{config.observation_domain, config.max_message_bytes}) {}

void Agent::observe(const SimFlow& flow) {
  if (config_.sample_rate < 1.0 && !sampler_.chance(config_.sample_rate)) return;
  Key key;
  key.src = node_to_addr(flow.src_host);
  key.dst = node_to_addr(flow.dst_host);  // probes address their target switch
  // Synthetic ports make distinct simulator flows distinct 5-tuples.
  key.sport = next_port_;
  next_port_ = static_cast<std::uint16_t>(next_port_ == 65535 ? 40000 : next_port_ + 1);
  key.dport = 443;

  FlowRecord& rec = flows_[key];
  rec.src_addr = key.src;
  rec.dst_addr = key.dst;
  rec.src_port = key.sport;
  rec.dst_port = key.dport;
  rec.packets += flow.packets_sent;
  rec.retransmissions += flow.dropped;
  rec.mean_rtt_us = static_cast<std::uint32_t>(std::lround(flow.rtt_ms * 1000.0f));
  rec.path_set = flow.taken_path >= 0 ? flow.path_set : -1;
  rec.taken_path = flow.taken_path;
}

std::vector<std::vector<std::uint8_t>> Agent::flush(std::uint32_t export_time) {
  std::vector<FlowRecord> records;
  records.reserve(flows_.size());
  for (auto& [key, rec] : flows_) {
    (void)key;
    records.push_back(rec);
  }
  flows_.clear();
  return encoder_.encode(records, export_time);
}

}  // namespace flock
