// Simplified IPFIX (RFC 7011) codec for flow reports.
//
// The wire format follows the RFC's structure — 16-byte message header,
// template sets (id 2) describing records as (IE id, length) pairs with
// enterprise-specific fields, and data sets keyed by template id. The
// decoder is template-driven: it learns layouts from template sets per
// observation domain and decodes data records generically, skipping unknown
// fields, so it interoperates with any encoder that describes the same
// information elements.
//
// Standard IEs used: sourceIPv4Address(8), destinationIPv4Address(12),
// sourceTransportPort(7), destinationTransportPort(11), packetDeltaCount(2).
// Enterprise IEs (PEN 0xF10C): 1 retransmissions(8B), 2 meanRttMicros(4B),
// 3 pathSetId(4B), 4 takenPathIndex(4B).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "telemetry/flow_record.h"

namespace flock {

inline constexpr std::uint32_t kFlockEnterpriseNumber = 0xF10C;
inline constexpr std::uint16_t kFlowTemplateId = 256;
inline constexpr std::uint16_t kIpfixVersion = 10;
inline constexpr std::size_t kIpfixHeaderBytes = 16;

// Wire-level verdict on a datagram's 16-byte message header. This is the
// quarantine taxonomy of the UDP front-end (net/ingest_server): every
// datagram taken off the socket is either kOk and enters the pipeline, or is
// counted under exactly one failure reason and goes no further.
enum class IpfixHeaderStatus : std::uint8_t {
  kOk = 0,
  kShortHeader,     // fewer than 16 bytes: no complete message header
  kBadVersion,      // version field is not IPFIX (10)
  kLengthMismatch,  // header length field disagrees with the datagram size
};

const char* to_string(IpfixHeaderStatus status);

// The five fixed header fields, host byte order.
struct IpfixHeader {
  std::uint16_t length = 0;
  std::uint32_t export_time = 0;
  std::uint32_t sequence = 0;
  std::uint32_t observation_domain = 0;
};

// Validate the fixed message header of a raw datagram without touching the
// body. Never reads past `len`; on kOk, `out` (if non-null) carries the
// parsed fields. This is the only inspection the socket front-end performs
// per datagram, so it must stay cheap and total (defined for every input).
IpfixHeaderStatus peek_header(const std::uint8_t* data, std::size_t len,
                              IpfixHeader* out = nullptr);

struct IpfixEncoderOptions {
  std::uint32_t observation_domain = 1;
  // Maximum bytes per message; records that do not fit roll into the next
  // message. Every message re-announces the template (robust to loss).
  std::size_t max_message_bytes = 1400;
};

class IpfixEncoder {
 public:
  explicit IpfixEncoder(IpfixEncoderOptions options) : options_(options) {}

  // Encode records into one or more self-contained IPFIX messages.
  std::vector<std::vector<std::uint8_t>> encode(const std::vector<FlowRecord>& records,
                                                std::uint32_t export_time);

  std::uint32_t sequence() const { return sequence_; }

 private:
  IpfixEncoderOptions options_;
  std::uint32_t sequence_ = 0;
};

// Read the export-time field out of a message header without decoding the
// body (bytes 4..7, big-endian). Returns nullopt when the buffer is too
// short or not an IPFIX message. The streaming pipeline's epoch scheduler
// uses this as the virtual clock: epochs close when the exporters' clocks
// advance past the boundary, independent of collector wall time.
std::optional<std::uint32_t> peek_export_time(const std::uint8_t* data, std::size_t len);
std::optional<std::uint32_t> peek_export_time(const std::vector<std::uint8_t>& message);

// Count the data records of a message from its set headers alone, using only
// templates announced in the same message (our encoder re-announces the
// template in every message, making this exact; data sets whose template is
// unknown count zero). Returns nullopt on framing errors — including every
// header failure peek_header reports — and never reads past `len`, whatever
// the bytes claim. The streaming pipeline's record-count epoch policy uses
// this at dispatch time, so epoch boundaries are an exact function of the
// datagram sequence rather than of asynchronous decode progress.
std::optional<std::uint32_t> peek_record_count(const std::uint8_t* data, std::size_t len);
std::optional<std::uint32_t> peek_record_count(const std::vector<std::uint8_t>& message);

class IpfixDecoder {
 public:
  struct Stats {
    std::uint64_t messages = 0;
    std::uint64_t records = 0;
    std::uint64_t template_sets = 0;
    std::uint64_t skipped_sets = 0;
    std::uint64_t malformed_messages = 0;
  };

  // Parse one message, appending decoded flow records to `out`. Returns
  // false (and counts a malformed message) on any framing error; partial
  // output from a malformed message is rolled back.
  bool decode(const std::vector<std::uint8_t>& message, std::vector<FlowRecord>& out);

  const Stats& stats() const { return stats_; }

 private:
  struct FieldSpec {
    std::uint16_t id = 0;
    std::uint16_t length = 0;
    std::uint32_t enterprise = 0;  // 0 = IANA
  };
  struct Template {
    std::vector<FieldSpec> fields;
    std::size_t record_length = 0;
  };

  // Template cache keyed by (observation domain, template id).
  std::unordered_map<std::uint64_t, Template> templates_;
  Stats stats_;
};

}  // namespace flock
