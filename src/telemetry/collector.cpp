#include "telemetry/collector.h"

#include <cassert>

namespace flock {

Collector::Collector(const Topology& topo, EcmpRouter& router, CollectorOptions options)
    : ctx_(std::make_shared<const InferenceContext>(InferenceContext{&topo, &router})),
      topo_(&topo),
      router_(&router),
      options_(options) {}

Collector::Collector(std::shared_ptr<const InferenceContext> ctx, EcmpRouter& router,
                     CollectorOptions options)
    : ctx_(std::move(ctx)), topo_(ctx_->topo), router_(&router), options_(options) {
  // The joins intern into `router`; the drained inputs resolve through the
  // context. They must be the same object or every PathSetId is suspect.
  assert(ctx_->router == &router);
}

bool Collector::ingest(const std::vector<std::uint8_t>& message) {
  return decoder_.decode(message, records_);
}

InferenceInput Collector::drain_into_input() {
  FlowTable table(/*dedup=*/true);
  if (arena_ != nullptr) {
    table = arena_->acquire();
    table.set_dedup_enabled(true);
  }
  InferenceInput input(ctx_, std::move(table));
  input.reserve(records_.size());
  for (const FlowRecord& rec : records_) {
    const NodeId src = addr_to_node(rec.src_addr);
    const NodeId dst = addr_to_node(rec.dst_addr);
    if (src < 0 || src >= topo_->num_nodes() || dst < 0 || dst >= topo_->num_nodes() ||
        !topo_->is_host(src)) {
      ++unresolved_;
      continue;
    }
    FlowObservation obs;
    obs.src_link = topo_->link_component(topo_->host_access_link(src));
    if (rec.path_set >= 0 && rec.path_set < router_->num_path_sets() && rec.taken_path >= 0) {
      obs.path_set = rec.path_set;
      obs.taken_path = rec.taken_path;
      const auto width =
          static_cast<std::int32_t>(router_->path_set(obs.path_set).paths.size());
      if (rec.taken_path >= width) {
        ++unresolved_;
        continue;
      }
      if (topo_->is_host(dst)) {
        obs.dst_link = topo_->link_component(topo_->host_access_link(dst));
      }
    } else if (topo_->is_host(dst)) {
      // Passive record: join with routing to get the ECMP candidate set.
      obs.dst_link = topo_->link_component(topo_->host_access_link(dst));
      obs.path_set = router_->host_pair_path_set(src, dst);
      obs.taken_path = -1;
    } else {
      ++unresolved_;  // probe without path info: unusable
      continue;
    }
    if (options_.per_flow_latency) {
      obs.packets_sent = 1;
      obs.bad_packets =
          rec.mean_rtt_us > static_cast<std::uint32_t>(options_.rtt_threshold_ms * 1000.0) ? 1
                                                                                           : 0;
    } else {
      obs.packets_sent = static_cast<std::uint32_t>(rec.packets);
      obs.bad_packets = static_cast<std::uint32_t>(rec.retransmissions);
    }
    input.add(obs);
  }
  records_.clear();
  return input;
}

}  // namespace flock
