// Central collector (§5.1): ingests IPFIX messages from agents, decodes flow
// records, and periodically materializes an InferenceInput for the inference
// engine — joining passive records (no path knowledge) with the topology /
// routing information to recover each flow's ECMP candidate set.
#pragma once

#include <cstdint>
#include <vector>

#include "common/arena.h"
#include "core/inference_input.h"
#include "telemetry/flow_record.h"
#include "telemetry/ipfix.h"
#include "topology/ecmp.h"
#include "topology/topology.h"

namespace flock {

struct CollectorOptions {
  // Per-flow latency analysis (§3.2) instead of packet counts.
  bool per_flow_latency = false;
  double rtt_threshold_ms = 10.0;
};

class Collector {
 public:
  Collector(const Topology& topo, EcmpRouter& router, CollectorOptions options = {});

  // Pipeline form: inputs drained from this collector share the given
  // context (see core/inference_input.h for the lifetime contract), so one
  // context binding covers every epoch snapshot of a pipeline run. The
  // context's topology/router must be the objects joins run against; router
  // is taken separately because joining interns path sets (non-const).
  Collector(std::shared_ptr<const InferenceContext> ctx, EcmpRouter& router,
            CollectorOptions options = {});

  // Ingest one IPFIX message (e.g., one UDP datagram from an agent).
  // Returns false if the message was malformed.
  bool ingest(const std::vector<std::uint8_t>& message);

  std::size_t pending_records() const { return records_.size(); }
  const IpfixDecoder::Stats& decoder_stats() const { return decoder_.stats(); }

  // Join everything collected so far into a grouped, weight-deduplicated
  // FlowTable and clear the queue (the periodic step of §5.1's inference
  // engine). The table is built incrementally during the join — no per-flow
  // intermediate — so the result is ready for the inference engine as-is.
  // Records between two hosts with unknown paths are joined against ECMP
  // routes; records addressed to switches (probes) must carry their path.
  // Records that cannot be resolved are dropped and counted.
  InferenceInput drain_into_input();

  // Draw drained inputs' FlowTable storage from `arena` (the per-shard epoch
  // recycling of common/arena.h) instead of allocating fresh. Borrowed; null
  // restores plain allocation.
  void set_arena(EpochArena<FlowTable>* arena) { arena_ = arena; }

  std::uint64_t unresolved_records() const { return unresolved_; }

 private:
  std::shared_ptr<const InferenceContext> ctx_;
  const Topology* topo_;
  EcmpRouter* router_;
  CollectorOptions options_;
  IpfixDecoder decoder_;
  std::vector<FlowRecord> records_;
  std::uint64_t unresolved_ = 0;
  EpochArena<FlowTable>* arena_ = nullptr;
};

}  // namespace flock
