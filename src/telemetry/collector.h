// Central collector (§5.1): ingests IPFIX messages from agents, decodes flow
// records, and periodically materializes an InferenceInput for the inference
// engine — joining passive records (no path knowledge) with the topology /
// routing information to recover each flow's ECMP candidate set.
#pragma once

#include <cstdint>
#include <vector>

#include "core/inference_input.h"
#include "telemetry/flow_record.h"
#include "telemetry/ipfix.h"
#include "topology/ecmp.h"
#include "topology/topology.h"

namespace flock {

struct CollectorOptions {
  // Per-flow latency analysis (§3.2) instead of packet counts.
  bool per_flow_latency = false;
  double rtt_threshold_ms = 10.0;
};

class Collector {
 public:
  Collector(const Topology& topo, EcmpRouter& router, CollectorOptions options = {});

  // Ingest one IPFIX message (e.g., one UDP datagram from an agent).
  // Returns false if the message was malformed.
  bool ingest(const std::vector<std::uint8_t>& message);

  std::size_t pending_records() const { return records_.size(); }
  const IpfixDecoder::Stats& decoder_stats() const { return decoder_.stats(); }

  // Build the inference input from everything collected so far and clear the
  // queue (the periodic step of §5.1's inference engine). Records between
  // two hosts with unknown paths are joined against ECMP routes; records
  // addressed to switches (probes) must carry their path. Records that
  // cannot be resolved are dropped and counted.
  InferenceInput drain_into_input();

  std::uint64_t unresolved_records() const { return unresolved_; }

 private:
  const Topology* topo_;
  EcmpRouter* router_;
  CollectorOptions options_;
  IpfixDecoder decoder_;
  std::vector<FlowRecord> records_;
  std::uint64_t unresolved_ = 0;
};

}  // namespace flock
