#include "telemetry/ipfix.h"

#include <cstring>

namespace flock {
namespace {

// --- big-endian primitives ---------------------------------------------------

void put_u16(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v));
}
void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  put_u16(b, static_cast<std::uint16_t>(v >> 16));
  put_u16(b, static_cast<std::uint16_t>(v));
}
void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  put_u32(b, static_cast<std::uint32_t>(v >> 32));
  put_u32(b, static_cast<std::uint32_t>(v));
}

struct Reader {
  const std::uint8_t* p;
  std::size_t remaining;

  bool u16(std::uint16_t& v) {
    if (remaining < 2) return false;
    v = static_cast<std::uint16_t>((p[0] << 8) | p[1]);
    p += 2;
    remaining -= 2;
    return true;
  }
  bool u32(std::uint32_t& v) {
    std::uint16_t hi, lo;
    if (!u16(hi) || !u16(lo)) return false;
    v = (static_cast<std::uint32_t>(hi) << 16) | lo;
    return true;
  }
  bool skip(std::size_t n) {
    if (remaining < n) return false;
    p += n;
    remaining -= n;
    return true;
  }
  // Bounds-checked arbitrary-width read: false leaves the cursor unmoved.
  // Values wider than 8 bytes keep only the low 64 bits (RFC 7011 reduced-
  // size encoding never needs more for our integer IEs).
  bool read_uint(std::size_t len, std::uint64_t& v) {
    if (remaining < len) return false;
    v = 0;
    for (std::size_t i = 0; i < len; ++i) v = (v << 8) | p[i];
    p += len;
    remaining -= len;
    return true;
  }
};

// Field layout of the flow template (shared by encoder and the tests; the
// decoder never assumes it).
struct WireField {
  std::uint16_t id;
  std::uint16_t length;
  std::uint32_t enterprise;  // 0 = IANA
};
constexpr WireField kFlowFields[] = {
    {8, 4, 0},                              // sourceIPv4Address
    {12, 4, 0},                             // destinationIPv4Address
    {7, 2, 0},                              // sourceTransportPort
    {11, 2, 0},                             // destinationTransportPort
    {2, 8, 0},                              // packetDeltaCount
    {1, 8, kFlockEnterpriseNumber},         // retransmissions
    {2, 4, kFlockEnterpriseNumber},         // meanRttMicros
    {3, 4, kFlockEnterpriseNumber},         // pathSetId
    {4, 4, kFlockEnterpriseNumber},         // takenPathIndex
};

constexpr std::size_t kRecordBytes = 4 + 4 + 2 + 2 + 8 + 8 + 4 + 4 + 4;

void append_template_set(std::vector<std::uint8_t>& msg) {
  put_u16(msg, 2);  // set id 2 = template set
  std::uint16_t set_len = 4 + 4;  // set header + template header
  for (const WireField& f : kFlowFields) set_len += f.enterprise ? 8 : 4;
  put_u16(msg, set_len);
  put_u16(msg, kFlowTemplateId);
  put_u16(msg, static_cast<std::uint16_t>(std::size(kFlowFields)));
  for (const WireField& f : kFlowFields) {
    put_u16(msg, f.enterprise ? static_cast<std::uint16_t>(f.id | 0x8000u) : f.id);
    put_u16(msg, f.length);
    if (f.enterprise) put_u32(msg, f.enterprise);
  }
}

void append_record(std::vector<std::uint8_t>& msg, const FlowRecord& r) {
  put_u32(msg, r.src_addr);
  put_u32(msg, r.dst_addr);
  put_u16(msg, r.src_port);
  put_u16(msg, r.dst_port);
  put_u64(msg, r.packets);
  put_u64(msg, r.retransmissions);
  put_u32(msg, r.mean_rtt_us);
  put_u32(msg, static_cast<std::uint32_t>(r.path_set));
  put_u32(msg, static_cast<std::uint32_t>(r.taken_path));
}

}  // namespace

const char* to_string(IpfixHeaderStatus status) {
  switch (status) {
    case IpfixHeaderStatus::kOk: return "ok";
    case IpfixHeaderStatus::kShortHeader: return "short_header";
    case IpfixHeaderStatus::kBadVersion: return "bad_version";
    case IpfixHeaderStatus::kLengthMismatch: return "length_mismatch";
  }
  return "unknown";
}

IpfixHeaderStatus peek_header(const std::uint8_t* data, std::size_t len, IpfixHeader* out) {
  if (data == nullptr || len < kIpfixHeaderBytes) return IpfixHeaderStatus::kShortHeader;
  const std::uint16_t version = static_cast<std::uint16_t>((data[0] << 8) | data[1]);
  if (version != kIpfixVersion) return IpfixHeaderStatus::kBadVersion;
  const std::uint16_t length = static_cast<std::uint16_t>((data[2] << 8) | data[3]);
  // A UDP datagram carries exactly one message, so the header's own length
  // claim must match what came off the wire — anything else is truncation or
  // trailing garbage, and the body parsers must never trust it.
  if (length != len) return IpfixHeaderStatus::kLengthMismatch;
  if (out != nullptr) {
    out->length = length;
    auto u32_at = [data](std::size_t i) {
      return (static_cast<std::uint32_t>(data[i]) << 24) |
             (static_cast<std::uint32_t>(data[i + 1]) << 16) |
             (static_cast<std::uint32_t>(data[i + 2]) << 8) |
             static_cast<std::uint32_t>(data[i + 3]);
    };
    out->export_time = u32_at(4);
    out->sequence = u32_at(8);
    out->observation_domain = u32_at(12);
  }
  return IpfixHeaderStatus::kOk;
}

std::optional<std::uint32_t> peek_export_time(const std::uint8_t* data, std::size_t len) {
  if (data == nullptr || len < kIpfixHeaderBytes) return std::nullopt;
  const std::uint16_t version = static_cast<std::uint16_t>((data[0] << 8) | data[1]);
  if (version != kIpfixVersion) return std::nullopt;
  return (static_cast<std::uint32_t>(data[4]) << 24) |
         (static_cast<std::uint32_t>(data[5]) << 16) |
         (static_cast<std::uint32_t>(data[6]) << 8) | static_cast<std::uint32_t>(data[7]);
}

std::optional<std::uint32_t> peek_export_time(const std::vector<std::uint8_t>& message) {
  return peek_export_time(message.data(), message.size());
}

std::optional<std::uint32_t> peek_record_count(const std::uint8_t* data, std::size_t len) {
  IpfixHeader header;
  if (peek_header(data, len, &header) != IpfixHeaderStatus::kOk) return std::nullopt;
  Reader r{data + kIpfixHeaderBytes, len - kIpfixHeaderBytes};

  // Template id -> record length, for templates announced in this message.
  std::unordered_map<std::uint16_t, std::size_t> record_lengths;
  std::uint32_t records = 0;
  while (r.remaining > 0) {
    std::uint16_t set_id, set_len;
    if (!r.u16(set_id) || !r.u16(set_len) || set_len < 4 ||
        static_cast<std::size_t>(set_len - 4) > r.remaining) {
      return std::nullopt;
    }
    Reader set{r.p, static_cast<std::size_t>(set_len - 4)};
    if (!r.skip(set_len - 4)) return std::nullopt;
    if (set_id == 2) {
      while (set.remaining >= 4) {
        std::uint16_t tid, field_count;
        if (!set.u16(tid) || !set.u16(field_count)) return std::nullopt;
        std::size_t record_length = 0;
        for (std::uint16_t f = 0; f < field_count; ++f) {
          std::uint16_t id, flen;
          if (!set.u16(id) || !set.u16(flen)) return std::nullopt;
          if ((id & 0x8000u) && !set.skip(4)) return std::nullopt;
          record_length += flen;
        }
        record_lengths[tid] = record_length;
      }
    } else if (set_id >= 256) {
      const auto it = record_lengths.find(set_id);
      if (it != record_lengths.end() && it->second > 0) {
        records += static_cast<std::uint32_t>(set.remaining / it->second);
      }
    }
  }
  return records;
}

std::optional<std::uint32_t> peek_record_count(const std::vector<std::uint8_t>& message) {
  return peek_record_count(message.data(), message.size());
}

std::vector<std::vector<std::uint8_t>> IpfixEncoder::encode(
    const std::vector<FlowRecord>& records, std::uint32_t export_time) {
  std::vector<std::vector<std::uint8_t>> messages;
  std::size_t i = 0;
  do {
    std::vector<std::uint8_t> msg;
    // Message header (length patched at the end).
    put_u16(msg, kIpfixVersion);
    put_u16(msg, 0);
    put_u32(msg, export_time);
    put_u32(msg, sequence_);
    put_u32(msg, options_.observation_domain);
    append_template_set(msg);

    // Data set header.
    const std::size_t set_start = msg.size();
    put_u16(msg, kFlowTemplateId);
    put_u16(msg, 0);  // patched below
    std::uint32_t in_this_message = 0;
    while (i < records.size() && msg.size() + kRecordBytes <= options_.max_message_bytes) {
      append_record(msg, records[i]);
      ++i;
      ++in_this_message;
    }
    sequence_ += in_this_message;

    const auto set_len = static_cast<std::uint16_t>(msg.size() - set_start);
    msg[set_start + 2] = static_cast<std::uint8_t>(set_len >> 8);
    msg[set_start + 3] = static_cast<std::uint8_t>(set_len);
    const auto msg_len = static_cast<std::uint16_t>(msg.size());
    msg[2] = static_cast<std::uint8_t>(msg_len >> 8);
    msg[3] = static_cast<std::uint8_t>(msg_len);
    messages.push_back(std::move(msg));
  } while (i < records.size());
  return messages;
}

bool IpfixDecoder::decode(const std::vector<std::uint8_t>& message,
                          std::vector<FlowRecord>& out) {
  const std::size_t initial_out = out.size();
  auto fail = [&] {
    out.resize(initial_out);
    ++stats_.malformed_messages;
    return false;
  };

  IpfixHeader header;
  if (peek_header(message.data(), message.size(), &header) != IpfixHeaderStatus::kOk) {
    return fail();
  }
  const std::uint32_t domain = header.observation_domain;
  Reader r{message.data() + kIpfixHeaderBytes, message.size() - kIpfixHeaderBytes};

  while (r.remaining > 0) {
    std::uint16_t set_id, set_len;
    if (!r.u16(set_id) || !r.u16(set_len) || set_len < 4 ||
        static_cast<std::size_t>(set_len - 4) > r.remaining) {
      return fail();
    }
    Reader set{r.p, static_cast<std::size_t>(set_len - 4)};
    if (!r.skip(set_len - 4)) return fail();

    if (set_id == 2) {
      // Template set: may contain several templates.
      ++stats_.template_sets;
      while (set.remaining >= 4) {
        std::uint16_t tid, field_count;
        if (!set.u16(tid) || !set.u16(field_count)) return fail();
        Template tmpl;
        for (std::uint16_t f = 0; f < field_count; ++f) {
          std::uint16_t id, flen;
          if (!set.u16(id) || !set.u16(flen)) return fail();
          FieldSpec spec;
          spec.length = flen;
          if (id & 0x8000u) {
            spec.id = static_cast<std::uint16_t>(id & 0x7FFFu);
            if (!set.u32(spec.enterprise)) return fail();
          } else {
            spec.id = id;
          }
          tmpl.record_length += flen;
          tmpl.fields.push_back(spec);
        }
        const std::uint64_t key = (static_cast<std::uint64_t>(domain) << 16) | tid;
        templates_[key] = std::move(tmpl);
      }
    } else if (set_id >= 256) {
      const std::uint64_t key = (static_cast<std::uint64_t>(domain) << 16) | set_id;
      auto it = templates_.find(key);
      if (it == templates_.end()) {
        ++stats_.skipped_sets;  // data before template: legal, we drop it
        continue;
      }
      const Template& tmpl = it->second;
      if (tmpl.record_length == 0) return fail();
      while (set.remaining >= tmpl.record_length) {
        FlowRecord rec;
        for (const FieldSpec& f : tmpl.fields) {
          std::uint64_t v = 0;
          // The loop guard guarantees a full record remains, but the check
          // stays explicit: field lengths are attacker-controlled bytes and
          // must never be able to walk the cursor past the set.
          if (!set.read_uint(f.length, v)) return fail();
          if (f.enterprise == 0) {
            switch (f.id) {
              case 8: rec.src_addr = static_cast<std::uint32_t>(v); break;
              case 12: rec.dst_addr = static_cast<std::uint32_t>(v); break;
              case 7: rec.src_port = static_cast<std::uint16_t>(v); break;
              case 11: rec.dst_port = static_cast<std::uint16_t>(v); break;
              case 2: rec.packets = v; break;
              default: break;  // unknown IANA field: ignored
            }
          } else if (f.enterprise == kFlockEnterpriseNumber) {
            switch (f.id) {
              case 1: rec.retransmissions = v; break;
              case 2: rec.mean_rtt_us = static_cast<std::uint32_t>(v); break;
              case 3: rec.path_set = static_cast<std::int32_t>(v); break;
              case 4: rec.taken_path = static_cast<std::int32_t>(v); break;
              default: break;
            }
          }
        }
        out.push_back(rec);
        ++stats_.records;
      }
    }
    // set ids 3..255 are reserved; silently skipped by the loop structure.
  }
  ++stats_.messages;
  return true;
}

}  // namespace flock
