// Time-stepped queue-level network simulator.
//
// This is the repository's stand-in for the paper's NS3 runs and hardware
// testbed (§6.3): it models per-link FIFO queues with finite service rates,
// so packet drops and latency are *congestion-correlated* rather than i.i.d.
// — exactly the kind of model mismatch Flock's PGM has to tolerate. Two
// testbed failure scenarios are reproduced (§6.4):
//
//   * Misconfigured WRED queue: a link drops each arriving packet with
//     probability p whenever its queue length exceeds w packets (the paper
//     misconfigures p=1%, w=0, so the link misbehaves exactly when busy).
//   * Link flap: a link stops serving for a window; traffic is buffered, so
//     affected flows see an RTT spike but no extra retransmissions.
//
// The simulator emits the same Trace structure as the flow-level simulator,
// so every telemetry view and localizer runs unchanged on its output.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "flowsim/simulate.h"
#include "topology/ecmp.h"
#include "topology/topology.h"

namespace flock {

struct QueueMisconfig {
  LinkId link = -1;
  double drop_prob = 0.01;           // p: drop probability above threshold
  std::int32_t wred_threshold = 0;   // w: queue length (packets) that arms WRED
};

struct LinkFlap {
  LinkId link = -1;
  double start_ms = 0.0;
  double duration_ms = 0.0;
};

struct QueueSimConfig {
  double duration_ms = 600.0;
  double tick_ms = 1.0;
  // 1 Gbps at 1500B MSS is ~83 packets per ms (the testbed's link speed).
  double link_capacity_pkts_per_ms = 83.0;
  double base_rtt_ms = 0.2;
  // Defaults put the leaf uplinks around 80% utilization (3x oversubscribed
  // racks, as in real testbeds), so queues form in microbursts rather than
  // persistently.
  std::int64_t num_app_flows = 1800;
  // Flow demand: *average* packets per tick while active, and total packets.
  double flow_rate_pkts_per_ms = 2.0;
  double mean_flow_packets = 200.0;
  // Flows send in on/off bursts of this many packets (expected rate is
  // preserved). Burstiness is what arms the misconfigured WRED queue at
  // moderate utilization — without it a fluid model never queues below 100%
  // load.
  std::int64_t burst_pkts = 16;
  // Background corruption on good links (same role as §6.3's 0-0.01%).
  double background_drop_max = 1e-4;
  std::uint32_t queue_limit_pkts = 1u << 20;
};

struct QueueSimFailures {
  std::vector<QueueMisconfig> misconfigs;
  std::vector<LinkFlap> flaps;
};

// Run the simulation; ground truth marks the misconfigured / flapped links
// as the failed components.
Trace run_queue_sim(const Topology& topo, EcmpRouter& router, const QueueSimConfig& config,
                    const QueueSimFailures& failures, Rng& rng);

}  // namespace flock
