#include "netsim/queue_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace flock {
namespace {

struct ActiveFlow {
  std::size_t trace_index;           // into trace.flows
  std::vector<LinkId> links;         // concrete path, access links included
  std::int64_t start_tick = 0;
  std::int64_t remaining = 0;        // packets left to send
  double rtt_weighted_sum = 0.0;     // packet-weighted queueing delay
  std::int64_t packets_timed = 0;
};

}  // namespace

Trace run_queue_sim(const Topology& topo, EcmpRouter& router, const QueueSimConfig& config,
                    const QueueSimFailures& failures, Rng& rng) {
  const auto& hosts = topo.hosts();
  if (hosts.size() < 2) throw std::invalid_argument("run_queue_sim: need two hosts");
  const auto n_ticks = static_cast<std::int64_t>(std::ceil(config.duration_ms / config.tick_ms));
  const double capacity = config.link_capacity_pkts_per_ms * config.tick_ms;

  Trace trace;
  trace.truth.link_drop_rate.assign(static_cast<std::size_t>(topo.num_links()), 0.0);
  for (auto& d : trace.truth.link_drop_rate) d = rng.uniform(0.0, config.background_drop_max);
  for (const QueueMisconfig& m : failures.misconfigs) {
    trace.truth.failed.push_back(topo.link_component(m.link));
  }
  for (const LinkFlap& f : failures.flaps) {
    trace.truth.failed.push_back(topo.link_component(f.link));
  }
  std::sort(trace.truth.failed.begin(), trace.truth.failed.end());

  // Per-link state.
  std::vector<double> queue(static_cast<std::size_t>(topo.num_links()), 0.0);
  std::vector<double> arrivals(static_cast<std::size_t>(topo.num_links()), 0.0);
  std::vector<const QueueMisconfig*> misconfig_of(static_cast<std::size_t>(topo.num_links()),
                                                  nullptr);
  for (const QueueMisconfig& m : failures.misconfigs) {
    misconfig_of[static_cast<std::size_t>(m.link)] = &m;
  }

  // Build flows.
  std::vector<ActiveFlow> active;
  active.reserve(static_cast<std::size_t>(config.num_app_flows));
  for (std::int64_t i = 0; i < config.num_app_flows; ++i) {
    SimFlow f;
    f.kind = SimFlowKind::kApp;
    f.src_host = hosts[rng.next_below(hosts.size())];
    do {
      f.dst_host = hosts[rng.next_below(hosts.size())];
    } while (f.dst_host == f.src_host);
    f.src_link = topo.link_component(topo.host_access_link(f.src_host));
    f.dst_link = topo.link_component(topo.host_access_link(f.dst_host));
    f.path_set = router.host_pair_path_set(f.src_host, f.dst_host);
    const auto width = static_cast<std::uint64_t>(router.path_set(f.path_set).paths.size());
    f.taken_path = static_cast<std::int32_t>(rng.next_below(width));
    f.packets_sent = 0;  // accumulated below
    f.rtt_ms = static_cast<float>(config.base_rtt_ms);

    ActiveFlow af;
    af.trace_index = trace.flows.size();
    af.start_tick = static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(n_ticks)));
    af.remaining = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(rng.exponential(1.0 / config.mean_flow_packets)));
    af.links.push_back(topo.component_link(f.src_link));
    const PathSet& set = router.path_set(f.path_set);
    for (ComponentId c :
         router.path(set.paths[static_cast<std::size_t>(f.taken_path)]).comps) {
      if (topo.is_link_component(c)) af.links.push_back(topo.component_link(c));
    }
    af.links.push_back(topo.component_link(f.dst_link));
    trace.flows.push_back(f);
    active.push_back(std::move(af));
  }

  auto link_capacity_at = [&](LinkId l, double now_ms) {
    for (const LinkFlap& flap : failures.flaps) {
      if (flap.link == l && now_ms >= flap.start_ms && now_ms < flap.start_ms + flap.duration_ms) {
        return 0.0;  // buffering, not serving
      }
    }
    return capacity;
  };

  for (std::int64_t tick = 0; tick < n_ticks; ++tick) {
    const double now_ms = static_cast<double>(tick) * config.tick_ms;
    std::fill(arrivals.begin(), arrivals.end(), 0.0);

    for (ActiveFlow& af : active) {
      if (af.remaining <= 0 || tick < af.start_tick) continue;
      // On/off bursts with the configured mean rate.
      const double mean_per_tick = config.flow_rate_pkts_per_ms * config.tick_ms;
      std::int64_t offered;
      if (config.burst_pkts > 1 && mean_per_tick < static_cast<double>(config.burst_pkts)) {
        const double p = mean_per_tick / static_cast<double>(config.burst_pkts);
        offered = rng.chance(p) ? config.burst_pkts : 0;
      } else {
        offered = static_cast<std::int64_t>(mean_per_tick);
      }
      offered = std::min(offered, af.remaining);
      if (offered <= 0) continue;
      af.remaining -= offered;
      SimFlow& f = trace.flows[af.trace_index];
      f.packets_sent += static_cast<std::uint32_t>(offered);

      // Walk the path: each hop may drop (WRED misconfig or background) and
      // adds its current queueing delay.
      std::int64_t surviving = offered;
      double delay_ms = config.base_rtt_ms;
      for (LinkId l : af.links) {
        const auto li = static_cast<std::size_t>(l);
        if (surviving > 0) {
          std::int64_t lost = 0;
          if (const QueueMisconfig* m = misconfig_of[li];
              m != nullptr && queue[li] > static_cast<double>(m->wred_threshold)) {
            lost += static_cast<std::int64_t>(
                rng.binomial(static_cast<std::uint64_t>(surviving), m->drop_prob));
          }
          const double bg = trace.truth.link_drop_rate[li];
          if (bg > 0.0 && surviving > lost) {
            lost += static_cast<std::int64_t>(
                rng.binomial(static_cast<std::uint64_t>(surviving - lost), bg));
          }
          lost = std::min(lost, surviving);
          f.dropped += static_cast<std::uint32_t>(lost);
          surviving -= lost;
        }
        arrivals[li] += static_cast<double>(surviving);
        delay_ms += queue[li] / config.link_capacity_pkts_per_ms;
      }
      if (surviving > 0) {
        af.rtt_weighted_sum += delay_ms * static_cast<double>(surviving);
        af.packets_timed += surviving;
      }
    }

    for (LinkId l = 0; l < topo.num_links(); ++l) {
      const auto li = static_cast<std::size_t>(l);
      queue[li] = std::min<double>(
          static_cast<double>(config.queue_limit_pkts),
          std::max(0.0, queue[li] + arrivals[li] - link_capacity_at(l, now_ms)));
    }
  }

  for (const ActiveFlow& af : active) {
    SimFlow& f = trace.flows[af.trace_index];
    if (af.packets_timed > 0) {
      f.rtt_ms = static_cast<float>(af.rtt_weighted_sum / static_cast<double>(af.packets_timed));
    }
  }
  return trace;
}

}  // namespace flock
