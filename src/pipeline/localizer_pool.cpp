#include "pipeline/localizer_pool.h"

#include <optional>

namespace flock {

// Task backlog bound: effectively unbounded, but finite so a wedged sink
// cannot eat all memory. submit() blocks if it is ever reached.
constexpr std::size_t kTaskCapacity = 1 << 16;

LocalizerPool::LocalizerPool(const FlockLocalizer& localizer, std::size_t num_threads,
                             ResultFn on_result)
    : LocalizerPool(
          [&localizer](const InferenceInput& input) { return localizer.localize(input); },
          num_threads, std::move(on_result)) {}

LocalizerPool::LocalizerPool(LocalizeFn localize, std::size_t num_threads, ResultFn on_result)
    : localize_(std::move(localize)), on_result_(std::move(on_result)) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

LocalizerPool::~LocalizerPool() { shutdown(); }

void LocalizerPool::submit(EpochSnapshot snapshot) {
  {
    MutexLock lock(mutex_);
    while (!closed_ && tasks_.size() >= kTaskCapacity) producer_cv_.wait(lock);
    if (closed_) return;  // racing a shutdown: the pipeline is going down anyway
    // A task older than the newest queued epoch will be dispatched before
    // work that was submitted earlier — that is the point of the priority
    // queue, and the counter makes it observable.
    if (!tasks_.empty() && snapshot.epoch < tasks_.rbegin()->first.first) {
      priority_reorders_.fetch_add(1, std::memory_order_relaxed);
    }
    tasks_.emplace(std::make_pair(snapshot.epoch, next_seq_++), std::move(snapshot));
  }
  consumer_cv_.notify_one();
}

void LocalizerPool::shutdown() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;  // idempotent
  {
    MutexLock lock(mutex_);
    closed_ = true;  // workers drain the backlog, then exit
  }
  consumer_cv_.notify_all();
  producer_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void LocalizerPool::worker_loop() {
  for (;;) {
    std::optional<EpochSnapshot> snap;
    {
      MutexLock lock(mutex_);
      while (!closed_ && tasks_.empty()) consumer_cv_.wait(lock);
      if (tasks_.empty()) return;  // closed and drained
      auto oldest = tasks_.begin();
      snap.emplace(std::move(oldest->second));
      tasks_.erase(oldest);
    }
    producer_cv_.notify_one();
    LocalizationResult result = localize_(snap->input);
    on_result_(std::move(*snap), std::move(result));
  }
}

}  // namespace flock
