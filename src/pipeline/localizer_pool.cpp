#include "pipeline/localizer_pool.h"

namespace flock {

// Task backlog bound: effectively unbounded, but finite so a wedged sink
// cannot eat all memory. submit() blocks if it is ever reached.
constexpr std::size_t kTaskCapacity = 1 << 16;

LocalizerPool::LocalizerPool(const FlockLocalizer& localizer, std::size_t num_threads,
                             ResultFn on_result)
    : localizer_(&localizer), on_result_(std::move(on_result)), tasks_(kTaskCapacity) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

LocalizerPool::~LocalizerPool() { shutdown(); }

void LocalizerPool::submit(EpochSnapshot snapshot) { tasks_.push_wait(std::move(snapshot)); }

void LocalizerPool::shutdown() {
  if (stopped_) return;
  stopped_ = true;
  tasks_.close();  // workers drain the backlog, then exit
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void LocalizerPool::worker_loop() {
  std::vector<EpochSnapshot> batch;
  for (;;) {
    batch.clear();
    if (tasks_.pop_batch(batch, 1) == 0) return;
    EpochSnapshot& snap = batch.front();
    LocalizationResult result = localizer_->localize(snap.input);
    on_result_(std::move(snap), std::move(result));
  }
}

}  // namespace flock
