// Terminal stage of the streaming pipeline: merge per-shard localization
// results into one diagnosis per epoch and account per-epoch latency.
//
// Each epoch produces exactly num_shards results (empty shards included).
// The merge is the union of the shard hypotheses with duplicates removed;
// optionally, components that passive ECMP telemetry cannot distinguish
// (ecmp_equivalence_classes) are collapsed to one representative per class —
// two shards blaming different members of the same class are reporting the
// same physical ambiguity, not two faults.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "core/inference_input.h"
#include "pipeline/sharded_collector.h"
#include "topology/ecmp.h"

namespace flock {

struct EpochResult {
  std::uint64_t epoch = 0;
  std::vector<ComponentId> predicted;  // merged union, sorted, deduped
  // Sum of the per-shard model scores (log posterior of each shard's own
  // hypothesis over its own flow subset). The shards optimize disjoint
  // observation sets under separate hypotheses, so this is a diagnostic
  // aggregate of per-shard fit — NOT the joint likelihood of the merged
  // hypothesis. ResultSink::add asserts each addend is finite.
  double shard_score_sum = 0.0;
  std::int64_t hypotheses_scanned = 0;
  std::uint64_t flows = 0;             // flow observations across shards
  std::uint64_t rows = 0;              // weighted FlowTable rows those collapsed into
  std::uint64_t unresolved = 0;        // records no shard could join
  std::uint64_t stolen_batches = 0;    // decode+join batches executed by thieves
  std::uint64_t equivalent_merged = 0; // components collapsed by class dedup
  double close_to_merge_seconds = 0.0; // epoch close -> merged diagnosis ready
  double max_shard_localize_seconds = 0.0;
  std::vector<std::vector<ComponentId>> per_shard_predicted;
};

class ResultSink {
 public:
  // Downstream consumer of fully merged epochs (the temporal tracker in the
  // pipeline). Invoked once per epoch, outside the sink's lock, on whichever
  // thread completed the merge; epochs may therefore arrive out of order.
  using EpochFn = std::function<void(const EpochResult&)>;

  // When `router` is non-null, ECMP equivalence classes are computed up
  // front (requires all ToR-pair path sets; affordable at service start) and
  // used to dedup the merged hypothesis.
  ResultSink(std::int32_t num_shards, EcmpRouter* router, EpochFn on_epoch = {});

  // As above with a precomputed class partition (empty = dedup off). Lets
  // the pipeline compute ecmp_equivalence_classes once and share it with the
  // TemporalTracker's class-keyed accounting.
  ResultSink(std::int32_t num_shards, const std::vector<std::vector<ComponentId>>& classes,
             EpochFn on_epoch = {});

  // Called from localizer-pool (or shard) threads.
  void add(const EpochSnapshot& snapshot, const LocalizationResult& result) EXCLUDES(mutex_);

  // Block until at least `count` epochs have fully merged.
  void wait_for_epochs(std::size_t count) EXCLUDES(mutex_);

  // As above with a wait bound; returns false on timeout. For callers (tests,
  // health checks) that must report a stalled pipeline instead of hanging.
  bool wait_for_epochs_for(std::size_t count, std::chrono::milliseconds timeout)
      EXCLUDES(mutex_);

  std::size_t completed_epochs() const EXCLUDES(mutex_);

  // All merged epochs so far, ordered by epoch id.
  std::vector<EpochResult> completed() const EXCLUDES(mutex_);

 private:
  struct Pending {
    std::int32_t remaining = 0;
    EpochResult partial;
    Stopwatch since_close;
  };

  std::int32_t num_shards_;
  EpochFn on_epoch_;
  std::unordered_map<ComponentId, std::int32_t> class_of_;  // empty when dedup off

  mutable Mutex mutex_;
  CondVar cv_;
  std::unordered_map<std::uint64_t, Pending> pending_ GUARDED_BY(mutex_);
  std::vector<EpochResult> completed_ GUARDED_BY(mutex_);
};

}  // namespace flock
