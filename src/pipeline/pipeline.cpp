#include "pipeline/pipeline.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <thread>

#include "common/parallel_for.h"

namespace flock {

namespace {
// Shared thread budget: each of the pool's K localizer threads (and each
// shard worker, at its barrier) owns an intra-epoch team of this size, so
// the effective value is clamped to hardware_concurrency / K — pool x inner
// never oversubscribes the machine. The result is stored back non-zero so
// the env lever is consulted exactly once, here.
FlockOptions with_localize_threads(FlockOptions options, std::int32_t requested,
                                   std::size_t pool_threads) {
  if (requested <= 0) requested = options.localize_threads;
  std::int32_t effective = parallel::resolve_threads(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) {
    const auto budget = static_cast<std::int32_t>(std::max<std::size_t>(
        1, static_cast<std::size_t>(hw) / std::max<std::size_t>(1, pool_threads)));
    effective = std::min(effective, budget);
  }
  options.localize_threads = std::max(1, effective);
  return options;
}
}  // namespace

StreamingPipeline::StreamingPipeline(const Topology& topo, EcmpRouter& router,
                                     PipelineConfig config)
    : config_(config),
      router_(&router),
      localizer_(with_localize_threads(config.localizer, config.localize_threads,
                                       config.localizer_threads)),
      queue_(config.ingest_capacity) {
  // The ECMP class partition is computed once and shared: the sink collapses
  // each merged hypothesis to one representative per class, and the tracker
  // keys its cross-epoch state by the class's canonical member — so blame
  // history cannot fragment when the sink's representative changes between
  // epochs.
  std::vector<std::vector<ComponentId>> classes;
  if (config.merge_equivalence_classes) classes = ecmp_equivalence_classes(router);
  tracker_ = std::make_unique<TemporalTracker>(config.temporal);
  if (config.merge_equivalence_classes) tracker_->set_equivalence_classes(classes);
  sink_ = std::make_unique<ResultSink>(
      config.num_shards, classes,
      ResultSink::EpochFn([this](const EpochResult& epoch) { tracker_->observe(epoch); }));
  pool_ = std::make_unique<LocalizerPool>(
      // Evidence carryover: with a positive prior weight, each inference
      // run samples the tracker's current per-component prior (with one
      // localizer thread and age-priority dispatch, that is exactly the
      // state after every older epoch merged). Weight 0 bypasses the
      // tracker entirely — byte-identical to a tracker-less pipeline.
      LocalizerPool::LocalizeFn([this](const InferenceInput& input) {
        if (config_.temporal.prior_weight > 0.0) {
          return localizer_.localize(
              input, tracker_->prior_logodds(
                         static_cast<std::size_t>(input.topology().num_components())));
        }
        return localizer_.localize(input);
      }),
      config.localizer_threads,
      [this](EpochSnapshot snap, LocalizationResult result) {
        memo_hits_.fetch_add(result.memo_hits, std::memory_order_relaxed);
        memo_table_reuses_.fetch_add(result.memo_table_reuses, std::memory_order_relaxed);
        parallel_chunks_.fetch_add(result.parallel_chunks, std::memory_order_relaxed);
        parallel_steals_.fetch_add(result.parallel_steals, std::memory_order_relaxed);
        parallel_ns_.fetch_add(result.parallel_ns, std::memory_order_relaxed);
        sink_->add(snap, result);
        // The sink copies what it keeps; the snapshot's table goes back
        // to its origin shard's epoch arena.
        shards_->recycle(std::move(snap));
      });
  shards_ = std::make_unique<ShardExecutor>(
      topo, router,
      ShardExecutorOptions{config.num_shards, config.shard_queue_capacity, config.steal_batch,
                           localizer_.options().localize_threads},
      config.collector,
      [this](EpochSnapshot snap) {
        // Empty shards skip inference; the sink still needs their vote
        // so the epoch completes.
        if (snap.input.num_flows() == 0) {
          sink_->add(snap, LocalizationResult{});
          shards_->recycle(std::move(snap));
        } else {
          pool_->submit(std::move(snap));
        }
      });
  scheduler_ = std::make_unique<EpochScheduler>(queue_, *shards_, config.epoch);
}

StreamingPipeline::~StreamingPipeline() {
  stop();
  // Tear the stages down eagerly so the context reference count is exact,
  // then check the lifetime contract: once scheduler, shards, pool and sink
  // are gone, the only live reference to the epoch context must be the copy
  // taken here — anything more means an InferenceInput outlived the
  // pipeline while borrowing the caller's Topology/EcmpRouter.
  const std::shared_ptr<const InferenceContext> ctx = shards_->context();
  scheduler_.reset();
  shards_.reset();
  pool_.reset();
  sink_.reset();
  if (ctx.use_count() != 1) {
    // Loud in every build (NDEBUG strips the assert, and the sanitizer CI
    // legs build RelWithDebInfo): this is a use-after-free in the making.
    std::fprintf(stderr,
                 "StreamingPipeline: %ld epoch InferenceInput(s) outlived the pipeline; their "
                 "Topology/EcmpRouter references are about to dangle\n",
                 ctx.use_count() - 1);
    assert(false && "an epoch's InferenceInput outlived the StreamingPipeline");
  }
}

bool StreamingPipeline::offer(IngestDatagram datagram) {
  IngestItem item;
  item.datagram = std::move(datagram);
  return queue_.try_push(std::move(item));
}

bool StreamingPipeline::offer_wait(IngestDatagram datagram) {
  IngestItem item;
  item.datagram = std::move(datagram);
  return queue_.push_wait(std::move(item));
}

void StreamingPipeline::close_epoch() {
  IngestItem item;
  item.epoch_boundary = true;
  // Boundary tokens share the datagram queue (that is what gives them a
  // well-defined position in arrival order) but are not datagrams: count
  // each outcome after the fact so stats() can subtract them from the
  // queue's own pushed/rejected counters.
  if (queue_.push_wait(std::move(item))) {
    boundary_pushes_.fetch_add(1, std::memory_order_relaxed);
  } else {
    boundary_rejections_.fetch_add(1, std::memory_order_relaxed);
  }
}

void StreamingPipeline::stop() {
  if (stopped_) return;
  stopped_ = true;
  scheduler_->stop();  // drains the ingest queue, flushes the final epoch
  shards_->stop();     // drains shard queues (incl. trailing barriers)
  pool_->shutdown();   // finishes all queued inference
}

PipelineStats StreamingPipeline::stats() const {
  PipelineStats s;
  // Read the boundary counters FIRST: they are bumped only after their queue
  // operation completed, so at the later queue read each queue counter is >=
  // the boundary count read here — the subtractions below never underflow,
  // and datagram-only accounting (offered = accepted + dropped +
  // rejected_closed) holds in every snapshot by construction, even taken
  // mid-burst while N receiver threads race offer() against close().
  const std::uint64_t boundary_pushes = boundary_pushes_.load(std::memory_order_relaxed);
  const std::uint64_t boundary_rejections =
      boundary_rejections_.load(std::memory_order_relaxed);
  const auto q = queue_.stats();
  s.dropped = q.dropped;
  s.rejected_closed = q.rejected_closed - boundary_rejections;
  s.accepted = q.pushed - boundary_pushes;
  s.offered = s.accepted + s.dropped + s.rejected_closed;
  s.dispatched = scheduler_->datagrams_dispatched();
  s.records_decoded = shards_->records_decoded();
  s.malformed_messages = shards_->malformed_messages();
  s.epochs_closed = scheduler_->epochs_closed();
  s.deadline_epochs = scheduler_->deadline_epochs();
  s.batches_stolen = shards_->batches_stolen();
  s.datagrams_stolen = shards_->datagrams_stolen();
  s.steal_attempts = shards_->steal_attempts();
  s.router_index_publishes = router_->index_publishes();
  s.router_read_retries = router_->read_retries();
  s.priority_reorders = pool_->priority_reorders();
  s.inference_observations = shards_->inference_observations();
  s.inference_rows = shards_->inference_rows();
  s.weight_saturations = shards_->weight_saturations();
  s.arena_reuses = shards_->arena_reuses();
  s.arena_bytes_recycled = shards_->arena_bytes_recycled();
  s.memo_hits = memo_hits_.load(std::memory_order_relaxed);
  s.memo_table_reuses = memo_table_reuses_.load(std::memory_order_relaxed);
  s.parallel_chunks = parallel_chunks_.load(std::memory_order_relaxed);
  s.parallel_steals = parallel_steals_.load(std::memory_order_relaxed);
  s.localize_parallel_ns = parallel_ns_.load(std::memory_order_relaxed);
  s.merge_parallel_chunks = shards_->merge_parallel_chunks();
  s.merge_parallel_ns = shards_->merge_parallel_ns();
  const auto t = tracker_->stats();
  s.tracker_confirmations = t.confirmations;
  s.tracker_flaps = t.flaps_detected;
  s.tracker_clears = t.clears;
  s.tracker_false_clears = t.false_clears;
  s.tracker_dropped_epochs = t.dropped_epochs;
  return s;
}

void StreamingPipeline::save_tracker(std::ostream& os) const { tracker_->save(os); }

void StreamingPipeline::load_tracker(std::istream& is) { tracker_->load(is); }

}  // namespace flock
