#include "pipeline/temporal_tracker.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace flock {

namespace {

std::uint64_t low_bits(std::uint32_t n) {
  return n >= 64 ? ~0ull : (1ull << n) - 1;
}

// --- snapshot wire helpers (little-endian, like net/dgram_log) ---------------

constexpr char kSnapshotMagic[4] = {'F', 'L', 'K', 'T'};
constexpr std::uint32_t kSnapshotVersion = 1;
// Sanity bounds: a flipped bit in a count field must be a loud error, not an
// allocation request.
constexpr std::uint32_t kMaxSnapshotRows = 1u << 24;

template <typename T>
void put(std::ostream& os, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("tracker snapshot: truncated input");
  return v;
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

const char* to_string(ComponentHealth state) {
  switch (state) {
    case ComponentHealth::kHealthy: return "healthy";
    case ComponentHealth::kSuspect: return "suspect";
    case ComponentHealth::kConfirmed: return "confirmed";
    case ComponentHealth::kFlapping: return "flapping";
    case ComponentHealth::kCleared: return "cleared";
  }
  return "?";
}

TemporalTracker::TemporalTracker(TemporalTrackerConfig config) : config_(config) {
  config_.window = std::clamp<std::size_t>(config_.window, 2, 64);
  config_.confirm_epochs = std::max(config_.confirm_epochs, 1);
  config_.clear_epochs = std::max(config_.clear_epochs, 1);
  config_.flap_transitions = std::max(config_.flap_transitions, 2);
  config_.max_pending_epochs = std::max<std::size_t>(config_.max_pending_epochs, 1);
}

void TemporalTracker::set_equivalence_classes(
    const std::vector<std::vector<ComponentId>>& classes) {
  MutexLock lock(mutex_);
  if (stats_.epochs_observed > 0 || !tracked_.empty()) {
    throw std::logic_error(
        "TemporalTracker: equivalence classes must be set before any epoch is "
        "observed or restored");
  }
  class_of_.clear();
  class_members_.clear();
  class_hash_ = 0;
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const auto& cls : classes) {
    if (cls.size() < 2) continue;  // identity mapping; keying by own id is exact
    std::vector<ComponentId> members = cls;
    std::sort(members.begin(), members.end());
    const ComponentId canon = members.front();
    for (const ComponentId c : members) {
      class_of_[c] = canon;
      h = fnv1a(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(c)));
    }
    h = fnv1a(h, static_cast<std::uint64_t>(members.size()));
    class_members_.emplace(canon, std::move(members));
  }
  if (!class_members_.empty()) class_hash_ = h;
}

ComponentId TemporalTracker::canonical(ComponentId c) const {
  const auto it = class_of_.find(c);
  return it == class_of_.end() ? c : it->second;
}

void TemporalTracker::observe(const EpochResult& epoch) {
  MutexLock lock(mutex_);
  // Rebase onto a restored snapshot's timeline: a restarted scheduler counts
  // epochs from 0 again, but the incident's history did not reset.
  const std::uint64_t id = epoch.epoch + epoch_base_;
  if (id < next_epoch_) return;  // duplicate or stale: already applied
  if (id != next_epoch_) {
    // A newer epoch merged before its predecessors (age-priority dispatch
    // makes this rare but not impossible): hold it until the gap fills.
    ++stats_.out_of_order_epochs;
    pending_.emplace(id, epoch.predicted);
    if (pending_.size() > config_.max_pending_epochs) {
      // The buffer is the bound, not the gap: declare the missing epochs
      // lost, skip to the earliest buffered one, and keep the books honest.
      const std::uint64_t resume = pending_.begin()->first;
      stats_.dropped_epochs += resume - next_epoch_;
      next_epoch_ = resume;
      drain_pending();
    }
    return;
  }
  apply(next_epoch_++, epoch.predicted);
  drain_pending();
}

void TemporalTracker::drain_pending() {
  while (!pending_.empty() && pending_.begin()->first == next_epoch_) {
    apply(next_epoch_++, pending_.begin()->second);
    pending_.erase(pending_.begin());
  }
}

void TemporalTracker::apply(std::uint64_t epoch, const std::vector<ComponentId>& blamed) {
  // Canonicalize through the class map (identity when unset), then sort and
  // dedup: two members of one ambiguity class blamed in the same epoch are
  // one blame for the class, not two.
  std::vector<ComponentId> sorted;
  sorted.reserve(blamed.size());
  for (const ComponentId c : blamed) sorted.push_back(canonical(c));
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (ComponentId c : sorted) tracked_.try_emplace(c);
  for (auto it = tracked_.begin(); it != tracked_.end();) {
    Tracked& t = it->second;
    step(t, std::binary_search(sorted.begin(), sorted.end(), it->first), epoch);
    // Forget a component only once its whole window is quiet again, so a
    // re-blame inside the window still sees the earlier history.
    if (t.state == ComponentHealth::kHealthy && (t.history & low_bits(t.epochs_seen)) == 0) {
      it = tracked_.erase(it);
    } else {
      ++it;
    }
  }
  ++stats_.epochs_observed;
  stats_.tracked_components = tracked_.size();
}

void TemporalTracker::step(Tracked& t, bool blamed, std::uint64_t epoch) {
  t.history = (t.history << 1) | (blamed ? 1u : 0u);
  if (t.epochs_seen < config_.window) ++t.epochs_seen;
  if (blamed) {
    ++t.blame_streak;
    t.quiet_streak = 0;
    t.last_blamed_epoch = epoch;
  } else {
    ++t.quiet_streak;
    t.blame_streak = 0;
  }

  const auto confirm = [&] {
    t.state = ComponentHealth::kConfirmed;
    t.confirmed_epoch = epoch;
    ++t.confirmations;
    ++stats_.confirmations;
    if (!t.latency_recorded) {
      t.latency_recorded = true;
      t.epochs_to_confirm = epoch - t.first_blamed_epoch;
    }
  };
  const auto clear = [&] {
    t.state = ComponentHealth::kCleared;
    ++t.clears;
    ++stats_.clears;
  };

  if (blamed && t.state == ComponentHealth::kHealthy) {
    t.state = ComponentHealth::kSuspect;
    t.first_blamed_epoch = epoch;
    t.latency_recorded = false;
  } else if (blamed && t.state == ComponentHealth::kCleared) {
    // The clear did not hold: the fault (or its flap) is back.
    t.state = ComponentHealth::kSuspect;
    ++t.false_clears;
    ++stats_.false_clears;
  }

  // Hysteresis edges.
  if (t.state == ComponentHealth::kSuspect) {
    if (t.blame_streak >= config_.confirm_epochs) {
      confirm();
    } else if (t.quiet_streak >= config_.clear_epochs) {
      t.state = ComponentHealth::kHealthy;  // unconfirmed suspicion expires; not a clear
    }
  } else if (t.state == ComponentHealth::kConfirmed &&
             t.quiet_streak >= config_.clear_epochs) {
    clear();
  }

  // Flap overlay: enough blame on/off edges inside the window override the
  // confirm/clear churn; the state is sticky until the window settles into a
  // persistent fault (re-confirm) or persistent quiet (clear).
  const std::int32_t edges = transitions(t);
  if (t.state == ComponentHealth::kFlapping) {
    if (edges < config_.flap_transitions) {
      if (t.blame_streak >= config_.confirm_epochs) {
        confirm();
      } else if (t.quiet_streak >= config_.clear_epochs) {
        clear();
      }
    }
  } else if (t.state != ComponentHealth::kHealthy && edges >= config_.flap_transitions) {
    t.state = ComponentHealth::kFlapping;
    ++stats_.flaps_detected;
  }

  // A cleared component whose window has fully drained is healthy again
  // (and gets forgotten by apply()); until then it stays visibly "cleared"
  // so a re-blame is recognized as a false clear, not a fresh fault.
  if (t.state == ComponentHealth::kCleared &&
      (t.history & low_bits(t.epochs_seen)) == 0) {
    t.state = ComponentHealth::kHealthy;
  }
}

std::int32_t TemporalTracker::transitions(const Tracked& t) const {
  if (t.epochs_seen < 2) return 0;
  // Edges between consecutive valid bits: k epochs have k-1 adjacent pairs.
  const std::uint64_t edges = (t.history ^ (t.history >> 1)) & low_bits(t.epochs_seen - 1);
  return static_cast<std::int32_t>(std::popcount(edges));
}

double TemporalTracker::duty_cycle(const Tracked& t) const {
  // Normalized by the full window length, not epochs tracked: a component
  // blamed once must start near 0, not at 1.0, or a fresh suspect would
  // carry as much prior as a long-confirmed fault.
  return static_cast<double>(
             std::popcount(t.history & low_bits(static_cast<std::uint32_t>(config_.window)))) /
         static_cast<double>(config_.window);
}

double TemporalTracker::age_factor(const Tracked& t) const {
  if (config_.age_half_life_epochs <= 0.0 || next_epoch_ == 0) return 1.0;
  const std::uint64_t now = next_epoch_ - 1;  // most recently applied epoch
  if (t.last_blamed_epoch >= now) return 1.0;
  const double age = static_cast<double>(now - t.last_blamed_epoch);
  return std::exp2(-age / config_.age_half_life_epochs);
}

ComponentVerdict TemporalTracker::make_verdict(ComponentId c, const Tracked& t) const {
  ComponentVerdict v;
  v.component = c;
  v.state = t.state;
  const auto cls = class_members_.find(c);
  v.class_size = cls == class_members_.end() ? 1 : static_cast<std::int32_t>(cls->second.size());
  v.blame_streak = t.blame_streak;
  v.quiet_streak = t.quiet_streak;
  v.transitions_in_window = transitions(t);
  v.duty_cycle = duty_cycle(t);
  v.first_blamed_epoch = t.first_blamed_epoch;
  v.last_blamed_epoch = t.last_blamed_epoch;
  v.confirmed_epoch = t.confirmed_epoch;
  v.epochs_to_confirm = t.epochs_to_confirm;
  v.confirmations = t.confirmations;
  v.clears = t.clears;
  v.false_clears = t.false_clears;
  return v;
}

std::vector<ComponentVerdict> TemporalTracker::verdicts() const {
  MutexLock lock(mutex_);
  std::vector<ComponentVerdict> out;
  out.reserve(tracked_.size());
  for (const auto& [c, t] : tracked_) {
    if (t.state == ComponentHealth::kHealthy) continue;
    out.push_back(make_verdict(c, t));
  }
  return out;
}

ComponentVerdict TemporalTracker::verdict(ComponentId component) const {
  MutexLock lock(mutex_);
  const ComponentId canon = canonical(component);
  const auto it = tracked_.find(canon);
  if (it == tracked_.end()) {
    ComponentVerdict v;
    v.component = canon;
    const auto cls = class_members_.find(canon);
    if (cls != class_members_.end()) v.class_size = static_cast<std::int32_t>(cls->second.size());
    return v;
  }
  return make_verdict(canon, it->second);
}

std::vector<double> TemporalTracker::prior_logodds(std::size_t num_components) const {
  std::vector<double> out(num_components, 0.0);
  MutexLock lock(mutex_);
  if (config_.prior_weight <= 0.0) return out;
  const auto assign = [&](ComponentId c, double value) {
    if (static_cast<std::size_t>(c) < num_components) {
      out[static_cast<std::size_t>(c)] = value;
    }
  };
  for (const auto& [c, t] : tracked_) {
    double raw = 0.0;
    switch (t.state) {
      case ComponentHealth::kConfirmed:
      case ComponentHealth::kFlapping:
        raw = config_.prior_saturation;
        break;
      case ComponentHealth::kSuspect:
      case ComponentHealth::kCleared:
        // Partial carryover, decaying as blame ages out of the window.
        raw = config_.prior_saturation * duty_cycle(t);
        break;
      case ComponentHealth::kHealthy:
        break;
    }
    // Age decay: a component last blamed `age` epochs ago — confirmed,
    // flapping, or otherwise — must not carry as much prior as one blamed in
    // the most recent epoch. 2^(-age/half_life); half-life 0 = off.
    raw *= age_factor(t);
    const double value = config_.prior_weight * raw;
    // The state is per class; the export is per component, so every member
    // of a tracked class carries it — the sink's representative choice can
    // then never strand the carryover on the wrong member.
    const auto cls = class_members_.find(c);
    if (cls == class_members_.end()) {
      assign(c, value);
    } else {
      for (const ComponentId member : cls->second) assign(member, value);
    }
  }
  return out;
}

// --- snapshot persistence ----------------------------------------------------
//
// Layout (all little-endian):
//   magic "FLKT", u32 version
//   config echo: u64 window, i32 confirm, i32 clear, i32 flap_transitions,
//     f64 prior_weight, f64 prior_saturation, f64 age_half_life_epochs
//   class partition: u32 num_classes, u64 class_hash
//   u64 next_epoch
//   stats: u64 x {epochs_observed, out_of_order, dropped, confirmations,
//                 flaps, clears, false_clears}
//   u32 num_tracked rows, each:
//     i32 component, u64 history, u32 epochs_seen, u8 state, i32 blame_streak,
//     i32 quiet_streak, u8 latency_recorded, u64 first_blamed, u64 last_blamed,
//     u64 confirmed_epoch, u64 epochs_to_confirm, u64 confirmations,
//     u64 clears, u64 false_clears
//   u32 num_pending, each: u64 epoch, u32 count, i32 ids...
//   (no trailer: the counts delimit the snapshot; EOF mid-record is an error)

void TemporalTracker::save(std::ostream& os) const {
  MutexLock lock(mutex_);
  os.write(kSnapshotMagic, sizeof kSnapshotMagic);
  put<std::uint32_t>(os, kSnapshotVersion);
  put<std::uint64_t>(os, config_.window);
  put<std::int32_t>(os, config_.confirm_epochs);
  put<std::int32_t>(os, config_.clear_epochs);
  put<std::int32_t>(os, config_.flap_transitions);
  put<double>(os, config_.prior_weight);
  put<double>(os, config_.prior_saturation);
  put<double>(os, config_.age_half_life_epochs);
  put<std::uint32_t>(os, static_cast<std::uint32_t>(class_members_.size()));
  put<std::uint64_t>(os, class_hash_);
  put<std::uint64_t>(os, next_epoch_);
  put<std::uint64_t>(os, stats_.epochs_observed);
  put<std::uint64_t>(os, stats_.out_of_order_epochs);
  put<std::uint64_t>(os, stats_.dropped_epochs);
  put<std::uint64_t>(os, stats_.confirmations);
  put<std::uint64_t>(os, stats_.flaps_detected);
  put<std::uint64_t>(os, stats_.clears);
  put<std::uint64_t>(os, stats_.false_clears);
  put<std::uint32_t>(os, static_cast<std::uint32_t>(tracked_.size()));
  for (const auto& [c, t] : tracked_) {
    put<std::int32_t>(os, c);
    put<std::uint64_t>(os, t.history);
    put<std::uint32_t>(os, t.epochs_seen);
    put<std::uint8_t>(os, static_cast<std::uint8_t>(t.state));
    put<std::int32_t>(os, t.blame_streak);
    put<std::int32_t>(os, t.quiet_streak);
    put<std::uint8_t>(os, t.latency_recorded ? 1 : 0);
    put<std::uint64_t>(os, t.first_blamed_epoch);
    put<std::uint64_t>(os, t.last_blamed_epoch);
    put<std::uint64_t>(os, t.confirmed_epoch);
    put<std::uint64_t>(os, t.epochs_to_confirm);
    put<std::uint64_t>(os, t.confirmations);
    put<std::uint64_t>(os, t.clears);
    put<std::uint64_t>(os, t.false_clears);
  }
  put<std::uint32_t>(os, static_cast<std::uint32_t>(pending_.size()));
  for (const auto& [epoch, blamed] : pending_) {
    put<std::uint64_t>(os, epoch);
    put<std::uint32_t>(os, static_cast<std::uint32_t>(blamed.size()));
    for (const ComponentId c : blamed) put<std::int32_t>(os, c);
  }
}

void TemporalTracker::load(std::istream& is) {
  MutexLock lock(mutex_);
  if (stats_.epochs_observed > 0 || !tracked_.empty() || next_epoch_ != 0) {
    throw std::logic_error("TemporalTracker::load: tracker has already observed epochs");
  }
  char magic[4];
  is.read(magic, sizeof magic);
  if (!is || std::memcmp(magic, kSnapshotMagic, sizeof kSnapshotMagic) != 0) {
    throw std::runtime_error("tracker snapshot: bad magic (not a tracker snapshot)");
  }
  const auto version = get<std::uint32_t>(is);
  if (version != kSnapshotVersion) {
    throw std::runtime_error("tracker snapshot: unsupported version " +
                             std::to_string(version));
  }
  // Config compatibility: a snapshot taken under different state-machine or
  // carryover parameters would silently diverge from the uninterrupted run —
  // exactly the bug this restore path exists to rule out.
  const auto mismatch = [](const std::string& what) {
    throw std::runtime_error("tracker snapshot: config mismatch (" + what +
                             " differs from the running tracker)");
  };
  if (get<std::uint64_t>(is) != config_.window) mismatch("window");
  if (get<std::int32_t>(is) != config_.confirm_epochs) mismatch("confirm_epochs");
  if (get<std::int32_t>(is) != config_.clear_epochs) mismatch("clear_epochs");
  if (get<std::int32_t>(is) != config_.flap_transitions) mismatch("flap_transitions");
  if (get<double>(is) != config_.prior_weight) mismatch("prior_weight");
  if (get<double>(is) != config_.prior_saturation) mismatch("prior_saturation");
  if (get<double>(is) != config_.age_half_life_epochs) mismatch("age_half_life_epochs");
  if (get<std::uint32_t>(is) != static_cast<std::uint32_t>(class_members_.size())) {
    mismatch("equivalence class count");
  }
  if (get<std::uint64_t>(is) != class_hash_) mismatch("equivalence class partition");

  const auto next_epoch = get<std::uint64_t>(is);
  TemporalStats stats;
  stats.epochs_observed = get<std::uint64_t>(is);
  stats.out_of_order_epochs = get<std::uint64_t>(is);
  stats.dropped_epochs = get<std::uint64_t>(is);
  stats.confirmations = get<std::uint64_t>(is);
  stats.flaps_detected = get<std::uint64_t>(is);
  stats.clears = get<std::uint64_t>(is);
  stats.false_clears = get<std::uint64_t>(is);

  const auto num_tracked = get<std::uint32_t>(is);
  if (num_tracked > kMaxSnapshotRows) {
    throw std::runtime_error("tracker snapshot: corrupt tracked-row count");
  }
  std::map<ComponentId, Tracked> tracked;
  for (std::uint32_t i = 0; i < num_tracked; ++i) {
    const ComponentId c = get<std::int32_t>(is);
    Tracked t;
    t.history = get<std::uint64_t>(is);
    t.epochs_seen = get<std::uint32_t>(is);
    const auto state = get<std::uint8_t>(is);
    if (t.epochs_seen > 64 || state > static_cast<std::uint8_t>(ComponentHealth::kCleared)) {
      throw std::runtime_error("tracker snapshot: corrupt tracked row");
    }
    t.state = static_cast<ComponentHealth>(state);
    t.blame_streak = get<std::int32_t>(is);
    t.quiet_streak = get<std::int32_t>(is);
    t.latency_recorded = get<std::uint8_t>(is) != 0;
    t.first_blamed_epoch = get<std::uint64_t>(is);
    t.last_blamed_epoch = get<std::uint64_t>(is);
    t.confirmed_epoch = get<std::uint64_t>(is);
    t.epochs_to_confirm = get<std::uint64_t>(is);
    t.confirmations = get<std::uint64_t>(is);
    t.clears = get<std::uint64_t>(is);
    t.false_clears = get<std::uint64_t>(is);
    if (!tracked.emplace(c, t).second) {
      throw std::runtime_error("tracker snapshot: duplicate tracked component");
    }
  }
  const auto num_pending = get<std::uint32_t>(is);
  if (num_pending > kMaxSnapshotRows) {
    throw std::runtime_error("tracker snapshot: corrupt pending-epoch count");
  }
  std::map<std::uint64_t, std::vector<ComponentId>> pending;
  for (std::uint32_t i = 0; i < num_pending; ++i) {
    const auto epoch = get<std::uint64_t>(is);
    const auto count = get<std::uint32_t>(is);
    if (count > kMaxSnapshotRows) {
      throw std::runtime_error("tracker snapshot: corrupt pending blame count");
    }
    std::vector<ComponentId> blamed(count);
    for (auto& c : blamed) c = get<std::int32_t>(is);
    pending.emplace(epoch, std::move(blamed));
  }

  // All fields validated; install the snapshot and continue its timeline.
  next_epoch_ = next_epoch;
  epoch_base_ = next_epoch;
  stats_ = stats;
  tracked_ = std::move(tracked);
  pending_ = std::move(pending);
  stats_.tracked_components = tracked_.size();
}

void TemporalTracker::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("tracker snapshot: cannot open " + path);
  save(static_cast<std::ostream&>(os));
  if (!os) throw std::runtime_error("tracker snapshot: write failed for " + path);
}

void TemporalTracker::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("tracker snapshot: cannot open " + path);
  load(static_cast<std::istream&>(is));
}

TemporalStats TemporalTracker::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace flock
