#include "pipeline/temporal_tracker.h"

#include <algorithm>
#include <bit>

namespace flock {

namespace {

std::uint64_t low_bits(std::uint32_t n) {
  return n >= 64 ? ~0ull : (1ull << n) - 1;
}

}  // namespace

const char* to_string(ComponentHealth state) {
  switch (state) {
    case ComponentHealth::kHealthy: return "healthy";
    case ComponentHealth::kSuspect: return "suspect";
    case ComponentHealth::kConfirmed: return "confirmed";
    case ComponentHealth::kFlapping: return "flapping";
    case ComponentHealth::kCleared: return "cleared";
  }
  return "?";
}

TemporalTracker::TemporalTracker(TemporalTrackerConfig config) : config_(config) {
  config_.window = std::clamp<std::size_t>(config_.window, 2, 64);
  config_.confirm_epochs = std::max(config_.confirm_epochs, 1);
  config_.clear_epochs = std::max(config_.clear_epochs, 1);
  config_.flap_transitions = std::max(config_.flap_transitions, 2);
}

void TemporalTracker::observe(const EpochResult& epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (epoch.epoch < next_epoch_) return;  // duplicate or stale: already applied
  if (epoch.epoch != next_epoch_) {
    // A newer epoch merged before its predecessors (age-priority dispatch
    // makes this rare but not impossible): hold it until the gap fills.
    ++stats_.out_of_order_epochs;
    pending_.emplace(epoch.epoch, epoch.predicted);
    return;
  }
  apply(next_epoch_++, epoch.predicted);
  while (!pending_.empty() && pending_.begin()->first == next_epoch_) {
    apply(next_epoch_++, pending_.begin()->second);
    pending_.erase(pending_.begin());
  }
}

void TemporalTracker::apply(std::uint64_t epoch, const std::vector<ComponentId>& blamed) {
  std::vector<ComponentId> sorted = blamed;  // sink output is sorted; don't rely on it
  std::sort(sorted.begin(), sorted.end());
  for (ComponentId c : sorted) tracked_.try_emplace(c);
  for (auto it = tracked_.begin(); it != tracked_.end();) {
    Tracked& t = it->second;
    step(t, std::binary_search(sorted.begin(), sorted.end(), it->first), epoch);
    // Forget a component only once its whole window is quiet again, so a
    // re-blame inside the window still sees the earlier history.
    if (t.state == ComponentHealth::kHealthy && (t.history & low_bits(t.epochs_seen)) == 0) {
      it = tracked_.erase(it);
    } else {
      ++it;
    }
  }
  ++stats_.epochs_observed;
  stats_.tracked_components = tracked_.size();
}

void TemporalTracker::step(Tracked& t, bool blamed, std::uint64_t epoch) {
  t.history = (t.history << 1) | (blamed ? 1u : 0u);
  if (t.epochs_seen < config_.window) ++t.epochs_seen;
  if (blamed) {
    ++t.blame_streak;
    t.quiet_streak = 0;
    t.last_blamed_epoch = epoch;
  } else {
    ++t.quiet_streak;
    t.blame_streak = 0;
  }

  const auto confirm = [&] {
    t.state = ComponentHealth::kConfirmed;
    t.confirmed_epoch = epoch;
    ++t.confirmations;
    ++stats_.confirmations;
    if (!t.latency_recorded) {
      t.latency_recorded = true;
      t.epochs_to_confirm = epoch - t.first_blamed_epoch;
    }
  };
  const auto clear = [&] {
    t.state = ComponentHealth::kCleared;
    ++t.clears;
    ++stats_.clears;
  };

  if (blamed && t.state == ComponentHealth::kHealthy) {
    t.state = ComponentHealth::kSuspect;
    t.first_blamed_epoch = epoch;
    t.latency_recorded = false;
  } else if (blamed && t.state == ComponentHealth::kCleared) {
    // The clear did not hold: the fault (or its flap) is back.
    t.state = ComponentHealth::kSuspect;
    ++t.false_clears;
    ++stats_.false_clears;
  }

  // Hysteresis edges.
  if (t.state == ComponentHealth::kSuspect) {
    if (t.blame_streak >= config_.confirm_epochs) {
      confirm();
    } else if (t.quiet_streak >= config_.clear_epochs) {
      t.state = ComponentHealth::kHealthy;  // unconfirmed suspicion expires; not a clear
    }
  } else if (t.state == ComponentHealth::kConfirmed &&
             t.quiet_streak >= config_.clear_epochs) {
    clear();
  }

  // Flap overlay: enough blame on/off edges inside the window override the
  // confirm/clear churn; the state is sticky until the window settles into a
  // persistent fault (re-confirm) or persistent quiet (clear).
  const std::int32_t edges = transitions(t);
  if (t.state == ComponentHealth::kFlapping) {
    if (edges < config_.flap_transitions) {
      if (t.blame_streak >= config_.confirm_epochs) {
        confirm();
      } else if (t.quiet_streak >= config_.clear_epochs) {
        clear();
      }
    }
  } else if (t.state != ComponentHealth::kHealthy && edges >= config_.flap_transitions) {
    t.state = ComponentHealth::kFlapping;
    ++stats_.flaps_detected;
  }

  // A cleared component whose window has fully drained is healthy again
  // (and gets forgotten by apply()); until then it stays visibly "cleared"
  // so a re-blame is recognized as a false clear, not a fresh fault.
  if (t.state == ComponentHealth::kCleared &&
      (t.history & low_bits(t.epochs_seen)) == 0) {
    t.state = ComponentHealth::kHealthy;
  }
}

std::int32_t TemporalTracker::transitions(const Tracked& t) const {
  if (t.epochs_seen < 2) return 0;
  // Edges between consecutive valid bits: k epochs have k-1 adjacent pairs.
  const std::uint64_t edges = (t.history ^ (t.history >> 1)) & low_bits(t.epochs_seen - 1);
  return static_cast<std::int32_t>(std::popcount(edges));
}

double TemporalTracker::duty_cycle(const Tracked& t) const {
  // Normalized by the full window length, not epochs tracked: a component
  // blamed once must start near 0, not at 1.0, or a fresh suspect would
  // carry as much prior as a long-confirmed fault.
  return static_cast<double>(
             std::popcount(t.history & low_bits(static_cast<std::uint32_t>(config_.window)))) /
         static_cast<double>(config_.window);
}

ComponentVerdict TemporalTracker::make_verdict(ComponentId c, const Tracked& t) const {
  ComponentVerdict v;
  v.component = c;
  v.state = t.state;
  v.blame_streak = t.blame_streak;
  v.quiet_streak = t.quiet_streak;
  v.transitions_in_window = transitions(t);
  v.duty_cycle = duty_cycle(t);
  v.first_blamed_epoch = t.first_blamed_epoch;
  v.last_blamed_epoch = t.last_blamed_epoch;
  v.confirmed_epoch = t.confirmed_epoch;
  v.epochs_to_confirm = t.epochs_to_confirm;
  v.confirmations = t.confirmations;
  v.clears = t.clears;
  v.false_clears = t.false_clears;
  return v;
}

std::vector<ComponentVerdict> TemporalTracker::verdicts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ComponentVerdict> out;
  out.reserve(tracked_.size());
  for (const auto& [c, t] : tracked_) {
    if (t.state == ComponentHealth::kHealthy) continue;
    out.push_back(make_verdict(c, t));
  }
  return out;
}

ComponentVerdict TemporalTracker::verdict(ComponentId component) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tracked_.find(component);
  if (it == tracked_.end()) {
    ComponentVerdict v;
    v.component = component;
    return v;
  }
  return make_verdict(component, it->second);
}

std::vector<double> TemporalTracker::prior_logodds(std::size_t num_components) const {
  std::vector<double> out(num_components, 0.0);
  std::lock_guard<std::mutex> lock(mutex_);
  if (config_.prior_weight <= 0.0) return out;
  for (const auto& [c, t] : tracked_) {
    if (static_cast<std::size_t>(c) >= num_components) continue;
    double raw = 0.0;
    switch (t.state) {
      case ComponentHealth::kConfirmed:
      case ComponentHealth::kFlapping:
        raw = config_.prior_saturation;
        break;
      case ComponentHealth::kSuspect:
      case ComponentHealth::kCleared:
        // Partial carryover, decaying as blame ages out of the window.
        raw = config_.prior_saturation * duty_cycle(t);
        break;
      case ComponentHealth::kHealthy:
        break;
    }
    out[static_cast<std::size_t>(c)] = config_.prior_weight * raw;
  }
  return out;
}

TemporalStats TemporalTracker::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace flock
