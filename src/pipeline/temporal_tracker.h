// Cross-epoch temporal diagnosis: the stage downstream of the ResultSink.
//
// The per-epoch pipeline diagnoses every epoch independently and forgets it;
// the paper's deployment loop (§5) and the link-flap scenario (fig 4b) are
// inherently temporal — a flapping link looks healthy in half the epochs, so
// a memoryless service reports it found, then cleared, then found again,
// forever. The tracker turns the stream of merged EpochResults into a
// continuous diagnosis: a sliding window of the last W epochs' blame sets
// drives one small state machine per component,
//
//     healthy ──blame──► suspect ──streak ≥ confirm_epochs──► confirmed
//        ▲                  │  ▲                                  │
//        │   quiet window   │  │ re-blame (a false clear)         │ quiet
//        └──────────────────┘  └───────────── cleared ◄───────────┘ streak
//                 (any state with ≥ flap_transitions blame edges
//                  inside the window is promoted to FLAPPING and
//                  stays there until the window settles)
//
// with hysteresis on both edges (confirm_epochs consecutive blamed epochs to
// confirm, clear_epochs consecutive quiet ones to clear), per-component blame
// streaks and duty cycles, and detection-latency accounting (first blamed
// epoch of the incident → confirmed).
//
// Equivalence-class accounting: the ResultSink collapses ECMP-ambiguous
// components to one representative per class, but WHICH member represents the
// class can change from epoch to epoch (it is the smallest *predicted*
// member). Keying the state machines by component would fragment one
// incident's history across representatives, so when the pipeline runs with
// merge_equivalence_classes the tracker is handed the same class partition
// (set_equivalence_classes) and keys every Tracked row by the class's
// canonical member — the smallest component id in the class, a pure function
// of the topology, stable across runs and restarts. Verdicts, flap statistics
// and the carryover prior are then per class: verdict() canonicalizes its
// argument, and prior export covers every member. Components outside any
// class (and every component when classes are not set) key by their own id —
// single-member classes are the identity mapping, so class-less pipelines are
// bit-for-bit unchanged.
//
// Evidence carryover: the tracker exports a per-component prior log-odds
// vector. With prior_weight > 0 the pipeline hands it to the FlockLocalizer,
// where it shrinks the (negative) per-component prior cost — a component
// blamed in recent epochs needs less fresh evidence to re-confirm, which is
// what separates "flapping" from "a new fault every other epoch". The raw
// carryover additionally decays with the *age* of the last blame when
// age_half_life_epochs > 0 (see prior_logodds), so a long-quiet flapper or a
// stale confirmation stops exporting full saturation. The defaults
// (prior_weight 0, half-life 0) disable the feedback entirely and the
// per-epoch output is byte-identical to a tracker-less pipeline (pinned by
// tests/pipeline_test.cpp).
//
// Snapshot persistence: save()/load() serialize the complete cross-epoch
// state (versioned little-endian, corruption/truncation-safe like the
// datagram log in net/dgram_log.h). A saved snapshot plus the captured wire
// stream replays a full incident *including its history*: load() rebases
// subsequent epoch ids onto the snapshot's epoch counter, so a restarted
// service whose scheduler numbers epochs from 0 again continues the
// incident's absolute timeline. load() refuses snapshots whose config echo
// or class partition differ from the running tracker's.
//
// Thread model: observe() is called from whichever localizer-pool (or shard)
// thread completes an epoch's merge; epochs that complete out of order are
// buffered (bounded by max_pending_epochs; overflow skips the gap and counts
// dropped epochs) and applied in epoch-id order, so the state machines always
// see the diagnosis stream as a sequence. Readers (verdicts, prior export,
// stats, save) take the same mutex; the tracker is never on the decode/join
// hot path.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <vector>

#include "common/ids.h"
#include "common/mutex.h"
#include "pipeline/result_sink.h"

namespace flock {

enum class ComponentHealth : std::uint8_t {
  kHealthy = 0,   // not blamed inside the window (untracked)
  kSuspect,       // blamed, but not for confirm_epochs consecutive epochs yet
  kConfirmed,     // blame streak reached confirm_epochs
  kFlapping,      // ≥ flap_transitions blame on/off edges inside the window
  kCleared,       // was confirmed/flapping, then quiet for clear_epochs
};

const char* to_string(ComponentHealth state);

struct TemporalTrackerConfig {
  // Sliding window length W in epochs (clamped to [2, 64]; the per-component
  // blame history is a 64-bit mask).
  std::size_t window = 16;
  // Hysteresis: consecutive blamed epochs before suspect -> confirmed, and
  // consecutive quiet epochs before confirmed/flapping -> cleared (a suspect
  // that never confirms quietly reverts to healthy after the same streak).
  std::int32_t confirm_epochs = 2;
  std::int32_t clear_epochs = 2;
  // Blame on/off edges inside the window at or beyond which a component is
  // reported flapping rather than repeatedly (re-)confirmed and cleared.
  std::int32_t flap_transitions = 3;
  // Weight on the exported evidence-carryover prior (0 = feedback off; the
  // pipeline output is then byte-identical to a tracker-less run).
  double prior_weight = 0.0;
  // Cap on the raw carryover log-odds of one component (scaled by state and
  // duty cycle before prior_weight is applied).
  double prior_saturation = 6.0;
  // Age decay of the carryover: the raw log-odds of a component last blamed
  // `age` epochs ago is multiplied by 2^(-age / half_life). 0 (the default)
  // disables decay — every state then exports exactly what it always did, so
  // default output stays byte-identical.
  double age_half_life_epochs = 0.0;
  // Bound on the out-of-order epoch buffer. When a gap in the epoch sequence
  // leaves more than this many epochs buffered, the gap is declared lost:
  // the tracker skips forward to the earliest buffered epoch and counts the
  // skipped ids in TemporalStats::dropped_epochs (clamped to >= 1).
  std::size_t max_pending_epochs = 64;
};

// Snapshot of one component's (or, with equivalence classes set, one class's)
// temporal state. `component` is the canonical class member.
struct ComponentVerdict {
  ComponentId component = kInvalidComponent;
  ComponentHealth state = ComponentHealth::kHealthy;
  std::int32_t class_size = 1;             // members sharing this verdict
  std::int32_t blame_streak = 0;           // consecutive blamed epochs ending now
  std::int32_t quiet_streak = 0;           // consecutive quiet epochs ending now
  std::int32_t transitions_in_window = 0;  // blame on/off edges inside the window
  double duty_cycle = 0.0;                 // blamed fraction of the window
  std::uint64_t first_blamed_epoch = 0;    // start of the current incident
  std::uint64_t last_blamed_epoch = 0;
  std::uint64_t confirmed_epoch = 0;       // most recent confirmation
  // Detection latency of the incident's first confirmation, in epochs
  // (confirmed_epoch - first_blamed_epoch); 0 until confirmed.
  std::uint64_t epochs_to_confirm = 0;
  std::uint64_t confirmations = 0;
  std::uint64_t clears = 0;
  std::uint64_t false_clears = 0;  // cleared, then blamed again within the window
};

struct TemporalStats {
  std::uint64_t epochs_observed = 0;
  std::uint64_t out_of_order_epochs = 0;  // buffered until their predecessors merged
  std::uint64_t dropped_epochs = 0;       // skipped when the pending buffer overflowed
  std::uint64_t confirmations = 0;
  std::uint64_t flaps_detected = 0;  // transitions into kFlapping
  std::uint64_t clears = 0;
  std::uint64_t false_clears = 0;
  std::uint64_t tracked_components = 0;  // currently inside the window
};

class TemporalTracker {
 public:
  explicit TemporalTracker(TemporalTrackerConfig config);

  // Key all state by ECMP equivalence class (canonical member = smallest id
  // in the class; see header comment). Must be called before any epoch is
  // observed or restored; throws std::logic_error otherwise.
  void set_equivalence_classes(const std::vector<std::vector<ComponentId>>& classes)
      EXCLUDES(mutex_);

  // Feed one merged epoch. Epoch ids must be dense starting at 0 (what the
  // EpochScheduler emits); results arriving out of order are buffered and
  // applied in id order. After load(), incoming ids are rebased onto the
  // snapshot's epoch counter. Thread-safe.
  void observe(const EpochResult& epoch) EXCLUDES(mutex_);

  // All currently tracked (non-healthy) components, ordered by id.
  std::vector<ComponentVerdict> verdicts() const EXCLUDES(mutex_);

  // State of one component (healthy default when untracked). With classes
  // set, the verdict of the component's whole equivalence class.
  ComponentVerdict verdict(ComponentId component) const EXCLUDES(mutex_);

  // Evidence carryover for the next localization: per-component prior
  // log-odds, >= 0, already scaled by prior_weight (all zeros when the
  // weight is 0). Suspect/cleared components carry prior_saturation scaled
  // by their window duty cycle; confirmed/flapping carry the full
  // saturation value. With age_half_life_epochs > 0, every state's raw
  // value is additionally scaled by 2^(-age/half_life), age being the
  // number of applied epochs since the component was last blamed. With
  // classes set, every member of a tracked class receives the class value.
  std::vector<double> prior_logodds(std::size_t num_components) const EXCLUDES(mutex_);

  // Versioned little-endian snapshot of the complete cross-epoch state
  // (config echo + class partition hash + per-class rows + pending buffer).
  // save() never fails short of stream errors; load() throws
  // std::runtime_error on a foreign, truncated, corrupt, or
  // config-incompatible snapshot and std::logic_error when epochs were
  // already observed. On success the tracker continues the snapshot's
  // timeline: the next observe(epoch 0) applies as the snapshot's
  // next_epoch.
  void save(std::ostream& os) const EXCLUDES(mutex_);
  void load(std::istream& is) EXCLUDES(mutex_);
  void save(const std::string& path) const;
  void load(const std::string& path);

  TemporalStats stats() const EXCLUDES(mutex_);
  const TemporalTrackerConfig& config() const { return config_; }

 private:
  struct Tracked {
    std::uint64_t history = 0;  // bit 0 = latest epoch, bit k = k epochs ago
    std::uint32_t epochs_seen = 0;  // valid bits in history (capped at window)
    ComponentHealth state = ComponentHealth::kHealthy;
    std::int32_t blame_streak = 0;
    std::int32_t quiet_streak = 0;
    bool latency_recorded = false;  // first confirmation of this incident done
    std::uint64_t first_blamed_epoch = 0;
    std::uint64_t last_blamed_epoch = 0;
    std::uint64_t confirmed_epoch = 0;
    std::uint64_t epochs_to_confirm = 0;
    std::uint64_t confirmations = 0;
    std::uint64_t clears = 0;
    std::uint64_t false_clears = 0;
  };

  // All with mutex_ held (machine-checked):
  ComponentId canonical(ComponentId c) const REQUIRES(mutex_);
  void apply(std::uint64_t epoch, const std::vector<ComponentId>& blamed) REQUIRES(mutex_);
  void drain_pending() REQUIRES(mutex_);
  void step(Tracked& t, bool blamed, std::uint64_t epoch) REQUIRES(mutex_);
  std::int32_t transitions(const Tracked& t) const REQUIRES(mutex_);
  double duty_cycle(const Tracked& t) const REQUIRES(mutex_);
  double age_factor(const Tracked& t) const REQUIRES(mutex_);
  ComponentVerdict make_verdict(ComponentId c, const Tracked& t) const REQUIRES(mutex_);

  TemporalTrackerConfig config_;  // immutable after construction
  mutable Mutex mutex_;
  std::uint64_t next_epoch_ GUARDED_BY(mutex_) = 0;
  // Rebase for restored state: observe(epoch e) applies as e + epoch_base_.
  // 0 until load() installs the snapshot's next_epoch.
  std::uint64_t epoch_base_ GUARDED_BY(mutex_) = 0;
  // Out-of-order buffer.
  std::map<std::uint64_t, std::vector<ComponentId>> pending_ GUARDED_BY(mutex_);
  // Keyed by canonical member.
  std::map<ComponentId, Tracked> tracked_ GUARDED_BY(mutex_);
  // Equivalence-class keying (empty = identity). class_of_ maps every member
  // to its canonical id; class_members_ lists each class, sorted, keyed by
  // canonical id. class_hash_ fingerprints the partition for snapshot
  // compatibility checks.
  std::map<ComponentId, ComponentId> class_of_ GUARDED_BY(mutex_);
  std::map<ComponentId, std::vector<ComponentId>> class_members_ GUARDED_BY(mutex_);
  std::uint64_t class_hash_ GUARDED_BY(mutex_) = 0;
  TemporalStats stats_ GUARDED_BY(mutex_);
};

}  // namespace flock
