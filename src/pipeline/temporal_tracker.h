// Cross-epoch temporal diagnosis: the stage downstream of the ResultSink.
//
// The per-epoch pipeline diagnoses every epoch independently and forgets it;
// the paper's deployment loop (§5) and the link-flap scenario (fig 4b) are
// inherently temporal — a flapping link looks healthy in half the epochs, so
// a memoryless service reports it found, then cleared, then found again,
// forever. The tracker turns the stream of merged EpochResults into a
// continuous diagnosis: a sliding window of the last W epochs' blame sets
// drives one small state machine per component,
//
//     healthy ──blame──► suspect ──streak ≥ confirm_epochs──► confirmed
//        ▲                  │  ▲                                  │
//        │   quiet window   │  │ re-blame (a false clear)         │ quiet
//        └──────────────────┘  └───────────── cleared ◄───────────┘ streak
//                 (any state with ≥ flap_transitions blame edges
//                  inside the window is promoted to FLAPPING and
//                  stays there until the window settles)
//
// with hysteresis on both edges (confirm_epochs consecutive blamed epochs to
// confirm, clear_epochs consecutive quiet ones to clear), per-component blame
// streaks and duty cycles, and detection-latency accounting (first blamed
// epoch of the incident → confirmed).
//
// Evidence carryover: the tracker exports a per-component prior log-odds
// vector. With prior_weight > 0 the pipeline hands it to the FlockLocalizer,
// where it shrinks the (negative) per-component prior cost — a component
// blamed in recent epochs needs less fresh evidence to re-confirm, which is
// what separates "flapping" from "a new fault every other epoch". The
// default prior_weight of 0 disables the feedback entirely and the per-epoch
// output is byte-identical to a tracker-less pipeline (pinned by
// tests/pipeline_test.cpp).
//
// Thread model: observe() is called from whichever localizer-pool (or shard)
// thread completes an epoch's merge; epochs that complete out of order are
// buffered and applied in epoch-id order, so the state machines always see
// the diagnosis stream as a sequence. Readers (verdicts, prior export,
// stats) take the same mutex; the tracker is never on the decode/join hot
// path.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/ids.h"
#include "pipeline/result_sink.h"

namespace flock {

enum class ComponentHealth : std::uint8_t {
  kHealthy = 0,   // not blamed inside the window (untracked)
  kSuspect,       // blamed, but not for confirm_epochs consecutive epochs yet
  kConfirmed,     // blame streak reached confirm_epochs
  kFlapping,      // ≥ flap_transitions blame on/off edges inside the window
  kCleared,       // was confirmed/flapping, then quiet for clear_epochs
};

const char* to_string(ComponentHealth state);

struct TemporalTrackerConfig {
  // Sliding window length W in epochs (clamped to [2, 64]; the per-component
  // blame history is a 64-bit mask).
  std::size_t window = 16;
  // Hysteresis: consecutive blamed epochs before suspect -> confirmed, and
  // consecutive quiet epochs before confirmed/flapping -> cleared (a suspect
  // that never confirms quietly reverts to healthy after the same streak).
  std::int32_t confirm_epochs = 2;
  std::int32_t clear_epochs = 2;
  // Blame on/off edges inside the window at or beyond which a component is
  // reported flapping rather than repeatedly (re-)confirmed and cleared.
  std::int32_t flap_transitions = 3;
  // Weight on the exported evidence-carryover prior (0 = feedback off; the
  // pipeline output is then byte-identical to a tracker-less run).
  double prior_weight = 0.0;
  // Cap on the raw carryover log-odds of one component (scaled by state and
  // duty cycle before prior_weight is applied).
  double prior_saturation = 6.0;
};

// Snapshot of one component's temporal state.
struct ComponentVerdict {
  ComponentId component = kInvalidComponent;
  ComponentHealth state = ComponentHealth::kHealthy;
  std::int32_t blame_streak = 0;           // consecutive blamed epochs ending now
  std::int32_t quiet_streak = 0;           // consecutive quiet epochs ending now
  std::int32_t transitions_in_window = 0;  // blame on/off edges inside the window
  double duty_cycle = 0.0;                 // blamed fraction of the window
  std::uint64_t first_blamed_epoch = 0;    // start of the current incident
  std::uint64_t last_blamed_epoch = 0;
  std::uint64_t confirmed_epoch = 0;       // most recent confirmation
  // Detection latency of the incident's first confirmation, in epochs
  // (confirmed_epoch - first_blamed_epoch); 0 until confirmed.
  std::uint64_t epochs_to_confirm = 0;
  std::uint64_t confirmations = 0;
  std::uint64_t clears = 0;
  std::uint64_t false_clears = 0;  // cleared, then blamed again within the window
};

struct TemporalStats {
  std::uint64_t epochs_observed = 0;
  std::uint64_t out_of_order_epochs = 0;  // buffered until their predecessors merged
  std::uint64_t confirmations = 0;
  std::uint64_t flaps_detected = 0;  // transitions into kFlapping
  std::uint64_t clears = 0;
  std::uint64_t false_clears = 0;
  std::uint64_t tracked_components = 0;  // currently inside the window
};

class TemporalTracker {
 public:
  explicit TemporalTracker(TemporalTrackerConfig config);

  // Feed one merged epoch. Epoch ids must be dense starting at 0 (what the
  // EpochScheduler emits); results arriving out of order are buffered and
  // applied in id order. Thread-safe.
  void observe(const EpochResult& epoch);

  // All currently tracked (non-healthy) components, ordered by id.
  std::vector<ComponentVerdict> verdicts() const;

  // State of one component (healthy default when untracked).
  ComponentVerdict verdict(ComponentId component) const;

  // Evidence carryover for the next localization: per-component prior
  // log-odds, >= 0, already scaled by prior_weight (all zeros when the
  // weight is 0). Suspect/cleared components carry prior_saturation scaled
  // by their window duty cycle; confirmed/flapping carry the full
  // saturation value.
  std::vector<double> prior_logodds(std::size_t num_components) const;

  TemporalStats stats() const;
  const TemporalTrackerConfig& config() const { return config_; }

 private:
  struct Tracked {
    std::uint64_t history = 0;  // bit 0 = latest epoch, bit k = k epochs ago
    std::uint32_t epochs_seen = 0;  // valid bits in history (capped at window)
    ComponentHealth state = ComponentHealth::kHealthy;
    std::int32_t blame_streak = 0;
    std::int32_t quiet_streak = 0;
    bool latency_recorded = false;  // first confirmation of this incident done
    std::uint64_t first_blamed_epoch = 0;
    std::uint64_t last_blamed_epoch = 0;
    std::uint64_t confirmed_epoch = 0;
    std::uint64_t epochs_to_confirm = 0;
    std::uint64_t confirmations = 0;
    std::uint64_t clears = 0;
    std::uint64_t false_clears = 0;
  };

  // All with mutex_ held:
  void apply(std::uint64_t epoch, const std::vector<ComponentId>& blamed);
  void step(Tracked& t, bool blamed, std::uint64_t epoch);
  std::int32_t transitions(const Tracked& t) const;
  double duty_cycle(const Tracked& t) const;
  ComponentVerdict make_verdict(ComponentId c, const Tracked& t) const;

  TemporalTrackerConfig config_;
  mutable std::mutex mutex_;
  std::uint64_t next_epoch_ = 0;
  std::map<std::uint64_t, std::vector<ComponentId>> pending_;  // out-of-order buffer
  std::map<ComponentId, Tracked> tracked_;
  TemporalStats stats_;
};

}  // namespace flock
