#include "pipeline/sharded_collector.h"

#include "telemetry/flow_record.h"

namespace flock {

ShardedCollector::ShardedCollector(const Topology& topo, EcmpRouter& router,
                                   std::int32_t num_shards, std::size_t shard_queue_capacity,
                                   CollectorOptions collector_options, SnapshotFn on_snapshot)
    : topo_(&topo), on_snapshot_(std::move(on_snapshot)) {
  if (num_shards < 1) num_shards = 1;
  shards_.reserve(static_cast<std::size_t>(num_shards));
  for (std::int32_t s = 0; s < num_shards; ++s) {
    shards_.push_back(
        std::make_unique<Shard>(shard_queue_capacity, topo, router, collector_options));
  }
  for (std::int32_t s = 0; s < num_shards; ++s) {
    Shard* shard = shards_[static_cast<std::size_t>(s)].get();
    shard->worker = std::thread([this, shard, s] { worker_loop(*shard, s); });
  }
}

ShardedCollector::~ShardedCollector() { stop(); }

std::int32_t ShardedCollector::shard_of(std::uint32_t source_addr) const {
  const auto n = static_cast<std::int32_t>(shards_.size());
  const NodeId node = addr_to_node(source_addr);
  if (node >= 0 && node < topo_->num_nodes() && topo_->is_host(node)) {
    return topo_->tor_of(node) % n;
  }
  return static_cast<std::int32_t>(source_addr % static_cast<std::uint32_t>(n));
}

void ShardedCollector::dispatch_batch(std::int32_t shard_id,
                                      std::vector<IngestDatagram> datagrams) {
  std::vector<Item> items;
  items.reserve(datagrams.size());
  for (IngestDatagram& d : datagrams) {
    Item item;
    item.kind = Item::Kind::kDatagram;
    item.datagram = std::move(d);
    items.push_back(std::move(item));
  }
  shards_[static_cast<std::size_t>(shard_id)]->queue.push_many(std::move(items));
}

void ShardedCollector::close_epoch(std::uint64_t epoch, Stopwatch since_close) {
  for (auto& shard : shards_) {
    Item item;
    item.kind = Item::Kind::kBarrier;
    item.epoch = epoch;
    item.since_close = since_close;
    shard->queue.push_wait(std::move(item));
  }
}

void ShardedCollector::stop() {
  if (stopped_) return;
  stopped_ = true;
  // close() lets each worker drain what is already queued (including any
  // trailing barrier) before its pop returns 0.
  for (auto& shard : shards_) shard->queue.close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void ShardedCollector::worker_loop(Shard& shard, std::int32_t shard_id) {
  std::vector<Item> batch;
  for (;;) {
    batch.clear();
    if (shard.queue.pop_batch(batch, 256) == 0) return;
    for (Item& item : batch) {
      if (item.kind == Item::Kind::kDatagram) {
        const std::size_t before = shard.collector.pending_records();
        if (shard.collector.ingest(item.datagram.bytes)) {
          records_decoded_.fetch_add(shard.collector.pending_records() - before,
                                     std::memory_order_relaxed);
        } else {
          malformed_.fetch_add(1, std::memory_order_relaxed);
        }
        shard.datagrams.fetch_add(1, std::memory_order_relaxed);
      } else {
        EpochSnapshot snap{item.epoch, shard_id, shard.collector.drain_into_input(), 0,
                           item.since_close};
        const std::uint64_t unresolved_total = shard.collector.unresolved_records();
        snap.unresolved = unresolved_total - shard.unresolved_mark;
        shard.unresolved_mark = unresolved_total;
        on_snapshot_(std::move(snap));
      }
    }
  }
}

}  // namespace flock
