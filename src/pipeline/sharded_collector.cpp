#include "pipeline/sharded_collector.h"

#include <algorithm>
#include <chrono>

#include "common/parallel_for.h"
#include "telemetry/flow_record.h"

namespace flock {

namespace {
// Idle rescan period when stealing is enabled: an empty shard wakes this
// often to look for a loaded victim instead of sleeping on its own deque.
// Consecutive fruitless scans back the period off exponentially to the max,
// so a fully idle service costs ~20 wakeups/s per worker instead of 2000;
// any task or successful steal snaps back to the fast poll. A push to the
// worker's own deque wakes it immediately regardless (condition variable).
constexpr std::chrono::microseconds kStealPollMin{500};
constexpr std::chrono::microseconds kStealPollMax{50000};

// Tree-merge engagement floor: below 4 parts the tree degenerates to the
// sequential fold, and small epochs lose more to the handoff than the
// pairwise merges win.
constexpr std::size_t kParallelMergeMinParts = 4;
constexpr std::uint64_t kParallelMergeMinRows = 4096;
}  // namespace

ShardExecutor::ShardExecutor(const Topology& topo, EcmpRouter& router,
                             ShardExecutorOptions options, CollectorOptions collector_options,
                             SnapshotFn on_snapshot)
    : topo_(&topo),
      router_(&router),
      ctx_(std::make_shared<const InferenceContext>(InferenceContext{&topo, &router})),
      collector_options_(collector_options),
      steal_batch_(options.steal_batch),
      merge_threads_(std::max<std::int32_t>(1, options.merge_threads)),
      on_snapshot_(std::move(on_snapshot)) {
  if (options.num_shards < 1) options.num_shards = 1;
  shards_.reserve(static_cast<std::size_t>(options.num_shards));
  for (std::int32_t s = 0; s < options.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(options.queue_capacity));
  }
  for (std::int32_t s = 0; s < options.num_shards; ++s) {
    shards_[static_cast<std::size_t>(s)]->worker = std::thread([this, s] { worker_loop(s); });
  }
}

ShardExecutor::~ShardExecutor() { stop(); }

std::int32_t ShardExecutor::shard_of(std::uint32_t source_addr) const {
  const auto n = static_cast<std::int32_t>(shards_.size());
  const NodeId node = addr_to_node(source_addr);
  if (node >= 0 && node < topo_->num_nodes() && topo_->is_host(node)) {
    return topo_->tor_of(node) % n;
  }
  return static_cast<std::int32_t>(source_addr % static_cast<std::uint32_t>(n));
}

void ShardExecutor::dispatch_batch(std::int32_t shard_id,
                                   std::vector<IngestDatagram> datagrams) {
  if (datagrams.empty()) return;
  Shard& shard = *shards_[static_cast<std::size_t>(shard_id)];
  Task task;
  task.kind = Task::Kind::kBatch;
  task.origin = shard_id;
  task.epoch_tag = dispatch_epoch_;
  task.batch_seq = shard.batches_this_epoch++;
  task.datagrams = std::move(datagrams);
  if (!shard.deque.push(std::move(task))) {
    // Deque closed under the dispatcher (stop() raced a late dispatch): the
    // batch is discarded, so it must not count toward the epoch's roll call
    // or a later barrier would wait for work that will never execute.
    --shard.batches_this_epoch;
  }
}

void ShardExecutor::close_epoch(std::uint64_t epoch, Stopwatch since_close) {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    Task task;
    task.kind = Task::Kind::kBarrier;
    task.origin = static_cast<std::int32_t>(s);
    task.epoch_tag = dispatch_epoch_;
    task.epoch_id = epoch;
    task.expected_batches = shard.batches_this_epoch;
    task.since_close = since_close;
    shard.batches_this_epoch = 0;
    shard.deque.push(std::move(task));
  }
  ++dispatch_epoch_;
}

void ShardExecutor::stop() {
  if (stopped_) return;
  stopped_ = true;
  // close() lets each worker drain what is already queued (including any
  // trailing barrier) before its pop reports kClosed; thieves keep helping
  // with other shards' backlogs until nothing stealable remains.
  for (auto& shard : shards_) shard->deque.close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void ShardExecutor::worker_loop(std::int32_t shard_id) {
  // Private scratch collector: decodes and joins any batch, then is drained,
  // so no state leaks between batches or origins. Joins resolve path sets in
  // the shared EcmpRouter, whose warm lookups are wait-free snapshot reads —
  // N shards joining concurrently never serialize on a router lock once the
  // ToR pairs they touch are interned (only a cold pair takes the intern
  // mutex, counted in PipelineStats::router_read_retries).
  Collector scratch(ctx_, *router_, collector_options_);
  Shard& shard = *shards_[static_cast<std::size_t>(shard_id)];
  // Batch tables draw their storage from the worker's own shard's arena.
  // Stolen batches join on the thief's scratch, so a table can be acquired
  // from the thief's arena and released to the origin's — the pools just
  // rebalance; accounting stays per-origin via the barrier.
  scratch.set_arena(&shard.arena);
  const bool stealing = steal_batch_ > 0;
  std::chrono::microseconds poll = kStealPollMin;
  for (;;) {
    Task task;
    auto r = shard.deque.pop_front(task, std::chrono::microseconds{0});
    if (r == StealDeque<Task>::Pop::kTask) {
      run_task(task, scratch, /*stolen=*/false);
      poll = kStealPollMin;
      continue;
    }
    if (stealing && try_steal(shard_id, scratch)) {
      poll = kStealPollMin;
      continue;
    }
    if (r == StealDeque<Task>::Pop::kClosed) return;
    // Own deque empty and nothing to steal: sleep on the deque — with the
    // backed-off rescan period when stealing, else until work or close.
    r = shard.deque.pop_front(
        task, stealing ? std::optional<std::chrono::microseconds>(poll) : std::nullopt);
    if (r == StealDeque<Task>::Pop::kTask) {
      run_task(task, scratch, /*stolen=*/false);
      poll = kStealPollMin;
    } else if (r == StealDeque<Task>::Pop::kClosed) {
      if (!stealing || !try_steal(shard_id, scratch)) return;
    } else {
      poll = std::min(poll * 2, kStealPollMax);
    }
  }
}

bool ShardExecutor::try_steal(std::int32_t thief, Collector& scratch) {
  // Victim selection: the most-loaded other shard by queued datagram weight.
  std::int32_t victim = -1;
  std::size_t best = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (static_cast<std::int32_t>(s) == thief) continue;
    const std::size_t w = shards_[s]->deque.weight_estimate();
    if (w > best) {
      best = w;
      victim = static_cast<std::int32_t>(s);
    }
  }
  if (victim < 0) return false;
  steal_attempts_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Task> loot;
  if (shards_[static_cast<std::size_t>(victim)]->deque.steal(loot, steal_batch_) == 0) {
    return false;
  }
  for (Task& task : loot) {
    batches_stolen_.fetch_add(1, std::memory_order_relaxed);
    datagrams_stolen_.fetch_add(task.datagrams.size(), std::memory_order_relaxed);
    run_task(task, scratch, /*stolen=*/true);
  }
  return true;
}

void ShardExecutor::run_task(Task& task, Collector& scratch, bool stolen) {
  if (task.kind == Task::Kind::kBarrier) {
    run_barrier(task);  // barriers are unstealable, so this is the owner
    return;
  }
  const std::uint64_t unresolved_before = scratch.unresolved_records();
  std::uint64_t malformed = 0;
  for (const IngestDatagram& d : task.datagrams) {
    if (!scratch.ingest(d.bytes)) ++malformed;
  }
  if (malformed > 0) malformed_.fetch_add(malformed, std::memory_order_relaxed);
  records_decoded_.fetch_add(scratch.pending_records(), std::memory_order_relaxed);
  InferenceInput joined = scratch.drain_into_input();
  const std::uint64_t unresolved = scratch.unresolved_records() - unresolved_before;

  Shard& origin = *shards_[static_cast<std::size_t>(task.origin)];
  origin.datagrams.fetch_add(task.datagrams.size(), std::memory_order_relaxed);
  {
    MutexLock lock(origin.acct_mutex);
    EpochAccount& acct = origin.accounts[task.epoch_tag];
    acct.parts.push_back(Contribution{task.batch_seq, std::move(joined), unresolved});
    ++acct.done;
    if (stolen) ++acct.stolen;
  }
  origin.acct_cv.notify_all();
}

void ShardExecutor::run_barrier(const Task& task) {
  Shard& shard = *shards_[static_cast<std::size_t>(task.origin)];
  std::vector<Contribution> parts;
  std::uint64_t stolen = 0;
  {
    MutexLock lock(shard.acct_mutex);
    EpochAccount& acct = shard.accounts[task.epoch_tag];
    // Own batches were popped FIFO before this barrier; stolen ones may
    // still be in flight on a thief. Wait for the epoch's full roll call.
    while (acct.done != task.expected_batches) shard.acct_cv.wait(lock);
    parts = std::move(acct.parts);
    stolen = acct.stolen;
    shard.accounts.erase(task.epoch_tag);
  }
  // Reassemble in dispatch order: merging the per-batch tables in the batch
  // sequence reproduces exactly the table a never-stolen sequential run
  // would have built (FlowTable group/row order is first-seen order), so
  // snapshots are deterministic under stealing. The merge moves whole
  // tables — group- and row-level bookkeeping only, never per-observation.
  std::sort(parts.begin(), parts.end(), [](const Contribution& a, const Contribution& b) {
    return a.batch_seq < b.batch_seq;
  });
  InferenceInput input(ctx_);
  std::uint64_t unresolved = 0;
  parallel::ParallelRunner* runner = parallel::thread_runner(merge_threads_);
  std::uint64_t total_rows = 0;
  for (const Contribution& p : parts) total_rows += p.input.num_rows();
  if (runner != nullptr && parts.size() >= kParallelMergeMinParts &&
      total_rows >= kParallelMergeMinRows) {
    // Fixed-shape pairwise tree: at each level, parts[i] absorbs
    // parts[i + stride]. Pairs touch disjoint parts, so a level's merges run
    // on the worker team; the tree's shape depends only on the part count,
    // and the result is content-identical to the sequential fold below
    // (first-seen order composes, saturating weight adds are associative).
    // Only the saturation *event count* can differ under saturation — the
    // clamped weights themselves cannot.
    const std::uint64_t chunks0 = runner->chunks_run();
    const std::uint64_t busy0 = runner->busy_ns();
    for (std::size_t stride = 1; stride < parts.size(); stride *= 2) {
      std::vector<std::size_t> dests;
      for (std::size_t i = 0; i + stride < parts.size(); i += 2 * stride) dests.push_back(i);
      runner->for_chunks(static_cast<std::int64_t>(dests.size()), 1,
                         [&](std::int64_t, std::int64_t begin, std::int64_t end) {
                           for (std::int64_t k = begin; k < end; ++k) {
                             const std::size_t i = dests[static_cast<std::size_t>(k)];
                             Contribution& dst = parts[i];
                             Contribution& src = parts[i + stride];
                             dst.input.merge_from(std::move(src.input));
                             dst.unresolved += src.unresolved;
                           }
                         });
    }
    input.merge_from(std::move(parts[0].input));
    unresolved = parts[0].unresolved;
    merge_parallel_chunks_.fetch_add(runner->chunks_run() - chunks0, std::memory_order_relaxed);
    merge_parallel_ns_.fetch_add(runner->busy_ns() - busy0, std::memory_order_relaxed);
  } else {
    for (Contribution& p : parts) {
      input.merge_from(std::move(p.input));
      unresolved += p.unresolved;
    }
  }
  // The merge consumed the batch tables (the first non-empty one wholesale —
  // that shell retains nothing and is dropped — the rest row-wise, leaving
  // their capacity intact): park them for this shard's next epoch.
  for (Contribution& p : parts) {
    shard.arena.release(p.input.release_table());
  }
  inference_observations_.fetch_add(input.num_flows(), std::memory_order_relaxed);
  inference_rows_.fetch_add(input.num_rows(), std::memory_order_relaxed);
  if (input.num_weight_saturations() > 0) {
    weight_saturations_.fetch_add(input.num_weight_saturations(), std::memory_order_relaxed);
  }
  on_snapshot_(EpochSnapshot{task.epoch_id, task.origin, std::move(input), unresolved,
                             task.since_close, stolen});
}

void ShardExecutor::recycle(EpochSnapshot&& snapshot) {
  const auto s = static_cast<std::size_t>(snapshot.shard);
  if (s >= shards_.size()) return;
  shards_[s]->arena.release(snapshot.input.release_table());
}

std::uint64_t ShardExecutor::arena_reuses() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->arena.reuses();
  return total;
}

std::uint64_t ShardExecutor::arena_bytes_recycled() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->arena.bytes_recycled();
  return total;
}

}  // namespace flock
