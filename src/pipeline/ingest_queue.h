// Ingest edge of the streaming localization pipeline (§5.1 deployed as a
// service): many producer threads (one per simulated agent NIC, in
// production one per UDP receive socket) push raw IPFIX datagrams into one
// bounded queue; a single dispatcher thread pops them in arrival order.
//
// Backpressure policy: the queue is bounded. Producers use try_push, which
// fails fast when the queue is full — the datagram is *dropped and counted*,
// exactly like a full UDP socket buffer, never silently lost from the
// accounting. Internal stages (dispatcher -> shard queues) use push_wait
// instead, so pressure inside the pipeline propagates back to the ingest
// edge, where dropping is a deliberate, observable decision.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/mutex.h"

namespace flock {

// One UDP-datagram-equivalent from an agent: a self-contained IPFIX message
// plus the exporter's address (which the pipeline shards on).
struct IngestDatagram {
  std::uint32_t source_addr = 0;  // synthetic IPv4 of the exporting host
  std::vector<std::uint8_t> bytes;
};

// Bounded multi-producer queue with drop accounting. Pops are taken by one
// consumer in the pipeline (MPSC), though nothing in the implementation
// requires it.
template <typename T>
class BoundedQueue {
 public:
  // Failed pushes are split by cause: `dropped` is deliberate backpressure
  // (the bounded queue was full — the UDP-socket-like loss the service is
  // designed around), `rejected_closed` is shutdown teardown (the queue was
  // already closed). Conflating them made clean shutdowns look like ingest
  // loss; every push attempt lands in exactly one of
  // pushed/dropped/rejected_closed.
  struct Stats {
    std::uint64_t pushed = 0;
    std::uint64_t dropped = 0;          // queue full: backpressure drop
    std::uint64_t rejected_closed = 0;  // queue closed: shutdown, not loss
    std::uint64_t popped = 0;
  };

  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  // Non-blocking push. Returns false when the queue is full (counted as a
  // drop) or closed (counted as a rejection).
  bool try_push(T item) EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (closed_) {
        ++stats_.rejected_closed;
        return false;
      }
      if (items_.size() >= capacity_) {
        ++stats_.dropped;
        return false;
      }
      items_.push_back(std::move(item));
      ++stats_.pushed;
    }
    consumer_cv_.notify_one();
    return true;
  }

  // Blocking push: waits for space instead of dropping. Returns false only
  // if the queue was closed while waiting; the item is discarded and counted
  // in rejected_closed, so pushed + dropped + rejected_closed always
  // accounts for every attempt.
  bool push_wait(T item) EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      while (!closed_ && items_.size() >= capacity_) producer_cv_.wait(lock);
      if (closed_) {
        ++stats_.rejected_closed;
        return false;
      }
      items_.push_back(std::move(item));
      ++stats_.pushed;
    }
    consumer_cv_.notify_one();
    return true;
  }

  // Blocking push of a whole batch in order: one lock acquisition and one
  // consumer wakeup per capacity window instead of per item. Returns false
  // if the queue was closed before everything was pushed; undelivered items
  // are counted in rejected_closed.
  bool push_many(std::vector<T> items) EXCLUDES(mutex_) {
    std::size_t i = 0;
    while (i < items.size()) {
      {
        MutexLock lock(mutex_);
        while (!closed_ && items_.size() >= capacity_) producer_cv_.wait(lock);
        if (closed_) {
          stats_.rejected_closed += items.size() - i;
          return false;
        }
        while (i < items.size() && items_.size() < capacity_) {
          items_.push_back(std::move(items[i++]));
          ++stats_.pushed;
        }
      }
      consumer_cv_.notify_one();
    }
    return true;
  }

  // Blocking pop of up to `max` items (at least one unless the queue is
  // closed and drained). Returns the number popped; 0 means end-of-stream.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max) EXCLUDES(mutex_) {
    std::size_t n = 0;
    {
      MutexLock lock(mutex_);
      while (!closed_ && items_.empty()) consumer_cv_.wait(lock);
      while (n < max && !items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
        ++n;
      }
      stats_.popped += n;
    }
    if (n > 0) producer_cv_.notify_all();
    return n;
  }

  // pop_batch with a wait bound, for consumers that must wake on wall-clock
  // deadlines even when no items arrive. Returns the number popped; 0 means
  // either end-of-stream (closed and drained — check is_closed()) or a
  // timeout with an empty queue.
  std::size_t pop_batch_for(std::vector<T>& out, std::size_t max,
                            std::chrono::microseconds timeout) EXCLUDES(mutex_) {
    // Wait bound only — how long a consumer may sleep, never what it pops,
    // so epoch content stays a pure function of the datagram sequence.
    const auto deadline =
        std::chrono::steady_clock::now() + timeout;  // flock-lint: allow(wall-clock)
    std::size_t n = 0;
    {
      MutexLock lock(mutex_);
      while (!closed_ && items_.empty()) {
        if (consumer_cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
      }
      while (n < max && !items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
        ++n;
      }
      stats_.popped += n;
    }
    if (n > 0) producer_cv_.notify_all();
    return n;
  }

  bool is_closed() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }

  // After close, pushes fail and pops drain the remaining items then return 0.
  void close() EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    consumer_cv_.notify_all();
    producer_cv_.notify_all();
  }

  std::size_t size() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return items_.size();
  }

  Stats stats() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return stats_;
  }

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  CondVar consumer_cv_;
  CondVar producer_cv_;
  std::deque<T> items_ GUARDED_BY(mutex_);
  Stats stats_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
};

// What actually travels through the ingest queue: a datagram, or an
// in-band epoch-boundary control token (manual close_epoch()). Carrying the
// control token through the same queue gives it a well-defined position in
// the arrival order — every datagram offered before the close lands in the
// closing epoch.
struct IngestItem {
  IngestDatagram datagram;
  bool epoch_boundary = false;
};

using IngestQueue = BoundedQueue<IngestItem>;

}  // namespace flock
