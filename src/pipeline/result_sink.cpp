#include "pipeline/result_sink.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace flock {

ResultSink::ResultSink(std::int32_t num_shards, EcmpRouter* router, EpochFn on_epoch)
    : num_shards_(num_shards), on_epoch_(std::move(on_epoch)) {
  if (router != nullptr) {
    const auto classes = ecmp_equivalence_classes(*router);
    for (std::size_t i = 0; i < classes.size(); ++i) {
      for (ComponentId c : classes[i]) class_of_[c] = static_cast<std::int32_t>(i);
    }
  }
}

ResultSink::ResultSink(std::int32_t num_shards,
                       const std::vector<std::vector<ComponentId>>& classes, EpochFn on_epoch)
    : num_shards_(num_shards), on_epoch_(std::move(on_epoch)) {
  for (std::size_t i = 0; i < classes.size(); ++i) {
    for (ComponentId c : classes[i]) class_of_[c] = static_cast<std::int32_t>(i);
  }
}

void ResultSink::add(const EpochSnapshot& snapshot, const LocalizationResult& result) {
  MutexLock lock(mutex_);
  auto [it, inserted] = pending_.try_emplace(snapshot.epoch);
  Pending& p = it->second;
  if (inserted) {
    p.remaining = num_shards_;
    p.partial.epoch = snapshot.epoch;
    p.partial.per_shard_predicted.resize(static_cast<std::size_t>(num_shards_));
  }
  p.since_close = snapshot.since_close;  // same start time from every shard
  // A non-finite shard score can only come from a broken scheme, and one NaN
  // addend would silently poison the epoch's score sum. Loud in every build
  // (NDEBUG strips the assert), and the poison is kept out of the sum so
  // release pipelines still report a meaningful aggregate.
  if (!std::isfinite(result.log_likelihood)) {
    std::fprintf(stderr,
                 "ResultSink: non-finite model score %f from shard %d of epoch %llu\n",
                 result.log_likelihood, snapshot.shard,
                 static_cast<unsigned long long>(snapshot.epoch));
    assert(false && "ResultSink::add: non-finite per-shard model score");
  } else {
    p.partial.shard_score_sum += result.log_likelihood;
  }
  p.partial.hypotheses_scanned += result.hypotheses_scanned;
  p.partial.flows += snapshot.input.num_flows();
  p.partial.rows += snapshot.input.num_rows();
  p.partial.unresolved += snapshot.unresolved;
  p.partial.stolen_batches += snapshot.stolen_batches;
  p.partial.max_shard_localize_seconds =
      std::max(p.partial.max_shard_localize_seconds, result.seconds);
  p.partial.predicted.insert(p.partial.predicted.end(), result.predicted.begin(),
                             result.predicted.end());
  p.partial.per_shard_predicted[static_cast<std::size_t>(snapshot.shard)] = result.predicted;

  if (--p.remaining > 0) return;

  // Last shard of the epoch: merge. Union + exact dedup first.
  EpochResult merged = std::move(p.partial);
  const Stopwatch since_close = p.since_close;
  pending_.erase(it);
  std::sort(merged.predicted.begin(), merged.predicted.end());
  merged.predicted.erase(std::unique(merged.predicted.begin(), merged.predicted.end()),
                         merged.predicted.end());
  if (!class_of_.empty()) {
    // Keep the smallest predicted member of each equivalence class (the ids
    // are sorted, so first occurrence wins); classless components pass
    // through.
    std::vector<ComponentId> deduped;
    std::unordered_map<std::int32_t, bool> seen_class;
    deduped.reserve(merged.predicted.size());
    for (ComponentId c : merged.predicted) {
      const auto cls = class_of_.find(c);
      if (cls == class_of_.end()) {
        deduped.push_back(c);
      } else if (!seen_class[cls->second]) {
        seen_class[cls->second] = true;
        deduped.push_back(c);
      } else {
        ++merged.equivalent_merged;
      }
    }
    merged.predicted = std::move(deduped);
  }
  merged.close_to_merge_seconds = since_close.seconds();
  EpochResult downstream;
  if (on_epoch_) downstream = merged;
  completed_.push_back(std::move(merged));
  lock.unlock();
  cv_.notify_all();
  if (on_epoch_) on_epoch_(downstream);
}

void ResultSink::wait_for_epochs(std::size_t count) {
  MutexLock lock(mutex_);
  while (completed_.size() < count) cv_.wait(lock);
}

bool ResultSink::wait_for_epochs_for(std::size_t count, std::chrono::milliseconds timeout) {
  // Wait bound only: a health-check timeout, never part of any result.
  const auto deadline =
      std::chrono::steady_clock::now() + timeout;  // flock-lint: allow(wall-clock)
  MutexLock lock(mutex_);
  while (completed_.size() < count) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return completed_.size() >= count;
    }
  }
  return true;
}

std::size_t ResultSink::completed_epochs() const {
  MutexLock lock(mutex_);
  return completed_.size();
}

std::vector<EpochResult> ResultSink::completed() const {
  std::vector<EpochResult> out;
  {
    MutexLock lock(mutex_);
    out = completed_;
  }
  std::sort(out.begin(), out.end(),
            [](const EpochResult& a, const EpochResult& b) { return a.epoch < b.epoch; });
  return out;
}

}  // namespace flock
