// Bounded per-shard work deque with stealing — the queueing primitive of the
// shard executor.
//
// Each shard owns one deque. The dispatcher pushes tasks to the back
// (weight-bounded: pushes block while the queued weight is at capacity, which
// is the backpressure path toward the ingest edge). The owning worker pops
// from the front in FIFO order, which is what keeps in-band barrier tasks
// ordered after every task of their epoch. Thieves steal the *oldest*
// stealable tasks — the work gating the victim's next barrier — skipping
// unstealable ones (barriers are pinned to their owner).
//
// Task is any movable type exposing:
//   std::size_t weight() const;   // capacity units (0 = never blocks a push)
//   bool stealable() const;       // false pins the task to the owner
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/mutex.h"

namespace flock {

template <typename Task>
class StealDeque {
 public:
  enum class Pop : std::uint8_t {
    kTask,    // a task was dequeued
    kEmpty,   // timed out with nothing queued (queue still open)
    kClosed,  // closed and fully drained
  };

  explicit StealDeque(std::size_t weight_capacity)
      : capacity_(weight_capacity ? weight_capacity : 1) {}

  // Blocking push (dispatcher side). Waits while the queued weight is at
  // capacity; zero-weight tasks (barriers) are admitted immediately so an
  // epoch cut can never deadlock against a full queue. Returns false if the
  // deque was closed (the task is discarded).
  bool push(Task task) EXCLUDES(mutex_) {
    const std::size_t w = task.weight();
    {
      MutexLock lock(mutex_);
      while (!closed_ && w != 0 && weight_ >= capacity_) producer_cv_.wait(lock);
      if (closed_) return false;
      tasks_.push_back(std::move(task));
      set_weight(weight_ + w);
    }
    consumer_cv_.notify_one();
    return true;
  }

  // Owner-side pop from the front. timeout == nullopt blocks until a task
  // arrives or the deque closes; timeout == 0 is a non-blocking poll.
  Pop pop_front(Task& out, std::optional<std::chrono::microseconds> timeout) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (!timeout.has_value()) {
      while (!closed_ && tasks_.empty()) consumer_cv_.wait(lock);
    } else if (timeout->count() > 0) {
      // Wait bound only: how long the owner may sleep before re-polling,
      // never which task it pops — task order is untouched by the clock.
      const auto deadline =
          std::chrono::steady_clock::now() + *timeout;  // flock-lint: allow(wall-clock)
      while (!closed_ && tasks_.empty()) {
        if (consumer_cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
      }
    }
    if (tasks_.empty()) return closed_ ? Pop::kClosed : Pop::kEmpty;
    out = std::move(tasks_.front());
    tasks_.pop_front();
    set_weight(weight_ - out.weight());
    lock.unlock();
    producer_cv_.notify_all();
    return Pop::kTask;
  }

  // Thief-side steal: remove the oldest stealable tasks until `max_weight`
  // is reached (always at least one if any task is stealable). Returns the
  // number of tasks appended to `out`.
  std::size_t steal(std::vector<Task>& out, std::size_t max_weight) EXCLUDES(mutex_) {
    std::size_t taken = 0;
    std::size_t taken_weight = 0;
    {
      MutexLock lock(mutex_);
      std::size_t i = 0;
      while (i < tasks_.size() && taken_weight < max_weight) {
        if (!tasks_[i].stealable()) {
          ++i;
          continue;
        }
        taken_weight += tasks_[i].weight();
        out.push_back(std::move(tasks_[i]));
        tasks_.erase(tasks_.begin() + static_cast<std::ptrdiff_t>(i));
        ++taken;
      }
      set_weight(weight_ - taken_weight);
    }
    if (taken > 0) producer_cv_.notify_all();
    return taken;
  }

  // After close, pushes fail and owner pops drain the backlog then return
  // kClosed. Steals keep working on the backlog.
  void close() EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    consumer_cv_.notify_all();
    producer_cv_.notify_all();
  }

  // Lock-free load estimate for victim selection (queued weight units).
  std::size_t weight_estimate() const { return weight_estimate_.load(std::memory_order_relaxed); }

 private:
  void set_weight(std::size_t w) REQUIRES(mutex_) {
    weight_ = w;
    weight_estimate_.store(w, std::memory_order_relaxed);
  }

  const std::size_t capacity_;
  mutable Mutex mutex_;
  CondVar consumer_cv_;
  CondVar producer_cv_;
  std::deque<Task> tasks_ GUARDED_BY(mutex_);
  std::size_t weight_ GUARDED_BY(mutex_) = 0;  // mirrored in weight_estimate_
  std::atomic<std::size_t> weight_estimate_{0};
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace flock
