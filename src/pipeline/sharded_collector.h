// Sharded decode+join stage of the streaming pipeline.
//
// The single-threaded Collector (telemetry/collector) decodes IPFIX and
// joins passive records against ECMP routes; here N shards each own one
// Collector plus a worker thread and do that work in parallel. Datagrams
// are partitioned by the exporter's rack (ToR of the source host), so all
// records from one rack land on one shard: partitioning is a pure function
// of the source address (deterministic across runs), and a shard's passive
// joins hit a small set of ToR-pair path sets (cache locality in the shared
// EcmpRouter, which is internally synchronized).
//
// Epoch boundaries arrive as in-band barrier items on every shard queue, so
// each shard snapshots exactly the records dispatched before the barrier —
// no pausing, no global stop-the-world.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "core/inference_input.h"
#include "pipeline/ingest_queue.h"
#include "telemetry/collector.h"
#include "topology/ecmp.h"
#include "topology/topology.h"

namespace flock {

// One shard's view of one closed epoch, ready for inference.
struct EpochSnapshot {
  std::uint64_t epoch = 0;
  std::int32_t shard = 0;
  InferenceInput input;
  std::uint64_t unresolved = 0;   // records this shard failed to join this epoch
  Stopwatch since_close;          // started when the scheduler closed the epoch
};

class ShardedCollector {
 public:
  // Called on a shard worker thread once per (epoch, shard).
  using SnapshotFn = std::function<void(EpochSnapshot)>;

  ShardedCollector(const Topology& topo, EcmpRouter& router, std::int32_t num_shards,
                   std::size_t shard_queue_capacity, CollectorOptions collector_options,
                   SnapshotFn on_snapshot);
  ~ShardedCollector();

  ShardedCollector(const ShardedCollector&) = delete;
  ShardedCollector& operator=(const ShardedCollector&) = delete;

  std::int32_t num_shards() const { return static_cast<std::int32_t>(shards_.size()); }

  // Deterministic partition function: ToR of the source host when the
  // address maps to a host, otherwise a modulus of the raw address.
  std::int32_t shard_of(std::uint32_t source_addr) const;

  // Route a pre-bucketed batch to one shard in order, with a single queue
  // lock and worker wakeup — the dispatcher buckets by shard_of() so that
  // consecutive datagrams for different shards do not each wake a sleeping
  // worker. Blocks while the shard queue is full (backpressure toward the
  // ingest edge); never drops while the pipeline is running.
  void dispatch_batch(std::int32_t shard, std::vector<IngestDatagram> datagrams);

  // Insert an epoch barrier into every shard queue. Each shard will snapshot
  // its collector state into an EpochSnapshot and invoke the callback.
  void close_epoch(std::uint64_t epoch, Stopwatch since_close);

  // Drain all queues, process remaining items, and join the workers.
  void stop();

  // Monotonic counters (safe to read concurrently).
  std::uint64_t records_decoded() const { return records_decoded_.load(std::memory_order_relaxed); }
  std::uint64_t malformed_messages() const { return malformed_.load(std::memory_order_relaxed); }
  std::uint64_t shard_datagrams(std::int32_t shard) const {
    return shards_[static_cast<std::size_t>(shard)]->datagrams.load(std::memory_order_relaxed);
  }

 private:
  struct Item {
    enum class Kind : std::uint8_t { kDatagram, kBarrier } kind = Kind::kDatagram;
    IngestDatagram datagram;
    std::uint64_t epoch = 0;
    Stopwatch since_close;
  };

  struct Shard {
    Shard(std::size_t capacity, const Topology& topo, EcmpRouter& router,
          CollectorOptions options)
        : queue(capacity), collector(topo, router, options) {}
    BoundedQueue<Item> queue;
    Collector collector;                     // owned exclusively by the worker
    std::thread worker;
    std::atomic<std::uint64_t> datagrams{0};
    std::uint64_t unresolved_mark = 0;       // worker-local epoch watermark
  };

  void worker_loop(Shard& shard, std::int32_t shard_id);

  const Topology* topo_;
  SnapshotFn on_snapshot_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> records_decoded_{0};
  std::atomic<std::uint64_t> malformed_{0};
  bool stopped_ = false;
};

}  // namespace flock
