// Shard executor: the decode+join stage of the streaming pipeline, run as N
// shards with per-shard bounded work deques and work stealing.
//
// The dispatcher partitions datagrams by the exporter's rack (ToR of the
// source host) — a pure function of the source address, so the partition is
// deterministic and a shard's passive joins hit a small set of ToR-pair path
// sets. Rack affinity balances load only while pods ≫ shards; under skewed
// racks it leaves shards idle, so workers steal: when a shard's deque runs
// dry, it takes decode+join batches from the most-loaded shard.
//
// Stealing is transparent to epoch accounting. Every dispatched batch is
// tagged (origin shard, epoch, batch sequence); whichever worker executes it
// decodes and joins into a private scratch Collector and files the joined
// flows under the *origin* shard's (epoch, batch seq) slot. Epoch barriers
// stay in-band in the origin's deque (never stealable): the owner waits until
// every batch of the closing epoch has been filed — its own and stolen ones —
// then concatenates the slots in batch-sequence order. The per-shard record
// sequence of an epoch is therefore byte-identical whether or not any batch
// was stolen, which preserves both the sync-path equivalence and the
// conservation invariant (joined + unresolved + dropped = accepted).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/mutex.h"
#include "common/stopwatch.h"
#include "core/inference_input.h"
#include "pipeline/ingest_queue.h"
#include "pipeline/steal_deque.h"
#include "telemetry/collector.h"
#include "topology/ecmp.h"
#include "topology/topology.h"

namespace flock {

// One shard's view of one closed epoch, ready for inference. The input's
// FlowTable was built incrementally by the executing workers (grouped,
// weight-deduplicated) and travels to the localizer pool by move — the
// barrier never re-copies observations.
struct EpochSnapshot {
  std::uint64_t epoch = 0;
  std::int32_t shard = 0;
  InferenceInput input;
  std::uint64_t unresolved = 0;      // records this shard failed to join this epoch
  Stopwatch since_close;             // started when the scheduler closed the epoch
  std::uint64_t stolen_batches = 0;  // of this shard's batches, executed by thieves
};

struct ShardExecutorOptions {
  std::int32_t num_shards = 4;
  std::size_t queue_capacity = 1024;  // datagrams per shard; beyond this, dispatch blocks
  // Max datagrams taken per steal (whole batches, at least one). 0 disables
  // stealing: every shard processes exactly its own rack-affine partition.
  std::size_t steal_batch = 128;
  // Worker-team size for the barrier's by-batch FlowTable reassembly
  // (common/parallel_for.h). At > 1, epochs with many large batch tables
  // merge as a fixed-shape pairwise tree whose pairs run on the team; the
  // merged table is content-identical to the sequential fold (first-seen
  // group/row order is preserved and saturating weight adds compose
  // associatively), so downstream inference is byte-identical either way.
  std::int32_t merge_threads = 1;
};

class ShardExecutor {
 public:
  // Called on a worker thread once per (epoch, shard).
  using SnapshotFn = std::function<void(EpochSnapshot)>;

  ShardExecutor(const Topology& topo, EcmpRouter& router, ShardExecutorOptions options,
                CollectorOptions collector_options, SnapshotFn on_snapshot);
  ~ShardExecutor();

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  std::int32_t num_shards() const { return static_cast<std::int32_t>(shards_.size()); }

  // Deterministic partition function: ToR of the source host when the
  // address maps to a host, otherwise a modulus of the raw address.
  std::int32_t shard_of(std::uint32_t source_addr) const;

  // Enqueue one pre-bucketed batch on its origin shard, tagged with the
  // current epoch and the next batch sequence number. Dispatcher thread
  // only. Blocks while the shard deque is full (backpressure toward the
  // ingest edge); never drops while the pipeline is running.
  void dispatch_batch(std::int32_t shard, std::vector<IngestDatagram> datagrams);

  // Insert an epoch barrier into every shard deque, carrying the number of
  // batches dispatched to that shard this epoch. Dispatcher thread only.
  void close_epoch(std::uint64_t epoch, Stopwatch since_close);

  // Drain all deques, process remaining work, and join the workers.
  void stop();

  // The shared binding of every InferenceInput this executor mints; the
  // pipeline checks at teardown that no snapshot reference escaped (see
  // core/inference_input.h for the lifetime contract).
  const std::shared_ptr<const InferenceContext>& context() const { return ctx_; }

  // Return a consumed snapshot's FlowTable storage to its origin shard's
  // epoch arena, where that shard's scratch collectors pick it back up next
  // epoch (see common/arena.h). The pipeline calls this once the sink has
  // absorbed the snapshot; safe from any thread.
  void recycle(EpochSnapshot&& snapshot);

  // Monotonic counters (safe to read concurrently).
  std::uint64_t records_decoded() const { return records_decoded_.load(std::memory_order_relaxed); }
  std::uint64_t malformed_messages() const { return malformed_.load(std::memory_order_relaxed); }
  std::uint64_t batches_stolen() const { return batches_stolen_.load(std::memory_order_relaxed); }
  std::uint64_t datagrams_stolen() const {
    return datagrams_stolen_.load(std::memory_order_relaxed);
  }
  std::uint64_t steal_attempts() const { return steal_attempts_.load(std::memory_order_relaxed); }
  // Dedup effectiveness of the columnar epoch tables: raw joined
  // observations vs the weighted rows actually handed to inference,
  // accumulated across every (epoch, shard) snapshot.
  std::uint64_t inference_observations() const {
    return inference_observations_.load(std::memory_order_relaxed);
  }
  std::uint64_t inference_rows() const {
    return inference_rows_.load(std::memory_order_relaxed);
  }
  // Dedup weights clamped at the uint32 ceiling across all epoch tables
  // (see core/flow_table.h).
  std::uint64_t weight_saturations() const {
    return weight_saturations_.load(std::memory_order_relaxed);
  }
  // Barrier tree-merge work (zero while merges run sequential): chunks —
  // pairwise table merges — executed on worker teams, and the total ns those
  // merges spent across threads.
  std::uint64_t merge_parallel_chunks() const {
    return merge_parallel_chunks_.load(std::memory_order_relaxed);
  }
  std::uint64_t merge_parallel_ns() const {
    return merge_parallel_ns_.load(std::memory_order_relaxed);
  }
  // Epoch-arena effectiveness, summed across shards (see common/arena.h):
  // tables whose storage a later epoch reused, and the bytes that reuse
  // saved the allocator.
  std::uint64_t arena_reuses() const;
  std::uint64_t arena_bytes_recycled() const;
  // Datagrams dispatched to (and accounted against) a shard, wherever they
  // were executed.
  std::uint64_t shard_datagrams(std::int32_t shard) const {
    return shards_[static_cast<std::size_t>(shard)]->datagrams.load(std::memory_order_relaxed);
  }

 private:
  struct Task {
    enum class Kind : std::uint8_t { kBatch, kBarrier } kind = Kind::kBatch;
    std::int32_t origin = 0;
    std::uint64_t epoch_tag = 0;  // dispatch-time epoch index of this work
    // kBatch:
    std::uint64_t batch_seq = 0;  // order within (origin, epoch_tag)
    std::vector<IngestDatagram> datagrams;
    // kBarrier:
    std::uint64_t epoch_id = 0;          // scheduler's epoch id for the snapshot
    std::uint64_t expected_batches = 0;  // batches dispatched to origin this epoch
    Stopwatch since_close;

    std::size_t weight() const { return kind == Kind::kBatch ? datagrams.size() : 0; }
    bool stealable() const { return kind == Kind::kBatch; }
  };

  // Joined output of one executed batch, filed under the origin shard.
  struct Contribution {
    std::uint64_t batch_seq = 0;
    InferenceInput input;
    std::uint64_t unresolved = 0;
  };

  struct EpochAccount {
    std::uint64_t done = 0;    // batches executed (own + stolen)
    std::uint64_t stolen = 0;  // of those, executed by thieves
    std::vector<Contribution> parts;
  };

  struct Shard {
    explicit Shard(std::size_t capacity) : deque(capacity) {}
    StealDeque<Task> deque;
    std::thread worker;
    std::atomic<std::uint64_t> datagrams{0};
    // Per-epoch contributions, keyed by epoch tag. Key order never leaks
    // into results: each epoch's account is looked up (and erased) by tag,
    // never iterated. flock-lint: allow(unordered-iteration)
    Mutex acct_mutex;
    CondVar acct_cv;
    std::unordered_map<std::uint64_t, EpochAccount> accounts GUARDED_BY(acct_mutex);
    std::uint64_t batches_this_epoch = 0;  // dispatcher-thread only
    // Recycled FlowTable storage: filled by the barrier (merged-out batch
    // tables) and by recycle() (sink-consumed epoch tables), drained by this
    // shard's scratch collectors.
    EpochArena<FlowTable> arena;
  };

  void worker_loop(std::int32_t shard_id);
  void run_task(Task& task, Collector& scratch, bool stolen);
  void run_barrier(const Task& task);
  bool try_steal(std::int32_t thief, Collector& scratch);

  const Topology* topo_;
  EcmpRouter* router_;
  std::shared_ptr<const InferenceContext> ctx_;
  CollectorOptions collector_options_;
  std::size_t steal_batch_;
  std::int32_t merge_threads_ = 1;
  SnapshotFn on_snapshot_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t dispatch_epoch_ = 0;  // dispatcher-thread only
  std::atomic<std::uint64_t> records_decoded_{0};
  std::atomic<std::uint64_t> malformed_{0};
  std::atomic<std::uint64_t> batches_stolen_{0};
  std::atomic<std::uint64_t> datagrams_stolen_{0};
  std::atomic<std::uint64_t> steal_attempts_{0};
  std::atomic<std::uint64_t> inference_observations_{0};
  std::atomic<std::uint64_t> inference_rows_{0};
  std::atomic<std::uint64_t> weight_saturations_{0};
  std::atomic<std::uint64_t> merge_parallel_chunks_{0};
  std::atomic<std::uint64_t> merge_parallel_ns_{0};
  bool stopped_ = false;
};

}  // namespace flock
