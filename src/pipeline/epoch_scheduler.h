// Epoch scheduling / dispatch stage of the streaming pipeline.
//
// One dispatcher thread pops datagrams from the ingest queue in arrival
// order, routes each to its collector shard, and decides where epochs end.
// Three boundary policies compose (any subset may be active):
//
//   * virtual time — the IPFIX export-time header is the clock. The first
//     datagram opens a window; the first datagram at or past
//     window_start + virtual_seconds closes the epoch and opens the next
//     window at its own timestamp. Time gaps therefore never emit empty
//     epochs, and the schedule is a deterministic function of the datagram
//     sequence (independent of collector wall-clock speed).
//   * record count — the epoch closes with the datagram that brings the
//     record total since the previous boundary to record_limit or more.
//     Record counts are peeked from set headers at dispatch time
//     (telemetry/ipfix peek_record_count), so the cut is an exact,
//     deterministic function of the datagram sequence, independent of how
//     far ahead of the decoders the dispatcher runs.
//   * wall-clock deadline — a steady-clock timer arms when the first
//     datagram of an epoch is dispatched; once `deadline` elapses, the epoch
//     closes even if no further datagrams arrive, so quiet periods still
//     flush diagnoses. Unlike the two policies above this one is
//     deliberately *not* a function of the datagram sequence (that is its
//     point); an idle pipeline with no open epoch never emits empty epochs.
//
// Manual boundaries (StreamingPipeline::close_epoch) travel in-band through
// the ingest queue and are handled here too, so every policy shares one
// serialization point and epoch ids are totally ordered.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>

#include "pipeline/ingest_queue.h"
#include "pipeline/sharded_collector.h"

namespace flock {

struct EpochPolicy {
  std::uint64_t record_limit = 0;          // 0 = disabled
  std::uint32_t virtual_seconds = 0;       // 0 = disabled
  std::chrono::milliseconds deadline{0};   // 0 = disabled (wall clock)
  // Time source for the deadline policy; nullptr = std::chrono::steady_clock.
  // Injectable so deadline behavior is testable with a fake clock.
  std::function<std::chrono::steady_clock::time_point()> clock;
};

class EpochScheduler {
 public:
  // Starts the dispatcher thread immediately.
  EpochScheduler(IngestQueue& queue, ShardExecutor& shards, EpochPolicy policy);
  ~EpochScheduler();

  EpochScheduler(const EpochScheduler&) = delete;
  EpochScheduler& operator=(const EpochScheduler&) = delete;

  // Close the ingest queue, drain it, flush a final partial epoch if any
  // datagrams arrived since the last boundary, and join the dispatcher.
  void stop();

  std::uint64_t epochs_closed() const { return epochs_closed_.load(std::memory_order_relaxed); }
  std::uint64_t deadline_epochs() const {
    return deadline_epochs_.load(std::memory_order_relaxed);
  }
  std::uint64_t datagrams_dispatched() const {
    return dispatched_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  void flush_buckets();
  void close_now();
  std::chrono::steady_clock::time_point now() const;

  IngestQueue* queue_;
  ShardExecutor* shards_;
  EpochPolicy policy_;
  std::atomic<std::uint64_t> epochs_closed_{0};
  std::atomic<std::uint64_t> deadline_epochs_{0};
  std::atomic<std::uint64_t> dispatched_{0};
  // Dispatcher-thread state.
  std::uint64_t next_epoch_ = 0;
  std::uint64_t records_since_close_ = 0;
  std::uint64_t items_since_close_ = 0;
  bool have_window_start_ = false;
  std::uint32_t window_start_ = 0;
  bool deadline_armed_ = false;
  std::chrono::steady_clock::time_point deadline_at_{};
  // Per-shard dispatch buckets: datagrams accumulate here during one ingest
  // batch and are handed to each shard with one lock/wakeup. Flushed before
  // every epoch barrier, so epoch contents are unaffected.
  std::vector<std::vector<IngestDatagram>> buckets_;
  std::thread thread_;
  bool stopped_ = false;
};

}  // namespace flock
