// Epoch scheduling / dispatch stage of the streaming pipeline.
//
// One dispatcher thread pops datagrams from the ingest queue in arrival
// order, routes each to its collector shard, and decides where epochs end.
// Two boundary policies compose (either, both, or neither may be active):
//
//   * virtual time — the IPFIX export-time header is the clock. The first
//     datagram opens a window; the first datagram at or past
//     window_start + virtual_seconds closes the epoch and opens the next
//     window at its own timestamp. Time gaps therefore never emit empty
//     epochs, and the schedule is a deterministic function of the datagram
//     sequence (independent of collector wall-clock speed).
//   * record count — the epoch closes with the datagram that brings the
//     record total since the previous boundary to record_limit or more.
//     Record counts are peeked from set headers at dispatch time
//     (telemetry/ipfix peek_record_count), so the cut is an exact,
//     deterministic function of the datagram sequence, independent of how
//     far ahead of the decoders the dispatcher runs.
//
// Manual boundaries (StreamingPipeline::close_epoch) travel in-band through
// the ingest queue and are handled here too, so every policy shares one
// serialization point and epoch ids are totally ordered.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "pipeline/ingest_queue.h"
#include "pipeline/sharded_collector.h"

namespace flock {

struct EpochPolicy {
  std::uint64_t record_limit = 0;    // 0 = disabled
  std::uint32_t virtual_seconds = 0; // 0 = disabled
};

class EpochScheduler {
 public:
  // Starts the dispatcher thread immediately.
  EpochScheduler(IngestQueue& queue, ShardedCollector& shards, EpochPolicy policy);
  ~EpochScheduler();

  EpochScheduler(const EpochScheduler&) = delete;
  EpochScheduler& operator=(const EpochScheduler&) = delete;

  // Close the ingest queue, drain it, flush a final partial epoch if any
  // datagrams arrived since the last boundary, and join the dispatcher.
  void stop();

  std::uint64_t epochs_closed() const { return epochs_closed_.load(std::memory_order_relaxed); }
  std::uint64_t datagrams_dispatched() const {
    return dispatched_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  void flush_buckets();
  void close_now();

  IngestQueue* queue_;
  ShardedCollector* shards_;
  EpochPolicy policy_;
  std::atomic<std::uint64_t> epochs_closed_{0};
  std::atomic<std::uint64_t> dispatched_{0};
  // Dispatcher-thread state.
  std::uint64_t next_epoch_ = 0;
  std::uint64_t records_since_close_ = 0;
  std::uint64_t items_since_close_ = 0;
  bool have_window_start_ = false;
  std::uint32_t window_start_ = 0;
  // Per-shard dispatch buckets: datagrams accumulate here during one ingest
  // batch and are handed to each shard with one lock/wakeup. Flushed before
  // every epoch barrier, so epoch contents are unaffected.
  std::vector<std::vector<IngestDatagram>> buckets_;
  std::thread thread_;
  bool stopped_ = false;
};

}  // namespace flock
