// StreamingPipeline: the paper's deployment loop (§5) as a continuously
// running, multi-threaded service.
//
//   agents ──> IngestQueue ──> EpochScheduler ──> ShardExecutor (N shards)
//   (many      (bounded,       (1 dispatcher:     (decode IPFIX + join ECMP;
//   producer    drops are       routes by rack,    idle shards steal batches)
//   threads)    counted)        closes epochs)          │ epoch barrier
//                                                       ▼
//              merged diagnosis <── ResultSink <── LocalizerPool (K threads,
//              per epoch           (union +        per-shard FlockLocalizer)
//                                   equivalence-
//                                   class dedup)
//
// Thread model: producers call offer() concurrently; one dispatcher thread
// orders datagrams and epoch boundaries; N shard workers decode and join;
// K localizer threads run inference in oldest-epoch-first order; consumers
// read merged EpochResults from the sink. The shared EcmpRouter gives the
// join hot path wait-free snapshot reads — shards only serialize on the
// router when interning a previously unseen ToR pair.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>

#include "core/flock_localizer.h"
#include "pipeline/epoch_scheduler.h"
#include "pipeline/ingest_queue.h"
#include "pipeline/localizer_pool.h"
#include "pipeline/result_sink.h"
#include "pipeline/sharded_collector.h"
#include "pipeline/temporal_tracker.h"
#include "telemetry/collector.h"
#include "topology/ecmp.h"
#include "topology/topology.h"

namespace flock {

struct PipelineConfig {
  std::int32_t num_shards = 4;
  std::size_t ingest_capacity = 4096;       // datagrams; beyond this, offer() drops
  std::size_t shard_queue_capacity = 1024;  // per shard; beyond this, dispatch blocks
  // Work stealing: max datagrams an idle shard takes from the most-loaded
  // shard per steal (whole dispatch batches, at least one). 0 disables
  // stealing — each shard then processes exactly its rack-affine partition.
  std::size_t steal_batch = 128;
  std::size_t localizer_threads = 2;
  // Intra-epoch parallelism (common/parallel_for.h): the worker-team size
  // each localizer thread uses inside one inference run, and each shard
  // worker uses for the barrier's table reassembly. 0 defers to
  // FLOCK_LOCALIZE_THREADS (default 1 = serial — byte-identical to a
  // pipeline without this knob). The pool and the teams share one machine
  // budget: the effective value is clamped to
  // hardware_concurrency / localizer_threads, so pool x inner never
  // oversubscribes. Thread count is a pure performance lever — results are
  // byte-identical at any setting.
  std::int32_t localize_threads = 0;
  EpochPolicy epoch;                        // automatic boundaries (manual always works)
  CollectorOptions collector;
  FlockOptions localizer;
  // Collapse ECMP-indistinguishable components in the merged diagnosis.
  // Costs all ToR-pair path sets at construction; leave off for topologies
  // where that is prohibitive.
  bool merge_equivalence_classes = false;
  // Cross-epoch diagnosis downstream of the ResultSink: per-component state
  // machines with hysteresis + flap detection over a sliding window of
  // merged epochs (see pipeline/temporal_tracker.h). Always maintained (it
  // is off the hot path); temporal.prior_weight > 0 additionally feeds the
  // tracker's evidence carryover back into the localizer as a prior — the
  // default of 0 keeps per-epoch output byte-identical to a tracker-less
  // pipeline.
  TemporalTrackerConfig temporal;
};

struct PipelineStats {
  // Ingest-edge accounting, derived from the queue's own counters so one
  // snapshot is internally consistent (offered = accepted + dropped +
  // rejected_closed holds in every read, even taken mid-burst while many
  // receiver threads offer concurrently with close()).
  std::uint64_t offered = 0;          // datagrams whose offer() completed
  std::uint64_t accepted = 0;         // entered the ingest queue
  std::uint64_t dropped = 0;          // backpressure: the bounded queue was full
  std::uint64_t rejected_closed = 0;  // shutdown teardown: offered after stop()
  std::uint64_t dispatched = 0;       // routed to shards
  std::uint64_t records_decoded = 0;
  std::uint64_t malformed_messages = 0;
  std::uint64_t epochs_closed = 0;
  std::uint64_t deadline_epochs = 0;    // of those, closed by the wall-clock deadline
  std::uint64_t batches_stolen = 0;     // decode+join batches executed by thieves
  std::uint64_t datagrams_stolen = 0;   // datagrams inside those batches
  std::uint64_t steal_attempts = 0;     // victim scans that found a candidate
  // Shared-router read path (see topology/ecmp.h): snapshots published by
  // interning writers, and lookups that missed the wait-free index.
  std::uint64_t router_index_publishes = 0;
  std::uint64_t router_read_retries = 0;
  // Localizer tasks dispatched ahead of an already-queued newer epoch
  // (age-priority queue; see pipeline/localizer_pool.h).
  std::uint64_t priority_reorders = 0;
  // Columnar-table dedup effectiveness (see core/flow_table.h): raw joined
  // observations vs the weighted rows handed to inference, across all
  // (epoch, shard) snapshots. rows/observations is the dedup ratio.
  std::uint64_t inference_observations = 0;
  std::uint64_t inference_rows = 0;
  // Dedup weights clamped at the uint32 ceiling instead of wrapping.
  std::uint64_t weight_saturations = 0;
  // Epoch-arena recycling (see common/arena.h): epoch FlowTables whose
  // storage a later epoch's build reused, and the bytes of allocation that
  // reuse saved across the run.
  std::uint64_t arena_reuses = 0;
  std::uint64_t arena_bytes_recycled = 0;
  // Likelihood-engine dense S(x) memo: lookups served without a column scan,
  // across every inference run (see core/likelihood_engine.h), and applies
  // that reused the memo's one-time allocation (stamp invalidation) instead
  // of paying two O(w) clears.
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_table_reuses = 0;
  // Intra-epoch parallelism (common/parallel_for.h), across every inference
  // run: chunks executed, chunks taken by helper threads rather than the
  // submitting localizer thread ("steals"), and ns inside chunk bodies
  // summed over threads. All zero at localize_threads = 1.
  std::uint64_t parallel_chunks = 0;
  std::uint64_t parallel_steals = 0;
  std::uint64_t localize_parallel_ns = 0;
  // Same, for the epoch barrier's tree reassembly of per-batch FlowTables
  // (see pipeline/sharded_collector.h).
  std::uint64_t merge_parallel_chunks = 0;
  std::uint64_t merge_parallel_ns = 0;
  // Temporal layer (see pipeline/temporal_tracker.h): component state
  // machine transitions across all merged epochs so far, plus epochs the
  // tracker had to skip because its bounded out-of-order buffer overflowed
  // (0 in a healthy pipeline — the sink merges every epoch).
  std::uint64_t tracker_confirmations = 0;
  std::uint64_t tracker_flaps = 0;
  std::uint64_t tracker_clears = 0;
  std::uint64_t tracker_false_clears = 0;
  std::uint64_t tracker_dropped_epochs = 0;
  // Network front-end (see net/ingest_server.h): zero unless a
  // UdpIngestServer feeds this pipeline and its stats were folded in via
  // UdpIngestServer::fold_into. Wire-level conservation:
  // net_datagrams_received = net_malformed_* + net_admission_drops + offered.
  std::uint64_t net_datagrams_received = 0;
  std::uint64_t net_malformed_short_header = 0;
  std::uint64_t net_malformed_bad_version = 0;
  std::uint64_t net_malformed_length_mismatch = 0;
  std::uint64_t net_admission_drops = 0;
  std::uint64_t net_agents = 0;  // per-source accounting table size
};

class StreamingPipeline {
 public:
  // Lifetime: `topo` and `router` must outlive the pipeline *and* every
  // EpochSnapshot/InferenceInput obtained from it. The binding is explicit —
  // all snapshots share the ShardExecutor's InferenceContext — and the
  // destructor asserts (debug builds) that no context reference escaped the
  // pipeline's stages, i.e. nobody is still holding an epoch's input when
  // the routing state may die with the caller's scope.
  StreamingPipeline(const Topology& topo, EcmpRouter& router, PipelineConfig config);
  ~StreamingPipeline();

  StreamingPipeline(const StreamingPipeline&) = delete;
  StreamingPipeline& operator=(const StreamingPipeline&) = delete;

  // Producer API (thread-safe). offer() is the lossy UDP-like edge: false
  // means the datagram was dropped (and counted). offer_wait() blocks until
  // accepted — for lossless feeding in tests and benchmarks; it returns
  // false (also a counted drop) only if the pipeline stopped while waiting.
  bool offer(IngestDatagram datagram);
  bool offer_wait(IngestDatagram datagram);

  // Manually close the current epoch after everything offered so far.
  void close_epoch();

  // Flush a final partial epoch, finish all inference, join every thread.
  // Idempotent; the destructor calls it.
  void stop();

  ResultSink& results() { return *sink_; }
  const ShardExecutor& shards() const { return *shards_; }
  // Ingest-queue backlog, for the UDP front-end's admission-control policy
  // (net/ingest_server.h): the server sheds load when depth crosses its
  // watermark instead of letting every datagram ride to the queue's edge.
  std::size_t ingest_depth() const { return queue_.size(); }
  std::size_t ingest_capacity() const { return config_.ingest_capacity; }
  // Cross-epoch component verdicts (flap/confirm/clear state machines fed by
  // every merged epoch). Thread-safe to query while the pipeline runs.
  const TemporalTracker& tracker() const { return *tracker_; }

  // Tracker snapshot persistence (see pipeline/temporal_tracker.h): a saved
  // snapshot plus a captured datagram log replays a full incident including
  // its cross-epoch memory. save_tracker is safe any time (it snapshots
  // under the tracker's lock); load_tracker must run before any datagram is
  // offered — it throws std::runtime_error on a corrupt or
  // config-incompatible snapshot and std::logic_error once epochs have been
  // observed. Subsequent epochs continue the snapshot's absolute timeline.
  void save_tracker(std::ostream& os) const;
  void load_tracker(std::istream& is);

  PipelineStats stats() const;

 private:
  PipelineConfig config_;
  EcmpRouter* router_;
  FlockLocalizer localizer_;
  std::unique_ptr<TemporalTracker> tracker_;  // outlives sink_ and pool_
  std::unique_ptr<ResultSink> sink_;
  std::unique_ptr<LocalizerPool> pool_;
  std::unique_ptr<ShardExecutor> shards_;
  IngestQueue queue_;
  std::unique_ptr<EpochScheduler> scheduler_;
  // close_epoch() boundary tokens travel through the same queue as datagrams
  // but are not datagrams; stats() subtracts them out of the queue counters.
  // Each counter is incremented only AFTER its queue operation completed, and
  // stats() reads them BEFORE the queue's own counters, so the subtractions
  // can never underflow no matter how reads interleave with concurrent
  // offers and boundaries.
  std::atomic<std::uint64_t> boundary_pushes_{0};
  std::atomic<std::uint64_t> boundary_rejections_{0};
  std::atomic<std::uint64_t> memo_hits_{0};
  std::atomic<std::uint64_t> memo_table_reuses_{0};
  std::atomic<std::uint64_t> parallel_chunks_{0};
  std::atomic<std::uint64_t> parallel_steals_{0};
  std::atomic<std::uint64_t> parallel_ns_{0};
  bool stopped_ = false;
};

}  // namespace flock
