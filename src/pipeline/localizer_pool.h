// Inference worker pool: per-shard FlockLocalizer runs for closed epochs.
//
// Shard workers hand their epoch snapshots here; K pool threads run the
// (read-only, therefore shareable) FlockLocalizer over each snapshot and
// forward (snapshot, result) to the result sink. Inference is the expensive
// stage, so it gets its own pool: a slow localization of epoch E never
// blocks the shards from decoding epoch E+1.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "core/flock_localizer.h"
#include "pipeline/ingest_queue.h"
#include "pipeline/sharded_collector.h"

namespace flock {

class LocalizerPool {
 public:
  using ResultFn = std::function<void(EpochSnapshot, LocalizationResult)>;

  LocalizerPool(const FlockLocalizer& localizer, std::size_t num_threads, ResultFn on_result);
  ~LocalizerPool();

  LocalizerPool(const LocalizerPool&) = delete;
  LocalizerPool& operator=(const LocalizerPool&) = delete;

  // Enqueue one per-shard inference task; never drops.
  void submit(EpochSnapshot snapshot);

  // Finish all queued tasks and join. Call only after producers are done.
  void shutdown();

 private:
  void worker_loop();

  const FlockLocalizer* localizer_;
  ResultFn on_result_;
  BoundedQueue<EpochSnapshot> tasks_;
  std::vector<std::thread> workers_;
  bool stopped_ = false;
};

}  // namespace flock
