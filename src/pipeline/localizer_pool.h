// Inference worker pool: per-shard FlockLocalizer runs for closed epochs.
//
// Shard workers hand their epoch snapshots here; K pool threads run the
// (read-only, therefore shareable) FlockLocalizer over each snapshot and
// forward (snapshot, result) to the result sink. Inference is the expensive
// stage, so it gets its own pool: a slow localization of epoch E never
// blocks the shards from decoding epoch E+1.
//
// Dispatch order is *age-priority*, not FIFO: the queue orders tasks by
// (epoch id, submission sequence), so the oldest epoch's remaining shards
// always run next and a slow epoch can never be starved of workers by the
// newer epochs piling up behind it — the ResultSink merges complete in
// (near-)epoch order instead of stalling on epoch E while E+1..E+k finish.
// Within an epoch, submission order is preserved (FIFO). Tasks that jump
// ahead of an already-queued newer epoch are counted in priority_reorders().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "core/flock_localizer.h"
#include "pipeline/sharded_collector.h"

namespace flock {

class LocalizerPool {
 public:
  using ResultFn = std::function<void(EpochSnapshot, LocalizationResult)>;
  // Injectable inference stage; tests substitute slow/blocking localizers to
  // pin down the dispatch order.
  using LocalizeFn = std::function<LocalizationResult(const InferenceInput&)>;

  LocalizerPool(const FlockLocalizer& localizer, std::size_t num_threads, ResultFn on_result);
  LocalizerPool(LocalizeFn localize, std::size_t num_threads, ResultFn on_result);
  ~LocalizerPool();

  LocalizerPool(const LocalizerPool&) = delete;
  LocalizerPool& operator=(const LocalizerPool&) = delete;

  // Enqueue one per-shard inference task; never drops. Blocks only if the
  // (effectively unbounded) backlog bound is ever reached.
  void submit(EpochSnapshot snapshot) EXCLUDES(mutex_);

  // Finish all queued tasks and join. Call only after producers are done.
  // Idempotent and safe to race from multiple threads; the destructor calls
  // it too.
  void shutdown() EXCLUDES(mutex_);

  // Tasks dispatched ahead of an already-queued newer epoch.
  std::uint64_t priority_reorders() const {
    return priority_reorders_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop() EXCLUDES(mutex_);

  LocalizeFn localize_;
  ResultFn on_result_;

  // Age-ordered task queue: keyed by (epoch id, submission seq) so begin()
  // is always the oldest epoch's earliest-submitted task.
  mutable Mutex mutex_;
  CondVar consumer_cv_;
  CondVar producer_cv_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, EpochSnapshot> tasks_ GUARDED_BY(mutex_);
  std::uint64_t next_seq_ GUARDED_BY(mutex_) = 0;
  bool closed_ GUARDED_BY(mutex_) = false;

  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> priority_reorders_{0};
  std::atomic<bool> stopped_{false};
};

}  // namespace flock
