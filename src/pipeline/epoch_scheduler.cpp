#include "pipeline/epoch_scheduler.h"

#include <algorithm>

#include "telemetry/ipfix.h"

namespace flock {

namespace {
// Idle wake period while a deadline is armed. The dispatcher never sleeps
// past this, so a deadline is honored within one poll interval even when the
// injected clock (tests) jumps arbitrarily while the real queue stays quiet.
constexpr std::chrono::microseconds kDeadlinePoll{5000};
}  // namespace

EpochScheduler::EpochScheduler(IngestQueue& queue, ShardExecutor& shards, EpochPolicy policy)
    : queue_(&queue), shards_(&shards), policy_(std::move(policy)) {
  buckets_.resize(static_cast<std::size_t>(shards.num_shards()));
  thread_ = std::thread([this] { run(); });
}

EpochScheduler::~EpochScheduler() { stop(); }

void EpochScheduler::stop() {
  if (stopped_) return;
  stopped_ = true;
  queue_->close();
  if (thread_.joinable()) thread_.join();
}

std::chrono::steady_clock::time_point EpochScheduler::now() const {
  // The injectable-clock seam itself: tests and replay install policy_.clock;
  // the live default is the one sanctioned wall-clock read for epoch cuts.
  // flock-lint: allow(wall-clock)
  return policy_.clock ? policy_.clock() : std::chrono::steady_clock::now();
}

void EpochScheduler::flush_buckets() {
  for (std::size_t s = 0; s < buckets_.size(); ++s) {
    if (buckets_[s].empty()) continue;
    dispatched_.fetch_add(buckets_[s].size(), std::memory_order_relaxed);
    shards_->dispatch_batch(static_cast<std::int32_t>(s), std::move(buckets_[s]));
    buckets_[s].clear();
  }
}

void EpochScheduler::close_now() {
  flush_buckets();  // everything dispatched so far belongs to the closing epoch
  shards_->close_epoch(next_epoch_++, Stopwatch{});
  records_since_close_ = 0;
  items_since_close_ = 0;
  have_window_start_ = false;  // every boundary restarts the virtual-time window
  deadline_armed_ = false;     // and disarms the wall-clock timer
  epochs_closed_.fetch_add(1, std::memory_order_relaxed);
}

void EpochScheduler::run() {
  const bool deadline_mode = policy_.deadline.count() > 0;
  std::vector<IngestItem> batch;
  for (;;) {
    batch.clear();
    std::size_t n;
    if (deadline_mode && deadline_armed_) {
      n = queue_->pop_batch_for(batch, 256, kDeadlinePoll);
      if (n == 0 && !queue_->is_closed()) {  // timed out, queue still open
        if (now() >= deadline_at_) {         // quiet period: flush the open epoch
          deadline_epochs_.fetch_add(1, std::memory_order_relaxed);
          close_now();
        }
        continue;
      }
      if (n == 0) {
        // Closed — but items may have raced in between the timed-out pop
        // and the close. pop_batch's 0 atomically means closed AND drained,
        // so one blocking drain pop cannot lose accepted datagrams.
        n = queue_->pop_batch(batch, 256);
        if (n == 0) break;
      }
    } else {
      n = queue_->pop_batch(batch, 256);
      if (n == 0) break;  // closed and drained
    }
    for (IngestItem& item : batch) {
      if (item.epoch_boundary) {
        close_now();  // manual boundaries always close, even an empty epoch
        continue;
      }
      if (policy_.virtual_seconds > 0) {
        if (const auto t = peek_export_time(item.datagram.bytes)) {
          // Serial-number comparison (RFC 1982 style): the signed cast of
          // the unsigned difference survives the uint32 export-time wrap
          // and treats slightly-older (out-of-order) timestamps as "not
          // yet", rather than closing the epoch on them.
          if (have_window_start_ &&
              static_cast<std::int32_t>(*t - window_start_) >=
                  static_cast<std::int32_t>(policy_.virtual_seconds)) {
            close_now();
          }
          if (!have_window_start_) {
            have_window_start_ = true;
            window_start_ = *t;
          }
        }
      }
      std::uint32_t records = 0;
      if (policy_.record_limit > 0) {
        records = peek_record_count(item.datagram.bytes).value_or(0);
      }
      const auto shard = static_cast<std::size_t>(shards_->shard_of(item.datagram.source_addr));
      buckets_[shard].push_back(std::move(item.datagram));
      ++items_since_close_;
      if (deadline_mode && !deadline_armed_) {
        // First datagram of the epoch arms the timer; an idle pipeline with
        // no open epoch never emits deadline epochs.
        deadline_armed_ = true;
        deadline_at_ = now() + policy_.deadline;
      }
      if (policy_.record_limit > 0) {
        records_since_close_ += records;
        if (records_since_close_ >= policy_.record_limit) close_now();
      }
    }
    flush_buckets();  // bounded buffering: at most one ingest batch
    if (deadline_mode && deadline_armed_ && now() >= deadline_at_) {
      deadline_epochs_.fetch_add(1, std::memory_order_relaxed);
      close_now();
    }
  }
  flush_buckets();
  if (items_since_close_ > 0) close_now();  // flush the final partial epoch
}

}  // namespace flock
