#include "net/udp_socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace flock {
namespace {

sockaddr_in make_sockaddr(const UdpEndpoint& ep) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(ep.addr);
  sa.sin_port = htons(ep.port);
  return sa;
}

UdpEndpoint from_sockaddr(const sockaddr_in& sa) {
  return UdpEndpoint{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

void set_error(std::string* error, const char* what) {
  if (error != nullptr) *error = std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

std::string to_string(const UdpEndpoint& ep) {
  return std::to_string((ep.addr >> 24) & 0xFF) + "." + std::to_string((ep.addr >> 16) & 0xFF) +
         "." + std::to_string((ep.addr >> 8) & 0xFF) + "." + std::to_string(ep.addr & 0xFF) +
         ":" + std::to_string(ep.port);
}

UdpSocket::~UdpSocket() { close(); }

UdpSocket::UdpSocket(UdpSocket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

bool UdpSocket::open(std::uint32_t addr, std::uint16_t port, std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    set_error(error, "socket");
    return false;
  }
  sockaddr_in sa = make_sockaddr(UdpEndpoint{addr, port});
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0) {
    set_error(error, "bind");
    close();
    return false;
  }
  return true;
}

bool UdpSocket::open_unbound(std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    set_error(error, "socket");
    return false;
  }
  return true;
}

void UdpSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

UdpEndpoint UdpSocket::local_endpoint() const {
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  if (fd_ < 0 || ::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    return UdpEndpoint{};
  }
  return from_sockaddr(sa);
}

bool UdpSocket::set_recv_timeout(std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  return fd_ >= 0 && ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) == 0;
}

bool UdpSocket::set_recv_buffer_bytes(int bytes) {
  return fd_ >= 0 && ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof bytes) == 0;
}

bool UdpSocket::send_to(const UdpEndpoint& to, const std::uint8_t* data, std::size_t len) {
  if (fd_ < 0) return false;
  const sockaddr_in sa = make_sockaddr(to);
  for (;;) {
    const ssize_t n = ::sendto(fd_, data, len, 0, reinterpret_cast<const sockaddr*>(&sa),
                               sizeof sa);
    if (n == static_cast<ssize_t>(len)) return true;
    if (n < 0 && (errno == EINTR || errno == ENOBUFS)) continue;  // transient; retry
    return false;
  }
}

#ifdef __linux__

int UdpSocket::recv_batch(RecvSlot* slots, int max_slots) {
  if (fd_ < 0 || max_slots <= 0) return -1;
  constexpr int kMaxBatch = 64;
  const int n = max_slots < kMaxBatch ? max_slots : kMaxBatch;
  mmsghdr msgs[kMaxBatch];
  iovec iovs[kMaxBatch];
  sockaddr_in froms[kMaxBatch];
  std::memset(msgs, 0, sizeof(mmsghdr) * static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    iovs[i].iov_base = slots[i].data;
    iovs[i].iov_len = slots[i].capacity;
    msgs[i].msg_hdr.msg_iov = &iovs[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
    msgs[i].msg_hdr.msg_name = &froms[i];
    msgs[i].msg_hdr.msg_namelen = sizeof froms[i];
  }
  // MSG_WAITFORONE: block (bounded by SO_RCVTIMEO) until one datagram, then
  // take whatever else is already queued — batching without added latency.
  const int received = ::recvmmsg(fd_, msgs, static_cast<unsigned>(n), MSG_WAITFORONE, nullptr);
  if (received < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return 0;
    return -1;
  }
  for (int i = 0; i < received; ++i) {
    slots[i].len = msgs[i].msg_len;
    slots[i].from = from_sockaddr(froms[i]);
  }
  return received;
}

#else  // portable single-datagram fallback

int UdpSocket::recv_batch(RecvSlot* slots, int max_slots) {
  if (fd_ < 0 || max_slots <= 0) return -1;
  sockaddr_in from{};
  socklen_t from_len = sizeof from;
  const ssize_t n = ::recvfrom(fd_, slots[0].data, slots[0].capacity, 0,
                               reinterpret_cast<sockaddr*>(&from), &from_len);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return 0;
    return -1;
  }
  slots[0].len = static_cast<std::size_t>(n);
  slots[0].from = from_sockaddr(from);
  return 1;
}

#endif

}  // namespace flock
