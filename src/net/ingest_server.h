// UDP/IPFIX socket front-end of the streaming pipeline: the §5 collector
// actually taking datagrams off a wire instead of an in-process call.
//
//   fleet agents ──UDP──> UdpIngestServer (N receiver threads)
//                          │ recvmmsg-style batched receive into per-thread
//                          │ reusable buffer arenas
//                          │ · IPFIX header validation; malformed datagrams
//                          │   quarantined, counted per reason
//                          │ · per-source-agent accounting (datagrams /
//                          │   records / bytes / drops), wait-free snapshot
//                          │ · admission control when the downstream queue
//                          │   backs up: drop-newest or drop-by-agent-share
//                          ▼ offer (optionally through a CaptureTap)
//                         IngestQueue ──> ... existing pipeline, unchanged
//
// Everything the server refuses is counted exactly once, so ingest
// conservation extends to the wire:
//   datagrams_received = quarantined (by reason) + admission_drops + offered
// and `offered` then splits downstream into the pipeline's
// accepted/dropped/rejected_closed. What the kernel dropped before we read
// the socket is invisible here by nature — senders must count their side
// (the soak bench does).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/snapshot_store.h"
#include "net/dgram_log.h"
#include "net/udp_socket.h"
#include "pipeline/pipeline.h"

namespace flock {

// What to shed when the downstream IngestQueue sits above the admission
// watermark. kDropNewest sheds uniformly (every arriving datagram); the
// agent-share policy sheds only sources sending more than their fair share
// of accepted traffic, so a misbehaving top-talker cannot starve the quiet
// majority out of the queue.
enum class AdmissionPolicy : std::uint8_t {
  kDropNewest = 0,
  kDropByAgentShare = 1,
};

const char* to_string(AdmissionPolicy policy);

struct UdpIngestServerConfig {
  std::uint32_t listen_addr = kLoopbackAddr;
  std::uint16_t port = 0;  // 0 = ephemeral; read back via endpoint()
  int receiver_threads = 1;
  int batch_size = 32;  // datagrams per recvmmsg call (and per arena)
  // Arena slot size; datagrams longer than this are truncated by the kernel
  // and then quarantined by the header length check. Comfortably above the
  // encoder's 1400-byte max message.
  std::size_t max_datagram_bytes = 2048;
  int recv_buffer_bytes = 1 << 21;  // SO_RCVBUF; kernel-side burst absorption
  // Admission control: once the downstream queue depth reaches the
  // watermark, `admission` decides who is shed. 0 disables the policy (the
  // bounded queue itself still drops at capacity, counted by the pipeline).
  std::size_t admission_high_watermark = 0;
  AdmissionPolicy admission = AdmissionPolicy::kDropNewest;
  // Receiver threads re-check the stop flag at this cadence when idle.
  std::chrono::milliseconds poll_interval{50};
};

// Aggregate server counters (all monotone; readable while running).
struct NetIngestStats {
  std::uint64_t datagrams_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t records_seen = 0;  // peeked from valid headers' set framing
  std::uint64_t malformed_short_header = 0;
  std::uint64_t malformed_bad_version = 0;
  std::uint64_t malformed_length_mismatch = 0;
  std::uint64_t admission_drops = 0;
  std::uint64_t offered = 0;  // handed to the downstream offer edge
  std::uint64_t offer_rejected = 0;  // downstream said no (queue full/closed)
  std::uint64_t agents = 0;   // distinct source endpoints seen

  std::uint64_t quarantined() const {
    return malformed_short_header + malformed_bad_version + malformed_length_mismatch;
  }
};

// One source endpoint's accounting snapshot.
struct AgentAccount {
  UdpEndpoint endpoint;
  std::uint64_t datagrams = 0;
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t admission_drops = 0;
  std::uint64_t accepted = 0;     // offered downstream and taken
  std::uint64_t queue_drops = 0;  // offered downstream and refused
};

class UdpIngestServer {
 public:
  // Reads the downstream queue depth for admission control. Unset (empty)
  // disables admission entirely.
  using DepthFn = std::function<std::size_t()>;

  // `offer` receives every admitted datagram (splice a CaptureTap here to
  // record the stream). `depth` is consulted per datagram only while the
  // watermark policy is enabled.
  UdpIngestServer(UdpIngestServerConfig config, DgramOfferFn offer, DepthFn depth = {});
  ~UdpIngestServer();

  UdpIngestServer(const UdpIngestServer&) = delete;
  UdpIngestServer& operator=(const UdpIngestServer&) = delete;

  // Bind the socket and start the receiver threads. False (with `error` set
  // when non-null) if the socket cannot be opened — e.g. no loopback in the
  // environment; callers degrade gracefully.
  bool start(std::string* error = nullptr);

  // Stop receiving and join the receiver threads. Idempotent. Datagrams
  // already taken off the socket are fully processed before return.
  void stop();

  bool running() const { return running_; }
  UdpEndpoint endpoint() const { return endpoint_; }

  NetIngestStats stats() const;

  // Wait-free snapshot of the per-agent table (SnapshotStore-published
  // entries; counters are relaxed atomics, so a snapshot taken mid-burst is
  // per-counter consistent, not cross-counter atomic).
  std::vector<AgentAccount> agent_accounts() const;

  // Fold the net-layer counters into a pipeline stats snapshot (the
  // PipelineStats net_* fields stay zero for pipelines fed in-process).
  void fold_into(PipelineStats& stats) const;

 private:
  // Per-source-endpoint accounting entry. Stable address once published
  // (SnapshotStore), counters bumped by any receiver thread.
  struct AgentEntry {
    std::uint64_t key = 0;
    UdpEndpoint endpoint;
    std::atomic<std::uint64_t> datagrams{0};
    std::atomic<std::uint64_t> records{0};
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<std::uint64_t> quarantined{0};
    std::atomic<std::uint64_t> admission_drops{0};
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> queue_drops{0};
  };

  AgentEntry& intern_agent(const UdpEndpoint& from);
  void receive_loop();
  void handle_datagram(const std::uint8_t* data, std::size_t len, const UdpEndpoint& from);

  UdpIngestServerConfig config_;
  DgramOfferFn offer_;
  DepthFn depth_;
  UdpSocket socket_;
  UdpEndpoint endpoint_;
  std::vector<std::thread> receivers_;
  std::atomic<bool> stop_{false};
  bool running_ = false;

  // Agent table: wait-free reads through the published index/store, new
  // agents interned under a small mutex (cold path — once per source).
  // agent_store_/agent_index_ are deliberately un-annotated: the warm path
  // reads them with NO lock (acquire-loads on the published index/store),
  // which GUARDED_BY cannot express. intern_mutex_ serializes only the cold
  // append+publish sequence below.
  SnapshotStore<std::unique_ptr<AgentEntry>> agent_store_;
  PairIndex agent_index_;
  Mutex intern_mutex_;

  // Aggregate counters (relaxed; every datagram lands in exactly one of
  // quarantined / admission_drops / offered).
  std::atomic<std::uint64_t> datagrams_received_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> records_seen_{0};
  std::atomic<std::uint64_t> malformed_short_header_{0};
  std::atomic<std::uint64_t> malformed_bad_version_{0};
  std::atomic<std::uint64_t> malformed_length_mismatch_{0};
  std::atomic<std::uint64_t> admission_drops_{0};
  std::atomic<std::uint64_t> offered_{0};
  std::atomic<std::uint64_t> offer_rejected_{0};
  std::atomic<std::uint64_t> total_accepted_{0};  // agent-share denominator
};

}  // namespace flock
