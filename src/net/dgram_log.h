// Bit-exact capture and replay of the pipeline's ingest stream.
//
// A datagram log records exactly what the pipeline consumed — each datagram's
// payload bytes, its pipeline-facing source id, and the receive timestamp —
// in arrival order. Because every downstream decision (sharding, epoch
// boundaries, decoding, inference) is a deterministic function of that
// sequence, replaying a log reproduces the live run's per-epoch results
// byte-for-byte: any production incident or bench workload becomes a
// repeatable artifact (the same discipline as eval/trace_io, one layer
// earlier in the pipeline).
//
// Format (little-endian, versioned):
//   magic "FLKD", u32 version (2)
//   router fingerprint: u32 path_set_count, u64 signature hash — the routing
//     state the capture ran against (all-zero = unrecorded; version-1 logs
//     have no fingerprint fields and read back as unrecorded)
//   per datagram: u64 timestamp_ns (monotonic, relative to capture start),
//     u32 source_addr, u16 source_port, u32 payload length, payload bytes
//   (no trailer: a clean EOF at a record boundary ends the log; EOF anywhere
//    else is a truncation error)
//
// The fingerprint exists because records carry *interned path-set ids*: a
// replay against differently-constructed router state (other topology, other
// warm-up order) would silently join records onto the wrong routes. Capture
// sides stamp the fingerprint once the router is warm
// (CaptureTap::set_router_fingerprint seeks back into the header); replay
// sides pass their own router_fingerprint() in ReplayOptions and
// replay_dgram_log fails loudly on a mismatch instead of replaying garbage.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "pipeline/ingest_queue.h"

namespace flock {

class EcmpRouter;

// Identity of the routing state a capture ran against: how many path sets
// were interned and an order-sensitive hash of every set's switch pair and
// component sequences. Replay correctness depends on construction-order
// warm-up, so the hash is deliberately sensitive to interning order.
struct RouterFingerprint {
  std::uint32_t path_sets = 0;
  std::uint64_t hash = 0;

  bool operator==(const RouterFingerprint&) const = default;
  // All-zero = "not recorded"; such fingerprints are never checked.
  bool empty() const { return path_sets == 0 && hash == 0; }
};

RouterFingerprint router_fingerprint(const EcmpRouter& router);

// The offer edge the net layer feeds: StreamingPipeline::offer / offer_wait
// bound into a std::function. Returns false when the datagram was not
// accepted (counted by the callee; see pipeline stats).
using DgramOfferFn = std::function<bool(IngestDatagram)>;

struct LoggedDatagram {
  std::uint64_t timestamp_ns = 0;  // receive time, relative to capture start
  std::uint32_t source_addr = 0;   // pipeline-facing exporter id (shard key)
  std::uint16_t source_port = 0;   // wire endpoint detail; 0 when not via UDP
  std::vector<std::uint8_t> payload;

  bool operator==(const LoggedDatagram&) const = default;
};

class DgramLogWriter {
 public:
  // Writes the file header immediately (fingerprint fields included, zeroed
  // when not supplied). The stream must outlive the writer.
  explicit DgramLogWriter(std::ostream& os, const RouterFingerprint& fingerprint = {});

  void append(const LoggedDatagram& datagram);

  // Patch the header's fingerprint in place (the router is typically warmed
  // *during* the captured run, after the header was written). Requires a
  // seekable stream; throws std::runtime_error otherwise.
  void set_fingerprint(const RouterFingerprint& fingerprint);

  std::uint64_t written() const { return written_; }

 private:
  std::ostream* os_;
  std::uint64_t written_ = 0;
};

class DgramLogReader {
 public:
  // Validates magic and version up front; throws std::runtime_error on a
  // foreign or unsupported file. Accepts version 1 (no fingerprint) and 2.
  // The stream must outlive the reader.
  explicit DgramLogReader(std::istream& is);

  // Reads the next datagram. False at a clean end-of-log; throws
  // std::runtime_error when the file ends mid-record (truncation).
  bool next(LoggedDatagram& out);

  std::uint32_t version() const { return version_; }
  // Empty when the log predates fingerprints (v1) or none was recorded.
  const RouterFingerprint& fingerprint() const { return fingerprint_; }

 private:
  std::istream* is_;
  std::uint32_t version_ = 0;
  RouterFingerprint fingerprint_;
};

// Capture tap, spliced between a datagram source (the UDP server, or any
// in-process producer) and the pipeline's offer edge. offer() appends to the
// log and forwards downstream under one lock, so the log order IS the
// pipeline's arrival order even with many concurrent receiver threads —
// the property that makes replay bit-exact.
class CaptureTap {
 public:
  // The tap stamps each datagram with time-since-construction.
  CaptureTap(std::ostream& os, DgramOfferFn downstream);

  // Thread-safe. Returns the downstream verdict (false = dropped there;
  // the datagram is still captured, mirroring what the pipeline saw offered).
  bool offer(IngestDatagram datagram, std::uint16_t source_port = 0) EXCLUDES(mutex_);

  // Adapter for call sites that take a DgramOfferFn.
  DgramOfferFn as_offer_fn();

  // Stamp the routing state this capture ran against into the log header
  // (call once the router is warm — typically right before teardown).
  // Requires the underlying stream to be seekable.
  void set_router_fingerprint(const RouterFingerprint& fingerprint) EXCLUDES(mutex_);

  std::uint64_t captured() const EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  DgramLogWriter writer_ GUARDED_BY(mutex_);
  DgramOfferFn downstream_;  // immutable after construction
  std::chrono::steady_clock::time_point start_;
};

struct ReplayOptions {
  // false: re-offer as fast as the downstream accepts. true: pace offers to
  // the captured inter-arrival gaps (scaled by `speed`), reproducing the
  // live run's temporal shape for wall-clock-sensitive consumers.
  bool paced = false;
  // 2.0 = twice as fast as recorded; paced mode only. Must be finite and
  // > 0 when paced — replay throws std::invalid_argument otherwise.
  double speed = 1.0;
  // When non-empty AND the log recorded a fingerprint, replay refuses
  // (std::runtime_error) to run against mismatched router state instead of
  // silently joining records onto the wrong routes. Unrecorded (v1 or
  // never-stamped) logs are replayed unchecked, so old captures stay usable.
  RouterFingerprint expect_fingerprint;
};

struct ReplayStats {
  std::uint64_t datagrams = 0;
  std::uint64_t accepted = 0;  // downstream offer() returned true
  std::uint64_t rejected = 0;
};

// Re-offer every datagram of a log, in captured order, on the calling
// thread. Throws std::runtime_error on a malformed log.
ReplayStats replay_dgram_log(std::istream& is, const DgramOfferFn& offer,
                             const ReplayOptions& options = {});

// File-path convenience wrappers (trace_io discipline: throw on I/O errors).
ReplayStats replay_dgram_log(const std::string& path, const DgramOfferFn& offer,
                             const ReplayOptions& options = {});

}  // namespace flock
