// Bit-exact capture and replay of the pipeline's ingest stream.
//
// A datagram log records exactly what the pipeline consumed — each datagram's
// payload bytes, its pipeline-facing source id, and the receive timestamp —
// in arrival order. Because every downstream decision (sharding, epoch
// boundaries, decoding, inference) is a deterministic function of that
// sequence, replaying a log reproduces the live run's per-epoch results
// byte-for-byte: any production incident or bench workload becomes a
// repeatable artifact (the same discipline as eval/trace_io, one layer
// earlier in the pipeline).
//
// Format (little-endian, versioned):
//   magic "FLKD", u32 version
//   per datagram: u64 timestamp_ns (monotonic, relative to capture start),
//     u32 source_addr, u16 source_port, u32 payload length, payload bytes
//   (no trailer: a clean EOF at a record boundary ends the log; EOF anywhere
//    else is a truncation error)
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "pipeline/ingest_queue.h"

namespace flock {

// The offer edge the net layer feeds: StreamingPipeline::offer / offer_wait
// bound into a std::function. Returns false when the datagram was not
// accepted (counted by the callee; see pipeline stats).
using DgramOfferFn = std::function<bool(IngestDatagram)>;

struct LoggedDatagram {
  std::uint64_t timestamp_ns = 0;  // receive time, relative to capture start
  std::uint32_t source_addr = 0;   // pipeline-facing exporter id (shard key)
  std::uint16_t source_port = 0;   // wire endpoint detail; 0 when not via UDP
  std::vector<std::uint8_t> payload;

  bool operator==(const LoggedDatagram&) const = default;
};

class DgramLogWriter {
 public:
  // Writes the file header immediately. The stream must outlive the writer.
  explicit DgramLogWriter(std::ostream& os);

  void append(const LoggedDatagram& datagram);
  std::uint64_t written() const { return written_; }

 private:
  std::ostream* os_;
  std::uint64_t written_ = 0;
};

class DgramLogReader {
 public:
  // Validates magic and version up front; throws std::runtime_error on a
  // foreign or unsupported file. The stream must outlive the reader.
  explicit DgramLogReader(std::istream& is);

  // Reads the next datagram. False at a clean end-of-log; throws
  // std::runtime_error when the file ends mid-record (truncation).
  bool next(LoggedDatagram& out);

 private:
  std::istream* is_;
};

// Capture tap, spliced between a datagram source (the UDP server, or any
// in-process producer) and the pipeline's offer edge. offer() appends to the
// log and forwards downstream under one lock, so the log order IS the
// pipeline's arrival order even with many concurrent receiver threads —
// the property that makes replay bit-exact.
class CaptureTap {
 public:
  // The tap stamps each datagram with time-since-construction.
  CaptureTap(std::ostream& os, DgramOfferFn downstream);

  // Thread-safe. Returns the downstream verdict (false = dropped there;
  // the datagram is still captured, mirroring what the pipeline saw offered).
  bool offer(IngestDatagram datagram, std::uint16_t source_port = 0);

  // Adapter for call sites that take a DgramOfferFn.
  DgramOfferFn as_offer_fn();

  std::uint64_t captured() const;

 private:
  mutable std::mutex mutex_;
  DgramLogWriter writer_;
  DgramOfferFn downstream_;
  std::chrono::steady_clock::time_point start_;
};

struct ReplayOptions {
  // false: re-offer as fast as the downstream accepts. true: pace offers to
  // the captured inter-arrival gaps (scaled by `speed`), reproducing the
  // live run's temporal shape for wall-clock-sensitive consumers.
  bool paced = false;
  double speed = 1.0;  // 2.0 = twice as fast as recorded; paced mode only
};

struct ReplayStats {
  std::uint64_t datagrams = 0;
  std::uint64_t accepted = 0;  // downstream offer() returned true
  std::uint64_t rejected = 0;
};

// Re-offer every datagram of a log, in captured order, on the calling
// thread. Throws std::runtime_error on a malformed log.
ReplayStats replay_dgram_log(std::istream& is, const DgramOfferFn& offer,
                             const ReplayOptions& options = {});

// File-path convenience wrappers (trace_io discipline: throw on I/O errors).
ReplayStats replay_dgram_log(const std::string& path, const DgramOfferFn& offer,
                             const ReplayOptions& options = {});

}  // namespace flock
