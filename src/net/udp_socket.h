// Thin RAII wrapper over a POSIX UDP socket, shaped for the collector's
// receive path: bind to an address, then drain datagrams in batches with one
// syscall (`recvmmsg` on Linux; a single-`recvfrom` fallback elsewhere keeps
// the code portable without pretending to batch).
//
// The wrapper is deliberately policy-free — timeouts, buffer sizing and the
// receive arena belong to the caller (net/ingest_server owns per-thread
// arenas and re-uses them across batches; nothing here allocates per
// datagram).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace flock {

// Host-byte-order IPv4 endpoint (e.g. {0x7F000001, 4739} = 127.0.0.1:4739).
struct UdpEndpoint {
  std::uint32_t addr = 0;
  std::uint16_t port = 0;

  bool operator==(const UdpEndpoint&) const = default;
  // One word for hash/index keys; ports are 16 bits so this is injective.
  std::uint64_t key() const {
    return (static_cast<std::uint64_t>(addr) << 16) | port;
  }
};

std::string to_string(const UdpEndpoint& ep);

inline constexpr std::uint32_t kLoopbackAddr = 0x7F000001;  // 127.0.0.1

class UdpSocket {
 public:
  UdpSocket() = default;
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  // Create the socket and bind it. Port 0 binds an ephemeral port — read the
  // actual one back with local_endpoint(). Returns false (with `error` set
  // when non-null) on any failure, e.g. hosts without a usable loopback —
  // callers degrade gracefully instead of crashing.
  bool open(std::uint32_t addr, std::uint16_t port, std::string* error = nullptr);

  // Unbound send-only socket (sender side of benches/tests).
  bool open_unbound(std::string* error = nullptr);

  void close();
  bool valid() const { return fd_ >= 0; }
  UdpEndpoint local_endpoint() const;

  // Receive-side knobs (receiver threads poll their stop flag on timeout).
  bool set_recv_timeout(std::chrono::milliseconds timeout);
  bool set_recv_buffer_bytes(int bytes);

  bool send_to(const UdpEndpoint& to, const std::uint8_t* data, std::size_t len);

  // One slot of the caller-owned receive arena. `data`/`capacity` are set by
  // the caller and never touched; `len` and `from` are filled per datagram.
  // A datagram longer than `capacity` is truncated by the kernel (the server
  // sizes slots above the IPFIX encoder's max message and quarantines the
  // remainder via the header length check).
  struct RecvSlot {
    std::uint8_t* data = nullptr;
    std::size_t capacity = 0;
    std::size_t len = 0;
    UdpEndpoint from;
  };

  // Blocking batched receive: waits (up to the receive timeout) for at least
  // one datagram, then drains up to `max_slots` without further blocking.
  // Returns the number received; 0 on timeout; -1 on a closed/failed socket.
  int recv_batch(RecvSlot* slots, int max_slots);

 private:
  int fd_ = -1;
};

}  // namespace flock
