#include "net/dgram_log.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "topology/ecmp.h"

namespace flock {
namespace {

constexpr char kMagic[4] = {'F', 'L', 'K', 'D'};
// v1: no fingerprint fields. v2: u32 path_set_count + u64 hash follow the
// version word. Old logs stay readable; new logs carry the routing identity.
constexpr std::uint32_t kVersion = 2;
// Byte offset of the fingerprint fields inside a v2 header (magic + version).
constexpr std::streamoff kFingerprintOffset = 8;
// Sanity bound on a single record: real datagrams are <= 64 KiB (UDP), so a
// larger length field means the log is corrupt — reject instead of
// allocating whatever a flipped bit asks for.
constexpr std::uint32_t kMaxPayloadBytes = 1 << 16;

void put_u16(std::ostream& os, std::uint16_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint16_t get_u16(std::istream& is) {
  std::uint16_t v;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("dgram_log: truncated input");
  return v;
}
std::uint32_t get_u32(std::istream& is) {
  std::uint32_t v;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("dgram_log: truncated input");
  return v;
}

std::uint64_t get_u64(std::istream& is) {
  std::uint64_t v;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("dgram_log: truncated input");
  return v;
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

RouterFingerprint router_fingerprint(const EcmpRouter& router) {
  RouterFingerprint fp;
  fp.path_sets = static_cast<std::uint32_t>(router.num_path_sets());
  // Order-sensitive by design: records carry interned path-set ids, so a
  // replay-side router warmed in a different order is a different router
  // even when the set of pairs is identical.
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (PathSetId ps = 0; ps < router.num_path_sets(); ++ps) {
    const PathSet& set = router.path_set(ps);
    h = fnv1a(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(set.src_sw)));
    h = fnv1a(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(set.dst_sw)));
    h = fnv1a(h, set.paths.size());
    for (const PathId pid : set.paths) {
      const Path& path = router.path(pid);
      h = fnv1a(h, path.comps.size());
      for (const ComponentId c : path.comps) {
        h = fnv1a(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(c)));
      }
    }
  }
  fp.hash = fp.path_sets == 0 ? 0 : h;
  if (fp.path_sets != 0 && fp.hash == 0) fp.hash = 1;  // keep non-trivial state non-empty
  return fp;
}

DgramLogWriter::DgramLogWriter(std::ostream& os, const RouterFingerprint& fingerprint)
    : os_(&os) {
  os_->write(kMagic, sizeof kMagic);
  put_u32(*os_, kVersion);
  put_u32(*os_, fingerprint.path_sets);
  put_u64(*os_, fingerprint.hash);
}

void DgramLogWriter::set_fingerprint(const RouterFingerprint& fingerprint) {
  const std::streamoff end = os_->tellp();
  if (end < 0) throw std::runtime_error("dgram_log: stream is not seekable");
  os_->seekp(kFingerprintOffset);
  put_u32(*os_, fingerprint.path_sets);
  put_u64(*os_, fingerprint.hash);
  os_->seekp(end);
  if (!*os_) throw std::runtime_error("dgram_log: fingerprint patch failed");
}

void DgramLogWriter::append(const LoggedDatagram& datagram) {
  put_u64(*os_, datagram.timestamp_ns);
  put_u32(*os_, datagram.source_addr);
  put_u16(*os_, datagram.source_port);
  put_u32(*os_, static_cast<std::uint32_t>(datagram.payload.size()));
  os_->write(reinterpret_cast<const char*>(datagram.payload.data()),
             static_cast<std::streamsize>(datagram.payload.size()));
  ++written_;
}

DgramLogReader::DgramLogReader(std::istream& is) : is_(&is) {
  char magic[4];
  is_->read(magic, sizeof magic);
  if (!*is_ || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("dgram_log: bad magic (not a datagram log)");
  }
  version_ = get_u32(*is_);
  if (version_ != 1 && version_ != kVersion) {
    throw std::runtime_error("dgram_log: unsupported version " + std::to_string(version_));
  }
  if (version_ >= 2) {
    fingerprint_.path_sets = get_u32(*is_);
    fingerprint_.hash = get_u64(*is_);
  }
}

bool DgramLogReader::next(LoggedDatagram& out) {
  // The first field of a record doubles as the end-of-log probe: EOF here is
  // a clean end, EOF anywhere later in the record is truncation.
  std::uint64_t ts;
  is_->read(reinterpret_cast<char*>(&ts), sizeof ts);
  if (!*is_) {
    if (is_->eof() && is_->gcount() == 0) return false;
    throw std::runtime_error("dgram_log: truncated input");
  }
  out.timestamp_ns = ts;
  out.source_addr = get_u32(*is_);
  out.source_port = get_u16(*is_);
  const std::uint32_t len = get_u32(*is_);
  if (len > kMaxPayloadBytes) throw std::runtime_error("dgram_log: corrupt payload length");
  out.payload.resize(len);
  is_->read(reinterpret_cast<char*>(out.payload.data()), static_cast<std::streamsize>(len));
  if (!*is_) throw std::runtime_error("dgram_log: truncated input");
  return true;
}

CaptureTap::CaptureTap(std::ostream& os, DgramOfferFn downstream)
    : writer_(os),
      downstream_(std::move(downstream)),
      // Capture timestamps are replay pacing metadata, never result input.
      start_(std::chrono::steady_clock::now()) {}  // flock-lint: allow(wall-clock)

bool CaptureTap::offer(IngestDatagram datagram, std::uint16_t source_port) {
  MutexLock lock(mutex_);
  LoggedDatagram logged;
  logged.timestamp_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)  // flock-lint: allow(wall-clock)
          .count());
  logged.source_addr = datagram.source_addr;
  logged.source_port = source_port;
  logged.payload = datagram.bytes;  // copy: the datagram moves on downstream
  writer_.append(logged);
  // Forwarding inside the lock serializes concurrent taps, which is the
  // point: the log order must equal the queue arrival order exactly.
  return downstream_(std::move(datagram));
}

DgramOfferFn CaptureTap::as_offer_fn() {
  return [this](IngestDatagram datagram) { return offer(std::move(datagram)); };
}

void CaptureTap::set_router_fingerprint(const RouterFingerprint& fingerprint) {
  MutexLock lock(mutex_);
  writer_.set_fingerprint(fingerprint);
}

std::uint64_t CaptureTap::captured() const {
  MutexLock lock(mutex_);
  return writer_.written();
}

ReplayStats replay_dgram_log(std::istream& is, const DgramOfferFn& offer,
                             const ReplayOptions& options) {
  if (options.paced && (!std::isfinite(options.speed) || options.speed <= 0)) {
    throw std::invalid_argument("dgram_log: paced replay speed must be finite and > 0");
  }
  DgramLogReader reader(is);
  if (!options.expect_fingerprint.empty() && !reader.fingerprint().empty() &&
      !(reader.fingerprint() == options.expect_fingerprint)) {
    throw std::runtime_error(
        "dgram_log: router fingerprint mismatch — log captured against " +
        std::to_string(reader.fingerprint().path_sets) + " path sets (hash " +
        std::to_string(reader.fingerprint().hash) + "), replaying against " +
        std::to_string(options.expect_fingerprint.path_sets) + " (hash " +
        std::to_string(options.expect_fingerprint.hash) +
        "); records carry interned path-set ids and need equivalently-constructed "
        "routing state");
  }
  ReplayStats stats;
  // Pacing reference only: when to *offer* a datagram, never what it holds.
  const auto start = std::chrono::steady_clock::now();  // flock-lint: allow(wall-clock)
  const double speed = options.speed;
  LoggedDatagram logged;
  while (reader.next(logged)) {
    if (options.paced) {
      const auto due =
          start + std::chrono::nanoseconds(
                      static_cast<std::uint64_t>(static_cast<double>(logged.timestamp_ns) /
                                                 speed));
      std::this_thread::sleep_until(due);
    }
    IngestDatagram datagram;
    datagram.source_addr = logged.source_addr;
    datagram.bytes = std::move(logged.payload);
    ++stats.datagrams;
    if (offer(std::move(datagram))) {
      ++stats.accepted;
    } else {
      ++stats.rejected;
    }
  }
  return stats;
}

ReplayStats replay_dgram_log(const std::string& path, const DgramOfferFn& offer,
                             const ReplayOptions& options) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("dgram_log: cannot open " + path);
  return replay_dgram_log(is, offer, options);
}

}  // namespace flock
