#include "net/dgram_log.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>

namespace flock {
namespace {

constexpr char kMagic[4] = {'F', 'L', 'K', 'D'};
constexpr std::uint32_t kVersion = 1;
// Sanity bound on a single record: real datagrams are <= 64 KiB (UDP), so a
// larger length field means the log is corrupt — reject instead of
// allocating whatever a flipped bit asks for.
constexpr std::uint32_t kMaxPayloadBytes = 1 << 16;

void put_u16(std::ostream& os, std::uint16_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint16_t get_u16(std::istream& is) {
  std::uint16_t v;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("dgram_log: truncated input");
  return v;
}
std::uint32_t get_u32(std::istream& is) {
  std::uint32_t v;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("dgram_log: truncated input");
  return v;
}

}  // namespace

DgramLogWriter::DgramLogWriter(std::ostream& os) : os_(&os) {
  os_->write(kMagic, sizeof kMagic);
  put_u32(*os_, kVersion);
}

void DgramLogWriter::append(const LoggedDatagram& datagram) {
  put_u64(*os_, datagram.timestamp_ns);
  put_u32(*os_, datagram.source_addr);
  put_u16(*os_, datagram.source_port);
  put_u32(*os_, static_cast<std::uint32_t>(datagram.payload.size()));
  os_->write(reinterpret_cast<const char*>(datagram.payload.data()),
             static_cast<std::streamsize>(datagram.payload.size()));
  ++written_;
}

DgramLogReader::DgramLogReader(std::istream& is) : is_(&is) {
  char magic[4];
  is_->read(magic, sizeof magic);
  if (!*is_ || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("dgram_log: bad magic (not a datagram log)");
  }
  const std::uint32_t version = get_u32(*is_);
  if (version != kVersion) {
    throw std::runtime_error("dgram_log: unsupported version " + std::to_string(version));
  }
}

bool DgramLogReader::next(LoggedDatagram& out) {
  // The first field of a record doubles as the end-of-log probe: EOF here is
  // a clean end, EOF anywhere later in the record is truncation.
  std::uint64_t ts;
  is_->read(reinterpret_cast<char*>(&ts), sizeof ts);
  if (!*is_) {
    if (is_->eof() && is_->gcount() == 0) return false;
    throw std::runtime_error("dgram_log: truncated input");
  }
  out.timestamp_ns = ts;
  out.source_addr = get_u32(*is_);
  out.source_port = get_u16(*is_);
  const std::uint32_t len = get_u32(*is_);
  if (len > kMaxPayloadBytes) throw std::runtime_error("dgram_log: corrupt payload length");
  out.payload.resize(len);
  is_->read(reinterpret_cast<char*>(out.payload.data()), static_cast<std::streamsize>(len));
  if (!*is_) throw std::runtime_error("dgram_log: truncated input");
  return true;
}

CaptureTap::CaptureTap(std::ostream& os, DgramOfferFn downstream)
    : writer_(os),
      downstream_(std::move(downstream)),
      start_(std::chrono::steady_clock::now()) {}

bool CaptureTap::offer(IngestDatagram datagram, std::uint16_t source_port) {
  std::lock_guard<std::mutex> lock(mutex_);
  LoggedDatagram logged;
  logged.timestamp_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           start_)
          .count());
  logged.source_addr = datagram.source_addr;
  logged.source_port = source_port;
  logged.payload = datagram.bytes;  // copy: the datagram moves on downstream
  writer_.append(logged);
  // Forwarding inside the lock serializes concurrent taps, which is the
  // point: the log order must equal the queue arrival order exactly.
  return downstream_(std::move(datagram));
}

DgramOfferFn CaptureTap::as_offer_fn() {
  return [this](IngestDatagram datagram) { return offer(std::move(datagram)); };
}

std::uint64_t CaptureTap::captured() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return writer_.written();
}

ReplayStats replay_dgram_log(std::istream& is, const DgramOfferFn& offer,
                             const ReplayOptions& options) {
  DgramLogReader reader(is);
  ReplayStats stats;
  const auto start = std::chrono::steady_clock::now();
  const double speed = options.speed > 0 ? options.speed : 1.0;
  LoggedDatagram logged;
  while (reader.next(logged)) {
    if (options.paced) {
      const auto due =
          start + std::chrono::nanoseconds(
                      static_cast<std::uint64_t>(static_cast<double>(logged.timestamp_ns) /
                                                 speed));
      std::this_thread::sleep_until(due);
    }
    IngestDatagram datagram;
    datagram.source_addr = logged.source_addr;
    datagram.bytes = std::move(logged.payload);
    ++stats.datagrams;
    if (offer(std::move(datagram))) {
      ++stats.accepted;
    } else {
      ++stats.rejected;
    }
  }
  return stats;
}

ReplayStats replay_dgram_log(const std::string& path, const DgramOfferFn& offer,
                             const ReplayOptions& options) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("dgram_log: cannot open " + path);
  return replay_dgram_log(is, offer, options);
}

}  // namespace flock
