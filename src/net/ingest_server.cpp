#include "net/ingest_server.h"

#include "telemetry/flow_record.h"
#include "telemetry/ipfix.h"

namespace flock {

const char* to_string(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kDropNewest: return "drop_newest";
    case AdmissionPolicy::kDropByAgentShare: return "drop_by_agent_share";
  }
  return "unknown";
}

UdpIngestServer::UdpIngestServer(UdpIngestServerConfig config, DgramOfferFn offer,
                                 DepthFn depth)
    : config_(config), offer_(std::move(offer)), depth_(std::move(depth)) {
  if (config_.receiver_threads < 1) config_.receiver_threads = 1;
  if (config_.batch_size < 1) config_.batch_size = 1;
  if (config_.max_datagram_bytes < kIpfixHeaderBytes) {
    config_.max_datagram_bytes = kIpfixHeaderBytes;
  }
}

UdpIngestServer::~UdpIngestServer() { stop(); }

bool UdpIngestServer::start(std::string* error) {
  if (running_) return true;
  if (!socket_.open(config_.listen_addr, config_.port, error)) return false;
  socket_.set_recv_timeout(config_.poll_interval);
  socket_.set_recv_buffer_bytes(config_.recv_buffer_bytes);
  endpoint_ = socket_.local_endpoint();
  stop_.store(false, std::memory_order_relaxed);
  receivers_.reserve(static_cast<std::size_t>(config_.receiver_threads));
  for (int t = 0; t < config_.receiver_threads; ++t) {
    receivers_.emplace_back([this] { receive_loop(); });
  }
  running_ = true;
  return true;
}

void UdpIngestServer::stop() {
  if (!running_) return;
  stop_.store(true, std::memory_order_relaxed);
  for (std::thread& t : receivers_) t.join();
  receivers_.clear();
  socket_.close();
  running_ = false;
}

void UdpIngestServer::receive_loop() {
  // Reusable arena: one contiguous allocation, one slot per batch position.
  // Payload bytes are copied out only for datagrams that are actually
  // offered downstream; quarantined and shed datagrams never allocate.
  const std::size_t slot_bytes = config_.max_datagram_bytes;
  std::vector<std::uint8_t> arena(static_cast<std::size_t>(config_.batch_size) * slot_bytes);
  std::vector<UdpSocket::RecvSlot> slots(static_cast<std::size_t>(config_.batch_size));
  for (int i = 0; i < config_.batch_size; ++i) {
    slots[static_cast<std::size_t>(i)].data = arena.data() + static_cast<std::size_t>(i) *
                                                                 slot_bytes;
    slots[static_cast<std::size_t>(i)].capacity = slot_bytes;
  }
  while (!stop_.load(std::memory_order_relaxed)) {
    const int n = socket_.recv_batch(slots.data(), config_.batch_size);
    if (n < 0) break;  // socket closed out from under us
    for (int i = 0; i < n; ++i) {
      handle_datagram(slots[static_cast<std::size_t>(i)].data,
                      slots[static_cast<std::size_t>(i)].len,
                      slots[static_cast<std::size_t>(i)].from);
    }
  }
}

UdpIngestServer::AgentEntry& UdpIngestServer::intern_agent(const UdpEndpoint& from) {
  const std::uint64_t key = from.key();
  // Warm path: wait-free index probe into the published store.
  const std::int32_t found = agent_index_.find(key);
  if (found >= 0) return *agent_store_[static_cast<std::size_t>(found)];
  // Cold path: first datagram from this endpoint. Serialize interners, then
  // re-check — another receiver may have published the entry meanwhile.
  MutexLock lock(intern_mutex_);
  const std::int32_t raced = agent_index_.find(key);
  if (raced >= 0) return *agent_store_[static_cast<std::size_t>(raced)];
  auto entry = std::make_unique<AgentEntry>();
  entry->key = key;
  entry->endpoint = from;
  AgentEntry& ref = *entry;
  const auto index = static_cast<std::int32_t>(agent_store_.writer_size());
  agent_store_.append(std::move(entry));
  agent_store_.publish();
  agent_index_.insert(key, index);
  return ref;
}

void UdpIngestServer::handle_datagram(const std::uint8_t* data, std::size_t len,
                                      const UdpEndpoint& from) {
  datagrams_received_.fetch_add(1, std::memory_order_relaxed);
  bytes_received_.fetch_add(len, std::memory_order_relaxed);
  AgentEntry& agent = intern_agent(from);
  agent.datagrams.fetch_add(1, std::memory_order_relaxed);
  agent.bytes.fetch_add(len, std::memory_order_relaxed);

  // Header validation: the only wire trust boundary. Anything that fails
  // here is quarantined (counted once, per reason) and never enters the
  // pipeline, so decode stages downstream only ever see framed IPFIX.
  IpfixHeader header;
  switch (peek_header(data, len, &header)) {
    case IpfixHeaderStatus::kOk:
      break;
    case IpfixHeaderStatus::kShortHeader:
      malformed_short_header_.fetch_add(1, std::memory_order_relaxed);
      agent.quarantined.fetch_add(1, std::memory_order_relaxed);
      return;
    case IpfixHeaderStatus::kBadVersion:
      malformed_bad_version_.fetch_add(1, std::memory_order_relaxed);
      agent.quarantined.fetch_add(1, std::memory_order_relaxed);
      return;
    case IpfixHeaderStatus::kLengthMismatch:
      malformed_length_mismatch_.fetch_add(1, std::memory_order_relaxed);
      agent.quarantined.fetch_add(1, std::memory_order_relaxed);
      return;
  }
  if (const auto records = peek_record_count(data, len)) {
    records_seen_.fetch_add(*records, std::memory_order_relaxed);
    agent.records.fetch_add(*records, std::memory_order_relaxed);
  }

  // Admission control: shed load here, before the copy and the queue lock,
  // when the pipeline is visibly behind.
  if (depth_ && config_.admission_high_watermark > 0 &&
      depth_() >= config_.admission_high_watermark) {
    bool shed = true;
    if (config_.admission == AdmissionPolicy::kDropByAgentShare) {
      // Shed only sources above their fair share of everything accepted so
      // far: accepted_by_agent * agents > total_accepted. Quiet agents keep
      // flowing even while a top-talker is rate-limited into its share.
      const std::uint64_t agents = agent_store_.size();
      const std::uint64_t total = total_accepted_.load(std::memory_order_relaxed);
      const std::uint64_t mine = agent.accepted.load(std::memory_order_relaxed);
      shed = mine * agents > total;
    }
    if (shed) {
      admission_drops_.fetch_add(1, std::memory_order_relaxed);
      agent.admission_drops.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }

  // The exporter identity is the IPFIX observation domain (the fleet sets it
  // to the exporting host's node id), mapped to the same synthetic address
  // the in-process path uses — NOT the UDP source, which is just an
  // ephemeral socket. Sharding, epoch cuts, and capture/replay are therefore
  // identical whether datagrams arrive by wire or by function call.
  IngestDatagram datagram;
  datagram.source_addr = node_to_addr(static_cast<NodeId>(header.observation_domain));
  datagram.bytes.assign(data, data + len);
  offered_.fetch_add(1, std::memory_order_relaxed);
  if (offer_(std::move(datagram))) {
    agent.accepted.fetch_add(1, std::memory_order_relaxed);
    total_accepted_.fetch_add(1, std::memory_order_relaxed);
  } else {
    agent.queue_drops.fetch_add(1, std::memory_order_relaxed);
    offer_rejected_.fetch_add(1, std::memory_order_relaxed);
  }
}

NetIngestStats UdpIngestServer::stats() const {
  NetIngestStats s;
  s.datagrams_received = datagrams_received_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  s.records_seen = records_seen_.load(std::memory_order_relaxed);
  s.malformed_short_header = malformed_short_header_.load(std::memory_order_relaxed);
  s.malformed_bad_version = malformed_bad_version_.load(std::memory_order_relaxed);
  s.malformed_length_mismatch = malformed_length_mismatch_.load(std::memory_order_relaxed);
  s.admission_drops = admission_drops_.load(std::memory_order_relaxed);
  s.offered = offered_.load(std::memory_order_relaxed);
  s.offer_rejected = offer_rejected_.load(std::memory_order_relaxed);
  s.agents = agent_store_.size();
  return s;
}

std::vector<AgentAccount> UdpIngestServer::agent_accounts() const {
  const std::size_t n = agent_store_.size();  // acquire: entries below are published
  std::vector<AgentAccount> accounts;
  accounts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const AgentEntry& e = *agent_store_[i];
    AgentAccount a;
    a.endpoint = e.endpoint;
    a.datagrams = e.datagrams.load(std::memory_order_relaxed);
    a.records = e.records.load(std::memory_order_relaxed);
    a.bytes = e.bytes.load(std::memory_order_relaxed);
    a.quarantined = e.quarantined.load(std::memory_order_relaxed);
    a.admission_drops = e.admission_drops.load(std::memory_order_relaxed);
    a.accepted = e.accepted.load(std::memory_order_relaxed);
    a.queue_drops = e.queue_drops.load(std::memory_order_relaxed);
    accounts.push_back(a);
  }
  return accounts;
}

void UdpIngestServer::fold_into(PipelineStats& stats) const {
  const NetIngestStats s = this->stats();
  stats.net_datagrams_received += s.datagrams_received;
  stats.net_malformed_short_header += s.malformed_short_header;
  stats.net_malformed_bad_version += s.malformed_bad_version;
  stats.net_malformed_length_mismatch += s.malformed_length_mismatch;
  stats.net_admission_drops += s.admission_drops;
  stats.net_agents += s.agents;
}

}  // namespace flock
