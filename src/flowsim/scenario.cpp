#include "flowsim/scenario.h"

#include <algorithm>
#include <stdexcept>

namespace flock {
namespace {

std::vector<double> background_rates(const Topology& topo, const DropRateConfig& rates,
                                     Rng& rng) {
  std::vector<double> drop(static_cast<std::size_t>(topo.num_links()));
  for (auto& d : drop) d = rng.uniform(0.0, rates.good_max);
  return drop;
}

}  // namespace

bool GroundTruth::is_failed(ComponentId c) const {
  return std::find(failed.begin(), failed.end(), c) != failed.end();
}

GroundTruth make_healthy(const Topology& topo, const DropRateConfig& rates, Rng& rng) {
  GroundTruth truth;
  truth.link_drop_rate = background_rates(topo, rates, rng);
  return truth;
}

GroundTruth make_silent_link_drops(const Topology& topo, std::int32_t num_failures,
                                   const DropRateConfig& rates, Rng& rng) {
  GroundTruth truth = make_healthy(topo, rates, rng);
  std::vector<LinkId> candidates = topo.switch_links();
  if (num_failures > static_cast<std::int32_t>(candidates.size())) {
    throw std::invalid_argument("make_silent_link_drops: more failures than switch links");
  }
  for (std::int64_t idx : rng.sample_without_replacement(
           static_cast<std::int64_t>(candidates.size()), num_failures)) {
    const LinkId l = candidates[static_cast<std::size_t>(idx)];
    truth.link_drop_rate[static_cast<std::size_t>(l)] = rng.uniform(rates.bad_min, rates.bad_max);
    truth.failed.push_back(topo.link_component(l));
  }
  std::sort(truth.failed.begin(), truth.failed.end());
  return truth;
}

GroundTruth make_silent_link_drops_fixed(const Topology& topo, std::int32_t num_failures,
                                         double failed_drop_rate, const DropRateConfig& rates,
                                         Rng& rng) {
  GroundTruth truth = make_healthy(topo, rates, rng);
  std::vector<LinkId> candidates = topo.switch_links();
  for (std::int64_t idx : rng.sample_without_replacement(
           static_cast<std::int64_t>(candidates.size()), num_failures)) {
    const LinkId l = candidates[static_cast<std::size_t>(idx)];
    truth.link_drop_rate[static_cast<std::size_t>(l)] = failed_drop_rate;
    truth.failed.push_back(topo.link_component(l));
  }
  std::sort(truth.failed.begin(), truth.failed.end());
  return truth;
}

GroundTruth make_device_failures(const Topology& topo, std::int32_t num_devices,
                                 double link_fraction, const DropRateConfig& rates, Rng& rng) {
  if (link_fraction <= 0.0 || link_fraction > 1.0) {
    throw std::invalid_argument("make_device_failures: link_fraction out of (0,1]");
  }
  GroundTruth truth = make_healthy(topo, rates, rng);
  const auto& switches = topo.switches();
  for (std::int64_t idx : rng.sample_without_replacement(
           static_cast<std::int64_t>(switches.size()), num_devices)) {
    const NodeId sw = switches[static_cast<std::size_t>(idx)];
    const ComponentId dev = topo.device_component(sw);
    truth.failed.push_back(dev);
    std::vector<LinkId> links = topo.device_links(sw);
    const auto n_fail = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(link_fraction * static_cast<double>(links.size()) + 0.5));
    auto& failed_links = truth.device_failed_links[dev];
    for (std::int64_t li :
         rng.sample_without_replacement(static_cast<std::int64_t>(links.size()), n_fail)) {
      const LinkId l = links[static_cast<std::size_t>(li)];
      truth.link_drop_rate[static_cast<std::size_t>(l)] =
          rng.uniform(rates.bad_min, rates.bad_max);
      failed_links.push_back(topo.link_component(l));
    }
    std::sort(failed_links.begin(), failed_links.end());
  }
  std::sort(truth.failed.begin(), truth.failed.end());
  return truth;
}

}  // namespace flock
