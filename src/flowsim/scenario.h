// Failure scenarios and ground truth (§6.4).
//
// Ground truth is expressed as per-link packet-drop probabilities plus the
// set of components an ideal localizer should report. Good links also drop
// at a small background rate (0 – 0.01%, §6.3), which is what makes the
// inference problem non-trivial: the model never matches reality exactly.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "topology/topology.h"

namespace flock {

struct GroundTruth {
  // What the localizer should output: link components for link failures,
  // device components for device failures.
  std::vector<ComponentId> failed;
  // For device failures: which of the device's links actually fail (the
  // recall metric gives partial credit per App A.1).
  std::unordered_map<ComponentId, std::vector<ComponentId>> device_failed_links;
  // Per-link drop probability (indexed by LinkId).
  std::vector<double> link_drop_rate;

  bool is_failed(ComponentId c) const;
};

struct DropRateConfig {
  double good_max = 1e-4;  // background drops on good links: U(0, good_max)
  double bad_min = 1e-3;   // failed links drop U(bad_min, bad_max)
  double bad_max = 1e-2;
};

// Background drops everywhere, no failure.
GroundTruth make_healthy(const Topology& topo, const DropRateConfig& rates, Rng& rng);

// Silent packet drops on `num_failures` random switch-to-switch links.
GroundTruth make_silent_link_drops(const Topology& topo, std::int32_t num_failures,
                                   const DropRateConfig& rates, Rng& rng);

// As above but with a fixed drop rate on every failed link (SNR sweeps,
// Fig 3).
GroundTruth make_silent_link_drops_fixed(const Topology& topo, std::int32_t num_failures,
                                         double failed_drop_rate, const DropRateConfig& rates,
                                         Rng& rng);

// Silent device failure: `link_fraction` of each failed device's links drop
// packets (§7.2 varies the fraction from 25% to 100%; a partial fraction
// resembles a faulty line card).
GroundTruth make_device_failures(const Topology& topo, std::int32_t num_devices,
                                 double link_fraction, const DropRateConfig& rates, Rng& rng);

}  // namespace flock
