#include "flowsim/views.h"

#include "common/rng.h"

namespace flock {
namespace {

// Translate a simulated flow into an observation, optionally revealing the
// taken path, under the chosen metric mode.
FlowObservation to_observation(const SimFlow& f, bool reveal_path, const ViewOptions& opt) {
  FlowObservation obs;
  obs.src_link = f.src_link;
  obs.dst_link = f.dst_link;
  obs.path_set = f.path_set;
  obs.taken_path = reveal_path ? f.taken_path : -1;
  if (opt.per_flow_latency) {
    obs.packets_sent = 1;
    obs.bad_packets = f.rtt_ms > opt.rtt_threshold_ms ? 1 : 0;
  } else {
    obs.packets_sent = f.packets_sent;
    obs.bad_packets = f.dropped;
  }
  return obs;
}

bool flagged(const SimFlow& f, const ViewOptions& opt) {
  if (opt.per_flow_latency) return f.rtt_ms > opt.rtt_threshold_ms;
  return f.dropped >= 1;
}

}  // namespace

InferenceInput make_view(const Topology& topo, const EcmpRouter& router, const Trace& trace,
                         const ViewOptions& options) {
  InferenceInput input(topo, router);
  input.reserve(trace.flows.size());
  Rng sampler(options.sample_seed);
  const std::uint32_t t = options.telemetry;
  const bool want_int = (t & kTelemetryInt) != 0;

  for (const SimFlow& f : trace.flows) {
    if (f.kind == SimFlowKind::kProbe) {
      if (want_int || (t & kTelemetryA1)) input.add(to_observation(f, true, options));
      continue;
    }
    // Application flow.
    if (want_int) {
      input.add(to_observation(f, true, options));
      continue;
    }
    if ((t & kTelemetryA2) && flagged(f, options)) {
      input.add(to_observation(f, true, options));
      continue;  // not duplicated under P
    }
    if (t & kTelemetryP) {
      if (options.passive_sample_rate >= 1.0 || sampler.chance(options.passive_sample_rate)) {
        input.add(to_observation(f, false, options));
      }
    }
  }
  return input;
}

std::string telemetry_label(std::uint32_t telemetry) {
  if (telemetry & kTelemetryInt) return "INT";
  std::string label;
  auto append = [&](const char* part) {
    if (!label.empty()) label += "+";
    label += part;
  };
  if (telemetry & kTelemetryA1) append("A1");
  if (telemetry & kTelemetryA2) append("A2");
  if (telemetry & kTelemetryP) append("P");
  return label.empty() ? "none" : label;
}

}  // namespace flock
