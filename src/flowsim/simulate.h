// Flow-level drop simulator (§6.3 "Large scale simulation"): each flow picks
// one ECMP path (per-flow hashing), then every packet is dropped
// independently with the path's ground-truth drop probability. Retransmission
// counts (the model's "bad packets") equal the simulated drops. This is the
// stand-in for the paper's NS3 runs and for its flow-level scaling simulator;
// queue/latency effects are modeled separately in src/netsim.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "flowsim/scenario.h"
#include "topology/ecmp.h"
#include "topology/topology.h"

namespace flock {

enum class SimFlowKind : std::uint8_t {
  kProbe,  // A1-style host -> core probe with a known path
  kApp,    // application flow routed by ECMP
};

struct SimFlow {
  SimFlowKind kind = SimFlowKind::kApp;
  NodeId src_host = kInvalidNode;
  NodeId dst_host = kInvalidNode;  // for probes: the target core/spine switch
  ComponentId src_link = kInvalidComponent;
  ComponentId dst_link = kInvalidComponent;
  PathSetId path_set = kInvalidPathSet;
  std::int32_t taken_path = -1;  // always known to the simulator
  std::uint32_t packets_sent = 0;
  std::uint32_t dropped = 0;
  float rtt_ms = 0.0f;  // filled by the queue-level simulator when relevant
};

struct Trace {
  std::vector<SimFlow> flows;
  GroundTruth truth;
};

struct TrafficConfig {
  std::int64_t num_app_flows = 100000;
  // Skewed pattern (§6.3): `skew_traffic_fraction` of flows have both
  // endpoints inside `skew_rack_fraction` of the racks.
  bool skewed = false;
  double skew_traffic_fraction = 0.5;
  double skew_rack_fraction = 0.05;
  // Pareto flow sizes (mean 200KB, shape 1.05, §6.3), converted to packets.
  double pareto_mean_bytes = 200.0 * 1024;
  double pareto_shape = 1.05;
  std::int32_t mss_bytes = 1500;
  std::uint32_t max_packets_per_flow = 1u << 20;  // tail clamp for sanity
};

struct ProbeConfig {
  bool enabled = true;
  // Packets per (host, core, path) probe; §7.1 sends 40/s per server pair.
  std::uint32_t packets_per_probe = 100;
};

// Simulate application traffic (and, if enabled, the NetBouncer-style A1
// probe mesh from every host to every core/spine switch) over the ground
// truth drop rates. The router is extended lazily with the needed path sets.
Trace simulate(const Topology& topo, EcmpRouter& router, GroundTruth truth,
               const TrafficConfig& traffic, const ProbeConfig& probes, Rng& rng);

// Drop probability of a concrete path (1 - prod of link success), including
// both endpoint access links when present. Exposed for tests.
double path_drop_probability(const Topology& topo, const EcmpRouter& router,
                             const GroundTruth& truth, const SimFlow& flow);

}  // namespace flock
