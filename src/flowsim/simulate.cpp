#include "flowsim/simulate.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace flock {
namespace {

// Hosts eligible as skewed-traffic endpoints: all hosts in the chosen
// fraction of racks (a rack = a ToR's hosts).
std::vector<NodeId> pick_hot_hosts(const Topology& topo, double rack_fraction, Rng& rng) {
  std::vector<NodeId> tors;
  for (NodeId sw : topo.switches()) {
    if (topo.node(sw).kind == NodeKind::kTor) tors.push_back(sw);
  }
  const auto n_hot = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(rack_fraction * static_cast<double>(tors.size()) + 0.5));
  std::vector<char> hot_tor(static_cast<std::size_t>(topo.num_nodes()), 0);
  for (std::int64_t idx :
       rng.sample_without_replacement(static_cast<std::int64_t>(tors.size()), n_hot)) {
    hot_tor[static_cast<std::size_t>(tors[static_cast<std::size_t>(idx)])] = 1;
  }
  std::vector<NodeId> hosts;
  for (NodeId h : topo.hosts()) {
    if (hot_tor[static_cast<std::size_t>(topo.tor_of(h))]) hosts.push_back(h);
  }
  return hosts;
}

std::uint32_t sample_packets(const TrafficConfig& cfg, Rng& rng) {
  // Classic Pareto with mean = x_m * alpha / (alpha - 1).
  const double x_m = cfg.pareto_mean_bytes * (cfg.pareto_shape - 1.0) / cfg.pareto_shape;
  const double bytes = rng.pareto(x_m, cfg.pareto_shape);
  const double pkts = std::ceil(bytes / static_cast<double>(cfg.mss_bytes));
  return static_cast<std::uint32_t>(
      std::clamp(pkts, 1.0, static_cast<double>(cfg.max_packets_per_flow)));
}

}  // namespace

double path_drop_probability(const Topology& topo, const EcmpRouter& router,
                             const GroundTruth& truth, const SimFlow& flow) {
  double success = 1.0;
  auto apply_link = [&](LinkId l) {
    success *= 1.0 - truth.link_drop_rate[static_cast<std::size_t>(l)];
  };
  if (flow.src_link != kInvalidComponent) apply_link(topo.component_link(flow.src_link));
  if (flow.dst_link != kInvalidComponent) apply_link(topo.component_link(flow.dst_link));
  const PathSet& set = router.path_set(flow.path_set);
  const Path& p = router.path(set.paths[static_cast<std::size_t>(flow.taken_path)]);
  for (ComponentId c : p.comps) {
    if (topo.is_link_component(c)) apply_link(topo.component_link(c));
  }
  return 1.0 - success;
}

Trace simulate(const Topology& topo, EcmpRouter& router, GroundTruth truth,
               const TrafficConfig& traffic, const ProbeConfig& probes, Rng& rng) {
  if (static_cast<std::int32_t>(truth.link_drop_rate.size()) != topo.num_links()) {
    throw std::invalid_argument("simulate: ground truth does not match topology");
  }
  const auto& hosts = topo.hosts();
  if (hosts.size() < 2) throw std::invalid_argument("simulate: need at least two hosts");

  Trace trace;
  trace.truth = std::move(truth);

  // --- A1 probe mesh: every host probes every core (3-tier) or spine
  // (2-tier) switch along every distinct up path. ---------------------------
  if (probes.enabled) {
    std::vector<NodeId> targets;
    for (NodeId sw : topo.switches()) {
      const NodeKind k = topo.node(sw).kind;
      if (k == NodeKind::kCore || k == NodeKind::kSpine) targets.push_back(sw);
    }
    for (NodeId h : hosts) {
      const NodeId tor = topo.tor_of(h);
      const ComponentId access = topo.link_component(topo.host_access_link(h));
      for (NodeId target : targets) {
        const PathSetId ps = router.path_set_between(tor, target);
        const auto n_paths = static_cast<std::int32_t>(router.path_set(ps).paths.size());
        for (std::int32_t i = 0; i < n_paths; ++i) {
          SimFlow f;
          f.kind = SimFlowKind::kProbe;
          f.src_host = h;
          f.dst_host = target;
          f.src_link = access;
          f.path_set = ps;
          f.taken_path = i;
          f.packets_sent = probes.packets_per_probe;
          trace.flows.push_back(f);
        }
      }
    }
  }

  // --- Application flows. ---------------------------------------------------
  std::vector<NodeId> hot_hosts;
  if (traffic.skewed) hot_hosts = pick_hot_hosts(topo, traffic.skew_rack_fraction, rng);
  auto pick_pair = [&](NodeId& src, NodeId& dst) {
    const bool use_hot = traffic.skewed && hot_hosts.size() >= 2 &&
                         rng.chance(traffic.skew_traffic_fraction);
    const std::vector<NodeId>& pool = use_hot ? hot_hosts : hosts;
    src = pool[rng.next_below(pool.size())];
    do {
      dst = pool[rng.next_below(pool.size())];
    } while (dst == src);
  };

  trace.flows.reserve(trace.flows.size() + static_cast<std::size_t>(traffic.num_app_flows));
  for (std::int64_t i = 0; i < traffic.num_app_flows; ++i) {
    SimFlow f;
    f.kind = SimFlowKind::kApp;
    pick_pair(f.src_host, f.dst_host);
    f.src_link = topo.link_component(topo.host_access_link(f.src_host));
    f.dst_link = topo.link_component(topo.host_access_link(f.dst_host));
    f.path_set = router.host_pair_path_set(f.src_host, f.dst_host);
    const auto width = static_cast<std::uint64_t>(router.path_set(f.path_set).paths.size());
    f.taken_path = static_cast<std::int32_t>(rng.next_below(width));
    f.packets_sent = sample_packets(traffic, rng);
    trace.flows.push_back(f);
  }

  // --- Per-packet Bernoulli drops on the taken path. ------------------------
  for (SimFlow& f : trace.flows) {
    const double p = path_drop_probability(topo, router, trace.truth, f);
    f.dropped = static_cast<std::uint32_t>(rng.binomial(f.packets_sent, p));
  }
  return trace;
}

}  // namespace flock
