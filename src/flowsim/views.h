// Telemetry views (§6.2): project a simulated trace onto the information a
// given monitoring deployment would actually deliver to the collector.
//
//   A1  — the NetBouncer-style probe mesh, paths known.
//   A2  — 007-style: application flows with >= 1 retransmission (or, in
//         per-flow latency mode, an RTT above threshold) are reported along
//         with their traceroute'd path.
//   P   — passive flow telemetry: every application flow, but only the ECMP
//         candidate set is known (NetFlow/IPFIX cannot see the hash).
//   INT — full INT deployment: paths known for probes and all app flows.
//
// Views compose as bitmasks (A1|P, A1|A2|P, ...). A flow reported under A2
// is not duplicated under P.
#pragma once

#include <cstdint>

#include "core/inference_input.h"
#include "flowsim/simulate.h"

namespace flock {

enum Telemetry : std::uint32_t {
  kTelemetryA1 = 1u << 0,
  kTelemetryA2 = 1u << 1,
  kTelemetryP = 1u << 2,
  kTelemetryInt = 1u << 3,
};

struct ViewOptions {
  std::uint32_t telemetry = kTelemetryA1;
  // Downsampling of passive reports (the paper notes P can be sampled at
  // scale); 1.0 keeps everything.
  double passive_sample_rate = 1.0;
  std::uint64_t sample_seed = 7;
  // Per-flow latency analysis (§3.2): observations become (t=1, r=[RTT >
  // threshold]) instead of packet counts. Used for the link-flap scenario.
  bool per_flow_latency = false;
  double rtt_threshold_ms = 10.0;
};

InferenceInput make_view(const Topology& topo, const EcmpRouter& router, const Trace& trace,
                         const ViewOptions& options);

// Human-readable label like "A1+A2+P" for bench output.
std::string telemetry_label(std::uint32_t telemetry);

}  // namespace flock
