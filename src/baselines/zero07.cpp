#include "baselines/zero07.h"

#include <algorithm>
#include <vector>

#include "common/stopwatch.h"

namespace flock {

LocalizationResult Zero07Localizer::localize(const InferenceInput& input) const {
  Stopwatch watch;
  const Topology& topo = input.topology();
  // 007 ranks *links*; device failures surface as several of the device's
  // links ranking high (the App A.1 metric then grants partial credit).
  std::vector<double> score(static_cast<std::size_t>(topo.num_links()), 0.0);
  std::int64_t flagged = 0;

  for (const FlowObservation& obs : input.flows()) {
    if (!obs.path_known() || obs.bad_packets == 0) continue;
    ++flagged;
    const auto comps = input.known_path_components(obs);
    std::int64_t links_on_path = 0;
    for (ComponentId c : comps) {
      if (topo.is_link_component(c)) ++links_on_path;
    }
    if (links_on_path == 0) continue;
    const double vote = 1.0 / static_cast<double>(links_on_path);
    for (ComponentId c : comps) {
      if (topo.is_link_component(c)) score[static_cast<std::size_t>(c)] += vote;
    }
  }

  LocalizationResult result;
  result.hypotheses_scanned = flagged;
  const double max_score =
      score.empty() ? 0.0 : *std::max_element(score.begin(), score.end());
  if (max_score > 0.0) {
    const double cut = options_.score_threshold * max_score;
    for (LinkId l = 0; l < topo.num_links(); ++l) {
      if (score[static_cast<std::size_t>(l)] >= cut) {
        result.predicted.push_back(topo.link_component(l));
      }
    }
  }
  result.seconds = watch.seconds();
  return result;
}

}  // namespace flock
