#include "baselines/zero07.h"

#include <algorithm>
#include <vector>

#include "common/stopwatch.h"

namespace flock {

LocalizationResult Zero07Localizer::localize(const InferenceInput& input) const {
  Stopwatch watch;
  const Topology& topo = input.topology();
  const EcmpRouter& router = input.router();
  // 007 ranks *links*; device failures surface as several of the device's
  // links ranking high (the App A.1 metric then grants partial credit).
  std::vector<double> score(static_cast<std::size_t>(topo.num_links()), 0.0);
  std::int64_t flagged = 0;

  // Group-major scan: the link list of a taken path is a function of
  // (path_set, taken_path, endpoints), i.e. constant per row; weighted rows
  // vote once with their dedup multiplicity.
  for (const FlowGroup& group : input.table().groups()) {
    for (std::size_t r = 0; r < group.size(); ++r) {
      if (group.taken_path[r] < 0 || group.bad[r] == 0) continue;
      const std::uint32_t weight = group.weight[r];
      flagged += weight;
      std::int64_t links_on_path = 0;
      const PathSet& set = router.path_set(group.path_set);
      const Path& p = router.path(set.paths[static_cast<std::size_t>(group.taken_path[r])]);
      auto count_link = [&](ComponentId c) {
        if (topo.is_link_component(c)) ++links_on_path;
      };
      if (group.src_link != kInvalidComponent) count_link(group.src_link);
      for (ComponentId c : p.comps) count_link(c);
      if (group.dst_link != kInvalidComponent) count_link(group.dst_link);
      if (links_on_path == 0) continue;
      const double vote = static_cast<double>(weight) / static_cast<double>(links_on_path);
      auto vote_link = [&](ComponentId c) {
        if (topo.is_link_component(c)) score[static_cast<std::size_t>(c)] += vote;
      };
      if (group.src_link != kInvalidComponent) vote_link(group.src_link);
      for (ComponentId c : p.comps) vote_link(c);
      if (group.dst_link != kInvalidComponent) vote_link(group.dst_link);
    }
  }

  LocalizationResult result;
  result.hypotheses_scanned = flagged;
  const double max_score =
      score.empty() ? 0.0 : *std::max_element(score.begin(), score.end());
  if (max_score > 0.0) {
    const double cut = options_.score_threshold * max_score;
    for (LinkId l = 0; l < topo.num_links(); ++l) {
      if (score[static_cast<std::size_t>(l)] >= cut) {
        result.predicted.push_back(topo.link_component(l));
      }
    }
  }
  result.seconds = watch.seconds();
  return result;
}

}  // namespace flock
