// NetBouncer [Tan et al., NSDI'19], Figure 5: latent-factor estimation of
// per-link success probabilities.
//
// Known-path observations are aggregated per concrete link-level path into
// success ratios y_p. NetBouncer then minimizes
//     sum_p n_p * (y_p - prod_{l in p} x_l)^2  +  lambda * sum_l x_l (1 - x_l)
// over per-link success probabilities x_l in [0,1] by cyclic coordinate
// descent with the closed-form per-link update (the regularizer pushes x_l
// toward {0,1}, resolving the product ambiguity on under-constrained links).
// Links whose estimated drop rate 1 - x_l exceeds `drop_threshold` are
// blamed; a device is blamed (replacing its links) when at least
// `device_link_fraction` of its observed links are blamed.
//
// Hyper-parameters (3, as in §5.2): lambda, drop_threshold,
// device_link_fraction.
#pragma once

#include <cstdint>

#include "core/inference_input.h"

namespace flock {

struct NetBouncerOptions {
  double lambda = 4.0;
  double drop_threshold = 5e-3;
  double device_link_fraction = 0.6;
  std::int32_t max_iterations = 50;
  double convergence_eps = 1e-9;
};

class NetBouncerLocalizer final : public Localizer {
 public:
  explicit NetBouncerLocalizer(NetBouncerOptions options) : options_(options) {}

  LocalizationResult localize(const InferenceInput& input) const override;
  const char* name() const override { return "NetBouncer"; }

  const NetBouncerOptions& options() const { return options_; }
  NetBouncerOptions& options() { return options_; }

  // Exposed for tests: the estimated per-link success probabilities from the
  // last localize() call would be stateful; instead tests use this pure
  // helper that returns the solved x vector.
  std::vector<double> solve_link_success(const InferenceInput& input) const;

 private:
  NetBouncerOptions options_;
};

}  // namespace flock
