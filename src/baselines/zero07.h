// 007 [Arzani et al., NSDI'18], Algorithm 1: voting-based ranking.
//
// Every flow that experienced at least one retransmission contributes a vote
// of 1/h to each component on its (traceroute'd, hence known) path, where h
// is the number of links on the path. Components whose accumulated score is
// at least `score_threshold` times the maximum score are blamed. Flows with
// unknown paths are ignored — 007 has no notion of path uncertainty, which
// is exactly why it cannot ingest passive telemetry (§6.2).
//
// The single hyper-parameter is the blame threshold (§5.2 calibrates it).
#pragma once

#include "core/inference_input.h"

namespace flock {

struct Zero07Options {
  // Blame every component scoring >= score_threshold * max_score.
  double score_threshold = 0.8;
};

class Zero07Localizer final : public Localizer {
 public:
  explicit Zero07Localizer(Zero07Options options) : options_(options) {}

  LocalizationResult localize(const InferenceInput& input) const override;
  const char* name() const override { return "007"; }

  const Zero07Options& options() const { return options_; }
  Zero07Options& options() { return options_; }

 private:
  Zero07Options options_;
};

}  // namespace flock
