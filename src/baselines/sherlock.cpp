#include "baselines/sherlock.h"

#include <cmath>
#include <vector>

#include "common/stopwatch.h"
#include "core/likelihood_engine.h"

namespace flock {
namespace {

struct SearchState {
  LikelihoodEngine* engine;
  std::int32_t max_failures;
  bool use_jle;
  std::int64_t node_budget;
  std::int64_t nodes_visited = 0;
  bool budget_exhausted = false;
  double best_posterior = 0.0;  // empty hypothesis is the baseline
  std::vector<ComponentId> best_hypothesis;
  std::vector<ComponentId> current;
};

bool charge_node(SearchState& st) {
  ++st.nodes_visited;
  if (st.node_budget > 0 && st.nodes_visited > st.node_budget) {
    st.budget_exhausted = true;
    return false;
  }
  return true;
}

// Depth-first enumeration of all hypotheses of size <= K. Components are
// added in increasing id order so each subset is visited exactly once.
//
// This is where Algorithm 3's speedup materializes: with JLE the entire
// last level of the tree (the children of a size K-1 hypothesis) is scored
// straight off the maintained Delta array, one O(1) read per child, instead
// of one O(D·T) evaluation per child.
void explore(SearchState& st, ComponentId first_candidate) {
  if (st.budget_exhausted) return;
  if (!charge_node(st)) return;
  const double posterior = st.engine->log_posterior();
  if (posterior > st.best_posterior) {
    st.best_posterior = posterior;
    st.best_hypothesis = st.current;
  }
  const auto depth = static_cast<std::int32_t>(st.current.size());
  if (depth >= st.max_failures) return;
  const std::int32_t n = st.engine->num_components();

  if (st.use_jle && depth == st.max_failures - 1) {
    // Joint frontier: all remaining children scored from the Delta array.
    for (ComponentId c = first_candidate; c < n; ++c) {
      if (st.engine->failed(c)) continue;
      if (!charge_node(st)) return;
      st.engine->note_scan(1);
      const double child = posterior + st.engine->flip_score(c);
      if (child > st.best_posterior) {
        st.best_posterior = child;
        st.best_hypothesis = st.current;
        st.best_hypothesis.push_back(c);
      }
    }
    return;
  }

  for (ComponentId c = first_candidate; c < n; ++c) {
    st.engine->note_scan(1);
    st.engine->flip(c);
    st.current.push_back(c);
    explore(st, c + 1);
    st.current.pop_back();
    st.engine->flip(c);
    if (st.budget_exhausted) return;
  }
}

}  // namespace

SherlockResult SherlockLocalizer::localize_detailed(const InferenceInput& input) const {
  Stopwatch watch;
  LikelihoodEngine engine(input, options_.params, options_.use_jle);
  SearchState st;
  st.engine = &engine;
  st.max_failures = options_.max_failures;
  st.use_jle = options_.use_jle;
  st.node_budget = options_.node_budget;
  explore(st, 0);

  SherlockResult result;
  result.predicted = st.best_hypothesis;
  result.log_likelihood = st.best_posterior;
  result.hypotheses_scanned = engine.hypotheses_scanned();
  result.seconds = watch.seconds();
  result.completed = !st.budget_exhausted;
  result.nodes_visited = st.nodes_visited;
  return result;
}

LocalizationResult SherlockLocalizer::localize(const InferenceInput& input) const {
  return localize_detailed(input);
}

}  // namespace flock
