#include "baselines/netbouncer.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/stopwatch.h"

namespace flock {
namespace {

struct PathAgg {
  std::vector<LinkId> links;
  double sent = 0;
  double good = 0;
};

// FNV-1a over the link sequence, for grouping observations by concrete path.
std::uint64_t hash_links(const std::vector<LinkId>& links) {
  std::uint64_t h = 1469598103934665603ULL;
  for (LinkId l : links) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(l));
    h *= 1099511628211ULL;
  }
  return h;
}

struct Problem {
  std::vector<PathAgg> paths;
  std::vector<LinkId> observed_links;
  std::vector<std::vector<std::int32_t>> paths_of_link;  // indexed by link id
};

Problem build_problem(const InferenceInput& input) {
  const Topology& topo = input.topology();
  Problem prob;
  prob.paths_of_link.resize(static_cast<std::size_t>(topo.num_links()));
  std::unordered_map<std::uint64_t, std::int32_t> index;

  // Group-major scan: rows of a group with the same taken path share their
  // link sequence, and dedup weights scale the packet aggregates.
  for (const FlowGroup& group : input.table().groups()) {
    FlowObservation obs;
    obs.path_set = group.path_set;
    obs.src_link = group.src_link;
    obs.dst_link = group.dst_link;
    for (std::size_t r = 0; r < group.size(); ++r) {
      if (group.taken_path[r] < 0 || group.packets[r] == 0) continue;
      obs.taken_path = group.taken_path[r];
      std::vector<LinkId> links;
      for (ComponentId c : input.known_path_components(obs)) {
        if (topo.is_link_component(c)) links.push_back(topo.component_link(c));
      }
      const std::uint64_t h = hash_links(links);
      auto it = index.find(h);
      std::int32_t pi;
      if (it == index.end() ||
          prob.paths[static_cast<std::size_t>(it->second)].links != links) {
        pi = static_cast<std::int32_t>(prob.paths.size());
        index.emplace(h, pi);
        PathAgg agg;
        agg.links = links;
        prob.paths.push_back(std::move(agg));
        for (LinkId l : prob.paths.back().links) {
          auto& list = prob.paths_of_link[static_cast<std::size_t>(l)];
          if (list.empty() || list.back() != pi) list.push_back(pi);
        }
      } else {
        pi = it->second;
      }
      auto& agg = prob.paths[static_cast<std::size_t>(pi)];
      const double weight = group.weight[r];
      agg.sent += weight * static_cast<double>(group.packets[r]);
      agg.good += weight * static_cast<double>(group.packets[r] - group.bad[r]);
    }
  }

  for (LinkId l = 0; l < topo.num_links(); ++l) {
    if (!prob.paths_of_link[static_cast<std::size_t>(l)].empty()) prob.observed_links.push_back(l);
  }
  return prob;
}

}  // namespace

std::vector<double> NetBouncerLocalizer::solve_link_success(const InferenceInput& input) const {
  const Topology& topo = input.topology();
  Problem prob = build_problem(input);
  std::vector<double> x(static_cast<std::size_t>(topo.num_links()), 1.0);
  if (prob.paths.empty()) return x;

  std::vector<double> y(prob.paths.size());
  for (std::size_t p = 0; p < prob.paths.size(); ++p) {
    y[p] = prob.paths[p].sent > 0 ? prob.paths[p].good / prob.paths[p].sent : 1.0;
  }

  for (std::int32_t iter = 0; iter < options_.max_iterations; ++iter) {
    double max_change = 0.0;
    for (LinkId l : prob.observed_links) {
      // Closed-form coordinate update: the objective restricted to x_l is
      //   A x^2 - B x + const, with
      //   A = sum_p n_p a_p^2 - lambda,  B = 2 sum_p n_p a_p y_p - lambda,
      // where a_p is the product of the other links' success on path p.
      double sum_a2 = 0.0;
      double sum_ay = 0.0;
      for (std::int32_t pi : prob.paths_of_link[static_cast<std::size_t>(l)]) {
        const PathAgg& agg = prob.paths[static_cast<std::size_t>(pi)];
        double a = 1.0;
        for (LinkId other : agg.links) {
          if (other != l) a *= x[static_cast<std::size_t>(other)];
        }
        sum_a2 += agg.sent * a * a;
        sum_ay += agg.sent * a * y[static_cast<std::size_t>(pi)];
      }
      const double a_coef = sum_a2 - options_.lambda;
      const double b_coef = 2.0 * sum_ay - options_.lambda;
      double nx;
      if (a_coef > 1e-12) {
        nx = std::clamp(b_coef / (2.0 * a_coef), 0.0, 1.0);
      } else {
        // Concave (or degenerate) restriction: the minimum is at an endpoint.
        nx = (a_coef - b_coef < 0.0) ? 1.0 : 0.0;
      }
      max_change = std::max(max_change, std::abs(nx - x[static_cast<std::size_t>(l)]));
      x[static_cast<std::size_t>(l)] = nx;
    }
    if (max_change < options_.convergence_eps) break;
  }
  return x;
}

LocalizationResult NetBouncerLocalizer::localize(const InferenceInput& input) const {
  Stopwatch watch;
  const Topology& topo = input.topology();
  const std::vector<double> x = solve_link_success(input);

  // Which links were observed at all (unobserved links stay at prior 1.0 and
  // must not be blamed).
  Problem prob = build_problem(input);
  std::vector<char> observed(static_cast<std::size_t>(topo.num_links()), 0);
  for (LinkId l : prob.observed_links) observed[static_cast<std::size_t>(l)] = 1;

  std::vector<char> blamed(static_cast<std::size_t>(topo.num_links()), 0);
  for (LinkId l : prob.observed_links) {
    if (1.0 - x[static_cast<std::size_t>(l)] > options_.drop_threshold) {
      blamed[static_cast<std::size_t>(l)] = 1;
    }
  }

  LocalizationResult result;
  // Device aggregation: when most observed links of a switch look bad, the
  // switch itself is the more parsimonious root cause.
  std::vector<char> device_blamed(static_cast<std::size_t>(topo.num_nodes()), 0);
  for (NodeId sw : topo.switches()) {
    std::int32_t seen = 0;
    std::int32_t bad = 0;
    for (LinkId l : topo.device_links(sw)) {
      if (!observed[static_cast<std::size_t>(l)]) continue;
      ++seen;
      bad += blamed[static_cast<std::size_t>(l)];
    }
    if (seen >= 2 &&
        static_cast<double>(bad) >= options_.device_link_fraction * static_cast<double>(seen)) {
      device_blamed[static_cast<std::size_t>(sw)] = 1;
      result.predicted.push_back(topo.device_component(sw));
    }
  }
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    if (!blamed[static_cast<std::size_t>(l)]) continue;
    const Link& lk = topo.link(l);
    const bool covered =
        (topo.is_switch(lk.a) && device_blamed[static_cast<std::size_t>(lk.a)]) ||
        (topo.is_switch(lk.b) && device_blamed[static_cast<std::size_t>(lk.b)]);
    if (!covered) result.predicted.push_back(topo.link_component(l));
  }
  std::sort(result.predicted.begin(), result.predicted.end());
  result.hypotheses_scanned = static_cast<std::int64_t>(prob.paths.size());
  result.seconds = watch.seconds();
  return result;
}

}  // namespace flock
