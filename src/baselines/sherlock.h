// Sherlock's "Ferret" inference [Bahl et al., SIGCOMM'07], run on the same
// PGM as Flock for a fair comparison (§6.1): exhaustive search over all
// hypotheses with at most K concurrent failures, picking the maximum
// posterior. Without JLE each explored hypothesis is evaluated by updating
// the flows that intersect the flipped component (O(D·T)), for O(n^K · D·T)
// total. With JLE (Algorithm 3 in the paper's appendix) a whole frontier of
// n neighbors is read off the Delta array at once, improving the runtime by
// a factor of n to O(n^{K-1} · D·T).
//
// Because the full search is intractable at datacenter scale (the whole
// point of the paper), the search accepts a node budget; when exhausted the
// traversal stops and `completed` is false, letting benchmarks extrapolate
// full runtimes the way §7.8 extrapolates Sherlock's 19-day estimate.
#pragma once

#include <cstdint>

#include "core/inference_input.h"
#include "core/params.h"

namespace flock {

struct SherlockOptions {
  FlockParams params;
  std::int32_t max_failures = 2;  // K
  bool use_jle = false;
  // Stop after visiting this many search-tree nodes (0 = unlimited).
  std::int64_t node_budget = 0;
};

struct SherlockResult : LocalizationResult {
  bool completed = true;
  std::int64_t nodes_visited = 0;
};

class SherlockLocalizer final : public Localizer {
 public:
  explicit SherlockLocalizer(SherlockOptions options) : options_(options) {}

  LocalizationResult localize(const InferenceInput& input) const override;
  // Full-fidelity entry point exposing completion state.
  SherlockResult localize_detailed(const InferenceInput& input) const;

  const char* name() const override {
    return options_.use_jle ? "Sherlock(JLE)" : "Sherlock";
  }

 private:
  SherlockOptions options_;
};

}  // namespace flock
