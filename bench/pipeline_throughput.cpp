// Streaming pipeline throughput: ingest-to-diagnosis records/sec as the
// shard count grows 1 -> 8 over the same workload (§5's deployment loop,
// run as a service instead of one synchronous call chain).
//
// The workload is fixed up front: a passive-only telemetry burst from every
// host of the default Clos, pre-encoded into IPFIX datagrams so producers
// cost nothing but the offer. Each configuration gets a fresh pre-warmed
// router and processes the identical datagram sequence losslessly
// (offer_wait), split across two producer threads. Epochs close on a
// record-count boundary, so inference overlaps ingest exactly as in the
// deployed service.
#include <algorithm>
#include <thread>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "pipeline/pipeline.h"
#include "telemetry/agent.h"

int main() {
  using namespace flock;
  using namespace flock::bench;

  print_header("Streaming pipeline throughput vs shard count",
               "the §5 collector/inference service, sharded");

  const Topology topo = make_three_tier_clos(default_clos());
  const std::int64_t num_flows = scaled_flows(120000);

  // Build the datagram workload once (passive deployment: paths stripped).
  std::vector<IngestDatagram> datagrams;
  std::uint64_t total_records = 0;
  {
    EcmpRouter router(topo);
    Rng rng(17);
    DropRateConfig rates;
    rates.bad_min = 5e-3;
    rates.bad_max = 1e-2;
    GroundTruth truth = make_silent_link_drops(topo, 2, rates, rng);
    TrafficConfig traffic;
    traffic.num_app_flows = num_flows;
    ProbeConfig probes;
    probes.enabled = false;
    const Trace trace = simulate(topo, router, std::move(truth), traffic, probes, rng);
    std::unordered_map<NodeId, Agent> agents;
    for (NodeId h : topo.hosts()) {
      AgentConfig cfg;
      cfg.observation_domain = static_cast<std::uint32_t>(h);
      agents.emplace(h, Agent(topo, cfg));
    }
    for (const SimFlow& f : trace.flows) {
      SimFlow passive = f;
      passive.taken_path = -1;
      agents.at(f.src_host).observe(passive);
      ++total_records;
    }
    for (NodeId h : topo.hosts()) {
      for (auto& msg : agents.at(h).flush(1700000000)) {
        datagrams.push_back({node_to_addr(h), std::move(msg)});
      }
    }
  }
  std::cout << "workload: " << datagrams.size() << " datagrams, " << total_records
            << " flow records\n\n";

  Table table({"shards", "epochs", "seconds", "records/s", "speedup", "close->merge ms",
               "arena reuse", "MB recycled"});
  BenchJson json("pipeline_throughput");
  double base_seconds = 0.0;
  constexpr int kReps = 3;  // best-of-3: scheduling noise dominates short runs
  for (const std::int32_t shards : {1, 2, 4, 8}) {
    double best_seconds = 0.0;
    std::uint64_t epochs_closed = 0;
    std::uint64_t arena_reuses = 0;
    std::uint64_t arena_bytes = 0;
    double merge_ms = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      EcmpRouter router(topo);
      router.build_all_tor_pairs();  // steady-state service: routes already interned

      PipelineConfig config;
      config.num_shards = shards;
      config.localizer.params.p_g = 1e-4;
      config.localizer.params.p_b = 6e-3;
      config.localizer.params.rho = 1e-3;
      config.epoch.record_limit = static_cast<std::uint64_t>(total_records / 4 + 1);
      config.shard_queue_capacity = 2048;
      config.localizer_threads = 1;  // inference stays pipelined with ingest

      StreamingPipeline pipeline(topo, router, config);
      Stopwatch watch;  // timed region: ingest -> final merged diagnosis
      const std::size_t half = datagrams.size() / 2;
      auto feed = [&pipeline, &datagrams](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) pipeline.offer_wait(datagrams[i]);
      };
      std::thread producer_a(feed, 0, half);
      std::thread producer_b(feed, half, datagrams.size());
      producer_a.join();
      producer_b.join();
      pipeline.stop();
      const double seconds = watch.seconds();

      const auto stats = pipeline.stats();
      if (stats.records_decoded != total_records || stats.dropped != 0) {
        std::cerr << "workload not fully processed: decoded " << stats.records_decoded << "/"
                  << total_records << ", dropped " << stats.dropped << "\n";
        return 1;
      }
      const auto epochs = pipeline.results().completed();
      if (epochs.empty()) {
        std::cerr << "no epochs completed\n";
        return 1;
      }
      if (rep == 0 || seconds < best_seconds) {
        best_seconds = seconds;
        epochs_closed = stats.epochs_closed;
        arena_reuses = stats.arena_reuses;
        arena_bytes = stats.arena_bytes_recycled;
        merge_ms = 0.0;
        for (const auto& e : epochs) merge_ms += e.close_to_merge_seconds * 1e3;
        merge_ms /= static_cast<double>(epochs.size());
      }
    }

    // Epoch-arena gate: a multi-epoch run must actually recycle table
    // storage (epoch N's FlowTables feeding epoch N+1's builds) — zero
    // reuses means the release/acquire plumbing regressed to cold
    // allocations.
    if (epochs_closed >= 2 && arena_reuses == 0) {
      std::cerr << "FAIL: " << epochs_closed << " epochs closed but the epoch arenas "
                << "recycled nothing (shards=" << shards << ")\n";
      return 1;
    }

    if (shards == 1) base_seconds = best_seconds;
    const double records_per_sec = static_cast<double>(total_records) / best_seconds;
    table.add_row({Table::integer(shards),
                   Table::integer(static_cast<long long>(epochs_closed)),
                   Table::num(best_seconds, 3), Table::num(records_per_sec, 0),
                   Table::num(base_seconds / best_seconds, 2), Table::num(merge_ms, 1),
                   Table::integer(static_cast<long long>(arena_reuses)),
                   Table::num(static_cast<double>(arena_bytes) / (1024.0 * 1024.0), 1)});
    json.add_row({{"shards", static_cast<double>(shards)},
                  {"seconds", best_seconds},
                  {"records_per_sec", records_per_sec}});
  }
  table.print(std::cout);
  std::cout << "\n(speedup is relative to the 1-shard configuration; on a single core it\n"
               "measures pipeline overhead, on N cores it measures shard parallelism)\n";

  // --- Wide-epoch leg: intra-epoch parallelism ------------------------------
  // One huge epoch (record_limit never hit before stop), 4 shards, a single
  // localizer thread — the shape where one epoch's inference dominates and
  // shard-level parallelism cannot help, i.e. exactly what
  // PipelineConfig.localize_threads exists for. Results must be identical
  // across thread counts (determinism contract); timing rows are recorded
  // for the regression gate.
  std::cout << "\nwide epoch (single epoch, 4 shards, 1 localizer thread):\n\n";
  Table wide_table({"localize threads", "seconds", "records/s", "vs 1", "parallel chunks"});
  const std::int32_t wide_team =
      std::min<std::int32_t>(4, std::max<std::int32_t>(1, static_cast<std::int32_t>(
                                    std::thread::hardware_concurrency())));
  double wide_base = 0.0;
  std::vector<std::vector<ComponentId>> wide_predictions;
  for (const std::int32_t t : {1, wide_team}) {
    double best_seconds = 0.0;
    std::uint64_t parallel_chunks = 0;
    std::vector<std::vector<ComponentId>> predictions;
    for (int rep = 0; rep < kReps; ++rep) {
      EcmpRouter router(topo);
      router.build_all_tor_pairs();

      PipelineConfig config;
      config.num_shards = 4;
      config.localizer.params.p_g = 1e-4;
      config.localizer.params.p_b = 6e-3;
      config.localizer.params.rho = 1e-3;
      config.epoch.record_limit = static_cast<std::uint64_t>(total_records) + 1;
      config.shard_queue_capacity = 2048;
      config.localizer_threads = 1;
      config.localize_threads = t;

      StreamingPipeline pipeline(topo, router, config);
      Stopwatch watch;
      const std::size_t half = datagrams.size() / 2;
      auto feed = [&pipeline, &datagrams](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) pipeline.offer_wait(datagrams[i]);
      };
      std::thread producer_a(feed, 0, half);
      std::thread producer_b(feed, half, datagrams.size());
      producer_a.join();
      producer_b.join();
      pipeline.stop();
      const double seconds = watch.seconds();

      const auto stats = pipeline.stats();
      if (stats.records_decoded != total_records || stats.dropped != 0) {
        std::cerr << "wide epoch: workload not fully processed\n";
        return 1;
      }
      if (rep == 0 || seconds < best_seconds) {
        best_seconds = seconds;
        parallel_chunks = stats.parallel_chunks + stats.merge_parallel_chunks;
        predictions.clear();
        for (const auto& e : pipeline.results().completed()) {
          predictions.push_back(e.predicted);
        }
      }
    }
    if (t == 1) {
      wide_base = best_seconds;
      wide_predictions = predictions;
    } else if (predictions != wide_predictions) {
      std::cerr << "FAIL: localize_threads=" << t
                << " changed the wide-epoch diagnoses (determinism contract)\n";
      return 1;
    }
    const double records_per_sec = static_cast<double>(total_records) / best_seconds;
    wide_table.add_row({Table::integer(t), Table::num(best_seconds, 3),
                        Table::num(records_per_sec, 0),
                        t == 1 ? "-" : Table::num(wide_base / best_seconds, 2),
                        Table::integer(static_cast<long long>(parallel_chunks))});
    json.add_row({{"wide", 1.0},
                  {"localize_threads", static_cast<double>(t)},
                  {"seconds", best_seconds},
                  {"records_per_sec", records_per_sec}});
    if (wide_team == 1) break;  // the A/B degenerates to one leg on one core
  }
  wide_table.print(std::cout);
  json.write();
  return 0;
}
