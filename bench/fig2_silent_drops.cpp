// Fig 2a/2b: accuracy on silent packet drops, across telemetry types, at two
// monitoring volumes. Every scheme/input combination is calibrated on a
// training environment (§5.2) and evaluated on a fresh test environment.
// Prints the calibrated operating points at both flow scales, the error-
// reduction factors the paper headlines, and precision/recall tradeoff
// points (the hyper-parameter sweeps behind the paper's curves).
//
// Expected shape (paper): Flock(INT) and Flock(A1+A2+P) best; passive data
// (P) boosts the active-only inputs; NetBouncer below Flock on the same
// input; 007(A2) trailing.
#include "bench_common.h"

#include <iostream>
#include <map>

namespace flock {
namespace {

using bench::compact_flock_grid;
using bench::compact_netbouncer_grid;
using bench::compact_zero07_grid;
using bench::default_clos;
using bench::scaled_flows;

EnvConfig base_config(std::int64_t flows, std::uint64_t seed) {
  EnvConfig cfg;
  cfg.clos = default_clos();
  cfg.num_traces = 6;
  cfg.failure = FailureKind::kSilentLinkDrops;
  cfg.min_failures = 1;
  cfg.max_failures = 8;
  cfg.rates.bad_min = 1e-3;  // §7.1: failed links drop 0.1% - 1%
  cfg.rates.bad_max = 1e-2;
  cfg.traffic.num_app_flows = flows;
  cfg.probes.packets_per_probe = 100;
  cfg.seed = seed;
  return cfg;
}

struct Combo {
  std::string scheme;
  std::string input;
  std::uint32_t telemetry;
};

int run() {
  bench::print_header("Silent packet drops: accuracy vs telemetry type", "Fig 2a / 2b");

  const std::vector<Combo> combos = {
      {"Flock", "INT", kTelemetryInt},
      {"Flock", "A1+A2+P", kTelemetryA1 | kTelemetryA2 | kTelemetryP},
      {"Flock", "A1+P", kTelemetryA1 | kTelemetryP},
      {"Flock", "A2", kTelemetryA2},
      {"Flock", "A1", kTelemetryA1},
      {"NetBouncer", "INT", kTelemetryInt},
      {"NetBouncer", "A1", kTelemetryA1},
      {"007", "A2", kTelemetryA2},
  };

  // --- per-combo calibration on the training environment (§5.2) ------------
  // Calibration happens at the *large* monitoring volume: hyper-parameters
  // (especially p_b under flagged-only A2 telemetry) are sensitive to the
  // flow volume, which is exactly the "different monitoring interval"
  // robustness axis of Table 1.
  EnvConfig train_cfg = base_config(scaled_flows(40000), /*seed=*/1001);
  train_cfg.num_traces = 4;
  const auto train = make_env(train_cfg);
  std::vector<CalibrationOutcome> calibrations;
  std::cout << "calibration (train environment):\n";
  for (const Combo& combo : combos) {
    ViewOptions view;
    view.telemetry = combo.telemetry;
    CalibrationOutcome outcome;
    if (combo.scheme == "Flock") {
      outcome = calibrate_flock(*train, view, compact_flock_grid());
    } else if (combo.scheme == "NetBouncer") {
      outcome = calibrate_netbouncer(*train, view, compact_netbouncer_grid());
    } else {
      outcome = calibrate_zero07(*train, view, compact_zero07_grid());
    }
    std::cout << "  " << combo.scheme << "(" << combo.input << "): params =";
    for (double p : outcome.chosen.params) std::cout << " " << p;
    std::cout << "  train " << bench::fmt_acc(outcome.chosen.accuracy) << "\n";
    calibrations.push_back(std::move(outcome));
  }

  auto make_localizer = [&](const Combo& combo,
                            const std::vector<double>& params) -> std::unique_ptr<Localizer> {
    if (combo.scheme == "Flock") {
      FlockOptions opt;
      opt.params = flock_params_from(params);
      return std::make_unique<FlockLocalizer>(opt);
    }
    if (combo.scheme == "NetBouncer") {
      return std::make_unique<NetBouncerLocalizer>(netbouncer_options_from(params));
    }
    return std::make_unique<Zero07Localizer>(zero07_options_from(params));
  };

  // --- test: two monitoring volumes (100K / 400K in the paper) -------------
  const std::int64_t small_flows = scaled_flows(10000);
  const std::int64_t large_flows = scaled_flows(40000);
  Table table({"scheme", "input", "flows", "precision", "recall", "fscore"});
  std::map<std::string, double> err_at_large;
  for (const std::int64_t flows : {small_flows, large_flows}) {
    const auto test = make_env(base_config(flows, /*seed=*/2002));
    for (std::size_t i = 0; i < combos.size(); ++i) {
      ViewOptions view;
      view.telemetry = combos[i].telemetry;
      const auto localizer = make_localizer(combos[i], calibrations[i].chosen.params);
      const Accuracy acc = run_scheme_mean(*localizer, *test, view);
      table.add_row({combos[i].scheme, combos[i].input, Table::integer(flows),
                     Table::num(acc.precision), Table::num(acc.recall),
                     Table::num(acc.fscore())});
      if (flows == large_flows) {
        err_at_large[combos[i].scheme + "(" + combos[i].input + ")"] = acc.error();
      }
    }
  }
  std::cout << "\n";
  table.print(std::cout);

  std::cout << "\nerror-reduction factors at " << large_flows
            << " flows (paper: 5.5x A2, >1.19x A1, 12x INT):\n";
  auto show_ratio = [&](const std::string& label, const std::string& base,
                        const std::string& ours) {
    const double b = err_at_large[base];
    const double o = err_at_large[ours];
    std::cout << "  " << label << ": ";
    if (o <= 0) {
      std::cout << (b > 0 ? "inf (Flock made no errors)" : "both exact") << "\n";
    } else {
      std::cout << Table::num(b / o, 2) << "x\n";
    }
  };
  show_ratio("Flock(A2)  vs 007(A2)        ", "007(A2)", "Flock(A2)");
  show_ratio("Flock(A1)  vs NetBouncer(A1) ", "NetBouncer(A1)", "Flock(A1)");
  show_ratio("Flock(INT) vs NetBouncer(INT)", "NetBouncer(INT)", "Flock(INT)");

  // --- tradeoff curves: frontier settings re-evaluated on the test set -----
  std::cout << "\nprecision/recall tradeoff points (Fig 2 curves), " << large_flows
            << " flows:\n";
  const auto test = make_env(base_config(large_flows, /*seed=*/2002));
  Table curve({"scheme", "input", "params", "precision", "recall"});
  for (std::size_t i = 0; i < combos.size(); ++i) {
    if (combos[i].input != "INT" && combos[i].input != "A2" && combos[i].input != "A1") continue;
    for (const auto& point : calibrations[i].frontier) {
      ViewOptions view;
      view.telemetry = combos[i].telemetry;
      const auto localizer = make_localizer(combos[i], point.params);
      const Accuracy acc = run_scheme_mean(*localizer, *test, view);
      std::string params;
      for (double p : point.params) params += (params.empty() ? "" : ",") + Table::num(p, 4);
      curve.add_row({combos[i].scheme, combos[i].input, params, Table::num(acc.precision),
                     Table::num(acc.recall)});
    }
  }
  curve.print(std::cout);
  return 0;
}

}  // namespace
}  // namespace flock

int main() { return flock::run(); }
