// Fig 4a: misconfigured WRED queue on the hardware testbed (here: the
// queue-level simulator on the same 2-spine / 8-leaf / 6-hosts-per-leaf
// topology). A switch queue drops 1% of arriving packets whenever it is
// non-empty, so the link misbehaves exactly under load.
//
// Two parameter settings are reported, as in the paper: (solid markers)
// the Fig 2 calibration carried over unchanged from the simulated Clos,
// and (hollow markers) parameters recalibrated on testbed examples.
//
// Expected shape (paper): Flock(INT) and Flock(A2+P) ~perfect; Flock(A2)
// higher precision than 007(A2); NetBouncer(INT) notably behind Flock(INT);
// recalibration helps every scheme.
#include "bench_common.h"

#include <iostream>

namespace flock {
namespace {

TestbedEnvConfig testbed_config(std::uint64_t seed) {
  TestbedEnvConfig cfg;
  cfg.num_traces = 5;
  cfg.link_flap = false;
  cfg.sim.num_app_flows = flock::bench::scaled_flows(1800);
  cfg.sim.duration_ms = 600;
  cfg.seed = seed;
  return cfg;
}

int run() {
  bench::print_header("Misconfigured WRED queue (testbed)", "Fig 4a");

  // --- "different environment" calibration: simulated Clos, random drops ---
  EnvConfig sim_train;
  sim_train.clos = bench::default_clos();
  sim_train.num_traces = 4;
  sim_train.min_failures = 1;
  sim_train.max_failures = 8;
  sim_train.rates.bad_min = 1e-3;
  sim_train.rates.bad_max = 1e-2;
  sim_train.traffic.num_app_flows = bench::scaled_flows(40000);
  sim_train.seed = 1001;
  const auto clos_train = make_env(sim_train);

  // --- "same environment" calibration: testbed examples -------------------
  const auto testbed_train = make_testbed_env(testbed_config(501));
  const auto test = make_testbed_env(testbed_config(502));

  ViewOptions int_view;
  int_view.telemetry = kTelemetryInt;
  ViewOptions a2_view;
  a2_view.telemetry = kTelemetryA2;

  for (const bool recalibrated : {false, true}) {
    const ExperimentEnv& train = recalibrated ? *testbed_train : *clos_train;
    const auto nb_cal = calibrate_netbouncer(train, int_view, bench::compact_netbouncer_grid());
    const auto z_cal = calibrate_zero07(train, a2_view, bench::compact_zero07_grid());

    std::cout << "\n--- parameters calibrated on "
              << (recalibrated ? "the testbed (hollow markers)"
                               : "the simulated Clos (solid markers)")
              << " ---\n";
    Table table({"scheme", "input", "precision", "recall", "fscore"});
    auto row = [&](const char* scheme, const char* input, const Localizer& loc,
                   std::uint32_t telemetry) {
      ViewOptions view;
      view.telemetry = telemetry;
      const Accuracy acc = run_scheme_mean(loc, *test, view);
      table.add_row({scheme, input, Table::num(acc.precision), Table::num(acc.recall),
                     Table::num(acc.fscore())});
    };
    auto flock_row = [&](const char* input, std::uint32_t telemetry) {
      ViewOptions view;
      view.telemetry = telemetry;
      const auto cal = calibrate_flock(train, view, bench::compact_flock_grid());
      FlockOptions fopt;
      fopt.params = flock_params_from(cal.chosen.params);
      row("Flock", input, FlockLocalizer(fopt), telemetry);
    };
    flock_row("INT", kTelemetryInt);
    flock_row("A2+P", kTelemetryA2 | kTelemetryP);
    flock_row("A2", kTelemetryA2);
    row("NetBouncer", "INT", NetBouncerLocalizer(netbouncer_options_from(nb_cal.chosen.params)),
        kTelemetryInt);
    row("007", "A2", Zero07Localizer(zero07_options_from(z_cal.chosen.params)), kTelemetryA2);
    table.print(std::cout);
  }
  std::cout << "\n(A1 omitted: the testbed switches lack the IP-in-IP probe-bounce\n"
               "feature NetBouncer's probing plan requires, as in the paper.)\n";
  return 0;
}

}  // namespace
}  // namespace flock

int main() { return flock::run(); }
