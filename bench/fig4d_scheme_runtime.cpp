// Fig 4d: end-to-end inference runtime of every scheme across topology
// sizes, on the same input telemetry. Also reports Flock's hypotheses/sec
// (the §7.8 headline is ~3.5M hypotheses in 17s on 88K links; scaled down
// here).
//
// Expected shape (paper): 007 fastest (<1s), Flock faster than NetBouncer
// on the same input, all growing roughly linearly with topology/flow count.
#include "bench_common.h"

#include <iostream>

#include "common/strings.h"

namespace flock {
namespace {

int run() {
  bench::print_header("Scheme runtime vs topology size", "Fig 4d");

  FlockParams params;
  params.p_g = 1e-4;
  params.p_b = 6e-3;
  params.rho = 1e-3;
  NetBouncerOptions nbo;
  Zero07Options zo;

  Table table({"servers", "links", "flows", "Flock(A1+A2+P)", "Flock(INT)",
               "NetBouncer(INT)", "007(A2)", "Flock hyp/s"});
  struct SizePoint {
    std::int32_t k;
    std::int64_t flows;
  };
  for (const SizePoint size : {SizePoint{4, 4000}, SizePoint{6, 12000}, SizePoint{8, 30000},
                               SizePoint{10, 60000}, SizePoint{12, 100000}}) {
    Topology topo = make_fat_tree(size.k);
    EcmpRouter router(topo);
    Rng rng(7100 + static_cast<std::uint64_t>(size.k));
    DropRateConfig rates;
    rates.bad_min = 5e-3;
    GroundTruth truth = make_silent_link_drops(topo, 3, rates, rng);
    TrafficConfig traffic;
    traffic.num_app_flows = bench::scaled_flows(size.flows);
    ProbeConfig probes;
    const Trace trace = simulate(topo, router, std::move(truth), traffic, probes, rng);

    auto timed = [&](const Localizer& loc, std::uint32_t telemetry,
                     LocalizationResult* out = nullptr) {
      ViewOptions view;
      view.telemetry = telemetry;
      const InferenceInput input = make_view(topo, router, trace, view);
      const auto result = loc.localize(input);
      if (out != nullptr) *out = result;
      return result.seconds;
    };

    FlockOptions fopt;
    fopt.params = params;
    const FlockLocalizer flock(fopt);
    LocalizationResult flock_result;
    const double flock_mixed = timed(flock, kTelemetryA1 | kTelemetryA2 | kTelemetryP,
                                     &flock_result);
    const double flock_int = timed(flock, kTelemetryInt);
    const double nb_int = timed(NetBouncerLocalizer(nbo), kTelemetryInt);
    const double z_a2 = timed(Zero07Localizer(zo), kTelemetryA2);
    const double hyp_rate = flock_mixed > 0
                                ? static_cast<double>(flock_result.hypotheses_scanned) /
                                      flock_mixed
                                : 0;
    table.add_row({Table::integer(static_cast<long long>(topo.hosts().size())),
                   Table::integer(topo.num_links()),
                   Table::integer(static_cast<long long>(trace.flows.size())),
                   Table::num(flock_mixed, 3) + "s", Table::num(flock_int, 3) + "s",
                   Table::num(nb_int, 3) + "s", Table::num(z_a2, 3) + "s",
                   human_count(hyp_rate)});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace
}  // namespace flock

int main() { return flock::run(); }
