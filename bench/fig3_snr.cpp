// Fig 3a/3b: which drop rates can each scheme detect? A single link fails
// with a fixed drop rate, swept from 0.2% to 1.4%; the SNR is the ratio of
// that rate to the worst good-link rate (0.01%). Half of Fig 3: uniform
// traffic; other half: 50% of traffic concentrated in 5% of racks.
//
// Expected shape (paper): all schemes ramp up with drop rate; Flock(A2)
// reliable above ~1% (SNR > 100); Flock with passive (A1+A2+P / INT)
// detects ~0.4%; 007's recall collapses under skewed traffic while Flock's
// degrades much less; A1 schemes are insensitive to application-traffic
// skew.
#include "bench_common.h"

#include <iostream>

namespace flock {
namespace {

using bench::default_clos;
using bench::scaled_flows;

EnvConfig snr_config(double drop_rate, bool skewed, std::uint64_t seed) {
  EnvConfig cfg;
  cfg.clos = default_clos();
  cfg.num_traces = 6;  // paper uses 32 traces per point; reduced scale
  cfg.failure = FailureKind::kFixedRateDrops;
  cfg.min_failures = 1;
  cfg.fixed_drop_rate = drop_rate;
  cfg.rates.bad_min = drop_rate;
  cfg.rates.bad_max = drop_rate;
  cfg.traffic.num_app_flows = scaled_flows(40000);
  cfg.probes.packets_per_probe = 100;
  cfg.mix_skewed = false;
  cfg.traffic.skewed = skewed;
  cfg.seed = seed;
  return cfg;
}

int run() {
  bench::print_header("Soft gray failures: F-score vs drop rate (SNR sweep)",
                      "Fig 3a (uniform) / Fig 3b (skewed)");

  // Calibrate once on the random-drop environment (§6.1); 007 is calibrated
  // separately for skewed traffic, as the paper had to do (§7.3).
  EnvConfig train_cfg = snr_config(5e-3, false, 1001);
  train_cfg.failure = FailureKind::kSilentLinkDrops;
  train_cfg.min_failures = 1;
  train_cfg.max_failures = 8;
  train_cfg.rates.bad_min = 1e-3;
  train_cfg.rates.bad_max = 1e-2;
  train_cfg.num_traces = 4;
  train_cfg.mix_skewed = true;
  const auto train = make_env(train_cfg);

  ViewOptions a2_view;
  a2_view.telemetry = kTelemetryA2;
  ViewOptions int_view;
  int_view.telemetry = kTelemetryInt;
  ViewOptions a1_view;
  a1_view.telemetry = kTelemetryA1;
  const auto flock_a2_cal = calibrate_flock(*train, a2_view, bench::compact_flock_grid());
  const auto flock_int_cal = calibrate_flock(*train, int_view, bench::compact_flock_grid());
  const auto flock_a1_cal = calibrate_flock(*train, a1_view, bench::compact_flock_grid());
  const auto nb_cal = calibrate_netbouncer(*train, a1_view, bench::compact_netbouncer_grid());
  const auto z_cal = calibrate_zero07(*train, a2_view, bench::compact_zero07_grid());

  EnvConfig skew_train_cfg = train_cfg;
  skew_train_cfg.mix_skewed = false;
  skew_train_cfg.traffic.skewed = true;
  skew_train_cfg.seed = 1002;
  const auto skew_train = make_env(skew_train_cfg);
  const auto z_skew_cal = calibrate_zero07(*skew_train, a2_view, bench::compact_zero07_grid());

  for (const bool skewed : {false, true}) {
    std::cout << "\n--- " << (skewed ? "skewed" : "uniform") << " traffic (Fig 3"
              << (skewed ? "b" : "a") << ") ---\n";
    Table table({"drop-rate", "SNR", "Flock(A2)", "007(A2)", "Flock(A1)", "NetBouncer(A1)",
                 "Flock(A1+A2+P)", "Flock(INT)"});
    for (double rate : {0.002, 0.004, 0.006, 0.010, 0.014}) {
      const auto test = make_env(
          snr_config(rate, skewed, 4000 + static_cast<std::uint64_t>(rate * 1e5)));
      auto fscore = [&](const Localizer& loc, std::uint32_t telemetry) {
        ViewOptions view;
        view.telemetry = telemetry;
        return Table::num(run_scheme_mean(loc, *test, view).fscore());
      };
      FlockOptions fa2;
      fa2.params = flock_params_from(flock_a2_cal.chosen.params);
      FlockOptions fint;
      fint.params = flock_params_from(flock_int_cal.chosen.params);
      FlockOptions fa1;
      fa1.params = flock_params_from(flock_a1_cal.chosen.params);
      const Zero07Options zo =
          zero07_options_from((skewed ? z_skew_cal : z_cal).chosen.params);
      table.add_row({Table::num(rate * 100, 1) + "%",
                     Table::integer(static_cast<long long>(rate / 1e-4)),
                     fscore(FlockLocalizer(fa2), kTelemetryA2),
                     fscore(Zero07Localizer(zo), kTelemetryA2),
                     fscore(FlockLocalizer(fa1), kTelemetryA1),
                     fscore(NetBouncerLocalizer(netbouncer_options_from(nb_cal.chosen.params)),
                            kTelemetryA1),
                     fscore(FlockLocalizer(fint), kTelemetryA1 | kTelemetryA2 | kTelemetryP),
                     fscore(FlockLocalizer(fint), kTelemetryInt)});
    }
    table.print(std::cout);
  }
  std::cout << "\nNote: A1-based columns are unaffected by application-traffic skew by\n"
               "construction (probes are host->core); the paper omits them from Fig 3b.\n";
  return 0;
}

}  // namespace
}  // namespace flock

int main() { return flock::run(); }
