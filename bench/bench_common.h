// Shared configuration for the figure/table reproduction benches.
//
// Scales are reduced relative to the paper (single-core reproduction — see
// DESIGN.md); the FLOCK_BENCH_SCALE environment variable multiplies flow
// counts for users with more time. Every bench prints the series/rows of the
// corresponding paper figure so results can be compared shape-for-shape.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/netbouncer.h"
#include "baselines/sherlock.h"
#include "baselines/zero07.h"
#include "calibration/calibrate_schemes.h"
#include "common/table.h"
#include "core/flock_localizer.h"
#include "eval/runner.h"

namespace flock::bench {

inline double scale_factor() {
  if (const char* s = std::getenv("FLOCK_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 1.0;
}

// The default simulated datacenter: a 6-pod three-tier Clos, 54 hosts, 216
// links, 45 switches — the same shape as the paper's 2500-link Clos, scaled
// down for single-core runs.
inline ThreeTierClosConfig default_clos() {
  ThreeTierClosConfig cfg;
  cfg.pods = 6;
  cfg.tors_per_pod = 3;
  cfg.aggs_per_pod = 3;
  cfg.cores = 9;
  cfg.hosts_per_tor = 3;
  return cfg;
}

inline std::int64_t scaled_flows(std::int64_t base) {
  return static_cast<std::int64_t>(static_cast<double>(base) * scale_factor());
}

// Compact calibration grids so each bench stays in the ~1 minute range; the
// full §5.2 grids live in calibration/calibrate_schemes.cpp and can be swept
// by passing FLOCK_BENCH_SCALE and editing the bench.
// The p_b axis must extend well above the per-packet drop rates: with
// flagged-only telemetry (A2) a large p_b is what makes a single
// retransmission in a small flow count as *negative* evidence, which is the
// calibrated antidote to A2's selection bias.
inline ParamGrid compact_flock_grid() {
  ParamGrid grid;
  grid.names = {"p_g", "p_b", "rho"};
  grid.values = {{1e-4, 7e-4, 2e-3}, {2e-3, 6e-3, 2e-2, 6e-2, 2e-1}, {1e-4, 1e-3}};
  return grid;
}

inline ParamGrid compact_netbouncer_grid() {
  ParamGrid grid;
  grid.names = {"lambda", "drop_threshold", "device_link_fraction"};
  grid.values = {{4.0}, {1e-3, 2e-3, 5e-3}, {0.6}};
  return grid;
}

inline ParamGrid compact_zero07_grid() {
  ParamGrid grid;
  grid.names = {"score_threshold"};
  grid.values = {{0.3, 0.5, 0.7, 0.9}};
  return grid;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "(reproduces " << paper_ref << ")\n"
            << "==============================================================\n";
}

// Machine-readable bench output for the CI regression gate. When the
// FLOCK_BENCH_JSON environment variable names a file, rows accumulate and
// are written there as {"bench": <name>, "rows": [{k: v, ...}, ...]};
// scripts/check_bench_regression.py merges these files and compares
// records_per_sec against the committed baseline.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) : bench_(std::move(bench_name)) {}

  void add_row(std::vector<std::pair<std::string, double>> fields) {
    rows_.push_back(std::move(fields));
  }

  // Writes the collected rows; no-op unless FLOCK_BENCH_JSON is set.
  void write() const {
    const char* path = std::getenv("FLOCK_BENCH_JSON");
    if (path == nullptr || *path == '\0') return;
    std::ofstream out(path);
    out << "{\"bench\": \"" << bench_ << "\", \"rows\": [";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      out << (r ? ", " : "") << "{";
      for (std::size_t f = 0; f < rows_[r].size(); ++f) {
        out << (f ? ", " : "") << "\"" << rows_[r][f].first << "\": " << rows_[r][f].second;
      }
      out << "}";
    }
    out << "]}\n";
    std::cout << "\nbench JSON written to " << path << "\n";
  }

 private:
  std::string bench_;
  std::vector<std::vector<std::pair<std::string, double>>> rows_;
};

inline std::string fmt_acc(const Accuracy& a) {
  return "p=" + Table::num(a.precision, 3) + " r=" + Table::num(a.recall, 3) +
         " f=" + Table::num(a.fscore(), 3);
}

}  // namespace flock::bench
