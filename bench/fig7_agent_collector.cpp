// Fig 7 (appendix): scalability of the telemetry pipeline. The paper
// measures agent CPU at increasing data rates / flow counts and collector
// throughput in connections/sec (100 flow reports per connection). Here we
// measure the same pipeline stages as throughput on one core:
//   * agent: flow observation + aggregation rate,
//   * agent: IPFIX encode rate,
//   * collector: IPFIX decode + ingest rate in batches of 100 records,
//   * collector: drain into an InferenceInput (routing join for passive
//     records).
//
// Expected shape (paper): per-flow agent cost independent of the number of
// concurrent flows; collector handles thousands of 100-record connections
// per second on a few cores.
#include "bench_common.h"

#include <iostream>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "telemetry/agent.h"
#include "telemetry/collector.h"

namespace flock {
namespace {

int run() {
  bench::print_header("Agent / collector scalability", "Fig 7 (appendix)");

  Topology topo = make_fat_tree(8);
  EcmpRouter router(topo);
  Rng rng(4242);
  GroundTruth truth = make_silent_link_drops(topo, 2, DropRateConfig{}, rng);
  TrafficConfig traffic;
  traffic.num_app_flows = bench::scaled_flows(100000);
  const Trace trace = simulate(topo, router, std::move(truth), traffic, ProbeConfig{}, rng);

  Table table({"stage", "items", "seconds", "rate"});

  // --- agent observe + aggregate -------------------------------------------
  {
    AgentConfig cfg;
    Agent agent(topo, cfg);
    Stopwatch watch;
    for (const SimFlow& f : trace.flows) {
      SimFlow passive = f;
      passive.taken_path = -1;
      agent.observe(passive);
    }
    const double secs = watch.seconds();
    table.add_row({"agent observe/aggregate",
                   human_count(static_cast<double>(trace.flows.size())), Table::num(secs, 3),
                   human_count(static_cast<double>(trace.flows.size()) / secs) + "/s"});

    // --- agent encode -------------------------------------------------------
    Stopwatch encode_watch;
    const auto messages = agent.flush(1);
    const double enc_secs = encode_watch.seconds();
    std::size_t bytes = 0;
    for (const auto& m : messages) bytes += m.size();
    table.add_row({"agent IPFIX encode",
                   human_count(static_cast<double>(messages.size())) + " msgs",
                   Table::num(enc_secs, 3),
                   human_count(static_cast<double>(bytes) / enc_secs) + " B/s"});

    // --- collector ingest in 100-record "connections" ----------------------
    Collector collector(topo, router);
    Stopwatch ingest_watch;
    for (const auto& m : messages) {
      if (!collector.ingest(m)) {
        std::cout << "collector rejected a message (bug)\n";
        return 1;
      }
    }
    const double ing_secs = ingest_watch.seconds();
    const double connections =
        static_cast<double>(collector.pending_records()) / 100.0;  // 100 reports/conn (paper)
    table.add_row({"collector decode+ingest", human_count(connections) + " conns",
                   Table::num(ing_secs, 3),
                   human_count(connections / ing_secs) + " conns/s"});

    // --- collector drain (routing join) ------------------------------------
    Stopwatch drain_watch;
    const InferenceInput input = collector.drain_into_input();
    const double drain_secs = drain_watch.seconds();
    table.add_row({"collector routing join",
                   human_count(static_cast<double>(input.num_flows())) + " flows",
                   Table::num(drain_secs, 3),
                   human_count(static_cast<double>(input.num_flows()) / drain_secs) + "/s"});
  }
  table.print(std::cout);

  // --- per-flow agent cost vs concurrent flow count (Fig 7c's shape) -------
  std::cout << "\nagent cost per flow vs number of concurrent flows (expected: flat):\n";
  Table per_flow({"concurrent flows", "ns/flow"});
  for (std::size_t n : {1000u, 10000u, 50000u, 100000u}) {
    const std::size_t count = std::min(n, trace.flows.size());
    AgentConfig cfg;
    Agent agent(topo, cfg);
    Stopwatch watch;
    for (std::size_t i = 0; i < count; ++i) agent.observe(trace.flows[i]);
    per_flow.add_row({human_count(static_cast<double>(count)),
                      Table::num(watch.seconds() * 1e9 / static_cast<double>(count), 0)});
  }
  per_flow.print(std::cout);
  return 0;
}

}  // namespace
}  // namespace flock

int main() { return flock::run(); }
