// Fig 2c: accuracy on silent device failures. Up to 2 devices fail, with
// 25%-100% of each faulty device's links dropping packets (a partial
// fraction resembles a faulty line card, §7.2). Parameters are the Fig 2
// calibration (the paper reuses §7.1 parameters here).
//
// Expected shape (paper): Flock beats NetBouncer and 007 on every input
// type; Flock(INT) reaches ~100% recall vs NetBouncer(INT)'s ~80%;
// Flock(A2) reduces error ~8x vs 007.
#include "bench_common.h"

#include <iostream>
#include <map>

namespace flock {
namespace {

using bench::default_clos;
using bench::scaled_flows;

EnvConfig device_config(std::int64_t flows, double link_fraction, std::uint64_t seed) {
  EnvConfig cfg;
  cfg.clos = default_clos();
  cfg.num_traces = 4;
  cfg.failure = FailureKind::kDeviceFailures;
  cfg.device_link_fraction = link_fraction;
  cfg.rates.bad_min = 1e-3;
  cfg.rates.bad_max = 1e-2;
  cfg.traffic.num_app_flows = flows;
  cfg.probes.packets_per_probe = 100;
  cfg.seed = seed;
  return cfg;
}

int run() {
  bench::print_header("Silent device failures", "Fig 2c");

  // Calibrate on link-drop traces (§6.1: parameters come from random packet
  // drop simulations; only NetBouncer's device threshold would be retuned).
  EnvConfig train_cfg = device_config(scaled_flows(40000), 0.5, 1001);
  train_cfg.failure = FailureKind::kSilentLinkDrops;
  train_cfg.min_failures = 1;
  train_cfg.max_failures = 8;
  const auto train = make_env(train_cfg);

  ViewOptions int_view;
  int_view.telemetry = kTelemetryInt;
  ViewOptions a2_view;
  a2_view.telemetry = kTelemetryA2;
  const auto flock_cal = calibrate_flock(*train, int_view, bench::compact_flock_grid());
  const auto nb_cal = calibrate_netbouncer(*train, int_view, bench::compact_netbouncer_grid());
  const auto z_cal = calibrate_zero07(*train, a2_view, bench::compact_zero07_grid());
  const FlockParams fp = flock_params_from(flock_cal.chosen.params);
  const NetBouncerOptions nbo = netbouncer_options_from(nb_cal.chosen.params);
  const Zero07Options zo = zero07_options_from(z_cal.chosen.params);

  Table table({"scheme", "input", "link-fraction", "precision", "recall", "fscore"});
  std::map<std::string, std::vector<double>> mean_err;
  for (double fraction : {0.25, 0.5, 0.75, 1.0}) {
    const auto test = make_env(device_config(
        scaled_flows(40000), fraction, 3000 + static_cast<std::uint64_t>(fraction * 100)));
    auto run_one = [&](const char* scheme, const char* input, const Localizer& loc,
                       std::uint32_t telemetry) {
      ViewOptions view;
      view.telemetry = telemetry;
      const Accuracy acc = run_scheme_mean(loc, *test, view);
      table.add_row({scheme, input, Table::num(fraction, 2), Table::num(acc.precision),
                     Table::num(acc.recall), Table::num(acc.fscore())});
      mean_err[std::string(scheme) + "(" + input + ")"].push_back(acc.error());
    };
    FlockOptions fopt;
    fopt.params = fp;
    const FlockLocalizer flock(fopt);
    run_one("Flock", "INT", flock, kTelemetryInt);
    run_one("Flock", "A1+P", flock, kTelemetryA1 | kTelemetryP);
    run_one("Flock", "A2", flock, kTelemetryA2);
    const NetBouncerLocalizer nb(nbo);
    run_one("NetBouncer", "INT", nb, kTelemetryInt);
    const Zero07Localizer z(zo);
    run_one("007", "A2", z, kTelemetryA2);
  }
  table.print(std::cout);

  auto avg = [&](const std::string& key) {
    const auto& v = mean_err[key];
    double total = 0;
    for (double e : v) total += e;
    return v.empty() ? 0.0 : total / static_cast<double>(v.size());
  };
  std::cout << "\nmean error (1 - fscore) across fractions:\n";
  for (const char* key : {"Flock(INT)", "Flock(A1+P)", "Flock(A2)", "NetBouncer(INT)",
                          "007(A2)"}) {
    std::cout << "  " << key << ": " << Table::num(avg(key), 3) << "\n";
  }
  const double flock_a2 = avg("Flock(A2)");
  if (flock_a2 > 0) {
    std::cout << "Flock(A2) vs 007(A2) error reduction: "
              << Table::num(avg("007(A2)") / flock_a2, 2) << "x (paper: 8x)\n";
  }
  return 0;
}

}  // namespace
}  // namespace flock

int main() { return flock::run(); }
