// Fig 4b: link flap on the testbed. A link stops serving for a window;
// affected flows buffer, so their RTT spikes but retransmissions do not.
// Localization therefore runs the per-flow latency analysis (§3.2): each
// flow becomes a (t=1, r=[RTT > 10ms]) observation. Parameters are
// recalibrated for the per-flow analysis, as in §7.5.
//
// Expected shape (paper): Flock(INT) reduces error ~1.66x vs
// NetBouncer(INT) and Flock(A2) ~1.8x vs 007(A2); absolute scores are lower
// than Fig 4a because Flock does not model acks crossing the reverse path.
#include "bench_common.h"

#include <iostream>
#include <map>

namespace flock {
namespace {

TestbedEnvConfig flap_config(std::uint64_t seed) {
  TestbedEnvConfig cfg;
  cfg.num_traces = 5;
  cfg.link_flap = true;
  cfg.sim.num_app_flows = flock::bench::scaled_flows(1800);
  cfg.sim.duration_ms = 600;
  cfg.seed = seed;
  return cfg;
}

int run() {
  bench::print_header("Link flap, per-flow latency analysis", "Fig 4b");

  const auto train = make_testbed_env(flap_config(601));
  const auto test = make_testbed_env(flap_config(602));

  ViewOptions int_view;
  int_view.telemetry = kTelemetryInt;
  int_view.per_flow_latency = true;
  int_view.rtt_threshold_ms = 10.0;
  ViewOptions a2_view = int_view;
  a2_view.telemetry = kTelemetryA2;

  // Per-flow analysis needs different hyper-parameters (§7.5): t=1
  // observations want large p_b (probability a flow through a failed
  // component sees a high RTT).
  ParamGrid grid;
  grid.names = {"p_g", "p_b", "rho"};
  grid.values = {{1e-3, 1e-2, 5e-2}, {0.3, 0.6, 0.9}, {1e-4, 1e-3}};
  const auto nb_cal = calibrate_netbouncer(*train, int_view, bench::compact_netbouncer_grid());
  const auto z_cal = calibrate_zero07(*train, a2_view, bench::compact_zero07_grid());

  Table table({"scheme", "input", "precision", "recall", "fscore"});
  std::map<std::string, double> err;
  auto row = [&](const char* scheme, const char* input, const Localizer& loc,
                 const ViewOptions& view) {
    const Accuracy acc = run_scheme_mean(loc, *test, view);
    table.add_row({scheme, input, Table::num(acc.precision), Table::num(acc.recall),
                   Table::num(acc.fscore())});
    err[std::string(scheme) + "(" + input + ")"] = acc.error();
  };
  auto flock_row = [&](const char* input, const ViewOptions& view) {
    const auto cal = calibrate_flock(*train, view, grid);
    FlockOptions fopt;
    fopt.params = flock_params_from(cal.chosen.params);
    std::cout << "Flock(" << input << ") per-flow params: p_g=" << cal.chosen.params[0]
              << " p_b=" << cal.chosen.params[1] << " rho=" << cal.chosen.params[2] << "\n";
    row("Flock", input, FlockLocalizer(fopt), view);
  };
  flock_row("INT", int_view);
  ViewOptions a2p_view = int_view;
  a2p_view.telemetry = kTelemetryA2 | kTelemetryP;
  flock_row("A2+P", a2p_view);
  flock_row("A2", a2_view);
  row("NetBouncer", "INT", NetBouncerLocalizer(netbouncer_options_from(nb_cal.chosen.params)),
      int_view);
  row("007", "A2", Zero07Localizer(zero07_options_from(z_cal.chosen.params)), a2_view);
  table.print(std::cout);

  auto ratio = [&](const std::string& base, const std::string& ours) {
    return err[ours] > 0 ? err[base] / err[ours] : std::numeric_limits<double>::infinity();
  };
  std::cout << "\nerror reduction Flock(INT) vs NetBouncer(INT): "
            << Table::num(ratio("NetBouncer(INT)", "Flock(INT)"), 2) << "x (paper: 1.66x)\n";
  std::cout << "error reduction Flock(A2)  vs 007(A2)        : "
            << Table::num(ratio("007(A2)", "Flock(A2)"), 2) << "x (paper: 1.8x)\n";
  return 0;
}

}  // namespace
}  // namespace flock

int main() { return flock::run(); }
