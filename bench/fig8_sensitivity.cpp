// Fig 8a/8b (appendix): Flock's sensitivity to its hyper-parameters.
//   8a: F-score as p_b sweeps for several p_g values — precision rises and
//       recall falls as either grows, with a broad high-accuracy plateau.
//   8b: effect of the prior rho — stronger priors (smaller rho) trade recall
//       for a significant reduction in false positives.
#include "bench_common.h"

#include <iostream>

namespace flock {
namespace {

using bench::default_clos;
using bench::scaled_flows;

int run() {
  bench::print_header("Parameter sensitivity", "Fig 8a (p_g, p_b) / Fig 8b (priors)");

  EnvConfig cfg;
  cfg.clos = default_clos();
  cfg.num_traces = 5;
  cfg.min_failures = 1;
  cfg.max_failures = 6;
  cfg.rates.bad_min = 1e-3;
  cfg.rates.bad_max = 1e-2;
  cfg.traffic.num_app_flows = scaled_flows(30000);
  cfg.probes.packets_per_probe = 100;
  cfg.seed = 8800;
  const auto env = make_env(cfg);
  ViewOptions view;
  view.telemetry = kTelemetryA1 | kTelemetryA2 | kTelemetryP;

  std::cout << "Fig 8a: F-score, one row per p_b, one column per p_g (rho=1e-3):\n";
  const std::vector<double> pgs = {1e-4, 3e-4, 5e-4, 7e-4};
  std::vector<std::string> headers{"p_b \\ p_g"};
  for (double pg : pgs) headers.push_back(Table::num(pg, 5));
  Table fig8a(headers);
  for (double pb : {2e-3, 4e-3, 8e-3, 2e-2, 5e-2, 1e-1}) {
    std::vector<std::string> row{Table::num(pb, 3)};
    for (double pg : pgs) {
      FlockOptions opt;
      opt.params.p_g = pg;
      opt.params.p_b = pb;
      opt.params.rho = 1e-3;
      row.push_back(Table::num(run_scheme_mean(FlockLocalizer(opt), *env, view).fscore()));
    }
    fig8a.add_row(row);
  }
  fig8a.print(std::cout);

  std::cout << "\nFig 8b: precision/recall as the prior rho varies (p_g=1e-4, p_b=6e-3):\n";
  Table fig8b({"rho", "prior cost/link", "precision", "recall", "fscore"});
  for (double rho : {1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6}) {
    FlockOptions opt;
    opt.params.p_g = 1e-4;
    opt.params.p_b = 6e-3;
    opt.params.rho = rho;
    const Accuracy acc = run_scheme_mean(FlockLocalizer(opt), *env, view);
    fig8b.add_row({Table::num(rho, 6), Table::num(logit(rho), 1), Table::num(acc.precision),
                   Table::num(acc.recall), Table::num(acc.fscore())});
  }
  fig8b.print(std::cout);
  std::cout << "\nExpected: higher p_g/p_b and stronger priors increase precision at the\n"
               "cost of recall; accuracy stays high over a broad parameter region.\n";
  return 0;
}

}  // namespace
}  // namespace flock

int main() { return flock::run(); }
