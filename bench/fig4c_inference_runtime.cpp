// Fig 4c: inference runtime vs topology size — Flock against Sherlock's
// PGM search, plus the ablation of Flock's two accelerations:
//   * "Flock"            = greedy + JLE
//   * "Flock greedy-only" = greedy search, each neighbor evaluated from
//                           scratch (no JLE)
//   * "Flock JLE-only"    = exhaustive bounded-K search accelerated by JLE
//                           (Sherlock + JLE, Algorithm 3)
//   * "Sherlock"          = exhaustive bounded-K search, no JLE
//
// Sherlock's full runtimes are estimated by extrapolating a budgeted
// partial run, exactly how the paper extrapolates its 19-day figure.
//
// Expected shape (paper): each optimization alone buys ~100x; together
// >10^4x. Flock stays in seconds while Sherlock grows superlinearly.
#include "bench_common.h"

#include <cmath>
#include <iostream>

#include "common/stopwatch.h"
#include "common/strings.h"

namespace flock {
namespace {

struct SizePoint {
  std::int32_t fat_tree_k;
  std::int64_t flows;
};

int run() {
  bench::print_header("Inference runtime: Flock vs Sherlock, greedy/JLE ablation", "Fig 4c");

  FlockParams params;
  params.p_g = 1e-4;
  params.p_b = 6e-3;
  params.rho = 1e-3;

  const std::vector<SizePoint> sizes = {{4, 4000}, {6, 12000}, {8, 30000}, {10, 60000}};
  Table table({"servers", "components", "flows", "Flock", "greedy-only", "JLE-only(K=2)",
               "Sherlock(K=2)", "speedup"});

  for (const SizePoint& size : sizes) {
    Topology topo = make_fat_tree(size.fat_tree_k);
    EcmpRouter router(topo);
    Rng rng(7000 + static_cast<std::uint64_t>(size.fat_tree_k));
    DropRateConfig rates;
    rates.bad_min = 5e-3;
    GroundTruth truth = make_silent_link_drops(topo, 2, rates, rng);
    TrafficConfig traffic;
    traffic.num_app_flows = bench::scaled_flows(size.flows);
    ProbeConfig probes;
    probes.packets_per_probe = 100;
    const Trace trace = simulate(topo, router, std::move(truth), traffic, probes, rng);
    ViewOptions view;
    view.telemetry = kTelemetryA1 | kTelemetryA2 | kTelemetryP;
    const InferenceInput input = make_view(topo, router, trace, view);

    FlockOptions with_jle;
    with_jle.params = params;
    const auto flock = FlockLocalizer(with_jle).localize(input);

    FlockOptions no_jle = with_jle;
    no_jle.use_jle = false;
    const auto greedy_only = FlockLocalizer(no_jle).localize(input);

    // Exhaustive searches with a node budget; extrapolate to the full tree.
    const auto n = static_cast<double>(topo.num_components());
    const double full_nodes = 1.0 + n + n * (n - 1) / 2.0;  // |H| <= 2
    auto extrapolate = [&](const SherlockResult& partial) {
      if (partial.completed) return partial.seconds;
      return partial.seconds * full_nodes / static_cast<double>(partial.nodes_visited);
    };
    SherlockOptions jle_only;
    jle_only.params = params;
    jle_only.max_failures = 2;
    jle_only.use_jle = true;
    jle_only.node_budget = 20000;
    const auto jle_partial = SherlockLocalizer(jle_only).localize_detailed(input);
    // JLE scores a whole frontier per flipped node, so its effective node
    // count is the interior tree (depth <= K-1) at O(D*T) per node plus O(1)
    // per frontier read; extrapolation uses the same visited-node scaling.
    const double jle_time = extrapolate(jle_partial);

    SherlockOptions plain = jle_only;
    plain.use_jle = false;
    plain.node_budget = 2000;
    const auto plain_partial = SherlockLocalizer(plain).localize_detailed(input);
    const double sherlock_time = extrapolate(plain_partial);

    const double speedup = flock.seconds > 0 ? sherlock_time / flock.seconds : 0;
    table.add_row({Table::integer(static_cast<long long>(topo.hosts().size())),
                   Table::integer(topo.num_components()),
                   Table::integer(static_cast<long long>(input.num_flows())),
                   Table::num(flock.seconds, 3) + "s",
                   Table::num(greedy_only.seconds, 3) + "s",
                   Table::num(jle_time, 2) + "s" + (jle_partial.completed ? "" : "*"),
                   Table::num(sherlock_time, 1) + "s" + (plain_partial.completed ? "" : "*"),
                   human_count(speedup) + "x"});
    if (flock.predicted != greedy_only.predicted) {
      std::cout << "WARNING: JLE and non-JLE greedy disagreed (bug!)\n";
    }
  }
  table.print(std::cout);
  std::cout << "\n* extrapolated from a budgeted partial run (the paper extrapolates\n"
               "  Sherlock's 19-day estimate the same way). Flock scans the same\n"
               "  hypothesis space as greedy-only; JLE-only (Algorithm 3) accelerates\n"
               "  Sherlock's exhaustive K=2 search by ~n.\n";
  return 0;
}

}  // namespace
}  // namespace flock

int main() { return flock::run(); }
