// End-to-end network soak: localhost UDP senders vs the ingest server, the
// full pipeline downstream, deliberate overload and deliberate garbage.
//
// Sender threads (one UDP socket each = one accounting agent each) blast a
// pre-encoded IPFIX workload, salted with malformed datagrams of every
// quarantine reason, at a UdpIngestServer feeding StreamingPipeline::offer —
// the lossy edge — through a deliberately small ingest queue with admission
// control armed. The bench reports sustained records/sec through the wire
// path and self-gates EXACT conservation at every layer it can see:
//
//   server:   datagrams_received = quarantined + admission_drops + offered
//   pipeline: offered = accepted + dropped + rejected_closed  (= server offered)
//   epochs:   records_decoded = joined flows + unresolved, summed over epochs
//
// (What the kernel sheds before recvmmsg is invisible by design — senders
// count their side, and received <= sent is also checked.)
//
// Environments without a bindable loopback socket print a notice and exit 0
// without JSON; the regression gate treats the soak baseline as optional.
#include <atomic>
#include <thread>
#include <unordered_map>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "net/ingest_server.h"
#include "net/udp_socket.h"
#include "pipeline/pipeline.h"
#include "telemetry/agent.h"
#include "telemetry/ipfix.h"

namespace {

using namespace flock;

struct SoakWorkload {
  std::vector<std::vector<std::uint8_t>> messages;  // valid IPFIX datagrams
  std::uint64_t total_records = 0;
};

SoakWorkload build_workload(const Topology& topo, std::int64_t num_flows) {
  SoakWorkload w;
  EcmpRouter router(topo);
  Rng rng(23);
  DropRateConfig rates;
  rates.bad_min = 5e-3;
  rates.bad_max = 1e-2;
  GroundTruth truth = make_silent_link_drops(topo, 2, rates, rng);
  TrafficConfig traffic;
  traffic.num_app_flows = num_flows;
  ProbeConfig probes;
  probes.enabled = false;
  const Trace trace = simulate(topo, router, std::move(truth), traffic, probes, rng);
  std::unordered_map<NodeId, Agent> agents;
  for (NodeId h : topo.hosts()) {
    AgentConfig cfg;
    cfg.observation_domain = static_cast<std::uint32_t>(h);
    agents.emplace(h, Agent(topo, cfg));
  }
  for (const SimFlow& f : trace.flows) {
    SimFlow passive = f;
    passive.taken_path = -1;
    agents.at(f.src_host).observe(passive);
    ++w.total_records;
  }
  for (NodeId h : topo.hosts()) {
    for (auto& msg : agents.at(h).flush(1700000000)) {
      w.messages.push_back(std::move(msg));
    }
  }
  return w;
}

// Wait until the server's receive counter goes quiet: the kernel buffer is
// drained and nothing more is in flight.
void wait_for_drain(const UdpIngestServer& server) {
  std::uint64_t last = server.stats().datagrams_received;
  int quiet_polls = 0;
  while (quiet_polls < 4) {  // 4 x 50ms with no growth = drained
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const std::uint64_t now = server.stats().datagrams_received;
    quiet_polls = now == last ? quiet_polls + 1 : 0;
    last = now;
  }
}

}  // namespace

int main() {
  using namespace flock::bench;

  print_header("Network ingest soak: UDP senders -> server -> pipeline",
               "the §5 deployment loop behind a real socket, under overload");

  const Topology topo = make_three_tier_clos(default_clos());
  const SoakWorkload workload = build_workload(topo, scaled_flows(120000));
  std::cout << "workload: " << workload.messages.size() << " datagrams, "
            << workload.total_records << " flow records\n\n";

  // Probe loopback once up front so sandboxed environments skip cleanly.
  {
    UdpSocket probe;
    std::string error;
    if (!probe.open(kLoopbackAddr, 0, &error)) {
      std::cout << "SKIPPED: no usable loopback UDP socket (" << error << ")\n";
      return 0;  // no JSON written; the baseline marks this bench optional
    }
  }

  Table table({"policy", "sent", "received", "quarantined", "admission", "q drops",
               "records/s"});
  BenchJson json("pipeline_soak");
  constexpr int kSenders = 3;
  constexpr int kMalformedPerKind = 60;  // per sender, per quarantine reason

  for (const AdmissionPolicy policy :
       {AdmissionPolicy::kDropNewest, AdmissionPolicy::kDropByAgentShare}) {
    EcmpRouter router(topo);
    router.build_all_tor_pairs();

    PipelineConfig config;
    config.num_shards = 2;
    config.localizer.params.p_g = 1e-4;
    config.localizer.params.p_b = 6e-3;
    config.localizer.params.rho = 1e-3;
    config.epoch.record_limit = workload.total_records / 4 + 1;
    config.ingest_capacity = 256;  // deliberately tight: overload must drop
    config.localizer_threads = 1;
    StreamingPipeline pipeline(topo, router, config);

    UdpIngestServerConfig server_config;
    server_config.receiver_threads = 2;
    server_config.batch_size = 32;
    server_config.admission_high_watermark = 192;
    server_config.admission = policy;
    UdpIngestServer server(
        server_config, [&pipeline](IngestDatagram d) { return pipeline.offer(std::move(d)); },
        [&pipeline] { return pipeline.ingest_depth(); });
    std::string error;
    if (!server.start(&error)) {
      std::cout << "SKIPPED: ingest server failed to start (" << error << ")\n";
      return 0;
    }
    const UdpEndpoint to = server.endpoint();

    Stopwatch watch;  // timed region: first send -> socket drained + pipeline done
    std::atomic<std::uint64_t> sent{0};
    std::vector<std::thread> senders;
    for (int t = 0; t < kSenders; ++t) {
      senders.emplace_back([&, t] {
        UdpSocket socket;
        if (!socket.open_unbound()) return;
        std::uint64_t my_sent = 0;
        int malformed_budget = 3 * kMalformedPerKind;
        // Each sender walks its stride of the shared workload, salting in
        // malformed datagrams round-robin across the three reasons.
        for (std::size_t i = static_cast<std::size_t>(t); i < workload.messages.size();
             i += kSenders) {
          const auto& msg = workload.messages[i];
          if (socket.send_to(to, msg.data(), msg.size())) ++my_sent;
          if (malformed_budget > 0) {
            --malformed_budget;
            std::vector<std::uint8_t> garbage = msg;
            switch (malformed_budget % 3) {
              case 0: garbage.resize(kIpfixHeaderBytes / 2); break;  // short
              case 1: garbage[1] = 9; break;                        // bad version
              default: garbage.push_back(0xEE); break;              // length mismatch
            }
            if (socket.send_to(to, garbage.data(), garbage.size())) ++my_sent;
          }
        }
        sent.fetch_add(my_sent, std::memory_order_relaxed);
      });
    }
    for (auto& t : senders) t.join();
    wait_for_drain(server);
    server.stop();
    pipeline.stop();
    const double seconds = watch.seconds();

    const NetIngestStats net = server.stats();
    PipelineStats stats = pipeline.stats();
    server.fold_into(stats);

    // --- exact conservation gates, layer by layer ---------------------------
    bool ok = true;
    auto gate = [&ok](bool condition, const char* what) {
      if (!condition) {
        std::cerr << "CONSERVATION VIOLATION: " << what << "\n";
        ok = false;
      }
    };
    gate(net.datagrams_received <= sent.load(), "received <= sent");
    gate(net.datagrams_received ==
             net.quarantined() + net.admission_drops + net.offered,
         "server: received = quarantined + admission_drops + offered");
    gate(net.offered == stats.offered,
         "handoff: server offered = pipeline offered");
    gate(stats.offered == stats.accepted + stats.dropped + stats.rejected_closed,
         "pipeline: offered = accepted + dropped + rejected_closed");
    gate(net.offer_rejected == stats.dropped + stats.rejected_closed,
         "handoff: server offer_rejected = pipeline dropped + rejected_closed");
    gate(stats.dispatched == stats.accepted, "dispatch: dispatched = accepted");
    std::uint64_t joined = 0, unresolved = 0;
    for (const auto& e : pipeline.results().completed()) {
      joined += e.flows;
      unresolved += e.unresolved;
    }
    gate(joined + unresolved == stats.records_decoded,
         "epochs: joined + unresolved = records decoded");
    std::uint64_t agent_datagrams = 0;
    for (const AgentAccount& a : server.agent_accounts()) agent_datagrams += a.datagrams;
    gate(agent_datagrams == net.datagrams_received,
         "agents: per-agent datagrams sum to received");
    gate(net.agents == kSenders, "agents: one accounting entry per sender socket");
    gate(net.quarantined() > 0, "workload: malformed datagrams actually arrived");
    // Epochs flow to the tracker in merge order; the bounded pending buffer
    // may reorder but must never overflow under a single in-order scheduler.
    gate(stats.tracker_dropped_epochs == 0,
         "tracker: no epochs dropped by the bounded out-of-order buffer");
    if (!ok) return 1;

    const bool overloaded = net.admission_drops + stats.dropped > 0;
    if (!overloaded) {
      std::cout << "note: no overload drops this run (fast drain); conservation still exact\n";
    }
    const double records_per_sec = static_cast<double>(stats.records_decoded) / seconds;
    table.add_row({to_string(policy), Table::integer(static_cast<long long>(sent.load())),
                   Table::integer(static_cast<long long>(net.datagrams_received)),
                   Table::integer(static_cast<long long>(net.quarantined())),
                   Table::integer(static_cast<long long>(net.admission_drops)),
                   Table::integer(static_cast<long long>(stats.dropped)),
                   Table::num(records_per_sec, 0)});
    json.add_row({{"policy", static_cast<double>(policy)},
                  {"conservation", 1.0},  // identity field: gates above all held
                  {"records_per_sec", records_per_sec}});
  }

  table.print(std::cout);
  std::cout << "\n(conservation is exact at every layer; kernel-side drops appear only as\n"
               "received < sent. records/s is decoded records over send->drain->stop.)\n";
  json.write();
  return 0;
}
