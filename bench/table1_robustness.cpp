// Table 1: robustness of each scheme's calibration when the training
// environment differs from the test environment along four axes:
//   (a) different topology        — calibrate on the simulated Clos with
//       random drops, test on the ~20x-smaller testbed with misconfigured
//       WRED queues (this is also the paper's "different failure scenario"
//       pairing for the D row of that column),
//   (b) different failure rate    — train failed links drop 5-10%, test 0.1-1%,
//   (c) different monitoring interval — train on 4x fewer flows,
//   (d) different failure type    — train on link drops, test on device
//       failures.
// For every axis we report D (calibrated on the different environment) and
// S (calibrated on the same environment), plus the aggregate mean F-score.
//
// Expected shape (paper): Flock loses <2% aggregate accuracy from D
// calibration; 007 ~6%; NetBouncer ~31%.
#include "bench_common.h"

#include <iostream>
#include <map>

namespace flock {
namespace {

using bench::default_clos;
using bench::scaled_flows;

EnvConfig clos_config(std::int64_t flows, std::uint64_t seed) {
  EnvConfig cfg;
  cfg.clos = default_clos();
  cfg.num_traces = 4;
  cfg.min_failures = 1;
  cfg.max_failures = 6;
  cfg.rates.bad_min = 1e-3;
  cfg.rates.bad_max = 1e-2;
  cfg.traffic.num_app_flows = flows;
  cfg.probes.packets_per_probe = 100;
  cfg.seed = seed;
  return cfg;
}

struct Scheme {
  std::string name;
  std::uint32_t telemetry;
};

struct Cell {
  Accuracy d;
  Accuracy s;
};

int run() {
  bench::print_header("Parameter-calibration robustness (D vs S)", "Table 1");

  const std::vector<Scheme> schemes = {
      {"Flock(A1+A2+P)", kTelemetryA1 | kTelemetryA2 | kTelemetryP},
      {"Flock(A2)", kTelemetryA2},
      {"Flock(INT)", kTelemetryInt},
      {"007(A2)", kTelemetryA2},
      {"NetBouncer(INT)", kTelemetryInt},
  };

  auto calibrate = [&](const Scheme& scheme, const ExperimentEnv& train)
      -> std::vector<double> {
    ViewOptions view;
    view.telemetry = scheme.telemetry;
    if (scheme.name.rfind("Flock", 0) == 0) {
      return calibrate_flock(train, view, bench::compact_flock_grid()).chosen.params;
    }
    if (scheme.name.rfind("NetBouncer", 0) == 0) {
      return calibrate_netbouncer(train, view, bench::compact_netbouncer_grid()).chosen.params;
    }
    return calibrate_zero07(train, view, bench::compact_zero07_grid()).chosen.params;
  };
  auto evaluate = [&](const Scheme& scheme, const std::vector<double>& params,
                      const ExperimentEnv& test) {
    ViewOptions view;
    view.telemetry = scheme.telemetry;
    std::unique_ptr<Localizer> loc;
    if (scheme.name.rfind("Flock", 0) == 0) {
      FlockOptions opt;
      opt.params = flock_params_from(params);
      loc = std::make_unique<FlockLocalizer>(opt);
    } else if (scheme.name.rfind("NetBouncer", 0) == 0) {
      loc = std::make_unique<NetBouncerLocalizer>(netbouncer_options_from(params));
    } else {
      loc = std::make_unique<Zero07Localizer>(zero07_options_from(params));
    }
    return run_scheme_mean(*loc, test, view);
  };

  // Reference training environment (the default §5.2 training set).
  const auto base_train = make_env(clos_config(scaled_flows(30000), 9001));

  // Axis environments: {different-train, test} pairs.
  struct Axis {
    std::string name;
    std::unique_ptr<ExperimentEnv> diff_train;
    std::unique_ptr<ExperimentEnv> test;
    const ExperimentEnv* same_train;  // if null, test itself with another seed
    std::unique_ptr<ExperimentEnv> same_train_storage;
  };
  std::vector<Axis> axes;

  {  // (a) different topology + failure scenario: Clos-sim -> testbed queue.
    Axis axis;
    axis.name = "topology";
    TestbedEnvConfig tb;
    tb.num_traces = 4;
    tb.sim.num_app_flows = scaled_flows(1800);
    tb.seed = 9101;
    axis.same_train_storage = make_testbed_env(tb);
    tb.seed = 9102;
    axis.test = make_testbed_env(tb);
    axis.same_train = axis.same_train_storage.get();
    axes.push_back(std::move(axis));
  }
  {  // (b) different failure rate.
    Axis axis;
    axis.name = "failure rate";
    EnvConfig hot = clos_config(scaled_flows(30000), 9201);
    hot.rates.bad_min = 5e-3;  // train on significantly harder failures (5x)
    hot.rates.bad_max = 5e-2;
    axis.diff_train = make_env(hot);
    axis.test = make_env(clos_config(scaled_flows(30000), 9202));
    axis.same_train = base_train.get();
    axes.push_back(std::move(axis));
  }
  {  // (c) different monitoring interval (4x fewer flows in training).
    Axis axis;
    axis.name = "monitoring";
    axis.diff_train = make_env(clos_config(scaled_flows(30000) / 4, 9301));
    axis.test = make_env(clos_config(scaled_flows(30000), 9302));
    axis.same_train = base_train.get();
    axes.push_back(std::move(axis));
  }
  {  // (d) different failure type (train: link drops, test: device failures).
    Axis axis;
    axis.name = "failure type";
    EnvConfig dev = clos_config(scaled_flows(30000), 9401);
    dev.failure = FailureKind::kDeviceFailures;
    dev.device_link_fraction = 0.5;
    axis.test = make_env(dev);
    dev.seed = 9402;
    axis.same_train_storage = make_env(dev);
    axis.same_train = axis.same_train_storage.get();
    axes.push_back(std::move(axis));
  }

  Table table({"scheme", "cal", "topology p/r", "fail-rate p/r", "monitoring p/r",
               "fail-type p/r", "aggregate F"});
  for (const Scheme& scheme : schemes) {
    std::map<std::string, Cell> cells;
    for (Axis& axis : axes) {
      const ExperimentEnv& diff_train = axis.diff_train ? *axis.diff_train : *base_train;
      const auto d_params = calibrate(scheme, diff_train);
      const auto s_params = calibrate(scheme, *axis.same_train);
      cells[axis.name].d = evaluate(scheme, d_params, *axis.test);
      cells[axis.name].s = evaluate(scheme, s_params, *axis.test);
    }
    for (const bool same : {false, true}) {
      std::vector<std::string> row{scheme.name, same ? "S" : "D"};
      double fsum = 0;
      for (const char* axis : {"topology", "failure rate", "monitoring", "failure type"}) {
        const Accuracy& acc = same ? cells[axis].s : cells[axis].d;
        row.push_back(Table::num(acc.precision, 2) + "/" + Table::num(acc.recall, 2));
        fsum += acc.fscore();
      }
      row.push_back(Table::num(fsum / 4.0));
      table.add_row(row);
    }
  }
  table.print(std::cout);
  return 0;
}

}  // namespace
}  // namespace flock

int main() { return flock::run(); }
