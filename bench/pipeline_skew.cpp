// Streaming pipeline under Zipf-skewed rack load: work stealing vs the pure
// rack-affine partition, 1 -> 8 shards.
//
// The paper's deployment (§5) assumes pods ≫ shards, so partitioning by
// source rack balances the collector shards. Real traffic is rack-skewed;
// here each rack's record volume follows Zipf(s=1.2) over the 18 ToRs of the
// default Clos, which puts ~36% of all records on the hottest rack and
// leaves most shards idle while one drowns. Every configuration runs the
// identical skewed datagram sequence twice — stealing disabled, then enabled
// — and reports the throughput ratio.
//
// The stealing win is shard parallelism, so it needs cores: with >= 3
// hardware threads the 4-shard ratio must reach 1.3x (CI enforces this); on
// 1-2 cores the run only enforces that stealing is not a regression (>=
// 0.75x, noise floor included) since there is no spare core for a thief to
// run on.
#include <cmath>
#include <map>
#include <thread>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "pipeline/pipeline.h"
#include "telemetry/agent.h"
#include "telemetry/ipfix.h"

int main() {
  using namespace flock;
  using namespace flock::bench;

  print_header("Streaming pipeline under Zipf(1.2) rack skew: work stealing on/off",
               "the §5 service when pods >> shards is violated");

  const Topology topo = make_three_tier_clos(default_clos());
  const std::int64_t num_flows = scaled_flows(40000);
  constexpr double kZipfExponent = 1.2;

  // Base workload: one passive telemetry burst, uniform across hosts.
  std::vector<IngestDatagram> base;
  {
    EcmpRouter router(topo);
    Rng rng(29);
    DropRateConfig rates;
    rates.bad_min = 5e-3;
    rates.bad_max = 1e-2;
    GroundTruth truth = make_silent_link_drops(topo, 2, rates, rng);
    TrafficConfig traffic;
    traffic.num_app_flows = num_flows;
    ProbeConfig probes;
    probes.enabled = false;
    const Trace trace = simulate(topo, router, std::move(truth), traffic, probes, rng);
    std::unordered_map<NodeId, Agent> agents;
    for (NodeId h : topo.hosts()) {
      AgentConfig cfg;
      cfg.observation_domain = static_cast<std::uint32_t>(h);
      agents.emplace(h, Agent(topo, cfg));
    }
    for (const SimFlow& f : trace.flows) {
      SimFlow passive = f;
      passive.taken_path = -1;
      agents.at(f.src_host).observe(passive);
    }
    for (NodeId h : topo.hosts()) {
      for (auto& msg : agents.at(h).flush(1700000000)) {
        base.push_back({node_to_addr(h), std::move(msg)});
      }
    }
  }

  // Skew it: the rack of Zipf rank k (racks ranked by ToR node id) gets
  // weight k^-1.2; each datagram is replicated proportionally, so per-rack
  // record volume is Zipf(1.2) and the hottest rack carries ~36% of records.
  std::map<NodeId, std::size_t> rack_rank;  // ToR node id -> dense Zipf rank
  for (NodeId h : topo.hosts()) rack_rank.emplace(topo.tor_of(h), 0);
  {
    std::size_t rank = 0;
    for (auto& [tor, r] : rack_rank) r = rank++;
  }
  const std::size_t num_tors = rack_rank.size();
  std::vector<IngestDatagram> datagrams;
  std::uint64_t total_records = 0;
  for (const IngestDatagram& d : base) {
    const std::size_t rank = rack_rank.at(topo.tor_of(addr_to_node(d.source_addr)));
    const double weight = std::pow(static_cast<double>(rank + 1), -kZipfExponent);
    const auto copies = std::max<std::int64_t>(1, std::llround(25.0 * weight));
    const std::uint64_t records = peek_record_count(d.bytes).value_or(0);
    for (std::int64_t c = 0; c < copies; ++c) {
      datagrams.push_back(d);
      total_records += records;
    }
  }
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "workload: " << datagrams.size() << " datagrams, " << total_records
            << " flow records across " << num_tors << " racks (Zipf " << kZipfExponent
            << "), " << cores << " hardware threads\n\n";

  Table table({"shards", "steal", "epochs", "stolen", "seconds", "records/s", "steal gain"});
  BenchJson json("pipeline_skew");
  constexpr int kReps = 5;  // best-of-5: scheduling noise dominates short runs
  double gain_at_4 = 0.0;
  for (const std::int32_t shards : {1, 2, 4, 8}) {
    double off_seconds = 0.0;
    for (const bool steal : {false, true}) {
      double best_seconds = 0.0;
      std::uint64_t epochs_closed = 0, stolen = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        EcmpRouter router(topo);
        router.build_all_tor_pairs();  // steady-state service: routes already interned

        PipelineConfig config;
        config.num_shards = shards;
        config.steal_batch = steal ? 256 : 0;
        config.localizer.params.p_g = 1e-4;
        config.localizer.params.p_b = 6e-3;
        config.localizer.params.rho = 1e-3;
        config.epoch.record_limit = total_records / 4 + 1;
        config.shard_queue_capacity = 4096;
        config.localizer_threads = 1;

        StreamingPipeline pipeline(topo, router, config);
        Stopwatch watch;  // timed region: ingest -> final merged diagnosis
        const std::size_t half = datagrams.size() / 2;
        auto feed = [&pipeline, &datagrams](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) pipeline.offer_wait(datagrams[i]);
        };
        std::thread producer_a(feed, 0, half);
        std::thread producer_b(feed, half, datagrams.size());
        producer_a.join();
        producer_b.join();
        pipeline.stop();
        const double seconds = watch.seconds();

        const auto stats = pipeline.stats();
        if (stats.records_decoded != total_records || stats.dropped != 0 ||
            pipeline.results().completed_epochs() == 0) {
          std::cerr << "workload not fully processed: decoded " << stats.records_decoded
                    << "/" << total_records << ", dropped " << stats.dropped << "\n";
          return 1;
        }
        if (!steal && stats.batches_stolen != 0) {
          std::cerr << "steal_batch=0 must disable stealing\n";
          return 1;
        }
        if (rep == 0 || seconds < best_seconds) {
          best_seconds = seconds;
          epochs_closed = stats.epochs_closed;
          stolen = stats.batches_stolen;
        }
      }
      if (!steal) off_seconds = best_seconds;
      const double gain = steal ? off_seconds / best_seconds : 1.0;
      if (steal && shards == 4) gain_at_4 = gain;
      table.add_row({Table::integer(shards), steal ? "on" : "off",
                     Table::integer(static_cast<long long>(epochs_closed)),
                     Table::integer(static_cast<long long>(stolen)),
                     Table::num(best_seconds, 3),
                     Table::num(static_cast<double>(total_records) / best_seconds, 0),
                     steal ? Table::num(gain, 2) : "-"});
      json.add_row({{"shards", static_cast<double>(shards)},
                    {"steal", steal ? 1.0 : 0.0},
                    {"seconds", best_seconds},
                    {"records_per_sec", static_cast<double>(total_records) / best_seconds}});
    }
  }
  table.print(std::cout);
  json.write();

  const double required = cores >= 3 ? 1.3 : 0.75;
  std::cout << "\nsteal gain at 4 shards: " << Table::num(gain_at_4, 2) << " (required >= "
            << required << " on " << cores << " hardware threads";
  if (cores < 3) {
    std::cout << "; stealing is shard *parallelism* — with no spare core for a thief,"
                 "\n parity is the ceiling and only a regression would be a failure";
  }
  std::cout << ")\n";
  if (gain_at_4 < required) {
    std::cerr << "FAIL: steal gain " << gain_at_4 << " below required " << required << "\n";
    return 1;
  }
  return 0;
}
