// Fig 5a/5b: accuracy on "irregular" Clos networks with a fraction of
// switch links omitted (§7.6). Parameters are recalibrated per topology
// (the topology is known in advance). Also includes Flock(P) — passive-only
// input that no baseline can ingest — whose accuracy *improves* as
// irregularity breaks ECMP equivalence classes.
//
// Expected shape (paper): Flock robust across 0-20% omitted; 007 degrades
// (irregularity acts like traffic skew); Flock(P) precision rises with
// omission fraction.
#include "bench_common.h"

#include <iostream>

namespace flock {
namespace {

using bench::default_clos;
using bench::scaled_flows;

EnvConfig irregular_config(std::int64_t flows, std::uint64_t seed) {
  EnvConfig cfg;
  cfg.clos = default_clos();
  cfg.num_traces = 5;
  cfg.min_failures = 1;
  cfg.max_failures = 6;
  cfg.rates.bad_min = 1e-3;
  cfg.rates.bad_max = 1e-2;
  cfg.traffic.num_app_flows = flows;
  cfg.probes.packets_per_probe = 100;
  cfg.seed = seed;
  return cfg;
}

int run() {
  bench::print_header("Irregular Clos: accuracy vs fraction of omitted links",
                      "Fig 5a (precision) / Fig 5b (recall)");

  Table precision({"omitted", "Flock(INT)", "Flock(A2+P)", "Flock(A2)", "Flock(P)",
                   "NetBouncer(INT)", "007(A2)"});
  Table recall = precision;

  for (double omit : {0.0, 0.05, 0.10, 0.15, 0.20}) {
    const auto train = make_irregular_env(
        irregular_config(scaled_flows(30000), 8100 + static_cast<std::uint64_t>(omit * 100)),
        omit);
    const auto test = make_irregular_env(
        irregular_config(scaled_flows(30000), 8200 + static_cast<std::uint64_t>(omit * 100)),
        omit);

    std::vector<std::string> prow{Table::num(omit * 100, 0) + "%"};
    std::vector<std::string> rrow = prow;
    auto add = [&](const Accuracy& acc) {
      prow.push_back(Table::num(acc.precision));
      rrow.push_back(Table::num(acc.recall));
    };

    auto flock_acc = [&](std::uint32_t telemetry) {
      ViewOptions view;
      view.telemetry = telemetry;
      const auto cal = calibrate_flock(*train, view, bench::compact_flock_grid());
      FlockOptions opt;
      opt.params = flock_params_from(cal.chosen.params);
      return run_scheme_mean(FlockLocalizer(opt), *test, view);
    };
    add(flock_acc(kTelemetryInt));
    add(flock_acc(kTelemetryA2 | kTelemetryP));
    add(flock_acc(kTelemetryA2));
    add(flock_acc(kTelemetryP));

    ViewOptions int_view;
    int_view.telemetry = kTelemetryInt;
    const auto nb_cal = calibrate_netbouncer(*train, int_view, bench::compact_netbouncer_grid());
    add(run_scheme_mean(NetBouncerLocalizer(netbouncer_options_from(nb_cal.chosen.params)),
                        *test, int_view));
    ViewOptions a2_view;
    a2_view.telemetry = kTelemetryA2;
    const auto z_cal = calibrate_zero07(*train, a2_view, bench::compact_zero07_grid());
    add(run_scheme_mean(Zero07Localizer(zero07_options_from(z_cal.chosen.params)), *test,
                        a2_view));

    precision.add_row(prow);
    recall.add_row(rrow);
  }
  std::cout << "precision (Fig 5a):\n";
  precision.print(std::cout);
  std::cout << "\nrecall (Fig 5b):\n";
  recall.print(std::cout);
  std::cout << "\n(A1 omitted: NetBouncer's probing plan assumes a regular Clos, §7.6.)\n";
  return 0;
}

}  // namespace
}  // namespace flock

int main() { return flock::run(); }
