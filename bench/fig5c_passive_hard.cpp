// Fig 5c: the hardest passive-only scenario — a single failed link among
// symmetric Clos links, little irregularity (<5% omitted), no probes, no
// path tracing. Flock(P) must localize from ECMP candidate sets alone.
// Prints precision, recall, and the theoretical maximum precision computed
// from the topology's ECMP link equivalence classes.
//
// Expected shape (paper): recall >75%, precision >40% vs a theoretical max
// around 40-60%: Flock narrows the fault to the 2-3 indistinguishable
// candidates, a useful starting point for operators.
#include "bench_common.h"

#include <iostream>

namespace flock {
namespace {

using bench::default_clos;
using bench::scaled_flows;

int run() {
  bench::print_header("Flock(P) on a hard passive-only scenario", "Fig 5c");

  FlockParams params;  // calibrated-for-P values from the Fig 5 runs
  params.p_g = 1e-4;
  params.p_b = 6e-3;
  params.rho = 1e-4;

  Table table({"omitted", "precision", "recall", "theoretical-max-precision"});
  for (double omit : {0.01, 0.02, 0.03, 0.04}) {
    EnvConfig cfg;
    cfg.clos = default_clos();
    cfg.num_traces = 8;
    cfg.failure = FailureKind::kFixedRateDrops;
    cfg.min_failures = 1;
    cfg.fixed_drop_rate = 8e-3;  // a clear single gray failure
    cfg.traffic.num_app_flows = scaled_flows(40000);
    cfg.probes.enabled = false;  // no active probes at all
    cfg.seed = 8300 + static_cast<std::uint64_t>(omit * 1000);
    const auto env = make_irregular_env(cfg, omit);

    // Equivalence classes of the degraded topology.
    EcmpRouter class_router(*env->topo);
    const auto classes = ecmp_equivalence_classes(class_router);

    ViewOptions view;
    view.telemetry = kTelemetryP;
    FlockOptions opt;
    opt.params = params;
    opt.equivalence_epsilon = 1e-6;  // report whole ECMP-indistinguishable sets
    const auto per_trace = run_scheme(FlockLocalizer(opt), *env, view);
    const Accuracy acc = mean_accuracy(per_trace);
    double max_precision = 0;
    for (const Trace& trace : env->traces) {
      max_precision += theoretical_max_precision(classes, trace.truth.failed);
    }
    max_precision /= static_cast<double>(env->traces.size());
    table.add_row({Table::num(omit * 100, 0) + "%", Table::num(acc.precision),
                   Table::num(acc.recall), Table::num(max_precision)});
  }
  table.print(std::cout);
  std::cout << "\nPrecision near the theoretical maximum means Flock has narrowed the\n"
               "fault to its ECMP equivalence class (2-3 links), which no passive-only\n"
               "scheme can beat; baselines cannot run on this input at all.\n";
  return 0;
}

}  // namespace
}  // namespace flock

int main() { return flock::run(); }
