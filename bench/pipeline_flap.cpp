// Streamed fig4b-style scenario: a flapping link through the full pipeline
// plus the temporal layer. One link drops packets in bursts — 2 epochs
// faulty, 2 epochs healthy, repeating — so a memoryless per-epoch service
// keeps "finding" and "clearing" the same fault forever. The temporal
// tracker must instead confirm it fast (detection latency), recognize the
// clear-then-reblame churn (false clears), and settle on a sticky `flapping`
// verdict that survives the healthy half-periods.
//
// The identical pre-generated epoch bursts run twice: evidence carryover off
// (prior_weight 0 — the memoryless baseline plus passive tracking) and on
// (prior_weight 1 — recently blamed components re-confirm on less fresh
// evidence). Epochs are closed manually and awaited one at a time, so both
// runs — including the prior feedback — are deterministic.
//
// Gates: the flapping link must end in the `flapping` state with at least
// one false clear on record (not an endless confirm/clear cycle), the
// prior-on run must blame the faulty epochs at least as often as the
// prior-off run, and the JSON rows pin detection latency, false clears and
// records/sec in bench/pipeline_baseline.json (latency and false-clear
// counts are identity fields there: any drift fails CI, not just slowdowns).
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "pipeline/pipeline.h"
#include "telemetry/agent.h"
#include "telemetry/ipfix.h"

namespace {

constexpr int kEpochs = 22;
constexpr std::uint64_t kFirstFaultyEpoch = 2;

// 2-on / 2-off flap from epoch 2 on.
bool faulty_epoch(int epoch) {
  return epoch >= static_cast<int>(kFirstFaultyEpoch) &&
         (epoch - static_cast<int>(kFirstFaultyEpoch)) % 4 < 2;
}

}  // namespace

int main() {
  using namespace flock;
  using namespace flock::bench;

  print_header("Streamed link flap: temporal tracker + evidence carryover",
               "fig 4b's flapping link as a continuous §5 workload");

  const Topology topo = make_fat_tree(4);
  const std::int64_t flows_per_epoch = scaled_flows(1500);

  // Pre-generate every epoch's datagram burst once; both runs replay them.
  std::vector<std::vector<IngestDatagram>> bursts;
  std::uint64_t total_records = 0;
  ComponentId true_failure = kInvalidComponent;
  {
    EcmpRouter router(topo);
    Rng rng(607);
    DropRateConfig rates;
    rates.bad_min = 3e-3;
    rates.bad_max = 4.5e-3;
    const GroundTruth healthy = make_healthy(topo, rates, rng);
    const GroundTruth failed = make_silent_link_drops(topo, 1, rates, rng);
    true_failure = failed.failed.front();
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      const GroundTruth& truth = faulty_epoch(epoch) ? failed : healthy;
      TrafficConfig traffic;
      traffic.num_app_flows = flows_per_epoch;
      ProbeConfig probes;
      probes.enabled = false;  // passive deployment, like fig 4b's testbed
      Rng epoch_rng(1000 + static_cast<std::uint64_t>(epoch));
      const Trace trace = simulate(topo, router, truth, traffic, probes, epoch_rng);
      std::unordered_map<NodeId, Agent> agents;
      for (NodeId h : topo.hosts()) {
        AgentConfig cfg;
        cfg.observation_domain = static_cast<std::uint32_t>(h);
        agents.emplace(h, Agent(topo, cfg));
      }
      for (const SimFlow& f : trace.flows) {
        SimFlow passive = f;
        passive.taken_path = -1;
        agents.at(f.src_host).observe(passive);
      }
      std::vector<IngestDatagram> burst;
      const auto export_time = static_cast<std::uint32_t>(1700000000 + epoch * 10);
      for (NodeId h : topo.hosts()) {
        for (auto& msg : agents.at(h).flush(export_time)) {
          total_records += peek_record_count(msg).value_or(0);
          burst.push_back({node_to_addr(h), std::move(msg)});
        }
      }
      bursts.push_back(std::move(burst));
    }
  }
  std::cout << "workload: " << kEpochs << " epochs, " << total_records
            << " flow records; link flap (2 faulty / 2 healthy) from epoch "
            << kFirstFaultyEpoch << "\ninjected: " << topo.component_name(true_failure)
            << "\n\n";

  struct Outcome {
    double seconds = 0.0;
    std::uint64_t detection_latency = 0;  // first faulty epoch -> first confirm
    std::uint64_t false_clears = 0;
    bool flapping = false;
    int faulty_hits = 0;    // faulty epochs whose diagnosis named the truth class
    int faulty_total = 0;
    int healthy_alarms = 0; // healthy epochs that blamed the truth class anyway
  };
  Outcome outcomes[2];

  Table table({"prior", "seconds", "records/s", "latency", "false clears", "verdict",
               "faulty hits", "healthy alarms"});
  BenchJson json("pipeline_flap");

  for (const double prior_weight : {0.0, 1.0}) {
    EcmpRouter router(topo);
    router.build_all_tor_pairs();

    PipelineConfig config;
    config.num_shards = 2;
    config.localizer_threads = 1;  // serialized epochs: deterministic feedback
    config.localizer.params.p_g = 1e-4;
    config.localizer.params.p_b = 6e-3;
    config.localizer.params.rho = 1e-3;
    config.localizer.equivalence_epsilon = 1e-6;
    config.merge_equivalence_classes = true;
    config.temporal.window = 16;
    config.temporal.confirm_epochs = 2;
    config.temporal.clear_epochs = 2;
    config.temporal.flap_transitions = 3;
    config.temporal.prior_weight = prior_weight;
    StreamingPipeline pipeline(topo, router, config);

    Stopwatch watch;
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      for (const IngestDatagram& d : bursts[static_cast<std::size_t>(epoch)]) {
        pipeline.offer_wait(d);
      }
      pipeline.close_epoch();
      // Reporting intervals dwarf processing time in the deployed loop; the
      // wait also makes the carryover prior a deterministic function of the
      // already-merged epochs.
      pipeline.results().wait_for_epochs(static_cast<std::size_t>(epoch) + 1);
    }
    pipeline.stop();

    Outcome& out = outcomes[prior_weight > 0 ? 1 : 0];
    out.seconds = watch.seconds();

    // The fault is only identifiable up to its ECMP class; find the member
    // the tracker actually flagged.
    const auto classes = ecmp_equivalence_classes(router);
    std::vector<ComponentId> truth_class{true_failure};
    for (const auto& cls : classes) {
      if (std::find(cls.begin(), cls.end(), true_failure) != cls.end()) truth_class = cls;
    }
    ComponentVerdict flagged;
    for (const ComponentId c : truth_class) {
      const ComponentVerdict v = pipeline.tracker().verdict(c);
      if (v.confirmations > 0 || v.state != ComponentHealth::kHealthy) flagged = v;
    }
    out.flapping = flagged.state == ComponentHealth::kFlapping;
    out.false_clears = flagged.false_clears;
    // First fault -> first confirmation (confirmed_epoch tracks the most
    // recent re-confirmation, so go through the incident's recorded latency).
    out.detection_latency = flagged.confirmations > 0
                                ? (flagged.first_blamed_epoch - kFirstFaultyEpoch) +
                                      flagged.epochs_to_confirm
                                : kEpochs;

    for (const auto& epoch : pipeline.results().completed()) {
      const bool hit = std::any_of(
          epoch.predicted.begin(), epoch.predicted.end(), [&](ComponentId c) {
            return std::find(truth_class.begin(), truth_class.end(), c) != truth_class.end();
          });
      if (faulty_epoch(static_cast<int>(epoch.epoch))) {
        ++out.faulty_total;
        out.faulty_hits += hit ? 1 : 0;
      } else {
        out.healthy_alarms += hit ? 1 : 0;
      }
    }

    table.add_row({prior_weight > 0 ? "on" : "off", Table::num(out.seconds, 3),
                   Table::num(static_cast<double>(total_records) / out.seconds, 0),
                   Table::integer(static_cast<long long>(out.detection_latency)),
                   Table::integer(static_cast<long long>(out.false_clears)),
                   to_string(flagged.state),
                   Table::integer(out.faulty_hits) + "/" + Table::integer(out.faulty_total),
                   Table::integer(out.healthy_alarms)});
    json.add_row({{"prior", prior_weight > 0 ? 1.0 : 0.0},
                  {"detection_latency_epochs", static_cast<double>(out.detection_latency)},
                  {"false_clears", static_cast<double>(out.false_clears)},
                  {"flapping", out.flapping ? 1.0 : 0.0},
                  {"seconds", out.seconds},
                  {"records_per_sec", static_cast<double>(total_records) / out.seconds}});
  }
  table.print(std::cout);
  json.write();

  // The scenario's self-gates (the baseline JSON additionally pins the exact
  // latency / false-clear / flapping values and a records/sec floor).
  const Outcome& off = outcomes[0];
  const Outcome& on = outcomes[1];
  bool ok = true;
  if (!on.flapping) {
    std::cerr << "FAIL: with the carryover prior on, the flapping link must end in the "
                 "'flapping' state (not be repeatedly cleared)\n";
    ok = false;
  }
  if (on.false_clears < 1) {
    std::cerr << "FAIL: the 2-on/2-off flap must produce at least one recorded false clear "
                 "before the flap verdict locks in\n";
    ok = false;
  }
  if (on.detection_latency > 2) {
    std::cerr << "FAIL: detection latency " << on.detection_latency
              << " epochs exceeds the confirm hysteresis bound (2)\n";
    ok = false;
  }
  if (on.faulty_hits < off.faulty_hits) {
    std::cerr << "FAIL: evidence carryover must not blame fewer faulty epochs ("
              << on.faulty_hits << " < " << off.faulty_hits << ")\n";
    ok = false;
  }
  if (on.healthy_alarms > off.healthy_alarms) {
    std::cerr << "FAIL: the clamped prior must not create healthy-epoch false alarms ("
              << on.healthy_alarms << " > " << off.healthy_alarms << ")\n";
    ok = false;
  }
  if (ok) {
    std::cout << "\nflap verdict sticky, " << on.false_clears
              << " false clear(s) recorded, detection latency " << on.detection_latency
              << " epoch(s) past first fault\n";
  }
  return ok ? 0 : 1;
}
