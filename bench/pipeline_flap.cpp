// Streamed fig4b-style scenario: a flapping link through the full pipeline
// plus the temporal layer. One link drops packets in bursts — 2 epochs
// faulty, 2 epochs healthy, repeating — so a memoryless per-epoch service
// keeps "finding" and "clearing" the same fault forever. The temporal
// tracker must instead confirm it fast (detection latency), recognize the
// clear-then-reblame churn (false clears), and settle on a sticky `flapping`
// verdict that survives the healthy half-periods.
//
// The identical pre-generated epoch bursts run four times:
//   prior 0 / decay 0   memoryless baseline plus passive tracking
//   prior 1 / decay 0   evidence carryover on (recently blamed components
//                       re-confirm on less fresh evidence)
//   prior 1 / decay 4   carryover with age decay (half-life 4 epochs): the
//                       sticky flap verdict's exported prior shrinks while
//                       the link is in its healthy half-period instead of
//                       impersonating a fresh fault forever
//   restart             the prior-1/decay-0 run split at epoch 11: the
//                       tracker snapshot taken at the boundary seeds a fresh
//                       pipeline for the second half, and the combined run
//                       must match the uninterrupted one epoch for epoch
// Epochs are closed manually and awaited one at a time, so every run —
// including the prior feedback — is deterministic.
//
// Gates: the flapping link must end `flapping` with at least one false clear
// on record, the prior-on run must blame the faulty epochs at least as often
// as the prior-off run, age decay must strictly shrink the quiet-period
// prior export (and only that), and the restart leg must be
// indistinguishable from its uninterrupted twin. The JSON rows pin latency,
// false clears and records/sec in bench/pipeline_baseline.json (latency and
// false-clear counts are identity fields there: any drift fails CI, not
// just slowdowns).
#include <algorithm>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "pipeline/pipeline.h"
#include "telemetry/agent.h"
#include "telemetry/ipfix.h"

namespace {

constexpr int kEpochs = 22;
constexpr std::uint64_t kFirstFaultyEpoch = 2;
constexpr int kSplitEpoch = 11;  // restart boundary, mid-flap

// 2-on / 2-off flap from epoch 2 on.
bool faulty_epoch(int epoch) {
  return epoch >= static_cast<int>(kFirstFaultyEpoch) &&
         (epoch - static_cast<int>(kFirstFaultyEpoch)) % 4 < 2;
}

}  // namespace

int main() {
  using namespace flock;
  using namespace flock::bench;

  print_header("Streamed link flap: temporal tracker + evidence carryover",
               "fig 4b's flapping link as a continuous §5 workload");

  const Topology topo = make_fat_tree(4);
  const std::int64_t flows_per_epoch = scaled_flows(1500);

  // Pre-generate every epoch's datagram burst once; all runs replay them.
  std::vector<std::vector<IngestDatagram>> bursts;
  std::uint64_t total_records = 0;
  ComponentId true_failure = kInvalidComponent;
  {
    EcmpRouter router(topo);
    Rng rng(607);
    DropRateConfig rates;
    rates.bad_min = 3e-3;
    rates.bad_max = 4.5e-3;
    const GroundTruth healthy = make_healthy(topo, rates, rng);
    const GroundTruth failed = make_silent_link_drops(topo, 1, rates, rng);
    true_failure = failed.failed.front();
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      const GroundTruth& truth = faulty_epoch(epoch) ? failed : healthy;
      TrafficConfig traffic;
      traffic.num_app_flows = flows_per_epoch;
      ProbeConfig probes;
      probes.enabled = false;  // passive deployment, like fig 4b's testbed
      Rng epoch_rng(1000 + static_cast<std::uint64_t>(epoch));
      const Trace trace = simulate(topo, router, truth, traffic, probes, epoch_rng);
      std::unordered_map<NodeId, Agent> agents;
      for (NodeId h : topo.hosts()) {
        AgentConfig cfg;
        cfg.observation_domain = static_cast<std::uint32_t>(h);
        agents.emplace(h, Agent(topo, cfg));
      }
      for (const SimFlow& f : trace.flows) {
        SimFlow passive = f;
        passive.taken_path = -1;
        agents.at(f.src_host).observe(passive);
      }
      std::vector<IngestDatagram> burst;
      const auto export_time = static_cast<std::uint32_t>(1700000000 + epoch * 10);
      for (NodeId h : topo.hosts()) {
        for (auto& msg : agents.at(h).flush(export_time)) {
          total_records += peek_record_count(msg).value_or(0);
          burst.push_back({node_to_addr(h), std::move(msg)});
        }
      }
      bursts.push_back(std::move(burst));
    }
  }
  std::cout << "workload: " << kEpochs << " epochs, " << total_records
            << " flow records; link flap (2 faulty / 2 healthy) from epoch "
            << kFirstFaultyEpoch << "\ninjected: " << topo.component_name(true_failure)
            << "\n\n";

  struct Outcome {
    double seconds = 0.0;
    std::uint64_t detection_latency = 0;  // first faulty epoch -> first confirm
    std::uint64_t false_clears = 0;
    bool flapping = false;
    int faulty_hits = 0;    // faulty epochs whose diagnosis named the truth class
    int faulty_total = 0;
    int healthy_alarms = 0; // healthy epochs that blamed the truth class anyway
    double flagged_prior = 0.0;  // tracker's final prior export for the flagged comp
    std::vector<std::vector<ComponentId>> per_epoch;  // merged diagnosis per epoch
  };

  const auto make_config = [](double prior_weight, double decay_half_life) {
    PipelineConfig config;
    config.num_shards = 2;
    config.localizer_threads = 1;  // serialized epochs: deterministic feedback
    config.localizer.params.p_g = 1e-4;
    config.localizer.params.p_b = 6e-3;
    config.localizer.params.rho = 1e-3;
    config.localizer.equivalence_epsilon = 1e-6;
    config.merge_equivalence_classes = true;
    config.temporal.window = 16;
    config.temporal.confirm_epochs = 2;
    config.temporal.clear_epochs = 2;
    config.temporal.flap_transitions = 3;
    config.temporal.prior_weight = prior_weight;
    config.temporal.age_half_life_epochs = decay_half_life;
    return config;
  };
  const auto feed = [&](StreamingPipeline& pipeline, int first, int last) {
    for (int epoch = first; epoch < last; ++epoch) {
      for (const IngestDatagram& d : bursts[static_cast<std::size_t>(epoch)]) {
        pipeline.offer_wait(d);
      }
      pipeline.close_epoch();
      // Reporting intervals dwarf processing time in the deployed loop; the
      // wait also makes the carryover prior a deterministic function of the
      // already-merged epochs.
      pipeline.results().wait_for_epochs(static_cast<std::size_t>(epoch - first) + 1);
    }
    pipeline.stop();
  };

  // Runs one leg; when `restart`, the run is split at kSplitEpoch and the
  // second half continues in a fresh pipeline seeded by the first's tracker
  // snapshot (new router, scheduler counting epochs from 0 again).
  const auto run_leg = [&](double prior_weight, double decay, bool restart) {
    Outcome out;
    Stopwatch watch;
    std::stringstream snapshot;
    std::vector<EpochResult> epochs;
    ComponentVerdict flagged;
    std::vector<double> final_prior;
    std::vector<ComponentId> truth_class{true_failure};

    const auto finish = [&](StreamingPipeline& pipeline, EcmpRouter& router,
                            std::uint64_t epoch_offset) {
      for (EpochResult e : pipeline.results().completed()) {
        e.epoch += epoch_offset;
        epochs.push_back(std::move(e));
      }
      // The fault is only identifiable up to its ECMP class; find the member
      // the tracker actually flagged.
      const auto classes = ecmp_equivalence_classes(router);
      for (const auto& cls : classes) {
        if (std::find(cls.begin(), cls.end(), true_failure) != cls.end()) truth_class = cls;
      }
      for (const ComponentId c : truth_class) {
        const ComponentVerdict v = pipeline.tracker().verdict(c);
        if (v.confirmations > 0 || v.state != ComponentHealth::kHealthy) flagged = v;
      }
      final_prior = pipeline.tracker().prior_logodds(
          static_cast<std::size_t>(topo.num_components()));
    };

    if (!restart) {
      EcmpRouter router(topo);
      router.build_all_tor_pairs();
      StreamingPipeline pipeline(topo, router, make_config(prior_weight, decay));
      feed(pipeline, 0, kEpochs);
      finish(pipeline, router, 0);
    } else {
      {
        EcmpRouter router(topo);
        router.build_all_tor_pairs();
        StreamingPipeline first_half(topo, router, make_config(prior_weight, decay));
        feed(first_half, 0, kSplitEpoch);
        first_half.save_tracker(snapshot);
        for (const EpochResult& e : first_half.results().completed()) epochs.push_back(e);
      }
      EcmpRouter router(topo);
      router.build_all_tor_pairs();
      StreamingPipeline second_half(topo, router, make_config(prior_weight, decay));
      second_half.load_tracker(snapshot);
      feed(second_half, kSplitEpoch, kEpochs);
      finish(second_half, router, kSplitEpoch);
    }
    out.seconds = watch.seconds();
    out.flapping = flagged.state == ComponentHealth::kFlapping;
    out.false_clears = flagged.false_clears;
    // First fault -> first confirmation (confirmed_epoch tracks the most
    // recent re-confirmation, so go through the incident's recorded latency).
    out.detection_latency = flagged.confirmations > 0
                                ? (flagged.first_blamed_epoch - kFirstFaultyEpoch) +
                                      flagged.epochs_to_confirm
                                : kEpochs;
    out.flagged_prior =
        flagged.component >= 0 &&
                static_cast<std::size_t>(flagged.component) < final_prior.size()
            ? final_prior[static_cast<std::size_t>(flagged.component)]
            : 0.0;

    std::sort(epochs.begin(), epochs.end(),
              [](const EpochResult& a, const EpochResult& b) { return a.epoch < b.epoch; });
    out.per_epoch.resize(static_cast<std::size_t>(kEpochs));
    for (const auto& epoch : epochs) {
      out.per_epoch[static_cast<std::size_t>(epoch.epoch)] = epoch.predicted;
      const bool hit = std::any_of(
          epoch.predicted.begin(), epoch.predicted.end(), [&](ComponentId c) {
            return std::find(truth_class.begin(), truth_class.end(), c) != truth_class.end();
          });
      if (faulty_epoch(static_cast<int>(epoch.epoch))) {
        ++out.faulty_total;
        out.faulty_hits += hit ? 1 : 0;
      } else {
        out.healthy_alarms += hit ? 1 : 0;
      }
    }
    return std::pair<Outcome, ComponentVerdict>(std::move(out), flagged);
  };

  struct Leg {
    const char* name;
    double prior;
    double decay;
    bool restart;
  };
  const Leg legs[] = {
      {"off", 0.0, 0.0, false},
      {"on", 1.0, 0.0, false},
      {"on+decay", 1.0, 4.0, false},
      {"on+restart", 1.0, 0.0, true},
  };

  Table table({"leg", "seconds", "records/s", "latency", "false clears", "verdict",
               "faulty hits", "healthy alarms", "final prior"});
  BenchJson json("pipeline_flap");
  Outcome outcomes[4];
  ComponentVerdict verdicts[4];

  for (std::size_t i = 0; i < 4; ++i) {
    const Leg& leg = legs[i];
    auto [out, flagged] = run_leg(leg.prior, leg.decay, leg.restart);
    table.add_row({leg.name, Table::num(out.seconds, 3),
                   Table::num(static_cast<double>(total_records) / out.seconds, 0),
                   Table::integer(static_cast<long long>(out.detection_latency)),
                   Table::integer(static_cast<long long>(out.false_clears)),
                   to_string(flagged.state),
                   Table::integer(out.faulty_hits) + "/" + Table::integer(out.faulty_total),
                   Table::integer(out.healthy_alarms), Table::num(out.flagged_prior, 3)});
    json.add_row({{"prior", leg.prior},
                  {"decay", leg.decay},
                  {"restart", leg.restart ? 1.0 : 0.0},
                  {"detection_latency_epochs", static_cast<double>(out.detection_latency)},
                  {"false_clears", static_cast<double>(out.false_clears)},
                  {"flapping", out.flapping ? 1.0 : 0.0},
                  {"seconds", out.seconds},
                  {"records_per_sec", static_cast<double>(total_records) / out.seconds}});
    outcomes[i] = std::move(out);
    verdicts[i] = flagged;
  }
  table.print(std::cout);
  json.write();

  // The scenario's self-gates (the baseline JSON additionally pins the exact
  // latency / false-clear / flapping values and a records/sec floor).
  const Outcome& off = outcomes[0];
  const Outcome& on = outcomes[1];
  const Outcome& decayed = outcomes[2];
  const Outcome& restarted = outcomes[3];
  bool ok = true;
  if (!on.flapping) {
    std::cerr << "FAIL: with the carryover prior on, the flapping link must end in the "
                 "'flapping' state (not be repeatedly cleared)\n";
    ok = false;
  }
  if (on.false_clears < 1) {
    std::cerr << "FAIL: the 2-on/2-off flap must produce at least one recorded false clear "
                 "before the flap verdict locks in\n";
    ok = false;
  }
  if (on.detection_latency > 2) {
    std::cerr << "FAIL: detection latency " << on.detection_latency
              << " epochs exceeds the confirm hysteresis bound (2)\n";
    ok = false;
  }
  if (on.faulty_hits < off.faulty_hits) {
    std::cerr << "FAIL: evidence carryover must not blame fewer faulty epochs ("
              << on.faulty_hits << " < " << off.faulty_hits << ")\n";
    ok = false;
  }
  if (on.healthy_alarms > off.healthy_alarms) {
    std::cerr << "FAIL: the clamped prior must not create healthy-epoch false alarms ("
              << on.healthy_alarms << " > " << off.healthy_alarms << ")\n";
    ok = false;
  }
  // Age decay: the run ends inside a healthy half-period (epochs 20/21), so
  // the flagged class is 2 quiet epochs old — the decayed export must be
  // strictly below the undecayed one, yet still positive (the verdict has
  // not been forgotten, only aged).
  if (!(decayed.flagged_prior > 0.0 && decayed.flagged_prior < on.flagged_prior)) {
    std::cerr << "FAIL: age decay must strictly shrink (not zero) the quiet-period prior "
                 "export: decayed "
              << decayed.flagged_prior << " vs undecayed " << on.flagged_prior << "\n";
    ok = false;
  }
  if (!decayed.flapping) {
    std::cerr << "FAIL: age decay touches the prior export only; the flap verdict itself "
                 "must be unchanged\n";
    ok = false;
  }
  // The restart leg replays the prior-on run split across a snapshot
  // restore; any divergence means the snapshot lost temporal memory.
  if (restarted.per_epoch != on.per_epoch) {
    std::cerr << "FAIL: the snapshot-restarted run diverged from its uninterrupted twin's "
                 "per-epoch diagnoses\n";
    ok = false;
  }
  if (verdicts[3].state != verdicts[1].state ||
      restarted.false_clears != on.false_clears ||
      restarted.detection_latency != on.detection_latency) {
    std::cerr << "FAIL: the snapshot-restarted run's final verdict/false-clear/latency "
                 "accounting diverged from its uninterrupted twin\n";
    ok = false;
  }
  if (ok) {
    std::cout << "\nflap verdict sticky, " << on.false_clears
              << " false clear(s) recorded, detection latency " << on.detection_latency
              << " epoch(s) past first fault; decay shrank the quiet-period prior "
              << Table::num(on.flagged_prior, 3) << " -> "
              << Table::num(decayed.flagged_prior, 3)
              << "; snapshot restart matched the uninterrupted run\n";
  }
  return ok ? 0 : 1;
}
