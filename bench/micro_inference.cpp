// Google-benchmark micro-kernels for the inference engine: the §7.8
// "hypotheses scanned per second" numbers decompose into these primitives.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "core/flock_localizer.h"
#include "core/likelihood_engine.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "flowsim/views.h"
#include "topology/topology.h"

namespace flock {
namespace {

struct MicroEnv {
  Topology topo;
  EcmpRouter router;
  Trace trace;
  std::unique_ptr<InferenceInput> input;

  MicroEnv(std::int32_t k, std::int64_t flows) : topo(make_fat_tree(k)), router(topo) {
    Rng rng(99);
    DropRateConfig rates;
    rates.bad_min = 5e-3;
    GroundTruth truth = make_silent_link_drops(topo, 2, rates, rng);
    TrafficConfig traffic;
    traffic.num_app_flows = flows;
    trace = simulate(topo, router, std::move(truth), traffic, ProbeConfig{}, rng);
    ViewOptions view;
    view.telemetry = kTelemetryA2 | kTelemetryP;
    input = std::make_unique<InferenceInput>(make_view(topo, router, trace, view));
  }
};

MicroEnv& env() {
  static MicroEnv instance(6, 20000);
  return instance;
}

FlockParams micro_params() {
  FlockParams p;
  p.p_g = 1e-4;
  p.p_b = 6e-3;
  return p;
}

void BM_EngineConstruction(benchmark::State& state) {
  for (auto _ : state) {
    LikelihoodEngine engine(*env().input, micro_params(), /*maintain_delta=*/true);
    benchmark::DoNotOptimize(engine.log_likelihood());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(env().input->num_flows()));
}
BENCHMARK(BM_EngineConstruction)->Unit(benchmark::kMillisecond);

void BM_BestAddition(benchmark::State& state) {
  LikelihoodEngine engine(*env().input, micro_params());
  for (auto _ : state) benchmark::DoNotOptimize(engine.best_addition());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          engine.num_components());
}
BENCHMARK(BM_BestAddition);

void BM_FlipWithJle(benchmark::State& state) {
  LikelihoodEngine engine(*env().input, micro_params());
  const ComponentId c = engine.best_addition().first;
  for (auto _ : state) {
    engine.flip(c);
    engine.flip(c);
  }
  state.SetItemsProcessed(2 * static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FlipWithJle)->Unit(benchmark::kMicrosecond);

void BM_SingleNeighborEvaluation(benchmark::State& state) {
  LikelihoodEngine engine(*env().input, micro_params(), /*maintain_delta=*/false);
  const ComponentId c = static_cast<ComponentId>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(engine.compute_flip_delta_ll(c));
}
BENCHMARK(BM_SingleNeighborEvaluation)->Arg(0)->Arg(100)->Unit(benchmark::kMicrosecond);

void BM_FullGreedyLocalize(benchmark::State& state) {
  FlockOptions opt;
  opt.params = micro_params();
  opt.use_jle = state.range(0) != 0;
  const FlockLocalizer localizer(opt);
  std::int64_t hypotheses = 0;
  for (auto _ : state) {
    const auto result = localizer.localize(*env().input);
    hypotheses += result.hypotheses_scanned;
    benchmark::DoNotOptimize(result.predicted.data());
  }
  state.SetItemsProcessed(hypotheses);  // "hypotheses scanned" per second (§7.8)
}
BENCHMARK(BM_FullGreedyLocalize)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace flock

BENCHMARK_MAIN();
