// Inference-core micro benchmark: the §7.8 "hypotheses scanned per second"
// numbers decompose into these primitives, measured over the columnar
// FlowTable on a passive-heavy epoch (the paper's structural sweet spot:
// many small flows between few host pairs, almost all with zero drops).
//
// The measured A/B lever is the weighted row dedup: the same observation
// multiset is localized from a deduplicated table and from a row-per-
// observation table (identical group-major layout, weight 1 everywhere).
// Gate: dedup must deliver >= 2x localization throughput (observations/sec
// through FlockLocalizer, engine construction included) on this epoch, and
// both tables must produce the *identical* prediction — the dedup is a pure
// representation change, never a result change.
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/flock_localizer.h"
#include "core/likelihood_engine.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "flowsim/views.h"
#include "topology/topology.h"

int main() {
  using namespace flock;
  using namespace flock::bench;

  print_header("Inference core: weighted dedup + group-major scan on a passive-heavy epoch",
               "the §7.8 inference-runtime decomposition");

  const Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  Rng rng(99);
  DropRateConfig rates;
  rates.bad_min = 5e-3;
  GroundTruth truth = make_silent_link_drops(topo, 2, rates, rng);
  TrafficConfig traffic;
  traffic.num_app_flows = scaled_flows(120000);
  ProbeConfig probes;
  probes.enabled = false;
  const Trace trace = simulate(topo, router, std::move(truth), traffic, probes, rng);
  ViewOptions view;
  view.telemetry = kTelemetryA2 | kTelemetryP;

  FlockParams params;
  params.p_g = 1e-4;
  params.p_b = 6e-3;

  // The same observation multiset, deduplicated and row-per-observation.
  InferenceInput deduped(topo, router);
  InferenceInput raw(topo, router, /*dedup_rows=*/false);
  {
    const InferenceInput once = make_view(topo, router, trace, view);
    for (const FlowObservation& obs : once.expanded_flows()) {
      deduped.add(obs);
      raw.add(obs);
    }
  }
  const auto observations = static_cast<double>(deduped.num_flows());
  std::cout << "epoch: " << deduped.num_flows() << " observations ("
            << deduped.table().num_groups() << " host-pair groups) -> " << deduped.num_rows()
            << " weighted rows (" << Table::num(observations / static_cast<double>(
                                                                   deduped.num_rows()),
                                                1)
            << "x dedup)\n\n";

  FlockOptions opt;
  opt.params = params;
  opt.use_jle = true;
  const FlockLocalizer localizer(opt);
  constexpr int kReps = 3;  // best-of-3: scheduling noise dominates short runs

  Table table({"input", "stage", "seconds", "obs/s", "vs raw rows"});
  BenchJson json("micro_inference");
  double rate_localize_dedup = 0.0, rate_localize_raw = 0.0;
  std::vector<ComponentId> predicted_dedup, predicted_raw;

  for (const bool dedup : {false, true}) {
    const InferenceInput& input = dedup ? deduped : raw;

    double construct_best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      Stopwatch watch;
      LikelihoodEngine engine(input, params, /*maintain_delta=*/true);
      const double seconds = watch.seconds();
      if (engine.num_components() == 0) {
        std::cerr << "FAIL: engine built over an empty component space\n";
        return 1;
      }
      if (rep == 0 || seconds < construct_best) construct_best = seconds;
    }

    double localize_best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      Stopwatch watch;
      const LocalizationResult result = localizer.localize(input);
      const double seconds = watch.seconds();
      if (rep == 0 || seconds < localize_best) localize_best = seconds;
      (dedup ? predicted_dedup : predicted_raw) = result.predicted;
    }

    const double construct_rate = observations / construct_best;
    const double localize_rate = observations / localize_best;
    if (dedup) {
      rate_localize_dedup = localize_rate;
    } else {
      rate_localize_raw = localize_rate;
    }
    const char* label = dedup ? "deduped" : "raw rows";
    table.add_row({label, "construct", Table::num(construct_best, 4),
                   Table::num(construct_rate, 0), "-"});
    table.add_row({label, "localize", Table::num(localize_best, 4),
                   Table::num(localize_rate, 0),
                   dedup ? Table::num(localize_rate / rate_localize_raw, 2) : "-"});
    json.add_row({{"dedup", dedup ? 1.0 : 0.0},
                  {"localize", 0.0},
                  {"seconds", construct_best},
                  {"records_per_sec", construct_rate}});
    json.add_row({{"dedup", dedup ? 1.0 : 0.0},
                  {"localize", 1.0},
                  {"seconds", localize_best},
                  {"records_per_sec", localize_rate}});
  }

  // Single-iteration primitives on the deduped table (informational).
  {
    LikelihoodEngine engine(deduped, params, /*maintain_delta=*/true);
    const ComponentId c = engine.best_addition().first;
    constexpr int kFlips = 200;
    Stopwatch watch;
    for (int i = 0; i < kFlips; ++i) {
      engine.flip(c);
      engine.flip(c);
    }
    table.add_row({"deduped", "flip pair", Table::num(watch.seconds() / kFlips, 6),
                   "-", "-"});
  }

  table.print(std::cout);
  json.write();

  if (predicted_dedup != predicted_raw) {
    std::cerr << "FAIL: dedup changed the localization result (" << predicted_dedup.size()
              << " vs " << predicted_raw.size() << " components)\n";
    return 1;
  }
  const double ratio = rate_localize_dedup / rate_localize_raw;
  std::cout << "\ndedup localization speedup: " << Table::num(ratio, 2)
            << "x (required >= 2.0 on this passive-heavy epoch), identical prediction\n";
  if (ratio < 2.0) {
    std::cerr << "FAIL: weighted dedup only reaches " << ratio
              << "x localization throughput (required >= 2.0)\n";
    return 1;
  }
  return 0;
}
