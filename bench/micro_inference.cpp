// Inference-core micro benchmark: the §7.8 "hypotheses scanned per second"
// numbers decompose into these primitives, measured over the columnar
// FlowTable on a passive-heavy epoch (the paper's structural sweet spot:
// many small flows between few host pairs, almost all with zero drops).
//
// Two measured A/B levers, both gated:
//   * Weighted row dedup: the same observation multiset is localized from a
//     deduplicated table and from a row-per-observation table (identical
//     group-major layout, weight 1 everywhere). Gate: dedup must deliver
//     >= 2x localization throughput (observations/sec through
//     FlockLocalizer, engine construction included) on this epoch, and both
//     tables must produce the *identical* prediction.
//   * SIMD dispatch: the weighted log-sum kernel (common/simd.h) run over
//     this epoch's real group/row/weight columns, forced scalar vs the best
//     level the CPU supports. Gate: >= 1.5x kernel row throughput on an
//     AVX2 machine, with bit-identical sums and byte-identical localization
//     predictions at every level (the dispatch contract — FLOCK_FORCE_SCALAR
//     is a pure performance lever, never a result change).
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <thread>

#include "bench_common.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "core/flock_localizer.h"
#include "core/likelihood_engine.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "flowsim/views.h"
#include "topology/topology.h"

int main() {
  using namespace flock;
  using namespace flock::bench;

  print_header("Inference core: weighted dedup + group-major scan on a passive-heavy epoch",
               "the §7.8 inference-runtime decomposition");

  const Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  Rng rng(99);
  DropRateConfig rates;
  rates.bad_min = 5e-3;
  GroundTruth truth = make_silent_link_drops(topo, 2, rates, rng);
  TrafficConfig traffic;
  traffic.num_app_flows = scaled_flows(120000);
  ProbeConfig probes;
  probes.enabled = false;
  const Trace trace = simulate(topo, router, std::move(truth), traffic, probes, rng);
  ViewOptions view;
  view.telemetry = kTelemetryA2 | kTelemetryP;

  FlockParams params;
  params.p_g = 1e-4;
  params.p_b = 6e-3;

  // The same observation multiset, deduplicated and row-per-observation.
  InferenceInput deduped(topo, router);
  InferenceInput raw(topo, router, /*dedup_rows=*/false);
  {
    const InferenceInput once = make_view(topo, router, trace, view);
    for (const FlowObservation& obs : once.expanded_flows()) {
      deduped.add(obs);
      raw.add(obs);
    }
  }
  const auto observations = static_cast<double>(deduped.num_flows());
  std::cout << "epoch: " << deduped.num_flows() << " observations ("
            << deduped.table().num_groups() << " host-pair groups) -> " << deduped.num_rows()
            << " weighted rows (" << Table::num(observations / static_cast<double>(
                                                                   deduped.num_rows()),
                                                1)
            << "x dedup)\n\n";

  FlockOptions opt;
  opt.params = params;
  opt.use_jle = true;
  const FlockLocalizer localizer(opt);
  constexpr int kReps = 3;  // best-of-3: scheduling noise dominates short runs

  Table table({"input", "stage", "seconds", "obs/s", "vs raw rows"});
  BenchJson json("micro_inference");
  double rate_localize_dedup = 0.0, rate_localize_raw = 0.0;
  std::vector<ComponentId> predicted_dedup, predicted_raw;

  for (const bool dedup : {false, true}) {
    const InferenceInput& input = dedup ? deduped : raw;

    double construct_best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      Stopwatch watch;
      LikelihoodEngine engine(input, params, /*maintain_delta=*/true);
      const double seconds = watch.seconds();
      if (engine.num_components() == 0) {
        std::cerr << "FAIL: engine built over an empty component space\n";
        return 1;
      }
      if (rep == 0 || seconds < construct_best) construct_best = seconds;
    }

    double localize_best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      Stopwatch watch;
      const LocalizationResult result = localizer.localize(input);
      const double seconds = watch.seconds();
      if (rep == 0 || seconds < localize_best) localize_best = seconds;
      (dedup ? predicted_dedup : predicted_raw) = result.predicted;
    }

    const double construct_rate = observations / construct_best;
    const double localize_rate = observations / localize_best;
    if (dedup) {
      rate_localize_dedup = localize_rate;
    } else {
      rate_localize_raw = localize_rate;
    }
    const char* label = dedup ? "deduped" : "raw rows";
    table.add_row({label, "construct", Table::num(construct_best, 4),
                   Table::num(construct_rate, 0), "-"});
    table.add_row({label, "localize", Table::num(localize_best, 4),
                   Table::num(localize_rate, 0),
                   dedup ? Table::num(localize_rate / rate_localize_raw, 2) : "-"});
    json.add_row({{"dedup", dedup ? 1.0 : 0.0},
                  {"localize", 0.0},
                  {"seconds", construct_best},
                  {"records_per_sec", construct_rate}});
    json.add_row({{"dedup", dedup ? 1.0 : 0.0},
                  {"localize", 1.0},
                  {"seconds", localize_best},
                  {"records_per_sec", localize_rate}});
  }

  // Single-iteration primitives on the deduped table (informational).
  {
    LikelihoodEngine engine(deduped, params, /*maintain_delta=*/true);
    const ComponentId c = engine.best_addition().first;
    constexpr int kFlips = 200;
    Stopwatch watch;
    for (int i = 0; i < kFlips; ++i) {
      engine.flip(c);
      engine.flip(c);
    }
    table.add_row({"deduped", "flip pair", Table::num(watch.seconds() / kFlips, 6),
                   "-", "-"});
  }

  table.print(std::cout);

  if (predicted_dedup != predicted_raw) {
    std::cerr << "FAIL: dedup changed the localization result (" << predicted_dedup.size()
              << " vs " << predicted_raw.size() << " components)\n";
    return 1;
  }
  const double ratio = rate_localize_dedup / rate_localize_raw;
  std::cout << "\ndedup localization speedup: " << Table::num(ratio, 2)
            << "x (required >= 2.0 on this passive-heavy epoch), identical prediction\n";
  if (ratio < 2.0) {
    std::cerr << "FAIL: weighted dedup only reaches " << ratio
              << "x localization throughput (required >= 2.0)\n";
    return 1;
  }

  // --- SIMD kernel A/B on the same epoch's real columns ----------------------
  // The engine's one hot shape: per path-set group, Σ_rows wt·log(b·e^s +
  // (w−b)) with b the hypothesis's bad-path count. Extract exactly those
  // columns from the deduped table (es precomputed, weights as doubles,
  // per-group b within [1, w−1] — the b=0 and b=w cases short-circuit before
  // the kernel) and time the kernel alone, forced scalar vs best level.
  struct KernelSeg {
    std::size_t offset = 0;
    std::size_t rows = 0;
    double a = 1.0;  // bad-path count b
    double c = 1.0;  // w − b
  };
  std::vector<double> col_es, col_wt;
  std::vector<KernelSeg> segs;
  for (const FlowGroup& g : deduped.table().groups()) {
    const auto width =
        static_cast<std::int64_t>(router.path_set(g.path_set).paths.size());
    if (width < 2) continue;  // b ∈ [1, w−1] needs at least two candidate paths
    KernelSeg seg;
    seg.offset = col_es.size();
    seg.a = static_cast<double>(1 + static_cast<std::int64_t>(segs.size()) % (width - 1));
    seg.c = static_cast<double>(width) - seg.a;
    for (std::size_t r = 0; r < g.size(); ++r) {
      const double s =
          bad_path_log_evidence(g.bad[r], g.packets[r], params.p_g, params.p_b);
      if (s > 690.0) continue;  // the engine's scalar extreme-evidence tail
      col_es.push_back(std::exp(s));
      col_wt.push_back(static_cast<double>(g.weight[r]));
    }
    seg.rows = col_es.size() - seg.offset;
    if (seg.rows > 0) segs.push_back(seg);
  }
  const std::size_t kernel_rows = col_es.size();
  std::cout << "\nkernel columns: " << kernel_rows << " weighted rows in " << segs.size()
            << " path-set groups\n\n";

  Table kernel_table({"kernel", "seconds", "rows/s", "vs scalar"});
  const simd::Level best_level = simd::max_supported_level();
  const int kernel_iters = std::max<int>(1, static_cast<int>(20000000 / (kernel_rows + 1)));
  double rate_kernel_scalar = 0.0, rate_kernel_simd = 0.0;
  double sum_scalar = 0.0, sum_simd = 0.0;
  for (const simd::Level level : {simd::Level::kScalar, best_level}) {
    simd::set_level(level);
    double best_seconds = 0.0;
    double checksum = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      checksum = 0.0;
      Stopwatch watch;
      for (int it = 0; it < kernel_iters; ++it) {
        for (const KernelSeg& seg : segs) {
          checksum += simd::weighted_log_sum(col_es.data() + seg.offset,
                                             col_wt.data() + seg.offset, seg.rows, seg.a,
                                             seg.c);
        }
      }
      const double seconds = watch.seconds();
      if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
    }
    const double rows_per_sec =
        static_cast<double>(kernel_rows) * kernel_iters / best_seconds;
    if (level == simd::Level::kScalar) {
      rate_kernel_scalar = rows_per_sec;
      sum_scalar = checksum;
    } else {
      rate_kernel_simd = rows_per_sec;
      sum_simd = checksum;
    }
    kernel_table.add_row({simd::level_name(level), Table::num(best_seconds, 4),
                          Table::num(rows_per_sec, 0),
                          level == simd::Level::kScalar
                              ? "-"
                              : Table::num(rows_per_sec / rate_kernel_scalar, 2)});
    json.add_row({{"kernel", 1.0},
                  {"simd", level == simd::Level::kScalar ? 0.0 : 1.0},
                  {"seconds", best_seconds},
                  {"records_per_sec", rows_per_sec}});
  }
  kernel_table.print(std::cout);

  if (sum_simd != sum_scalar) {
    std::cerr << "FAIL: kernel checksums differ between " << simd::level_name(best_level)
              << " and scalar (dispatch contract: bit-identical)\n";
    return 1;
  }

  // Full localizer under each dispatch level: the end-to-end view of the
  // kernel win, and the byte-identical-prediction check at the result level.
  Table simd_table({"localize", "seconds", "obs/s", "vs scalar"});
  double rate_loc_scalar = 0.0, rate_loc_simd = 0.0;
  std::vector<ComponentId> predicted_scalar, predicted_simd;
  for (const simd::Level level : {simd::Level::kScalar, best_level}) {
    simd::set_level(level);
    double best_seconds = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      Stopwatch watch;
      const LocalizationResult result = localizer.localize(deduped);
      const double seconds = watch.seconds();
      if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
      (level == simd::Level::kScalar ? predicted_scalar : predicted_simd) = result.predicted;
    }
    const double obs_per_sec = observations / best_seconds;
    if (level == simd::Level::kScalar) {
      rate_loc_scalar = obs_per_sec;
    } else {
      rate_loc_simd = obs_per_sec;
    }
    simd_table.add_row({simd::level_name(level), Table::num(best_seconds, 4),
                        Table::num(obs_per_sec, 0),
                        level == simd::Level::kScalar
                            ? "-"
                            : Table::num(obs_per_sec / rate_loc_scalar, 2)});
    json.add_row({{"dedup", 1.0},
                  {"localize", 1.0},
                  {"simd", level == simd::Level::kScalar ? 0.0 : 1.0},
                  {"seconds", best_seconds},
                  {"records_per_sec", obs_per_sec}});
  }
  std::cout << "\n";
  simd_table.print(std::cout);

  // --- Intra-epoch parallelism A/B (common/parallel_for.h) -------------------
  // The no-JLE localizer is the embarrassingly parallel surface: every
  // candidate is evaluated from scratch each iteration. Thread count is a
  // pure performance lever — predictions AND log-likelihood checksums must
  // be byte-identical at 1/2/4 threads always; the >= 1.5x speedup at 4
  // threads is gated only on machines with >= 4 cores (elsewhere the leg
  // still runs for the identity checks and records informational rows).
  const unsigned hw_threads = std::thread::hardware_concurrency();
  Table threads_table({"threads", "seconds", "obs/s", "vs 1 thread", "steal %"});
  double rate_threads_1 = 0.0, rate_threads_4 = 0.0;
  std::vector<ComponentId> predicted_threads_1;
  double ll_threads_1 = 0.0;
  bool threads_identical = true;
  for (const std::int32_t t : {1, 2, 4}) {
    FlockOptions nojle = opt;
    nojle.use_jle = false;
    nojle.localize_threads = t;
    const FlockLocalizer nojle_localizer(nojle);
    double best_seconds = 0.0;
    LocalizationResult result;
    for (int rep = 0; rep < kReps; ++rep) {
      Stopwatch watch;
      result = nojle_localizer.localize(deduped);
      const double seconds = watch.seconds();
      if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
    }
    const double obs_per_sec = observations / best_seconds;
    if (t == 1) {
      rate_threads_1 = obs_per_sec;
      predicted_threads_1 = result.predicted;
      ll_threads_1 = result.log_likelihood;
    } else {
      if (t == 4) rate_threads_4 = obs_per_sec;
      if (result.predicted != predicted_threads_1 ||
          std::memcmp(&result.log_likelihood, &ll_threads_1, sizeof(double)) != 0) {
        threads_identical = false;
      }
    }
    const double steal_pct =
        result.parallel_chunks > 0
            ? 100.0 * static_cast<double>(result.parallel_steals) /
                  static_cast<double>(result.parallel_chunks)
            : 0.0;
    threads_table.add_row({Table::num(t, 0), Table::num(best_seconds, 4),
                           Table::num(obs_per_sec, 0),
                           t == 1 ? "-" : Table::num(obs_per_sec / rate_threads_1, 2),
                           Table::num(steal_pct, 1)});
    json.add_row({{"threads", static_cast<double>(t)},
                  {"seconds", best_seconds},
                  {"records_per_sec", obs_per_sec}});
  }
  std::cout << "\n";
  threads_table.print(std::cout);
  if (!threads_identical) {
    std::cerr << "FAIL: localize_threads changed the no-JLE result (determinism contract: "
                 "byte-identical predictions and bit-equal log-likelihoods)\n";
    return 1;
  }
  // JLE mode parallelizes only the engine's memo batch-fill; the identity
  // contract holds there too (informational — no timing gate).
  {
    FlockOptions jle4 = opt;
    jle4.localize_threads = 4;
    const LocalizationResult team = FlockLocalizer(jle4).localize(deduped);
    const LocalizationResult serial = localizer.localize(deduped);
    if (team.predicted != serial.predicted ||
        std::memcmp(&team.log_likelihood, &serial.log_likelihood, sizeof(double)) != 0) {
      std::cerr << "FAIL: localize_threads changed the JLE result\n";
      return 1;
    }
  }
  const double threads_ratio = rate_threads_4 / rate_threads_1;
  std::cout << "\n4-thread no-JLE localize speedup: " << Table::num(threads_ratio, 2)
            << "x (required >= 1.5 on >= 4 cores; this machine has " << hw_threads
            << "), identical results at every thread count\n";
  if (hw_threads >= 4 && threads_ratio < 1.5) {
    std::cerr << "FAIL: 4 localize threads only reach " << threads_ratio
              << "x serial throughput (required >= 1.5 on a >= 4-core machine)\n";
    return 1;
  }
  json.write();

  if (predicted_simd != predicted_scalar) {
    std::cerr << "FAIL: SIMD dispatch changed the localization result ("
              << predicted_simd.size() << " vs " << predicted_scalar.size()
              << " components)\n";
    return 1;
  }
  if (best_level == simd::Level::kScalar) {
    std::cout << "\nno SIMD level on this CPU: kernel A/B is scalar-vs-scalar, "
                 "speedup gate skipped\n";
    return 0;
  }
  const double kernel_ratio = rate_kernel_simd / rate_kernel_scalar;
  std::cout << "\n" << simd::level_name(best_level) << " kernel speedup: "
            << Table::num(kernel_ratio, 2)
            << "x (required >= 1.5), localize speedup: "
            << Table::num(rate_loc_simd / rate_loc_scalar, 2)
            << "x, identical predictions\n";
  if (kernel_ratio < 1.5) {
    std::cerr << "FAIL: " << simd::level_name(best_level) << " kernel only reaches "
              << kernel_ratio << "x scalar throughput (required >= 1.5)\n";
    return 1;
  }
  return 0;
}
