// Warm EcmpRouter lookup throughput, 1 -> 8 reader threads: wait-free
// snapshot reads vs the shared_mutex baseline read mode.
//
// This is the decode+join hot path of the streaming pipeline reduced to its
// essence: every joined record resolves an already-interned ToR-pair path
// set (path_set_between), then walks the set and one path. With the
// shared_mutex design every one of those reads bumps a reader count on a
// shared cache line — the scaling wall the ROADMAP called out. The snapshot
// design reads are a couple of acquire loads with no shared-memory writes,
// so throughput scales with reader threads instead of collapsing.
//
// The gate (mirroring pipeline_skew's parallelism-aware precedent): with
// >= 4 hardware threads the snapshot mode must deliver >= 2x the baseline's
// aggregate lookups/sec at 8 readers and >= 0.9x at 1 reader (parity); on
// fewer cores the same ratios are informational and only a sub-0.9x result
// at 1 reader fails, since contention behaviour under pure time-slicing is
// scheduler noise.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "pipeline/pipeline.h"
#include "topology/ecmp.h"
#include "topology/topology.h"

int main() {
  using namespace flock;
  using namespace flock::bench;

  print_header("Warm router lookups: snapshot read path vs shared_mutex, 1 -> 8 readers",
               "the EcmpRouter hot path of the §5 streaming service");

  const Topology topo = make_three_tier_clos(default_clos());
  std::vector<NodeId> tors;
  for (NodeId sw : topo.switches()) {
    if (topo.node(sw).kind == NodeKind::kTor) tors.push_back(sw);
  }
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId a : tors) {
    for (NodeId b : tors) pairs.emplace_back(a, b);
  }

  const auto lookups_per_thread =
      static_cast<std::size_t>(scaled_flows(400000));
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "workload: " << pairs.size() << " warm ToR pairs, " << lookups_per_thread
            << " lookups/thread (each = path_set_between + path_set + path walk), "
            << cores << " hardware threads\n\n";

  Table table({"mode", "readers", "seconds", "lookups/s", "vs shared_mutex"});
  BenchJson json("micro_router_reads");
  constexpr int kReps = 3;  // best-of-3: scheduling noise dominates short runs
  double ratio_at_1 = 0.0, ratio_at_8 = 0.0;
  std::vector<double> baseline_rate;  // per readers-index, shared_mutex mode

  for (const RouterReadMode mode :
       {RouterReadMode::kSharedMutexBaseline, RouterReadMode::kSnapshot}) {
    const bool snapshot = mode == RouterReadMode::kSnapshot;
    std::size_t readers_index = 0;
    for (const int readers : {1, 2, 4, 8}) {
      EcmpRouter router(topo, mode);
      router.build_all_tor_pairs();  // steady state: every pair interned
      const std::uint64_t cold_retries = router.read_retries();

      double best_seconds = 0.0;
      for (int rep = 0; rep < kReps; ++rep) {
        std::atomic<std::uint64_t> checksum{0};
        std::vector<std::thread> threads;
        threads.reserve(static_cast<std::size_t>(readers));
        Stopwatch watch;
        for (int t = 0; t < readers; ++t) {
          threads.emplace_back([&, t] {
            // Stride through the warm pairs; accumulate a checksum so the
            // reads cannot be optimized away.
            std::uint64_t sum = 0;
            std::size_t i = static_cast<std::size_t>(t) * 7919;
            for (std::size_t n = 0; n < lookups_per_thread; ++n) {
              const auto& [a, b] = pairs[i % pairs.size()];
              i += 13;
              const PathSetId id = router.path_set_between(a, b);
              const PathSet& ps = router.path_set(id);
              const Path& p = router.path(ps.paths.front());
              sum += static_cast<std::uint64_t>(ps.paths.size()) +
                     static_cast<std::uint64_t>(p.comps.back());
            }
            checksum.fetch_add(sum, std::memory_order_relaxed);
          });
        }
        for (std::thread& t : threads) t.join();
        const double seconds = watch.seconds();
        if (checksum.load() == 0) {
          std::cerr << "empty checksum: lookups did not run\n";
          return 1;
        }
        if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
      }
      if (router.read_retries() != cold_retries) {
        std::cerr << "warm lookups took the slow path ("
                  << router.read_retries() - cold_retries
                  << " retries): the snapshot index is broken\n";
        return 1;
      }

      const double total =
          static_cast<double>(lookups_per_thread) * static_cast<double>(readers);
      const double rate = total / best_seconds;
      double ratio = 0.0;
      if (!snapshot) {
        baseline_rate.push_back(rate);
      } else {
        ratio = rate / baseline_rate[readers_index];
        if (readers == 1) ratio_at_1 = ratio;
        if (readers == 8) ratio_at_8 = ratio;
      }
      table.add_row({snapshot ? "snapshot" : "shared_mutex", Table::integer(readers),
                     Table::num(best_seconds, 3), Table::num(rate, 0),
                     snapshot ? Table::num(ratio, 2) : "-"});
      json.add_row({{"readers", static_cast<double>(readers)},
                    {"snapshot", snapshot ? 1.0 : 0.0},
                    {"seconds", best_seconds},
                    {"records_per_sec", rate}});
      ++readers_index;
    }
  }
  table.print(std::cout);
  json.write();

  const bool enforce_scaling = cores >= 4;
  std::cout << "\nsnapshot/shared_mutex ratio: " << Table::num(ratio_at_1, 2)
            << " at 1 reader (required >= 0.9), " << Table::num(ratio_at_8, 2)
            << " at 8 readers (required >= 2.0 on >= 4 hardware threads; " << cores
            << " available";
  if (!enforce_scaling) {
    std::cout << ", so the 8-reader ratio is informational — contention relief"
                 "\n is parallelism, and pure time-slicing measures the scheduler";
  }
  std::cout << ")\n";
  if (ratio_at_1 < 0.9) {
    std::cerr << "FAIL: snapshot reads regress single-reader throughput (" << ratio_at_1
              << "x < 0.9x)\n";
    return 1;
  }
  if (enforce_scaling && ratio_at_8 < 2.0) {
    std::cerr << "FAIL: snapshot reads only reach " << ratio_at_8
              << "x of shared_mutex at 8 readers (required >= 2.0)\n";
    return 1;
  }
  return 0;
}
