// Device-failure triage: a line-card-style fault silently drops packets on
// half of one switch's links. Flock models devices as first-class
// components (with a 5x-stronger prior on the log scale), so the output
// names the switch itself when the evidence supports it, or the individual
// links when it does not.
#include <iostream>

#include "common/rng.h"
#include "core/flock_localizer.h"
#include "eval/metrics.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "flowsim/views.h"
#include "topology/topology.h"

int main() {
  using namespace flock;

  Topology topo = make_fat_tree(6);
  EcmpRouter router(topo);
  Rng rng(7);

  DropRateConfig rates;
  rates.bad_min = 5e-3;
  rates.bad_max = 1e-2;
  GroundTruth truth = make_device_failures(topo, /*num_devices=*/1, /*link_fraction=*/1.0,
                                           rates, rng);
  const ComponentId faulty_device = truth.failed.front();
  std::cout << "injected: " << topo.component_name(faulty_device) << " fails "
            << truth.device_failed_links.at(faulty_device).size() << " of its "
            << topo.device_links(topo.device_node(faulty_device)).size() << " links\n";

  TrafficConfig traffic;
  traffic.num_app_flows = 30000;
  const Trace trace = simulate(topo, router, std::move(truth), traffic, ProbeConfig{}, rng);

  ViewOptions view;
  view.telemetry = kTelemetryInt;
  const InferenceInput input = make_view(topo, router, trace, view);

  FlockOptions options;
  options.params.p_g = 1e-4;
  options.params.p_b = 6e-3;
  options.params.rho = 1e-3;
  const auto result = FlockLocalizer(options).localize(input);

  std::cout << "\nFlock's diagnosis:\n";
  for (ComponentId c : result.predicted) {
    std::cout << "  -> " << topo.component_name(c)
              << (topo.is_device_component(c) ? "   [device-level root cause]" : "") << "\n";
  }
  const Accuracy acc = evaluate_accuracy(topo, trace.truth, result.predicted);
  std::cout << "precision " << acc.precision << ", recall " << acc.recall
            << " (device recall credits the device itself or its failed links)\n";
  return acc.recall > 0.5 ? 0 : 1;
}
