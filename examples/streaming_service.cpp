// The Flock deployment of §5 run as a continuously streaming service: a
// simulated fleet of per-host agents exports IPFIX every reporting interval
// (one producer thread per pod, like per-rack aggregation points), the
// pipeline shards decode/join across collector shards, virtual-time epochs
// close as the exporters' clocks advance, and every epoch ends in a merged,
// equivalence-deduped diagnosis.
//
// Interval 0 is healthy; a silent link failure is injected from interval 1
// on. The service should stay quiet in epoch 0 and name the failed link's
// ECMP ambiguity class afterwards.
//
// Flags (default: in-process feed, same as always):
//   --listen[=PORT]  fleet exports over real loopback UDP into a
//                    UdpIngestServer (ephemeral port when omitted); the
//                    run additionally prints the net-layer counters
//   --capture=FILE   splice a CaptureTap before the pipeline: every offered
//                    datagram is logged for later replay
//   --replay=FILE    skip the fleet entirely and re-offer a captured log
//                    (routing state is reconstructed deterministically, so
//                    a same-build replay reproduces the captured run; the
//                    log's router fingerprint is checked against it)
//   --paced          with --replay: pace offers to the captured gaps
//   --speed=X        with --paced: compress/stretch the captured gaps by X
//   --tracker-save=FILE  snapshot the temporal tracker after the run
//   --tracker-load=FILE  restore a tracker snapshot before ingest, so the
//                    restarted service resumes blame streaks instead of
//                    relearning them (pairs with --replay of a split capture)
//   --localize-threads=N  intra-epoch worker team per localizer thread
//                    (common/parallel_for.h); diagnoses are byte-identical
//                    at any N — only the per-epoch latency changes
#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/rng.h"
#include "common/simd.h"
#include "service_args.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "net/dgram_log.h"
#include "net/ingest_server.h"
#include "net/udp_socket.h"
#include "pipeline/pipeline.h"
#include "telemetry/agent.h"
#include "topology/topology.h"

namespace {

using namespace flock;

int usage(const char* argv0, const std::string& error) {
  if (!error.empty()) std::cerr << argv0 << ": " << error << "\n";
  std::cerr << "usage: " << argv0 << " " << service_usage() << "\n";
  return 2;
}

// Block until the server's receive counter stays flat for ~200ms — the
// kernel buffer is drained and the interval's burst is fully inside the
// pipeline (epoch order stays clean across intervals).
void wait_for_drain(const UdpIngestServer& server) {
  std::uint64_t last = server.stats().datagrams_received;
  int quiet_polls = 0;
  while (quiet_polls < 4) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const std::uint64_t now = server.stats().datagrams_received;
    quiet_polls = now == last ? quiet_polls + 1 : 0;
    last = now;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flock;

  ServiceOptions opts;
  std::string parse_error;
  if (!parse_service_args(argc, argv, opts, parse_error)) return usage(argv[0], parse_error);

  const Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  Rng rng(23);
  DropRateConfig rates;
  rates.bad_min = 5e-3;
  rates.bad_max = 1e-2;
  const GroundTruth healthy = make_healthy(topo, rates, rng);
  const GroundTruth failed = make_silent_link_drops(topo, 1, rates, rng);
  const ComponentId true_failure = failed.failed.front();

  PipelineConfig config;
  config.num_shards = 4;
  config.epoch.virtual_seconds = 10;  // one epoch per reporting interval
  // Wall-clock backstop: if exporters go quiet mid-epoch (outage, partition)
  // the collected evidence still becomes a diagnosis within 30s.
  config.epoch.deadline = std::chrono::seconds(30);
  config.steal_batch = 128;  // idle shards steal from skewed racks
  config.localizer.params.p_g = 1e-4;
  config.localizer.params.p_b = 6e-3;
  config.localizer.params.rho = 1e-3;
  config.localizer.equivalence_epsilon = 1e-6;  // report whole ambiguity classes
  config.merge_equivalence_classes = true;
  // Cross-epoch layer: confirm after 2 consecutive blamed epochs, clear after
  // 2 quiet ones, and carry confirmed blame forward as a localization prior.
  config.temporal.confirm_epochs = 2;
  config.temporal.clear_epochs = 2;
  config.temporal.prior_weight = 1.0;
  config.localize_threads = opts.localize_threads;
  StreamingPipeline pipeline(topo, router, config);

  if (!opts.tracker_load.empty()) {
    // Restore BEFORE any datagram is offered: the snapshot rebases the
    // restarted scheduler's epoch 0 onto the saved stream's next epoch, and
    // load refuses once observations have started.
    std::ifstream is(opts.tracker_load, std::ios::binary);
    if (!is.good()) {
      std::cerr << "cannot open tracker snapshot " << opts.tracker_load << "\n";
      return 1;
    }
    try {
      pipeline.load_tracker(is);
    } catch (const std::exception& e) {
      std::cerr << "tracker restore failed: " << e.what() << "\n";
      return 1;
    }
    std::cout << "restored tracker snapshot from " << opts.tracker_load << "\n";
  }

  // The offer edge, optionally behind a capture tap: whatever feeds the
  // pipeline (in-process fleet, UDP server, or a replayed log) goes through
  // this one function, so the captured log is exactly what the pipeline saw.
  DgramOfferFn offer = [&pipeline](IngestDatagram d) {
    return pipeline.offer_wait(std::move(d));
  };
  std::optional<std::ofstream> capture_file;
  std::optional<CaptureTap> tap;
  if (!opts.capture.empty()) {
    capture_file.emplace(opts.capture, std::ios::binary | std::ios::trunc);
    if (!capture_file->good()) {
      std::cerr << "cannot open capture file " << opts.capture << "\n";
      return 1;
    }
    tap.emplace(*capture_file, offer);
    offer = tap->as_offer_fn();
  }

  constexpr int kIntervals = 3;
  std::optional<UdpIngestServer> server;

  if (!opts.replay.empty()) {
    // Replay mode: no fleet. Warm the router through the same deterministic
    // scenario construction the capturing run used — path-set ids are
    // assigned in construction order, so the replayed records resolve to the
    // very same routes and the run reproduces the capture.
    for (int interval = 0; interval < kIntervals; ++interval) {
      const GroundTruth& truth = interval == 0 ? healthy : failed;
      TrafficConfig traffic;
      traffic.num_app_flows = 6000;
      simulate(topo, router, truth, traffic, ProbeConfig{}, rng);
    }
    ReplayOptions replay_options;
    replay_options.paced = opts.paced;
    replay_options.speed = opts.speed;
    // The warm-up above interned the same path sets in the same order as the
    // capturing run, so the fingerprints must agree — a v2 log captured
    // against different routing state fails here instead of producing
    // silently wrong joins.
    replay_options.expect_fingerprint = router_fingerprint(router);
    try {
      const ReplayStats rs = replay_dgram_log(opts.replay, offer, replay_options);
      std::cout << "replayed " << rs.datagrams << " datagrams from " << opts.replay
                << (opts.paced ? " (paced)" : "") << "\n";
    } catch (const std::exception& e) {
      std::cerr << "replay failed: " << e.what() << "\n";
      return 1;
    }
  } else {
    if (opts.listen) {
      UdpIngestServerConfig server_config;
      server_config.port = opts.port;
      server_config.receiver_threads = 2;
      UdpIngestServer& s = server.emplace(
          server_config, offer, [&pipeline] { return pipeline.ingest_depth(); });
      std::string error;
      if (!s.start(&error)) {
        std::cerr << "cannot bind UDP ingest socket: " << error << "\n";
        return 1;
      }
      std::cout << "listening on " << to_string(s.endpoint()) << "\n";
    }

    // Group hosts by pod: one producer thread per pod each interval.
    std::unordered_map<std::int32_t, std::vector<NodeId>> pods;
    for (NodeId h : topo.hosts()) pods[topo.node(h).pod].push_back(h);

    for (int interval = 0; interval < kIntervals; ++interval) {
      const GroundTruth& truth = interval == 0 ? healthy : failed;
      TrafficConfig traffic;
      traffic.num_app_flows = 6000;
      Trace trace = simulate(topo, router, truth, traffic, ProbeConfig{}, rng);

      std::unordered_map<NodeId, Agent> agents;
      for (NodeId h : topo.hosts()) {
        AgentConfig cfg;
        cfg.observation_domain = static_cast<std::uint32_t>(h);
        agents.emplace(h, Agent(topo, cfg));
      }
      for (const SimFlow& f : trace.flows) {
        SimFlow report = f;
        if (f.kind == SimFlowKind::kApp) report.taken_path = -1;  // passive deployment
        agents.at(f.src_host).observe(report);
      }

      const auto export_time = static_cast<std::uint32_t>(1700000000 + interval * 10);
      std::vector<std::thread> fleet;
      fleet.reserve(pods.size());
      for (auto& [pod, hosts] : pods) {
        (void)pod;
        if (server) {
          // Wire path: each pod's aggregation point exports over its own
          // UDP socket (= one accounting agent per pod at the server).
          const UdpEndpoint to = server->endpoint();
          fleet.emplace_back([&agents, &hosts, export_time, to] {
            UdpSocket socket;
            if (!socket.open_unbound()) return;
            for (NodeId h : hosts) {
              for (auto& msg : agents.at(h).flush(export_time)) {
                socket.send_to(to, msg.data(), msg.size());
              }
            }
          });
        } else {
          fleet.emplace_back([&agents, &offer, &hosts, export_time] {
            for (NodeId h : hosts) {
              for (auto& msg : agents.at(h).flush(export_time)) {
                offer({node_to_addr(h), std::move(msg)});
              }
            }
          });
        }
      }
      for (std::thread& t : fleet) t.join();  // intervals are 10s apart; bursts don't overlap
      if (server) wait_for_drain(*server);    // and neither do the wire bursts
    }
  }
  if (server) server->stop();
  pipeline.stop();
  if (tap) {
    // The router was cold when the tap opened the log; now that the run
    // interned every path set, patch its identity into the header so a
    // future replay can refuse mismatched routing state.
    tap->set_router_fingerprint(router_fingerprint(router));
  }
  if (!opts.tracker_save.empty()) {
    std::ofstream os(opts.tracker_save, std::ios::binary | std::ios::trunc);
    if (!os.good()) {
      std::cerr << "cannot open tracker snapshot " << opts.tracker_save << "\n";
      return 1;
    }
    try {
      pipeline.save_tracker(os);
    } catch (const std::exception& e) {
      std::cerr << "tracker snapshot failed: " << e.what() << "\n";
      return 1;
    }
    std::cout << "saved tracker snapshot to " << opts.tracker_save << "\n";
  }

  // The true failure is only identifiable up to its ECMP equivalence class.
  const auto classes = ecmp_equivalence_classes(router);
  const std::vector<ComponentId>* truth_class = nullptr;
  for (const auto& cls : classes) {
    for (ComponentId c : cls) {
      if (c == true_failure) truth_class = &cls;
    }
  }

  PipelineStats stats = pipeline.stats();
  if (server) server->fold_into(stats);
  std::cout << "service processed " << stats.records_decoded << " records in "
            << stats.epochs_closed << " epochs (" << stats.dropped << " datagrams dropped, "
            << stats.batches_stolen << " batches stolen by idle shards, "
            << stats.deadline_epochs << " deadline-flushed epochs)\n";
  // Columnar-table dedup: identical observations collapse into weighted rows
  // before inference (see core/flow_table.h).
  std::cout << "inference saw " << stats.inference_observations
            << " observations as " << stats.inference_rows << " weighted rows ("
            << (stats.inference_rows > 0
                    ? static_cast<double>(stats.inference_observations) /
                          static_cast<double>(stats.inference_rows)
                    : 0.0)
            << "x dedup)\n";
  // SIMD kernel + epoch-memory recycling (see common/simd.h, common/arena.h).
  std::cout << "inference kernel: " << simd::level_name(simd::active_level())
            << " dispatch, " << stats.memo_hits << " memo hits; arenas recycled "
            << stats.arena_reuses << " tables / " << stats.arena_bytes_recycled
            << " bytes\n";
  // Intra-epoch parallelism (common/parallel_for.h): all zeros in the
  // default serial configuration.
  std::cout << "intra-epoch parallelism: " << stats.parallel_chunks << " localize chunks ("
            << stats.parallel_steals << " run by helpers, "
            << stats.localize_parallel_ns / 1000000 << " ms busy), "
            << stats.merge_parallel_chunks << " merge chunks ("
            << stats.merge_parallel_ns / 1000000 << " ms busy), "
            << stats.memo_table_reuses << " memo-table reuses\n";
  if (server) {
    // The wire edge's own books (see net/ingest_server.h): everything the
    // socket delivered is either quarantined, shed, or offered downstream.
    std::cout << "net: " << stats.net_datagrams_received << " datagrams received, malformed "
              << stats.net_malformed_short_header << " short / "
              << stats.net_malformed_bad_version << " bad-version / "
              << stats.net_malformed_length_mismatch << " length-mismatch, "
              << stats.net_admission_drops << " admission drops, " << stats.net_agents
              << " agents\n";
    for (const AgentAccount& a : server->agent_accounts()) {
      std::cout << "  agent " << to_string(a.endpoint) << ": " << a.datagrams
                << " datagrams, " << a.records << " records, " << a.bytes << " bytes, "
                << a.accepted << " accepted\n";
    }
  }
  if (tap) {
    std::cout << "captured " << tap->captured() << " datagrams to " << opts.capture << "\n";
  }
  std::cout << "injected failure (from interval 1): " << topo.component_name(true_failure)
            << "\n\n";

  bool found_failure = false;
  bool healthy_epoch_quiet = true;
  for (const auto& epoch : pipeline.results().completed()) {
    std::cout << "epoch " << epoch.epoch << ": " << epoch.flows << " flows in " << epoch.rows
              << " rows, " << epoch.close_to_merge_seconds * 1e3
              << " ms close->merge, diagnosis:";
    if (epoch.predicted.empty()) std::cout << " (healthy)";
    for (ComponentId c : epoch.predicted) std::cout << " " << topo.component_name(c);
    if (epoch.equivalent_merged > 0) {
      std::cout << "  [+" << epoch.equivalent_merged << " equivalent merged]";
    }
    std::cout << "\n";
    const bool hit = truth_class != nullptr &&
                     std::any_of(epoch.predicted.begin(), epoch.predicted.end(),
                                 [&](ComponentId c) {
                                   return std::find(truth_class->begin(), truth_class->end(),
                                                    c) != truth_class->end();
                                 });
    if (epoch.epoch == 0 && !epoch.predicted.empty()) healthy_epoch_quiet = false;
    if (epoch.epoch > 0 && hit) found_failure = true;
  }

  // The temporal layer's view: blamed-epoch streaks with hysteresis, not
  // per-epoch snap judgments (the injected fault should be `confirmed`).
  std::cout << "\ntemporal verdicts after " << pipeline.tracker().stats().epochs_observed
            << " epochs:\n";
  bool truth_confirmed = false;
  for (const ComponentVerdict& v : pipeline.tracker().verdicts()) {
    std::cout << "  " << topo.component_name(v.component) << ": " << to_string(v.state)
              << " (blamed streak " << v.blame_streak << ", duty "
              << v.duty_cycle << ", confirmed at epoch " << v.confirmed_epoch
              << " after " << v.epochs_to_confirm << " extra epoch(s))\n";
    const bool in_truth_class =
        truth_class != nullptr &&
        std::find(truth_class->begin(), truth_class->end(), v.component) != truth_class->end();
    if (in_truth_class && v.state == ComponentHealth::kConfirmed) truth_confirmed = true;
  }

  std::cout << "\n" << (found_failure ? "failure localized" : "failure MISSED")
            << (healthy_epoch_quiet ? "" : " (false alarm in healthy epoch)")
            << (truth_confirmed ? ", confirmed by the temporal tracker" : "") << "\n";
  return found_failure ? 0 : 1;
}
