// The Flock deployment of §5 run as a continuously streaming service: a
// simulated fleet of per-host agents exports IPFIX every reporting interval
// (one producer thread per pod, like per-rack aggregation points), the
// pipeline shards decode/join across collector shards, virtual-time epochs
// close as the exporters' clocks advance, and every epoch ends in a merged,
// equivalence-deduped diagnosis.
//
// Interval 0 is healthy; a silent link failure is injected from interval 1
// on. The service should stay quiet in epoch 0 and name the failed link's
// ECMP ambiguity class afterwards.
#include <algorithm>
#include <iostream>
#include <thread>
#include <unordered_map>

#include "common/rng.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "pipeline/pipeline.h"
#include "telemetry/agent.h"
#include "topology/topology.h"

int main() {
  using namespace flock;

  const Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  Rng rng(23);
  DropRateConfig rates;
  rates.bad_min = 5e-3;
  rates.bad_max = 1e-2;
  const GroundTruth healthy = make_healthy(topo, rates, rng);
  const GroundTruth failed = make_silent_link_drops(topo, 1, rates, rng);
  const ComponentId true_failure = failed.failed.front();

  PipelineConfig config;
  config.num_shards = 4;
  config.epoch.virtual_seconds = 10;  // one epoch per reporting interval
  // Wall-clock backstop: if exporters go quiet mid-epoch (outage, partition)
  // the collected evidence still becomes a diagnosis within 30s.
  config.epoch.deadline = std::chrono::seconds(30);
  config.steal_batch = 128;  // idle shards steal from skewed racks
  config.localizer.params.p_g = 1e-4;
  config.localizer.params.p_b = 6e-3;
  config.localizer.params.rho = 1e-3;
  config.localizer.equivalence_epsilon = 1e-6;  // report whole ambiguity classes
  config.merge_equivalence_classes = true;
  // Cross-epoch layer: confirm after 2 consecutive blamed epochs, clear after
  // 2 quiet ones, and carry confirmed blame forward as a localization prior.
  config.temporal.confirm_epochs = 2;
  config.temporal.clear_epochs = 2;
  config.temporal.prior_weight = 1.0;
  StreamingPipeline pipeline(topo, router, config);

  // Group hosts by pod: one producer thread per pod each interval.
  std::unordered_map<std::int32_t, std::vector<NodeId>> pods;
  for (NodeId h : topo.hosts()) pods[topo.node(h).pod].push_back(h);

  constexpr int kIntervals = 3;
  for (int interval = 0; interval < kIntervals; ++interval) {
    const GroundTruth& truth = interval == 0 ? healthy : failed;
    TrafficConfig traffic;
    traffic.num_app_flows = 6000;
    Trace trace = simulate(topo, router, truth, traffic, ProbeConfig{}, rng);

    std::unordered_map<NodeId, Agent> agents;
    for (NodeId h : topo.hosts()) {
      AgentConfig cfg;
      cfg.observation_domain = static_cast<std::uint32_t>(h);
      agents.emplace(h, Agent(topo, cfg));
    }
    for (const SimFlow& f : trace.flows) {
      SimFlow report = f;
      if (f.kind == SimFlowKind::kApp) report.taken_path = -1;  // passive deployment
      agents.at(f.src_host).observe(report);
    }

    const auto export_time = static_cast<std::uint32_t>(1700000000 + interval * 10);
    std::vector<std::thread> fleet;
    fleet.reserve(pods.size());
    for (auto& [pod, hosts] : pods) {
      (void)pod;
      fleet.emplace_back([&agents, &pipeline, &hosts, export_time] {
        for (NodeId h : hosts) {
          for (auto& msg : agents.at(h).flush(export_time)) {
            pipeline.offer_wait({node_to_addr(h), std::move(msg)});
          }
        }
      });
    }
    for (std::thread& t : fleet) t.join();  // intervals are 10s apart; bursts don't overlap
  }
  pipeline.stop();

  // The true failure is only identifiable up to its ECMP equivalence class.
  const auto classes = ecmp_equivalence_classes(router);
  const std::vector<ComponentId>* truth_class = nullptr;
  for (const auto& cls : classes) {
    for (ComponentId c : cls) {
      if (c == true_failure) truth_class = &cls;
    }
  }

  const auto stats = pipeline.stats();
  std::cout << "service processed " << stats.records_decoded << " records in "
            << stats.epochs_closed << " epochs (" << stats.dropped << " datagrams dropped, "
            << stats.batches_stolen << " batches stolen by idle shards, "
            << stats.deadline_epochs << " deadline-flushed epochs)\n";
  // Columnar-table dedup: identical observations collapse into weighted rows
  // before inference (see core/flow_table.h).
  std::cout << "inference saw " << stats.inference_observations
            << " observations as " << stats.inference_rows << " weighted rows ("
            << (stats.inference_rows > 0
                    ? static_cast<double>(stats.inference_observations) /
                          static_cast<double>(stats.inference_rows)
                    : 0.0)
            << "x dedup)\n";
  std::cout << "injected failure (from interval 1): " << topo.component_name(true_failure)
            << "\n\n";

  bool found_failure = false;
  bool healthy_epoch_quiet = true;
  for (const auto& epoch : pipeline.results().completed()) {
    std::cout << "epoch " << epoch.epoch << ": " << epoch.flows << " flows in " << epoch.rows
              << " rows, " << epoch.close_to_merge_seconds * 1e3
              << " ms close->merge, diagnosis:";
    if (epoch.predicted.empty()) std::cout << " (healthy)";
    for (ComponentId c : epoch.predicted) std::cout << " " << topo.component_name(c);
    if (epoch.equivalent_merged > 0) {
      std::cout << "  [+" << epoch.equivalent_merged << " equivalent merged]";
    }
    std::cout << "\n";
    const bool hit = truth_class != nullptr &&
                     std::any_of(epoch.predicted.begin(), epoch.predicted.end(),
                                 [&](ComponentId c) {
                                   return std::find(truth_class->begin(), truth_class->end(),
                                                    c) != truth_class->end();
                                 });
    if (epoch.epoch == 0 && !epoch.predicted.empty()) healthy_epoch_quiet = false;
    if (epoch.epoch > 0 && hit) found_failure = true;
  }

  // The temporal layer's view: blamed-epoch streaks with hysteresis, not
  // per-epoch snap judgments (the injected fault should be `confirmed`).
  std::cout << "\ntemporal verdicts after " << pipeline.tracker().stats().epochs_observed
            << " epochs:\n";
  bool truth_confirmed = false;
  for (const ComponentVerdict& v : pipeline.tracker().verdicts()) {
    std::cout << "  " << topo.component_name(v.component) << ": " << to_string(v.state)
              << " (blamed streak " << v.blame_streak << ", duty "
              << v.duty_cycle << ", confirmed at epoch " << v.confirmed_epoch
              << " after " << v.epochs_to_confirm << " extra epoch(s))\n";
    const bool in_truth_class =
        truth_class != nullptr &&
        std::find(truth_class->begin(), truth_class->end(), v.component) != truth_class->end();
    if (in_truth_class && v.state == ComponentHealth::kConfirmed) truth_confirmed = true;
  }

  std::cout << "\n" << (found_failure ? "failure localized" : "failure MISSED")
            << (healthy_epoch_quiet ? "" : " (false alarm in healthy epoch)")
            << (truth_confirmed ? ", confirmed by the temporal tracker" : "") << "\n";
  return found_failure ? 0 : 1;
}
