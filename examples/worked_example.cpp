// The paper's worked example (Fig 6 in the appendix): five links, five
// monitored flows, one failed link. 007's voting and NetBouncer's
// rate-solving both mis-localize; Flock's PGM inference finds the culprit.
//
// Network (hosts S1,S2,D1,D2; switches I1,I2):
//     S1 --\            /-- D1
//           I1 ---- I2
//     S2 --/            \-- D2   <- link I2-D2 silently drops ~5% of packets
//
// Flows (drops/sent): S1->D2 543/10K, S2->D2 461/10K, S1->D1 2/10K,
// S2->D1 0/10K, S2->D1 0/10K.
#include <iostream>

#include "baselines/netbouncer.h"
#include "baselines/zero07.h"
#include "core/flock_localizer.h"
#include "topology/topology.h"

int main() {
  using namespace flock;

  Topology topo;
  const NodeId i1 = topo.add_node(NodeKind::kAgg, 0, 1);
  const NodeId i2 = topo.add_node(NodeKind::kAgg, 0, 2);
  const NodeId s1 = topo.add_node(NodeKind::kHost, 0, 1);
  const NodeId s2 = topo.add_node(NodeKind::kHost, 0, 2);
  const NodeId d1 = topo.add_node(NodeKind::kHost, 1, 1);
  const NodeId d2 = topo.add_node(NodeKind::kHost, 1, 2);
  topo.add_link(s1, i1);
  topo.add_link(s2, i1);
  const LinkId i1_i2 = topo.add_link(i1, i2);
  const LinkId i2_d1 = topo.add_link(i2, d1);
  const LinkId i2_d2 = topo.add_link(i2, d2);
  (void)i1_i2;
  (void)i2_d1;

  EcmpRouter router(topo);
  InferenceInput input(topo, router);
  auto add_flow = [&](NodeId src, NodeId dst, std::uint32_t bad, std::uint32_t sent) {
    FlowObservation obs;
    obs.src_link = topo.link_component(topo.host_access_link(src));
    obs.dst_link = topo.link_component(topo.host_access_link(dst));
    obs.path_set = router.host_pair_path_set(src, dst);
    obs.taken_path = 0;  // single path in this topology; known to all schemes
    obs.packets_sent = sent;
    obs.bad_packets = bad;
    input.add(obs);
  };
  add_flow(s1, d2, 543, 10000);
  add_flow(s2, d2, 461, 10000);
  add_flow(s1, d1, 2, 10000);
  add_flow(s2, d1, 0, 10000);
  add_flow(s2, d1, 0, 10000);

  auto show = [&](const char* name, const LocalizationResult& result) {
    std::cout << name << " predicts:";
    if (result.predicted.empty()) std::cout << " (nothing)";
    for (ComponentId c : result.predicted) std::cout << " " << topo.component_name(c);
    std::cout << "\n";
  };

  Zero07Options z;
  z.score_threshold = 0.9;
  show("007       ", Zero07Localizer(z).localize(input));

  NetBouncerOptions nb;
  nb.drop_threshold = 2e-2;
  show("NetBouncer", NetBouncerLocalizer(nb).localize(input));

  FlockOptions f;
  f.params.p_g = 1e-3;
  f.params.p_b = 4e-2;
  f.params.rho = 1e-3;
  const auto flock = FlockLocalizer(f).localize(input);
  show("Flock     ", flock);

  const ComponentId truth = topo.link_component(i2_d2);
  const bool correct = flock.predicted == std::vector<ComponentId>{truth};
  std::cout << "\nground truth: " << topo.component_name(truth) << " -> Flock is "
            << (correct ? "correct" : "NOT correct") << "\n"
            << "Both flows to D2 are lossy while traffic to D1 is clean; the MLE\n"
            << "explanation is the single link I2-D2, not the shared upstream links\n"
            << "that voting/rate-thresholding schemes gravitate to.\n";
  return correct ? 0 : 1;
}
