// Flag parsing for examples/streaming_service — split out so the validation
// rules are unit-testable (tests/service_args_test.cpp) instead of only
// exercised by eyeballing the demo's stderr.
//
// Rules enforced here, not downstream:
//   --listen and --replay are exclusive (a service is fed by the wire or by
//     a log, never both);
//   --paced is meaningless without --replay (the live fleet sets its own
//     tempo) and is rejected rather than ignored;
//   --speed requires --paced and must be a finite value > 0 — replay_dgram_log
//     would throw the same complaint later, but a flag typo should die at the
//     usage line, not mid-replay;
//   --listen=PORT must parse as a UDP port (0..65535);
//   --localize-threads=N must be an integer >= 1 and fit the machine's
//     thread budget both alone and multiplied by the service's localizer
//     pool (oversubscription is a config error, not a slow run);
//   anything unrecognized is an error, never silently skipped.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <thread>

namespace flock {

struct ServiceOptions {
  bool listen = false;
  std::uint16_t port = 0;  // --listen only; 0 = ephemeral
  std::string capture;     // empty = no tap
  std::string replay;      // empty = live fleet
  bool paced = false;
  double speed = 1.0;        // --paced only; time-compression factor
  std::string tracker_save;  // snapshot the temporal tracker here after stop()
  std::string tracker_load;  // restore the tracker from here before ingest
  // Intra-epoch worker-team size per localizer thread (0 = default: the
  // FLOCK_LOCALIZE_THREADS env var, else serial). Pure performance lever —
  // diagnoses are byte-identical at any value (see common/parallel_for.h).
  std::int32_t localize_threads = 0;
};

// The service's localizer pool size; --localize-threads shares the machine
// budget with it (PipelineConfig.localizer_threads default).
inline constexpr std::int32_t kServiceLocalizerPool = 2;

inline const char* service_usage() {
  return "[--listen[=PORT]] [--capture=FILE] [--replay=FILE] [--paced] [--speed=X]"
         " [--tracker-save=FILE] [--tracker-load=FILE] [--localize-threads=N]";
}

// Parses argv[1..argc) into `opts`. Returns true on success; on failure
// `error` names the offending flag and why. `hardware_budget` bounds
// --localize-threads (0 = ask std::thread::hardware_concurrency; injectable
// so the budget rules are testable on any machine).
inline bool parse_service_args(int argc, const char* const* argv, ServiceOptions& opts,
                               std::string& error, unsigned hardware_budget = 0) {
  bool speed_given = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--listen") {
      opts.listen = true;
    } else if (arg.rfind("--listen=", 0) == 0) {
      opts.listen = true;
      const std::string value = arg.substr(9);
      try {
        std::size_t used = 0;
        const int port = std::stoi(value, &used);
        if (used != value.size() || port < 0 || port > 65535) throw std::invalid_argument("");
        opts.port = static_cast<std::uint16_t>(port);
      } catch (const std::exception&) {
        error = "--listen: '" + value + "' is not a UDP port (0..65535)";
        return false;
      }
    } else if (arg.rfind("--capture=", 0) == 0) {
      opts.capture = arg.substr(10);
    } else if (arg.rfind("--replay=", 0) == 0) {
      opts.replay = arg.substr(9);
    } else if (arg == "--paced") {
      opts.paced = true;
    } else if (arg.rfind("--speed=", 0) == 0) {
      const std::string value = arg.substr(8);
      try {
        std::size_t used = 0;
        opts.speed = std::stod(value, &used);
        if (used != value.size()) throw std::invalid_argument("");
      } catch (const std::exception&) {
        error = "--speed: '" + value + "' is not a number";
        return false;
      }
      speed_given = true;
    } else if (arg.rfind("--tracker-save=", 0) == 0) {
      opts.tracker_save = arg.substr(15);
    } else if (arg.rfind("--tracker-load=", 0) == 0) {
      opts.tracker_load = arg.substr(15);
    } else if (arg.rfind("--localize-threads=", 0) == 0) {
      const std::string value = arg.substr(19);
      try {
        std::size_t used = 0;
        const int threads = std::stoi(value, &used);
        if (used != value.size() || threads < 1) throw std::invalid_argument("");
        opts.localize_threads = threads;
      } catch (const std::exception&) {
        error = "--localize-threads: '" + value + "' is not an integer >= 1";
        return false;
      }
    } else {
      error = "unknown flag: " + arg;
      return false;
    }
  }
  if (opts.listen && !opts.replay.empty()) {
    error = "--listen and --replay are exclusive";
    return false;
  }
  if (opts.paced && opts.replay.empty()) {
    error = "--paced requires --replay";
    return false;
  }
  if (speed_given && !opts.paced) {
    error = "--speed requires --paced";
    return false;
  }
  if (speed_given && (!std::isfinite(opts.speed) || opts.speed <= 0)) {
    error = "--speed must be finite and > 0";
    return false;
  }
  if (opts.localize_threads > 0) {
    const unsigned budget =
        hardware_budget > 0 ? hardware_budget : std::thread::hardware_concurrency();
    if (budget > 0) {
      if (static_cast<unsigned>(opts.localize_threads) > budget) {
        error = "--localize-threads: " + std::to_string(opts.localize_threads) +
                " exceeds this machine's " + std::to_string(budget) + " hardware threads";
        return false;
      }
      // N = 1 is always fine (serial inside each pool worker); beyond that
      // every pool worker owns a team, so pool x N must fit the machine.
      if (opts.localize_threads > 1 &&
          static_cast<unsigned>(opts.localize_threads) * kServiceLocalizerPool > budget) {
        error = "--localize-threads: " + std::to_string(opts.localize_threads) + " x " +
                std::to_string(kServiceLocalizerPool) +
                " localizer pool threads exceeds the shared thread budget of " +
                std::to_string(budget);
        return false;
      }
    }
  }
  return true;
}

}  // namespace flock
