// End-to-end telemetry pipeline (§3.1, §5.1): per-host agents observe their
// flows, aggregate them into flow records, and export IPFIX messages; the
// central collector parses the messages, joins passive records with ECMP
// routes, and hands the inference engine its input — the full deployment
// loop of the Flock system, minus real NICs.
#include <iostream>
#include <unordered_map>

#include "common/rng.h"
#include "core/flock_localizer.h"
#include "eval/metrics.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "telemetry/agent.h"
#include "telemetry/collector.h"
#include "topology/topology.h"

int main() {
  using namespace flock;

  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  Rng rng(11);
  DropRateConfig rates;
  rates.bad_min = 5e-3;
  rates.bad_max = 1e-2;
  GroundTruth truth = make_silent_link_drops(topo, 1, rates, rng);
  TrafficConfig traffic;
  traffic.num_app_flows = 8000;
  const Trace trace = simulate(topo, router, std::move(truth), traffic, ProbeConfig{}, rng);

  // One agent per host. This deployment has no INT: agents export passive
  // records (no path), except for flagged flows which they traceroute (A2).
  std::unordered_map<NodeId, Agent> agents;
  for (NodeId h : topo.hosts()) {
    AgentConfig cfg;
    cfg.observation_domain = static_cast<std::uint32_t>(h);
    agents.emplace(h, Agent(topo, cfg));
  }
  for (const SimFlow& f : trace.flows) {
    SimFlow report = f;
    if (f.dropped == 0) report.taken_path = -1;  // passive: path unknown
    agents.at(f.src_host).observe(report);
  }

  // Export + collect.
  Collector collector(topo, router);
  std::size_t messages = 0;
  std::size_t bytes = 0;
  for (auto& [host, agent] : agents) {
    for (const auto& msg : agent.flush(/*export_time=*/1700000000)) {
      if (!collector.ingest(msg)) {
        std::cerr << "collector rejected a message\n";
        return 1;
      }
      ++messages;
      bytes += msg.size();
    }
  }
  std::cout << "agents exported " << messages << " IPFIX messages (" << bytes
            << " bytes) covering " << collector.pending_records() << " flows\n";

  // Periodic inference step.
  const InferenceInput input = collector.drain_into_input();
  FlockOptions options;
  options.params.p_g = 1e-4;
  options.params.p_b = 6e-3;
  options.params.rho = 1e-3;
  const auto result = FlockLocalizer(options).localize(input);

  std::cout << "diagnosis:";
  for (ComponentId c : result.predicted) std::cout << " " << topo.component_name(c);
  std::cout << "\nground truth: " << topo.component_name(trace.truth.failed.front()) << "\n";
  const Accuracy acc = evaluate_accuracy(topo, trace.truth, result.predicted);
  std::cout << "precision " << acc.precision << ", recall " << acc.recall << "\n";
  return acc.fscore() > 0.5 ? 0 : 1;
}
