// Quickstart: build a fat-tree, inject a silent gray failure, monitor the
// traffic, and let Flock localize the culprit.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "common/rng.h"
#include "core/flock_localizer.h"
#include "eval/metrics.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "flowsim/views.h"
#include "topology/topology.h"

int main() {
  using namespace flock;

  // 1. The network: a k=6 fat tree (54 hosts, 45 switches, 270 links).
  Topology topo = make_fat_tree(6);
  EcmpRouter router(topo);
  std::cout << "topology: " << topo.hosts().size() << " hosts, " << topo.switches().size()
            << " switches, " << topo.num_links() << " links\n";

  // 2. Ground truth: two links silently drop 0.5-1% of packets; good links
  //    drop up to 0.01% (background noise the inference must tolerate).
  Rng rng(2024);
  DropRateConfig rates;
  rates.bad_min = 5e-3;
  rates.bad_max = 1e-2;
  GroundTruth truth = make_silent_link_drops(topo, /*num_failures=*/2, rates, rng);
  for (ComponentId c : truth.failed) {
    std::cout << "injected failure: " << topo.component_name(c) << " (drop rate "
              << truth.link_drop_rate[static_cast<std::size_t>(topo.component_link(c))] * 100
              << "%)\n";
  }

  // 3. Monitoring: 20K application flows plus a host->core probe mesh.
  TrafficConfig traffic;
  traffic.num_app_flows = 20000;
  ProbeConfig probes;
  const Trace trace = simulate(topo, router, std::move(truth), traffic, probes, rng);

  // 4. Telemetry view: probes (A1) + flagged flows with paths (A2) + passive
  //    flow records with ECMP candidate sets (P).
  ViewOptions view;
  view.telemetry = kTelemetryA1 | kTelemetryA2 | kTelemetryP;
  const InferenceInput input = make_view(topo, router, trace, view);
  std::cout << "collector received " << input.num_flows() << " flow observations\n";

  // 5. Inference.
  FlockOptions options;
  options.params.p_g = 1e-4;  // per-packet problem probability, good path
  options.params.p_b = 6e-3;  // same, path with a failed component
  options.params.rho = 1e-3;  // a-priori failure probability per link
  const FlockLocalizer flock(options);
  const LocalizationResult result = flock.localize(input);

  std::cout << "\nFlock localized " << result.predicted.size() << " component(s) in "
            << result.seconds * 1e3 << " ms (" << result.hypotheses_scanned
            << " hypotheses scanned):\n";
  for (ComponentId c : result.predicted) {
    std::cout << "  -> " << topo.component_name(c) << "\n";
  }
  const Accuracy acc = evaluate_accuracy(topo, trace.truth, result.predicted);
  std::cout << "precision " << acc.precision << ", recall " << acc.recall << "\n";
  return acc.fscore() > 0.6 ? 0 : 1;
}
