// Passive-only localization (§7.6, Fig 5c): no probes, no INT — only
// NetFlow/IPFIX-style records whose paths are known up to the ECMP
// candidate set. Baselines cannot run on this input at all. Flock narrows
// the fault down to its ECMP equivalence class and reports the whole
// ambiguity set; topology irregularity shrinks those classes.
#include <algorithm>
#include <iostream>

#include "common/rng.h"
#include "core/flock_localizer.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "flowsim/views.h"
#include "topology/degrade.h"
#include "topology/topology.h"

int main() {
  using namespace flock;

  Rng rng(21);
  Topology full = make_fat_tree(6);
  // A mildly irregular datacenter: 3% of switch links are out for upgrades.
  Topology topo = degrade_topology(full, 0.03, rng);
  EcmpRouter router(topo);

  DropRateConfig rates;
  GroundTruth truth = make_silent_link_drops_fixed(topo, 1, /*drop=*/8e-3, rates, rng);
  const ComponentId culprit = truth.failed.front();
  std::cout << "injected failure: " << topo.component_name(culprit) << "\n";

  // The ECMP equivalence class of the culprit — the information-theoretic
  // limit of passive localization.
  EcmpRouter class_router(topo);
  const auto classes = ecmp_equivalence_classes(class_router);
  for (const auto& cls : classes) {
    if (std::find(cls.begin(), cls.end(), culprit) == cls.end()) continue;
    std::cout << "its equivalence class has " << cls.size() << " member(s):\n";
    for (ComponentId c : cls) std::cout << "   " << topo.component_name(c) << "\n";
  }

  TrafficConfig traffic;
  traffic.num_app_flows = 40000;
  ProbeConfig probes;
  probes.enabled = false;  // strictly passive
  const Trace trace = simulate(topo, router, std::move(truth), traffic, probes, rng);
  ViewOptions view;
  view.telemetry = kTelemetryP;
  const InferenceInput input = make_view(topo, router, trace, view);

  FlockOptions options;
  options.params.p_g = 1e-4;
  options.params.p_b = 6e-3;
  options.params.rho = 1e-4;
  options.equivalence_epsilon = 1e-6;  // report the whole ambiguity set
  const auto result = FlockLocalizer(options).localize(input);

  std::cout << "\nFlock (passive only) narrows the fault to " << result.predicted.size()
            << " candidate(s):\n";
  bool hit = false;
  for (ComponentId c : result.predicted) {
    const bool is_culprit = c == culprit;
    hit |= is_culprit;
    std::cout << "  -> " << topo.component_name(c) << (is_culprit ? "   <== the culprit" : "")
              << "\n";
  }
  std::cout << (hit ? "\nThe true failure is in the reported set — a 2-3 link starting point\n"
                      "for operators where every other scheme reports nothing.\n"
                    : "\nMissed in this run.\n");
  return hit ? 0 : 1;
}
