#!/usr/bin/env python3
"""Tool-independent mechanical format checks for the whole C++ tree.

clang-format (see .clang-format) is authoritative for layout, but CI only
enforces it on files a change touches — tool versions drift and historical
code should not fail a new PR. The invariants below are version-proof and
hold tree-wide, so they are enforced everywhere, always:

  * no tab characters
  * no trailing whitespace
  * LF line endings (no CR)
  * every file ends with exactly one newline
  * no line longer than 100 columns

Run with no arguments to check the default roots (src tests bench examples),
or pass explicit files/directories.
"""

import os
import sys

ROOTS = ["src", "tests", "bench", "examples"]
EXTENSIONS = (".h", ".cpp")
MAX_COLUMNS = 100


def collect(paths):
    out = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        for base, _, names in sorted(os.walk(path)):
            for name in sorted(names):
                if name.endswith(EXTENSIONS):
                    out.append(os.path.join(base, name))
    return out


def check(path):
    problems = []
    with open(path, "rb") as f:
        raw = f.read()
    if b"\r" in raw:
        problems.append("CR line ending")
    if not raw.endswith(b"\n"):
        problems.append("missing final newline")
    elif raw.endswith(b"\n\n"):
        problems.append("trailing blank line(s) at EOF")
    for lineno, line in enumerate(raw.split(b"\n")[:-1], start=1):
        if b"\t" in line:
            problems.append(f"line {lineno}: tab character")
        if line != line.rstrip():
            problems.append(f"line {lineno}: trailing whitespace")
        columns = len(line.decode("utf-8", "replace"))
        if columns > MAX_COLUMNS:
            problems.append(f"line {lineno}: {columns} columns (max {MAX_COLUMNS})")
    return problems


def main():
    targets = sys.argv[1:] or ROOTS
    files = collect(targets)
    if not files:
        print("no files to check")
        return 1
    failures = 0
    for path in files:
        for problem in check(path):
            print(f"{path}: {problem}")
            failures += 1
    print(f"checked {len(files)} files: ", end="")
    if failures:
        print(f"{failures} problem(s)")
        return 1
    print("clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
