#!/usr/bin/env python3
"""Run clang-tidy (config: .clang-tidy) over the tree, or a subset.

CI's TidyThreadSafety leg tidies only the .cpp files a change touches —
fast, and new code never lands findings — while this script's default mode
tidies every translation unit, for toolchain upgrades and for bringing the
whole tree to a new check set:

    scripts/run_clang_tidy.py -p build            # full tree
    scripts/run_clang_tidy.py -p build src/a.cpp  # explicit files

Requires a compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS is ON in
CMakeLists.txt, so any configured build dir has one; headers are covered
through the TUs that include them via HeaderFilterRegex). Exits non-zero if
clang-tidy is missing, any file fails, or a requested file has no compile
command — a silently skipped file would report as clean.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import time


def compile_command_files(build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    try:
        with open(db_path, encoding="utf-8") as f:
            db = json.load(f)
    except OSError as err:
        print(f"error: cannot read {db_path}: {err.strerror or err}")
        print("hint: configure with cmake first; CMAKE_EXPORT_COMPILE_COMMANDS is on")
        return None
    except json.JSONDecodeError as err:
        print(f"error: {db_path} is not valid JSON: {err}")
        return None
    return sorted({os.path.normpath(entry["file"]) for entry in db})


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="files to tidy (default: every TU in the db)")
    parser.add_argument("-p", "--build-dir", default="build", help="dir with compile_commands.json")
    parser.add_argument("--clang-tidy", default=os.environ.get("CLANG_TIDY", "clang-tidy"))
    parser.add_argument("-j", "--jobs", type=int, default=os.cpu_count() or 1)
    args = parser.parse_args()

    if shutil.which(args.clang_tidy) is None:
        print(f"error: {args.clang_tidy} not found on PATH")
        return 2

    known = compile_command_files(args.build_dir)
    if known is None:
        return 2

    if args.files:
        targets = []
        missing = []
        for path in args.files:
            norm = os.path.normpath(os.path.abspath(path))
            if norm in known:
                targets.append(norm)
            elif path.endswith(".h"):
                # Headers are checked through including TUs (HeaderFilterRegex);
                # a bare header on the command line is not an error, just noise.
                print(f"note: {path} is a header; covered via the TUs that include it")
            else:
                missing.append(path)
        if missing:
            for path in missing:
                print(f"error: {path} has no compile command (not a TU the build knows)")
            return 2
        if not targets:
            print("nothing to tidy (headers only)")
            return 0
    else:
        targets = known

    print(f"clang-tidy over {len(targets)} translation unit(s), {args.jobs} at a time")
    failures = []
    running = []

    def reap(block):
        nonlocal running
        still = []
        for path, proc in running:
            if not block and proc.poll() is None:
                still.append((path, proc))
                continue
            out, _ = proc.communicate()
            if proc.returncode != 0:
                failures.append(path)
                sys.stdout.write(out)
                print(f"FAIL {path}")
            elif out.strip():
                sys.stdout.write(out)
        running = still

    for path in targets:
        while len(running) >= args.jobs:
            before = len(running)
            reap(block=False)
            if len(running) == before:
                time.sleep(0.05)
        running.append(
            (
                path,
                subprocess.Popen(
                    [args.clang_tidy, "-p", args.build_dir, "--quiet", path],
                    stdout=subprocess.PIPE,
                    stderr=subprocess.STDOUT,
                    text=True,
                ),
            )
        )
    reap(block=True)

    if failures:
        print(f"\nclang-tidy: {len(failures)} file(s) with findings")
        return 1
    print("clang-tidy: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
