#!/usr/bin/env python3
"""Determinism linter: mechanical bans on the constructs that historically
break flock's central invariant — byte-identical results under any
concurrency configuration, SIMD width, or replay of a capture.

The sanitizer legs catch races; the equivalence tests catch divergence after
it happens. This linter bans the *sources* of divergence at review time:

  unordered-iteration   Iterating a std::unordered_map/unordered_set in
                        result-affecting code (src/core, src/pipeline).
                        Hash-table iteration order is libstdc++-version- and
                        seed-dependent; anything folded in that order is
                        nondeterministic. Keyed lookup/erase is fine.
  wall-clock            Direct std::chrono::*_clock::now() anywhere in src/
                        outside the injectable-clock implementation
                        (EpochScheduler's seam) and common/stopwatch.h.
                        Results must be a pure function of the datagram
                        sequence, never of when it arrived.
  rng                   rand()/srand()/std::random_device outside
                        src/common/rng.* — all randomness flows through the
                        seeded SplitMix64/Philox streams so runs replay.
  raw-new-delete        new/delete expressions. Ownership goes through
                        containers and smart pointers; the one sanctioned
                        exception (SnapshotStore's atomically-published
                        blocks) carries an allowance.
  parallel-reduction    std::reduce / std::transform_reduce /
                        std::execution::par / #pragma omp outside the two
                        files that implement fixed-order reductions
                        (common/simd.cpp, common/parallel_for.cpp).
                        Unordered float accumulation re-rounds differently
                        run to run.

Escape hatch: a line (or an immediately preceding comment line, up to
a few lines back) containing

    // flock-lint: allow(<rule>)

suppresses that rule for that line. Every allowance is expected to sit next
to a comment justifying it; the allowance list is printed with --list-allows
so reviews can audit them.

Run with no arguments to lint src/; pass explicit files/directories to
narrow. Exits non-zero on any finding.
"""

import os
import re
import sys

ROOTS = ["src"]
EXTENSIONS = (".h", ".cpp")
ALLOW_LOOKBACK = 3  # lines of preceding comment an allowance may sit in

ALLOW_RE = re.compile(r"flock-lint:\s*allow\(([a-z-]+)\)")
COMMENT_LINE_RE = re.compile(r"^\s*(//|\*|/\*)")

# Result-affecting directories for the unordered-iteration rule: everything
# whose output feeds snapshots, verdicts, or priors.
ORDER_SENSITIVE_DIRS = ("src/core", "src/pipeline")

WALL_CLOCK_WHITELIST = (
    "src/common/stopwatch.h",  # telemetry-only timing utility by contract
)
RNG_WHITELIST_PREFIX = "src/common/rng"
REDUCTION_WHITELIST = (
    "src/common/simd.cpp",  # fixed-order lane reduction, FMA off
    "src/common/parallel_for.cpp",  # ordered pairwise tree reduce()
)

UNORDERED_DECL_RE = re.compile(r"std::unordered_(?:map|set)<[^;{]*?>\s+(\w+)")
WALL_CLOCK_RE = re.compile(r"std::chrono::\w+_clock::now\s*\(")
RNG_RE = re.compile(r"(?:std::random_device|(?<![\w:])s?rand\s*\()")
NEW_RE = re.compile(r"(?<![\w.])new\s+[A-Za-z_:(]")
DELETE_RE = re.compile(r"(?<![\w.])delete(?:\[\])?\s+[A-Za-z_*(]")
REDUCTION_RE = re.compile(
    r"std::(?:transform_)?reduce|std::execution::par|#\s*pragma\s+omp"
)


def collect(paths):
    out = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        for base, _, names in sorted(os.walk(path)):
            for name in sorted(names):
                if name.endswith(EXTENSIONS):
                    out.append(os.path.join(base, name))
    return out


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line structure,
    so rule regexes never fire on prose or quoted text."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")  # unterminated (raw string etc.): bail
                    break
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def allowances(raw_lines):
    """Map line number -> set of allowed rules, honoring same-line allowances
    and allowances in up to ALLOW_LOOKBACK immediately preceding comment
    lines."""
    allowed = {}
    for lineno, line in enumerate(raw_lines, start=1):
        for match in ALLOW_RE.finditer(line):
            rule = match.group(1)
            allowed.setdefault(lineno, set()).add(rule)
            # Extend to following lines across a run of comment lines: the
            # allowance annotates the first code line after its comment.
            cursor = lineno
            while (
                cursor < len(raw_lines)
                and cursor - lineno < ALLOW_LOOKBACK
                and COMMENT_LINE_RE.match(raw_lines[cursor - 1])
            ):
                cursor += 1
                allowed.setdefault(cursor, set()).add(rule)
    return allowed


def is_allowed(allowed, lineno, rule):
    return rule in allowed.get(lineno, set())


def lint(path):
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    raw_lines = raw.split("\n")
    allowed = allowances(raw_lines)
    code = strip_comments_and_strings(raw)
    code_lines = code.split("\n")
    rel = path.replace(os.sep, "/")
    findings = []
    allows_used = []

    def report(lineno, rule, message):
        if is_allowed(allowed, lineno, rule):
            allows_used.append((lineno, rule))
            return
        findings.append((lineno, rule, message))

    # unordered-iteration: declared unordered container names, then any
    # range-for or explicit iterator walk over them. Only begin() marks a
    # walk — end() alone is the find()-miss comparison, which never observes
    # hash order.
    if rel.startswith(ORDER_SENSITIVE_DIRS):
        names = set(UNORDERED_DECL_RE.findall(code))
        if names:
            name_alt = "|".join(re.escape(n) for n in sorted(names))
            iter_re = re.compile(
                r"for\s*\([^();]*:\s*(?:this->)?(%s)\b|\b(%s)\s*\.\s*c?begin\s*\("
                % (name_alt, name_alt)
            )
            for lineno, line in enumerate(code_lines, start=1):
                m = iter_re.search(line)
                if m:
                    name = m.group(1) or m.group(2)
                    report(
                        lineno,
                        "unordered-iteration",
                        f"iteration over unordered container '{name}' "
                        "(hash order is not deterministic)",
                    )

    for lineno, line in enumerate(code_lines, start=1):
        if rel not in WALL_CLOCK_WHITELIST and WALL_CLOCK_RE.search(line):
            report(
                lineno,
                "wall-clock",
                "direct *_clock::now() (inject a clock, or justify an allowance)",
            )
        if not rel.startswith(RNG_WHITELIST_PREFIX) and RNG_RE.search(line):
            report(
                lineno,
                "rng",
                "unseeded randomness (use the src/common/rng streams)",
            )
        if rel not in REDUCTION_WHITELIST and REDUCTION_RE.search(line):
            report(
                lineno,
                "parallel-reduction",
                "unordered reduction primitive (float rounding order varies)",
            )
        if NEW_RE.search(line):
            report(lineno, "raw-new-delete", "raw new expression")
        if DELETE_RE.search(line):
            report(lineno, "raw-new-delete", "raw delete expression")

    return findings, allows_used


def main():
    args = [a for a in sys.argv[1:] if a != "--list-allows"]
    list_allows = "--list-allows" in sys.argv[1:]
    files = collect(args or ROOTS)
    if not files:
        print("no files to check")
        return 1
    failures = 0
    total_allows = 0
    for path in files:
        findings, allows_used = lint(path)
        total_allows += len(allows_used)
        if list_allows:
            for lineno, rule in allows_used:
                print(f"{path}:{lineno}: allowance used: {rule}")
        for lineno, rule, message in findings:
            print(f"{path}:{lineno}: [{rule}] {message}")
            failures += 1
    print(
        f"checked {len(files)} files: "
        + (f"{failures} finding(s)" if failures else "clean")
        + f" ({total_allows} allowance(s) in effect)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
