#!/usr/bin/env python3
"""Bench regression gate for the streaming pipeline.

Merges the per-bench JSON files that pipeline_throughput / pipeline_skew
write when FLOCK_BENCH_JSON is set into one artifact (BENCH_pipeline.json),
then compares every row's records_per_sec against the committed baseline
(bench/pipeline_baseline.json): the job fails if any configuration regresses
more than --tolerance (default 20%) below baseline.

Rows are matched by bench name plus every non-measured field (shards, steal,
...), so adding new configurations never breaks the gate — only rows present
in the baseline are enforced.

A baseline bench entry may carry "optional": true for benches that skip on
some machines (e.g. pipeline_soak needs a bindable loopback socket). When an
optional bench produced no rows at all in the current run, its baseline rows
are skipped with a notice instead of failing as missing; when it did run,
its rows are enforced like any other. Input files that do not exist are
likewise skipped with a notice — a skipped bench writes no JSON.

Environment:
  BENCH_REGRESSION_TOLERANCE  override the default 0.20
  BENCH_BASELINE_SKIP=1       merge only, skip the gate (machines much slower
                              than the baseline recorder)
"""

import argparse
import json
import os
import sys

METRIC = "records_per_sec"
MEASURED = {METRIC, "seconds"}  # every other field identifies the row


def row_key(bench, row):
    return (bench,) + tuple(sorted((k, v) for k, v in row.items() if k not in MEASURED))


def fmt_key(key):
    return key[0] + "".join(f" {k}={v:g}" for k, v in key[1:])


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="+", help="per-bench JSON files (FLOCK_BENCH_JSON output)")
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument("--out", default="BENCH_pipeline.json", help="merged artifact path")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_REGRESSION_TOLERANCE", "0.20")),
        help="allowed fractional drop below baseline (default 0.20)",
    )
    args = parser.parse_args()

    benches = []
    for path in args.inputs:
        if not os.path.exists(path):
            print(f"note: {path} not found (bench skipped on this machine)")
            continue
        benches.append(load(path))
    with open(args.out, "w") as f:
        json.dump({"benches": benches}, f, indent=2)
        f.write("\n")
    print(f"merged {len(benches)} bench report(s) into {args.out}")

    if os.environ.get("BENCH_BASELINE_SKIP") == "1":
        print("BENCH_BASELINE_SKIP=1: regression gate skipped")
        return 0

    current = {}
    ran_benches = set()
    for bench in benches:
        ran_benches.add(bench["bench"])
        for row in bench.get("rows", []):
            current[row_key(bench["bench"], row)] = row.get(METRIC)

    # A gate whose baseline cannot be read must fail loudly, not crash with a
    # traceback (same non-zero exit, but a CI log line someone can act on)
    # and must never "pass" because it compared against nothing.
    try:
        baseline = load(args.baseline)
    except OSError as err:
        print(f"error: cannot read baseline {args.baseline}: {err.strerror or err}")
        return 2
    except json.JSONDecodeError as err:
        print(f"error: baseline {args.baseline} is not valid JSON: {err}")
        return 2
    if not isinstance(baseline, dict) or not any(
        bench.get("rows") for bench in baseline.get("benches", [])
    ):
        print(f"error: baseline {args.baseline} has no enforceable rows — the gate would be vacuous")
        return 2

    failures = []
    for bench in baseline.get("benches", []):
        if bench.get("optional") and bench["bench"] not in ran_benches:
            print(f"note: optional bench '{bench['bench']}' absent from this run; skipped")
            continue
        for row in bench.get("rows", []):
            base = row.get(METRIC)
            if base is None:
                continue
            key = row_key(bench["bench"], row)
            cur = current.get(key)
            if cur is None:
                failures.append(f"{fmt_key(key)}: missing from current run")
                print(f"FAIL {fmt_key(key)}: missing from current run")
                continue
            floor = base * (1.0 - args.tolerance)
            ok = cur >= floor
            # Relative delta vs baseline on every row, and an explicit
            # near-miss flag when a passing row sits within 5% of its floor —
            # the rows to watch before they become regressions.
            delta = (cur - base) / base
            near_miss = ok and floor > 0 and cur < floor * 1.05
            print(
                f"{'ok  ' if ok else 'FAIL'} {fmt_key(key)}: "
                f"{cur:,.0f} rec/s vs baseline {base:,.0f} "
                f"({delta:+.1%}; floor {floor:,.0f})"
                + (" [near miss: within 5% of the floor]" if near_miss else "")
            )
            if not ok:
                failures.append(
                    f"{fmt_key(key)}: {cur:,.0f} rec/s is more than "
                    f"{args.tolerance:.0%} below baseline {base:,.0f} ({delta:+.1%})"
                )

    if failures:
        print(f"\n{len(failures)} regression(s) beyond {args.tolerance:.0%} tolerance:")
        for f_ in failures:
            print(f"  - {f_}")
        return 1
    print("\nno throughput regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
