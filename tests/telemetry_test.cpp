// Tests for the IPFIX codec and the agent -> collector pipeline.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "telemetry/agent.h"
#include "telemetry/collector.h"
#include "telemetry/flow_record.h"
#include "telemetry/ipfix.h"
#include "topology/topology.h"

namespace flock {
namespace {

FlowRecord sample_record(std::uint32_t i) {
  FlowRecord r;
  r.src_addr = node_to_addr(static_cast<NodeId>(i));
  r.dst_addr = node_to_addr(static_cast<NodeId>(i + 1));
  r.src_port = static_cast<std::uint16_t>(40000 + i);
  r.dst_port = 443;
  r.packets = 1000 + i;
  r.retransmissions = i % 7;
  r.mean_rtt_us = 250 + i;
  r.path_set = static_cast<std::int32_t>(i % 5) - 1;  // include -1
  r.taken_path = r.path_set >= 0 ? static_cast<std::int32_t>(i % 3) : -1;
  return r;
}

TEST(Ipfix, RoundTripSingleMessage) {
  std::vector<FlowRecord> records;
  for (std::uint32_t i = 0; i < 10; ++i) records.push_back(sample_record(i));
  IpfixEncoder enc(IpfixEncoderOptions{});
  const auto messages = enc.encode(records, 123456);
  ASSERT_EQ(messages.size(), 1u);

  IpfixDecoder dec;
  std::vector<FlowRecord> out;
  ASSERT_TRUE(dec.decode(messages[0], out));
  EXPECT_EQ(out, records);
  EXPECT_EQ(dec.stats().records, 10u);
  EXPECT_EQ(dec.stats().messages, 1u);
}

TEST(Ipfix, SplitsAcrossMessages) {
  std::vector<FlowRecord> records;
  for (std::uint32_t i = 0; i < 500; ++i) records.push_back(sample_record(i));
  IpfixEncoder enc(IpfixEncoderOptions{1, 512});
  const auto messages = enc.encode(records, 1);
  EXPECT_GT(messages.size(), 10u);
  for (const auto& m : messages) EXPECT_LE(m.size(), 512u);

  IpfixDecoder dec;
  std::vector<FlowRecord> out;
  for (const auto& m : messages) ASSERT_TRUE(dec.decode(m, out));
  EXPECT_EQ(out, records);
}

TEST(Ipfix, SequenceNumberCountsRecords) {
  IpfixEncoder enc(IpfixEncoderOptions{});
  std::vector<FlowRecord> batch(7, sample_record(1));
  enc.encode(batch, 1);
  EXPECT_EQ(enc.sequence(), 7u);
  enc.encode(batch, 2);
  EXPECT_EQ(enc.sequence(), 14u);
}

TEST(Ipfix, MalformedMessagesRejected) {
  IpfixDecoder dec;
  std::vector<FlowRecord> out;
  // Too short.
  EXPECT_FALSE(dec.decode({1, 2, 3}, out));
  // Bad version.
  std::vector<std::uint8_t> bad(16, 0);
  bad[0] = 0;
  bad[1] = 9;  // version 9, not IPFIX
  bad[3] = 16;
  EXPECT_FALSE(dec.decode(bad, out));
  // Length mismatch.
  IpfixEncoder enc(IpfixEncoderOptions{});
  auto msgs = enc.encode({sample_record(1)}, 1);
  auto truncated = msgs[0];
  truncated.pop_back();
  EXPECT_FALSE(dec.decode(truncated, out));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(dec.stats().malformed_messages, 3u);
}

TEST(Ipfix, DataBeforeTemplateIsSkippedNotFatal) {
  IpfixEncoder enc(IpfixEncoderOptions{});
  auto msgs = enc.encode({sample_record(1)}, 1);
  // Craft a message with only the data set by removing the template set.
  // Simpler: use a fresh decoder on a message from a *different* domain.
  IpfixEncoder other(IpfixEncoderOptions{99, 1400});
  auto other_msgs = other.encode({sample_record(2)}, 1);
  IpfixDecoder dec;
  std::vector<FlowRecord> out;
  // Both messages carry templates, so both decode; this asserts the decoder
  // keys templates per domain.
  EXPECT_TRUE(dec.decode(msgs[0], out));
  EXPECT_TRUE(dec.decode(other_msgs[0], out));
  EXPECT_EQ(out.size(), 2u);
}

TEST(Ipfix, RecordsWithUnknownPathRoundTripMinusOne) {
  FlowRecord r = sample_record(0);
  r.path_set = -1;
  r.taken_path = -1;
  IpfixEncoder enc(IpfixEncoderOptions{});
  IpfixDecoder dec;
  std::vector<FlowRecord> out;
  ASSERT_TRUE(dec.decode(enc.encode({r}, 1)[0], out));
  EXPECT_EQ(out[0].path_set, -1);
  EXPECT_EQ(out[0].taken_path, -1);
}

// --- agent + collector end-to-end ---------------------------------------------

struct PipelineFixture {
  Topology topo = make_fat_tree(4);
  EcmpRouter router{topo};
  Trace trace;

  PipelineFixture() {
    Rng rng(42);
    GroundTruth truth = make_silent_link_drops(topo, 1, DropRateConfig{1e-4, 5e-3, 1e-2}, rng);
    TrafficConfig traffic;
    traffic.num_app_flows = 600;
    trace = simulate(topo, router, std::move(truth), traffic, ProbeConfig{}, rng);
  }
};

TEST(Pipeline, AgentToCollectorPreservesFlows) {
  PipelineFixture fx;
  // One agent per host; flows assigned to their source host's agent.
  std::vector<Agent> agents;
  agents.reserve(fx.topo.hosts().size());
  for (NodeId h : fx.topo.hosts()) {
    AgentConfig cfg;
    cfg.observation_domain = static_cast<std::uint32_t>(h);
    agents.emplace_back(fx.topo, cfg);
  }
  std::unordered_map<NodeId, std::size_t> agent_of;
  for (std::size_t i = 0; i < fx.topo.hosts().size(); ++i) agent_of[fx.topo.hosts()[i]] = i;

  std::size_t observed = 0;
  for (const SimFlow& f : fx.trace.flows) {
    SimFlow passive = f;
    if (f.kind == SimFlowKind::kApp) passive.taken_path = -1;  // passive deployment
    agents[agent_of[f.src_host]].observe(passive);
    ++observed;
  }

  Collector collector(fx.topo, fx.router);
  std::size_t messages = 0;
  for (Agent& a : agents) {
    for (const auto& msg : a.flush(1000)) {
      ASSERT_TRUE(collector.ingest(msg));
      ++messages;
    }
  }
  EXPECT_GT(messages, 0u);
  EXPECT_EQ(collector.pending_records(), observed);

  const InferenceInput input = collector.drain_into_input();
  EXPECT_EQ(collector.unresolved_records(), 0u);
  EXPECT_EQ(input.num_flows(), observed);
  EXPECT_EQ(collector.pending_records(), 0u);

  // Packet totals preserved through the wire format.
  std::uint64_t sim_packets = 0, col_packets = 0;
  for (const SimFlow& f : fx.trace.flows) sim_packets += f.packets_sent;
  for (const auto& obs : input.expanded_flows()) col_packets += obs.packets_sent;
  EXPECT_EQ(sim_packets, col_packets);
}

TEST(Pipeline, KnownPathsSurviveTheWire) {
  PipelineFixture fx;
  AgentConfig cfg;
  Agent agent(fx.topo, cfg);
  // INT-style deployment: paths stay attached.
  for (const SimFlow& f : fx.trace.flows) agent.observe(f);
  Collector collector(fx.topo, fx.router);
  for (const auto& msg : agent.flush(1)) ASSERT_TRUE(collector.ingest(msg));
  const InferenceInput input = collector.drain_into_input();
  ASSERT_EQ(input.num_flows(), fx.trace.flows.size());
  for (const auto& obs : input.expanded_flows()) EXPECT_TRUE(obs.path_known());
}

TEST(Pipeline, SamplingReducesRecords) {
  PipelineFixture fx;
  AgentConfig cfg;
  cfg.sample_rate = 0.3;
  Agent agent(fx.topo, cfg);
  for (const SimFlow& f : fx.trace.flows) agent.observe(f);
  EXPECT_LT(agent.pending_records(), fx.trace.flows.size() / 2);
  EXPECT_GT(agent.pending_records(), fx.trace.flows.size() / 10);
}

TEST(Pipeline, CollectorRejectsGarbage) {
  PipelineFixture fx;
  Collector collector(fx.topo, fx.router);
  EXPECT_FALSE(collector.ingest({0xde, 0xad, 0xbe, 0xef}));
  EXPECT_EQ(collector.pending_records(), 0u);
}

TEST(Pipeline, PerFlowLatencyMode) {
  PipelineFixture fx;
  for (SimFlow& f : fx.trace.flows) f.rtt_ms = 50.0f;
  AgentConfig cfg;
  Agent agent(fx.topo, cfg);
  for (const SimFlow& f : fx.trace.flows) agent.observe(f);
  CollectorOptions copt;
  copt.per_flow_latency = true;
  copt.rtt_threshold_ms = 10.0;
  Collector collector(fx.topo, fx.router, copt);
  for (const auto& msg : agent.flush(1)) ASSERT_TRUE(collector.ingest(msg));
  const auto input = collector.drain_into_input();
  for (const auto& obs : input.expanded_flows()) {
    EXPECT_EQ(obs.packets_sent, 1u);
    EXPECT_EQ(obs.bad_packets, 1u);
  }
}

}  // namespace
}  // namespace flock
