# Negative-compile harness for the thread-safety annotations.
#
# The GUARDED_BY/REQUIRES/EXCLUDES scheme (src/common/thread_annotations.h)
# is only worth its ink if misuse actually breaks the build. This script
# proves it, in both directions:
#
#   * every tests/static_analysis/pass_*.cpp MUST compile cleanly under
#     -Wthread-safety -Werror=thread-safety (the annotations don't reject
#     correct code), and
#   * every tests/static_analysis/fail_*.cpp MUST FAIL to compile, with a
#     diagnostic that mentions thread safety (the annotations reject the
#     specific misuse the snippet commits — not some unrelated syntax error).
#
# Run via ctest (test name: static_analysis) or directly:
#   cmake -DCXX=clang++ -DSRC_DIR=$PWD -P tests/static_analysis_test.cmake
#
# The analysis only exists in clang. On any other compiler the script prints
# [SKIP-NOT-CLANG], which the ctest registration maps to a SKIPPED result
# (SKIP_REGULAR_EXPRESSION — cmake 3.25's -P mode cannot return custom exit
# codes).

if(NOT DEFINED CXX OR NOT DEFINED SRC_DIR)
  message(FATAL_ERROR "usage: cmake -DCXX=<compiler> -DSRC_DIR=<repo root> -P ${CMAKE_SCRIPT_MODE_FILE}")
endif()

execute_process(
  COMMAND ${CXX} --version
  OUTPUT_VARIABLE compiler_version
  ERROR_VARIABLE compiler_version_err
  RESULT_VARIABLE version_rc)
if(NOT version_rc EQUAL 0 OR NOT compiler_version MATCHES "[Cc]lang")
  message(STATUS "[SKIP-NOT-CLANG] ${CXX} is not clang; -Wthread-safety does not exist here")
  return()
endif()

set(flags -std=c++20 -fsyntax-only -Wthread-safety -Werror=thread-safety
    -I${SRC_DIR}/src)

file(GLOB pass_snippets ${SRC_DIR}/tests/static_analysis/pass_*.cpp)
file(GLOB fail_snippets ${SRC_DIR}/tests/static_analysis/fail_*.cpp)
if(pass_snippets STREQUAL "" OR fail_snippets STREQUAL "")
  message(FATAL_ERROR "static_analysis: snippet directory is empty — harness misconfigured")
endif()

foreach(snippet ${pass_snippets})
  get_filename_component(name ${snippet} NAME)
  execute_process(
    COMMAND ${CXX} ${flags} ${snippet}
    RESULT_VARIABLE rc
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "static_analysis: ${name} must compile cleanly but failed:\n${err}")
  endif()
  message(STATUS "static_analysis: ${name} compiled cleanly (as required)")
endforeach()

foreach(snippet ${fail_snippets})
  get_filename_component(name ${snippet} NAME)
  execute_process(
    COMMAND ${CXX} ${flags} ${snippet}
    RESULT_VARIABLE rc
    ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR
      "static_analysis: ${name} compiled, but it commits a locking-discipline "
      "violation the annotations are supposed to reject — the thread-safety "
      "scheme has rotted into decoration")
  endif()
  # The failure must come from the analysis, not from an accidental syntax
  # error that would hide annotation rot behind a broken snippet.
  if(NOT err MATCHES "thread-safety|thread safety")
    message(FATAL_ERROR
      "static_analysis: ${name} failed for the wrong reason (no thread-safety "
      "diagnostic in the output):\n${err}")
  endif()
  message(STATUS "static_analysis: ${name} rejected (as required)")
endforeach()

list(LENGTH pass_snippets num_pass)
list(LENGTH fail_snippets num_fail)
message(STATUS
  "static_analysis: ${num_pass} pass + ${num_fail} fail snippets all behaved")
