"""Self-tests for scripts/check_bench_regression.py.

The regression gate's own failure modes were untested, and one of them was a
real bug: a missing or unparseable --baseline crashed with a traceback —
technically non-zero, but indistinguishable in CI from the script itself
being broken, and one refactor away from a swallowed exception silently
passing the gate. These tests pin the contract: unreadable and vacuous
baselines exit 2 with an actionable message; real comparisons still pass and
fail exactly as before.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
GATE = os.path.join(REPO, "scripts", "check_bench_regression.py")


def write_json(path, payload):
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f)


def bench_report(name, rate):
    return {"bench": name, "rows": [{"shards": 4, "records_per_sec": rate}]}


class BenchRegressionGateTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory(prefix="flock_bench_gate_")
        self.addCleanup(self.tmp.cleanup)
        self.input = os.path.join(self.tmp.name, "bench_a.json")
        write_json(self.input, bench_report("bench_a", 1000.0))

    def run_gate(self, baseline_arg):
        return subprocess.run(
            [
                sys.executable,
                GATE,
                self.input,
                "--baseline",
                baseline_arg,
                "--out",
                os.path.join(self.tmp.name, "merged.json"),
            ],
            capture_output=True,
            text=True,
            check=False,
            cwd=self.tmp.name,
        )

    def baseline_path(self, payload):
        path = os.path.join(self.tmp.name, "baseline.json")
        write_json(path, payload)
        return path

    # --- the fixed failure modes -------------------------------------------

    def test_missing_baseline_exits_nonzero_without_traceback(self):
        proc = self.run_gate(os.path.join(self.tmp.name, "does_not_exist.json"))
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)
        self.assertIn("cannot read baseline", proc.stdout)
        self.assertNotIn("Traceback", proc.stderr)

    def test_unparseable_baseline_exits_nonzero_without_traceback(self):
        path = os.path.join(self.tmp.name, "baseline.json")
        with open(path, "w", encoding="utf-8") as f:
            f.write("{not json at all")
        proc = self.run_gate(path)
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)
        self.assertIn("not valid JSON", proc.stdout)
        self.assertNotIn("Traceback", proc.stderr)

    def test_vacuous_baseline_rejected(self):
        # No rows to enforce — comparing against nothing must not "pass".
        proc = self.run_gate(self.baseline_path({"benches": []}))
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)
        self.assertIn("no enforceable rows", proc.stdout)

    # --- unchanged comparison behavior -------------------------------------

    def test_within_tolerance_passes(self):
        baseline = {"benches": [bench_report("bench_a", 1100.0)]}
        proc = self.run_gate(self.baseline_path(baseline))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("no throughput regressions", proc.stdout)

    def test_regression_beyond_tolerance_fails(self):
        baseline = {"benches": [bench_report("bench_a", 2000.0)]}
        proc = self.run_gate(self.baseline_path(baseline))
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("FAIL", proc.stdout)

    def test_missing_row_fails(self):
        baseline = {"benches": [bench_report("bench_never_ran", 10.0)]}
        proc = self.run_gate(self.baseline_path(baseline))
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("missing from current run", proc.stdout)


if __name__ == "__main__":
    unittest.main()
