"""Self-tests for scripts/check_determinism.py.

The linter gates CI, so it needs the same treatment as any other gate: proof
that each rule fires on its target construct, stays quiet on the sanctioned
equivalents, honors the allowance escape hatch, and never matches prose in
comments or string literals.

Each test copies fixture snippets (tests/lint_fixtures/) into a temp tree at
the relative location that puts them in the rule's scope — e.g. the
unordered-iteration rule only applies under src/core and src/pipeline — and
runs the linter as a subprocess from that tree, exactly as CI does.
"""

import os
import shutil
import subprocess
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
LINTER = os.path.join(REPO, "scripts", "check_determinism.py")
FIXTURES = os.path.join(REPO, "tests", "lint_fixtures")


def run_linter(cwd, *args):
    return subprocess.run(
        [sys.executable, LINTER, *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        check=False,
    )


class LinterFixtureTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.mkdtemp(prefix="flock_lint_")
        self.addCleanup(shutil.rmtree, self.tmp)

    def place(self, fixture, rel_dir="src/pipeline"):
        """Copy a fixture into the temp tree at rel_dir; returns the relative
        path the linter should be pointed at."""
        dest_dir = os.path.join(self.tmp, rel_dir)
        os.makedirs(dest_dir, exist_ok=True)
        dest = os.path.join(dest_dir, fixture)
        shutil.copyfile(os.path.join(FIXTURES, fixture), dest)
        return os.path.join(rel_dir, fixture)

    def assert_flagged(self, fixture, rule, rel_dir="src/pipeline", count=None):
        rel = self.place(fixture, rel_dir)
        proc = run_linter(self.tmp, rel)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn(f"[{rule}]", proc.stdout)
        if count is not None:
            self.assertEqual(proc.stdout.count(f"[{rule}]"), count, proc.stdout)

    def assert_clean(self, fixture, rel_dir="src/pipeline"):
        rel = self.place(fixture, rel_dir)
        proc = run_linter(self.tmp, rel)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("clean", proc.stdout)

    # --- one test per rule, firing direction --------------------------------

    def test_unordered_iteration_flagged(self):
        self.assert_flagged(
            "unordered_iteration_bad.cpp", "unordered-iteration", count=1
        )

    def test_wall_clock_flagged(self):
        self.assert_flagged("wall_clock_bad.cpp", "wall-clock")

    def test_rng_flagged(self):
        # Both std::random_device and rand() on one line: two findings max,
        # at least one reported.
        self.assert_flagged("rng_bad.cpp", "rng")

    def test_raw_new_delete_flagged(self):
        self.assert_flagged("raw_new_delete_bad.cpp", "raw-new-delete", count=2)

    def test_parallel_reduction_flagged(self):
        self.assert_flagged("parallel_reduction_bad.cpp", "parallel-reduction")

    # --- quiet direction ----------------------------------------------------

    def test_keyed_lookup_not_flagged(self):
        self.assert_clean("unordered_iteration_ok.cpp")

    def test_unordered_iteration_out_of_scope_dir_not_flagged(self):
        # The same iterating fixture outside src/core|src/pipeline is fine:
        # telemetry/topology code may iterate as long as nothing
        # result-affecting folds in hash order.
        self.assert_clean("unordered_iteration_bad.cpp", rel_dir="src/telemetry")

    def test_allowance_suppresses(self):
        self.assert_clean("wall_clock_allowed.cpp")

    def test_comments_and_strings_ignored(self):
        self.assert_clean("clean_ok.cpp")

    # --- reporting contract -------------------------------------------------

    def test_list_allows_reports_suppressions(self):
        rel = self.place("wall_clock_allowed.cpp")
        proc = run_linter(self.tmp, rel, "--list-allows")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("allowance used: wall-clock", proc.stdout)

    def test_allowance_for_wrong_rule_does_not_suppress(self):
        dest_dir = os.path.join(self.tmp, "src/pipeline")
        os.makedirs(dest_dir, exist_ok=True)
        path = os.path.join(dest_dir, "wrong_allow.cpp")
        with open(path, "w", encoding="utf-8") as f:
            f.write(
                "#include <chrono>\n"
                "auto t() {\n"
                "  return std::chrono::steady_clock::now();"
                "  // flock-lint: allow(rng)\n"
                "}\n"
            )
        proc = run_linter(self.tmp, "src/pipeline/wrong_allow.cpp")
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("[wall-clock]", proc.stdout)


class RealTreeTest(unittest.TestCase):
    def test_repo_src_is_clean(self):
        """The committed tree must lint clean — the same invocation CI runs."""
        proc = run_linter(REPO)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("clean", proc.stdout)


if __name__ == "__main__":
    unittest.main()
