// Property-based sweeps: invariants that must hold across telemetry types,
// seeds, topologies and schemes, exercised with parameterized gtest.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "baselines/netbouncer.h"
#include "baselines/zero07.h"
#include "common/rng.h"
#include "core/flock_localizer.h"
#include "core/likelihood_engine.h"
#include "eval/metrics.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "flowsim/views.h"
#include "topology/topology.h"

namespace flock {
namespace {

FlockParams params() {
  FlockParams p;
  p.p_g = 1e-4;
  p.p_b = 6e-3;
  p.rho = 1e-3;
  return p;
}

// ---------------------------------------------------------------------------
// Engine invariants across (telemetry, seed).
// ---------------------------------------------------------------------------

class EngineInvariants
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
 protected:
  void SetUp() override {
    topo_ = std::make_unique<Topology>(make_fat_tree(4));
    router_ = std::make_unique<EcmpRouter>(*topo_);
    Rng rng(std::get<1>(GetParam()));
    DropRateConfig rates;
    rates.bad_min = 4e-3;
    GroundTruth truth = make_silent_link_drops(*topo_, 2, rates, rng);
    TrafficConfig traffic;
    traffic.num_app_flows = 1500;
    trace_ = simulate(*topo_, *router_, std::move(truth), traffic, ProbeConfig{}, rng);
    ViewOptions view;
    view.telemetry = std::get<0>(GetParam());
    input_ = std::make_unique<InferenceInput>(make_view(*topo_, *router_, trace_, view));
  }

  std::unique_ptr<Topology> topo_;
  std::unique_ptr<EcmpRouter> router_;
  Trace trace_;
  std::unique_ptr<InferenceInput> input_;
};

TEST_P(EngineInvariants, RandomWalkReturnsToZero) {
  // Any sequence of flips followed by its reverse restores LL(H0) = 0 and
  // the exact Delta array.
  LikelihoodEngine engine(*input_, params());
  Rng rng(5);
  std::vector<ComponentId> walk;
  for (int i = 0; i < 10; ++i) {
    walk.push_back(static_cast<ComponentId>(
        rng.next_below(static_cast<std::uint64_t>(engine.num_components()))));
  }
  std::vector<double> delta0(static_cast<std::size_t>(engine.num_components()));
  for (ComponentId c = 0; c < engine.num_components(); ++c) {
    delta0[static_cast<std::size_t>(c)] = engine.flip_delta_ll(c);
  }
  for (ComponentId c : walk) engine.flip(c);
  for (auto it = walk.rbegin(); it != walk.rend(); ++it) engine.flip(*it);
  EXPECT_NEAR(engine.log_likelihood(), 0.0, 1e-6);
  EXPECT_NEAR(engine.log_posterior(), 0.0, 1e-6);
  EXPECT_EQ(engine.hypothesis_size(), 0);
  for (ComponentId c = 0; c < engine.num_components(); ++c) {
    EXPECT_NEAR(engine.flip_delta_ll(c), delta0[static_cast<std::size_t>(c)], 1e-6) << c;
  }
}

TEST_P(EngineInvariants, FlipDeltaAntisymmetry) {
  // After flipping c, Delta[c] must be the exact negative of its pre-flip
  // value (H'' = H).
  LikelihoodEngine engine(*input_, params());
  Rng rng(9);
  for (int i = 0; i < 6; ++i) {
    const auto c = static_cast<ComponentId>(
        rng.next_below(static_cast<std::uint64_t>(engine.num_components())));
    const double before = engine.flip_delta_ll(c);
    engine.flip(c);
    EXPECT_NEAR(engine.flip_delta_ll(c), -before, 1e-7 + 1e-10 * std::abs(before));
  }
}

TEST_P(EngineInvariants, PosteriorDecomposition) {
  // log_posterior == log_likelihood + sum of prior costs of H.
  LikelihoodEngine engine(*input_, params());
  Rng rng(13);
  for (int i = 0; i < 8; ++i) {
    engine.flip(static_cast<ComponentId>(
        rng.next_below(static_cast<std::uint64_t>(engine.num_components()))));
  }
  double prior = 0;
  for (ComponentId c : engine.hypothesis()) prior += engine.prior_cost(c);
  EXPECT_NEAR(engine.log_posterior(), engine.log_likelihood() + prior, 1e-8);
}

TEST_P(EngineInvariants, GreedyStopsAtLocalMaximum) {
  // At termination, no single addition improves the posterior.
  FlockOptions opt;
  opt.params = params();
  const auto result = FlockLocalizer(opt).localize(*input_);
  LikelihoodEngine engine(*input_, params());
  for (ComponentId c : result.predicted) engine.flip(c);
  for (ComponentId c = 0; c < engine.num_components(); ++c) {
    if (engine.failed(c)) continue;
    EXPECT_LE(engine.flip_score(c), 1e-9) << "improvable at " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineInvariants,
    ::testing::Combine(::testing::Values<std::uint32_t>(kTelemetryInt, kTelemetryA2,
                                                        kTelemetryP,
                                                        kTelemetryA1 | kTelemetryA2 |
                                                            kTelemetryP),
                       ::testing::Values<std::uint64_t>(301, 302)));

// ---------------------------------------------------------------------------
// Scheme-level invariants across seeds.
// ---------------------------------------------------------------------------

class SchemeInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchemeInvariants, AccuracyIsBounded) {
  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  Rng rng(GetParam());
  GroundTruth truth = make_silent_link_drops(topo, 2, DropRateConfig{}, rng);
  TrafficConfig traffic;
  traffic.num_app_flows = 1500;
  const Trace trace = simulate(topo, router, std::move(truth), traffic, ProbeConfig{}, rng);
  ViewOptions view;
  view.telemetry = kTelemetryInt;
  const auto input = make_view(topo, router, trace, view);

  FlockOptions fopt;
  fopt.params = params();
  for (const Localizer* loc :
       {static_cast<const Localizer*>(new FlockLocalizer(fopt)),
        static_cast<const Localizer*>(new NetBouncerLocalizer(NetBouncerOptions{})),
        static_cast<const Localizer*>(new Zero07Localizer(Zero07Options{}))}) {
    const auto result = loc->localize(input);
    const Accuracy acc = evaluate_accuracy(topo, trace.truth, result.predicted);
    EXPECT_GE(acc.precision, 0.0);
    EXPECT_LE(acc.precision, 1.0);
    EXPECT_GE(acc.recall, 0.0);
    EXPECT_LE(acc.recall, 1.0);
    EXPECT_GE(acc.fscore(), 0.0);
    EXPECT_LE(acc.fscore(), 1.0);
    // Predictions are valid, unique component ids.
    std::vector<ComponentId> sorted = result.predicted;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
    for (ComponentId c : sorted) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, topo.num_components());
    }
    delete loc;
  }
}

TEST_P(SchemeInvariants, NetBouncerSuccessProbsInUnitInterval) {
  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  Rng rng(GetParam() * 3 + 1);
  GroundTruth truth = make_silent_link_drops(topo, 3, DropRateConfig{}, rng);
  TrafficConfig traffic;
  traffic.num_app_flows = 1200;
  const Trace trace = simulate(topo, router, std::move(truth), traffic, ProbeConfig{}, rng);
  ViewOptions view;
  view.telemetry = kTelemetryInt;
  const auto input = make_view(topo, router, trace, view);
  const auto x = NetBouncerLocalizer(NetBouncerOptions{}).solve_link_success(input);
  for (double xi : x) {
    EXPECT_GE(xi, 0.0);
    EXPECT_LE(xi, 1.0);
  }
}

TEST_P(SchemeInvariants, MoreTelemetryNeverInvalidatesEngine) {
  // The same hypothesis must yield a *lower or equal* likelihood when more
  // (clean) observations are added — evidence only sharpens the posterior
  // landscape; this guards against sign errors in flow contributions.
  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  Rng rng(GetParam() * 7 + 5);
  GroundTruth truth = make_healthy(topo, DropRateConfig{0, 0, 0}, rng);
  TrafficConfig traffic;
  traffic.num_app_flows = 400;
  const Trace trace = simulate(topo, router, std::move(truth), traffic, ProbeConfig{}, rng);
  ViewOptions view;
  view.telemetry = kTelemetryInt;
  const auto input = make_view(topo, router, trace, view);
  LikelihoodEngine engine(input, params());
  // All flows are clean: failing anything only removes likelihood.
  for (ComponentId c = 0; c < engine.num_components(); ++c) {
    EXPECT_LE(engine.flip_delta_ll(c), 1e-9) << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchemeInvariants, ::testing::Values(401, 402, 403));

// ---------------------------------------------------------------------------
// Simulator conservation properties across topology shapes.
// ---------------------------------------------------------------------------

class TopologySweep : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(TopologySweep, EcmpPathCountsMatchClosFormula) {
  const std::int32_t k = GetParam();
  Topology topo = make_fat_tree(k);
  EcmpRouter router(topo);
  NodeId tor_a = kInvalidNode, tor_b = kInvalidNode;
  for (NodeId sw : topo.switches()) {
    if (topo.node(sw).kind != NodeKind::kTor) continue;
    if (topo.node(sw).pod == 0 && tor_a == kInvalidNode) tor_a = sw;
    if (topo.node(sw).pod == 1 && tor_b == kInvalidNode) tor_b = sw;
  }
  const PathSetId ps = router.path_set_between(tor_a, tor_b);
  EXPECT_EQ(router.path_set(ps).paths.size(),
            static_cast<std::size_t>((k / 2) * (k / 2)));
  for (PathId pid : router.path_set(ps).paths) {
    EXPECT_EQ(router.path(pid).comps.size(), 9u);  // 4 links + 5 devices
  }
}

TEST_P(TopologySweep, SimulatedDropsNeverExceedSent) {
  Topology topo = make_fat_tree(GetParam());
  EcmpRouter router(topo);
  Rng rng(GetParam());
  GroundTruth truth = make_silent_link_drops(topo, 2, DropRateConfig{}, rng);
  TrafficConfig traffic;
  traffic.num_app_flows = 800;
  const Trace trace = simulate(topo, router, std::move(truth), traffic, ProbeConfig{}, rng);
  for (const SimFlow& f : trace.flows) {
    EXPECT_LE(f.dropped, f.packets_sent);
    EXPECT_GE(f.packets_sent, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(FatTrees, TopologySweep, ::testing::Values(4, 6, 8));

}  // namespace
}  // namespace flock
