// Tests for the 007 and NetBouncer reimplementations (§6.1).
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/netbouncer.h"
#include "baselines/zero07.h"
#include "common/rng.h"
#include "eval/metrics.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "flowsim/views.h"
#include "topology/topology.h"

namespace flock {
namespace {

struct Env {
  Topology topo;
  EcmpRouter router;
  Trace trace;

  Env(std::uint64_t seed, std::int32_t failures, double bad_min = 5e-3, double bad_max = 1e-2,
      std::int64_t flows = 4000)
      : topo(make_fat_tree(4)), router(topo) {
    Rng rng(seed);
    DropRateConfig rates;
    rates.bad_min = bad_min;
    rates.bad_max = bad_max;
    GroundTruth truth = make_silent_link_drops(topo, failures, rates, rng);
    TrafficConfig traffic;
    traffic.num_app_flows = flows;
    ProbeConfig probes;
    probes.packets_per_probe = 200;
    trace = simulate(topo, router, std::move(truth), traffic, probes, rng);
  }

  InferenceInput view(std::uint32_t telemetry) {
    ViewOptions v;
    v.telemetry = telemetry;
    return make_view(topo, router, trace, v);
  }
};

// --- 007 ---------------------------------------------------------------------

TEST(Zero07, FindsSingleFailureWithA2) {
  Env env(201, 1);
  Zero07Options opt;
  opt.score_threshold = 0.9;
  const auto result = Zero07Localizer(opt).localize(env.view(kTelemetryA2));
  const Accuracy acc = evaluate_accuracy(env.topo, env.trace.truth, result.predicted);
  EXPECT_GE(acc.recall, 1.0);
}

TEST(Zero07, EmptyWhenNoFlaggedFlows) {
  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  InferenceInput input(topo, router);
  // A clean known-path flow only.
  FlowObservation obs;
  obs.src_link = topo.link_component(topo.host_access_link(topo.hosts().front()));
  obs.dst_link = topo.link_component(topo.host_access_link(topo.hosts().back()));
  obs.path_set = router.host_pair_path_set(topo.hosts().front(), topo.hosts().back());
  obs.taken_path = 0;
  obs.packets_sent = 1000;
  obs.bad_packets = 0;
  input.add(obs);
  const auto result = Zero07Localizer(Zero07Options{}).localize(input);
  EXPECT_TRUE(result.predicted.empty());
}

TEST(Zero07, IgnoresUnknownPathFlows) {
  // Passive-only input gives 007 nothing to vote with (§6.2).
  Env env(202, 1);
  const auto result = Zero07Localizer(Zero07Options{}).localize(env.view(kTelemetryP));
  EXPECT_TRUE(result.predicted.empty());
}

TEST(Zero07, VoteProportionalToPathShare) {
  // Two flagged flows crossing link A; one crossing link B. With threshold
  // 0.75, only A's endpoints of the shared prefix clear the cut.
  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  const NodeId h0 = topo.hosts()[0];
  const NodeId h1 = topo.hosts()[1];  // same pod 0 rack? ensure distinct tors below
  InferenceInput input(topo, router);
  auto add_flow = [&](NodeId a, NodeId b, std::uint32_t bad) {
    FlowObservation obs;
    obs.src_link = topo.link_component(topo.host_access_link(a));
    obs.dst_link = topo.link_component(topo.host_access_link(b));
    obs.path_set = router.host_pair_path_set(a, b);
    obs.taken_path = 0;
    obs.packets_sent = 100;
    obs.bad_packets = bad;
    input.add(obs);
  };
  add_flow(h0, h1, 1);
  add_flow(h0, h1, 1);
  add_flow(h1, h0, 0);  // unflagged: must not vote
  Zero07Options opt;
  opt.score_threshold = 0.5;
  const auto result = Zero07Localizer(opt).localize(input);
  EXPECT_FALSE(result.predicted.empty());
  // The unflagged flow contributed nothing: every blamed component must be on
  // the flagged flows' path.
  const auto comps = input.known_path_components(input.expanded_flows()[0]);
  for (ComponentId c : result.predicted) {
    EXPECT_NE(std::find(comps.begin(), comps.end(), c), comps.end()) << c;
  }
}

TEST(Zero07, PredictsLinksOnly) {
  // 007 ranks links; devices never appear in its hypothesis (device recall
  // comes from the metric's partial credit for predicting device links).
  Env env(203, 2);
  Zero07Options opt;
  opt.score_threshold = 0.05;  // blame a lot
  const auto result = Zero07Localizer(opt).localize(env.view(kTelemetryA2));
  EXPECT_FALSE(result.predicted.empty());
  for (ComponentId c : result.predicted) {
    EXPECT_TRUE(env.topo.is_link_component(c));
  }
}

TEST(Zero07, ThresholdOneKeepsOnlyTopLinks) {
  Env env(208, 1);
  Zero07Options tight;
  tight.score_threshold = 1.0;
  Zero07Options loose;
  loose.score_threshold = 0.2;
  const auto input = env.view(kTelemetryA2);
  const auto top = Zero07Localizer(tight).localize(input);
  const auto broad = Zero07Localizer(loose).localize(input);
  EXPECT_LE(top.predicted.size(), broad.predicted.size());
  // Everything in the tight set is also in the loose set (monotone cut).
  for (ComponentId c : top.predicted) {
    EXPECT_NE(std::find(broad.predicted.begin(), broad.predicted.end(), c),
              broad.predicted.end());
  }
}

// --- NetBouncer ----------------------------------------------------------------

TEST(NetBouncer, SolvesCleanNetworkToAllOnes) {
  Env env(204, 0, 5e-3, 1e-2, /*flows=*/1500);
  // Zero failures environment.
  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  Rng rng(204);
  GroundTruth truth = make_healthy(topo, DropRateConfig{1e-5, 0, 0}, rng);
  TrafficConfig traffic;
  traffic.num_app_flows = 1500;
  ProbeConfig probes;
  probes.packets_per_probe = 200;
  Trace trace = simulate(topo, router, std::move(truth), traffic, probes, rng);
  ViewOptions v;
  v.telemetry = kTelemetryInt;
  const auto input = make_view(topo, router, trace, v);
  NetBouncerLocalizer nb(NetBouncerOptions{});
  const auto x = nb.solve_link_success(input);
  for (double xi : x) EXPECT_GT(xi, 0.99);
  EXPECT_TRUE(nb.localize(input).predicted.empty());
}

TEST(NetBouncer, RecoversDropRateOfSingleFailure) {
  Env env(205, 1, 8e-3, 1e-2);
  const auto input = env.view(kTelemetryInt);
  NetBouncerOptions opt;
  opt.drop_threshold = 4e-3;
  NetBouncerLocalizer nb(opt);
  const auto x = nb.solve_link_success(input);
  const ComponentId truth_comp = env.trace.truth.failed.front();
  const LinkId truth_link = env.topo.component_link(truth_comp);
  const double estimated_drop = 1.0 - x[static_cast<std::size_t>(truth_link)];
  const double actual_drop = env.trace.truth.link_drop_rate[static_cast<std::size_t>(truth_link)];
  EXPECT_NEAR(estimated_drop, actual_drop, actual_drop);  // right order of magnitude
  EXPECT_GT(estimated_drop, 2e-3);
  const auto result = nb.localize(input);
  const Accuracy acc = evaluate_accuracy(env.topo, env.trace.truth, result.predicted);
  EXPECT_GE(acc.recall, 1.0);
}

TEST(NetBouncer, IgnoresUnknownPathFlows) {
  Env env(206, 1);
  const auto result = NetBouncerLocalizer(NetBouncerOptions{}).localize(env.view(kTelemetryP));
  EXPECT_TRUE(result.predicted.empty());
}

TEST(NetBouncer, UnobservedLinksNeverBlamed) {
  // Probe-only input (A1) never observes host->host down-links of unused
  // hosts; none of those may appear in the hypothesis.
  Env env(207, 2);
  ViewOptions v;
  v.telemetry = kTelemetryA1;
  const auto input = make_view(env.topo, env.router, env.trace, v);
  NetBouncerOptions opt;
  opt.drop_threshold = 1e-3;
  const auto result = NetBouncerLocalizer(opt).localize(input);
  // A1 probes cover only up-paths host->core: every blamed link must be on
  // some probe path (i.e., observed).
  for (ComponentId c : result.predicted) {
    if (!env.topo.is_link_component(c)) continue;
    bool observed = false;
    for (const auto& obs : input.expanded_flows()) {
      const auto comps = input.known_path_components(obs);
      if (std::find(comps.begin(), comps.end(), c) != comps.end()) {
        observed = true;
        break;
      }
    }
    EXPECT_TRUE(observed) << env.topo.component_name(c);
  }
}

TEST(NetBouncer, RegularizationPushesAmbiguityToExtremes) {
  // Single path observed: y = 0.99 on 3 links; unregularized solutions are
  // any product = 0.99; the regularizer must make per-link values extreme
  // (not all ~0.9967).
  Topology topo;
  const NodeId a = topo.add_node(NodeKind::kTor, 0, 0);
  const NodeId b = topo.add_node(NodeKind::kAgg, 0, 0);
  const NodeId h1 = topo.add_node(NodeKind::kHost, 0, 0);
  const NodeId h2 = topo.add_node(NodeKind::kHost, 0, 1);
  topo.add_link(h1, a);
  topo.add_link(a, b);
  topo.add_link(b, h2);  // not a host? b is a switch; fine: h2 hangs off agg
  EcmpRouter router(topo);
  InferenceInput input(topo, router);
  FlowObservation obs;
  obs.src_link = topo.link_component(topo.host_access_link(h1));
  obs.dst_link = topo.link_component(topo.host_access_link(h2));
  obs.path_set = router.path_set_between(a, b);
  obs.taken_path = 0;
  obs.packets_sent = 10000;
  obs.bad_packets = 100;
  input.add(obs);
  NetBouncerOptions opt;
  opt.lambda = 4.0;
  NetBouncerLocalizer nb(opt);
  const auto x = nb.solve_link_success(input);
  // Product across the three links should approximate 0.99.
  const double prod = x[0] * x[1] * x[2];
  EXPECT_NEAR(prod, 0.99, 0.02);
}

}  // namespace
}  // namespace flock
