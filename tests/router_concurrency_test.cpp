// Concurrency and order-invariance coverage for EcmpRouter's wait-free
// snapshot read path (topology/ecmp.h, common/snapshot_store.h). Built to
// run under TSan/ASan in CI: reader threads hammer warm lookups while other
// threads intern fresh ToR pairs, and every invariant the pipeline relies on
// is asserted — no torn reads, monotone published counts, references that
// stay valid across snapshot publishes, and equivalence-class results that
// do not depend on interning order or concurrency.
#include "topology/ecmp.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "topology/topology.h"

namespace flock {
namespace {

ThreeTierClosConfig small_clos() {
  ThreeTierClosConfig cfg;
  cfg.pods = 6;
  cfg.tors_per_pod = 3;
  cfg.aggs_per_pod = 3;
  cfg.cores = 9;
  cfg.hosts_per_tor = 3;
  return cfg;
}

std::vector<NodeId> tors_of(const Topology& topo) {
  std::vector<NodeId> tors;
  for (NodeId sw : topo.switches()) {
    if (topo.node(sw).kind == NodeKind::kTor) tors.push_back(sw);
  }
  return tors;
}

// Every ordered ToR pair, in a deterministic shuffled order.
std::vector<std::pair<NodeId, NodeId>> shuffled_pairs(const std::vector<NodeId>& tors,
                                                      std::uint32_t seed) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId a : tors) {
    for (NodeId b : tors) pairs.emplace_back(a, b);
  }
  std::mt19937 rng(seed);
  std::shuffle(pairs.begin(), pairs.end(), rng);
  return pairs;
}

// Readers resolve already-interned pairs and check structural invariants
// while interners publish new snapshots underneath them. Exercised in both
// read modes: the snapshot path is the one under test, the shared_mutex
// baseline keeps the comparison implementation honest on the same storage.
TEST(RouterConcurrency, ReadersSeeUntornSnapshotsWhileInternersPublish) {
  const Topology topo = make_three_tier_clos(small_clos());
  const std::vector<NodeId> tors = tors_of(topo);
  ASSERT_GE(tors.size(), 12u);

  for (const RouterReadMode mode :
       {RouterReadMode::kSnapshot, RouterReadMode::kSharedMutexBaseline}) {
    EcmpRouter router(topo, mode);

    // Warm a seed set serially so readers always have resolvable pairs.
    std::vector<std::pair<NodeId, NodeId>> warm;
    for (std::size_t i = 0; i < 6; ++i) {
      for (std::size_t j = 0; j < 6; ++j) {
        warm.emplace_back(tors[i], tors[j]);
        router.path_set_between(tors[i], tors[j]);
      }
    }
    // References taken before any concurrent interning must survive it.
    const PathSetId pinned_id = router.path_set_between(warm[1].first, warm[1].second);
    const PathSet& pinned = router.path_set(pinned_id);
    const std::vector<PathId> pinned_paths = pinned.paths;
    const Path& pinned_path = router.path(pinned_paths.front());
    const std::vector<ComponentId> pinned_comps = pinned_path.comps;

    const auto cold = shuffled_pairs(tors, /*seed=*/7);
    constexpr int kInterners = 2;
    constexpr int kReaders = 4;
    // Each reader runs at least this many iterations even if the interners
    // finish first (loaded schedulers can park a reader for the entire
    // interning phase), and the interners wait for every reader to start,
    // so reads and publishes genuinely overlap instead of racing past each
    // other.
    constexpr std::uint64_t kMinReadsPerReader = 200;
    std::atomic<int> readers_started{0};
    std::atomic<bool> interning_done{false};
    std::atomic<std::uint64_t> reads{0};

    std::vector<std::thread> threads;
    for (int t = 0; t < kInterners; ++t) {
      threads.emplace_back([&, t] {
        while (readers_started.load(std::memory_order_acquire) < kReaders) {
          std::this_thread::yield();
        }
        for (std::size_t i = static_cast<std::size_t>(t); i < cold.size(); i += kInterners) {
          router.path_set_between(cold[i].first, cold[i].second);
        }
      });
    }
    for (int t = 0; t < kReaders; ++t) {
      threads.emplace_back([&, t] {
        std::mt19937 rng(100u + static_cast<std::uint32_t>(t));
        std::int32_t last_sets = 0, last_paths = 0;
        readers_started.fetch_add(1, std::memory_order_release);
        for (std::uint64_t iter = 0;
             iter < kMinReadsPerReader || !interning_done.load(std::memory_order_acquire);
             ++iter) {
          const auto& [a, b] = warm[rng() % warm.size()];
          const PathSetId id = router.path_set_between(a, b);
          const PathSet& ps = router.path_set(id);
          // Untorn: the set must belong to the pair we asked for and be
          // fully formed, no matter how many publishes raced this read.
          ASSERT_EQ(ps.src_sw, a);
          ASSERT_EQ(ps.dst_sw, b);
          ASSERT_FALSE(ps.paths.empty());
          const Path& p = router.path(ps.paths.front());
          ASSERT_FALSE(p.comps.empty());
          ASSERT_EQ(p.comps.front(), topo.device_component(a));
          ASSERT_EQ(p.comps.back(), topo.device_component(b));
          // Published counts are monotone under concurrent interning.
          const std::int32_t sets = router.num_path_sets();
          const std::int32_t paths = router.num_paths();
          ASSERT_GE(sets, last_sets);
          ASSERT_GE(paths, last_paths);
          last_sets = sets;
          last_paths = paths;
          reads.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (int t = 0; t < kInterners; ++t) threads[static_cast<std::size_t>(t)].join();
    interning_done.store(true, std::memory_order_release);
    for (std::size_t t = kInterners; t < threads.size(); ++t) threads[t].join();

    EXPECT_GE(reads.load(), kMinReadsPerReader * kReaders);
    const std::size_t total = tors.size() * tors.size();
    EXPECT_EQ(router.num_path_sets(), static_cast<std::int32_t>(total));
    EXPECT_EQ(router.index_publishes(), static_cast<std::uint64_t>(total));

    // The early references are still the same objects with the same bytes.
    EXPECT_EQ(&router.path_set(pinned_id), &pinned);
    EXPECT_EQ(pinned.paths, pinned_paths);
    EXPECT_EQ(&router.path(pinned_paths.front()), &pinned_path);
    EXPECT_EQ(pinned_path.comps, pinned_comps);
  }
}

TEST(RouterConcurrency, WarmLookupsNeverTakeTheSlowPath) {
  const Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  const std::vector<NodeId> tors = tors_of(topo);
  EXPECT_EQ(router.index_publishes(), 0u);

  router.path_set_between(tors[0], tors[1]);  // cold: one retry, one publish
  EXPECT_EQ(router.index_publishes(), 1u);
  EXPECT_EQ(router.read_retries(), 1u);

  for (int i = 0; i < 100; ++i) router.path_set_between(tors[0], tors[1]);
  EXPECT_EQ(router.read_retries(), 1u);  // warm hits are wait-free index hits
  EXPECT_EQ(router.index_publishes(), 1u);
}

// The class partition is a function of the topology alone: interning order,
// and serial vs concurrent warm-up, must produce byte-identical results.
TEST(RouterConcurrency, EquivalenceClassesInvariantToInterningOrderAndConcurrency) {
  const Topology topo = make_three_tier_clos(small_clos());
  const std::vector<NodeId> tors = tors_of(topo);

  // Reference: serial natural-order warm-up inside ecmp_equivalence_classes.
  EcmpRouter serial(topo);
  const auto reference = ecmp_equivalence_classes(serial);
  ASSERT_FALSE(reference.empty());

  // Shuffled serial interning first, classes second.
  EcmpRouter shuffled(topo);
  for (const auto& [a, b] : shuffled_pairs(tors, /*seed=*/12345)) {
    shuffled.path_set_between(a, b);
  }
  EXPECT_EQ(ecmp_equivalence_classes(shuffled), reference);

  // Concurrent warm-up: 4 threads intern interleaved shuffled slices.
  EcmpRouter concurrent(topo);
  const auto pairs = shuffled_pairs(tors, /*seed=*/999);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < pairs.size(); i += kThreads) {
        concurrent.path_set_between(pairs[i].first, pairs[i].second);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ecmp_equivalence_classes(concurrent), reference);

  // theoretical_max_precision inherits the invariance for any truth set.
  std::vector<ComponentId> truth;
  for (const auto& cls : reference) {
    truth.push_back(cls.front());
    if (truth.size() == 3) break;
  }
  EXPECT_DOUBLE_EQ(theoretical_max_precision(ecmp_equivalence_classes(shuffled), truth),
                   theoretical_max_precision(reference, truth));
}

}  // namespace
}  // namespace flock
