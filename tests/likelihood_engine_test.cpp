// Ground-truth validation of the likelihood engine: every incremental
// quantity (LL after flips, the JLE Delta array, single-flip deltas) is
// compared against a brute-force evaluation of Eq. 1 over all flows. This is
// the executable proof of Theorem 1's bookkeeping.
#include "core/likelihood_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "common/math_util.h"
#include "common/rng.h"
#include "core/inference_input.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "flowsim/views.h"
#include "topology/topology.h"

namespace flock {
namespace {

// --- brute force reference ---------------------------------------------------

double reference_log_likelihood(const InferenceInput& input, const FlockParams& params,
                                const std::vector<ComponentId>& hypothesis) {
  std::unordered_set<ComponentId> h(hypothesis.begin(), hypothesis.end());
  const EcmpRouter& router = input.router();
  double ll = 0.0;
  for (const FlowObservation& obs : input.expanded_flows()) {
    const double s =
        bad_path_log_evidence(obs.bad_packets, obs.packets_sent, params.p_g, params.p_b);
    const bool endpoint_bad = (obs.src_link != kInvalidComponent && h.count(obs.src_link)) ||
                              (obs.dst_link != kInvalidComponent && h.count(obs.dst_link));
    auto path_bad = [&](PathId pid) {
      if (endpoint_bad) return true;
      for (ComponentId c : router.path(pid).comps) {
        if (h.count(c)) return true;
      }
      return false;
    };
    const PathSet& set = router.path_set(obs.path_set);
    std::int64_t w, b = 0;
    if (obs.path_known()) {
      w = 1;
      b = path_bad(set.paths[static_cast<std::size_t>(obs.taken_path)]) ? 1 : 0;
    } else {
      w = static_cast<std::int64_t>(set.paths.size());
      for (PathId pid : set.paths) b += path_bad(pid) ? 1 : 0;
    }
    if (b == 0) continue;
    ll += (b == w) ? s : flow_log_likelihood_delta(b, w, s);
  }
  return ll;
}

double reference_posterior(const InferenceInput& input, const FlockParams& params,
                           const std::vector<ComponentId>& hypothesis) {
  double prior = 0.0;
  for (ComponentId c : hypothesis) {
    const double base = logit(params.rho);
    prior += input.topology().is_device_component(c) ? base * params.device_prior_scale : base;
  }
  return reference_log_likelihood(input, params, hypothesis) + prior;
}

// A small simulated environment with all telemetry types mixed in.
struct Fixture {
  Topology topo;
  EcmpRouter router;
  Trace trace;
  InferenceInput input;

  explicit Fixture(std::uint64_t seed, std::uint32_t telemetry = kTelemetryA1 | kTelemetryA2 |
                                                                 kTelemetryP)
      : topo(make_fat_tree(4)), router(topo), input(topo, router) {
    Rng rng(seed);
    GroundTruth truth = make_silent_link_drops(topo, 2, DropRateConfig{}, rng);
    TrafficConfig traffic;
    traffic.num_app_flows = 400;
    ProbeConfig probes;
    probes.packets_per_probe = 50;
    trace = simulate(topo, router, std::move(truth), traffic, probes, rng);
    ViewOptions view;
    view.telemetry = telemetry;
    input = make_view(topo, router, trace, view);
  }
};

FlockParams test_params() {
  FlockParams p;
  p.p_g = 3e-4;
  p.p_b = 2e-2;
  p.rho = 1e-3;
  return p;
}

// --- tests --------------------------------------------------------------------

TEST(LikelihoodEngine, EmptyHypothesisIsZero) {
  Fixture fx(1);
  LikelihoodEngine engine(fx.input, test_params());
  EXPECT_DOUBLE_EQ(engine.log_likelihood(), 0.0);
  EXPECT_DOUBLE_EQ(engine.log_posterior(), 0.0);
  EXPECT_EQ(engine.hypothesis_size(), 0);
  EXPECT_TRUE(engine.hypothesis().empty());
}

TEST(LikelihoodEngine, PriorCosts) {
  Fixture fx(1);
  const FlockParams params = test_params();
  LikelihoodEngine engine(fx.input, params);
  const ComponentId link = 0;
  const ComponentId device = fx.topo.num_links();
  EXPECT_NEAR(engine.prior_cost(link), logit(params.rho), 1e-12);
  EXPECT_NEAR(engine.prior_cost(device), 5.0 * logit(params.rho), 1e-12);
  EXPECT_LT(engine.prior_cost(link), 0.0);
}

class EngineAgreementTest : public ::testing::TestWithParam<std::uint64_t> {};

// LL tracked through a random flip sequence matches brute force, with and
// without JLE.
TEST_P(EngineAgreementTest, LikelihoodMatchesBruteForceThroughFlips) {
  Fixture fx(GetParam());
  const FlockParams params = test_params();
  LikelihoodEngine jle(fx.input, params, /*maintain_delta=*/true);
  LikelihoodEngine plain(fx.input, params, /*maintain_delta=*/false);
  Rng rng(GetParam() * 31 + 7);

  std::vector<ComponentId> flipped;
  for (int step = 0; step < 8; ++step) {
    const auto c = static_cast<ComponentId>(rng.next_below(
        static_cast<std::uint64_t>(fx.topo.num_components())));
    jle.flip(c);
    plain.flip(c);
    const auto hypothesis = jle.hypothesis();
    const double ref = reference_log_likelihood(fx.input, params, hypothesis);
    EXPECT_NEAR(jle.log_likelihood(), ref, 1e-6 + 1e-9 * std::abs(ref)) << "step " << step;
    EXPECT_NEAR(plain.log_likelihood(), ref, 1e-6 + 1e-9 * std::abs(ref)) << "step " << step;
    const double ref_post = reference_posterior(fx.input, params, hypothesis);
    EXPECT_NEAR(jle.log_posterior(), ref_post, 1e-6 + 1e-9 * std::abs(ref_post));
  }
}

// The full Delta array (Theorem 1 bookkeeping) equals brute-force neighbor
// differences at every step of a flip sequence.
TEST_P(EngineAgreementTest, DeltaArrayMatchesBruteForceNeighbors) {
  Fixture fx(GetParam());
  const FlockParams params = test_params();
  LikelihoodEngine engine(fx.input, params, /*maintain_delta=*/true);
  Rng rng(GetParam() * 17 + 3);

  for (int step = 0; step < 4; ++step) {
    const auto hypothesis = engine.hypothesis();
    const double base = reference_log_likelihood(fx.input, params, hypothesis);
    for (ComponentId c = 0; c < fx.topo.num_components(); ++c) {
      auto neighbor = hypothesis;
      if (engine.failed(c)) {
        std::erase(neighbor, c);
      } else {
        neighbor.push_back(c);
      }
      const double ref_delta = reference_log_likelihood(fx.input, params, neighbor) - base;
      EXPECT_NEAR(engine.flip_delta_ll(c), ref_delta, 1e-6 + 1e-9 * std::abs(ref_delta))
          << "step " << step << " comp " << c;
    }
    const auto c = static_cast<ComponentId>(rng.next_below(
        static_cast<std::uint64_t>(fx.topo.num_components())));
    engine.flip(c);
  }
}

// compute_flip_delta_ll (used by the non-JLE ablations and Sherlock) agrees
// with the maintained Delta array.
TEST_P(EngineAgreementTest, OnDemandDeltaMatchesMaintainedDelta) {
  Fixture fx(GetParam());
  const FlockParams params = test_params();
  LikelihoodEngine engine(fx.input, params, /*maintain_delta=*/true);
  Rng rng(GetParam() * 13 + 5);
  for (int step = 0; step < 3; ++step) {
    for (ComponentId c = 0; c < fx.topo.num_components(); ++c) {
      EXPECT_NEAR(engine.compute_flip_delta_ll(c), engine.flip_delta_ll(c),
                  1e-6 + 1e-9 * std::abs(engine.flip_delta_ll(c)))
          << "comp " << c;
    }
    engine.flip(static_cast<ComponentId>(
        rng.next_below(static_cast<std::uint64_t>(fx.topo.num_components()))));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineAgreementTest, ::testing::Values(2, 3, 5, 8, 13));

// Passive-only input exercises the unknown-path machinery exclusively.
TEST(LikelihoodEngine, PassiveOnlyDeltaAgreement) {
  Fixture fx(21, kTelemetryP);
  const FlockParams params = test_params();
  LikelihoodEngine engine(fx.input, params);
  // Flip a couple of host links (endpoint machinery) and switch links.
  const NodeId host = fx.topo.hosts()[3];
  const ComponentId access = fx.topo.link_component(fx.topo.host_access_link(host));
  engine.flip(access);
  const auto hyp1 = engine.hypothesis();
  EXPECT_NEAR(engine.log_likelihood(), reference_log_likelihood(fx.input, params, hyp1), 1e-6);
  for (ComponentId c = 0; c < fx.topo.num_components(); ++c) {
    auto neighbor = hyp1;
    if (engine.failed(c)) {
      std::erase(neighbor, c);
    } else {
      neighbor.push_back(c);
    }
    const double ref =
        reference_log_likelihood(fx.input, params, neighbor) -
        reference_log_likelihood(fx.input, params, hyp1);
    EXPECT_NEAR(engine.flip_delta_ll(c), ref, 1e-6 + 1e-9 * std::abs(ref)) << c;
  }
  // Second endpoint of some flow: efc==2 paths exercised.
  const NodeId host2 = fx.topo.hosts()[7];
  engine.flip(fx.topo.link_component(fx.topo.host_access_link(host2)));
  const auto hyp2 = engine.hypothesis();
  EXPECT_NEAR(engine.log_likelihood(), reference_log_likelihood(fx.input, params, hyp2), 1e-6);
}

TEST(LikelihoodEngine, KnownPathOnlyDeltaAgreement) {
  Fixture fx(22, kTelemetryInt);
  const FlockParams params = test_params();
  LikelihoodEngine engine(fx.input, params);
  Rng rng(99);
  for (int step = 0; step < 3; ++step) {
    engine.flip(static_cast<ComponentId>(
        rng.next_below(static_cast<std::uint64_t>(fx.topo.num_components()))));
    EXPECT_NEAR(engine.log_likelihood(),
                reference_log_likelihood(fx.input, params, engine.hypothesis()), 1e-6);
  }
}

TEST(LikelihoodEngine, FlipIsInvolution) {
  Fixture fx(23);
  LikelihoodEngine engine(fx.input, test_params());
  const double ll0 = engine.log_likelihood();
  engine.flip(5);
  engine.flip(5);
  EXPECT_NEAR(engine.log_likelihood(), ll0, 1e-8);
  EXPECT_EQ(engine.hypothesis_size(), 0);
  for (ComponentId c = 0; c < fx.topo.num_components(); ++c) {
    EXPECT_NEAR(engine.flip_delta_ll(c), engine.compute_flip_delta_ll(c), 1e-8);
  }
}

TEST(LikelihoodEngine, BestAdditionMatchesLinearScan) {
  Fixture fx(24);
  LikelihoodEngine engine(fx.input, test_params());
  auto [best, score] = engine.best_addition();
  ASSERT_NE(best, kInvalidComponent);
  double max_score = -INFINITY;
  ComponentId argmax = kInvalidComponent;
  for (ComponentId c = 0; c < fx.topo.num_components(); ++c) {
    if (engine.failed(c)) continue;
    const double s = engine.flip_score(c);
    if (s > max_score) {
      max_score = s;
      argmax = c;
    }
  }
  EXPECT_EQ(best, argmax);
  EXPECT_NEAR(score, max_score, 1e-12);
}

TEST(LikelihoodEngine, BestAdditionRequiresJle) {
  Fixture fx(25);
  LikelihoodEngine engine(fx.input, test_params(), /*maintain_delta=*/false);
  EXPECT_THROW(engine.best_addition(), std::logic_error);
}

TEST(LikelihoodEngine, FailedEndpointMakesAllPathsBad) {
  // Construct one passive flow by hand; failing its source access link must
  // change the flow's likelihood contribution to exactly s.
  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  const NodeId h1 = topo.hosts().front();
  const NodeId h2 = topo.hosts().back();
  InferenceInput input(topo, router);
  FlowObservation obs;
  obs.src_link = topo.link_component(topo.host_access_link(h1));
  obs.dst_link = topo.link_component(topo.host_access_link(h2));
  obs.path_set = router.host_pair_path_set(h1, h2);
  obs.taken_path = -1;
  obs.packets_sent = 100;
  obs.bad_packets = 4;
  input.add(obs);

  const FlockParams params = test_params();
  LikelihoodEngine engine(input, params);
  const double s = bad_path_log_evidence(4, 100, params.p_g, params.p_b);
  EXPECT_NEAR(engine.flip_delta_ll(obs.src_link), s, 1e-9);
  engine.flip(obs.src_link);
  EXPECT_NEAR(engine.log_likelihood(), s, 1e-9);
  // With the endpoint failed, no other component changes anything.
  for (ComponentId c = 0; c < topo.num_components(); ++c) {
    if (c == obs.src_link || c == obs.dst_link) continue;
    EXPECT_NEAR(engine.flip_delta_ll(c), 0.0, 1e-9) << c;
  }
  // The other endpoint is now a no-op addition too.
  EXPECT_NEAR(engine.flip_delta_ll(obs.dst_link), 0.0, 1e-9);
}

TEST(LikelihoodEngine, RejectsBadObservation) {
  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  InferenceInput input(topo, router);
  FlowObservation obs;
  obs.src_link = topo.link_component(topo.host_access_link(topo.hosts().front()));
  obs.dst_link = topo.link_component(topo.host_access_link(topo.hosts().back()));
  obs.path_set = router.host_pair_path_set(topo.hosts().front(), topo.hosts().back());
  obs.packets_sent = 5;
  obs.bad_packets = 6;  // more bad than sent
  input.add(obs);
  EXPECT_THROW(LikelihoodEngine(input, test_params()), std::invalid_argument);
}

TEST(LikelihoodEngine, HypothesesScannedAccounting) {
  Fixture fx(26);
  LikelihoodEngine engine(fx.input, test_params());
  EXPECT_EQ(engine.hypotheses_scanned(), 0);
  engine.note_scan(10);
  engine.note_scan(5);
  EXPECT_EQ(engine.hypotheses_scanned(), 15);
}

}  // namespace
}  // namespace flock
