#include "common/math_util.h"

#include <gtest/gtest.h>

#include <cmath>

namespace flock {
namespace {

TEST(LogSumExp, MatchesDirectComputation) {
  EXPECT_NEAR(log_sum_exp(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  EXPECT_NEAR(log_sum_exp(0.0, 0.0), std::log(2.0), 1e-12);
}

TEST(LogSumExp, StableForLargeMagnitudes) {
  EXPECT_NEAR(log_sum_exp(1000.0, 0.0), 1000.0, 1e-9);
  EXPECT_NEAR(log_sum_exp(-1000.0, -1000.0), -1000.0 + std::log(2.0), 1e-9);
}

TEST(LogSumExp, HandlesNegativeInfinity) {
  EXPECT_DOUBLE_EQ(log_sum_exp(-INFINITY, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(log_sum_exp(3.0, -INFINITY), 3.0);
}

TEST(BadPathLogEvidence, MatchesDirectFormula) {
  const double p_g = 3e-4, p_b = 2e-2;
  const std::uint64_t r = 5, t = 100;
  const double direct = static_cast<double>(r) * std::log(p_b / p_g) +
                        static_cast<double>(t - r) * std::log((1 - p_b) / (1 - p_g));
  EXPECT_NEAR(bad_path_log_evidence(r, t, p_g, p_b), direct, 1e-9);
}

TEST(BadPathLogEvidence, ZeroDropsIsNegative) {
  // A clean flow is evidence *against* its paths being bad.
  EXPECT_LT(bad_path_log_evidence(0, 1000, 3e-4, 2e-2), 0.0);
}

TEST(BadPathLogEvidence, ManyDropsIsPositive) {
  EXPECT_GT(bad_path_log_evidence(20, 1000, 3e-4, 2e-2), 0.0);
}

TEST(BadPathLogEvidence, RejectsBadArguments) {
  EXPECT_THROW(bad_path_log_evidence(5, 4, 3e-4, 2e-2), std::invalid_argument);
}

TEST(FlowLogLikelihoodDelta, ZeroBadPathsIsZero) {
  EXPECT_DOUBLE_EQ(flow_log_likelihood_delta(0, 8, 12.3), 0.0);
  EXPECT_DOUBLE_EQ(flow_log_likelihood_delta(0, 1, -55.0), 0.0);
}

TEST(FlowLogLikelihoodDelta, AllBadPathsEqualsEvidence) {
  // log((w e^s)/w) = s exactly.
  for (double s : {-2000.0, -3.0, 0.0, 3.0, 2000.0}) {
    EXPECT_NEAR(flow_log_likelihood_delta(8, 8, s), s, 1e-9) << "s=" << s;
  }
}

TEST(FlowLogLikelihoodDelta, MatchesDirectMixForModerateS) {
  const std::int64_t w = 10;
  for (std::int64_t b = 1; b < w; ++b) {
    for (double s : {-5.0, -1.0, 0.5, 4.0}) {
      const double direct =
          std::log((static_cast<double>(b) * std::exp(s) + static_cast<double>(w - b)) /
                   static_cast<double>(w));
      EXPECT_NEAR(flow_log_likelihood_delta(b, w, s), direct, 1e-10);
    }
  }
}

TEST(FlowLogLikelihoodDelta, StableForVeryNegativeEvidence) {
  // exp(s) underflows; the limit is log((w-b)/w).
  const double v = flow_log_likelihood_delta(3, 10, -5000.0);
  EXPECT_NEAR(v, std::log(0.7), 1e-9);
  EXPECT_TRUE(std::isfinite(v));
}

TEST(FlowLogLikelihoodDelta, StableForVeryPositiveEvidence) {
  // Dominated by the bad component: s + log(b/w).
  const double v = flow_log_likelihood_delta(3, 10, 5000.0);
  EXPECT_NEAR(v, 5000.0 + std::log(0.3), 1e-9);
}

TEST(FlowLogLikelihoodDelta, MonotoneInBadPaths) {
  // With positive evidence, more bad paths = more likely observation.
  double prev = 0.0;
  for (std::int64_t b = 1; b <= 16; ++b) {
    const double v = flow_log_likelihood_delta(b, 16, 2.5);
    EXPECT_GT(v, prev);
    prev = v;
  }
  // With negative evidence the opposite holds.
  prev = 0.0;
  for (std::int64_t b = 1; b <= 16; ++b) {
    const double v = flow_log_likelihood_delta(b, 16, -2.5);
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(FlowLogLikelihoodDelta, RejectsBadCounts) {
  EXPECT_THROW(flow_log_likelihood_delta(-1, 4, 0.0), std::invalid_argument);
  EXPECT_THROW(flow_log_likelihood_delta(5, 4, 0.0), std::invalid_argument);
  EXPECT_THROW(flow_log_likelihood_delta(0, 0, 0.0), std::invalid_argument);
}

// Lemma 1 of the appendix: for 5 p_g < p_b <= 0.05, the break-even drop rate
// mu satisfies p_g < mu < 2 mu < p_b.
TEST(EvidenceBreakEven, Lemma1Holds) {
  for (double p_g : {1e-5, 1e-4, 5e-4, 1e-3}) {
    for (double mult : {6.0, 10.0, 25.0, 50.0}) {
      const double p_b = p_g * mult;
      if (p_b > 0.05) continue;
      const double mu = evidence_break_even_rate(p_g, p_b);
      EXPECT_GT(mu, p_g) << "p_g=" << p_g << " p_b=" << p_b;
      EXPECT_LT(2 * mu, p_b) << "p_g=" << p_g << " p_b=" << p_b;
    }
  }
}

TEST(EvidenceBreakEven, EvidenceSignFlipsAtMu) {
  const double p_g = 3e-4, p_b = 2e-2;
  const double mu = evidence_break_even_rate(p_g, p_b);
  const std::uint64_t t = 1000000;
  const auto r_below = static_cast<std::uint64_t>(static_cast<double>(t) * mu * 0.9);
  const auto r_above = static_cast<std::uint64_t>(static_cast<double>(t) * mu * 1.1);
  EXPECT_LT(bad_path_log_evidence(r_below, t, p_g, p_b), 0.0);
  EXPECT_GT(bad_path_log_evidence(r_above, t, p_g, p_b), 0.0);
}

TEST(FScore, HarmonicMean) {
  EXPECT_DOUBLE_EQ(f_score(1.0, 1.0), 1.0);
  EXPECT_NEAR(f_score(0.5, 1.0), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(f_score(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(f_score(1.0, 0.0), 0.0);
}

TEST(Logit, Values) {
  EXPECT_DOUBLE_EQ(logit(0.5), 0.0);
  EXPECT_LT(logit(1e-3), 0.0);
  EXPECT_GT(logit(0.9), 0.0);
  EXPECT_THROW(logit(0.0), std::invalid_argument);
  EXPECT_THROW(logit(1.0), std::invalid_argument);
}

}  // namespace
}  // namespace flock
