// UDP ingest front-end (src/net): loopback receive with real sockets,
// per-source-agent accounting, malformed-datagram quarantine by reason, and
// both admission-control policies. Every test that binds a socket degrades
// to a skip when the environment has no usable loopback.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "net/ingest_server.h"
#include "net/udp_socket.h"
#include "telemetry/flow_record.h"
#include "telemetry/ipfix.h"

namespace flock {
namespace {

FlowRecord sample_record(std::uint32_t i) {
  FlowRecord r;
  r.src_addr = node_to_addr(static_cast<NodeId>(i));
  r.dst_addr = node_to_addr(static_cast<NodeId>(i + 1));
  r.src_port = static_cast<std::uint16_t>(40000 + i);
  r.dst_port = 443;
  r.packets = 1000 + i;
  r.retransmissions = i % 7;
  r.mean_rtt_us = 250 + i;
  r.path_set = -1;
  r.taken_path = -1;
  return r;
}

std::vector<std::uint8_t> valid_message(std::uint32_t observation_domain,
                                        std::size_t records = 4) {
  IpfixEncoderOptions options;
  options.observation_domain = observation_domain;
  IpfixEncoder enc(options);
  std::vector<FlowRecord> batch;
  for (std::uint32_t i = 0; i < records; ++i) batch.push_back(sample_record(i));
  return enc.encode(batch, 1000).front();
}

// Bounded poll: UDP receive is asynchronous, so tests wait for the counters
// to converge instead of sleeping fixed amounts.
template <typename Pred>
bool wait_for(Pred pred, std::chrono::milliseconds timeout = std::chrono::seconds(5)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// Collects everything the server offers downstream, with a settable verdict.
struct OfferSink {
  std::mutex mutex;
  std::vector<IngestDatagram> datagrams;
  std::atomic<bool> accept{true};

  DgramOfferFn fn() {
    return [this](IngestDatagram d) {
      std::lock_guard<std::mutex> lock(mutex);
      datagrams.push_back(std::move(d));
      return accept.load();
    };
  }
  std::size_t size() {
    std::lock_guard<std::mutex> lock(mutex);
    return datagrams.size();
  }
};

#define SKIP_WITHOUT_LOOPBACK(server)                                     \
  do {                                                                    \
    std::string error;                                                    \
    if (!(server).start(&error)) {                                        \
      GTEST_SKIP() << "no usable loopback UDP socket here: " << error;    \
    }                                                                     \
  } while (0)

TEST(NetIngest, StartFailsGracefullyOnAnUnbindableAddress) {
  UdpIngestServerConfig config;
  config.listen_addr = 0x01020304;  // 1.2.3.4 is not ours to bind
  UdpIngestServer server(config, [](IngestDatagram) { return true; });
  std::string error;
  EXPECT_FALSE(server.start(&error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent on a never-started server
}

TEST(NetIngest, ReceivesFromTwoAgentsWithPerAgentAccounting) {
  OfferSink sink;
  UdpIngestServerConfig config;
  config.receiver_threads = 2;
  UdpIngestServer server(config, sink.fn());
  SKIP_WITHOUT_LOOPBACK(server);
  const UdpEndpoint to = server.endpoint();
  ASSERT_NE(to.port, 0);

  // Two exporters, distinct UDP sockets (= distinct accounting agents) and
  // distinct observation domains (= distinct pipeline source ids).
  UdpSocket agent_a, agent_b;
  ASSERT_TRUE(agent_a.open_unbound());
  ASSERT_TRUE(agent_b.open_unbound());
  const auto msg_a = valid_message(/*observation_domain=*/3, /*records=*/4);
  const auto msg_b = valid_message(/*observation_domain=*/9, /*records=*/2);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(agent_a.send_to(to, msg_a.data(), msg_a.size()));
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(agent_b.send_to(to, msg_b.data(), msg_b.size()));

  ASSERT_TRUE(wait_for([&] { return server.stats().datagrams_received >= 7; }));
  server.stop();

  const NetIngestStats stats = server.stats();
  EXPECT_EQ(stats.datagrams_received, 7u);
  EXPECT_EQ(stats.bytes_received, 5 * msg_a.size() + 2 * msg_b.size());
  EXPECT_EQ(stats.records_seen, 5u * 4u + 2u * 2u);
  EXPECT_EQ(stats.quarantined(), 0u);
  EXPECT_EQ(stats.admission_drops, 0u);
  EXPECT_EQ(stats.offered, 7u);
  EXPECT_EQ(stats.offer_rejected, 0u);
  EXPECT_EQ(stats.agents, 2u);

  // The pipeline-facing source id is the observation domain, not the UDP
  // endpoint — sharding and replay match the in-process path exactly.
  ASSERT_EQ(sink.size(), 7u);
  std::uint64_t from_a = 0, from_b = 0;
  for (const auto& d : sink.datagrams) {
    if (d.source_addr == node_to_addr(3)) {
      ++from_a;
      EXPECT_EQ(d.bytes, msg_a);
    } else {
      ++from_b;
      EXPECT_EQ(d.source_addr, node_to_addr(9));
      EXPECT_EQ(d.bytes, msg_b);
    }
  }
  EXPECT_EQ(from_a, 5u);
  EXPECT_EQ(from_b, 2u);

  // Per-agent table: keyed by the wire endpoint, counters exact. Match by
  // port — an auto-bound sender reports INADDR_ANY locally while the server
  // sees the loopback address.
  const auto accounts = server.agent_accounts();
  ASSERT_EQ(accounts.size(), 2u);
  for (const AgentAccount& a : accounts) {
    EXPECT_EQ(a.endpoint.addr, kLoopbackAddr);
    if (a.endpoint.port == agent_a.local_endpoint().port) {
      EXPECT_EQ(a.datagrams, 5u);
      EXPECT_EQ(a.records, 20u);
      EXPECT_EQ(a.bytes, 5 * msg_a.size());
      EXPECT_EQ(a.accepted, 5u);
    } else {
      EXPECT_EQ(a.endpoint.port, agent_b.local_endpoint().port);
      EXPECT_EQ(a.datagrams, 2u);
      EXPECT_EQ(a.records, 4u);
      EXPECT_EQ(a.accepted, 2u);
    }
    EXPECT_EQ(a.quarantined, 0u);
    EXPECT_EQ(a.admission_drops, 0u);
    EXPECT_EQ(a.queue_drops, 0u);
  }

  // fold_into surfaces the net layer in a pipeline stats snapshot.
  PipelineStats ps;
  server.fold_into(ps);
  EXPECT_EQ(ps.net_datagrams_received, 7u);
  EXPECT_EQ(ps.net_agents, 2u);
  EXPECT_EQ(ps.net_admission_drops, 0u);
}

TEST(NetIngest, MalformedDatagramsAreQuarantinedByReason) {
  OfferSink sink;
  UdpIngestServer server(UdpIngestServerConfig{}, sink.fn());
  SKIP_WITHOUT_LOOPBACK(server);
  const UdpEndpoint to = server.endpoint();

  UdpSocket sender;
  ASSERT_TRUE(sender.open_unbound());
  const auto good = valid_message(5);

  // Short: fewer bytes than an IPFIX header.
  const std::uint8_t short_bytes[] = {0x00, 0x0A, 0x00};
  ASSERT_TRUE(sender.send_to(to, short_bytes, sizeof(short_bytes)));
  // Bad version: header-sized, version field says NetFlow v5.
  std::vector<std::uint8_t> bad_version = good;
  bad_version[1] = 5;
  ASSERT_TRUE(sender.send_to(to, bad_version.data(), bad_version.size()));
  // Length mismatch: valid message with one garbage byte appended.
  std::vector<std::uint8_t> padded = good;
  padded.push_back(0xEE);
  ASSERT_TRUE(sender.send_to(to, padded.data(), padded.size()));
  // And one good datagram to prove the stream keeps flowing past garbage.
  ASSERT_TRUE(sender.send_to(to, good.data(), good.size()));

  ASSERT_TRUE(wait_for([&] { return server.stats().datagrams_received >= 4; }));
  server.stop();

  const NetIngestStats stats = server.stats();
  EXPECT_EQ(stats.datagrams_received, 4u);
  EXPECT_EQ(stats.malformed_short_header, 1u);
  EXPECT_EQ(stats.malformed_bad_version, 1u);
  EXPECT_EQ(stats.malformed_length_mismatch, 1u);
  EXPECT_EQ(stats.quarantined(), 3u);
  EXPECT_EQ(stats.offered, 1u);
  // Wire conservation: received = quarantined + admission_drops + offered.
  EXPECT_EQ(stats.datagrams_received,
            stats.quarantined() + stats.admission_drops + stats.offered);
  EXPECT_EQ(sink.size(), 1u);

  const auto accounts = server.agent_accounts();
  ASSERT_EQ(accounts.size(), 1u);
  EXPECT_EQ(accounts[0].quarantined, 3u);
  EXPECT_EQ(accounts[0].accepted, 1u);
}

TEST(NetIngest, DropNewestShedsEverythingAboveTheWatermark) {
  OfferSink sink;
  std::atomic<std::size_t> depth{0};
  UdpIngestServerConfig config;
  config.admission_high_watermark = 10;
  config.admission = AdmissionPolicy::kDropNewest;
  UdpIngestServer server(config, sink.fn(), [&] { return depth.load(); });
  SKIP_WITHOUT_LOOPBACK(server);
  const UdpEndpoint to = server.endpoint();

  UdpSocket sender;
  ASSERT_TRUE(sender.open_unbound());
  const auto msg = valid_message(2);

  // Below the watermark: everything admitted.
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(sender.send_to(to, msg.data(), msg.size()));
  ASSERT_TRUE(wait_for([&] { return server.stats().datagrams_received >= 3; }));
  EXPECT_EQ(server.stats().admission_drops, 0u);

  // Queue visibly backed up: every arrival is shed, and the shed datagrams
  // never reach the offer edge.
  depth.store(10);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(sender.send_to(to, msg.data(), msg.size()));
  ASSERT_TRUE(wait_for([&] { return server.stats().datagrams_received >= 7; }));
  server.stop();

  const NetIngestStats stats = server.stats();
  EXPECT_EQ(stats.admission_drops, 4u);
  EXPECT_EQ(stats.offered, 3u);
  EXPECT_EQ(stats.datagrams_received,
            stats.quarantined() + stats.admission_drops + stats.offered);
  EXPECT_EQ(sink.size(), 3u);
  const auto accounts = server.agent_accounts();
  ASSERT_EQ(accounts.size(), 1u);
  EXPECT_EQ(accounts[0].admission_drops, 4u);
  EXPECT_EQ(accounts[0].accepted, 3u);
}

TEST(NetIngest, AgentShareShedsOnlyTheTopTalker) {
  OfferSink sink;
  std::atomic<std::size_t> depth{0};
  UdpIngestServerConfig config;
  config.admission_high_watermark = 10;
  config.admission = AdmissionPolicy::kDropByAgentShare;
  UdpIngestServer server(config, sink.fn(), [&] { return depth.load(); });
  SKIP_WITHOUT_LOOPBACK(server);
  const UdpEndpoint to = server.endpoint();

  UdpSocket talker, quiet;
  ASSERT_TRUE(talker.open_unbound());
  ASSERT_TRUE(quiet.open_unbound());
  const auto msg = valid_message(2);

  // Build the accepted history below the watermark: talker 10, quiet 2.
  // Send-and-wait one at a time so the accepted counters are exact before
  // the watermark flips (no in-flight datagrams straddling the change).
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(talker.send_to(to, msg.data(), msg.size()));
    ASSERT_TRUE(wait_for([&] {
      return server.stats().datagrams_received >= static_cast<std::uint64_t>(i + 1);
    }));
  }
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(quiet.send_to(to, msg.data(), msg.size()));
    ASSERT_TRUE(wait_for([&] {
      return server.stats().datagrams_received >= static_cast<std::uint64_t>(11 + i);
    }));
  }
  EXPECT_EQ(server.stats().admission_drops, 0u);

  // Backlog: with agents=2 and total_accepted=12, the talker (10*2 > 12) is
  // shed while the quiet agent (2*2 < 12) still gets through.
  depth.store(10);
  ASSERT_TRUE(talker.send_to(to, msg.data(), msg.size()));
  ASSERT_TRUE(wait_for([&] { return server.stats().datagrams_received >= 13; }));
  ASSERT_TRUE(quiet.send_to(to, msg.data(), msg.size()));
  ASSERT_TRUE(wait_for([&] { return server.stats().datagrams_received >= 14; }));
  server.stop();

  const auto accounts = server.agent_accounts();
  ASSERT_EQ(accounts.size(), 2u);
  for (const AgentAccount& a : accounts) {
    if (a.endpoint.port == talker.local_endpoint().port) {
      EXPECT_EQ(a.admission_drops, 1u);
      EXPECT_EQ(a.accepted, 10u);
    } else {
      EXPECT_EQ(a.endpoint.port, quiet.local_endpoint().port);
      EXPECT_EQ(a.admission_drops, 0u);
      EXPECT_EQ(a.accepted, 3u);
    }
  }
  const NetIngestStats stats = server.stats();
  EXPECT_EQ(stats.admission_drops, 1u);
  EXPECT_EQ(stats.offered, 13u);
  EXPECT_EQ(stats.datagrams_received,
            stats.quarantined() + stats.admission_drops + stats.offered);
}

TEST(NetIngest, DownstreamRejectionsAreCountedAsQueueDrops) {
  OfferSink sink;
  sink.accept.store(false);  // the "queue" refuses everything
  UdpIngestServer server(UdpIngestServerConfig{}, sink.fn());
  SKIP_WITHOUT_LOOPBACK(server);
  UdpSocket sender;
  ASSERT_TRUE(sender.open_unbound());
  const auto msg = valid_message(1);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(sender.send_to(server.endpoint(), msg.data(), msg.size()));
  }
  ASSERT_TRUE(wait_for([&] { return server.stats().datagrams_received >= 3; }));
  server.stop();
  const NetIngestStats stats = server.stats();
  EXPECT_EQ(stats.offered, 3u);
  EXPECT_EQ(stats.offer_rejected, 3u);
  const auto accounts = server.agent_accounts();
  ASSERT_EQ(accounts.size(), 1u);
  EXPECT_EQ(accounts[0].queue_drops, 3u);
  EXPECT_EQ(accounts[0].accepted, 0u);
}

// Concurrency shakeout for the TSan leg: many senders, multiple receiver
// threads, a reader hammering the wait-free snapshots, stop() mid-traffic.
// The invariant is conservation of whatever was actually received — the
// kernel may drop loopback datagrams under burst, which is outside the
// server's books by design.
TEST(NetIngest, ConcurrentSendersStatsReadersAndStop) {
  OfferSink sink;
  UdpIngestServerConfig config;
  config.receiver_threads = 3;
  config.batch_size = 16;
  UdpIngestServer server(config, sink.fn());
  SKIP_WITHOUT_LOOPBACK(server);
  const UdpEndpoint to = server.endpoint();

  constexpr int kSenders = 3;
  constexpr int kPerSender = 200;
  std::atomic<bool> reading{true};
  std::thread reader([&] {
    while (reading.load()) {
      const NetIngestStats s = server.stats();
      EXPECT_EQ(s.datagrams_received,
                s.quarantined() + s.admission_drops + s.offered);
      for (const AgentAccount& a : server.agent_accounts()) {
        EXPECT_EQ(a.datagrams,
                  a.quarantined + a.admission_drops + a.accepted + a.queue_drops);
      }
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> senders;
  for (int t = 0; t < kSenders; ++t) {
    senders.emplace_back([&, t] {
      UdpSocket socket;
      ASSERT_TRUE(socket.open_unbound());
      const auto msg = valid_message(static_cast<std::uint32_t>(t + 1), 2);
      for (int i = 0; i < kPerSender; ++i) {
        ASSERT_TRUE(socket.send_to(to, msg.data(), msg.size()));
        if (i % 32 == 0) std::this_thread::yield();
      }
    });
  }
  for (auto& t : senders) t.join();
  // Let the receivers drain what the kernel buffered, then stop mid-read
  // loop — stop() must fully process in-flight batches before returning.
  wait_for([&] {
    return server.stats().datagrams_received >=
           static_cast<std::uint64_t>(kSenders * kPerSender);
  }, std::chrono::seconds(2));
  server.stop();
  reading.store(false);
  reader.join();

  const NetIngestStats stats = server.stats();
  EXPECT_GT(stats.datagrams_received, 0u);
  EXPECT_LE(stats.datagrams_received,
            static_cast<std::uint64_t>(kSenders * kPerSender));
  EXPECT_EQ(stats.quarantined(), 0u);
  EXPECT_EQ(stats.datagrams_received,
            stats.quarantined() + stats.admission_drops + stats.offered);
  EXPECT_EQ(stats.offered, static_cast<std::uint64_t>(sink.size()));
  EXPECT_EQ(stats.agents, static_cast<std::uint64_t>(kSenders));
  std::uint64_t agent_datagrams = 0;
  for (const AgentAccount& a : server.agent_accounts()) agent_datagrams += a.datagrams;
  EXPECT_EQ(agent_datagrams, stats.datagrams_received);
}

}  // namespace
}  // namespace flock
