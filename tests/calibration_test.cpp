// Tests for the §5.2 grid calibration machinery and the per-scheme glue.
#include <gtest/gtest.h>

#include "calibration/calibrate_schemes.h"
#include "calibration/grid.h"

namespace flock {
namespace {

Accuracy acc(double p, double r) {
  Accuracy a;
  a.precision = p;
  a.recall = r;
  return a;
}

TEST(Grid, SweepsCartesianProduct) {
  ParamGrid grid;
  grid.names = {"a", "b"};
  grid.values = {{1, 2, 3}, {10, 20}};
  std::vector<std::vector<double>> seen;
  sweep_grid(grid, [&](const std::vector<double>& p) {
    seen.push_back(p);
    return acc(1, 1);
  });
  EXPECT_EQ(seen.size(), 6u);
  // All combinations distinct.
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(Grid, RejectsMalformed) {
  ParamGrid grid;
  grid.names = {"a"};
  grid.values = {};
  EXPECT_THROW(sweep_grid(grid, [](const auto&) { return Accuracy{}; }),
               std::invalid_argument);
  grid.values = {{}};
  EXPECT_THROW(sweep_grid(grid, [](const auto&) { return Accuracy{}; }),
               std::invalid_argument);
}

TEST(Grid, ParetoFrontierFiltersDominated) {
  std::vector<CalibrationPoint> points;
  points.push_back({{1}, acc(0.9, 0.5)});
  points.push_back({{2}, acc(0.8, 0.4)});  // dominated by the first
  points.push_back({{3}, acc(0.5, 0.9)});
  points.push_back({{4}, acc(0.99, 0.2)});
  const auto frontier = pareto_frontier(points);
  EXPECT_EQ(frontier.size(), 3u);
  for (const auto& p : frontier) EXPECT_NE(p.params[0], 2.0);
}

TEST(Grid, SelectionPrefersHighPrecisionThenRecall) {
  std::vector<CalibrationPoint> points;
  points.push_back({{1}, acc(0.99, 0.6)});
  points.push_back({{2}, acc(0.985, 0.8)});
  points.push_back({{3}, acc(0.5, 0.99)});
  const auto chosen = select_operating_point(points);
  EXPECT_EQ(chosen.params[0], 2.0);  // precision >= 0.98, best recall
}

TEST(Grid, SelectionRelaxesPrecisionFloor) {
  // Nothing reaches 98% precision; rule drops to 93%, 88%...
  std::vector<CalibrationPoint> points;
  points.push_back({{1}, acc(0.90, 0.7)});
  points.push_back({{2}, acc(0.85, 0.9)});
  const auto chosen = select_operating_point(points);
  EXPECT_EQ(chosen.params[0], 1.0);  // first floor that qualifies is 0.88
}

TEST(Grid, SelectionSkipsLowRecallPoints) {
  // High-precision point with recall below the 25% bar loses to a slightly
  // lower-precision, high-recall point.
  std::vector<CalibrationPoint> points;
  points.push_back({{1}, acc(0.99, 0.1)});
  points.push_back({{2}, acc(0.9, 0.8)});
  const auto chosen = select_operating_point(points);
  EXPECT_EQ(chosen.params[0], 2.0);
}

TEST(Grid, SelectionFallsBackToBestRecall) {
  std::vector<CalibrationPoint> points;
  points.push_back({{1}, acc(0.3, 0.1)});
  points.push_back({{2}, acc(0.2, 0.2)});
  const auto chosen = select_operating_point(points);
  EXPECT_EQ(chosen.params[0], 2.0);
}

TEST(Grid, CalibrateGridEndToEnd) {
  ParamGrid grid;
  grid.names = {"x"};
  grid.values = {{0.0, 0.5, 1.0}};
  // Precision rises with x, recall falls.
  const auto outcome = calibrate_grid(grid, [](const std::vector<double>& p) {
    return acc(0.5 + 0.5 * p[0], 1.0 - 0.6 * p[0]);
  });
  EXPECT_EQ(outcome.evaluated.size(), 3u);
  EXPECT_EQ(outcome.frontier.size(), 3u);  // all on the tradeoff curve
  EXPECT_EQ(outcome.chosen.params[0], 1.0);  // only x=1 reaches 98% precision
}

TEST(SchemeGlue, ParamVectorDecoding) {
  const FlockParams fp = flock_params_from({1e-4, 2e-2, 5e-4});
  EXPECT_DOUBLE_EQ(fp.p_g, 1e-4);
  EXPECT_DOUBLE_EQ(fp.p_b, 2e-2);
  EXPECT_DOUBLE_EQ(fp.rho, 5e-4);
  EXPECT_THROW(flock_params_from({1.0}), std::invalid_argument);

  const NetBouncerOptions nb = netbouncer_options_from({4.0, 1e-3, 0.5});
  EXPECT_DOUBLE_EQ(nb.lambda, 4.0);
  EXPECT_DOUBLE_EQ(nb.drop_threshold, 1e-3);
  EXPECT_DOUBLE_EQ(nb.device_link_fraction, 0.5);
  EXPECT_THROW(netbouncer_options_from({}), std::invalid_argument);

  const Zero07Options z = zero07_options_from({0.7});
  EXPECT_DOUBLE_EQ(z.score_threshold, 0.7);
  EXPECT_THROW(zero07_options_from({0.1, 0.2}), std::invalid_argument);
}

TEST(SchemeGlue, DefaultGridsAreWellFormed) {
  for (const ParamGrid& g :
       {default_flock_grid(), default_netbouncer_grid(), default_zero07_grid()}) {
    EXPECT_EQ(g.names.size(), g.values.size());
    for (const auto& axis : g.values) EXPECT_FALSE(axis.empty());
  }
}

TEST(SchemeGlue, CalibratesFlockOnTinyEnvironment) {
  EnvConfig cfg;
  cfg.clos = ThreeTierClosConfig{2, 2, 2, 2, 2};
  cfg.num_traces = 2;
  cfg.min_failures = 1;
  cfg.max_failures = 1;
  cfg.rates.bad_min = 5e-3;
  cfg.traffic.num_app_flows = 400;
  cfg.seed = 9;
  const auto env = make_env(cfg);
  ViewOptions view;
  view.telemetry = kTelemetryInt;
  ParamGrid grid;
  grid.names = {"p_g", "p_b", "rho"};
  grid.values = {{3e-4}, {2e-2, 6e-2}, {1e-3}};
  const auto outcome = calibrate_flock(*env, view, grid);
  EXPECT_EQ(outcome.evaluated.size(), 2u);
  EXPECT_GT(outcome.chosen.accuracy.fscore(), 0.5);
}

}  // namespace
}  // namespace flock
