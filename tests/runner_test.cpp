// Tests for the experiment-environment builders and scheme runner.
#include "eval/runner.h"

#include <gtest/gtest.h>

#include "core/flock_localizer.h"

namespace flock {
namespace {

EnvConfig tiny_config() {
  EnvConfig cfg;
  cfg.clos = ThreeTierClosConfig{2, 2, 2, 2, 2};
  cfg.num_traces = 4;
  cfg.min_failures = 1;
  cfg.max_failures = 2;
  cfg.rates.bad_min = 5e-3;
  cfg.traffic.num_app_flows = 300;
  cfg.seed = 31;
  return cfg;
}

TEST(Runner, MakeEnvProducesRequestedTraces) {
  const auto env = make_env(tiny_config());
  EXPECT_EQ(env->traces.size(), 4u);
  for (const Trace& t : env->traces) {
    EXPECT_FALSE(t.flows.empty());
    EXPECT_FALSE(t.truth.failed.empty());
    EXPECT_LE(t.truth.failed.size(), 2u);
  }
}

TEST(Runner, FailureCountCyclesThroughRange) {
  auto cfg = tiny_config();
  cfg.num_traces = 6;
  cfg.min_failures = 1;
  cfg.max_failures = 3;
  const auto env = make_env(cfg);
  std::vector<std::size_t> sizes;
  for (const Trace& t : env->traces) sizes.push_back(t.truth.failed.size());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 2, 3, 1, 2, 3}));
}

TEST(Runner, DeviceFailureEnv) {
  auto cfg = tiny_config();
  cfg.failure = FailureKind::kDeviceFailures;
  cfg.device_link_fraction = 0.5;
  const auto env = make_env(cfg);
  for (const Trace& t : env->traces) {
    for (ComponentId c : t.truth.failed) EXPECT_TRUE(env->topo->is_device_component(c));
  }
}

TEST(Runner, FixedRateEnv) {
  auto cfg = tiny_config();
  cfg.failure = FailureKind::kFixedRateDrops;
  cfg.min_failures = 1;
  cfg.fixed_drop_rate = 0.009;
  const auto env = make_env(cfg);
  for (const Trace& t : env->traces) {
    ASSERT_EQ(t.truth.failed.size(), 1u);
    const LinkId l = env->topo->component_link(t.truth.failed.front());
    EXPECT_DOUBLE_EQ(t.truth.link_drop_rate[static_cast<std::size_t>(l)], 0.009);
  }
}

TEST(Runner, IrregularEnvRemovesLinks) {
  const Topology full = make_three_tier_clos(tiny_config().clos);
  const auto env = make_irregular_env(tiny_config(), 0.15);
  EXPECT_LT(env->topo->num_links(), full.num_links());
}

TEST(Runner, DeterministicAcrossCalls) {
  const auto a = make_env(tiny_config());
  const auto b = make_env(tiny_config());
  ASSERT_EQ(a->traces.size(), b->traces.size());
  for (std::size_t i = 0; i < a->traces.size(); ++i) {
    EXPECT_EQ(a->traces[i].truth.failed, b->traces[i].truth.failed);
    ASSERT_EQ(a->traces[i].flows.size(), b->traces[i].flows.size());
    EXPECT_EQ(a->traces[i].flows[0].packets_sent, b->traces[i].flows[0].packets_sent);
  }
}

TEST(Runner, TestbedEnvBothScenarios) {
  TestbedEnvConfig cfg;
  cfg.num_traces = 2;
  cfg.sim.num_app_flows = 500;
  cfg.sim.duration_ms = 100;
  const auto queue_env = make_testbed_env(cfg);
  EXPECT_EQ(queue_env->traces.size(), 2u);
  cfg.link_flap = true;
  const auto flap_env = make_testbed_env(cfg);
  EXPECT_EQ(flap_env->traces.size(), 2u);
  for (const Trace& t : flap_env->traces) EXPECT_EQ(t.truth.failed.size(), 1u);
}

TEST(Runner, RunSchemeProducesPerTraceAccuracy) {
  const auto env = make_env(tiny_config());
  FlockOptions opt;
  opt.params.p_b = 2e-2;
  ViewOptions view;
  view.telemetry = kTelemetryInt;
  const auto per_trace = run_scheme(FlockLocalizer(opt), *env, view);
  EXPECT_EQ(per_trace.size(), env->traces.size());
  const Accuracy mean = run_scheme_mean(FlockLocalizer(opt), *env, view);
  EXPECT_GE(mean.precision, 0.0);
  EXPECT_LE(mean.precision, 1.0);
  EXPECT_GT(mean.fscore(), 0.4);  // clear failures, INT input
}

}  // namespace
}  // namespace flock
