// Flag validation for the streaming_service example (examples/service_args.h):
// the rules that used to be enforced only by reading the demo's stderr —
// flag exclusivity, dependent flags, and numeric sanity — pinned as a unit
// test.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../examples/service_args.h"

namespace flock {
namespace {

// argv[0] is the program name, as in a real invocation. `budget` pins the
// machine's thread budget so --localize-threads rules test the same way on
// any hardware (0 = the real hardware_concurrency, as in production).
bool parse(std::initializer_list<const char*> flags, ServiceOptions& opts,
           std::string* error_out = nullptr, unsigned budget = 0) {
  std::vector<const char*> argv = {"streaming_service"};
  argv.insert(argv.end(), flags.begin(), flags.end());
  std::string error;
  const bool ok =
      parse_service_args(static_cast<int>(argv.size()), argv.data(), opts, error, budget);
  EXPECT_EQ(ok, error.empty());  // failures always say why
  if (error_out != nullptr) *error_out = error;
  return ok;
}

TEST(ServiceArgs, DefaultsAreLiveInProcessFeed) {
  ServiceOptions opts;
  ASSERT_TRUE(parse({}, opts));
  EXPECT_FALSE(opts.listen);
  EXPECT_EQ(opts.port, 0);
  EXPECT_TRUE(opts.capture.empty());
  EXPECT_TRUE(opts.replay.empty());
  EXPECT_FALSE(opts.paced);
  EXPECT_EQ(opts.speed, 1.0);
  EXPECT_TRUE(opts.tracker_save.empty());
  EXPECT_TRUE(opts.tracker_load.empty());
}

TEST(ServiceArgs, ParsesEveryFlag) {
  ServiceOptions opts;
  ASSERT_TRUE(parse({"--listen=4739", "--capture=/tmp/cap.bin", "--tracker-save=/tmp/t.snap",
                     "--tracker-load=/tmp/u.snap"},
                    opts));
  EXPECT_TRUE(opts.listen);
  EXPECT_EQ(opts.port, 4739);
  EXPECT_EQ(opts.capture, "/tmp/cap.bin");
  EXPECT_EQ(opts.tracker_save, "/tmp/t.snap");
  EXPECT_EQ(opts.tracker_load, "/tmp/u.snap");

  ServiceOptions replaying;
  ASSERT_TRUE(parse({"--replay=/tmp/cap.bin", "--paced", "--speed=2.5"}, replaying));
  EXPECT_EQ(replaying.replay, "/tmp/cap.bin");
  EXPECT_TRUE(replaying.paced);
  EXPECT_EQ(replaying.speed, 2.5);
}

TEST(ServiceArgs, ListenWithoutPortMeansEphemeral) {
  ServiceOptions opts;
  ASSERT_TRUE(parse({"--listen"}, opts));
  EXPECT_TRUE(opts.listen);
  EXPECT_EQ(opts.port, 0);
}

TEST(ServiceArgs, RejectsUnknownFlags) {
  ServiceOptions opts;
  std::string error;
  EXPECT_FALSE(parse({"--replya=/tmp/x"}, opts, &error));  // typo must not be ignored
  EXPECT_NE(error.find("--replya"), std::string::npos);
  EXPECT_FALSE(parse({"extra"}, opts));
}

TEST(ServiceArgs, RejectsBadListenPort) {
  ServiceOptions opts;
  EXPECT_FALSE(parse({"--listen=notaport"}, opts));
  EXPECT_FALSE(parse({"--listen=70000"}, opts));
  EXPECT_FALSE(parse({"--listen=-1"}, opts));
  EXPECT_FALSE(parse({"--listen=47x"}, opts));  // trailing junk
}

TEST(ServiceArgs, ListenAndReplayAreExclusive) {
  ServiceOptions opts;
  std::string error;
  EXPECT_FALSE(parse({"--listen", "--replay=/tmp/cap.bin"}, opts, &error));
  EXPECT_NE(error.find("exclusive"), std::string::npos);
}

TEST(ServiceArgs, PacedRequiresReplay) {
  // The regression this suite exists for: `--paced` alone used to be
  // accepted and silently did nothing.
  ServiceOptions opts;
  std::string error;
  EXPECT_FALSE(parse({"--paced"}, opts, &error));
  EXPECT_NE(error.find("--replay"), std::string::npos);
  EXPECT_FALSE(parse({"--paced", "--capture=/tmp/cap.bin"}, opts));
}

TEST(ServiceArgs, SpeedRequiresPacedAndMustBePositiveFinite) {
  ServiceOptions opts;
  EXPECT_FALSE(parse({"--replay=/tmp/c", "--speed=2"}, opts));  // no --paced
  EXPECT_FALSE(parse({"--replay=/tmp/c", "--paced", "--speed=0"}, opts));
  EXPECT_FALSE(parse({"--replay=/tmp/c", "--paced", "--speed=-3"}, opts));
  EXPECT_FALSE(parse({"--replay=/tmp/c", "--paced", "--speed=nan"}, opts));
  EXPECT_FALSE(parse({"--replay=/tmp/c", "--paced", "--speed=inf"}, opts));
  EXPECT_FALSE(parse({"--replay=/tmp/c", "--paced", "--speed=fast"}, opts));
  EXPECT_FALSE(parse({"--replay=/tmp/c", "--paced", "--speed=1.5x"}, opts));
  EXPECT_TRUE(parse({"--replay=/tmp/c", "--paced", "--speed=0.25"}, opts));
  EXPECT_EQ(opts.speed, 0.25);
}

TEST(ServiceArgs, LocalizeThreadsParsesAndDefaultsToZero) {
  ServiceOptions opts;
  ASSERT_TRUE(parse({}, opts));
  EXPECT_EQ(opts.localize_threads, 0);  // 0 = env var / serial, decided downstream
  ASSERT_TRUE(parse({"--localize-threads=4"}, opts, nullptr, /*budget=*/16));
  EXPECT_EQ(opts.localize_threads, 4);
}

TEST(ServiceArgs, LocalizeThreadsRejectsNonPositiveAndJunk) {
  ServiceOptions opts;
  std::string error;
  EXPECT_FALSE(parse({"--localize-threads=0"}, opts, &error));
  EXPECT_NE(error.find(">= 1"), std::string::npos);
  EXPECT_FALSE(parse({"--localize-threads=-2"}, opts));
  EXPECT_FALSE(parse({"--localize-threads=two"}, opts));
  EXPECT_FALSE(parse({"--localize-threads=4x"}, opts));  // trailing junk
  EXPECT_FALSE(parse({"--localize-threads="}, opts));
}

TEST(ServiceArgs, LocalizeThreadsRejectsMoreThanTheMachine) {
  ServiceOptions opts;
  std::string error;
  EXPECT_FALSE(parse({"--localize-threads=9"}, opts, &error, /*budget=*/8));
  EXPECT_NE(error.find("hardware threads"), std::string::npos);
}

TEST(ServiceArgs, LocalizeThreadsSharesTheBudgetWithTheLocalizerPool) {
  // The service runs kServiceLocalizerPool localizer threads, each owning a
  // team of N: N x pool must fit the machine. N = 1 (serial inside each
  // worker) is always accepted — it adds no threads at all.
  ServiceOptions opts;
  std::string error;
  EXPECT_FALSE(parse({"--localize-threads=3"}, opts, &error, /*budget=*/4));
  EXPECT_NE(error.find("shared thread budget"), std::string::npos);
  EXPECT_TRUE(parse({"--localize-threads=2"}, opts, nullptr, /*budget=*/4));
  EXPECT_TRUE(parse({"--localize-threads=1"}, opts, nullptr, /*budget=*/1));
}

}  // namespace
}  // namespace flock
