// The deterministic intra-epoch runtime (common/parallel_for.h): fixed
// chunking independent of thread count, bit-identical ordered reduction at
// 1/2/8 threads, exception propagation out of chunk bodies, and rejection
// of reentrant use. These are the invariants the likelihood engine, the
// no-JLE scan, and the barrier tree merge lean on for byte-identical output
// across thread counts.
#include "common/parallel_for.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace flock::parallel {
namespace {

TEST(ParallelFor, ChunkGridIsAFunctionOfNAndGrainOnly) {
  EXPECT_EQ(ParallelRunner::num_chunks(0, 16), 0);
  EXPECT_EQ(ParallelRunner::num_chunks(1, 16), 1);
  EXPECT_EQ(ParallelRunner::num_chunks(16, 16), 1);
  EXPECT_EQ(ParallelRunner::num_chunks(17, 16), 2);
  EXPECT_EQ(ParallelRunner::num_chunks(100, 16), 7);
  EXPECT_EQ(ParallelRunner::num_chunks(100, 0), 100);  // grain <= 0 clamps to 1

  // The same (n, grain) yields the same chunk boundaries whatever the team
  // size: record every (chunk, begin, end) triple and compare across runners.
  auto boundaries = [](std::int32_t threads) {
    ParallelRunner runner(threads);
    std::vector<std::vector<std::int64_t>> out(
        static_cast<std::size_t>(ParallelRunner::num_chunks(103, 10)));
    runner.for_chunks(103, 10, [&](std::int64_t chunk, std::int64_t begin, std::int64_t end) {
      out[static_cast<std::size_t>(chunk)] = {begin, end};
    });
    return out;
  };
  const auto serial = boundaries(1);
  EXPECT_EQ(serial, boundaries(2));
  EXPECT_EQ(serial, boundaries(8));
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i][0], static_cast<std::int64_t>(i) * 10);
    EXPECT_EQ(serial[i][1], std::min<std::int64_t>(103, serial[i][0] + 10));
  }
}

TEST(ParallelFor, EveryChunkRunsExactlyOnce) {
  ParallelRunner runner(4);
  std::vector<std::atomic<std::int32_t>> hits(1000);
  runner.for_chunks(1000, 7, [&](std::int64_t, std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(runner.chunks_run(), static_cast<std::uint64_t>(ParallelRunner::num_chunks(1000, 7)));
}

TEST(ParallelFor, OrderedReductionIsBitIdenticalAcrossThreadCounts) {
  // Ill-conditioned terms: alternating signs across ten orders of magnitude,
  // so any reassociation of the combine sequence shows up in the bits.
  const std::int64_t n = 4099;  // odd, and not a multiple of the grain
  std::vector<double> terms(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const double mag = std::pow(10.0, static_cast<double>(i % 10) - 5.0);
    terms[static_cast<std::size_t>(i)] = (i % 2 == 0 ? mag : -mag) + 1e-13 * static_cast<double>(i);
  }
  auto sum_at = [&](std::int32_t threads) {
    ParallelRunner runner(threads);
    return runner.reduce(n, 64, [&](std::int64_t, std::int64_t begin, std::int64_t end) {
      double partial = 0.0;
      for (std::int64_t i = begin; i < end; ++i) partial += terms[static_cast<std::size_t>(i)];
      return partial;
    });
  };
  const double at1 = sum_at(1);
  const double at2 = sum_at(2);
  const double at8 = sum_at(8);
  // Bit equality, not tolerance: the ordered pairwise tree's rounding
  // sequence depends only on the chunk count.
  EXPECT_EQ(std::memcmp(&at1, &at2, sizeof(double)), 0) << at1 << " vs " << at2;
  EXPECT_EQ(std::memcmp(&at1, &at8, sizeof(double)), 0) << at1 << " vs " << at8;
}

TEST(ParallelFor, ReductionOfNothingIsZeroAndSingleChunkIsPlainSum) {
  ParallelRunner runner(4);
  EXPECT_EQ(runner.reduce(0, 16, [](std::int64_t, std::int64_t, std::int64_t) { return 1.0; }),
            0.0);
  const double one = runner.reduce(
      10, 16, [](std::int64_t, std::int64_t begin, std::int64_t end) {
        return static_cast<double>(end - begin);
      });
  EXPECT_EQ(one, 10.0);
}

TEST(ParallelFor, ExceptionsPropagateToTheCaller) {
  ParallelRunner runner(4);
  // Every chunk still runs (disjoint outputs stay whole); the first error is
  // rethrown on the calling thread.
  std::vector<std::atomic<std::int32_t>> hits(64);
  EXPECT_THROW(
      runner.for_chunks(64, 1,
                        [&](std::int64_t chunk, std::int64_t begin, std::int64_t) {
                          hits[static_cast<std::size_t>(begin)].fetch_add(
                              1, std::memory_order_relaxed);
                          if (chunk % 2 == 0) throw std::runtime_error("poisoned chunk");
                        }),
      std::runtime_error);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // The runner is reusable after a poisoned job.
  std::atomic<std::int64_t> total{0};
  runner.for_chunks(100, 8, [&](std::int64_t, std::int64_t begin, std::int64_t end) {
    total.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 100);
}

TEST(ParallelFor, ReentrantUseThrowsInsteadOfDeadlocking) {
  ParallelRunner runner(2);
  EXPECT_THROW(runner.for_chunks(8, 1,
                                 [&](std::int64_t, std::int64_t, std::int64_t) {
                                   runner.for_chunks(
                                       4, 1, [](std::int64_t, std::int64_t, std::int64_t) {});
                                 }),
               std::logic_error);
}

TEST(ParallelFor, HelperChunksCountTheWorkTheCallerDidNotDo) {
  // With a 1-thread runner nothing can be stolen; with helpers the split is
  // dynamic, but caller + helpers must always add up to the grid.
  ParallelRunner serial(1);
  serial.for_chunks(64, 1, [](std::int64_t, std::int64_t, std::int64_t) {});
  EXPECT_EQ(serial.helper_chunks(), 0u);
  EXPECT_EQ(serial.chunks_run(), 64u);

  ParallelRunner team(4);
  team.for_chunks(64, 1, [](std::int64_t, std::int64_t, std::int64_t) {});
  EXPECT_EQ(team.chunks_run(), 64u);
  EXPECT_LE(team.helper_chunks(), team.chunks_run());
}

TEST(ParallelFor, ResolveThreadsPrefersExplicitRequestOverEnv) {
  // env_threads() is cached per process, so this test only pins the
  // request-path arithmetic (the env path is exercised by the CI leg that
  // exports FLOCK_LOCALIZE_THREADS=2 for the whole suite).
  EXPECT_EQ(resolve_threads(4), 4);
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(300), 256);  // clamped
  EXPECT_GE(resolve_threads(0), 1);     // env or the serial default
}

TEST(ParallelFor, ThreadRunnerCachesPerThreadAndRefusesSerial) {
  EXPECT_EQ(thread_runner(1), nullptr);
  EXPECT_EQ(thread_runner(0), nullptr);
  ParallelRunner* a = thread_runner(2);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->num_threads(), 2);
  EXPECT_EQ(thread_runner(2), a);  // cached
  ParallelRunner* b = thread_runner(3);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->num_threads(), 3);  // rebuilt on a different request
}

}  // namespace
}  // namespace flock::parallel
