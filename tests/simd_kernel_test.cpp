// SIMD-vs-scalar equivalence for the likelihood kernel (common/simd.h) and
// everything built on it. The dispatch contract says the AVX2 and scalar
// backends are the SAME algorithm — identical operation sequence, identical
// accumulator shape — so this suite demands *bit* equality at the kernel
// level, across every array length (tails included) and randomized inputs,
// and byte-identical localization predictions from the full engine at every
// level. Runs on the sanitizer CI legs (label "sanitize") so the intrinsics
// path stays clean under ASan/UBSan too.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/simd.h"
#include "core/flock_localizer.h"
#include "core/likelihood_engine.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "flowsim/views.h"
#include "topology/topology.h"

namespace flock {
namespace {

std::uint64_t bits_of(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

// Distance in representable doubles (same-sign finite values only — every
// quantity in this suite is a finite log-likelihood).
std::uint64_t ulp_distance(double a, double b) {
  const std::uint64_t ua = bits_of(a);
  const std::uint64_t ub = bits_of(b);
  if ((ua >> 63) != (ub >> 63)) return (ua << 1 >> 1) + (ub << 1 >> 1);
  return ua > ub ? ua - ub : ub - ua;
}

// Restore the dispatch level on scope exit, so one test's set_level never
// leaks into another (or into the FLOCK_FORCE_SCALAR choice a CI leg made).
struct LevelGuard {
  simd::Level saved = simd::active_level();
  ~LevelGuard() { simd::set_level(saved); }
};

TEST(SimdDispatch, SetLevelClampsToWhatTheCpuSupports) {
  LevelGuard guard;
  const simd::Level max = simd::max_supported_level();
  EXPECT_LE(simd::set_level(simd::Level::kAvx2), max);
  EXPECT_EQ(simd::set_level(simd::Level::kScalar), simd::Level::kScalar);
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  EXPECT_STRNE(simd::level_name(simd::Level::kScalar), simd::level_name(simd::Level::kAvx2));
}

// n = 1, wt = 1 turns the kernel into a plain log(a·es + c): its branch-free
// polynomial must track std::log to ~1 ulp over the engine's whole input
// domain (argument ≥ 1, up to the huge-evidence range the engine still
// vectorizes).
TEST(SimdKernel, LogMatchesStdLogWithinOneUlp) {
  LevelGuard guard;
  simd::set_level(simd::Level::kScalar);
  Rng rng(20260808);
  const double one = 1.0;
  std::uint64_t worst = 0;
  for (int i = 0; i < 200000; ++i) {
    // log-uniform argument in [1, e^690]: the vectorized evidence range.
    const double arg = std::exp(rng.uniform(0.0, 690.0));
    const double got = simd::weighted_log_sum(&arg, &one, 1, 1.0, 0.0);
    const double want = std::log(arg);
    const std::uint64_t d = ulp_distance(got, want);
    worst = std::max(worst, d);
    ASSERT_LE(d, 1u) << "arg=" << arg;
  }
  // The polynomial is exact at 1 (log 1 = 0 with no rounding).
  EXPECT_EQ(simd::weighted_log_sum(&one, &one, 1, 1.0, 0.0), 0.0);
  EXPECT_LE(worst, 1u);
}

// The core contract: every supported level produces the same bits as the
// scalar backend, for every array length — especially the 0..20 range that
// exercises empty input, pure-tail loops and the vector/tail seam — and for
// lengths around the 4-lane unroll boundary.
TEST(SimdKernel, AllLevelsAreBitIdenticalToScalarIncludingTails) {
  LevelGuard guard;
  const auto max = static_cast<int>(simd::max_supported_level());
  if (max == 0) GTEST_SKIP() << "no SIMD level on this CPU; scalar is trivially identical";
  Rng rng(7151);
  std::vector<std::size_t> lengths;
  for (std::size_t n = 0; n <= 20; ++n) lengths.push_back(n);
  for (std::size_t n : {31u, 32u, 33u, 63u, 64u, 65u, 127u, 500u, 1021u}) lengths.push_back(n);
  for (std::size_t n : lengths) {
    for (int rep = 0; rep < 8; ++rep) {
      const double a = static_cast<double>(1 + rng.next_below(64));
      const double c = static_cast<double>(rng.next_below(64));
      // Respect the kernel's domain a·es + c ≥ 1 (simd.h): with c = 0 the
      // evidence exponent must be non-negative so a·es alone clears 1.
      const double s_lo = (c == 0.0) ? 0.0 : -30.0;
      std::vector<double> es(n), wt(n);
      for (std::size_t i = 0; i < n; ++i) {
        es[i] = std::exp(rng.uniform(s_lo, 690.0));  // e^s for s in the safe range
        wt[i] = static_cast<double>(1 + rng.next_below(100000));
      }
      simd::set_level(simd::Level::kScalar);
      const double scalar = simd::weighted_log_sum(es.data(), wt.data(), n, a, c);
      for (int level = 1; level <= max; ++level) {
        simd::set_level(static_cast<simd::Level>(level));
        const double vec = simd::weighted_log_sum(es.data(), wt.data(), n, a, c);
        ASSERT_EQ(bits_of(vec), bits_of(scalar))
            << "n=" << n << " rep=" << rep << " level=" << level << " scalar=" << scalar
            << " vec=" << vec;
      }
    }
  }
}

// Full-stack equivalence: the localizer run at every dispatch level must
// produce the same component predictions and a log-likelihood within 1 ulp
// (in practice: the same bits — the tolerance is documentation, not slack)
// on randomized scenarios, including flows whose evidence exceeds the
// kernel's vectorizable range and take the engine's scalar extreme-row tail.
TEST(SimdKernel, LocalizerPredictionsAreIdenticalAtEveryLevel) {
  LevelGuard guard;
  const auto max = static_cast<int>(simd::max_supported_level());
  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  FlockOptions options;
  options.params.p_g = 1e-4;
  options.params.p_b = 6e-3;
  options.params.rho = 1e-3;
  const FlockLocalizer localizer(options);

  for (std::uint64_t seed : {601u, 602u, 603u, 604u}) {
    Rng rng(seed);
    GroundTruth truth = make_silent_link_drops(topo, 2, DropRateConfig{1e-4, 4e-3, 1e-2}, rng);
    TrafficConfig traffic;
    traffic.num_app_flows = 1000;
    Trace trace = simulate(topo, router, std::move(truth), traffic, ProbeConfig{}, rng);
    ViewOptions view;
    view.telemetry = kTelemetryA1 | kTelemetryA2 | kTelemetryP;
    InferenceInput input = make_view(topo, router, trace, view);
    // Graft in rows whose evidence s = log L(bad|path) is far beyond the
    // vectorized range (s ≈ 8000 ≫ 690): these must land in the engine's
    // per-group scalar tail in BOTH modes and keep everything finite.
    auto flows = input.expanded_flows();
    for (std::size_t i = 0; i < 5 && i < flows.size(); ++i) {
      FlowObservation hot = flows[i * (flows.size() / 5)];
      hot.packets_sent = 4000;
      hot.bad_packets = 2000;
      ASSERT_GT(bad_path_log_evidence(hot.bad_packets, hot.packets_sent, options.params.p_g,
                                      options.params.p_b),
                690.0);
      input.add(hot);
    }

    simd::set_level(simd::Level::kScalar);
    const LocalizationResult scalar = localizer.localize(input);
    ASSERT_TRUE(std::isfinite(scalar.log_likelihood)) << "seed " << seed;
    for (int level = 1; level <= max; ++level) {
      simd::set_level(static_cast<simd::Level>(level));
      const LocalizationResult vec = localizer.localize(input);
      EXPECT_EQ(vec.predicted, scalar.predicted)
          << "seed " << seed << " level " << level;
      EXPECT_LE(ulp_distance(vec.log_likelihood, scalar.log_likelihood), 1u)
          << "seed " << seed << " level " << level << " scalar=" << scalar.log_likelihood
          << " vec=" << vec.log_likelihood;
      EXPECT_EQ(vec.memo_hits, scalar.memo_hits) << "seed " << seed << " level " << level;
    }
  }
}

// The dense S(x) memo must actually be hit: a flip walk that revisits
// components re-reads table entries instead of rescanning columns, and the
// engine's LL stays in lockstep with an engine that never flipped (the memo
// is per-apply scratch, not cross-call state).
TEST(SimdKernel, MemoCountersSeeHitsAndMatchAcrossLevels) {
  LevelGuard guard;
  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  Rng rng(77);
  GroundTruth truth = make_silent_link_drops(topo, 1, DropRateConfig{1e-4, 4e-3, 1e-2}, rng);
  TrafficConfig traffic;
  traffic.num_app_flows = 600;
  Trace trace = simulate(topo, router, std::move(truth), traffic, ProbeConfig{}, rng);
  ViewOptions view;
  view.telemetry = kTelemetryA1 | kTelemetryA2 | kTelemetryP;
  const InferenceInput input = make_view(topo, router, trace, view);
  FlockParams params;
  params.p_g = 1e-4;
  params.p_b = 6e-3;
  params.rho = 1e-3;

  simd::set_level(simd::Level::kScalar);
  LikelihoodEngine engine(input, params, /*maintain_delta=*/true);
  for (int step = 0; step < 8; ++step) {
    engine.flip(static_cast<ComponentId>(
        rng.next_below(static_cast<std::uint64_t>(topo.num_components()))));
  }
  EXPECT_GT(engine.memo_lookups(), 0u);
  EXPECT_GT(engine.memo_hits(), 0u);
  EXPECT_LT(engine.memo_hits(), engine.memo_lookups());
}

}  // namespace
}  // namespace flock
