#include "topology/topology.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "topology/degrade.h"

namespace flock {
namespace {

TEST(Topology, FatTreeK4Dimensions) {
  // Canonical k=4 fat tree: 4 pods, 2+2 switches per pod, 4 cores, 2 hosts
  // per ToR.
  const Topology t = make_fat_tree(4);
  EXPECT_EQ(t.hosts().size(), 16u);
  EXPECT_EQ(t.switches().size(), 4u + 4 * 4u);  // cores + (2 agg + 2 tor) * 4 pods
  // Links: 16 host + 4 pods * (2 tor * 2 agg) + 4 pods * (2 agg * 2 core-links).
  EXPECT_EQ(t.num_links(), 16 + 16 + 16);
}

TEST(Topology, FatTreeRejectsOddK) {
  EXPECT_THROW(make_fat_tree(3), std::invalid_argument);
  EXPECT_THROW(make_fat_tree(0), std::invalid_argument);
}

TEST(Topology, ClosRejectsIndivisibleCores) {
  ThreeTierClosConfig cfg;
  cfg.aggs_per_pod = 3;
  cfg.cores = 4;
  EXPECT_THROW(make_three_tier_clos(cfg), std::invalid_argument);
}

TEST(Topology, HostsHaveSingleAccessLink) {
  const Topology t = make_fat_tree(4);
  for (NodeId h : t.hosts()) {
    EXPECT_EQ(t.adjacency(h).size(), 1u);
    const LinkId l = t.host_access_link(h);
    EXPECT_TRUE(t.is_host_link(l));
    EXPECT_TRUE(t.is_switch(t.tor_of(h)));
    EXPECT_EQ(t.node(t.tor_of(h)).kind, NodeKind::kTor);
  }
}

TEST(Topology, SwitchDegreesInFatTree) {
  const Topology t = make_fat_tree(4);
  for (NodeId sw : t.switches()) {
    const auto degree = t.adjacency(sw).size();
    switch (t.node(sw).kind) {
      case NodeKind::kCore:
        EXPECT_EQ(degree, 4u);  // one agg per pod
        break;
      case NodeKind::kAgg:
        EXPECT_EQ(degree, 2u + 2u);  // k/2 tors + k/2 cores
        break;
      case NodeKind::kTor:
        EXPECT_EQ(degree, 2u + 2u);  // k/2 aggs + k/2 hosts
        break;
      default:
        FAIL() << "unexpected switch kind";
    }
  }
}

TEST(Topology, ComponentSpaceLayout) {
  const Topology t = make_fat_tree(4);
  EXPECT_EQ(t.num_components(), t.num_links() + t.num_devices());
  // Links occupy the low ids.
  for (LinkId l = 0; l < t.num_links(); ++l) {
    EXPECT_TRUE(t.is_link_component(t.link_component(l)));
    EXPECT_EQ(t.component_link(t.link_component(l)), l);
  }
  // Devices round-trip through their component ids.
  for (NodeId sw : t.switches()) {
    const ComponentId c = t.device_component(sw);
    EXPECT_TRUE(t.is_device_component(c));
    EXPECT_EQ(t.device_node(c), sw);
  }
  // Hosts have no device component.
  EXPECT_THROW(t.device_component(t.hosts().front()), std::invalid_argument);
}

TEST(Topology, SwitchLinksExcludeHostLinks) {
  const Topology t = make_fat_tree(4);
  const auto sl = t.switch_links();
  EXPECT_EQ(static_cast<int>(sl.size()), t.num_links() - static_cast<int>(t.hosts().size()));
  for (LinkId l : sl) EXPECT_FALSE(t.is_host_link(l));
}

TEST(Topology, LeafSpineDimensions) {
  // The paper's testbed: 2 spines, 8 leaves, 6 hosts per leaf.
  LeafSpineConfig cfg;
  const Topology t = make_leaf_spine(cfg);
  EXPECT_EQ(t.hosts().size(), 48u);
  EXPECT_EQ(t.switches().size(), 10u);
  EXPECT_EQ(t.num_links(), 48 + 16);
}

TEST(Topology, WithoutLinksCompacts) {
  const Topology t = make_fat_tree(4);
  const auto sl = t.switch_links();
  const Topology t2 = t.without_links({sl[0], sl[3]});
  EXPECT_EQ(t2.num_links(), t.num_links() - 2);
  EXPECT_EQ(t2.num_nodes(), t.num_nodes());
  EXPECT_EQ(t2.hosts().size(), t.hosts().size());
}

TEST(Topology, SelfLoopRejected) {
  Topology t;
  const NodeId a = t.add_node(NodeKind::kTor);
  EXPECT_THROW(t.add_link(a, a), std::invalid_argument);
}

TEST(Topology, ComponentNamesAreDescriptive) {
  const Topology t = make_fat_tree(4);
  const std::string link_name = t.component_name(0);
  EXPECT_NE(link_name.find("link("), std::string::npos);
  const std::string dev_name = t.component_name(t.device_component(t.switches().front()));
  EXPECT_NE(dev_name.find("device("), std::string::npos);
}

TEST(Degrade, RemovesRequestedFractionWhenRedundant) {
  const Topology t = make_fat_tree(6);
  Rng rng(5);
  const auto removed = removable_links(t, 0.10, rng);
  const auto target = static_cast<std::size_t>(0.10 * t.switch_links().size() + 0.5);
  EXPECT_EQ(removed.size(), target);
}

TEST(Degrade, NeverDisconnectsSwitches) {
  Rng rng(5);
  const Topology t = make_fat_tree(4);
  for (double frac : {0.05, 0.15, 0.30}) {
    const Topology d = degrade_topology(t, frac, rng);
    // BFS over switch graph from first switch must reach all switches.
    std::set<NodeId> seen;
    std::vector<NodeId> stack{d.switches().front()};
    while (!stack.empty()) {
      NodeId u = stack.back();
      stack.pop_back();
      if (!seen.insert(u).second) continue;
      for (const auto& [peer, link] : d.adjacency(u)) {
        (void)link;
        if (d.is_switch(peer)) stack.push_back(peer);
      }
    }
    EXPECT_EQ(seen.size(), d.switches().size()) << "fraction " << frac;
  }
}

TEST(Degrade, ZeroFractionIsIdentity) {
  Rng rng(5);
  const Topology t = make_fat_tree(4);
  const Topology d = degrade_topology(t, 0.0, rng);
  EXPECT_EQ(d.num_links(), t.num_links());
}

}  // namespace
}  // namespace flock
