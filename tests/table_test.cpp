#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/strings.h"

namespace flock {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header underline present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(0.51234, 3), "0.512");
  EXPECT_EQ(Table::num(2.0, 1), "2.0");
  EXPECT_EQ(Table::integer(42), "42");
}

TEST(Strings, SplitJoinRoundTrip) {
  const std::string s = "a,b,,c";
  const auto parts = split(s, ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, ","), s);
}

TEST(Strings, SplitSingleToken) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, HumanCount) {
  EXPECT_EQ(human_count(950), "950");
  EXPECT_EQ(human_count(1500), "1.50K");
  EXPECT_EQ(human_count(3500000), "3.50M");
  EXPECT_EQ(human_count(2.5e9), "2.50G");
}

}  // namespace
}  // namespace flock
