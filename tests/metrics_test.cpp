// Tests for the App A.1 precision/recall definitions, including the device
// partial-credit rules.
#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "topology/topology.h"

namespace flock {
namespace {

struct Fixture {
  Topology topo = make_fat_tree(4);

  ComponentId link(std::size_t i) const { return topo.link_component(topo.switch_links()[i]); }
  ComponentId device(std::size_t i) const {
    return topo.device_component(topo.switches()[i]);
  }
};

GroundTruth link_truth(const std::vector<ComponentId>& links) {
  GroundTruth t;
  t.failed = links;
  return t;
}

TEST(Metrics, ExactMatchIsPerfect) {
  Fixture fx;
  const auto truth = link_truth({fx.link(0), fx.link(1)});
  const Accuracy acc = evaluate_accuracy(fx.topo, truth, {fx.link(0), fx.link(1)});
  EXPECT_DOUBLE_EQ(acc.precision, 1.0);
  EXPECT_DOUBLE_EQ(acc.recall, 1.0);
  EXPECT_DOUBLE_EQ(acc.fscore(), 1.0);
  EXPECT_DOUBLE_EQ(acc.error(), 0.0);
}

TEST(Metrics, EmptyPredictionHasPrecisionOne) {
  Fixture fx;
  const auto truth = link_truth({fx.link(0)});
  const Accuracy acc = evaluate_accuracy(fx.topo, truth, {});
  EXPECT_DOUBLE_EQ(acc.precision, 1.0);
  EXPECT_DOUBLE_EQ(acc.recall, 0.0);
}

TEST(Metrics, NoFailuresCleanPrediction) {
  Fixture fx;
  const GroundTruth truth;  // nothing failed
  const Accuracy silent = evaluate_accuracy(fx.topo, truth, {});
  EXPECT_DOUBLE_EQ(silent.precision, 1.0);
  EXPECT_DOUBLE_EQ(silent.recall, 1.0);
  const Accuracy noisy = evaluate_accuracy(fx.topo, truth, {fx.link(3)});
  EXPECT_DOUBLE_EQ(noisy.precision, 0.0);
  EXPECT_DOUBLE_EQ(noisy.recall, 1.0);
}

TEST(Metrics, FalsePositiveLowersPrecision) {
  Fixture fx;
  const auto truth = link_truth({fx.link(0)});
  const Accuracy acc = evaluate_accuracy(fx.topo, truth, {fx.link(0), fx.link(5)});
  EXPECT_DOUBLE_EQ(acc.precision, 0.5);
  EXPECT_DOUBLE_EQ(acc.recall, 1.0);
}

TEST(Metrics, FalseNegativeLowersRecall) {
  Fixture fx;
  const auto truth = link_truth({fx.link(0), fx.link(1), fx.link(2), fx.link(3)});
  const Accuracy acc = evaluate_accuracy(fx.topo, truth, {fx.link(0)});
  EXPECT_DOUBLE_EQ(acc.precision, 1.0);
  EXPECT_DOUBLE_EQ(acc.recall, 0.25);
}

TEST(Metrics, PredictedDeviceGivesFullRecallForDevice) {
  Fixture fx;
  const NodeId sw = fx.topo.switches()[2];
  const ComponentId dev = fx.topo.device_component(sw);
  GroundTruth truth;
  truth.failed = {dev};
  auto links = fx.topo.device_links(sw);
  truth.device_failed_links[dev] = {fx.topo.link_component(links[0]),
                                    fx.topo.link_component(links[1])};
  const Accuracy acc = evaluate_accuracy(fx.topo, truth, {dev});
  EXPECT_DOUBLE_EQ(acc.precision, 1.0);
  EXPECT_DOUBLE_EQ(acc.recall, 1.0);
}

TEST(Metrics, PredictedSubsetOfDeviceLinksGivesPartialRecall) {
  Fixture fx;
  const NodeId sw = fx.topo.switches()[2];
  const ComponentId dev = fx.topo.device_component(sw);
  GroundTruth truth;
  truth.failed = {dev};
  auto links = fx.topo.device_links(sw);
  ASSERT_GE(links.size(), 4u);
  truth.device_failed_links[dev] = {
      fx.topo.link_component(links[0]), fx.topo.link_component(links[1]),
      fx.topo.link_component(links[2]), fx.topo.link_component(links[3])};
  // Predict one of the four failed links: 25% recall; the link also counts
  // as a correct prediction (device credit).
  const Accuracy acc = evaluate_accuracy(fx.topo, truth, {fx.topo.link_component(links[0])});
  EXPECT_DOUBLE_EQ(acc.precision, 1.0);
  EXPECT_DOUBLE_EQ(acc.recall, 0.25);
}

TEST(Metrics, AnyLinkOfFailedDeviceCountsForPrecision) {
  Fixture fx;
  const NodeId sw = fx.topo.switches()[2];
  const ComponentId dev = fx.topo.device_component(sw);
  GroundTruth truth;
  truth.failed = {dev};
  auto links = fx.topo.device_links(sw);
  truth.device_failed_links[dev] = {fx.topo.link_component(links[0])};
  // Predicting a non-failed link of the same device is still "correct" for
  // precision (App A.1), though it earns no recall credit.
  const Accuracy acc = evaluate_accuracy(fx.topo, truth, {fx.topo.link_component(links[1])});
  EXPECT_DOUBLE_EQ(acc.precision, 1.0);
  EXPECT_DOUBLE_EQ(acc.recall, 0.0);
}

TEST(Metrics, MixedLinkAndDeviceTruth) {
  Fixture fx;
  const NodeId sw = fx.topo.switches()[3];
  const ComponentId dev = fx.topo.device_component(sw);
  // Pick a truth link that is NOT incident to the failed device, so the
  // device credit cannot bleed into the link prediction.
  ComponentId lone_link = kInvalidComponent;
  for (LinkId l : fx.topo.switch_links()) {
    const Link& lk = fx.topo.link(l);
    if (lk.a != sw && lk.b != sw) {
      lone_link = fx.topo.link_component(l);
      break;
    }
  }
  ASSERT_NE(lone_link, kInvalidComponent);
  GroundTruth truth;
  truth.failed = {lone_link, dev};
  auto links = fx.topo.device_links(sw);
  truth.device_failed_links[dev] = {fx.topo.link_component(links[0]),
                                    fx.topo.link_component(links[1])};
  // Predict the lone link and one of two failed device links.
  const Accuracy acc =
      evaluate_accuracy(fx.topo, truth, {lone_link, fx.topo.link_component(links[0])});
  EXPECT_DOUBLE_EQ(acc.precision, 1.0);
  EXPECT_DOUBLE_EQ(acc.recall, (1.0 + 0.5) / 2.0);
}

TEST(Metrics, MeanAccuracyAverages) {
  Accuracy a;
  a.precision = 1.0;
  a.recall = 0.5;
  Accuracy b;
  b.precision = 0.5;
  b.recall = 1.0;
  const Accuracy mean = mean_accuracy({a, b});
  EXPECT_DOUBLE_EQ(mean.precision, 0.75);
  EXPECT_DOUBLE_EQ(mean.recall, 0.75);
  EXPECT_DOUBLE_EQ(mean_accuracy({}).precision, 1.0);
}

TEST(Metrics, FscoreZeroWhenEitherZero) {
  Accuracy a;
  a.precision = 0.0;
  a.recall = 1.0;
  EXPECT_DOUBLE_EQ(a.fscore(), 0.0);
  EXPECT_DOUBLE_EQ(a.error(), 1.0);
}

}  // namespace
}  // namespace flock
