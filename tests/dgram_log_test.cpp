// Datagram capture/replay (src/net/dgram_log): file-format round-trips,
// rejection of foreign/truncated files, and the property the subsystem
// exists for — a captured stream, replayed, drives the pipeline to
// byte-identical per-epoch results.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "net/dgram_log.h"
#include "pipeline/pipeline.h"
#include "telemetry/agent.h"
#include "topology/topology.h"

namespace flock {
namespace {

LoggedDatagram make_logged(std::uint64_t ts, std::uint32_t addr, std::uint16_t port,
                           std::initializer_list<std::uint8_t> payload) {
  LoggedDatagram d;
  d.timestamp_ns = ts;
  d.source_addr = addr;
  d.source_port = port;
  d.payload = payload;
  return d;
}

// --- format round-trip --------------------------------------------------------

TEST(DgramLog, RoundTripPreservesEveryFieldIncludingTimestamps) {
  std::vector<LoggedDatagram> original = {
      make_logged(0, 0x0A000001, 4739, {0x00, 0x0A, 0xFF}),
      make_logged(123456789, 0x0A000002, 0, {}),  // empty payload is legal
      make_logged(0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFF, 0xFFFF, {0x42}),
  };
  // A large payload exercises the length field beyond one byte.
  LoggedDatagram big;
  big.timestamp_ns = 7;
  big.source_addr = 1;
  big.payload.assign(5000, 0xAB);
  original.push_back(big);

  std::stringstream ss;
  DgramLogWriter writer(ss);
  for (const auto& d : original) writer.append(d);
  EXPECT_EQ(writer.written(), original.size());

  DgramLogReader reader(ss);
  std::vector<LoggedDatagram> read_back;
  LoggedDatagram d;
  while (reader.next(d)) read_back.push_back(d);
  EXPECT_EQ(read_back, original);  // identity, timestamps included
}

TEST(DgramLog, EmptyLogIsValidAndEmpty) {
  std::stringstream ss;
  DgramLogWriter writer(ss);
  DgramLogReader reader(ss);
  LoggedDatagram d;
  EXPECT_FALSE(reader.next(d));
}

// --- rejection of foreign and damaged files -----------------------------------

TEST(DgramLog, RejectsBadMagic) {
  std::stringstream ss;
  ss.write("NOPE\x01\x00\x00\x00", 8);
  EXPECT_THROW(DgramLogReader reader(ss), std::runtime_error);
}

TEST(DgramLog, RejectsUnsupportedVersion) {
  std::stringstream ss;
  ss.write("FLKD\xFF\x00\x00\x00", 8);  // version 255
  EXPECT_THROW(DgramLogReader reader(ss), std::runtime_error);
}

TEST(DgramLog, RejectsTruncatedHeader) {
  std::stringstream ss;
  ss.write("FLK", 3);
  EXPECT_THROW(DgramLogReader reader(ss), std::runtime_error);
}

TEST(DgramLog, TruncationAtEveryMidRecordOffsetThrows) {
  std::stringstream ss;
  DgramLogWriter writer(ss);
  writer.append(make_logged(42, 0x0A000001, 9999, {1, 2, 3, 4, 5}));
  const std::string full = ss.str();
  // cut == 20 keeps just the v2 file header (magic + version + fingerprint)
  // — a legal empty log — so truncation starts one byte into the record. A
  // cut inside the header itself must throw at construction instead.
  const std::size_t header_bytes = 20;
  for (std::size_t cut = 4; cut < header_bytes; ++cut) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_THROW(DgramLogReader reader(truncated), std::runtime_error) << "cut=" << cut;
  }
  for (std::size_t cut = header_bytes + 1; cut < full.size(); ++cut) {
    std::stringstream truncated(full.substr(0, cut));
    DgramLogReader reader(truncated);
    LoggedDatagram d;
    EXPECT_THROW(reader.next(d), std::runtime_error) << "cut=" << cut;
  }
  // The untruncated log still reads cleanly: one record, then clean EOF.
  std::stringstream whole(full);
  DgramLogReader reader(whole);
  LoggedDatagram d;
  EXPECT_TRUE(reader.next(d));
  EXPECT_FALSE(reader.next(d));
}

TEST(DgramLog, CorruptPayloadLengthIsAnErrorNotAnAllocation) {
  std::stringstream ss;
  DgramLogWriter writer(ss);
  writer.append(make_logged(1, 2, 3, {9, 9, 9}));
  std::string bytes = ss.str();
  // Patch the little-endian u32 payload length (last 4 bytes before payload)
  // to an absurd value; the reader must refuse rather than trust it.
  const std::size_t len_offset = bytes.size() - 3 - 4;
  bytes[len_offset + 0] = static_cast<char>(0xFF);
  bytes[len_offset + 1] = static_cast<char>(0xFF);
  bytes[len_offset + 2] = static_cast<char>(0xFF);
  bytes[len_offset + 3] = static_cast<char>(0x7F);
  std::stringstream corrupt(bytes);
  DgramLogReader reader(corrupt);
  LoggedDatagram d;
  EXPECT_THROW(reader.next(d), std::runtime_error);
}

// --- router fingerprint -------------------------------------------------------

TEST(DgramLog, RouterFingerprintIsDeterministicAndOrderSensitive) {
  Topology topo = make_fat_tree(4);
  EcmpRouter a{topo};
  EcmpRouter b{topo};
  EXPECT_TRUE(router_fingerprint(a).empty());  // nothing interned yet

  const auto hosts = topo.hosts();
  ASSERT_GE(hosts.size(), 3u);
  a.host_pair_path_set(hosts[0], hosts[1]);
  a.host_pair_path_set(hosts[0], hosts[2]);
  b.host_pair_path_set(hosts[0], hosts[1]);
  b.host_pair_path_set(hosts[0], hosts[2]);
  const RouterFingerprint fa = router_fingerprint(a);
  const RouterFingerprint fb = router_fingerprint(b);
  EXPECT_FALSE(fa.empty());
  EXPECT_EQ(fa, fb);  // same warm-up order => same identity

  // Same pairs interned in the opposite order: the ids shift, so the
  // fingerprint must differ — records reference ids, not pairs.
  EcmpRouter c{topo};
  c.host_pair_path_set(hosts[0], hosts[2]);
  c.host_pair_path_set(hosts[0], hosts[1]);
  const RouterFingerprint fc = router_fingerprint(c);
  EXPECT_EQ(fc.path_sets, fa.path_sets);
  EXPECT_NE(fc.hash, fa.hash);
}

TEST(DgramLog, FingerprintRoundTripsThroughHeaderPatch) {
  // Capture flow: the writer opens with an empty fingerprint (the router is
  // still cold), records stream in, and the identity is patched into the
  // header afterwards — the reader must see the patched value and the record.
  RouterFingerprint fp;
  fp.path_sets = 7;
  fp.hash = 0xDEADBEEFCAFEF00Dull;

  std::stringstream ss;
  DgramLogWriter writer(ss);
  writer.append(make_logged(1, 2, 3, {4, 5}));
  writer.set_fingerprint(fp);
  writer.append(make_logged(6, 7, 8, {9}));

  DgramLogReader reader(ss);
  EXPECT_EQ(reader.version(), 2u);
  EXPECT_EQ(reader.fingerprint(), fp);
  LoggedDatagram d;
  EXPECT_TRUE(reader.next(d));
  EXPECT_EQ(d.payload, (std::vector<std::uint8_t>{4, 5}));
  EXPECT_TRUE(reader.next(d));
  EXPECT_EQ(d.payload, (std::vector<std::uint8_t>{9}));
  EXPECT_FALSE(reader.next(d));
}

TEST(DgramLog, Version1LogsStillReadableAndSkipFingerprintCheck) {
  // Hand-written v1 bytes: magic, version 1, then one record. Pre-fingerprint
  // logs must keep replaying — with no recorded identity there is nothing to
  // check against, even when the replayer expects one.
  std::stringstream ss;
  ss.write("FLKD", 4);
  const std::uint32_t version = 1;
  ss.write(reinterpret_cast<const char*>(&version), 4);
  const std::uint64_t ts = 11;
  const std::uint32_t addr = 22;
  const std::uint16_t port = 33;
  const std::uint32_t len = 2;
  ss.write(reinterpret_cast<const char*>(&ts), 8);
  ss.write(reinterpret_cast<const char*>(&addr), 4);
  ss.write(reinterpret_cast<const char*>(&port), 2);
  ss.write(reinterpret_cast<const char*>(&len), 4);
  ss.write("\x01\x02", 2);

  ReplayOptions options;
  options.expect_fingerprint.path_sets = 9;
  options.expect_fingerprint.hash = 9;
  std::vector<IngestDatagram> replayed;
  const ReplayStats stats = replay_dgram_log(
      ss,
      [&](IngestDatagram d) {
        replayed.push_back(std::move(d));
        return true;
      },
      options);
  EXPECT_EQ(stats.datagrams, 1u);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].source_addr, 22u);
  EXPECT_EQ(replayed[0].bytes, (std::vector<std::uint8_t>{1, 2}));
}

TEST(DgramLog, ReplayRejectsRouterFingerprintMismatchLoudly) {
  RouterFingerprint captured;
  captured.path_sets = 3;
  captured.hash = 1111;
  std::stringstream ss;
  DgramLogWriter writer(ss, captured);
  writer.append(make_logged(1, 2, 3, {4}));
  const std::string log = ss.str();

  // Matching identity replays; a different one is refused before any record
  // is offered downstream.
  {
    std::stringstream is(log);
    ReplayOptions options;
    options.expect_fingerprint = captured;
    const ReplayStats stats =
        replay_dgram_log(is, [](IngestDatagram) { return true; }, options);
    EXPECT_EQ(stats.datagrams, 1u);
  }
  {
    std::stringstream is(log);
    ReplayOptions options;
    options.expect_fingerprint.path_sets = 3;
    options.expect_fingerprint.hash = 2222;
    std::uint64_t offered = 0;
    EXPECT_THROW(replay_dgram_log(
                     is,
                     [&](IngestDatagram) {
                       ++offered;
                       return true;
                     },
                     options),
                 std::runtime_error);
    EXPECT_EQ(offered, 0u);
  }
}

TEST(DgramLog, MissingFileThrowsOnReplay) {
  EXPECT_THROW(
      replay_dgram_log("/nonexistent/dir/flock_no_such_log.bin",
                       [](IngestDatagram) { return true; }),
      std::runtime_error);
}

// --- replay mechanics ---------------------------------------------------------

TEST(DgramLog, ReplayOffersInCapturedOrderAndCountsVerdicts) {
  std::stringstream ss;
  std::vector<IngestDatagram> seen;
  CaptureTap tap(ss, [&](IngestDatagram d) {
    seen.push_back(d);
    return seen.size() % 2 == 1;  // accept odd offers, reject even ones
  });
  for (std::uint8_t i = 0; i < 6; ++i) {
    IngestDatagram d;
    d.source_addr = 100u + i;
    d.bytes = {i};
    // Rejected datagrams are still captured: the log mirrors what was
    // offered, and the bounded queue's verdict replays deterministically.
    tap.offer(std::move(d), static_cast<std::uint16_t>(7000 + i));
  }
  EXPECT_EQ(tap.captured(), 6u);

  std::vector<IngestDatagram> replayed;
  const ReplayStats stats = replay_dgram_log(ss, [&](IngestDatagram d) {
    replayed.push_back(std::move(d));
    return replayed.size() <= 2;
  });
  EXPECT_EQ(stats.datagrams, 6u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.rejected, 4u);
  ASSERT_EQ(replayed.size(), seen.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(replayed[i].source_addr, seen[i].source_addr) << i;
    EXPECT_EQ(replayed[i].bytes, seen[i].bytes) << i;
  }
}

TEST(DgramLog, PacedReplayHonorsCapturedGaps) {
  // Hand-write a log with a 60ms gap; paced replay at 2x must take >= ~30ms,
  // and unpaced replay must not wait at all.
  std::stringstream ss;
  DgramLogWriter writer(ss);
  writer.append(make_logged(0, 1, 0, {1}));
  writer.append(make_logged(60'000'000, 2, 0, {2}));
  const std::string log = ss.str();

  auto run = [&](ReplayOptions options) {
    std::stringstream is(log);
    const auto start = std::chrono::steady_clock::now();
    const ReplayStats stats =
        replay_dgram_log(is, [](IngestDatagram) { return true; }, options);
    EXPECT_EQ(stats.datagrams, 2u);
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  ReplayOptions paced;
  paced.paced = true;
  paced.speed = 2.0;
  EXPECT_GE(run(paced), 25);
  EXPECT_LT(run(ReplayOptions{}), 25);
}

TEST(DgramLog, PacedReplayRejectsNonPositiveOrNaNSpeed) {
  std::stringstream ss;
  DgramLogWriter writer(ss);
  writer.append(make_logged(0, 1, 0, {1}));
  const std::string log = ss.str();

  for (const double bad : {0.0, -1.0, std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity()}) {
    std::stringstream is(log);
    ReplayOptions options;
    options.paced = true;
    options.speed = bad;
    EXPECT_THROW(replay_dgram_log(is, [](IngestDatagram) { return true; }, options),
                 std::invalid_argument)
        << "speed=" << bad;
  }
  // Unpaced replay never consults speed, so a garbage value is harmless.
  std::stringstream is(log);
  ReplayOptions options;
  options.speed = 0.0;
  EXPECT_EQ(replay_dgram_log(is, [](IngestDatagram) { return true; }, options).datagrams, 1u);
}

// --- capture -> replay pipeline equivalence -----------------------------------

// The same simulated-trace fixture as pipeline_test: per-host agents export
// one round of IPFIX datagrams for a fat-tree(4) with one injected silent
// drop.
struct StreamFixture {
  Topology topo = make_fat_tree(4);
  EcmpRouter router{topo};
  std::vector<IngestDatagram> datagrams;

  explicit StreamFixture(std::uint64_t seed = 42) {
    Rng rng(seed);
    GroundTruth truth =
        make_silent_link_drops(topo, 1, DropRateConfig{1e-4, 5e-3, 1e-2}, rng);
    TrafficConfig traffic;
    traffic.num_app_flows = 600;
    ProbeConfig probe_config;
    Trace trace = simulate(topo, router, std::move(truth), traffic, probe_config, rng);

    std::unordered_map<NodeId, Agent> agents;
    for (NodeId h : topo.hosts()) {
      AgentConfig cfg;
      cfg.observation_domain = static_cast<std::uint32_t>(h);
      agents.emplace(h, Agent(topo, cfg));
    }
    for (const SimFlow& f : trace.flows) {
      SimFlow passive = f;
      if (f.kind == SimFlowKind::kApp) passive.taken_path = -1;
      agents.at(f.src_host).observe(passive);
    }
    for (NodeId h : topo.hosts()) {
      for (auto& msg : agents.at(h).flush(1000)) {
        datagrams.push_back({node_to_addr(h), std::move(msg)});
      }
    }
  }
};

FlockOptions test_flock_options() {
  FlockOptions options;
  options.params.p_g = 1e-4;
  options.params.p_b = 6e-3;
  options.params.rho = 1e-3;
  return options;
}

PipelineConfig equivalence_config() {
  PipelineConfig config;
  config.num_shards = 3;
  config.localizer = test_flock_options();
  config.epoch.record_limit = 200;  // several epochs over ~600+ records
  return config;
}

std::vector<EpochResult> sorted_epochs(StreamingPipeline& pipeline) {
  auto epochs = pipeline.results().completed();
  std::sort(epochs.begin(), epochs.end(),
            [](const EpochResult& a, const EpochResult& b) { return a.epoch < b.epoch; });
  return epochs;
}

// Capture a live run fed by three concurrent producer threads, then replay
// the log into a fresh pipeline: every epoch's results must be
// byte-identical. The tap serializes append+forward, so whatever arrival
// interleaving the threads produced IS the logged order, and the epoch cuts
// (a deterministic function of the sequence) land on the same datagrams.
TEST(DgramLog, CaptureThenReplayYieldsByteIdenticalEpochResults) {
  StreamFixture fx;
  std::stringstream log;

  std::vector<EpochResult> live_epochs;
  {
    StreamingPipeline pipeline(fx.topo, fx.router, equivalence_config());
    CaptureTap tap(log, [&](IngestDatagram d) { return pipeline.offer_wait(std::move(d)); });
    constexpr int kProducers = 3;
    std::vector<std::thread> producers;
    std::atomic<std::size_t> next{0};
    for (int t = 0; t < kProducers; ++t) {
      producers.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= fx.datagrams.size()) return;
          ASSERT_TRUE(tap.offer(fx.datagrams[i]));
        }
      });
    }
    for (auto& t : producers) t.join();
    pipeline.stop();
    EXPECT_EQ(tap.captured(), fx.datagrams.size());
    live_epochs = sorted_epochs(pipeline);
  }
  ASSERT_GE(live_epochs.size(), 2u);

  // Replay into a fresh pipeline sharing no state with the live run. The
  // records reference path-set ids interned while simulating the trace, so
  // the replay side needs equivalently-constructed routing state: a second
  // fixture from the same seed rebuilds topology + router deterministically
  // (the production analogue is replaying against the same routing config
  // the capture ran with).
  StreamFixture replay_fx;
  StreamingPipeline replayed(replay_fx.topo, replay_fx.router, equivalence_config());
  const ReplayStats stats = replay_dgram_log(
      log, [&](IngestDatagram d) { return replayed.offer_wait(std::move(d)); });
  replayed.stop();
  EXPECT_EQ(stats.datagrams, fx.datagrams.size());
  EXPECT_EQ(stats.rejected, 0u);

  const std::vector<EpochResult> replay_epochs = sorted_epochs(replayed);
  ASSERT_EQ(replay_epochs.size(), live_epochs.size());
  for (std::size_t i = 0; i < live_epochs.size(); ++i) {
    const EpochResult& a = live_epochs[i];
    const EpochResult& b = replay_epochs[i];
    EXPECT_EQ(a.epoch, b.epoch);
    EXPECT_EQ(a.predicted, b.predicted);
    EXPECT_EQ(a.flows, b.flows);
    EXPECT_EQ(a.rows, b.rows);
    EXPECT_EQ(a.unresolved, b.unresolved);
    EXPECT_EQ(a.hypotheses_scanned, b.hypotheses_scanned);
    // Bit-exact, not approximately equal: same datagrams, same order, same
    // floating-point operations in the same sequence.
    EXPECT_EQ(a.shard_score_sum, b.shard_score_sum);
    EXPECT_EQ(a.per_shard_predicted, b.per_shard_predicted);
  }
  // And the diagnosis is not vacuous — the injected failure was found.
  bool any_prediction = false;
  for (const auto& e : live_epochs) any_prediction |= !e.predicted.empty();
  EXPECT_TRUE(any_prediction);
}

// File-path convenience wrapper: capture to a real file, replay from it.
TEST(DgramLog, FileRoundTripThroughDisk) {
  const std::string path = "/tmp/flock_dgram_log_test.bin";
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(os.good());
    CaptureTap tap(os, [](IngestDatagram) { return true; });
    IngestDatagram d;
    d.source_addr = 77;
    d.bytes = {1, 2, 3};
    tap.offer(d, 1234);
  }
  std::vector<IngestDatagram> replayed;
  const ReplayStats stats = replay_dgram_log(path, [&](IngestDatagram d) {
    replayed.push_back(std::move(d));
    return true;
  });
  EXPECT_EQ(stats.datagrams, 1u);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].source_addr, 77u);
  EXPECT_EQ(replayed[0].bytes, (std::vector<std::uint8_t>{1, 2, 3}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace flock
