// Tests for the trace serialization format.
#include "eval/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "flowsim/scenario.h"

namespace flock {
namespace {

struct Fixture {
  Topology topo = make_fat_tree(4);
  EcmpRouter router{topo};
  Trace trace;

  explicit Fixture(std::uint64_t seed = 81, bool device_failure = false) {
    Rng rng(seed);
    GroundTruth truth = device_failure
                            ? make_device_failures(topo, 1, 0.5, DropRateConfig{}, rng)
                            : make_silent_link_drops(topo, 2, DropRateConfig{}, rng);
    TrafficConfig traffic;
    traffic.num_app_flows = 500;
    trace = simulate(topo, router, std::move(truth), traffic, ProbeConfig{}, rng);
  }
};

void expect_traces_equal(const Trace& a, const Trace& b) {
  EXPECT_EQ(a.truth.failed, b.truth.failed);
  EXPECT_EQ(a.truth.link_drop_rate, b.truth.link_drop_rate);
  EXPECT_EQ(a.truth.device_failed_links.size(), b.truth.device_failed_links.size());
  for (const auto& [dev, links] : a.truth.device_failed_links) {
    auto it = b.truth.device_failed_links.find(dev);
    ASSERT_NE(it, b.truth.device_failed_links.end());
    EXPECT_EQ(links, it->second);
  }
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].kind, b.flows[i].kind);
    EXPECT_EQ(a.flows[i].src_host, b.flows[i].src_host);
    EXPECT_EQ(a.flows[i].dst_host, b.flows[i].dst_host);
    EXPECT_EQ(a.flows[i].path_set, b.flows[i].path_set);
    EXPECT_EQ(a.flows[i].taken_path, b.flows[i].taken_path);
    EXPECT_EQ(a.flows[i].packets_sent, b.flows[i].packets_sent);
    EXPECT_EQ(a.flows[i].dropped, b.flows[i].dropped);
    EXPECT_FLOAT_EQ(a.flows[i].rtt_ms, b.flows[i].rtt_ms);
  }
}

TEST(TraceIo, RoundTrip) {
  Fixture fx;
  std::stringstream buffer;
  write_trace(buffer, fx.trace, fx.topo, fx.router);
  const Trace loaded = read_trace(buffer, fx.topo, fx.router);
  expect_traces_equal(fx.trace, loaded);
}

TEST(TraceIo, RoundTripDeviceFailure) {
  Fixture fx(82, /*device_failure=*/true);
  std::stringstream buffer;
  write_trace(buffer, fx.trace, fx.topo, fx.router);
  const Trace loaded = read_trace(buffer, fx.topo, fx.router);
  expect_traces_equal(fx.trace, loaded);
}

TEST(TraceIo, RejectsBadMagic) {
  Fixture fx;
  std::stringstream buffer;
  buffer << "NOPE garbage";
  EXPECT_THROW(read_trace(buffer, fx.topo, fx.router), std::runtime_error);
}

TEST(TraceIo, RejectsTruncation) {
  Fixture fx;
  std::stringstream buffer;
  write_trace(buffer, fx.trace, fx.topo, fx.router);
  std::string data = buffer.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW(read_trace(truncated, fx.topo, fx.router), std::runtime_error);
}

TEST(TraceIo, RejectsTopologyMismatch) {
  Fixture fx;
  std::stringstream buffer;
  write_trace(buffer, fx.trace, fx.topo, fx.router);
  Topology other = make_fat_tree(6);
  EcmpRouter other_router(other);
  EXPECT_THROW(read_trace(buffer, other, other_router), std::runtime_error);
}

TEST(TraceIo, RejectsRouterWithMissingPathSets) {
  Fixture fx;
  std::stringstream buffer;
  write_trace(buffer, fx.trace, fx.topo, fx.router);
  EcmpRouter fresh(fx.topo);  // no path sets materialized yet
  EXPECT_THROW(read_trace(buffer, fx.topo, fresh), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  Fixture fx;
  const std::string path = "/tmp/flock_trace_io_test.bin";
  save_trace(path, fx.trace, fx.topo, fx.router);
  const Trace loaded = load_trace(path, fx.topo, fx.router);
  expect_traces_equal(fx.trace, loaded);
  EXPECT_THROW(load_trace("/nonexistent/path.bin", fx.topo, fx.router), std::runtime_error);
}

}  // namespace
}  // namespace flock
