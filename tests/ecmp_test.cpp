#include "topology/ecmp.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "topology/degrade.h"
#include "topology/topology.h"

namespace flock {
namespace {

TEST(Ecmp, SameSwitchPathSetIsJustTheDevice) {
  const Topology t = make_fat_tree(4);
  EcmpRouter router(t);
  const NodeId tor = t.tor_of(t.hosts().front());
  const PathSetId ps = router.path_set_between(tor, tor);
  ASSERT_EQ(router.path_set(ps).paths.size(), 1u);
  const Path& p = router.path(router.path_set(ps).paths.front());
  ASSERT_EQ(p.comps.size(), 1u);
  EXPECT_EQ(p.comps.front(), t.device_component(tor));
}

TEST(Ecmp, IntraPodPathCount) {
  // Two ToRs in the same fat-tree pod: one path per aggregation switch.
  const Topology t = make_fat_tree(4);
  EcmpRouter router(t);
  std::vector<NodeId> tors;
  for (NodeId sw : t.switches()) {
    if (t.node(sw).kind == NodeKind::kTor && t.node(sw).pod == 0) tors.push_back(sw);
  }
  ASSERT_EQ(tors.size(), 2u);
  const PathSetId ps = router.path_set_between(tors[0], tors[1]);
  EXPECT_EQ(router.path_set(ps).paths.size(), 2u);  // k/2 aggs
  for (PathId pid : router.path_set(ps).paths) {
    // tor - agg - tor: 2 links + 3 devices.
    EXPECT_EQ(router.path(pid).comps.size(), 5u);
  }
}

TEST(Ecmp, InterPodPathCount) {
  // ToRs in different pods: (k/2)^2 paths of 4 links + 5 devices.
  const Topology t = make_fat_tree(4);
  EcmpRouter router(t);
  NodeId tor_a = kInvalidNode, tor_b = kInvalidNode;
  for (NodeId sw : t.switches()) {
    if (t.node(sw).kind != NodeKind::kTor) continue;
    if (t.node(sw).pod == 0 && tor_a == kInvalidNode) tor_a = sw;
    if (t.node(sw).pod == 1 && tor_b == kInvalidNode) tor_b = sw;
  }
  const PathSetId ps = router.path_set_between(tor_a, tor_b);
  EXPECT_EQ(router.path_set(ps).paths.size(), 4u);
  for (PathId pid : router.path_set(ps).paths) {
    EXPECT_EQ(router.path(pid).comps.size(), 9u);
  }
}

TEST(Ecmp, PathsStartAndEndAtEndpointDevices) {
  const Topology t = make_fat_tree(4);
  EcmpRouter router(t);
  const NodeId a = t.tor_of(t.hosts().front());
  const NodeId b = t.tor_of(t.hosts().back());
  const PathSetId ps = router.path_set_between(a, b);
  for (PathId pid : router.path_set(ps).paths) {
    const auto& comps = router.path(pid).comps;
    EXPECT_EQ(comps.front(), t.device_component(a));
    EXPECT_EQ(comps.back(), t.device_component(b));
    // Components alternate device, link, device, ...
    for (std::size_t i = 0; i < comps.size(); ++i) {
      if (i % 2 == 0) {
        EXPECT_TRUE(t.is_device_component(comps[i]));
      } else {
        EXPECT_TRUE(t.is_link_component(comps[i]));
      }
    }
  }
}

TEST(Ecmp, PathsAreDistinct) {
  const Topology t = make_fat_tree(6);
  EcmpRouter router(t);
  const NodeId a = t.tor_of(t.hosts().front());
  const NodeId b = t.tor_of(t.hosts().back());
  const PathSetId ps = router.path_set_between(a, b);
  std::set<std::vector<ComponentId>> unique;
  for (PathId pid : router.path_set(ps).paths) unique.insert(router.path(pid).comps);
  EXPECT_EQ(unique.size(), router.path_set(ps).paths.size());
  EXPECT_EQ(unique.size(), 9u);  // (k/2)^2
}

TEST(Ecmp, PathSetCaching) {
  const Topology t = make_fat_tree(4);
  EcmpRouter router(t);
  const NodeId a = t.tor_of(t.hosts().front());
  const NodeId b = t.tor_of(t.hosts().back());
  EXPECT_EQ(router.path_set_between(a, b), router.path_set_between(a, b));
  EXPECT_NE(router.path_set_between(a, b), router.path_set_between(b, a));
}

TEST(Ecmp, HostPairPathSetUsesToRs) {
  const Topology t = make_fat_tree(4);
  EcmpRouter router(t);
  const NodeId h1 = t.hosts().front();
  const NodeId h2 = t.hosts().back();
  const PathSetId ps = router.host_pair_path_set(h1, h2);
  EXPECT_EQ(router.path_set(ps).src_sw, t.tor_of(h1));
  EXPECT_EQ(router.path_set(ps).dst_sw, t.tor_of(h2));
}

TEST(Ecmp, SwitchDistance) {
  const Topology t = make_fat_tree(4);
  EcmpRouter router(t);
  const NodeId a = t.tor_of(t.hosts().front());
  const NodeId b = t.tor_of(t.hosts().back());
  EXPECT_EQ(router.switch_distance(a, a), 0);
  EXPECT_EQ(router.switch_distance(a, b), 4);  // tor-agg-core-agg-tor
}

TEST(Ecmp, LeafSpinePaths) {
  LeafSpineConfig cfg;
  cfg.spines = 2;
  cfg.leaves = 8;
  cfg.hosts_per_leaf = 6;
  const Topology t = make_leaf_spine(cfg);
  EcmpRouter router(t);
  const NodeId h1 = t.hosts().front();
  const NodeId h2 = t.hosts().back();
  const PathSetId ps = router.host_pair_path_set(h1, h2);
  EXPECT_EQ(router.path_set(ps).paths.size(), 2u);  // one per spine
}

TEST(Ecmp, DegradedTopologyStillRoutes) {
  Rng rng(3);
  const Topology full = make_fat_tree(4);
  const Topology t = degrade_topology(full, 0.2, rng);
  EcmpRouter router(t);
  router.build_all_tor_pairs();  // must not throw: degradation keeps connectivity
  EXPECT_GT(router.num_path_sets(), 0);
}

TEST(Ecmp, ShortestPathsOnlyNoValleyRouting) {
  // In a fat tree, inter-pod paths must go up to a core: length exactly 4
  // links; no path may revisit a device.
  const Topology t = make_fat_tree(4);
  EcmpRouter router(t);
  router.build_all_tor_pairs();
  for (PathSetId ps = 0; ps < router.num_path_sets(); ++ps) {
    for (PathId pid : router.path_set(ps).paths) {
      const auto& comps = router.path(pid).comps;
      std::set<ComponentId> devices;
      for (ComponentId c : comps) {
        if (t.is_device_component(c)) {
          EXPECT_TRUE(devices.insert(c).second);
        }
      }
    }
  }
}

TEST(EquivalenceClasses, SymmetricFatTreeGroupsUplinks) {
  const Topology t = make_fat_tree(4);
  EcmpRouter router(t);
  const auto classes = ecmp_equivalence_classes(router);
  // Every switch-switch link and every device is in exactly one class.
  std::set<ComponentId> covered;
  for (const auto& cls : classes) {
    EXPECT_FALSE(cls.empty());
    for (ComponentId c : cls) EXPECT_TRUE(covered.insert(c).second);
  }
  const auto switch_links = t.switch_links();
  for (LinkId l : switch_links) EXPECT_TRUE(covered.count(t.link_component(l))) << l;
  // In a symmetric fat tree, some class must have more than one member
  // (e.g. the two tor->agg uplinks of a ToR appear in the same path sets
  // with count 1 each... they differ per destination; but the agg->core
  // links of one agg do collapse). At minimum, not everything is singleton.
  bool has_nontrivial = false;
  for (const auto& cls : classes) has_nontrivial |= cls.size() > 1;
  EXPECT_TRUE(has_nontrivial);
}

TEST(EquivalenceClasses, TheoreticalMaxPrecision) {
  const Topology t = make_fat_tree(4);
  EcmpRouter router(t);
  const auto classes = ecmp_equivalence_classes(router);
  // Empty truth: trivially perfect.
  EXPECT_DOUBLE_EQ(theoretical_max_precision(classes, {}), 1.0);
  // Singleton class: precision 1. Find one.
  for (const auto& cls : classes) {
    if (cls.size() == 1) {
      EXPECT_DOUBLE_EQ(theoretical_max_precision(classes, {cls[0]}), 1.0);
      break;
    }
  }
  // A member of a class of size m: precision 1/m.
  for (const auto& cls : classes) {
    if (cls.size() > 1) {
      EXPECT_NEAR(theoretical_max_precision(classes, {cls[0]}),
                  1.0 / static_cast<double>(cls.size()), 1e-12);
      break;
    }
  }
}

}  // namespace
}  // namespace flock
