// The intra-epoch determinism contract (common/parallel_for.h): thread
// count is a pure performance lever. FlockLocalizer predictions AND
// log-likelihoods must be byte-identical at localize_threads in
// {1, 2, hardware} on randomized flowsim sweeps, with and without JLE —
// which also pins that localize_threads = 1 output equals the historical
// serial path (the t = 1 run IS that path: no runner is ever built).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/flock_localizer.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "flowsim/views.h"
#include "topology/topology.h"

namespace flock {
namespace {

struct SweepEnv {
  Topology topo;
  EcmpRouter router;
  Trace trace;

  SweepEnv(std::uint64_t seed, int failures) : topo(make_fat_tree(4)), router(topo) {
    Rng rng(seed);
    GroundTruth truth = make_silent_link_drops_fixed(topo, failures, 8e-3, DropRateConfig{}, rng);
    TrafficConfig traffic;
    traffic.num_app_flows = 12000;
    ProbeConfig probes;
    probes.enabled = false;
    trace = simulate(topo, router, std::move(truth), traffic, probes, rng);
  }

  InferenceInput passive_view() {
    ViewOptions v;
    v.telemetry = kTelemetryP;
    return make_view(topo, router, trace, v);
  }
};

FlockOptions base_options(bool use_jle) {
  FlockOptions opt;
  opt.params.p_g = 1e-4;
  opt.params.p_b = 6e-3;
  opt.params.rho = 1e-4;
  opt.use_jle = use_jle;
  return opt;
}

std::vector<std::int32_t> thread_counts() {
  std::vector<std::int32_t> counts = {1, 2};
  const auto hw = static_cast<std::int32_t>(std::thread::hardware_concurrency());
  if (hw > 2) counts.push_back(hw);
  return counts;
}

void expect_invariant_across_threads(bool use_jle) {
  for (std::uint64_t seed : {51, 52, 53}) {
    for (int failures : {1, 2}) {
      SweepEnv env(seed, failures);
      const auto input = env.passive_view();
      LocalizationResult reference;
      bool have_reference = false;
      for (std::int32_t t : thread_counts()) {
        auto opt = base_options(use_jle);
        opt.localize_threads = t;
        const auto result = FlockLocalizer(opt).localize(input);
        if (!have_reference) {
          reference = result;
          have_reference = true;
          continue;
        }
        // Byte identity, not tolerance: the component list is equal and the
        // log-likelihood matches to the last bit.
        EXPECT_EQ(result.predicted, reference.predicted)
            << "seed " << seed << " failures " << failures << " threads " << t;
        EXPECT_EQ(std::memcmp(&result.log_likelihood, &reference.log_likelihood, sizeof(double)),
                  0)
            << "seed " << seed << " failures " << failures << " threads " << t << ": "
            << result.log_likelihood << " vs " << reference.log_likelihood;
        // The search trajectory itself is identical, so the scan accounting
        // and memo accounting agree too.
        EXPECT_EQ(result.hypotheses_scanned, reference.hypotheses_scanned);
        EXPECT_EQ(result.memo_hits, reference.memo_hits);
      }
    }
  }
}

TEST(LocalizeThreads, NoJleResultsAreByteIdenticalAcrossThreadCounts) {
  expect_invariant_across_threads(/*use_jle=*/false);
}

TEST(LocalizeThreads, JleResultsAreByteIdenticalAcrossThreadCounts) {
  expect_invariant_across_threads(/*use_jle=*/true);
}

TEST(LocalizeThreads, ParallelCountersAttributePerCall) {
  // At t = 1 no runner exists, so the counters must be zero; at t > 1 they
  // may be positive (engagement depends on input size), but steals can never
  // exceed chunks and chunks only count this call's work.
  SweepEnv env(54, 1);
  const auto input = env.passive_view();
  auto serial_opt = base_options(/*use_jle=*/false);
  serial_opt.localize_threads = 1;
  const auto serial = FlockLocalizer(serial_opt).localize(input);
  EXPECT_EQ(serial.parallel_chunks, 0u);
  EXPECT_EQ(serial.parallel_steals, 0u);
  EXPECT_EQ(serial.parallel_ns, 0u);

  auto team_opt = base_options(/*use_jle=*/false);
  team_opt.localize_threads = 2;
  FlockLocalizer team(team_opt);
  const auto first = team.localize(input);
  EXPECT_LE(first.parallel_steals, first.parallel_chunks);
  // The runner is cached per thread; a second call must report only its own
  // delta, not the cumulative runner totals.
  const auto second = team.localize(input);
  EXPECT_EQ(second.parallel_chunks, first.parallel_chunks);

  // The memo keeps one allocation across applies: a non-trivial search
  // reuses it (identically at any thread count).
  EXPECT_EQ(first.memo_table_reuses, serial.memo_table_reuses);
}

}  // namespace
}  // namespace flock
