// End-to-end inference tests: Flock's greedy search (±JLE), Gibbs, Sherlock,
// and the optimality property §4.2 argues for — greedy matching the exact
// bounded-K MLE on small instances.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/sherlock.h"
#include "common/rng.h"
#include "core/flock_localizer.h"
#include "core/gibbs.h"
#include "core/likelihood_engine.h"
#include "eval/metrics.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "flowsim/views.h"
#include "topology/topology.h"

namespace flock {
namespace {

FlockParams test_params() {
  FlockParams p;
  p.p_g = 3e-4;
  p.p_b = 2e-2;
  p.rho = 1e-3;
  return p;
}

struct Env {
  Topology topo;
  EcmpRouter router;
  Trace trace;

  Env(std::uint64_t seed, std::int32_t failures, std::int64_t flows = 2000,
      double bad_min = 2e-3, double bad_max = 1e-2, std::int32_t fat_tree_k = 4)
      : topo(make_fat_tree(fat_tree_k)), router(topo) {
    Rng rng(seed);
    DropRateConfig rates;
    rates.bad_min = bad_min;
    rates.bad_max = bad_max;
    GroundTruth truth = make_silent_link_drops(topo, failures, rates, rng);
    TrafficConfig traffic;
    traffic.num_app_flows = flows;
    ProbeConfig probes;
    probes.packets_per_probe = 100;
    trace = simulate(topo, router, std::move(truth), traffic, probes, rng);
  }

  InferenceInput view(std::uint32_t telemetry) {
    ViewOptions v;
    v.telemetry = telemetry;
    return make_view(topo, router, trace, v);
  }
};

TEST(FlockGreedy, FindsSingleFailureWithInt) {
  Env env(101, 1);
  FlockOptions opt;
  opt.params = test_params();
  FlockLocalizer flock(opt);
  const auto result = flock.localize(env.view(kTelemetryInt));
  EXPECT_EQ(result.predicted, env.trace.truth.failed);
}

TEST(FlockGreedy, FindsMultipleFailuresWithInt) {
  // Failed links drop well above the evidence break-even rate mu (~0.5% for
  // these hyper-parameters); below mu single-link recall is not expected
  // (that regime is the Fig 3 SNR sweep). A k=6 fat tree keeps independent
  // link failures from colocating on one switch, where the MLE would
  // legitimately shift blame to the device (a small-topology artifact).
  for (std::uint64_t seed : {102, 103, 104}) {
    Env env(seed, 3, /*flows=*/4000, /*bad_min=*/6e-3, /*bad_max=*/1e-2, /*fat_tree_k=*/6);
    FlockOptions opt;
    opt.params = test_params();
    FlockLocalizer flock(opt);
    const auto result = flock.localize(env.view(kTelemetryInt));
    const Accuracy acc = evaluate_accuracy(env.topo, env.trace.truth, result.predicted);
    EXPECT_GE(acc.fscore(), 0.6) << "seed " << seed;
  }
}

TEST(FlockGreedy, JleAndNoJleProduceIdenticalHypotheses) {
  // §3.3: "greedy+JLE produces the exact same solutions as greedy."
  for (std::uint64_t seed : {105, 106}) {
    Env env(seed, 2);
    FlockOptions with_jle;
    with_jle.params = test_params();
    FlockOptions without_jle = with_jle;
    without_jle.use_jle = false;
    const auto input = env.view(kTelemetryA1 | kTelemetryA2 | kTelemetryP);
    const auto a = FlockLocalizer(with_jle).localize(input);
    const auto b = FlockLocalizer(without_jle).localize(input);
    EXPECT_EQ(a.predicted, b.predicted) << "seed " << seed;
    EXPECT_NEAR(a.log_likelihood, b.log_likelihood, 1e-6);
  }
}

TEST(FlockGreedy, EmptyOnHealthyNetwork) {
  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  Rng rng(107);
  GroundTruth truth = make_healthy(topo, DropRateConfig{}, rng);
  TrafficConfig traffic;
  traffic.num_app_flows = 2000;
  Trace trace = simulate(topo, router, std::move(truth), traffic, ProbeConfig{}, rng);
  ViewOptions v;
  v.telemetry = kTelemetryInt;
  FlockOptions opt;
  opt.params = test_params();
  const auto result = FlockLocalizer(opt).localize(make_view(topo, router, trace, v));
  EXPECT_TRUE(result.predicted.empty());
}

TEST(FlockGreedy, PassiveOnlyStillFindsEvidence) {
  // With P only, Flock should blame something overlapping the truth's
  // equivalence class; recall is not guaranteed but the hypothesis must not
  // be wildly wrong (precision vs. the class handled in Fig 5c bench).
  Env env(108, 1, /*flows=*/8000, /*bad_min=*/8e-3, /*bad_max=*/1e-2);
  FlockOptions opt;
  opt.params = test_params();
  const auto result = FlockLocalizer(opt).localize(env.view(kTelemetryP));
  EXPECT_FALSE(result.predicted.empty());
}

TEST(FlockGreedy, GreedyMatchesExhaustiveMleSmall) {
  // §4.2 / §6.1: greedy finds the same MLE as exhaustive search with K<=2 on
  // small instances.
  for (std::uint64_t seed : {109, 110, 111}) {
    Env env(seed, 2, /*flows=*/1200);
    const auto input = env.view(kTelemetryInt);
    FlockOptions fopt;
    fopt.params = test_params();
    const auto greedy = FlockLocalizer(fopt).localize(input);
    SherlockOptions sopt;
    sopt.params = test_params();
    sopt.max_failures = 2;
    sopt.use_jle = true;
    const auto exact = SherlockLocalizer(sopt).localize(input);
    if (greedy.predicted.size() <= 2) {
      EXPECT_EQ(greedy.predicted, exact.predicted) << "seed " << seed;
      EXPECT_NEAR(greedy.log_likelihood, exact.log_likelihood, 1e-6);
    }
  }
}

TEST(Sherlock, JleAndPlainAgree) {
  Env env(112, 1, /*flows=*/600);
  const auto input = env.view(kTelemetryA2);
  SherlockOptions plain;
  plain.params = test_params();
  plain.max_failures = 2;
  SherlockOptions jle = plain;
  jle.use_jle = true;
  const auto a = SherlockLocalizer(plain).localize(input);
  const auto b = SherlockLocalizer(jle).localize(input);
  EXPECT_EQ(a.predicted, b.predicted);
  EXPECT_NEAR(a.log_likelihood, b.log_likelihood, 1e-6);
}

TEST(Sherlock, NodeBudgetStopsSearch) {
  Env env(113, 1, /*flows=*/600);
  SherlockOptions opt;
  opt.params = test_params();
  opt.max_failures = 2;
  opt.node_budget = 50;
  const auto result = SherlockLocalizer(opt).localize_detailed(env.view(kTelemetryA2));
  EXPECT_FALSE(result.completed);
  EXPECT_LE(result.nodes_visited, 51);
}

TEST(Sherlock, CannotDetectMoreThanKFailures) {
  // Structural limitation the paper stresses: K=1 search cannot return two
  // failures.
  Env env(114, 2);
  SherlockOptions opt;
  opt.params = test_params();
  opt.max_failures = 1;
  const auto result = SherlockLocalizer(opt).localize(env.view(kTelemetryInt));
  EXPECT_LE(result.predicted.size(), 1u);
}

TEST(Gibbs, FindsSingleFailure) {
  Env env(115, 1, /*flows=*/2000, /*bad_min=*/5e-3);
  GibbsOptions opt;
  opt.params = test_params();
  opt.sweeps = 30;
  opt.burn_in = 10;
  const auto result = GibbsLocalizer(opt).localize(env.view(kTelemetryInt));
  EXPECT_EQ(result.predicted, env.trace.truth.failed);
}

TEST(Gibbs, AgreesWithGreedyOnClearSignal) {
  Env env(116, 2, /*flows=*/3000, /*bad_min=*/5e-3);
  const auto input = env.view(kTelemetryInt);
  FlockOptions fopt;
  fopt.params = test_params();
  const auto greedy = FlockLocalizer(fopt).localize(input);
  GibbsOptions gopt;
  gopt.params = test_params();
  const auto gibbs = GibbsLocalizer(gopt).localize(input);
  EXPECT_EQ(greedy.predicted, gibbs.predicted);
}

TEST(FlockGreedy, HypothesisSizeCapRespected) {
  Env env(117, 4);
  FlockOptions opt;
  opt.params = test_params();
  opt.max_hypothesis_size = 2;
  const auto result = FlockLocalizer(opt).localize(env.view(kTelemetryInt));
  EXPECT_LE(result.predicted.size(), 2u);
}

TEST(FlockGreedy, ReportsScanStatsAndRuntime) {
  Env env(118, 1);
  FlockOptions opt;
  opt.params = test_params();
  const auto result = FlockLocalizer(opt).localize(env.view(kTelemetryInt));
  EXPECT_GT(result.hypotheses_scanned, 0);
  EXPECT_GE(result.seconds, 0.0);
}

TEST(FlockGreedy, DeviceFailureBlamedAsDevice) {
  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  Rng rng(119);
  GroundTruth truth = make_device_failures(topo, 1, 1.0, DropRateConfig{5e-5, 5e-3, 1e-2}, rng);
  TrafficConfig traffic;
  traffic.num_app_flows = 4000;
  ProbeConfig probes;
  Trace trace = simulate(topo, router, std::move(truth), traffic, probes, rng);
  ViewOptions v;
  v.telemetry = kTelemetryInt;
  FlockOptions opt;
  opt.params = test_params();
  const auto result = FlockLocalizer(opt).localize(make_view(topo, router, trace, v));
  const Accuracy acc = evaluate_accuracy(topo, trace.truth, result.predicted);
  EXPECT_GE(acc.recall, 0.5);
  EXPECT_GE(acc.precision, 0.5);
}

}  // namespace
}  // namespace flock
