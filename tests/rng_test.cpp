#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace flock {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowBounds) {
  Rng rng(7);
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(n), n);
  }
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) counts[static_cast<std::size_t>(rng.next_below(10))]++;
  for (int c : counts) {
    EXPECT_GT(c, trials / 10 - trials / 50);
    EXPECT_LT(c, trials / 10 + trials / 50);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, BinomialEdgeCases) {
  Rng rng(3);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.binomial(100, 1.0), 100u);
}

TEST(Rng, BinomialMeanSmallN) {
  Rng rng(17);
  const std::uint64_t n = 50;
  const double p = 0.1;
  double total = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) total += static_cast<double>(rng.binomial(n, p));
  const double mean = total / trials;
  EXPECT_NEAR(mean, static_cast<double>(n) * p, 0.1);
}

TEST(Rng, BinomialMeanLargeN) {
  Rng rng(19);
  const std::uint64_t n = 100000;
  const double p = 0.01;
  double total = 0;
  const int trials = 3000;
  for (int i = 0; i < trials; ++i) total += static_cast<double>(rng.binomial(n, p));
  const double mean = total / trials;
  EXPECT_NEAR(mean / (static_cast<double>(n) * p), 1.0, 0.02);
}

TEST(Rng, BinomialTinyRate) {
  // The geometric-skip path: mean must still match n*p.
  Rng rng(23);
  const std::uint64_t n = 10000;
  const double p = 1e-4;
  double total = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) total += static_cast<double>(rng.binomial(n, p));
  EXPECT_NEAR(total / trials, static_cast<double>(n) * p, 0.05);
}

TEST(Rng, BinomialNeverExceedsN) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(rng.binomial(37, 0.9), 37u);
    EXPECT_LE(rng.binomial(100000, 0.999), 100000u);
  }
}

TEST(Rng, ParetoMean) {
  Rng rng(31);
  const double alpha = 2.5;
  const double x_m = 10.0;
  double total = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) total += rng.pareto(x_m, alpha);
  const double expected = x_m * alpha / (alpha - 1.0);
  EXPECT_NEAR(total / trials / expected, 1.0, 0.05);
}

TEST(Rng, ParetoMinimum) {
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(5.0, 1.05), 5.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(41);
  const double lambda = 0.25;
  double total = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) total += rng.exponential(lambda);
  EXPECT_NEAR(total / trials * lambda, 1.0, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(43);
  double sum = 0, sumsq = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.02);
  EXPECT_NEAR(sumsq / trials, 1.0, 0.03);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(47);
  for (int k = 0; k <= 20; ++k) {
    auto sample = rng.sample_without_replacement(20, k);
    std::set<std::int64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(static_cast<int>(unique.size()), k);
    for (auto v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 20);
    }
  }
}

TEST(Rng, SampleWithoutReplacementSparse) {
  Rng rng(53);
  auto sample = rng.sample_without_replacement(1000000, 5);
  std::set<std::int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(59);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(61);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(71);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.next_u64() == child.next_u64()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace flock
