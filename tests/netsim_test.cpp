// Tests for the queue-level simulator (the NS3 / hardware-testbed stand-in).
#include "netsim/queue_sim.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "topology/topology.h"

namespace flock {
namespace {

Topology testbed() { return make_leaf_spine(LeafSpineConfig{}); }

QueueSimConfig small_config() {
  QueueSimConfig cfg;
  cfg.duration_ms = 400.0;
  cfg.num_app_flows = 1200;  // ~80% leaf-uplink utilization
  return cfg;
}

TEST(QueueSim, HealthyRunHasFewDropsAndLowRtt) {
  Topology topo = testbed();
  EcmpRouter router(topo);
  Rng rng(1);
  const Trace trace = run_queue_sim(topo, router, small_config(), QueueSimFailures{}, rng);
  EXPECT_TRUE(trace.truth.failed.empty());
  std::uint64_t sent = 0, dropped = 0;
  for (const SimFlow& f : trace.flows) {
    sent += f.packets_sent;
    dropped += f.dropped;
  }
  ASSERT_GT(sent, 0u);
  EXPECT_LT(static_cast<double>(dropped) / static_cast<double>(sent), 1e-3);
}

TEST(QueueSim, MisconfiguredQueueDropsUnderLoad) {
  Topology topo = testbed();
  EcmpRouter router(topo);
  Rng rng(2);
  QueueSimFailures failures;
  QueueMisconfig m;
  m.link = topo.switch_links().front();
  m.drop_prob = 0.01;
  m.wred_threshold = 0;
  failures.misconfigs.push_back(m);
  const Trace trace = run_queue_sim(topo, router, small_config(), failures, rng);
  ASSERT_EQ(trace.truth.failed.size(), 1u);
  EXPECT_EQ(trace.truth.failed.front(), topo.link_component(m.link));

  // Flows crossing the misconfigured link must drop noticeably more than the
  // rest.
  std::uint64_t bad_sent = 0, bad_dropped = 0, ok_sent = 0, ok_dropped = 0;
  for (const SimFlow& f : trace.flows) {
    const PathSet& set = router.path_set(f.path_set);
    const Path& p = router.path(set.paths[static_cast<std::size_t>(f.taken_path)]);
    const bool crosses = std::find(p.comps.begin(), p.comps.end(),
                                   topo.link_component(m.link)) != p.comps.end();
    if (crosses) {
      bad_sent += f.packets_sent;
      bad_dropped += f.dropped;
    } else {
      ok_sent += f.packets_sent;
      ok_dropped += f.dropped;
    }
  }
  ASSERT_GT(bad_sent, 0u);
  const double bad_rate = static_cast<double>(bad_dropped) / static_cast<double>(bad_sent);
  const double ok_rate =
      ok_sent ? static_cast<double>(ok_dropped) / static_cast<double>(ok_sent) : 0.0;
  // 1% drops gated on queue occupancy: the effective rate is 1% times the
  // busy fraction — well above background, well below the configured 1%.
  EXPECT_GT(bad_rate, 5e-4);
  EXPECT_LT(bad_rate, 1.5e-2);
  EXPECT_LT(ok_rate, bad_rate / 3);  // clearly separable
}

TEST(QueueSim, LinkFlapRaisesLatencyNotDrops) {
  Topology topo = testbed();
  EcmpRouter router(topo);
  Rng rng(3);
  QueueSimFailures failures;
  LinkFlap flap;
  flap.link = topo.switch_links().front();
  flap.start_ms = 50.0;
  flap.duration_ms = 50.0;
  failures.flaps.push_back(flap);
  const Trace trace = run_queue_sim(topo, router, small_config(), failures, rng);

  double max_rtt_crossing = 0.0, max_rtt_other = 0.0;
  std::uint64_t crossing_drops = 0, crossing_sent = 0;
  for (const SimFlow& f : trace.flows) {
    const PathSet& set = router.path_set(f.path_set);
    const Path& p = router.path(set.paths[static_cast<std::size_t>(f.taken_path)]);
    const bool crosses = std::find(p.comps.begin(), p.comps.end(),
                                   topo.link_component(flap.link)) != p.comps.end();
    if (crosses) {
      max_rtt_crossing = std::max(max_rtt_crossing, static_cast<double>(f.rtt_ms));
      crossing_drops += f.dropped;
      crossing_sent += f.packets_sent;
    } else {
      max_rtt_other = std::max(max_rtt_other, static_cast<double>(f.rtt_ms));
    }
  }
  // Flap buffers packets: latency spike, no significant extra drops (§6.4).
  EXPECT_GT(max_rtt_crossing, 10.0);
  ASSERT_GT(crossing_sent, 0u);
  EXPECT_LT(static_cast<double>(crossing_drops) / static_cast<double>(crossing_sent), 2e-3);
  (void)max_rtt_other;
}

TEST(QueueSim, AccountingIsConsistent) {
  Topology topo = testbed();
  EcmpRouter router(topo);
  Rng rng(4);
  const Trace trace = run_queue_sim(topo, router, small_config(), QueueSimFailures{}, rng);
  for (const SimFlow& f : trace.flows) {
    EXPECT_LE(f.dropped, f.packets_sent);
    EXPECT_GE(f.rtt_ms, 0.0f);
    ASSERT_GE(f.taken_path, 0);
    ASSERT_LT(static_cast<std::size_t>(f.taken_path),
              router.path_set(f.path_set).paths.size());
  }
}

TEST(QueueSim, RequiresHosts) {
  Topology topo;  // empty
  topo.add_node(NodeKind::kSpine);
  EcmpRouter router(topo);
  Rng rng(5);
  EXPECT_THROW(run_queue_sim(topo, router, small_config(), QueueSimFailures{}, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace flock
