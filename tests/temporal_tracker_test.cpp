// Tests for the cross-epoch temporal layer (src/pipeline/temporal_tracker):
// the component state machines and their hysteresis, flap detection over the
// sliding window, detection-latency accounting, out-of-order epoch delivery,
// and the evidence-carryover prior (export clamping plus its effect on the
// localizer: a recently blamed component re-confirms on less fresh evidence,
// but never on none).
#include "pipeline/temporal_tracker.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/flock_localizer.h"
#include "core/inference_input.h"
#include "topology/ecmp.h"
#include "topology/topology.h"

namespace flock {
namespace {

EpochResult make_epoch(std::uint64_t id, std::vector<ComponentId> blamed) {
  EpochResult e;
  e.epoch = id;
  e.predicted = std::move(blamed);
  return e;
}

TemporalTrackerConfig test_config() {
  TemporalTrackerConfig cfg;
  cfg.window = 8;
  cfg.confirm_epochs = 2;
  cfg.clear_epochs = 2;
  cfg.flap_transitions = 3;
  return cfg;
}

// --- state machine ------------------------------------------------------------

TEST(TemporalTracker, ConfirmsAfterBlameStreakAndRecordsDetectionLatency) {
  TemporalTracker tracker(test_config());
  tracker.observe(make_epoch(0, {}));
  EXPECT_EQ(tracker.verdict(7).state, ComponentHealth::kHealthy);

  tracker.observe(make_epoch(1, {7}));
  EXPECT_EQ(tracker.verdict(7).state, ComponentHealth::kSuspect);
  EXPECT_EQ(tracker.verdict(7).first_blamed_epoch, 1u);

  tracker.observe(make_epoch(2, {7}));
  const ComponentVerdict v = tracker.verdict(7);
  EXPECT_EQ(v.state, ComponentHealth::kConfirmed);
  EXPECT_EQ(v.blame_streak, 2);
  EXPECT_EQ(v.confirmed_epoch, 2u);
  EXPECT_EQ(v.epochs_to_confirm, 1u);  // first blamed at 1, confirmed at 2
  EXPECT_EQ(tracker.stats().confirmations, 1u);
}

TEST(TemporalTracker, ClearsOnlyAfterQuietStreakHysteresis) {
  TemporalTracker tracker(test_config());
  tracker.observe(make_epoch(0, {3}));
  tracker.observe(make_epoch(1, {3}));
  ASSERT_EQ(tracker.verdict(3).state, ComponentHealth::kConfirmed);

  // One quiet epoch is not enough to clear (clear_epochs = 2)...
  tracker.observe(make_epoch(2, {}));
  EXPECT_EQ(tracker.verdict(3).state, ComponentHealth::kConfirmed);
  EXPECT_EQ(tracker.verdict(3).quiet_streak, 1);
  // ...the second one is.
  tracker.observe(make_epoch(3, {}));
  EXPECT_EQ(tracker.verdict(3).state, ComponentHealth::kCleared);
  EXPECT_EQ(tracker.stats().clears, 1u);

  // Once the whole window is quiet the component is forgotten entirely.
  for (std::uint64_t e = 4; e < 16; ++e) tracker.observe(make_epoch(e, {}));
  EXPECT_EQ(tracker.verdict(3).state, ComponentHealth::kHealthy);
  EXPECT_TRUE(tracker.verdicts().empty());
  EXPECT_EQ(tracker.stats().tracked_components, 0u);
}

TEST(TemporalTracker, UnconfirmedSuspicionExpiresWithoutCountingAClear) {
  TemporalTracker tracker(test_config());
  tracker.observe(make_epoch(0, {5}));  // one blamed epoch: suspect only
  tracker.observe(make_epoch(1, {}));
  tracker.observe(make_epoch(2, {}));
  EXPECT_EQ(tracker.verdict(5).state, ComponentHealth::kHealthy);
  EXPECT_EQ(tracker.stats().clears, 0u);
  EXPECT_EQ(tracker.stats().confirmations, 0u);
}

// --- flap detection -----------------------------------------------------------

TEST(TemporalTracker, AlternatingBlameIsPromotedToFlappingNotClearChurn) {
  TemporalTracker tracker(test_config());
  // Blame every other epoch: 1,0,1,0,1... With flap_transitions = 3 the
  // component must end up (and stay) flapping instead of cycling through
  // suspect/cleared forever.
  for (std::uint64_t e = 0; e < 12; ++e) {
    tracker.observe(make_epoch(e, e % 2 == 0 ? std::vector<ComponentId>{9}
                                             : std::vector<ComponentId>{}));
  }
  const ComponentVerdict v = tracker.verdict(9);
  EXPECT_EQ(v.state, ComponentHealth::kFlapping);
  EXPECT_GE(v.transitions_in_window, 3);
  EXPECT_NEAR(v.duty_cycle, 0.5, 0.13);
  EXPECT_EQ(tracker.stats().flaps_detected, 1u);  // entered flapping once, stayed

  // The flap settles into a persistent fault: flapping -> confirmed.
  for (std::uint64_t e = 12; e < 22; ++e) tracker.observe(make_epoch(e, {9}));
  EXPECT_EQ(tracker.verdict(9).state, ComponentHealth::kConfirmed);

  // And a settled quiet window eventually clears it.
  for (std::uint64_t e = 22; e < 32; ++e) tracker.observe(make_epoch(e, {}));
  EXPECT_EQ(tracker.verdict(9).state, ComponentHealth::kHealthy);
}

TEST(TemporalTracker, ReBlameAfterClearCountsAFalseClear) {
  TemporalTrackerConfig cfg = test_config();
  cfg.flap_transitions = 100;  // effectively disable the flap overlay
  TemporalTracker tracker(cfg);
  std::uint64_t e = 0;
  for (int cycle = 0; cycle < 3; ++cycle) {
    tracker.observe(make_epoch(e++, {4}));
    tracker.observe(make_epoch(e++, {4}));  // confirmed
    tracker.observe(make_epoch(e++, {}));
    tracker.observe(make_epoch(e++, {}));   // cleared
  }
  tracker.observe(make_epoch(e++, {4}));    // and blamed again
  const auto stats = tracker.stats();
  EXPECT_EQ(stats.clears, 3u);
  // Every post-clear re-blame within the window is a clear that did not hold.
  EXPECT_EQ(stats.false_clears, 2u + 1u);  // after cycles 1 and 2, plus the tail
  EXPECT_EQ(tracker.verdict(4).false_clears, 3u);
}

// --- out-of-order delivery ----------------------------------------------------

TEST(TemporalTracker, OutOfOrderEpochsAreBufferedAndAppliedInOrder) {
  TemporalTracker in_order(test_config());
  TemporalTracker shuffled(test_config());

  const std::vector<std::vector<ComponentId>> blame = {
      {}, {2}, {2}, {}, {2}, {}, {2, 6}, {6}};
  for (std::uint64_t e = 0; e < blame.size(); ++e) {
    in_order.observe(make_epoch(e, blame[static_cast<std::size_t>(e)]));
  }
  for (const std::uint64_t e : {1u, 0u, 3u, 2u, 6u, 5u, 4u, 7u}) {
    shuffled.observe(make_epoch(e, blame[static_cast<std::size_t>(e)]));
  }

  EXPECT_GT(shuffled.stats().out_of_order_epochs, 0u);
  EXPECT_EQ(shuffled.stats().epochs_observed, in_order.stats().epochs_observed);
  for (const ComponentId c : {2, 6}) {
    const ComponentVerdict a = in_order.verdict(c);
    const ComponentVerdict b = shuffled.verdict(c);
    EXPECT_EQ(a.state, b.state) << "component " << c;
    EXPECT_EQ(a.blame_streak, b.blame_streak);
    EXPECT_EQ(a.duty_cycle, b.duty_cycle);
    EXPECT_EQ(a.confirmations, b.confirmations);
  }
  // Duplicate / stale delivery is ignored.
  shuffled.observe(make_epoch(3, {2}));
  EXPECT_EQ(shuffled.stats().epochs_observed, blame.size());
}

// --- prior export -------------------------------------------------------------

TEST(TemporalTracker, PriorExportIsZeroAtWeightZeroAndScaledByState) {
  TemporalTrackerConfig cfg = test_config();
  cfg.prior_saturation = 6.0;
  TemporalTracker off(cfg);          // prior_weight = 0 (default)
  cfg.prior_weight = 0.5;
  TemporalTracker on(cfg);

  for (TemporalTracker* t : {&off, &on}) {
    t->observe(make_epoch(0, {1}));
    t->observe(make_epoch(1, {1, 2}));  // 1 confirms; 2 suspect
  }
  const auto zeros = off.prior_logodds(8);
  for (const double v : zeros) EXPECT_EQ(v, 0.0);

  const auto prior = on.prior_logodds(8);
  ASSERT_EQ(prior.size(), 8u);
  EXPECT_EQ(prior[1], 0.5 * 6.0);  // confirmed: full saturation
  EXPECT_GT(prior[2], 0.0);        // suspect: duty-scaled
  EXPECT_LT(prior[2], prior[1]);
  EXPECT_EQ(prior[0], 0.0);        // never blamed
}

// --- evidence carryover at the localizer --------------------------------------

// One weak known-path flow: the evidence s for every on-path component sits
// between the boosted and the plain prior cost, so the fault is found only
// with carryover — and a boost can never conjure a fault out of no evidence.
TEST(TemporalTracker, CarryoverPriorLowersEvidenceNeededButNeverToZero) {
  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  const NodeId src = topo.hosts().front();
  const NodeId dst = topo.hosts().back();

  FlockOptions options;
  options.params.p_g = 1e-4;
  options.params.p_b = 6e-3;
  options.params.rho = 1e-3;  // prior cost ~ -6.9 per link

  InferenceInput weak(topo, router);
  FlowObservation obs;
  obs.src_link = topo.link_component(topo.host_access_link(src));
  obs.dst_link = topo.link_component(topo.host_access_link(dst));
  obs.path_set = router.host_pair_path_set(src, dst);
  obs.taken_path = 0;
  obs.packets_sent = 100;
  obs.bad_packets = 1;  // s = log(60) - 99*log(0.9999/0.994) ~ 3.5, below 6.9
  weak.add(obs);

  const FlockLocalizer localizer(options);
  EXPECT_TRUE(localizer.localize(weak).predicted.empty());  // not enough evidence

  // Boost one on-path *link*, as if the tracker had it confirmed (devices
  // carry a 5x-scaled prior that this weak flow could never overcome).
  const Path& taken = router.path(router.path_set(obs.path_set).paths[0]);
  ComponentId boosted = kInvalidComponent;
  for (const ComponentId c : taken.comps) {
    if (topo.is_link_component(c)) {
      boosted = c;
      break;
    }
  }
  ASSERT_NE(boosted, kInvalidComponent);
  std::vector<double> prior(static_cast<std::size_t>(topo.num_components()), 0.0);
  prior[static_cast<std::size_t>(boosted)] = 6.0;
  const LocalizationResult carried = localizer.localize(weak, prior);
  EXPECT_EQ(carried.predicted, std::vector<ComponentId>{boosted});

  // No evidence at all: even an absurd boost must not flip the prior's sign.
  InferenceInput clean(topo, router);
  obs.bad_packets = 0;
  clean.add(obs);
  prior[static_cast<std::size_t>(boosted)] = 1e6;
  EXPECT_TRUE(localizer.localize(clean, prior).predicted.empty());
}

}  // namespace
}  // namespace flock
