// Tests for the cross-epoch temporal layer (src/pipeline/temporal_tracker):
// the component state machines and their hysteresis, flap detection over the
// sliding window, detection-latency accounting, out-of-order epoch delivery,
// and the evidence-carryover prior (export clamping plus its effect on the
// localizer: a recently blamed component re-confirms on less fresh evidence,
// but never on none).
#include "pipeline/temporal_tracker.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/flock_localizer.h"
#include "core/inference_input.h"
#include "topology/ecmp.h"
#include "topology/topology.h"

namespace flock {
namespace {

EpochResult make_epoch(std::uint64_t id, std::vector<ComponentId> blamed) {
  EpochResult e;
  e.epoch = id;
  e.predicted = std::move(blamed);
  return e;
}

TemporalTrackerConfig test_config() {
  TemporalTrackerConfig cfg;
  cfg.window = 8;
  cfg.confirm_epochs = 2;
  cfg.clear_epochs = 2;
  cfg.flap_transitions = 3;
  return cfg;
}

// --- state machine ------------------------------------------------------------

TEST(TemporalTracker, ConfirmsAfterBlameStreakAndRecordsDetectionLatency) {
  TemporalTracker tracker(test_config());
  tracker.observe(make_epoch(0, {}));
  EXPECT_EQ(tracker.verdict(7).state, ComponentHealth::kHealthy);

  tracker.observe(make_epoch(1, {7}));
  EXPECT_EQ(tracker.verdict(7).state, ComponentHealth::kSuspect);
  EXPECT_EQ(tracker.verdict(7).first_blamed_epoch, 1u);

  tracker.observe(make_epoch(2, {7}));
  const ComponentVerdict v = tracker.verdict(7);
  EXPECT_EQ(v.state, ComponentHealth::kConfirmed);
  EXPECT_EQ(v.blame_streak, 2);
  EXPECT_EQ(v.confirmed_epoch, 2u);
  EXPECT_EQ(v.epochs_to_confirm, 1u);  // first blamed at 1, confirmed at 2
  EXPECT_EQ(tracker.stats().confirmations, 1u);
}

TEST(TemporalTracker, ClearsOnlyAfterQuietStreakHysteresis) {
  TemporalTracker tracker(test_config());
  tracker.observe(make_epoch(0, {3}));
  tracker.observe(make_epoch(1, {3}));
  ASSERT_EQ(tracker.verdict(3).state, ComponentHealth::kConfirmed);

  // One quiet epoch is not enough to clear (clear_epochs = 2)...
  tracker.observe(make_epoch(2, {}));
  EXPECT_EQ(tracker.verdict(3).state, ComponentHealth::kConfirmed);
  EXPECT_EQ(tracker.verdict(3).quiet_streak, 1);
  // ...the second one is.
  tracker.observe(make_epoch(3, {}));
  EXPECT_EQ(tracker.verdict(3).state, ComponentHealth::kCleared);
  EXPECT_EQ(tracker.stats().clears, 1u);

  // Once the whole window is quiet the component is forgotten entirely.
  for (std::uint64_t e = 4; e < 16; ++e) tracker.observe(make_epoch(e, {}));
  EXPECT_EQ(tracker.verdict(3).state, ComponentHealth::kHealthy);
  EXPECT_TRUE(tracker.verdicts().empty());
  EXPECT_EQ(tracker.stats().tracked_components, 0u);
}

TEST(TemporalTracker, UnconfirmedSuspicionExpiresWithoutCountingAClear) {
  TemporalTracker tracker(test_config());
  tracker.observe(make_epoch(0, {5}));  // one blamed epoch: suspect only
  tracker.observe(make_epoch(1, {}));
  tracker.observe(make_epoch(2, {}));
  EXPECT_EQ(tracker.verdict(5).state, ComponentHealth::kHealthy);
  EXPECT_EQ(tracker.stats().clears, 0u);
  EXPECT_EQ(tracker.stats().confirmations, 0u);
}

// --- flap detection -----------------------------------------------------------

TEST(TemporalTracker, AlternatingBlameIsPromotedToFlappingNotClearChurn) {
  TemporalTracker tracker(test_config());
  // Blame every other epoch: 1,0,1,0,1... With flap_transitions = 3 the
  // component must end up (and stay) flapping instead of cycling through
  // suspect/cleared forever.
  for (std::uint64_t e = 0; e < 12; ++e) {
    tracker.observe(make_epoch(e, e % 2 == 0 ? std::vector<ComponentId>{9}
                                             : std::vector<ComponentId>{}));
  }
  const ComponentVerdict v = tracker.verdict(9);
  EXPECT_EQ(v.state, ComponentHealth::kFlapping);
  EXPECT_GE(v.transitions_in_window, 3);
  EXPECT_NEAR(v.duty_cycle, 0.5, 0.13);
  EXPECT_EQ(tracker.stats().flaps_detected, 1u);  // entered flapping once, stayed

  // The flap settles into a persistent fault: flapping -> confirmed.
  for (std::uint64_t e = 12; e < 22; ++e) tracker.observe(make_epoch(e, {9}));
  EXPECT_EQ(tracker.verdict(9).state, ComponentHealth::kConfirmed);

  // And a settled quiet window eventually clears it.
  for (std::uint64_t e = 22; e < 32; ++e) tracker.observe(make_epoch(e, {}));
  EXPECT_EQ(tracker.verdict(9).state, ComponentHealth::kHealthy);
}

TEST(TemporalTracker, ReBlameAfterClearCountsAFalseClear) {
  TemporalTrackerConfig cfg = test_config();
  cfg.flap_transitions = 100;  // effectively disable the flap overlay
  TemporalTracker tracker(cfg);
  std::uint64_t e = 0;
  for (int cycle = 0; cycle < 3; ++cycle) {
    tracker.observe(make_epoch(e++, {4}));
    tracker.observe(make_epoch(e++, {4}));  // confirmed
    tracker.observe(make_epoch(e++, {}));
    tracker.observe(make_epoch(e++, {}));   // cleared
  }
  tracker.observe(make_epoch(e++, {4}));    // and blamed again
  const auto stats = tracker.stats();
  EXPECT_EQ(stats.clears, 3u);
  // Every post-clear re-blame within the window is a clear that did not hold.
  EXPECT_EQ(stats.false_clears, 2u + 1u);  // after cycles 1 and 2, plus the tail
  EXPECT_EQ(tracker.verdict(4).false_clears, 3u);
}

// --- out-of-order delivery ----------------------------------------------------

TEST(TemporalTracker, OutOfOrderEpochsAreBufferedAndAppliedInOrder) {
  TemporalTracker in_order(test_config());
  TemporalTracker shuffled(test_config());

  const std::vector<std::vector<ComponentId>> blame = {
      {}, {2}, {2}, {}, {2}, {}, {2, 6}, {6}};
  for (std::uint64_t e = 0; e < blame.size(); ++e) {
    in_order.observe(make_epoch(e, blame[static_cast<std::size_t>(e)]));
  }
  for (const std::uint64_t e : {1u, 0u, 3u, 2u, 6u, 5u, 4u, 7u}) {
    shuffled.observe(make_epoch(e, blame[static_cast<std::size_t>(e)]));
  }

  EXPECT_GT(shuffled.stats().out_of_order_epochs, 0u);
  EXPECT_EQ(shuffled.stats().epochs_observed, in_order.stats().epochs_observed);
  for (const ComponentId c : {2, 6}) {
    const ComponentVerdict a = in_order.verdict(c);
    const ComponentVerdict b = shuffled.verdict(c);
    EXPECT_EQ(a.state, b.state) << "component " << c;
    EXPECT_EQ(a.blame_streak, b.blame_streak);
    EXPECT_EQ(a.duty_cycle, b.duty_cycle);
    EXPECT_EQ(a.confirmations, b.confirmations);
  }
  // Duplicate / stale delivery is ignored.
  shuffled.observe(make_epoch(3, {2}));
  EXPECT_EQ(shuffled.stats().epochs_observed, blame.size());
}

// --- prior export -------------------------------------------------------------

TEST(TemporalTracker, PriorExportIsZeroAtWeightZeroAndScaledByState) {
  TemporalTrackerConfig cfg = test_config();
  cfg.prior_saturation = 6.0;
  TemporalTracker off(cfg);          // prior_weight = 0 (default)
  cfg.prior_weight = 0.5;
  TemporalTracker on(cfg);

  for (TemporalTracker* t : {&off, &on}) {
    t->observe(make_epoch(0, {1}));
    t->observe(make_epoch(1, {1, 2}));  // 1 confirms; 2 suspect
  }
  const auto zeros = off.prior_logodds(8);
  for (const double v : zeros) EXPECT_EQ(v, 0.0);

  const auto prior = on.prior_logodds(8);
  ASSERT_EQ(prior.size(), 8u);
  EXPECT_EQ(prior[1], 0.5 * 6.0);  // confirmed: full saturation
  EXPECT_GT(prior[2], 0.0);        // suspect: duty-scaled
  EXPECT_LT(prior[2], prior[1]);
  EXPECT_EQ(prior[0], 0.0);        // never blamed
}

// --- age decay ----------------------------------------------------------------

// The stale-carryover bug this knob fixes: a sticky `flapping` (or confirmed)
// verdict used to export full prior_saturation forever, no matter how long
// ago the component was last blamed. With a half-life set, a component quiet
// for window/2 epochs must carry strictly less prior than one blamed in the
// most recent epoch; with the default (0 = off) the export is unchanged.
TEST(TemporalTracker, AgeDecayShrinksStalePriorsAndDefaultsToOff) {
  TemporalTrackerConfig cfg = test_config();  // window 8
  cfg.prior_weight = 1.0;
  cfg.prior_saturation = 6.0;
  TemporalTrackerConfig decayed_cfg = cfg;
  decayed_cfg.age_half_life_epochs = 4.0;  // window/2

  TemporalTracker plain(cfg);
  TemporalTracker decayed(decayed_cfg);
  for (TemporalTracker* t : {&plain, &decayed}) {
    // Component 1 flaps over epochs 0..7 (blamed on odd epochs, so it is
    // promoted to flapping and last blamed at epoch 7), then goes quiet for
    // 4 epochs. Component 2 is blamed in the two most recent epochs and
    // confirms with zero age.
    for (std::uint64_t e = 0; e < 8; ++e) {
      t->observe(make_epoch(e, e % 2 == 1 ? std::vector<ComponentId>{1}
                                          : std::vector<ComponentId>{}));
    }
    t->observe(make_epoch(8, {}));
    t->observe(make_epoch(9, {}));
    t->observe(make_epoch(10, {2}));
    t->observe(make_epoch(11, {2}));
    ASSERT_EQ(t->verdict(1).state, ComponentHealth::kFlapping);
    ASSERT_EQ(t->verdict(2).state, ComponentHealth::kConfirmed);
  }

  // Decay off (the default): the stale flap still exports full saturation,
  // indistinguishable from the freshly blamed fault — byte-identical to the
  // pre-knob behavior.
  const auto before = plain.prior_logodds(4);
  EXPECT_EQ(before[1], 6.0);
  EXPECT_EQ(before[2], 6.0);

  // Decay on: 4 quiet epochs = one half-life, so exactly half the prior;
  // the component blamed last epoch is untouched.
  const auto after = decayed.prior_logodds(4);
  EXPECT_DOUBLE_EQ(after[1], 3.0);  // 6.0 * 2^(-4/4)
  EXPECT_EQ(after[2], 6.0);
  EXPECT_LT(after[1], after[2]);
}

// --- equivalence-class keying -------------------------------------------------

// The representative the ResultSink picks for an ambiguity class can change
// from epoch to epoch (it keeps the smallest *predicted* member). Keyed per
// component, that fragmented one fault's blame history across members and
// reset the streaks; keyed by class, the streak is continuous no matter which
// member each epoch named.
TEST(TemporalTracker, ClassKeyedStateSurvivesRepresentativeChanges) {
  TemporalTrackerConfig cfg = test_config();
  cfg.prior_weight = 1.0;
  cfg.prior_saturation = 6.0;
  TemporalTracker tracker(cfg);
  tracker.set_equivalence_classes({{9, 5, 13}, {7}});  // canonical: min member = 5

  tracker.observe(make_epoch(0, {9}));
  tracker.observe(make_epoch(1, {13}));  // different member, same class
  const ComponentVerdict v = tracker.verdict(13);
  EXPECT_EQ(v.component, 5);  // canonicalized
  EXPECT_EQ(v.state, ComponentHealth::kConfirmed);
  EXPECT_EQ(v.blame_streak, 2);
  EXPECT_EQ(v.class_size, 3);
  EXPECT_EQ(tracker.stats().tracked_components, 1u);  // one class, not two members
  EXPECT_EQ(tracker.verdict(9).state, ComponentHealth::kConfirmed);
  EXPECT_EQ(tracker.verdict(5).state, ComponentHealth::kConfirmed);

  // The carryover prior reaches every member, so the localizer boosts the
  // whole ambiguity class regardless of which member the sink reports next.
  const auto prior = tracker.prior_logodds(16);
  EXPECT_EQ(prior[5], 6.0);
  EXPECT_EQ(prior[9], 6.0);
  EXPECT_EQ(prior[13], 6.0);
  EXPECT_EQ(prior[7], 0.0);  // single-member class: identity mapping
  EXPECT_EQ(prior[0], 0.0);
}

TEST(TemporalTracker, TwoClassMembersBlamedInOneEpochCountOnce) {
  TemporalTracker tracker(test_config());
  tracker.set_equivalence_classes({{9, 5, 13}});
  tracker.observe(make_epoch(0, {9, 13}));  // one ambiguity, not two faults
  EXPECT_EQ(tracker.verdict(5).blame_streak, 1);
  EXPECT_EQ(tracker.verdict(5).state, ComponentHealth::kSuspect);
}

TEST(TemporalTracker, ClassesMustBeSetBeforeObservation) {
  TemporalTracker tracker(test_config());
  tracker.observe(make_epoch(0, {1}));
  // Re-keying live state would orphan the existing per-component rows.
  EXPECT_THROW(tracker.set_equivalence_classes({{1, 2}}), std::logic_error);
}

// --- bounded out-of-order buffer ----------------------------------------------

TEST(TemporalTracker, PendingBufferIsBoundedAndSkipsForwardWhenFull) {
  TemporalTrackerConfig cfg = test_config();
  cfg.max_pending_epochs = 2;
  TemporalTracker tracker(cfg);
  tracker.observe(make_epoch(0, {1}));
  // Epochs 1..4 never arrive; 5, 7, 9 pile up out of order. The third
  // buffered epoch overflows the cap: the tracker declares the gap (1..4)
  // lost, resumes at 5, and keeps only the still-future epochs buffered.
  tracker.observe(make_epoch(5, {1}));
  tracker.observe(make_epoch(7, {1}));
  EXPECT_EQ(tracker.stats().dropped_epochs, 0u);  // within the cap: still waiting
  tracker.observe(make_epoch(9, {1}));
  EXPECT_EQ(tracker.stats().dropped_epochs, 4u);  // epochs 1,2,3,4
  EXPECT_EQ(tracker.stats().epochs_observed, 2u);  // 0 and 5 applied
  EXPECT_EQ(tracker.stats().out_of_order_epochs, 3u);

  // Liveness after the skip: the stream continues and the remaining buffered
  // epochs drain in order once their predecessors arrive.
  tracker.observe(make_epoch(6, {}));  // applies 6, then buffered 7
  tracker.observe(make_epoch(8, {}));  // applies 8, then buffered 9
  EXPECT_EQ(tracker.stats().epochs_observed, 6u);
  EXPECT_EQ(tracker.stats().dropped_epochs, 4u);  // no further loss
}

// --- tracked_components accounting --------------------------------------------

TEST(TemporalTracker, TrackedComponentsStatFollowsTrackAndUntrackTransitions) {
  TemporalTracker tracker(test_config());  // window 8
  EXPECT_EQ(tracker.stats().tracked_components, 0u);
  tracker.observe(make_epoch(0, {1}));
  EXPECT_EQ(tracker.stats().tracked_components, 1u);
  tracker.observe(make_epoch(1, {1, 2}));
  EXPECT_EQ(tracker.stats().tracked_components, 2u);
  // Quiet epochs: both stay tracked while any blame bit is inside the
  // window, then are forgotten the epoch their history fully drains.
  for (std::uint64_t e = 2; e < 9; ++e) {
    tracker.observe(make_epoch(e, {}));
    EXPECT_EQ(tracker.stats().tracked_components, 2u) << "epoch " << e;
  }
  tracker.observe(make_epoch(9, {}));  // component 1's last blame (epoch 1) ages out too
  EXPECT_EQ(tracker.stats().tracked_components, 0u);
  EXPECT_TRUE(tracker.verdicts().empty());
}

// --- evidence carryover at the localizer --------------------------------------

// One weak known-path flow: the evidence s for every on-path component sits
// between the boosted and the plain prior cost, so the fault is found only
// with carryover — and a boost can never conjure a fault out of no evidence.
TEST(TemporalTracker, CarryoverPriorLowersEvidenceNeededButNeverToZero) {
  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  const NodeId src = topo.hosts().front();
  const NodeId dst = topo.hosts().back();

  FlockOptions options;
  options.params.p_g = 1e-4;
  options.params.p_b = 6e-3;
  options.params.rho = 1e-3;  // prior cost ~ -6.9 per link

  InferenceInput weak(topo, router);
  FlowObservation obs;
  obs.src_link = topo.link_component(topo.host_access_link(src));
  obs.dst_link = topo.link_component(topo.host_access_link(dst));
  obs.path_set = router.host_pair_path_set(src, dst);
  obs.taken_path = 0;
  obs.packets_sent = 100;
  obs.bad_packets = 1;  // s = log(60) - 99*log(0.9999/0.994) ~ 3.5, below 6.9
  weak.add(obs);

  const FlockLocalizer localizer(options);
  EXPECT_TRUE(localizer.localize(weak).predicted.empty());  // not enough evidence

  // Boost one on-path *link*, as if the tracker had it confirmed (devices
  // carry a 5x-scaled prior that this weak flow could never overcome).
  const Path& taken = router.path(router.path_set(obs.path_set).paths[0]);
  ComponentId boosted = kInvalidComponent;
  for (const ComponentId c : taken.comps) {
    if (topo.is_link_component(c)) {
      boosted = c;
      break;
    }
  }
  ASSERT_NE(boosted, kInvalidComponent);
  std::vector<double> prior(static_cast<std::size_t>(topo.num_components()), 0.0);
  prior[static_cast<std::size_t>(boosted)] = 6.0;
  const LocalizationResult carried = localizer.localize(weak, prior);
  EXPECT_EQ(carried.predicted, std::vector<ComponentId>{boosted});

  // No evidence at all: even an absurd boost must not flip the prior's sign.
  InferenceInput clean(topo, router);
  obs.bad_packets = 0;
  clean.add(obs);
  prior[static_cast<std::size_t>(boosted)] = 1e6;
  EXPECT_TRUE(localizer.localize(clean, prior).predicted.empty());
}

}  // namespace
}  // namespace flock
