// LocalizerPool age-priority dispatch (pipeline/localizer_pool.h): tasks
// are dispatched oldest-epoch-first (FIFO within an epoch) so a slow epoch
// cannot starve the merge of its own stragglers behind newer epochs, and
// shutdown() is idempotent and safe to race. The localize stage is injected
// so the tests can hold a worker busy deterministically.
#include "pipeline/localizer_pool.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "pipeline/result_sink.h"
#include "topology/ecmp.h"
#include "topology/topology.h"

namespace flock {
namespace {

struct PoolFixture {
  Topology topo = make_fat_tree(4);
  EcmpRouter router{topo};

  EpochSnapshot snapshot(std::uint64_t epoch, std::int32_t shard = 0) {
    return EpochSnapshot{epoch, shard, InferenceInput(topo, router), 0, Stopwatch{}, 0};
  }
};

// A localize stage whose every call blocks until the gate opens, and that
// signals when a worker has entered it.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  int entered = 0;

  LocalizerPool::LocalizeFn fn() {
    return [this](const InferenceInput&) {
      std::unique_lock<std::mutex> lock(mu);
      ++entered;
      cv.notify_all();
      cv.wait(lock, [&] { return open; });
      return LocalizationResult{};
    };
  }
  void await_entered(int n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered >= n; });
  }
  void release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
};

TEST(LocalizerPool, DispatchesOldestEpochFirstAndFifoWithinEpoch) {
  PoolFixture fx;
  Gate gate;
  std::mutex mu;
  std::vector<std::pair<std::uint64_t, std::int32_t>> order;  // (epoch, shard)
  LocalizerPool pool(gate.fn(), /*num_threads=*/1,
                     [&](EpochSnapshot snap, LocalizationResult) {
                       std::lock_guard<std::mutex> lock(mu);
                       order.emplace_back(snap.epoch, snap.shard);
                     });

  // The single worker grabs epoch 5 and blocks inside localize; everything
  // submitted while it is busy queues up in age order.
  pool.submit(fx.snapshot(5));
  gate.await_entered(1);
  pool.submit(fx.snapshot(3, /*shard=*/0));
  pool.submit(fx.snapshot(9));
  pool.submit(fx.snapshot(1));           // jumps ahead of 3 and 9
  pool.submit(fx.snapshot(3, /*shard=*/1));  // jumps ahead of 9, behind (3,0)
  EXPECT_EQ(pool.priority_reorders(), 2u);

  gate.release();
  pool.shutdown();

  const std::vector<std::pair<std::uint64_t, std::int32_t>> expected = {
      {5, 0}, {1, 0}, {3, 0}, {3, 1}, {9, 0}};
  EXPECT_EQ(order, expected);
}

// Out-of-order epoch submission still yields monotone merge completion at
// the sink: with one worker, epochs complete oldest-first after the one the
// worker was already holding.
TEST(LocalizerPool, ResultSinkSeesMonotoneMergeCompletion) {
  PoolFixture fx;
  ResultSink sink(/*num_shards=*/1, /*router=*/nullptr);
  Gate gate;
  std::mutex mu;
  std::vector<std::uint64_t> merged;  // epoch ids in merge-completion order
  LocalizerPool pool(gate.fn(), /*num_threads=*/1,
                     [&](EpochSnapshot snap, LocalizationResult result) {
                       {
                         std::lock_guard<std::mutex> lock(mu);
                         merged.push_back(snap.epoch);
                       }
                       sink.add(snap, result);
                     });

  pool.submit(fx.snapshot(4));
  gate.await_entered(1);
  for (const std::uint64_t epoch : {7u, 2u, 6u, 1u, 3u}) pool.submit(fx.snapshot(epoch));
  gate.release();

  ASSERT_TRUE(sink.wait_for_epochs_for(6, std::chrono::seconds(10)));
  pool.shutdown();
  // After the in-flight epoch 4, merges complete oldest-first. (The order is
  // asserted on the callback-recorded sequence: ResultSink::completed()
  // itself sorts by epoch, so it cannot witness completion order.)
  const std::vector<std::uint64_t> expected = {4, 1, 2, 3, 6, 7};
  EXPECT_EQ(merged, expected);
  EXPECT_EQ(sink.completed_epochs(), 6u);
}

TEST(LocalizerPool, ShutdownIsIdempotentAndSafeToRace) {
  PoolFixture fx;
  std::atomic<int> results{0};
  auto pool = std::make_unique<LocalizerPool>(
      [](const InferenceInput&) { return LocalizationResult{}; }, /*num_threads=*/2,
      [&](EpochSnapshot, LocalizationResult) { results.fetch_add(1); });
  for (std::uint64_t e = 0; e < 32; ++e) pool->submit(fx.snapshot(e));

  // Two racing shutdowns, then two more: the backlog drains exactly once.
  std::thread a([&] { pool->shutdown(); });
  std::thread b([&] { pool->shutdown(); });
  a.join();
  b.join();
  pool->shutdown();
  EXPECT_EQ(results.load(), 32);
  pool->submit(fx.snapshot(99));  // after shutdown: silently dropped, no crash
  pool.reset();                   // destructor calls shutdown() again
  EXPECT_EQ(results.load(), 32);
}

}  // namespace
}  // namespace flock
