// Epoch-arena recycling (common/arena.h + FlowTable::reset): a recycled
// table must be indistinguishable from a fresh one — same observation
// sequence in, byte-identical columns out — and the pipeline's per-shard
// arenas must actually recycle across epochs without leaking any state from
// one epoch's table into the next. Runs on the sanitizer CI legs (label
// "sanitize"): reset/refill is exactly the use-after-reset surface ASan is
// for, and the pipeline leg exercises release/acquire races under TSan.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "core/flow_table.h"
#include "core/inference_input.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "flowsim/views.h"
#include "pipeline/pipeline.h"
#include "telemetry/agent.h"
#include "topology/topology.h"

namespace flock {
namespace {

std::vector<FlowObservation> simulated_observations(std::uint64_t seed) {
  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  Rng rng(seed);
  GroundTruth truth = make_silent_link_drops(topo, 1, DropRateConfig{1e-4, 4e-3, 1e-2}, rng);
  TrafficConfig traffic;
  traffic.num_app_flows = 800;
  Trace trace = simulate(topo, router, std::move(truth), traffic, ProbeConfig{}, rng);
  ViewOptions view;
  view.telemetry = kTelemetryA1 | kTelemetryA2 | kTelemetryP;
  return make_view(topo, router, trace, view).expanded_flows();
}

void expect_same_groups(const FlowTable& a, const FlowTable& b) {
  ASSERT_EQ(a.num_groups(), b.num_groups());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_observations(), b.num_observations());
  for (std::size_t g = 0; g < a.num_groups(); ++g) {
    const FlowGroup& x = a.groups()[g];
    const FlowGroup& y = b.groups()[g];
    EXPECT_EQ(x.path_set, y.path_set) << "group " << g;
    EXPECT_EQ(x.src_link, y.src_link) << "group " << g;
    EXPECT_EQ(x.dst_link, y.dst_link) << "group " << g;
    EXPECT_EQ(x.taken_path, y.taken_path) << "group " << g;
    EXPECT_EQ(x.packets, y.packets) << "group " << g;
    EXPECT_EQ(x.bad, y.bad) << "group " << g;
    EXPECT_EQ(x.weight, y.weight) << "group " << g;
  }
}

// The core reset contract: refilling a reset table with the same observation
// sequence reproduces byte-identical contents — group order, row order,
// dedup weights, everything — while the second build runs on retained
// storage instead of fresh allocations.
TEST(FlowTableReset, RefillAfterResetIsByteIdentical) {
  const std::vector<FlowObservation> flows = simulated_observations(9001);
  FlowTable reference(/*dedup=*/true);
  for (const FlowObservation& obs : flows) reference.add(obs);
  ASSERT_GT(reference.num_rows(), 0u);

  FlowTable recycled(/*dedup=*/true);
  for (const FlowObservation& obs : flows) recycled.add(obs);
  recycled.reset();
  EXPECT_EQ(recycled.num_groups(), 0u);
  EXPECT_EQ(recycled.num_rows(), 0u);
  EXPECT_EQ(recycled.num_observations(), 0u);
  EXPECT_GT(recycled.retained_bytes(), 0u);  // capacity survived the reset

  for (const FlowObservation& obs : flows) recycled.add(obs);
  expect_same_groups(recycled, reference);
}

// No cross-epoch leakage: refilling with a DIFFERENT sequence must produce
// exactly what a fresh table produces from that sequence — nothing of the
// first epoch (stale index entries, stale weights) may show through.
TEST(FlowTableReset, ResetTableCarriesNothingIntoADifferentEpoch) {
  const std::vector<FlowObservation> epoch1 = simulated_observations(9002);
  const std::vector<FlowObservation> epoch2 = simulated_observations(9003);

  FlowTable recycled(/*dedup=*/true);
  for (const FlowObservation& obs : epoch1) recycled.add(obs);
  recycled.reset();
  for (const FlowObservation& obs : epoch2) recycled.add(obs);

  FlowTable fresh(/*dedup=*/true);
  for (const FlowObservation& obs : epoch2) fresh.add(obs);
  expect_same_groups(recycled, fresh);
}

TEST(EpochArena, PoolsOnlyTablesThatRetainStorageAndCountsReuse) {
  EpochArena<FlowTable> arena;

  // A table that never allocated retains nothing: dropped, not pooled.
  arena.release(FlowTable(/*dedup=*/true));
  EXPECT_EQ(arena.pooled(), 0u);
  EXPECT_EQ(arena.bytes_recycled(), 0u);

  // A populated table is reset and parked, its retained bytes counted.
  const std::vector<FlowObservation> flows = simulated_observations(9004);
  FlowTable table(/*dedup=*/true);
  for (const FlowObservation& obs : flows) table.add(obs);
  arena.release(std::move(table));
  EXPECT_EQ(arena.pooled(), 1u);
  EXPECT_GT(arena.bytes_recycled(), 0u);

  // A moved-from shell (the barrier's wholesale-merge case) retains nothing.
  FlowTable donor(/*dedup=*/true);
  for (const FlowObservation& obs : flows) donor.add(obs);
  FlowTable sink(/*dedup=*/true);
  sink.merge_from(std::move(donor));
  arena.release(std::move(donor));
  EXPECT_EQ(arena.pooled(), 1u);

  // Acquire hands the warm table back and counts the reuse; the next acquire
  // finds an empty pool and default-constructs without counting.
  EXPECT_EQ(arena.reuses(), 0u);
  FlowTable out = arena.acquire();
  EXPECT_EQ(arena.reuses(), 1u);
  EXPECT_EQ(arena.pooled(), 0u);
  EXPECT_EQ(out.num_rows(), 0u);
  EXPECT_GT(out.retained_bytes(), 0u);
  FlowTable cold = arena.acquire();
  EXPECT_EQ(arena.reuses(), 1u);
  EXPECT_EQ(cold.retained_bytes(), 0u);
}

TEST(EpochArena, PoolIsCappedAndDedupModeIsRebindable) {
  EpochArena<FlowTable> arena;
  const std::vector<FlowObservation> flows = simulated_observations(9005);
  for (std::size_t i = 0; i < EpochArena<FlowTable>::kMaxPooled + 8; ++i) {
    FlowTable table(/*dedup=*/true);
    for (const FlowObservation& obs : flows) table.add(obs);
    arena.release(std::move(table));
  }
  EXPECT_EQ(arena.pooled(), EpochArena<FlowTable>::kMaxPooled);

  // Arenas pool tables regardless of the mode their previous epoch used; an
  // acquirer re-pins the mode while the table is empty.
  FlowTable table = arena.acquire();
  table.set_dedup_enabled(false);
  EXPECT_FALSE(table.dedup_enabled());
  for (const FlowObservation& obs : flows) table.add(obs);
  EXPECT_EQ(table.num_rows(), static_cast<std::size_t>(table.num_observations()));
}

// --- pipeline: arenas recycle across epochs, results stay identical ----------

// Per-host IPFIX export of a simulated trace, same shape as the pipeline
// tests use. The topology and router are part of the fixture: the pipeline
// must join against the SAME router the export referenced, and simulate()
// leaves it fully interned, so every replayed epoch decodes identically.
struct ArenaStreamFixture {
  Topology topo = make_fat_tree(4);
  EcmpRouter router{topo};
  std::vector<IngestDatagram> datagrams;

  explicit ArenaStreamFixture(std::uint64_t seed = 4242) {
    Rng rng(seed);
    GroundTruth truth = make_silent_link_drops(topo, 1, DropRateConfig{1e-4, 5e-3, 1e-2}, rng);
    TrafficConfig traffic;
    traffic.num_app_flows = 500;
    Trace trace = simulate(topo, router, std::move(truth), traffic, ProbeConfig{}, rng);
    std::unordered_map<NodeId, Agent> agents;
    for (NodeId h : topo.hosts()) {
      AgentConfig cfg;
      cfg.observation_domain = static_cast<std::uint32_t>(h);
      agents.emplace(h, Agent(topo, cfg));
    }
    for (const SimFlow& f : trace.flows) {
      SimFlow passive = f;
      if (f.kind == SimFlowKind::kApp) passive.taken_path = -1;
      agents.at(f.src_host).observe(passive);
    }
    for (NodeId h : topo.hosts()) {
      for (auto& msg : agents.at(h).flush(1000)) {
        datagrams.push_back({node_to_addr(h), std::move(msg)});
      }
    }
  }
};

// Feed the SAME datagrams as several epochs through one pipeline: every
// epoch must localize identically (epoch 2+ runs on tables recycled from
// epoch 1 — any cross-epoch leakage through the arena changes the result),
// and the arena counters must show the recycling actually happened. Epochs
// are paced — each one fully merged before the next is offered — so the
// recycled tables are actually back in the shard arenas when the next
// epoch's batches draw scratch storage.
TEST(EpochArena, PipelineRecyclesTablesAcrossEpochsWithIdenticalResults) {
  ArenaStreamFixture fx;
  PipelineConfig config;
  config.num_shards = 2;
  config.localizer_threads = 1;
  config.localizer.params.p_g = 1e-4;
  config.localizer.params.p_b = 6e-3;
  config.localizer.params.rho = 1e-3;
  StreamingPipeline pipeline(fx.topo, fx.router, config);

  constexpr int kEpochs = 4;
  for (int e = 0; e < kEpochs; ++e) {
    for (const IngestDatagram& d : fx.datagrams) ASSERT_TRUE(pipeline.offer_wait(d));
    pipeline.close_epoch();
    while (pipeline.results().completed().size() < static_cast<std::size_t>(e + 1)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // The sink completing the epoch slightly precedes the recycle call; give
    // the tables a beat to land back in the arenas.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  pipeline.stop();

  const auto epochs = pipeline.results().completed();
  ASSERT_EQ(epochs.size(), static_cast<std::size_t>(kEpochs));
  for (int e = 1; e < kEpochs; ++e) {
    EXPECT_EQ(epochs[static_cast<std::size_t>(e)].flows, epochs[0].flows) << "epoch " << e;
    EXPECT_EQ(epochs[static_cast<std::size_t>(e)].predicted, epochs[0].predicted)
        << "epoch " << e;
  }

  const PipelineStats stats = pipeline.stats();
  EXPECT_GT(stats.arena_reuses, 0u);
  EXPECT_GT(stats.arena_bytes_recycled, 0u);
  EXPECT_GT(stats.memo_hits, 0u);
}

}  // namespace
}  // namespace flock
