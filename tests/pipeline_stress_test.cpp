// Concurrency coverage for the work-stealing shard executor and the
// wall-clock epoch deadline (src/pipeline). These tests are built to run
// under TSan in CI: many producers, stealing enabled, and assertions that
// pin the conservation invariant (joined + unresolved + dropped = accepted)
// and the transparency of stealing (identical results with stealing on/off).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/rng.h"
#include "core/flock_localizer.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "pipeline/pipeline.h"
#include "pipeline/steal_deque.h"
#include "telemetry/agent.h"
#include "telemetry/collector.h"
#include "topology/topology.h"

namespace flock {
namespace {

// --- steal deque --------------------------------------------------------------

struct FakeTask {
  int id = 0;
  std::size_t w = 1;
  bool pinned = false;
  std::size_t weight() const { return w; }
  bool stealable() const { return !pinned; }
};

TEST(StealDeque, StealsOldestStealableAndSkipsPinnedTasks) {
  StealDeque<FakeTask> dq(64);
  ASSERT_TRUE(dq.push({1, 4, false}));
  ASSERT_TRUE(dq.push({2, 4, true}));  // a barrier: pinned to the owner
  ASSERT_TRUE(dq.push({3, 4, false}));
  ASSERT_TRUE(dq.push({4, 4, false}));
  EXPECT_EQ(dq.weight_estimate(), 16u);

  std::vector<FakeTask> loot;
  // max_weight 5: takes task 1 (reaching 4 < 5) then task 3 (oldest next).
  EXPECT_EQ(dq.steal(loot, 5), 2u);
  ASSERT_EQ(loot.size(), 2u);
  EXPECT_EQ(loot[0].id, 1);
  EXPECT_EQ(loot[1].id, 3);
  EXPECT_EQ(dq.weight_estimate(), 8u);

  // The owner still sees FIFO order of what remains: 2 then 4.
  FakeTask t;
  ASSERT_EQ(dq.pop_front(t, std::chrono::microseconds{0}), StealDeque<FakeTask>::Pop::kTask);
  EXPECT_EQ(t.id, 2);
  ASSERT_EQ(dq.pop_front(t, std::chrono::microseconds{0}), StealDeque<FakeTask>::Pop::kTask);
  EXPECT_EQ(t.id, 4);
  EXPECT_EQ(dq.pop_front(t, std::chrono::microseconds{0}), StealDeque<FakeTask>::Pop::kEmpty);
  dq.close();
  EXPECT_EQ(dq.pop_front(t, std::nullopt), StealDeque<FakeTask>::Pop::kClosed);
  EXPECT_FALSE(dq.push({5, 1, false}));
  loot.clear();
  EXPECT_EQ(dq.steal(loot, 100), 0u);
}

TEST(StealDeque, ZeroWeightTasksBypassTheCapacityBound) {
  StealDeque<FakeTask> dq(4);
  ASSERT_TRUE(dq.push({1, 4, false}));  // at capacity now
  ASSERT_TRUE(dq.push({2, 0, true}));   // barrier admitted immediately
  FakeTask t;
  ASSERT_EQ(dq.pop_front(t, std::chrono::microseconds{0}), StealDeque<FakeTask>::Pop::kTask);
  EXPECT_EQ(t.id, 1);
  ASSERT_EQ(dq.pop_front(t, std::chrono::microseconds{0}), StealDeque<FakeTask>::Pop::kTask);
  EXPECT_EQ(t.id, 2);
}

// --- fixture: simulated trace exported as per-agent IPFIX datagrams ----------

struct StreamFixture {
  Topology topo = make_fat_tree(4);
  EcmpRouter router{topo};
  std::vector<IngestDatagram> datagrams;

  explicit StreamFixture(std::uint64_t seed = 42, std::int64_t flows = 600) {
    Rng rng(seed);
    GroundTruth truth =
        make_silent_link_drops(topo, 1, DropRateConfig{1e-4, 5e-3, 1e-2}, rng);
    TrafficConfig traffic;
    traffic.num_app_flows = flows;
    ProbeConfig probe_config;
    probe_config.enabled = false;
    const Trace trace = simulate(topo, router, std::move(truth), traffic, probe_config, rng);

    std::unordered_map<NodeId, Agent> agents;
    for (NodeId h : topo.hosts()) {
      AgentConfig cfg;
      cfg.observation_domain = static_cast<std::uint32_t>(h);
      agents.emplace(h, Agent(topo, cfg));
    }
    for (const SimFlow& f : trace.flows) {
      SimFlow passive = f;
      passive.taken_path = -1;
      agents.at(f.src_host).observe(passive);
    }
    for (NodeId h : topo.hosts()) {
      for (auto& msg : agents.at(h).flush(1000)) {
        datagrams.push_back({node_to_addr(h), std::move(msg)});
      }
    }
  }
};

FlockOptions test_flock_options() {
  FlockOptions options;
  options.params.p_g = 1e-4;
  options.params.p_b = 6e-3;
  options.params.rho = 1e-3;
  return options;
}

// --- work stealing on the bare executor ---------------------------------------

// Everything is dispatched to shard 0 while shard 1 idles: shard 1 must
// steal, and the stolen work must land in shard 0's snapshot in the exact
// order a never-stolen run would produce.
TEST(ShardExecutor, IdleShardStealsAndSnapshotsStayExact) {
  StreamFixture fx(/*seed=*/11, /*flows=*/2000);
  // Each datagram is dispatched kRepeat times: enough CPU-bound decode work
  // (~100ms) that even a single-core scheduler must run the idle shard's
  // thread while the victim's backlog is still live.
  constexpr int kRepeat = 60;

  // Synchronous reference over the identical datagram sequence. Running it
  // first also interns every path set, so executor joins reuse fixed ids.
  Collector reference(fx.topo, fx.router);
  for (const IngestDatagram& d : fx.datagrams) {
    for (int k = 0; k < kRepeat; ++k) ASSERT_TRUE(reference.ingest(d.bytes));
  }
  const InferenceInput expected = reference.drain_into_input();

  std::mutex mu;
  std::vector<EpochSnapshot> snapshots;
  ShardExecutorOptions options;
  options.num_shards = 2;
  options.queue_capacity = 1 << 20;  // no backpressure: queue the skew up front
  options.steal_batch = 8;
  std::uint64_t stolen = 0;
  for (int attempt = 0; attempt < 5 && stolen == 0; ++attempt) {
    snapshots.clear();
    ShardExecutor executor(fx.topo, fx.router, options, CollectorOptions{},
                           [&](EpochSnapshot snap) {
                             std::lock_guard<std::mutex> lock(mu);
                             snapshots.push_back(std::move(snap));
                           });
    // Many single-datagram batches, all to shard 0 — maximal skew.
    for (const IngestDatagram& d : fx.datagrams) {
      for (int k = 0; k < kRepeat; ++k) {
        executor.dispatch_batch(0, std::vector<IngestDatagram>{d});
      }
    }
    executor.close_epoch(0, Stopwatch{});
    executor.stop();
    stolen = executor.batches_stolen();

    ASSERT_EQ(snapshots.size(), 2u);
    std::sort(snapshots.begin(), snapshots.end(),
              [](const EpochSnapshot& a, const EpochSnapshot& b) { return a.shard < b.shard; });
    EXPECT_EQ(snapshots[1].input.num_flows(), 0u);  // shard 1 owned nothing
    EXPECT_EQ(snapshots[0].stolen_batches, stolen);
    EXPECT_EQ(executor.shard_datagrams(0), fx.datagrams.size() * kRepeat);
    EXPECT_EQ(executor.shard_datagrams(1), 0u);
    EXPECT_EQ(executor.datagrams_stolen(), stolen);  // single-datagram batches

    // Reassembly is order-preserving: the merged FlowTable expands
    // flow-for-flow identical to the synchronous path no matter which
    // worker decoded what (group/row/weight structure included).
    const auto flows = snapshots[0].input.expanded_flows();
    const auto expected_flows = expected.expanded_flows();
    ASSERT_EQ(flows.size(), expected_flows.size());
    ASSERT_EQ(snapshots[0].input.num_rows(), expected.num_rows());
    for (std::size_t i = 0; i < flows.size(); ++i) {
      EXPECT_EQ(flows[i].src_link, expected_flows[i].src_link);
      EXPECT_EQ(flows[i].dst_link, expected_flows[i].dst_link);
      EXPECT_EQ(flows[i].path_set, expected_flows[i].path_set);
      EXPECT_EQ(flows[i].taken_path, expected_flows[i].taken_path);
      EXPECT_EQ(flows[i].packets_sent, expected_flows[i].packets_sent);
      EXPECT_EQ(flows[i].bad_packets, expected_flows[i].bad_packets);
    }
    EXPECT_EQ(snapshots[0].unresolved + snapshots[1].unresolved,
              reference.unresolved_records());
  }
  // ~100+ single-datagram tasks against a 500us steal poll: an idle shard
  // that never steals across 5 attempts is a scheduler bug, not bad luck.
  EXPECT_GT(stolen, 0u);
}

// --- stealing is transparent to pipeline results ------------------------------

TEST(PipelineStress, StealingOnAndOffProduceIdenticalEpochResults) {
  // Heavy rack skew: quadruple the traffic of the hosts on shard 0's racks
  // so the rack-affine partition is unbalanced and stealing has work to do.
  StreamFixture fx(/*seed=*/13, /*flows=*/1500);
  std::vector<IngestDatagram> feed = fx.datagrams;
  for (const IngestDatagram& d : fx.datagrams) {
    // Same partition function the executor uses: ToR of the source, mod 4.
    if (fx.topo.tor_of(addr_to_node(d.source_addr)) % 4 == 0) {
      for (int k = 0; k < 3; ++k) feed.push_back(d);
    }
  }

  std::vector<std::vector<ComponentId>> predicted[2];
  std::vector<std::uint64_t> flows[2], unresolved[2];
  std::uint64_t stolen_total = 0;
  for (int run = 0; run < 2; ++run) {
    PipelineConfig config;
    config.num_shards = 4;
    config.localizer = test_flock_options();
    config.epoch.record_limit = 400;
    config.steal_batch = run == 0 ? 0 : 64;  // off, then on
    StreamingPipeline pipeline(fx.topo, fx.router, config);
    for (const IngestDatagram& d : feed) pipeline.offer_wait(d);
    pipeline.stop();
    const auto stats = pipeline.stats();
    if (run == 0) {
      EXPECT_EQ(stats.batches_stolen, 0u);  // the knob really disables it
    } else {
      stolen_total = stats.batches_stolen;
    }
    std::uint64_t epoch_flows = 0, epoch_unresolved = 0, epoch_stolen = 0;
    for (const auto& e : pipeline.results().completed()) {
      predicted[run].push_back(e.predicted);
      flows[run].push_back(e.flows);
      unresolved[run].push_back(e.unresolved);
      epoch_flows += e.flows;
      epoch_unresolved += e.unresolved;
      epoch_stolen += e.stolen_batches;
    }
    // Conservation holds with or without stealing, and the per-epoch steal
    // accounting agrees with the executor's global counters.
    EXPECT_EQ(epoch_flows + epoch_unresolved, stats.records_decoded);
    EXPECT_EQ(epoch_stolen, stats.batches_stolen);
  }
  EXPECT_EQ(predicted[0], predicted[1]);
  EXPECT_EQ(flows[0], flows[1]);
  EXPECT_EQ(unresolved[0], unresolved[1]);
  (void)stolen_total;  // steals are timing-dependent; transparency must hold either way
}

// --- many producers under stealing (the TSan target) --------------------------

TEST(PipelineStress, ManyProducersConserveRecordsUnderStealing) {
  StreamFixture fx(/*seed=*/17, /*flows=*/2500);
  PipelineConfig config;
  config.num_shards = 4;
  config.localizer = test_flock_options();
  config.epoch.record_limit = 300;
  config.steal_batch = 32;
  config.shard_queue_capacity = 64;  // small queues: exercise backpressure + stealing
  StreamingPipeline pipeline(fx.topo, fx.router, config);

  constexpr int kProducers = 8;
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= fx.datagrams.size()) return;
        EXPECT_TRUE(pipeline.offer_wait(fx.datagrams[i]));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  pipeline.stop();

  const auto stats = pipeline.stats();
  EXPECT_EQ(stats.offered, fx.datagrams.size());
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.dispatched, stats.accepted);
  EXPECT_EQ(stats.malformed_messages, 0u);
  EXPECT_GE(stats.epochs_closed, 2u);

  std::uint64_t flows = 0, unresolved = 0, stolen = 0;
  for (const auto& e : pipeline.results().completed()) {
    flows += e.flows;
    unresolved += e.unresolved;
    stolen += e.stolen_batches;
  }
  // Every accepted record is joined into some epoch or counted unresolved —
  // wherever it was decoded, including stolen batches.
  EXPECT_EQ(flows + unresolved, stats.records_decoded);
  EXPECT_EQ(stolen, stats.batches_stolen);
  EXPECT_EQ(pipeline.results().completed_epochs(), stats.epochs_closed);
}

// --- snapshot router vs shared_mutex baseline ---------------------------------

// Full pipeline, 8 producers, stealing on, against the wait-free snapshot
// router and the shared_mutex baseline read mode: per-epoch results must be
// identical. The feed is constructed so each run is deterministic despite 8
// concurrent producers: producer p offers exactly the datagrams of shard p's
// rack partition (in fixture order), so every shard's intra-epoch record
// sequence is one producer's sequential offer order, and epoch boundaries
// are closed manually between producer phases, after all threads joined.
TEST(PipelineStress, SnapshotAndSharedMutexRoutersProduceIdenticalEpochs) {
  StreamFixture fx(/*seed=*/31, /*flows=*/2000);
  constexpr std::int32_t kShards = 8;
  constexpr int kPhases = 3;

  // Rack partition, mirroring ShardExecutor::shard_of.
  std::vector<std::vector<IngestDatagram>> per_shard(kShards);
  for (const IngestDatagram& d : fx.datagrams) {
    per_shard[static_cast<std::size_t>(
                  fx.topo.tor_of(addr_to_node(d.source_addr)) % kShards)]
        .push_back(d);
  }

  struct EpochDigest {
    std::vector<ComponentId> predicted;
    std::vector<std::vector<ComponentId>> per_shard_predicted;
    std::uint64_t flows = 0;
    std::uint64_t unresolved = 0;
    bool operator==(const EpochDigest&) const = default;
  };
  std::vector<EpochDigest> digests[2];

  int run = 0;
  for (const RouterReadMode mode :
       {RouterReadMode::kSnapshot, RouterReadMode::kSharedMutexBaseline}) {
    EcmpRouter router(fx.topo, mode);
    PipelineConfig config;
    config.num_shards = kShards;
    config.localizer = test_flock_options();
    config.steal_batch = 32;
    StreamingPipeline pipeline(fx.topo, router, config);

    for (int phase = 0; phase < kPhases; ++phase) {
      std::vector<std::thread> producers;
      producers.reserve(kShards);
      for (std::int32_t s = 0; s < kShards; ++s) {
        producers.emplace_back([&, s] {
          const auto& mine = per_shard[static_cast<std::size_t>(s)];
          const std::size_t begin = mine.size() * static_cast<std::size_t>(phase) / kPhases;
          const std::size_t end = mine.size() * (static_cast<std::size_t>(phase) + 1) / kPhases;
          for (std::size_t i = begin; i < end; ++i) EXPECT_TRUE(pipeline.offer_wait(mine[i]));
        });
      }
      for (std::thread& t : producers) t.join();
      pipeline.close_epoch();  // boundary lands after every phase datagram
    }
    pipeline.stop();

    const auto stats = pipeline.stats();
    EXPECT_EQ(stats.dropped, 0u);
    EXPECT_EQ(stats.epochs_closed, static_cast<std::uint64_t>(kPhases));
    EXPECT_GT(stats.router_index_publishes, 0u);  // joins interned ToR pairs
    if (mode == RouterReadMode::kSnapshot) {
      // Warm joins are wait-free: only cold pairs (plus publish races) miss
      // the index, so retries stay bounded by the interned pair count.
      EXPECT_LE(stats.router_read_retries,
                stats.router_index_publishes + stats.records_decoded / 2);
    }
    for (const auto& e : pipeline.results().completed()) {
      digests[run].push_back(
          EpochDigest{e.predicted, e.per_shard_predicted, e.flows, e.unresolved});
    }
    ++run;
  }
  ASSERT_EQ(digests[0].size(), static_cast<std::size_t>(kPhases));
  EXPECT_EQ(digests[0], digests[1]);
}

// --- wall-clock deadline epochs (fake clock) ----------------------------------

struct FakeClock {
  std::shared_ptr<std::atomic<std::int64_t>> ns = std::make_shared<std::atomic<std::int64_t>>(0);
  std::function<std::chrono::steady_clock::time_point()> fn() const {
    auto state = ns;
    return [state] {
      return std::chrono::steady_clock::time_point(
          std::chrono::nanoseconds(state->load(std::memory_order_relaxed)));
    };
  }
  void advance(std::chrono::milliseconds d) {
    ns->fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
  }
};

TEST(PipelineDeadline, DeadlineFlushesQuietPeriodsButNeverEmitsEmptyEpochs) {
  StreamFixture fx(/*seed=*/19, /*flows=*/400);
  FakeClock clock;
  PipelineConfig config;
  config.num_shards = 2;
  config.localizer = test_flock_options();
  config.epoch.deadline = std::chrono::milliseconds(5000);
  config.epoch.clock = clock.fn();
  StreamingPipeline pipeline(fx.topo, fx.router, config);

  const std::size_t half = fx.datagrams.size() / 2;
  ASSERT_GE(half, 2u);
  for (std::size_t i = 0; i < half; ++i) pipeline.offer_wait(fx.datagrams[i]);
  // Wait for the dispatcher to route (and therefore arm the deadline)...
  while (pipeline.stats().dispatched < half) std::this_thread::yield();
  // ...no wall time passed on the fake clock, so nothing closes on its own.
  EXPECT_FALSE(pipeline.results().wait_for_epochs_for(1, std::chrono::milliseconds(50)));

  clock.advance(std::chrono::milliseconds(5001));
  ASSERT_TRUE(pipeline.results().wait_for_epochs_for(1, std::chrono::seconds(10)))
      << "deadline did not close the epoch";

  // Quiet period with no open epoch: more fake time must NOT emit epochs.
  clock.advance(std::chrono::milliseconds(60000));
  EXPECT_FALSE(pipeline.results().wait_for_epochs_for(2, std::chrono::milliseconds(50)));

  // A second burst re-arms the timer.
  for (std::size_t i = half; i < fx.datagrams.size(); ++i) pipeline.offer_wait(fx.datagrams[i]);
  while (pipeline.stats().dispatched < fx.datagrams.size()) std::this_thread::yield();
  clock.advance(std::chrono::milliseconds(5001));
  ASSERT_TRUE(pipeline.results().wait_for_epochs_for(2, std::chrono::seconds(10)));

  pipeline.stop();
  const auto stats = pipeline.stats();
  EXPECT_EQ(stats.epochs_closed, 2u);
  EXPECT_EQ(stats.deadline_epochs, 2u);
  std::uint64_t flows = 0, unresolved = 0;
  for (const auto& e : pipeline.results().completed()) {
    flows += e.flows;
    unresolved += e.unresolved;
    EXPECT_GT(e.flows + e.unresolved, 0u);  // deadline epochs are never empty
  }
  EXPECT_EQ(flows + unresolved, stats.records_decoded);
}

TEST(PipelineDeadline, DeadlineComposesWithRecordLimit) {
  // A record-limit cut inside the burst disarms the timer; the tail past the
  // last full budget is flushed by the deadline instead of waiting forever.
  StreamFixture fx(/*seed=*/23, /*flows=*/600);
  FakeClock clock;
  PipelineConfig config;
  config.num_shards = 2;
  config.localizer = test_flock_options();
  config.epoch.record_limit = 250;
  config.epoch.deadline = std::chrono::milliseconds(1000);
  config.epoch.clock = clock.fn();
  StreamingPipeline pipeline(fx.topo, fx.router, config);
  for (const IngestDatagram& d : fx.datagrams) pipeline.offer_wait(d);
  while (pipeline.stats().dispatched < fx.datagrams.size()) std::this_thread::yield();
  const std::uint64_t count_cuts = pipeline.stats().epochs_closed;
  EXPECT_GE(count_cuts, 1u);

  clock.advance(std::chrono::milliseconds(1001));
  ASSERT_TRUE(pipeline.results().wait_for_epochs_for(count_cuts + 1, std::chrono::seconds(10)))
      << "deadline did not flush the partial tail epoch";
  pipeline.stop();
  EXPECT_EQ(pipeline.stats().deadline_epochs, 1u);
}

// A record-count cut in the same dispatcher poll as an armed deadline must
// disarm the timer with the close: the pre-cut epoch's stale deadline_at_
// must never fire against the next epoch (which would close it early and
// nearly empty) or emit an extra empty epoch after the cut.
TEST(PipelineDeadline, RecordCutInTheSamePollDisarmsTheDeadline) {
  StreamFixture fx(/*seed=*/29, /*flows=*/600);
  FakeClock clock;
  PipelineConfig config;
  config.num_shards = 2;
  config.localizer = test_flock_options();
  config.epoch.record_limit = 1;  // every datagram cuts: cut and timer always share a poll
  config.epoch.deadline = std::chrono::milliseconds(1000);
  config.epoch.clock = clock.fn();
  StreamingPipeline pipeline(fx.topo, fx.router, config);

  const std::size_t burst = 10;
  for (std::size_t i = 0; i < burst; ++i) pipeline.offer_wait(fx.datagrams[i]);
  while (pipeline.stats().epochs_closed < burst) std::this_thread::yield();
  EXPECT_EQ(pipeline.stats().deadline_epochs, 0u);

  // Every cut disarmed its epoch's timer: stepping far past all of their
  // would-be deadline_at_ values must not close anything.
  clock.advance(std::chrono::milliseconds(60000));
  EXPECT_FALSE(
      pipeline.results().wait_for_epochs_for(burst + 1, std::chrono::milliseconds(100)));

  pipeline.stop();
  const auto stats = pipeline.stats();
  EXPECT_EQ(stats.epochs_closed, burst);
  EXPECT_EQ(stats.deadline_epochs, 0u);
  std::uint64_t flows = 0, unresolved = 0;
  for (const auto& e : pipeline.results().completed()) {
    flows += e.flows;
    unresolved += e.unresolved;
    EXPECT_GT(e.flows + e.unresolved, 0u);
  }
  EXPECT_EQ(flows + unresolved, stats.records_decoded);
}

// close_now() from a *manual* boundary also disarms and re-arms cleanly: the
// old epoch's deadline must not fire after the manual close, and the next
// epoch's first datagram arms a fresh timer that does.
TEST(PipelineDeadline, ManualCloseDisarmsAndNextEpochRearms) {
  StreamFixture fx(/*seed=*/37, /*flows=*/400);
  FakeClock clock;
  PipelineConfig config;
  config.num_shards = 2;
  config.localizer = test_flock_options();
  config.epoch.deadline = std::chrono::milliseconds(2000);
  config.epoch.clock = clock.fn();
  StreamingPipeline pipeline(fx.topo, fx.router, config);

  const std::size_t half = fx.datagrams.size() / 2;
  for (std::size_t i = 0; i < half; ++i) pipeline.offer_wait(fx.datagrams[i]);
  while (pipeline.stats().dispatched < half) std::this_thread::yield();
  pipeline.close_epoch();  // manual cut while the deadline is armed
  ASSERT_TRUE(pipeline.results().wait_for_epochs_for(1, std::chrono::seconds(10)));

  // The stale timer of the manually closed epoch must stay dead.
  clock.advance(std::chrono::milliseconds(60000));
  EXPECT_FALSE(pipeline.results().wait_for_epochs_for(2, std::chrono::milliseconds(100)));
  EXPECT_EQ(pipeline.stats().deadline_epochs, 0u);

  // A new burst re-arms at the *current* fake time; its own deadline fires.
  for (std::size_t i = half; i < fx.datagrams.size(); ++i) pipeline.offer_wait(fx.datagrams[i]);
  while (pipeline.stats().dispatched < fx.datagrams.size()) std::this_thread::yield();
  clock.advance(std::chrono::milliseconds(2000));
  ASSERT_TRUE(pipeline.results().wait_for_epochs_for(2, std::chrono::seconds(10)));
  pipeline.stop();
  EXPECT_EQ(pipeline.stats().epochs_closed, 2u);
  EXPECT_EQ(pipeline.stats().deadline_epochs, 1u);
}

// The deadline comparison is >=: a fake clock stepping *exactly* onto
// deadline_at_ closes the epoch, and however long the idle clock then keeps
// jumping, an armed-but-empty pipeline never emits empty epochs.
TEST(PipelineDeadline, ExactDeadlineStepFiresAndIdleJumpsStayEmpty) {
  StreamFixture fx(/*seed=*/41, /*flows=*/300);
  FakeClock clock;
  PipelineConfig config;
  config.num_shards = 2;
  config.localizer = test_flock_options();
  config.epoch.deadline = std::chrono::milliseconds(3000);
  config.epoch.clock = clock.fn();
  StreamingPipeline pipeline(fx.topo, fx.router, config);

  for (const IngestDatagram& d : fx.datagrams) pipeline.offer_wait(d);
  while (pipeline.stats().dispatched < fx.datagrams.size()) std::this_thread::yield();
  // now() == deadline_at_ exactly (the timer armed at fake time 0).
  clock.advance(std::chrono::milliseconds(3000));
  ASSERT_TRUE(pipeline.results().wait_for_epochs_for(1, std::chrono::seconds(10)))
      << "deadline must fire on now() == deadline_at_, not strictly after";

  // Idle clock stepping in exact deadline quanta: no open epoch, no epochs.
  for (int jump = 0; jump < 5; ++jump) {
    clock.advance(std::chrono::milliseconds(3000));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_FALSE(pipeline.results().wait_for_epochs_for(2, std::chrono::milliseconds(100)));
  pipeline.stop();
  const auto stats = pipeline.stats();
  EXPECT_EQ(stats.epochs_closed, 1u);
  EXPECT_EQ(stats.deadline_epochs, 1u);
  for (const auto& e : pipeline.results().completed()) {
    EXPECT_GT(e.flows + e.unresolved, 0u);  // the never-empty guarantee
  }
}

}  // namespace
}  // namespace flock
