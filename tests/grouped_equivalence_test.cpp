// Equivalence proof-of-work for the columnar inference core: on randomized
// flowsim scenarios, the grouped, weight-deduplicated FlowTable must be a
// pure representation change — the weighted log-likelihood equals the
// per-flow log-likelihood of the raw observation multiset, and every
// deterministic scheme localizes identically from the deduplicated and the
// row-per-observation tables, JLE on and off. Runs on the sanitizer CI legs
// (label "sanitize") so the table build/merge/scan paths stay clean under
// ASan/UBSan and TSan too.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>
#include <unordered_set>

#include "baselines/netbouncer.h"
#include "baselines/sherlock.h"
#include "baselines/zero07.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "core/flock_localizer.h"
#include "core/likelihood_engine.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "flowsim/views.h"
#include "topology/topology.h"

namespace flock {
namespace {

FlockParams params() {
  FlockParams p;
  p.p_g = 1e-4;
  p.p_b = 6e-3;
  p.rho = 1e-3;
  return p;
}

// Per-flow reference: Eq. 1 evaluated observation by observation over the
// expanded multiset, with no grouping, no weights and no incremental state.
double per_flow_log_likelihood(const InferenceInput& input, const FlockParams& p,
                               const std::vector<ComponentId>& hypothesis) {
  std::unordered_set<ComponentId> h(hypothesis.begin(), hypothesis.end());
  const EcmpRouter& router = input.router();
  double ll = 0.0;
  for (const FlowObservation& obs : input.expanded_flows()) {
    const double s = bad_path_log_evidence(obs.bad_packets, obs.packets_sent, p.p_g, p.p_b);
    const bool endpoint_bad = (obs.src_link != kInvalidComponent && h.count(obs.src_link)) ||
                              (obs.dst_link != kInvalidComponent && h.count(obs.dst_link));
    auto path_bad = [&](PathId pid) {
      if (endpoint_bad) return true;
      for (ComponentId c : router.path(pid).comps) {
        if (h.count(c)) return true;
      }
      return false;
    };
    const PathSet& set = router.path_set(obs.path_set);
    std::int64_t w, b = 0;
    if (obs.path_known()) {
      w = 1;
      b = path_bad(set.paths[static_cast<std::size_t>(obs.taken_path)]) ? 1 : 0;
    } else {
      w = static_cast<std::int64_t>(set.paths.size());
      for (PathId pid : set.paths) b += path_bad(pid) ? 1 : 0;
    }
    if (b == 0) continue;
    ll += (b == w) ? s : flow_log_likelihood_delta(b, w, s);
  }
  return ll;
}

class GroupedEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
 protected:
  void SetUp() override {
    topo_ = std::make_unique<Topology>(make_fat_tree(4));
    router_ = std::make_unique<EcmpRouter>(*topo_);
    Rng rng(std::get<1>(GetParam()));
    DropRateConfig rates;
    rates.bad_min = 4e-3;
    GroundTruth truth = make_silent_link_drops(*topo_, 2, rates, rng);
    TrafficConfig traffic;
    traffic.num_app_flows = 1200;
    trace_ = simulate(*topo_, *router_, std::move(truth), traffic, ProbeConfig{}, rng);
    ViewOptions view;
    view.telemetry = std::get<0>(GetParam());
    deduped_ = std::make_unique<InferenceInput>(make_view(*topo_, *router_, trace_, view));
    raw_ = std::make_unique<InferenceInput>(*topo_, *router_, /*dedup_rows=*/false);
    for (const FlowObservation& obs : deduped_->expanded_flows()) raw_->add(obs);
  }

  std::unique_ptr<Topology> topo_;
  std::unique_ptr<EcmpRouter> router_;
  Trace trace_;
  std::unique_ptr<InferenceInput> deduped_;
  std::unique_ptr<InferenceInput> raw_;
};

TEST_P(GroupedEquivalence, TableIsAPureRepresentationChange) {
  // Same observation multiset, never more rows than observations, weights
  // conserved.
  EXPECT_EQ(deduped_->num_flows(), raw_->num_flows());
  EXPECT_LE(deduped_->num_rows(), static_cast<std::size_t>(deduped_->num_flows()));
  std::uint64_t weight_total = 0;
  for (const FlowGroup& g : deduped_->table().groups()) {
    for (std::size_t r = 0; r < g.size(); ++r) weight_total += g.weight[r];
  }
  EXPECT_EQ(weight_total, deduped_->num_flows());

  auto key = [](const FlowObservation& o) {
    return std::tuple(o.path_set, o.src_link, o.dst_link, o.taken_path, o.packets_sent,
                      o.bad_packets);
  };
  auto a = deduped_->expanded_flows();
  auto b = raw_->expanded_flows();
  ASSERT_EQ(a.size(), b.size());
  std::sort(a.begin(), a.end(), [&](const auto& x, const auto& y) { return key(x) < key(y); });
  std::sort(b.begin(), b.end(), [&](const auto& x, const auto& y) { return key(x) < key(y); });
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(key(a[i]), key(b[i])) << i;
}

TEST_P(GroupedEquivalence, WeightedLikelihoodMatchesPerFlow) {
  // Random flip walks: the weighted grouped LL tracks the per-flow reference
  // at every step, with the Delta maintained (JLE) and recomputed (no-JLE).
  const FlockParams p = params();
  LikelihoodEngine jle(*deduped_, p, /*maintain_delta=*/true);
  LikelihoodEngine plain(*deduped_, p, /*maintain_delta=*/false);
  Rng rng(std::get<1>(GetParam()) * 31 + 7);
  for (int step = 0; step < 10; ++step) {
    const auto c = static_cast<ComponentId>(
        rng.next_below(static_cast<std::uint64_t>(topo_->num_components())));
    jle.flip(c);
    plain.flip(c);
    const double ref = per_flow_log_likelihood(*raw_, p, jle.hypothesis());
    EXPECT_NEAR(jle.log_likelihood(), ref, 1e-6 + 1e-9 * std::abs(ref)) << "step " << step;
    EXPECT_NEAR(plain.log_likelihood(), ref, 1e-6 + 1e-9 * std::abs(ref)) << "step " << step;
  }
}

TEST_P(GroupedEquivalence, DedupedAndRawEnginesAgree) {
  // The same engine over deduplicated vs row-per-observation tables: LL and
  // the full Delta array agree through a flip walk.
  const FlockParams p = params();
  LikelihoodEngine deduped(*deduped_, p, /*maintain_delta=*/true);
  LikelihoodEngine raw(*raw_, p, /*maintain_delta=*/true);
  Rng rng(std::get<1>(GetParam()) * 17 + 3);
  for (int step = 0; step < 6; ++step) {
    const auto c = static_cast<ComponentId>(
        rng.next_below(static_cast<std::uint64_t>(topo_->num_components())));
    deduped.flip(c);
    raw.flip(c);
    EXPECT_NEAR(deduped.log_likelihood(), raw.log_likelihood(),
                1e-7 + 1e-10 * std::abs(raw.log_likelihood()));
    for (ComponentId d = 0; d < topo_->num_components(); ++d) {
      EXPECT_NEAR(deduped.flip_delta_ll(d), raw.flip_delta_ll(d),
                  1e-7 + 1e-10 * std::abs(raw.flip_delta_ll(d)))
          << "step " << step << " comp " << d;
    }
  }
}

TEST_P(GroupedEquivalence, DeterministicSchemesLocalizeIdentically) {
  // Dedup must never change a localization result: Flock with and without
  // JLE, Sherlock, 007 and NetBouncer all predict the same components from
  // both tables.
  FlockOptions jle_opt;
  jle_opt.params = params();
  FlockOptions plain_opt = jle_opt;
  plain_opt.use_jle = false;
  SherlockOptions sherlock_opt;
  sherlock_opt.params = params();
  sherlock_opt.max_failures = 2;
  sherlock_opt.node_budget = 20000;
  const FlockLocalizer flock_jle(jle_opt);
  const FlockLocalizer flock_plain(plain_opt);
  const SherlockLocalizer sherlock(sherlock_opt);
  const Zero07Localizer zero07{Zero07Options{}};
  const NetBouncerLocalizer netbouncer{NetBouncerOptions{}};
  for (const Localizer* scheme :
       {static_cast<const Localizer*>(&flock_jle), static_cast<const Localizer*>(&flock_plain),
        static_cast<const Localizer*>(&sherlock), static_cast<const Localizer*>(&zero07),
        static_cast<const Localizer*>(&netbouncer)}) {
    const LocalizationResult a = scheme->localize(*deduped_);
    const LocalizationResult b = scheme->localize(*raw_);
    EXPECT_EQ(a.predicted, b.predicted) << scheme->name();
    EXPECT_NEAR(a.log_likelihood, b.log_likelihood,
                1e-6 + 1e-9 * std::abs(b.log_likelihood))
        << scheme->name();
  }
  // JLE is an acceleration, not a model change.
  EXPECT_EQ(flock_jle.localize(*deduped_).predicted, flock_plain.localize(*deduped_).predicted);
}

TEST_P(GroupedEquivalence, MergeEqualsSequentialBuild) {
  // Chunked tables merged in order reproduce the sequential build exactly —
  // the epoch-barrier invariant, group/row/weight structure included.
  const auto flows = deduped_->expanded_flows();
  InferenceInput merged(*topo_, *router_);
  const std::size_t kChunks = 7;
  for (std::size_t chunk = 0; chunk < kChunks; ++chunk) {
    InferenceInput part(*topo_, *router_);
    const std::size_t begin = chunk * flows.size() / kChunks;
    const std::size_t end = (chunk + 1) * flows.size() / kChunks;
    for (std::size_t i = begin; i < end; ++i) part.add(flows[i]);
    merged.merge_from(std::move(part));
  }
  ASSERT_EQ(merged.num_flows(), deduped_->num_flows());
  ASSERT_EQ(merged.num_rows(), deduped_->num_rows());
  ASSERT_EQ(merged.table().num_groups(), deduped_->table().num_groups());
  const auto a = merged.expanded_flows();
  const auto b = deduped_->expanded_flows();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].path_set, b[i].path_set);
    EXPECT_EQ(a[i].src_link, b[i].src_link);
    EXPECT_EQ(a[i].dst_link, b[i].dst_link);
    EXPECT_EQ(a[i].taken_path, b[i].taken_path);
    EXPECT_EQ(a[i].packets_sent, b[i].packets_sent);
    EXPECT_EQ(a[i].bad_packets, b[i].bad_packets);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GroupedEquivalence,
    ::testing::Combine(::testing::Values<std::uint32_t>(kTelemetryP, kTelemetryA2 | kTelemetryP,
                                                        kTelemetryA1 | kTelemetryA2 | kTelemetryP,
                                                        kTelemetryInt),
                       ::testing::Values<std::uint64_t>(501, 502, 503)));

// --- dedup-weight saturation --------------------------------------------------

// A pathological epoch of identical rows used to wrap the uint32 dedup
// weight (2^32 identical observations -> weight 0) and silently corrupt the
// weighted log-likelihood. The add must saturate at the ceiling and count
// the clamp. Reaching the ceiling goes through merge_from doubling: each
// round merges a copy of the table into itself, doubling the single row's
// weight (33 doublings ~ 2^33 observations, far past any real epoch).
TEST(FlowTableSaturation, WeightAddSaturatesAtTheCeilingAndIsCounted) {
  FlowObservation obs;
  obs.src_link = 0;
  obs.dst_link = 1;
  obs.path_set = 0;
  obs.taken_path = -1;
  obs.packets_sent = 10;
  obs.bad_packets = 0;

  FlowTable table(/*dedup=*/true);
  table.add(obs);
  for (int round = 0; round < 33; ++round) {
    FlowTable copy = table;  // same single row, same weight
    table.merge_from(std::move(copy));
  }
  ASSERT_EQ(table.num_rows(), 1u);
  ASSERT_EQ(table.num_groups(), 1u);
  constexpr std::uint32_t kMax = std::numeric_limits<std::uint32_t>::max();
  EXPECT_EQ(table.groups()[0].weight[0], kMax);  // clamped, not wrapped
  EXPECT_GT(table.num_weight_saturations(), 0u);
  // The raw observation count keeps the truth: the row undercounts it.
  EXPECT_EQ(table.num_observations(), std::uint64_t{1} << 33);

  // A second distinct row is unaffected and saturation survives merges.
  FlowObservation other = obs;
  other.bad_packets = 1;
  table.add(other);
  const std::uint64_t saturations = table.num_weight_saturations();
  FlowTable sink(/*dedup=*/true);
  sink.merge_from(std::move(table));
  EXPECT_EQ(sink.num_weight_saturations(), saturations);
  EXPECT_EQ(sink.groups()[0].weight[0], kMax);
  EXPECT_EQ(sink.groups()[0].weight[1], 1u);
}

}  // namespace
}  // namespace flock
