// Tracker snapshot persistence (TemporalTracker::save/load): versioned
// little-endian round-trips, corruption/truncation rejection modeled on the
// dgram_log suite, config/class-partition compatibility checks, epoch
// rebasing across a restart — and the property the subsystem exists for: a
// pipeline restarted from a snapshot at an epoch boundary continues the
// interrupted run's temporal memory exactly (same verdicts, same streak
// accounting, same carryover-driven diagnoses) instead of relearning from
// scratch.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "pipeline/pipeline.h"
#include "pipeline/temporal_tracker.h"
#include "telemetry/agent.h"
#include "topology/topology.h"

namespace flock {
namespace {

EpochResult make_epoch(std::uint64_t id, std::vector<ComponentId> blamed) {
  EpochResult e;
  e.epoch = id;
  e.predicted = std::move(blamed);
  return e;
}

TemporalTrackerConfig test_config() {
  TemporalTrackerConfig cfg;
  cfg.window = 8;
  cfg.confirm_epochs = 2;
  cfg.clear_epochs = 2;
  cfg.flap_transitions = 3;
  cfg.prior_weight = 1.0;
  cfg.prior_saturation = 6.0;
  cfg.age_half_life_epochs = 4.0;
  return cfg;
}

// Drives a tracker into every kind of state at once: a confirmed fault, a
// flapping one, an expired suspicion, class-keyed rows, and a buffered
// out-of-order epoch left pending. Callers set the {{3, 11}, {6}} class
// partition first.
void observe_busy_history(TemporalTracker& tracker) {
  for (std::uint64_t e = 0; e < 10; ++e) {
    std::vector<ComponentId> blamed;
    if (e >= 4) blamed.push_back(1);             // confirmed, still blamed
    if (e % 2 == 0) blamed.push_back(2);         // flapping
    if (e == 0) blamed.push_back(5);             // expired suspicion
    if (e >= 7) blamed.push_back(11);            // class {3,11}: keyed to 3
    tracker.observe(make_epoch(e, blamed));
  }
  tracker.observe(make_epoch(11, {1}));  // out of order: held pending (10 missing)
}

// --- round trip ---------------------------------------------------------------

TEST(TrackerSnapshot, RoundTripRestoresVerdictsStatsPriorAndPendingExactly) {
  const TemporalTrackerConfig cfg = test_config();
  TemporalTracker original(cfg);
  original.set_equivalence_classes({{3, 11}, {6}});
  observe_busy_history(original);
  std::stringstream ss;
  original.save(ss);

  TemporalTracker restored(cfg);
  restored.set_equivalence_classes({{3, 11}, {6}});
  restored.load(ss);

  const auto a = original.stats();
  const auto b = restored.stats();
  EXPECT_EQ(a.epochs_observed, b.epochs_observed);
  EXPECT_EQ(a.out_of_order_epochs, b.out_of_order_epochs);
  EXPECT_EQ(a.dropped_epochs, b.dropped_epochs);
  EXPECT_EQ(a.confirmations, b.confirmations);
  EXPECT_EQ(a.flaps_detected, b.flaps_detected);
  EXPECT_EQ(a.clears, b.clears);
  EXPECT_EQ(a.false_clears, b.false_clears);
  EXPECT_EQ(a.tracked_components, b.tracked_components);

  for (const ComponentId c : {1, 2, 3, 5, 11}) {
    const ComponentVerdict va = original.verdict(c);
    const ComponentVerdict vb = restored.verdict(c);
    EXPECT_EQ(va.state, vb.state) << "component " << c;
    EXPECT_EQ(va.blame_streak, vb.blame_streak);
    EXPECT_EQ(va.quiet_streak, vb.quiet_streak);
    EXPECT_EQ(va.duty_cycle, vb.duty_cycle);
    EXPECT_EQ(va.first_blamed_epoch, vb.first_blamed_epoch);
    EXPECT_EQ(va.last_blamed_epoch, vb.last_blamed_epoch);
    EXPECT_EQ(va.confirmed_epoch, vb.confirmed_epoch);
    EXPECT_EQ(va.epochs_to_confirm, vb.epochs_to_confirm);
    EXPECT_EQ(va.confirmations, vb.confirmations);
    EXPECT_EQ(va.clears, vb.clears);
    EXPECT_EQ(va.false_clears, vb.false_clears);
    EXPECT_EQ(va.class_size, vb.class_size);
  }
  EXPECT_EQ(original.prior_logodds(16), restored.prior_logodds(16));

  // Re-saving the restored tracker reproduces the snapshot byte for byte —
  // nothing was lost or reinterpreted in transit.
  std::stringstream resaved;
  restored.save(resaved);
  EXPECT_EQ(resaved.str(), ss.str());
}

TEST(TrackerSnapshot, RestoredTrackerRebasesARestartedEpochStream) {
  // The restarted scheduler numbers epochs from 0 again; the restored
  // tracker must keep counting on the saved timeline. Feed one tracker
  // epochs 0..9 uninterrupted; save a twin at the 0..5 mark and feed the
  // rest as a restart's 0..3.
  const TemporalTrackerConfig cfg = test_config();
  const auto blame_at = [](std::uint64_t e) {
    return e % 4 < 2 ? std::vector<ComponentId>{4} : std::vector<ComponentId>{};
  };
  TemporalTracker uninterrupted(cfg);
  for (std::uint64_t e = 0; e < 10; ++e) uninterrupted.observe(make_epoch(e, blame_at(e)));

  TemporalTracker first_half(cfg);
  for (std::uint64_t e = 0; e < 6; ++e) first_half.observe(make_epoch(e, blame_at(e)));
  std::stringstream ss;
  first_half.save(ss);

  TemporalTracker restarted(cfg);
  restarted.load(ss);
  for (std::uint64_t e = 0; e < 4; ++e) {
    restarted.observe(make_epoch(e, blame_at(6 + e)));  // restart counts from 0
  }

  EXPECT_EQ(restarted.stats().epochs_observed, uninterrupted.stats().epochs_observed);
  const ComponentVerdict a = uninterrupted.verdict(4);
  const ComponentVerdict b = restarted.verdict(4);
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.blame_streak, b.blame_streak);
  EXPECT_EQ(a.last_blamed_epoch, b.last_blamed_epoch);  // absolute, not restart-relative
  EXPECT_EQ(a.false_clears, b.false_clears);
  EXPECT_EQ(uninterrupted.prior_logodds(8), restarted.prior_logodds(8));
}

// --- corruption and compatibility rejection -----------------------------------

TEST(TrackerSnapshot, TruncationAtEveryOffsetThrowsAndNeverInstallsState) {
  const TemporalTrackerConfig cfg = test_config();
  TemporalTracker original(cfg);
  original.set_equivalence_classes({{3, 11}, {6}});
  observe_busy_history(original);
  std::stringstream ss;
  original.save(ss);
  const std::string full = ss.str();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::stringstream truncated(full.substr(0, cut));
    TemporalTracker fresh(cfg);
    fresh.set_equivalence_classes({{3, 11}, {6}});
    EXPECT_THROW(fresh.load(truncated), std::runtime_error) << "cut=" << cut;
    // The failed load must be atomic: the tracker is still usable and empty.
    EXPECT_EQ(fresh.stats().epochs_observed, 0u) << "cut=" << cut;
    EXPECT_EQ(fresh.stats().tracked_components, 0u) << "cut=" << cut;
  }
}

TEST(TrackerSnapshot, RejectsBadMagicAndUnsupportedVersion) {
  TemporalTracker tracker(test_config());
  std::stringstream not_a_snapshot("FLKD\x01\x00\x00\x00");  // a dgram log, say
  EXPECT_THROW(tracker.load(not_a_snapshot), std::runtime_error);

  std::stringstream future;
  future.write("FLKT", 4);
  const std::uint32_t version = 99;
  future.write(reinterpret_cast<const char*>(&version), 4);
  EXPECT_THROW(tracker.load(future), std::runtime_error);
}

TEST(TrackerSnapshot, RejectsConfigMismatch) {
  // Restoring under different hysteresis/carryover parameters would silently
  // diverge from the uninterrupted run; every config field is checked.
  TemporalTrackerConfig cfg = test_config();
  TemporalTracker original(cfg);
  original.observe(make_epoch(0, {1}));
  std::stringstream ss;
  original.save(ss);

  TemporalTrackerConfig changed = cfg;
  changed.age_half_life_epochs = 8.0;
  TemporalTracker other(changed);
  try {
    other.load(ss);
    FAIL() << "config mismatch not detected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("config mismatch"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("age_half_life_epochs"), std::string::npos);
  }
}

TEST(TrackerSnapshot, RejectsClassPartitionMismatch) {
  const TemporalTrackerConfig cfg = test_config();
  TemporalTracker original(cfg);
  original.set_equivalence_classes({{3, 11}});
  original.observe(make_epoch(0, {3}));
  std::stringstream ss;
  original.save(ss);
  const std::string bytes = ss.str();

  // Same class count, different membership: the hash catches it.
  TemporalTracker different(cfg);
  different.set_equivalence_classes({{3, 12}});
  std::stringstream is1(bytes);
  EXPECT_THROW(different.load(is1), std::runtime_error);

  // No classes at all: the count catches it.
  TemporalTracker unclassed(cfg);
  std::stringstream is2(bytes);
  EXPECT_THROW(unclassed.load(is2), std::runtime_error);
}

TEST(TrackerSnapshot, LoadAfterObservationIsALogicError) {
  const TemporalTrackerConfig cfg = test_config();
  TemporalTracker original(cfg);
  original.observe(make_epoch(0, {1}));
  std::stringstream ss;
  original.save(ss);

  TemporalTracker busy(cfg);
  busy.observe(make_epoch(0, {}));
  EXPECT_THROW(busy.load(ss), std::logic_error);
}

// --- pipeline restart equivalence ---------------------------------------------

// The fig4b flap scenario (bench/pipeline_flap) shrunk to test size: one link
// flaps 2-on/2-off while identical pre-generated bursts feed (a) one
// uninterrupted pipeline and (b) a pipeline stopped at an epoch boundary
// mid-flap whose tracker snapshot seeds a restarted pipeline for the second
// half. With evidence carryover ON (prior_weight 1), the second half's
// diagnoses depend on the tracker state — so the restart only matches the
// uninterrupted run if the snapshot carried the temporal memory exactly.
TEST(TrackerSnapshot, PipelineRestartFromSnapshotMatchesUninterruptedRun) {
  const Topology topo = make_fat_tree(4);
  constexpr int kEpochs = 12;
  constexpr int kSplit = 6;  // restart boundary, mid-flap
  const auto faulty_epoch = [](int epoch) { return epoch >= 2 && (epoch - 2) % 4 < 2; };

  // Pre-generate every epoch's burst once (same recipe as bench/pipeline_flap).
  std::vector<std::vector<IngestDatagram>> bursts;
  {
    EcmpRouter router(topo);
    Rng rng(607);
    DropRateConfig rates;
    rates.bad_min = 3e-3;
    rates.bad_max = 4.5e-3;
    const GroundTruth healthy = make_healthy(topo, rates, rng);
    const GroundTruth failed = make_silent_link_drops(topo, 1, rates, rng);
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      TrafficConfig traffic;
      traffic.num_app_flows = 400;
      ProbeConfig probes;
      probes.enabled = false;
      Rng epoch_rng(1000 + static_cast<std::uint64_t>(epoch));
      const Trace trace = simulate(topo, router, faulty_epoch(epoch) ? failed : healthy,
                                   traffic, probes, epoch_rng);
      std::unordered_map<NodeId, Agent> agents;
      for (NodeId h : topo.hosts()) {
        AgentConfig cfg;
        cfg.observation_domain = static_cast<std::uint32_t>(h);
        agents.emplace(h, Agent(topo, cfg));
      }
      for (const SimFlow& f : trace.flows) {
        SimFlow passive = f;
        passive.taken_path = -1;
        agents.at(f.src_host).observe(passive);
      }
      std::vector<IngestDatagram> burst;
      const auto export_time = static_cast<std::uint32_t>(1700000000 + epoch * 10);
      for (NodeId h : topo.hosts()) {
        for (auto& msg : agents.at(h).flush(export_time)) {
          burst.push_back({node_to_addr(h), std::move(msg)});
        }
      }
      bursts.push_back(std::move(burst));
    }
  }

  const auto make_config = [] {
    PipelineConfig config;
    config.num_shards = 2;
    config.localizer_threads = 1;  // serialized epochs: deterministic feedback
    config.localizer.params.p_g = 1e-4;
    config.localizer.params.p_b = 6e-3;
    config.localizer.params.rho = 1e-3;
    config.localizer.equivalence_epsilon = 1e-6;
    config.merge_equivalence_classes = true;
    config.temporal.window = 16;
    config.temporal.confirm_epochs = 2;
    config.temporal.clear_epochs = 2;
    config.temporal.flap_transitions = 3;
    config.temporal.prior_weight = 1.0;
    return config;
  };
  const auto feed = [&](StreamingPipeline& pipeline, int first, int last) {
    for (int epoch = first; epoch < last; ++epoch) {
      for (const IngestDatagram& d : bursts[static_cast<std::size_t>(epoch)]) {
        pipeline.offer_wait(d);
      }
      pipeline.close_epoch();
      pipeline.results().wait_for_epochs(static_cast<std::size_t>(epoch - first) + 1);
    }
    pipeline.stop();
  };

  // (a) Uninterrupted run over all epochs.
  EcmpRouter router_a(topo);
  router_a.build_all_tor_pairs();
  StreamingPipeline uninterrupted(topo, router_a, make_config());
  feed(uninterrupted, 0, kEpochs);

  // (b) First half, snapshot at the boundary...
  std::stringstream snapshot;
  {
    EcmpRouter router_b(topo);
    router_b.build_all_tor_pairs();
    StreamingPipeline first_half(topo, router_b, make_config());
    feed(first_half, 0, kSplit);
    first_half.save_tracker(snapshot);
  }
  // ...then a restarted pipeline (fresh process in real life: new router,
  // new scheduler counting epochs from 0) restored from the snapshot.
  EcmpRouter router_c(topo);
  router_c.build_all_tor_pairs();
  StreamingPipeline restarted(topo, router_c, make_config());
  restarted.load_tracker(snapshot);
  feed(restarted, kSplit, kEpochs);

  // Second-half diagnoses must match epoch for epoch (the restarted
  // scheduler's epoch e is the uninterrupted run's kSplit + e).
  const auto full = uninterrupted.results().completed();
  const auto second = restarted.results().completed();
  ASSERT_EQ(full.size(), static_cast<std::size_t>(kEpochs));
  ASSERT_EQ(second.size(), static_cast<std::size_t>(kEpochs - kSplit));
  for (std::size_t i = 0; i < second.size(); ++i) {
    EXPECT_EQ(second[i].predicted, full[i + kSplit].predicted) << "epoch " << i;
    EXPECT_EQ(second[i].flows, full[i + kSplit].flows);
    EXPECT_EQ(second[i].shard_score_sum, full[i + kSplit].shard_score_sum);
  }

  // And the temporal layer's books agree: same verdict set, same streaks,
  // same flap/clear/false-clear counters and detection latencies.
  const auto stats_a = uninterrupted.tracker().stats();
  const auto stats_b = restarted.tracker().stats();
  EXPECT_EQ(stats_a.epochs_observed, stats_b.epochs_observed);
  EXPECT_EQ(stats_a.confirmations, stats_b.confirmations);
  EXPECT_EQ(stats_a.flaps_detected, stats_b.flaps_detected);
  EXPECT_EQ(stats_a.clears, stats_b.clears);
  EXPECT_EQ(stats_a.false_clears, stats_b.false_clears);
  EXPECT_EQ(stats_a.tracked_components, stats_b.tracked_components);

  auto verdicts_a = uninterrupted.tracker().verdicts();
  auto verdicts_b = restarted.tracker().verdicts();
  const auto by_component = [](const ComponentVerdict& x, const ComponentVerdict& y) {
    return x.component < y.component;
  };
  std::sort(verdicts_a.begin(), verdicts_a.end(), by_component);
  std::sort(verdicts_b.begin(), verdicts_b.end(), by_component);
  ASSERT_EQ(verdicts_a.size(), verdicts_b.size());
  ASSERT_FALSE(verdicts_a.empty());  // the flap scenario is not vacuous
  for (std::size_t i = 0; i < verdicts_a.size(); ++i) {
    const ComponentVerdict& va = verdicts_a[i];
    const ComponentVerdict& vb = verdicts_b[i];
    EXPECT_EQ(va.component, vb.component);
    EXPECT_EQ(va.state, vb.state);
    EXPECT_EQ(va.blame_streak, vb.blame_streak);
    EXPECT_EQ(va.quiet_streak, vb.quiet_streak);
    EXPECT_EQ(va.duty_cycle, vb.duty_cycle);
    EXPECT_EQ(va.first_blamed_epoch, vb.first_blamed_epoch);
    EXPECT_EQ(va.last_blamed_epoch, vb.last_blamed_epoch);
    EXPECT_EQ(va.confirmed_epoch, vb.confirmed_epoch);
    EXPECT_EQ(va.epochs_to_confirm, vb.epochs_to_confirm);
    EXPECT_EQ(va.false_clears, vb.false_clears);
  }
}

}  // namespace
}  // namespace flock
