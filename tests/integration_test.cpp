// Integration tests spanning the full stack: scenario -> simulation ->
// telemetry wire format -> collector -> calibration -> inference -> metrics.
#include <gtest/gtest.h>

#include <unordered_map>

#include "baselines/netbouncer.h"
#include "baselines/zero07.h"
#include "calibration/calibrate_schemes.h"
#include "common/rng.h"
#include "core/flock_localizer.h"
#include "core/gibbs.h"
#include "eval/runner.h"
#include "telemetry/agent.h"
#include "telemetry/collector.h"

namespace flock {
namespace {

TEST(Integration, WireFormatPreservesInference) {
  // Running Flock on the collector's reconstruction of agent telemetry must
  // match running it directly on the simulator view.
  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  Rng rng(71);
  DropRateConfig rates;
  rates.bad_min = 5e-3;
  GroundTruth truth = make_silent_link_drops(topo, 1, rates, rng);
  TrafficConfig traffic;
  traffic.num_app_flows = 4000;
  const Trace trace = simulate(topo, router, std::move(truth), traffic, ProbeConfig{}, rng);

  // Direct view: all app flows passive.
  ViewOptions view;
  view.telemetry = kTelemetryP;
  const InferenceInput direct = make_view(topo, router, trace, view);

  // Through the pipeline.
  std::unordered_map<NodeId, Agent> agents;
  for (NodeId h : topo.hosts()) {
    AgentConfig cfg;
    cfg.observation_domain = static_cast<std::uint32_t>(h);
    agents.emplace(h, Agent(topo, cfg));
  }
  for (const SimFlow& f : trace.flows) {
    SimFlow passive = f;
    passive.taken_path = -1;
    agents.at(f.src_host).observe(passive);
  }
  Collector collector(topo, router);
  for (auto& [h, agent] : agents) {
    for (const auto& msg : agent.flush(1)) ASSERT_TRUE(collector.ingest(msg));
  }
  const InferenceInput piped = collector.drain_into_input();
  ASSERT_EQ(piped.num_flows(), direct.num_flows());

  FlockOptions opt;
  opt.params.p_g = 1e-4;
  opt.params.p_b = 6e-3;
  opt.params.rho = 1e-3;
  const auto a = FlockLocalizer(opt).localize(direct);
  const auto b = FlockLocalizer(opt).localize(piped);
  EXPECT_EQ(a.predicted, b.predicted);
  EXPECT_NEAR(a.log_likelihood, b.log_likelihood, 1e-6);
}

TEST(Integration, CalibratedSchemesBeatUncalibratedDefaults) {
  EnvConfig cfg;
  cfg.clos = ThreeTierClosConfig{4, 2, 2, 4, 3};
  cfg.num_traces = 4;
  cfg.min_failures = 1;
  cfg.max_failures = 3;
  cfg.rates.bad_min = 3e-3;
  cfg.traffic.num_app_flows = 6000;
  cfg.seed = 72;
  const auto train = make_env(cfg);
  cfg.seed = 73;
  const auto test = make_env(cfg);

  ViewOptions view;
  view.telemetry = kTelemetryInt;
  const auto cal = calibrate_flock(*train, view, [] {
    ParamGrid g;
    g.names = {"p_g", "p_b", "rho"};
    g.values = {{1e-4, 7e-4}, {2e-3, 6e-3, 2e-2, 2e-1}, {1e-3}};
    return g;
  }());
  FlockOptions calibrated;
  calibrated.params = flock_params_from(cal.chosen.params);
  FlockOptions bad_defaults;
  bad_defaults.params.p_g = 1e-2;  // deliberately terrible: p_g near p_b
  bad_defaults.params.p_b = 2e-2;
  const double f_cal = run_scheme_mean(FlockLocalizer(calibrated), *test, view).fscore();
  const double f_bad = run_scheme_mean(FlockLocalizer(bad_defaults), *test, view).fscore();
  EXPECT_GT(f_cal, f_bad);
  EXPECT_GT(f_cal, 0.5);
}

TEST(Integration, AllSchemesRunOnTestbedTraces) {
  TestbedEnvConfig cfg;
  cfg.num_traces = 2;
  cfg.sim.num_app_flows = 900;
  cfg.sim.duration_ms = 200;
  cfg.seed = 74;
  const auto env = make_testbed_env(cfg);
  ViewOptions int_view;
  int_view.telemetry = kTelemetryInt;
  ViewOptions a2_view;
  a2_view.telemetry = kTelemetryA2;

  FlockOptions fopt;
  fopt.params.p_g = 1e-4;
  fopt.params.p_b = 6e-3;
  const auto flock = run_scheme(FlockLocalizer(fopt), *env, int_view);
  const auto nb = run_scheme(NetBouncerLocalizer(NetBouncerOptions{}), *env, int_view);
  const auto z = run_scheme(Zero07Localizer(Zero07Options{}), *env, a2_view);
  EXPECT_EQ(flock.size(), env->traces.size());
  EXPECT_EQ(nb.size(), env->traces.size());
  EXPECT_EQ(z.size(), env->traces.size());
}

TEST(Integration, GibbsAndGreedyAgreeThroughPipeline) {
  Topology topo = make_fat_tree(4);
  EcmpRouter router(topo);
  Rng rng(75);
  DropRateConfig rates;
  rates.bad_min = 6e-3;
  GroundTruth truth = make_silent_link_drops(topo, 1, rates, rng);
  TrafficConfig traffic;
  traffic.num_app_flows = 3000;
  const Trace trace = simulate(topo, router, std::move(truth), traffic, ProbeConfig{}, rng);
  ViewOptions view;
  view.telemetry = kTelemetryInt;
  const auto input = make_view(topo, router, trace, view);
  FlockOptions fopt;
  fopt.params.p_g = 1e-4;
  fopt.params.p_b = 6e-3;
  GibbsOptions gopt;
  gopt.params = fopt.params;
  const auto greedy = FlockLocalizer(fopt).localize(input);
  const auto gibbs = GibbsLocalizer(gopt).localize(input);
  EXPECT_EQ(greedy.predicted, gibbs.predicted);
  EXPECT_EQ(greedy.predicted, trace.truth.failed);
}

}  // namespace
}  // namespace flock
