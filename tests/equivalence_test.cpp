// Tests for the equivalence-set reporting option of the Flock localizer
// (used by the Fig 5c passive-only reproduction).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/flock_localizer.h"
#include "flowsim/scenario.h"
#include "flowsim/simulate.h"
#include "flowsim/views.h"
#include "topology/topology.h"

namespace flock {
namespace {

struct PassiveEnv {
  Topology topo;
  EcmpRouter router;
  Trace trace;

  explicit PassiveEnv(std::uint64_t seed) : topo(make_fat_tree(4)), router(topo) {
    Rng rng(seed);
    GroundTruth truth =
        make_silent_link_drops_fixed(topo, 1, 8e-3, DropRateConfig{}, rng);
    TrafficConfig traffic;
    traffic.num_app_flows = 20000;
    ProbeConfig probes;
    probes.enabled = false;
    trace = simulate(topo, router, std::move(truth), traffic, probes, rng);
  }

  InferenceInput passive_view() {
    ViewOptions v;
    v.telemetry = kTelemetryP;
    return make_view(topo, router, trace, v);
  }
};

FlockOptions base_options() {
  FlockOptions opt;
  opt.params.p_g = 1e-4;
  opt.params.p_b = 6e-3;
  opt.params.rho = 1e-4;
  return opt;
}

TEST(EquivalenceReporting, SupersetOfPlainPrediction) {
  PassiveEnv env(41);
  const auto input = env.passive_view();
  auto plain = base_options();
  const auto base = FlockLocalizer(plain).localize(input);
  auto expanded_opt = base_options();
  expanded_opt.equivalence_epsilon = 1e-6;
  const auto expanded = FlockLocalizer(expanded_opt).localize(input);
  for (ComponentId c : base.predicted) {
    EXPECT_NE(std::find(expanded.predicted.begin(), expanded.predicted.end(), c),
              expanded.predicted.end());
  }
  EXPECT_GE(expanded.predicted.size(), base.predicted.size());
}

TEST(EquivalenceReporting, CoversTheCulpritsClass) {
  // On a symmetric fat tree with passive-only input, whenever Flock blames a
  // classmate of the culprit, the expanded prediction must contain the
  // culprit itself.
  int detections = 0;
  int covered = 0;
  for (std::uint64_t seed : {42, 43, 44, 45}) {
    PassiveEnv env(seed);
    auto opt = base_options();
    opt.equivalence_epsilon = 1e-6;
    const auto result = FlockLocalizer(opt).localize(env.passive_view());
    if (result.predicted.empty()) continue;
    ++detections;
    const ComponentId culprit = env.trace.truth.failed.front();
    if (std::find(result.predicted.begin(), result.predicted.end(), culprit) !=
        result.predicted.end()) {
      ++covered;
    }
  }
  ASSERT_GT(detections, 0);
  EXPECT_GE(covered * 2, detections);  // the set covers the culprit most times
}

TEST(EquivalenceReporting, NoExpansionOnKnownPaths) {
  // With INT paths there is no ECMP ambiguity: the expansion should add
  // nothing (every component is distinguishable).
  PassiveEnv env(46);
  ViewOptions v;
  v.telemetry = kTelemetryInt;
  const auto input = make_view(env.topo, env.router, env.trace, v);
  auto plain = base_options();
  const auto base = FlockLocalizer(plain).localize(input);
  auto expanded_opt = base_options();
  expanded_opt.equivalence_epsilon = 1e-9;
  const auto expanded = FlockLocalizer(expanded_opt).localize(input);
  EXPECT_EQ(base.predicted, expanded.predicted);
}

TEST(EquivalenceReporting, ZeroEpsilonIsNoOp) {
  PassiveEnv env(47);
  const auto input = env.passive_view();
  auto opt = base_options();
  opt.equivalence_epsilon = 0.0;
  const auto a = FlockLocalizer(opt).localize(input);
  const auto b = FlockLocalizer(base_options()).localize(input);
  EXPECT_EQ(a.predicted, b.predicted);
}

}  // namespace
}  // namespace flock
