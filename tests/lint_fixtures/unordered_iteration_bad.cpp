// Fixture: MUST be flagged [unordered-iteration] when placed under
// src/pipeline/ — folding in hash order is the canonical determinism bug.
#include <cstdint>
#include <unordered_map>

double fold() {
  std::unordered_map<std::uint64_t, double> weights;
  weights[1] = 0.5;
  double sum = 0.0;
  for (const auto& [k, v] : weights) sum += v;  // hash-order fold
  return sum;
}
