// Fixture: MUST be flagged [raw-new-delete] twice (the new and the delete).
int churn() {
  int* p = new int(7);
  int v = *p;
  delete p;
  return v;
}
