// Fixture: MUST be flagged [parallel-reduction] — std::reduce makes no
// ordering promise, so float partials re-round differently run to run.
#include <numeric>
#include <vector>

double total(const std::vector<double>& xs) {
  return std::reduce(xs.begin(), xs.end(), 0.0);
}
