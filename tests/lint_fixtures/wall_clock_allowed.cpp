// Fixture: must NOT be flagged — same clock read, but carrying a justified
// allowance (here: a wait bound that never decides what is computed).
#include <chrono>

std::chrono::steady_clock::time_point deadline() {
  // Wait bound only, never a result input.
  return std::chrono::steady_clock::now() +  // flock-lint: allow(wall-clock)
         std::chrono::milliseconds(5);
}
