// Fixture: must NOT be flagged — keyed lookup and erase never observe hash
// order, which is exactly the usage the pipeline allows itself.
#include <cstdint>
#include <unordered_map>

double lookup() {
  std::unordered_map<std::uint64_t, double> weights;
  weights[1] = 0.5;
  auto it = weights.find(1);
  double v = it == weights.end() ? 0.0 : it->second;
  weights.erase(1);
  return v;
}
