// Fixture: MUST be flagged [rng] — unseeded randomness cannot replay.
#include <cstdlib>
#include <random>

int roll() {
  std::random_device rd;
  return static_cast<int>(rd()) + rand();
}
