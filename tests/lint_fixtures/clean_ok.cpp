// Fixture: must NOT be flagged — every banned construct appears only inside
// comments or string literals, which the linter strips before matching.
//   std::chrono::steady_clock::now() in a comment
//   int* leak = new int;  (also just a comment)
#include <string>

std::string prose() {
  std::string s = "call std::chrono::system_clock::now() and new Widget()";
  s += "then delete it; rand() too";  // none of this is code
  return s;
}
