// Fixture: MUST be flagged [wall-clock] — a result-affecting clock read.
#include <chrono>
#include <cstdint>

std::uint64_t stamp() {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}
